// Command syzvalidate checks a syzlang description file against the
// synthetic kernel's constant table — the standalone equivalent of
// running syz-extract + syz-generate validation, whose error output
// drives KernelGPT's repair loop.
//
// Usage:
//
//	syzvalidate spec.txt
//	echo 'resource fd_x[fd]' | syzvalidate -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/syzlang"
)

func main() {
	scale := flag.Float64("scale", 0.05, "corpus scale for the constant table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: syzvalidate <file|->")
		os.Exit(2)
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, perrs := syzlang.Parse(string(src))
	for _, e := range perrs {
		fmt.Printf("syntax: %v\n", e)
	}
	c := corpus.Build(corpus.Config{Scale: *scale})
	verrs := syzlang.Validate(f, c.Env())
	for _, e := range verrs {
		fmt.Printf("semantic: %v\n", e)
	}
	if len(perrs)+len(verrs) > 0 {
		fmt.Printf("%d errors\n", len(perrs)+len(verrs))
		os.Exit(1)
	}
	fmt.Printf("OK: %d syscalls, %d resources, %d structs, %d unions, %d flag sets\n",
		len(f.Syscalls), len(f.Resources), len(f.Structs), len(f.Unions), len(f.Flags))
}
