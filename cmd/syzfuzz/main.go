// Command syzfuzz runs a fuzzing campaign against the virtual kernel
// with a chosen specification suite. Campaigns run through the
// sharded parallel fuzzer: -shards sizes the worker pool, and the
// merged coverage/crash results are identical for any shard count.
// Crash repros are triaged (minimized) at discovery time and printed
// with the crash summary; throughput is reported as execs/sec.
// Ctrl-C cancels a campaign and prints the partial results.
//
// Usage:
//
//	syzfuzz -suite kernelgpt -execs 50000 -shards 8
//	syzfuzz -suite syzkaller -reps 3
//	syzfuzz -suite syzdescribe
//	syzfuzz -suite oracle -handler dm     # ground-truth spec, one driver
//
// Campaigns can persist their evolved corpus: -corpus DIR warm-starts
// from the store in DIR (empty on the first run) and flushes the
// evolved corpus back; -resume additionally requires the store to
// already hold seeds (guarding against a mistyped path silently cold-
// starting); -checkpoint flushes at shard-unit boundaries so a killed
// campaign retains progress. With -reps > 1 the repetitions run in
// sequence and accumulate into the same store.
//
//	syzfuzz -suite oracle -execs 50000 -corpus /tmp/corpus
//	syzfuzz -suite oracle -execs 10000 -corpus /tmp/corpus -resume
//
// Campaigns can also pool with other workers through a coordination
// hub (cmd/syzhub): -hub URL registers the campaign, pushes its
// corpus/coverage/crash deltas at checkpoint boundaries, and imports
// the merged global corpus back. -stats-json FILE writes the final
// merged stats in the hub wire schema for scripting.
//
//	syzfuzz -suite oracle -execs 25000 -hub http://127.0.0.1:7700
//	syzfuzz -suite oracle -execs 5000 -stats-json results.json
//
// For capacity planning, -trace FILE appends every progress update as
// a JSON line (exec count, union coverage, wall-clock offset) — the
// yield-curve input of `syzplan fit` — and -shard-execs pins the work
// unit grain so a recorded run's decomposition can be replayed by the
// simulator.
//
//	syzfuzz -suite oracle -execs 30000 -shards 3 -shard-execs 2048 \
//	    -trace trace.jsonl -stats-json stats.json
//
// Observability: -metrics-addr HOST:PORT serves the campaign's live
// Prometheus metrics (execs, coverage, crashes, exec/triage/sync
// latency histograms) as a sidecar; -flight-record DIR keeps a
// bounded ring of recent telemetry events and dumps it to DIR on
// every crash, so each report carries the engine activity leading up
// to it. Both are off by default and cost nothing when off.
//
//	syzfuzz -suite oracle -execs 50000 \
//	    -metrics-addr 127.0.0.1:7071 -flight-record /tmp/flight
//
// -cpuprofile / -memprofile write runtime/pprof profiles of the
// campaign. The checked-in default.pgo at the module root was
// produced with exactly:
//
//	go run ./cmd/syzfuzz -suite oracle -plumbing -execs 400000 -reps 1 \
//	    -seed 1 -cpuprofile default.pgo
//
// and rebuilt binaries pick it up via `go build -pgo=default.pgo`
// (see README "Compiled execution & PGO" for the re-baseline
// workflow).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"kernelgpt/internal/baseline"
	"kernelgpt/internal/core"
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/engine"
	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/hub"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/sim"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/telemetry"
	"kernelgpt/internal/vkernel"
)

func main() {
	suite := flag.String("suite", "kernelgpt", "spec suite: syzkaller, syzdescribe, kernelgpt, oracle")
	handler := flag.String("handler", "", "restrict to one handler's spec (oracle/kernelgpt suites)")
	execs := flag.Int("execs", 20000, "execution budget per repetition")
	reps := flag.Int("reps", 3, "repetitions")
	seed := flag.Int64("seed", 1, "base seed")
	scale := flag.Float64("scale", 1.0, "corpus scale")
	model := flag.String("model", "gpt-4", "analysis model for the kernelgpt suite")
	shards := flag.Int("shards", 1, "fuzzing worker shards per repetition (results are shard-count-invariant)")
	shardExecs := flag.Int("shard-execs", 0, "executions per shard work unit (0 = scale with the budget)")
	progress := flag.Bool("progress", false, "print shard progress as campaigns run")
	tracePath := flag.String("trace", "", "append each progress update as a JSON line to FILE (the trace `syzplan fit` consumes; implies periodic updates)")
	repro := flag.String("repro", "", "replay (and minimize) a serialized repro file instead of fuzzing")
	plumbing := flag.Bool("plumbing", false, "merge the fd-plumbing/mmap surface (dup, pipe, epoll, mmap/munmap) into the suite")
	uniform := flag.Bool("uniform", false, "disable the adaptive operator scheduler (uniform-random operator selection)")
	opstats := flag.Bool("opstats", false, "print the per-operator mutation scheduler outcome")
	corpusDir := flag.String("corpus", "", "persistent corpus store directory: warm-start from it and flush the evolved corpus back")
	resume := flag.Bool("resume", false, "require the -corpus store to already hold seeds (fail instead of silently cold-starting)")
	checkpoint := flag.Bool("checkpoint", false, "flush the corpus store at shard-unit boundaries, not only at campaign end")
	hubURL := flag.String("hub", "", "coordination hub base URL (e.g. http://127.0.0.1:7700): sync corpus/coverage/crashes at checkpoint boundaries")
	hubName := flag.String("hub-name", "", "worker label in the hub's stats (default hostname:pid)")
	hubProto := flag.String("hub-proto", "binary", "sync encoding: binary (compact frames + compressed cover deltas) or json (PR-5 interop)")
	statsJSON := flag.String("stats-json", "", "write the final merged stats as JSON to FILE (the hub wire schema; \"-\" = stdout)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics on HOST:PORT as a campaign sidecar (e.g. 127.0.0.1:7071)")
	flightDir := flag.String("flight-record", "", "crash flight recorder: dump the last telemetry events to DIR on each crash")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to FILE (the PGO input; see README \"Compiled execution & PGO\")")
	memProfile := flag.String("memprofile", "", "write an allocation profile to FILE at exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			mf, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer mf.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	c := corpus.Build(corpus.Config{Scale: *scale})
	kernel := vkernel.New(c)
	spec := buildSuite(ctx, c, *suite, *handler, *model, uint64(*seed))
	if spec == nil || len(spec.Syscalls) == 0 {
		fmt.Fprintln(os.Stderr, "empty suite")
		os.Exit(2)
	}
	if *plumbing {
		if *handler != "" {
			pf, err := c.PlumbingSpecFor(*handler)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			spec = syzlang.MergeDedup(spec, pf)
		} else {
			spec = syzlang.MergeDedup(spec, c.PlumbingSuite())
		}
	}
	if errs := syzlang.Validate(spec, c.Env()); len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "suite invalid: %v\n", errs[0])
		os.Exit(2)
	}
	tgt, err := prog.Compile(spec, c.Env())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("suite %q: %d syscalls; kernel %s\n", *suite, len(tgt.Syscalls), kernel)

	if *repro != "" {
		replay(c, kernel, tgt, *repro)
		return
	}

	if *resume && *corpusDir == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -corpus DIR")
		os.Exit(2)
	}
	if *resume {
		st, err := corpusstore.Open(*corpusDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		m, err := st.Manifest()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if len(m.Seeds) == 0 {
			fmt.Fprintf(os.Stderr, "-resume: corpus store %s holds no seeds\n", *corpusDir)
			os.Exit(2)
		}
	}

	f := fuzz.New(tgt, kernel)
	var statsList []*fuzz.Stats
	var elapsed []time.Duration
	var traceEnc *json.Encoder
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer tf.Close()
		traceEnc = json.NewEncoder(tf)
	}
	// One clock for every observability surface — campaign Elapsed, the
	// -trace stream, metrics histograms, and flight-dump stamps all
	// derive their time from the same injected source.
	var clk telemetry.Clock
	var metrics *fuzz.Metrics
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		metrics = fuzz.NewMetrics(reg)
		kernel.InstrumentPool(reg)
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ln.Close()
		go http.Serve(ln, telemetry.Handler(reg))
		fmt.Fprintf(os.Stderr, "metrics: serving http://%s/metrics\n", ln.Addr())
	}
	var flight *telemetry.FlightRecorder
	if *flightDir != "" {
		flight = telemetry.NewFlightRecorder(*flightDir, 256, clk)
		fmt.Fprintf(os.Stderr, "flight recorder: dumping to %s on crash\n", *flightDir)
	}
	start := clk.Now()
	for i := 0; i < *reps; i++ {
		cfg := fuzz.DefaultConfig(*execs, fuzz.RepSeed(*seed, i))
		cfg.UniformOps = *uniform
		cfg.ShardExecs = *shardExecs
		cfg.CorpusDir = *corpusDir
		cfg.Checkpoint = *checkpoint
		cfg.Clock = clk
		cfg.Metrics = metrics
		cfg.Flight = flight
		if *hubURL != "" {
			// One registration per repetition: each rep is an
			// independent campaign whose counters restart from zero,
			// so reusing a client would make the hub see regressing
			// stats and stale crash deltas.
			cl, err := dialHub(ctx, *hubURL, *hubName, *hubProto, i, *reps, tgt)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			cfg.Hub = cl
		}
		if *corpusDir != "" {
			cfg.StoreReport = func(r corpusstore.Report) {
				fmt.Fprintln(os.Stderr, r.String())
			}
		}
		if *progress || traceEnc != nil {
			rep := i + 1
			printUpdates := *progress
			cfg.Progress = func(p fuzz.Progress) {
				if printUpdates {
					fmt.Fprintf(os.Stderr, "rep %d: shard %d/%d, %d execs, cov=%d crashes=%d\n",
						rep, p.ShardsDone, p.ShardsTotal, p.Execs, p.Cover, p.Crashes)
				}
				if traceEnc != nil {
					// Progress callbacks are serialized by the fuzzer,
					// so the trace file needs no extra locking.
					traceEnc.Encode(sim.TracePoint{
						Rep: rep, ElapsedNs: p.ElapsedNs,
						Execs: p.Execs, Cover: p.Cover, Crashes: p.Crashes,
					})
				}
			}
		}
		repStart := clk.Now()
		s, err := f.RunParallel(ctx, cfg, *shards)
		// s is nil only for pre-campaign failures (e.g. an unusable
		// corpus store); cancellation still yields partial stats.
		if s != nil {
			elapsed = append(elapsed, clk.Now().Sub(repStart))
			statsList = append(statsList, s)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign interrupted: %v\n", err)
			break
		}
	}
	totalExecs := 0
	for i, s := range statsList {
		fmt.Printf("rep %d: cov=%d crashes=%d corpus=%d (%.0f execs/sec)\n",
			i+1, s.CoverCount(), s.UniqueCrashes(), s.CorpusSize, execRate(s.Execs, elapsed[i]))
		totalExecs += s.Execs
	}
	fmt.Printf("mean cov=%.1f mean crashes=%.1f throughput=%.0f execs/sec\n",
		fuzz.MeanCover(statsList), fuzz.MeanCrashes(statsList),
		execRate(totalExecs, clk.Now().Sub(start)))
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, statsList); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *opstats {
		printOpStats(statsList)
	}
	titles := fuzz.UnionCrashTitles(statsList)
	if len(titles) > 0 {
		fmt.Println("crashes:")
		for _, s := range statsList {
			for _, title := range s.CrashTitles() {
				if titles[title] {
					titles[title] = false
					cr := s.Crashes[title]
					fmt.Printf("  %s (first at exec %d, %d hits)\n", title, cr.FirstExec, cr.Count)
					fmt.Println("  minimized repro:")
					for _, line := range strings.Split(strings.TrimRight(cr.Repro, "\n"), "\n") {
						fmt.Printf("    %s\n", line)
					}
				}
			}
		}
	}
}

// printOpStats renders the mutation-operator outcome merged across
// repetitions: picks, new-coverage yield, and yield per 1k picks.
func printOpStats(statsList []*fuzz.Stats) {
	merged := map[string]*fuzz.OpStat{}
	var order []string
	for _, s := range statsList {
		for _, op := range s.Ops {
			m := merged[op.Name]
			if m == nil {
				m = &fuzz.OpStat{Name: op.Name}
				merged[op.Name] = m
				order = append(order, op.Name)
			}
			m.Picks += op.Picks
			m.NewBlocks += op.NewBlocks
		}
	}
	fmt.Println("operator        picks  new-blocks  yield/1k")
	for _, name := range order {
		m := merged[name]
		yield := 0.0
		if m.Picks > 0 {
			yield = 1000 * float64(m.NewBlocks) / float64(m.Picks)
		}
		fmt.Printf("%-14s %6d  %10d  %8.1f\n", m.Name, m.Picks, m.NewBlocks, yield)
	}
}

// dialHub registers one repetition's worker with the hub, labeling it
// name/repN when several repetitions share a run.
func dialHub(ctx context.Context, url, name, proto string, rep, reps int, tgt *prog.Target) (*hub.Client, error) {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if reps > 1 {
		name = fmt.Sprintf("%s/rep%d", name, rep+1)
	}
	cl, err := hub.Dial(ctx, url, name, tgt, hub.WithProtocol(proto))
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "hub %s: registered as %s (%d seeds pooled)\n", url, cl.WorkerID(), cl.HubSeeds)
	if fp := hub.Fingerprint(tgt); fp != cl.HubFingerprint {
		fmt.Fprintf(os.Stderr, "hub note: suite fingerprint %s differs from hub's %s; seeds outside the shared surface are skipped on each side\n",
			fp, cl.HubFingerprint)
	}
	return cl, nil
}

// writeStatsJSON dumps the run's per-rep and merged stats in the hub
// wire schema (hub.CampaignDump), to a file or stdout ("-").
func writeStatsJSON(path string, statsList []*fuzz.Stats) error {
	data, err := json.MarshalIndent(hub.DumpStats(statsList), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// execRate converts a campaign's budget and wall time to execs/sec.
func execRate(execs int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(execs) / d.Seconds()
}

// replay deserializes a repro, executes it, and prints the minimized
// form if it crashes.
func replay(c *corpus.Corpus, kernel *vkernel.Kernel, tgt *prog.Target, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := prog.Deserialize(tgt, string(data))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad repro: %v\n", err)
		os.Exit(1)
	}
	res := kernel.Run(p)
	if res.Crash == nil {
		fmt.Printf("no crash; %d blocks covered\n", len(res.Cov))
		return
	}
	fmt.Printf("crash reproduced: %s\n", res.Crash.Title)
	min := fuzz.Minimize(kernel, p, res.Crash.Title)
	fmt.Printf("minimized repro (%d calls):\n%s", len(min.Calls), min.Serialize())
}

func buildSuite(ctx context.Context, c *corpus.Corpus, suite, handler, model string, seed uint64) *syzlang.File {
	switch suite {
	case "syzkaller":
		return c.ExistingSuite()
	case "syzdescribe":
		g := baseline.New(c)
		results := g.GenerateAll(c.Incomplete(corpus.KindDriver))
		return syzlang.MergeDedup(c.ExistingSuite(), baseline.MergeSpecs(results))
	case "kernelgpt":
		eng := engine.New(c,
			engine.WithClient(llm.NewSim(model, seed)),
			engine.WithWorkers(4),
			engine.WithCache(4096))
		if handler != "" {
			h := c.Handler(handler)
			if h == nil {
				return nil
			}
			res := eng.GenerateFor(ctx, h)
			return core.MergeSpecs([]*core.Result{res})
		}
		_, _, merged, err := eng.Suite(ctx)
		if err != nil {
			return nil
		}
		return syzlang.MergeDedup(c.ExistingSuite(), merged)
	case "oracle":
		if handler != "" {
			h := c.Handler(handler)
			if h == nil {
				return nil
			}
			return familyOracle(c, h)
		}
		files := []*syzlang.File{}
		for _, h := range c.Handlers {
			if h.Loaded && h.Parent == "" {
				files = append(files, familyOracle(c, h))
			}
		}
		return syzlang.MergeDedup(files...)
	}
	return nil
}

func familyOracle(c *corpus.Corpus, h *corpus.Handler) *syzlang.File {
	files := []*syzlang.File{corpus.OracleSpec(h)}
	for _, cand := range c.Handlers {
		if cand.Parent == h.Name {
			files = append(files, familyOracle(c, cand))
		}
	}
	return syzlang.MergeDedup(files...)
}
