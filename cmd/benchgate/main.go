// Command benchgate is the CI benchmark-regression gate: it parses
// `go test -bench` output from stdin, reduces repeated runs (-count N)
// to per-benchmark medians, and compares ns/op and allocs/op against
// the recorded baseline in BENCH_fuzz.json with a relative tolerance.
// Any gated benchmark regressing beyond the tolerance fails the build
// (exit 1). Benchmarks present in the stream but absent from the
// baseline are reported and ignored.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -count 3 ./internal/vkernel ./internal/fuzz | benchgate -baseline BENCH_fuzz.json
//	... | benchgate -baseline BENCH_fuzz.json -record   # re-baseline
//	... | benchgate -json medians.json                  # export medians
//
// Baselines are keyed by "<import path>.<BenchmarkName>" so same-named
// benchmarks in different packages stay distinct. -record rewrites the
// baseline's gate section with the observed medians (commit the result
// to re-baseline after an intentional perf change). -json writes the
// observed medians as {"benchmarks": {key: {ns_per_op, allocs_per_op}}}
// — the cost-coefficient input `syzplan fit -bench` consumes ("-" =
// stdout, compare skipped).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_fuzz.json", "baseline file with a top-level \"gate\" section")
	tolerance := flag.Float64("tolerance", 0, "relative regression tolerance (0 = use the baseline's own; default 0.15)")
	record := flag.Bool("record", false, "rewrite the baseline gate entries with the observed medians instead of comparing")
	jsonOut := flag.String("json", "", "write the observed medians as JSON to FILE instead of comparing (\"-\" = stdout; the schema `syzplan fit -bench` reads)")
	flag.Parse()

	observed, err := ParseBenchOutput(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(observed) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(2)
	}

	if *jsonOut != "" {
		if err := ExportMedians(*jsonOut, observed); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if *jsonOut != "-" {
			fmt.Printf("benchgate: wrote %d benchmark medians to %s\n", len(observed), *jsonOut)
		}
		return
	}

	if *record {
		if err := RecordBaseline(*baselinePath, observed); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: recorded %d benchmark medians into %s\n", len(observed), *baselinePath)
		return
	}

	gate, err := LoadGate(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	tol := gate.Tolerance
	if *tolerance > 0 {
		tol = *tolerance
	}
	results := Compare(gate, observed, tol)
	failed := false
	info := 0
	for _, r := range results {
		fmt.Println(r)
		if r.Failed() {
			failed = true
		}
		if r.Informational() {
			info++
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: regression beyond ±%.0f%% tolerance\n", tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within ±%.0f%% of baseline", len(results)-info, tol*100)
	if info > 0 {
		fmt.Printf("; %d informational (not in baseline; -record to gate)", info)
	}
	fmt.Println()
}

// Sample is one benchmark measurement.
type Sample struct {
	NsPerOp     float64
	AllocsPerOp float64
	HasAllocs   bool
}

// ParseBenchOutput reads `go test -bench` output and returns the
// median sample per "<pkg>.<BenchmarkName>" key (the CPU-count suffix
// like "-8" is stripped).
func ParseBenchOutput(r io.Reader) (map[string]Sample, error) {
	raw := map[string][]Sample{}
	pkg := ""
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, line := range splitLines(string(data)) {
		fields := splitFields(line)
		if len(fields) >= 2 && fields[0] == "pkg:" {
			pkg = fields[1]
			continue
		}
		if len(fields) < 4 || !hasBenchPrefix(fields[0]) {
			continue
		}
		var s Sample
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			switch fields[i+1] {
			case "ns/op":
				if v, err := parseFloat(fields[i]); err == nil {
					s.NsPerOp = v
					ok = true
				}
			case "allocs/op":
				if v, err := parseFloat(fields[i]); err == nil {
					s.AllocsPerOp = v
					s.HasAllocs = true
				}
			}
		}
		if !ok {
			continue
		}
		key := pkg + "." + trimCPUSuffix(fields[0])
		raw[key] = append(raw[key], s)
	}
	out := make(map[string]Sample, len(raw))
	for key, samples := range raw {
		out[key] = median(samples)
	}
	return out, nil
}

// median reduces repeated runs to the median ns/op sample (ties break
// low; allocs come from the same run as the chosen ns/op, which keeps
// the two numbers consistent).
func median(samples []Sample) Sample {
	sorted := append([]Sample(nil), samples...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1].NsPerOp > sorted[j].NsPerOp; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	return sorted[len(sorted)/2]
}

// GateEntry is one recorded baseline.
type GateEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Gate is the comparison section of the baseline file.
type Gate struct {
	Tolerance  float64              `json:"tolerance"`
	Command    string               `json:"command,omitempty"`
	Benchmarks map[string]GateEntry `json:"benchmarks"`
}

// baselineFile is the full BENCH_fuzz.json shape benchgate cares
// about; unknown fields are preserved via the raw map in record mode.
type baselineFile struct {
	Gate *Gate `json:"gate"`
}

// LoadGate reads the gate section of the baseline file.
func LoadGate(path string) (*Gate, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Gate == nil || len(f.Gate.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no gate section; run benchgate -record to create one", path)
	}
	if f.Gate.Tolerance <= 0 {
		f.Gate.Tolerance = 0.15
	}
	return f.Gate, nil
}

// RecordBaseline rewrites the gate benchmark entries with observed
// medians, preserving every other field of the baseline file.
func RecordBaseline(path string, observed map[string]Sample) error {
	raw := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &raw); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	gate, _ := raw["gate"].(map[string]any)
	if gate == nil {
		gate = map[string]any{"tolerance": 0.15}
		raw["gate"] = gate
	}
	benches := map[string]any{}
	for key, s := range observed {
		benches[key] = map[string]any{
			"ns_per_op":     s.NsPerOp,
			"allocs_per_op": s.AllocsPerOp,
		}
	}
	gate["benchmarks"] = benches
	out, err := json.MarshalIndent(raw, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// ExportMedians writes observed medians as a standalone JSON document
// ({"benchmarks": {key: {ns_per_op, allocs_per_op}}}) — the exact
// schema `syzplan fit -bench` consumes, so the planner's cost
// coefficients and the regression gate share one measurement source.
func ExportMedians(path string, observed map[string]Sample) error {
	benches := make(map[string]GateEntry, len(observed))
	for key, s := range observed {
		benches[key] = GateEntry{NsPerOp: s.NsPerOp, AllocsPerOp: s.AllocsPerOp}
	}
	out, err := json.MarshalIndent(map[string]any{"benchmarks": benches}, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// Result is one benchmark's gate verdict.
type Result struct {
	Name         string
	Metric       string
	Base, Got    float64
	Ratio        float64
	Tolerance    float64
	MissingBase  bool
	MissingBench bool
}

// Failed reports whether this result fails the gate. A baseline
// benchmark that was not measured fails too: a gate that goes green
// because a benched package stopped running is no gate at all
// (removing a benchmark intentionally requires -record). The inverse
// — measured but not in the baseline — is informational only (see
// Informational), so adding a benchmark never demands a same-commit
// re-record.
func (r Result) Failed() bool {
	if r.MissingBench {
		return true
	}
	return !r.MissingBase && r.Ratio > 1+r.Tolerance
}

// Informational reports whether this result is printed for visibility
// only and takes no part in the gate verdict: a benchmark that ran
// but has no recorded baseline yet.
func (r Result) Informational() bool { return r.MissingBase }

// String renders the verdict line.
func (r Result) String() string {
	switch {
	case r.MissingBase:
		return fmt.Sprintf("INFO %-60s not in baseline (informational; run -record to gate it)", r.Name)
	case r.MissingBench:
		return fmt.Sprintf("FAIL %-60s in baseline but not measured (re-record to drop it)", r.Name)
	case r.Failed():
		return fmt.Sprintf("FAIL %-60s %s %.0f -> %.0f (%+.1f%% > +%.0f%%)",
			r.Name, r.Metric, r.Base, r.Got, (r.Ratio-1)*100, r.Tolerance*100)
	default:
		return fmt.Sprintf("ok   %-60s %s %.0f -> %.0f (%+.1f%%)",
			r.Name, r.Metric, r.Base, r.Got, (r.Ratio-1)*100)
	}
}

// Compare evaluates every observed benchmark (and every baseline
// entry) against the gate. A benchmark fails when either ns/op or
// allocs/op regresses beyond the tolerance; the worse metric is
// reported.
func Compare(gate *Gate, observed map[string]Sample, tol float64) []Result {
	var out []Result
	for _, name := range sortedKeys(observed) {
		s := observed[name]
		base, ok := gate.Benchmarks[name]
		if !ok {
			out = append(out, Result{Name: name, MissingBase: true})
			continue
		}
		r := Result{Name: name, Metric: "ns/op", Base: base.NsPerOp, Got: s.NsPerOp, Tolerance: tol}
		if base.NsPerOp > 0 {
			r.Ratio = s.NsPerOp / base.NsPerOp
		}
		if s.HasAllocs && base.AllocsPerOp > 0 {
			if ar := s.AllocsPerOp / base.AllocsPerOp; ar > r.Ratio {
				r = Result{Name: name, Metric: "allocs/op", Base: base.AllocsPerOp,
					Got: s.AllocsPerOp, Ratio: ar, Tolerance: tol}
			}
		}
		out = append(out, r)
	}
	for _, name := range sortedKeys(gate.Benchmarks) {
		if _, ok := observed[name]; !ok {
			out = append(out, Result{Name: name, MissingBench: true})
		}
	}
	return out
}
