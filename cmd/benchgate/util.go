package main

import (
	"sort"
	"strconv"
	"strings"
)

func splitLines(s string) []string { return strings.Split(s, "\n") }

func splitFields(s string) []string { return strings.Fields(s) }

func hasBenchPrefix(s string) bool { return strings.HasPrefix(s, "Benchmark") }

// trimCPUSuffix strips go test's GOMAXPROCS suffix ("-8") so keys are
// stable across machines.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
