package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: kernelgpt/internal/fuzz
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkCampaign-8             	       1	  51000000 ns/op	 9000000 B/op	  120000 allocs/op
BenchmarkCampaign-8             	       1	  50000000 ns/op	 8900000 B/op	  119000 allocs/op
BenchmarkCampaign-8             	       1	  52000000 ns/op	 9100000 B/op	  121000 allocs/op
BenchmarkRunParallel-8          	       1	 210000000 ns/op	35000000 B/op	  480000 allocs/op
PASS
ok  	kernelgpt/internal/fuzz	1.234s
pkg: kernelgpt/internal/vkernel
BenchmarkVMRun-8                	       1	      6800 ns/op	     120 B/op	       3 allocs/op
PASS
`

func TestParseBenchOutputMedians(t *testing.T) {
	obs, err := ParseBenchOutput(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	camp, ok := obs["kernelgpt/internal/fuzz.BenchmarkCampaign"]
	if !ok {
		t.Fatalf("campaign benchmark not parsed: %v", obs)
	}
	if camp.NsPerOp != 51000000 {
		t.Fatalf("median ns/op = %v, want middle sample 51000000", camp.NsPerOp)
	}
	if !camp.HasAllocs || camp.AllocsPerOp != 120000 {
		t.Fatalf("median allocs/op = %v", camp.AllocsPerOp)
	}
	if _, ok := obs["kernelgpt/internal/vkernel.BenchmarkVMRun"]; !ok {
		t.Fatalf("per-package keying failed: %v", obs)
	}
	if len(obs) != 3 {
		t.Fatalf("want 3 benchmarks, got %d", len(obs))
	}
}

func gateFor(ns, allocs float64) *Gate {
	return &Gate{
		Tolerance: 0.15,
		Benchmarks: map[string]GateEntry{
			"kernelgpt/internal/fuzz.BenchmarkCampaign": {NsPerOp: ns, AllocsPerOp: allocs},
		},
	}
}

// TestGateFailsOnInjectedRegression is the acceptance check: a ≥15%
// regression in either gated metric must fail the build.
func TestGateFailsOnInjectedRegression(t *testing.T) {
	observed := map[string]Sample{
		"kernelgpt/internal/fuzz.BenchmarkCampaign": {NsPerOp: 120, AllocsPerOp: 100, HasAllocs: true},
	}
	// 20% ns/op regression against a baseline of 100.
	results := Compare(gateFor(100, 100), observed, 0.15)
	if len(results) != 1 || !results[0].Failed() {
		t.Fatalf("20%% ns/op regression passed the gate: %+v", results)
	}
	// Exactly at the boundary (15%) passes; just beyond fails.
	observed["kernelgpt/internal/fuzz.BenchmarkCampaign"] = Sample{NsPerOp: 115, AllocsPerOp: 100, HasAllocs: true}
	if results = Compare(gateFor(100, 100), observed, 0.15); results[0].Failed() {
		t.Fatalf("15%% regression should be within tolerance: %+v", results)
	}
	observed["kernelgpt/internal/fuzz.BenchmarkCampaign"] = Sample{NsPerOp: 100, AllocsPerOp: 116, HasAllocs: true}
	if results = Compare(gateFor(100, 100), observed, 0.15); !results[0].Failed() {
		t.Fatalf("16%% allocs/op regression passed the gate: %+v", results)
	}
	if results[0].Metric != "allocs/op" {
		t.Fatalf("worse metric not reported: %+v", results[0])
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	observed := map[string]Sample{
		"kernelgpt/internal/fuzz.BenchmarkCampaign": {NsPerOp: 108, AllocsPerOp: 95, HasAllocs: true},
	}
	results := Compare(gateFor(100, 100), observed, 0.15)
	for _, r := range results {
		if r.Failed() {
			t.Fatalf("in-tolerance run failed: %+v", r)
		}
	}
	// Improvements pass too.
	observed["kernelgpt/internal/fuzz.BenchmarkCampaign"] = Sample{NsPerOp: 60, AllocsPerOp: 50, HasAllocs: true}
	for _, r := range Compare(gateFor(100, 100), observed, 0.15) {
		if r.Failed() {
			t.Fatalf("improvement failed the gate: %+v", r)
		}
	}
}

func TestGateReportsMissingEntries(t *testing.T) {
	observed := map[string]Sample{
		"kernelgpt/internal/fuzz.BenchmarkNew": {NsPerOp: 10},
	}
	results := Compare(gateFor(100, 100), observed, 0.15)
	var sawSkip, sawMiss bool
	for _, r := range results {
		if r.MissingBase {
			sawSkip = true
			if r.Failed() {
				t.Fatalf("ungated benchmark must not fail the gate: %+v", r)
			}
		}
		if r.MissingBench {
			sawMiss = true
			// A baseline benchmark that stopped being measured is a
			// gate failure — a green gate over dead benchmarks hides
			// regressions entirely.
			if !r.Failed() {
				t.Fatalf("unmeasured baseline benchmark passed the gate: %+v", r)
			}
		}
	}
	if !sawSkip || !sawMiss {
		t.Fatalf("missing-entry reporting broken: %+v", results)
	}
}

// TestNewBenchmarksAreInformational pins the add-a-benchmark
// workflow: a benchmark present in the run but absent from the gate
// is reported as INFO — visible, but with no effect on the verdict —
// so landing new benchmarks (BenchmarkVMRunCompiled,
// BenchmarkVMRunBatch) never demands a same-commit re-record, even
// when the new numbers would look like wild regressions of nothing.
func TestNewBenchmarksAreInformational(t *testing.T) {
	observed := map[string]Sample{
		"kernelgpt/internal/fuzz.BenchmarkCampaign":         {NsPerOp: 100, AllocsPerOp: 100, HasAllocs: true},
		"kernelgpt/internal/vkernel.BenchmarkVMRunCompiled": {NsPerOp: 1e12, AllocsPerOp: 1e6, HasAllocs: true},
		"kernelgpt/internal/vkernel.BenchmarkVMRunBatch":    {NsPerOp: 1e12},
	}
	results := Compare(gateFor(100, 100), observed, 0.15)
	if len(results) != 3 {
		t.Fatalf("want 3 results, got %+v", results)
	}
	infos := 0
	for _, r := range results {
		if !r.MissingBase {
			if r.Informational() {
				t.Fatalf("gated benchmark reported informational: %+v", r)
			}
			continue
		}
		infos++
		if !r.Informational() {
			t.Fatalf("ungated benchmark not informational: %+v", r)
		}
		if r.Failed() {
			t.Fatalf("ungated benchmark failed the gate: %+v", r)
		}
		if !strings.HasPrefix(r.String(), "INFO") {
			t.Fatalf("ungated benchmark not printed as INFO: %q", r.String())
		}
	}
	if infos != 2 {
		t.Fatalf("want 2 informational results, got %d: %+v", infos, results)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	if err := os.WriteFile(path, []byte(`{"description":"keep me","gate":{"tolerance":0.15,"benchmarks":{}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	obs, err := ParseBenchOutput(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := RecordBaseline(path, obs); err != nil {
		t.Fatal(err)
	}
	gate, err := LoadGate(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(gate.Benchmarks) != 3 {
		t.Fatalf("recorded %d entries, want 3", len(gate.Benchmarks))
	}
	// Unrelated fields survive.
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), "keep me") {
		t.Fatalf("record clobbered unrelated fields:\n%s", data)
	}
	// The recorded file gates its own measurements cleanly.
	for _, r := range Compare(gate, obs, gate.Tolerance) {
		if r.Failed() || r.MissingBase || r.MissingBench {
			t.Fatalf("self-comparison not clean: %+v", r)
		}
	}
}
