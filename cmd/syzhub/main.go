// Command syzhub runs the multi-campaign coordination daemon: an
// HTTP hub that fuzzing workers (syzfuzz -hub, or any embedder of
// internal/hub.Client) register with to pool their corpora, crashes,
// and coverage. The hub maintains an authoritative on-disk corpus
// store — restartable: a new syzhub over the same -store continues
// the generation lineage and, with -state, replays its lease table,
// crash counts, and union coverage from a sidecar so surviving
// workers keep syncing deltas without a full corpus replay — a
// global crash table deduplicated by normalized repro text, and live
// aggregated stats.
//
// The hub validates pushed programs against the widest target the
// synthetic kernel supports (every loaded handler's oracle spec plus
// the fd-plumbing surface), so workers running narrower suites can
// all pool into one store; each worker re-validates pulled seeds
// against its own target and skips what it cannot parse.
//
// Workers hold leases (granted at registration, renewed by syncs and
// heartbeats, expiring after -lease-ttl of silence); -max-inflight
// and -min-sync-interval shed load with 429 + Retry-After when the
// fleet outruns the hub.
//
// With -parent URL the hub runs as a leaf in a hierarchical topology:
// it registers with the root hub as one worker and periodically syncs
// its aggregate deltas upward (every -parent-interval), pulling the
// root's merged corpus down for its own workers — so root fan-in
// scales with leaf count, not worker count.
//
// Endpoints:
//
//	POST /v1/register   worker announce, lease grant  (internal/hub proto)
//	POST /v1/sync       push deltas, pull merged corpus diff (JSON or binary)
//	POST /v1/heartbeat  lease renewal between syncs
//	GET  /v1/stats      aggregated live stats (JSON)
//	GET  /v1/crashes    global deduplicated crash table (JSON)
//	GET  /metrics       Prometheus text exposition (disable with -metrics=false)
//	GET  /healthz       liveness probe
//
// Usage:
//
//	syzhub -store /var/lib/syzhub/corpus
//	syzhub -addr 127.0.0.1:7700 -store /tmp/hub -cap 1024 -v
//	syzhub -store /tmp/leaf -addr 127.0.0.1:7701 \
//	    -parent http://127.0.0.1:7700 -parent-name rack-3
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/hub"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	storeDir := flag.String("store", "", "authoritative corpus store directory (required)")
	capacity := flag.Int("cap", 0, "merged corpus bound (0 = seedpool default)")
	scale := flag.Float64("scale", 1.0, "corpus scale (must match the workers')")
	statePath := flag.String("state", "", `lease/crash-table sidecar file ("auto" = <store>/hubstate.json, "" = off)`)
	leaseTTL := flag.Duration("lease-ttl", hub.DefaultLeaseTTL, "worker lease expiry after last sync or heartbeat")
	maxInflight := flag.Int("max-inflight", 0, "sync backpressure: concurrent exchanges before 429 (0 = unlimited)")
	minSyncInterval := flag.Duration("min-sync-interval", 0, "per-worker sync rate limit (0 = unlimited)")
	parent := flag.String("parent", "", "root hub URL: run as a leaf and sync aggregates upward")
	parentName := flag.String("parent-name", "", "worker name this leaf registers under at the root (default leaf-<addr>)")
	parentInterval := flag.Duration("parent-interval", 15*time.Second, "upward sync period when -parent is set")
	metrics := flag.Bool("metrics", true, "serve Prometheus metrics on /metrics next to /v1/stats")
	flightDir := flag.String("flight-record", "", "dump the last telemetry events to DIR when a request fails")
	verbose := flag.Bool("v", false, "log every registration and sync")
	flag.Parse()

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "usage: syzhub -store DIR [-addr HOST:PORT] [-cap N] [-state auto] [-parent URL] [-v]")
		os.Exit(2)
	}

	c := corpus.Build(corpus.Config{Scale: *scale})
	tgt, err := widestTarget(c)
	if err != nil {
		log.Fatal(err)
	}
	store, err := corpusstore.Open(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	opts := []hub.Option{
		hub.WithCapacity(*capacity),
		hub.WithLeaseTTL(*leaseTTL),
		hub.WithMaxInflight(*maxInflight),
		hub.WithMinSyncInterval(*minSyncInterval),
	}
	if *statePath == "auto" {
		*statePath = filepath.Join(*storeDir, "hubstate.json")
	}
	if *statePath != "" {
		opts = append(opts, hub.WithStatePath(*statePath))
	}
	if *parent != "" {
		opts = append(opts, hub.WithParent(*parent))
	}
	if *metrics {
		opts = append(opts, hub.WithMetrics(telemetry.NewRegistry()))
	}
	if *flightDir != "" {
		opts = append(opts, hub.WithFlightRecorder(telemetry.NewFlightRecorder(*flightDir, 256, nil)))
	}
	if *verbose {
		opts = append(opts, hub.WithLog(log.Printf))
	}
	h, err := hub.New(tgt, store, opts...)
	if err != nil {
		log.Fatal(err)
	}
	st := h.Stats()
	log.Printf("syzhub: %d syscalls (fingerprint %s), store %s: %d seeds at generation %d",
		len(tgt.Syscalls), hub.Fingerprint(tgt), *storeDir, st.Seeds, st.Generation)

	srv := &http.Server{Addr: *addr, Handler: h.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdown, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdown)
	}()

	var parentDone chan struct{}
	if *parent != "" {
		name := *parentName
		if name == "" {
			name = "leaf-" + *addr
		}
		parentDone = make(chan struct{})
		go runParentLoop(ctx, h, *parent, name, tgt, *parentInterval, parentDone)
	}

	log.Printf("syzhub: listening on http://%s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	if parentDone != nil {
		<-parentDone
	}
	final := h.Stats()
	log.Printf("syzhub: shut down: %d seeds, %d union cover, %d crashes from %d workers",
		final.Seeds, final.UnionCover, final.Crashes, len(final.Workers))
}

// runParentLoop periodically syncs the leaf's aggregate state up to
// the root hub, and releases the leaf's lease with one final sync on
// shutdown. Upward sync failures are logged and retried next tick —
// the leaf keeps serving its own workers through root outages.
func runParentLoop(ctx context.Context, h *hub.Hub, parentURL, name string, tgt *prog.Target, interval time.Duration, done chan<- struct{}) {
	defer close(done)
	// Dial lazily: the root may come up after the leaf, so registration
	// failures just retry on the next tick.
	var client *hub.Client
	dial := func(c context.Context) bool {
		if client != nil {
			return true
		}
		cl, err := hub.Dial(c, parentURL, name, tgt)
		if err != nil {
			log.Printf("syzhub: parent register: %v", err)
			return false
		}
		client = cl
		log.Printf("syzhub: registered with parent %s as %s", parentURL, cl.WorkerID())
		return true
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if !dial(ctx) {
				continue
			}
			if n, err := h.SyncParent(ctx, client, false); err != nil {
				log.Printf("syzhub: parent sync: %v", err)
			} else if n > 0 {
				log.Printf("syzhub: parent sync imported %d seeds", n)
			}
		case <-ctx.Done():
			shutdown, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if dial(shutdown) {
				if _, err := h.SyncParent(shutdown, client, true); err != nil {
					log.Printf("syzhub: final parent sync: %v", err)
				}
			}
			cancel()
			return
		}
	}
}

// widestTarget compiles the merged ground-truth specs of every loaded
// handler plus the fd-plumbing surface — the same target corpusdump
// re-validates stores against, so any program a worker could have
// found parses here.
func widestTarget(c *corpus.Corpus) (*prog.Target, error) {
	files := []*syzlang.File{}
	for _, h := range c.Handlers {
		if h.Loaded {
			files = append(files, corpus.OracleSpec(h))
		}
	}
	files = append(files, c.PlumbingSuite())
	spec := syzlang.MergeDedup(files...)
	if errs := syzlang.Validate(spec, c.Env()); len(errs) > 0 {
		return nil, fmt.Errorf("widest suite invalid: %v", errs[0])
	}
	return prog.Compile(spec, c.Env())
}
