// Command syzhub runs the multi-campaign coordination daemon: an
// HTTP hub that fuzzing workers (syzfuzz -hub, or any embedder of
// internal/hub.Client) register with to pool their corpora, crashes,
// and coverage. The hub maintains an authoritative on-disk corpus
// store — restartable: a new syzhub over the same -store continues
// the generation lineage and workers transparently re-register — a
// global crash table deduplicated by normalized repro text, and live
// aggregated stats.
//
// The hub validates pushed programs against the widest target the
// synthetic kernel supports (every loaded handler's oracle spec plus
// the fd-plumbing surface), so workers running narrower suites can
// all pool into one store; each worker re-validates pulled seeds
// against its own target and skips what it cannot parse.
//
// Endpoints:
//
//	POST /v1/register  worker announce         (internal/hub proto)
//	POST /v1/sync      push deltas, pull merged corpus diff
//	GET  /v1/stats     aggregated live stats (JSON)
//	GET  /v1/crashes   global deduplicated crash table (JSON)
//	GET  /healthz      liveness probe
//
// Usage:
//
//	syzhub -store /var/lib/syzhub/corpus
//	syzhub -addr 127.0.0.1:7700 -store /tmp/hub -cap 1024 -v
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/hub"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	storeDir := flag.String("store", "", "authoritative corpus store directory (required)")
	capacity := flag.Int("cap", 0, "merged corpus bound (0 = seedpool default)")
	scale := flag.Float64("scale", 1.0, "corpus scale (must match the workers')")
	verbose := flag.Bool("v", false, "log every registration and sync")
	flag.Parse()

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "usage: syzhub -store DIR [-addr HOST:PORT] [-cap N] [-v]")
		os.Exit(2)
	}

	c := corpus.Build(corpus.Config{Scale: *scale})
	tgt, err := widestTarget(c)
	if err != nil {
		log.Fatal(err)
	}
	store, err := corpusstore.Open(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	opts := []hub.Option{hub.WithCapacity(*capacity)}
	if *verbose {
		opts = append(opts, hub.WithLog(log.Printf))
	}
	h, err := hub.New(tgt, store, opts...)
	if err != nil {
		log.Fatal(err)
	}
	st := h.Stats()
	log.Printf("syzhub: %d syscalls (fingerprint %s), store %s: %d seeds at generation %d",
		len(tgt.Syscalls), hub.Fingerprint(tgt), *storeDir, st.Seeds, st.Generation)

	srv := &http.Server{Addr: *addr, Handler: h.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdown, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdown)
	}()
	log.Printf("syzhub: listening on http://%s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	final := h.Stats()
	log.Printf("syzhub: shut down: %d seeds, %d union cover, %d crashes from %d workers",
		final.Seeds, final.UnionCover, final.Crashes, len(final.Workers))
}

// widestTarget compiles the merged ground-truth specs of every loaded
// handler plus the fd-plumbing surface — the same target corpusdump
// re-validates stores against, so any program a worker could have
// found parses here.
func widestTarget(c *corpus.Corpus) (*prog.Target, error) {
	files := []*syzlang.File{}
	for _, h := range c.Handlers {
		if h.Loaded {
			files = append(files, corpus.OracleSpec(h))
		}
	}
	files = append(files, c.PlumbingSuite())
	spec := syzlang.MergeDedup(files...)
	if errs := syzlang.Validate(spec, c.Env()); len(errs) > 0 {
		return nil, fmt.Errorf("widest suite invalid: %v", errs[0])
	}
	return prog.Compile(spec, c.Env())
}
