// Command kernelgpt runs the specification-generation pipeline over
// the synthetic kernel and prints the generated syzlang.
//
// Usage:
//
//	kernelgpt -handler dm                 # one handler's spec
//	kernelgpt -kind driver                # every incomplete driver
//	kernelgpt -model gpt-3.5 -handler dm  # weaker model
//	kernelgpt -all-in-one -handler kvm    # ablation mode
//	kernelgpt -stats -kind socket         # summary only
package main

import (
	"flag"
	"fmt"
	"os"

	"kernelgpt/internal/core"
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/syzlang"
)

func main() {
	handler := flag.String("handler", "", "generate for a single handler by name")
	kind := flag.String("kind", "driver", "worklist kind: driver or socket")
	model := flag.String("model", "gpt-4", "analysis model (gpt-4, gpt-4o, gpt-3.5)")
	seed := flag.Uint64("seed", 1, "fallibility seed")
	maxIter := flag.Int("max-iter", 5, "iterative analysis bound (MAX_ITER)")
	noRepair := flag.Bool("no-repair", false, "disable the validation-and-repair phase")
	allInOne := flag.Bool("all-in-one", false, "single-prompt ablation mode")
	stats := flag.Bool("stats", false, "print summary statistics only")
	trace := flag.Bool("trace", false, "print every LLM prompt/completion exchange")
	scale := flag.Float64("scale", 1.0, "corpus scale")
	flag.Parse()

	c := corpus.Build(corpus.Config{Scale: *scale})
	opts := core.DefaultOptions()
	opts.MaxIter = *maxIter
	opts.Repair = !*noRepair
	opts.AllInOne = *allInOne
	opts.Trace = *trace
	client := llm.NewSim(*model, *seed)
	gen := core.New(client, c, opts)

	if *handler != "" {
		h := c.Handler(*handler)
		if h == nil {
			fmt.Fprintf(os.Stderr, "unknown handler %q\n", *handler)
			os.Exit(2)
		}
		res := gen.GenerateFor(h)
		gen.FollowDependencies(res, nil)
		if *trace {
			for i, ex := range res.Transcript {
				fmt.Printf("===== exchange %d (%s) =====\n--- prompt ---\n%s\n--- completion ---\n%s\n",
					i+1, ex.Stage, ex.Prompt, ex.Completion)
			}
		}
		printResult(res, *stats)
		reportUsage(client)
		return
	}

	k := corpus.KindDriver
	if *kind == "socket" {
		k = corpus.KindSocket
	}
	worklist := c.Incomplete(k)
	results := gen.GenerateAll(worklist)
	for _, res := range results {
		gen.FollowDependencies(res, nil)
	}
	if *stats {
		fmt.Println(core.Summarize(results))
		reportUsage(client)
		return
	}
	for _, res := range results {
		printResult(res, false)
	}
	fmt.Fprintln(os.Stderr, core.Summarize(results))
	reportUsage(client)
}

func printResult(res *core.Result, statsOnly bool) {
	status := "VALID"
	switch {
	case !res.Valid && res.Spec == nil:
		status = "FAILED"
	case !res.Valid:
		status = "INVALID"
	case res.Repaired:
		status = "VALID (repaired)"
	}
	fmt.Printf("# handler %s: %s, %d syscalls, %d types, %d LLM iterations\n",
		res.Handler.Name, status, res.NewSyscalls(), res.NewTypes(), res.Iterations)
	if statsOnly || res.Spec == nil {
		return
	}
	fmt.Println(syzlang.Format(res.Spec))
}

func reportUsage(client *llm.SimModel) {
	u := client.Usage()
	fmt.Fprintf(os.Stderr, "llm usage: %d calls, %d input tokens, %d output tokens, ~$%.2f\n",
		u.Calls, u.PromptTokens, u.CompletionTokens, u.CostUSD())
}
