// Command kernelgpt runs the specification-generation pipeline over
// the synthetic kernel through the Engine facade and prints the
// generated syzlang. Generation parallelizes across a worker pool;
// results are identical for any -workers value. Ctrl-C cancels the
// run cleanly.
//
// Usage:
//
//	kernelgpt -handler dm                 # one handler's spec
//	kernelgpt -kind driver -workers 8     # every incomplete driver, pooled
//	kernelgpt -model gpt-3.5 -handler dm  # weaker model
//	kernelgpt -all-in-one -handler kvm    # ablation mode
//	kernelgpt -stats -kind socket         # summary only
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"kernelgpt/internal/core"
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/engine"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/telemetry"
)

func main() {
	handler := flag.String("handler", "", "generate for a single handler by name")
	kind := flag.String("kind", "driver", "worklist kind: driver or socket")
	model := flag.String("model", "gpt-4", "analysis model (gpt-4, gpt-4o, gpt-3.5)")
	seed := flag.Uint64("seed", 1, "fallibility seed")
	maxIter := flag.Int("max-iter", 5, "iterative analysis bound (MAX_ITER)")
	noRepair := flag.Bool("no-repair", false, "disable the validation-and-repair phase")
	allInOne := flag.Bool("all-in-one", false, "single-prompt ablation mode")
	stats := flag.Bool("stats", false, "print summary statistics only")
	trace := flag.Bool("trace", false, "print every LLM prompt/completion exchange")
	scale := flag.Float64("scale", 1.0, "corpus scale")
	workers := flag.Int("workers", 4, "generation worker-pool size")
	cacheSize := flag.Int("cache", 4096, "LLM completion-cache entries (0 disables)")
	metricsPath := flag.String("metrics", "", `write final engine/LLM metrics in Prometheus text format to FILE ("-" = stderr)`)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	c := corpus.Build(corpus.Config{Scale: *scale})
	opts := core.DefaultOptions()
	opts.MaxIter = *maxIter
	opts.Repair = !*noRepair
	opts.AllInOne = *allInOne
	opts.Trace = *trace
	engOpts := []engine.Option{
		engine.WithClient(llm.NewSim(*model, *seed)),
		engine.WithGeneratorOptions(opts),
		engine.WithWorkers(*workers),
		engine.WithCache(*cacheSize),
	}
	var reg *telemetry.Registry
	if *metricsPath != "" {
		reg = telemetry.NewRegistry()
		engOpts = append(engOpts, engine.WithTelemetry(reg))
		defer func() {
			if err := writeMetrics(*metricsPath, reg); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	eng := engine.New(c, engOpts...)

	if *handler != "" {
		h := c.Handler(*handler)
		if h == nil {
			fmt.Fprintf(os.Stderr, "unknown handler %q\n", *handler)
			os.Exit(2)
		}
		res := eng.GenerateFor(ctx, h)
		if *trace {
			for i, ex := range res.Transcript {
				fmt.Printf("===== exchange %d (%s) =====\n--- prompt ---\n%s\n--- completion ---\n%s\n",
					i+1, ex.Stage, ex.Prompt, ex.Completion)
			}
		}
		printResult(res, *stats)
		reportUsage(eng)
		return
	}

	k := corpus.KindDriver
	if *kind == "socket" {
		k = corpus.KindSocket
	}
	results, err := eng.GenerateKind(ctx, k)
	if err != nil {
		fmt.Fprintf(os.Stderr, "generation interrupted: %v\n", err)
	}
	if *stats {
		fmt.Println(core.Summarize(results))
		reportUsage(eng)
		return
	}
	for _, res := range results {
		printResult(res, false)
	}
	fmt.Fprintln(os.Stderr, core.Summarize(results))
	reportUsage(eng)
}

func printResult(res *core.Result, statsOnly bool) {
	status := "VALID"
	switch {
	case !res.Valid && res.Spec == nil:
		status = "FAILED"
	case !res.Valid:
		status = "INVALID"
	case res.Repaired:
		status = "VALID (repaired)"
	}
	fmt.Printf("# handler %s: %s, %d syscalls, %d types, %d LLM iterations\n",
		res.Handler.Name, status, res.NewSyscalls(), res.NewTypes(), res.Iterations)
	if statsOnly || res.Spec == nil {
		return
	}
	fmt.Println(syzlang.Format(res.Spec))
}

// writeMetrics renders the registry once, at exit — a generation run
// is a batch job, so a final snapshot replaces a scrape endpoint.
func writeMetrics(path string, reg *telemetry.Registry) error {
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return err
	}
	if path == "-" {
		_, err := os.Stderr.Write(buf.Bytes())
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

func reportUsage(eng *engine.Engine) {
	u := eng.Usage()
	fmt.Fprintf(os.Stderr, "llm usage: %d calls, %d input tokens, %d output tokens, ~$%.2f\n",
		u.Calls, u.PromptTokens, u.CompletionTokens, u.CostUSD())
	if st, ok := eng.CacheStats(); ok && st.Hits+st.Misses > 0 {
		fmt.Fprintf(os.Stderr, "llm cache: %d hits, %d misses, %d evictions\n",
			st.Hits, st.Misses, st.Evictions)
	}
}
