// Command corpusdump writes the synthetic kernel's rendered C source
// tree to disk for inspection, plus the ground-truth (oracle) and
// human-suite syzlang specifications per handler.
//
// Usage:
//
//	corpusdump -out /tmp/kernel                  # full tree
//	corpusdump -handler dm                       # one handler to stdout
//	corpusdump -handler dm -what oracle          # its ground-truth spec
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/syzlang"
)

func main() {
	out := flag.String("out", "", "directory to write the full tree into")
	handler := flag.String("handler", "", "print one handler instead")
	what := flag.String("what", "source", "what to print for -handler: source, oracle, human")
	scale := flag.Float64("scale", 1.0, "corpus scale")
	flag.Parse()

	c := corpus.Build(corpus.Config{Scale: *scale})

	if *handler != "" {
		h := c.Handler(*handler)
		if h == nil {
			fmt.Fprintf(os.Stderr, "unknown handler %q\n", *handler)
			os.Exit(2)
		}
		switch *what {
		case "source":
			fmt.Print(c.Index.Files()[h.SourcePath()])
		case "oracle":
			fmt.Print(syzlang.Format(corpus.OracleSpec(h)))
		case "human":
			spec := corpus.SyzkallerSpec(h)
			if spec == nil {
				fmt.Fprintln(os.Stderr, "handler has no existing descriptions")
				os.Exit(1)
			}
			fmt.Print(syzlang.Format(spec))
		default:
			fmt.Fprintf(os.Stderr, "unknown -what %q\n", *what)
			os.Exit(2)
		}
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: corpusdump -out DIR | -handler NAME [-what source|oracle|human]")
		os.Exit(2)
	}
	files := 0
	for path, src := range c.Index.Files() {
		full := filepath.Join(*out, "src", path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		files++
	}
	specs := 0
	for _, h := range c.Handlers {
		if !h.Loaded {
			continue
		}
		dir := filepath.Join(*out, "specs", h.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		writeSpec(filepath.Join(dir, "oracle.txt"), corpus.OracleSpec(h))
		if spec := corpus.SyzkallerSpec(h); spec != nil {
			writeSpec(filepath.Join(dir, "syzkaller.txt"), spec)
		}
		specs++
	}
	fmt.Printf("wrote %d source files and %d handler spec dirs under %s\n", files, specs, *out)
}

func writeSpec(path string, f *syzlang.File) {
	if err := os.WriteFile(path, []byte(syzlang.Format(f)), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
