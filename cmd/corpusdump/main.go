// Command corpusdump writes the synthetic kernel's rendered C source
// tree to disk for inspection, plus the ground-truth (oracle) and
// human-suite syzlang specifications per handler. It also reads and
// writes the persistent fuzzing-corpus store format
// (internal/fuzz/corpusstore): -store lists a store's entries and
// re-validates each one against the full oracle target (exiting
// nonzero when any entry is invalid or stale, so CI can gate on
// store health), -add inserts a repro file into a store with a
// measured priority, and -merge folds one store into another.
//
// Usage:
//
//	corpusdump -out /tmp/kernel                  # full tree
//	corpusdump -handler dm                       # one handler to stdout
//	corpusdump -handler dm -what oracle          # its ground-truth spec
//	corpusdump -store /tmp/corpus                # list + validate a corpus store
//	corpusdump -store /tmp/corpus -add repro.txt # add a repro to the store
//	corpusdump -store /tmp/a -merge /tmp/b       # merge store b into store a
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/vkernel"
)

func main() {
	out := flag.String("out", "", "directory to write the full tree into")
	handler := flag.String("handler", "", "print one handler instead")
	what := flag.String("what", "source", "what to print for -handler: source, oracle, human")
	scale := flag.Float64("scale", 1.0, "corpus scale")
	store := flag.String("store", "", "corpus store directory to list and validate")
	add := flag.String("add", "", "repro file to add into the -store")
	merge := flag.String("merge", "", "source corpus store directory to merge into the -store")
	mergeCap := flag.Int("merge-cap", 0, "seed bound for -merge (0 = lossless: keep every seed of both stores)")
	flag.Parse()

	c := corpus.Build(corpus.Config{Scale: *scale})

	if *store != "" {
		storeMain(c, *store, *add, *merge, *mergeCap)
		return
	}

	if *handler != "" {
		h := c.Handler(*handler)
		if h == nil {
			fmt.Fprintf(os.Stderr, "unknown handler %q\n", *handler)
			os.Exit(2)
		}
		switch *what {
		case "source":
			fmt.Print(c.Index.Files()[h.SourcePath()])
		case "oracle":
			fmt.Print(syzlang.Format(corpus.OracleSpec(h)))
		case "human":
			spec := corpus.SyzkallerSpec(h)
			if spec == nil {
				fmt.Fprintln(os.Stderr, "handler has no existing descriptions")
				os.Exit(1)
			}
			fmt.Print(syzlang.Format(spec))
		default:
			fmt.Fprintf(os.Stderr, "unknown -what %q\n", *what)
			os.Exit(2)
		}
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: corpusdump -out DIR | -handler NAME [-what source|oracle|human] | -store DIR [-add FILE | -merge SRCDIR]")
		os.Exit(2)
	}
	files := 0
	srcs := c.Index.Files()
	paths := make([]string, 0, len(srcs))
	for path := range srcs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		src := srcs[path]
		full := filepath.Join(*out, "src", path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		files++
	}
	specs := 0
	for _, h := range c.Handlers {
		if !h.Loaded {
			continue
		}
		dir := filepath.Join(*out, "specs", h.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		writeSpec(filepath.Join(dir, "oracle.txt"), corpus.OracleSpec(h))
		if spec := corpus.SyzkallerSpec(h); spec != nil {
			writeSpec(filepath.Join(dir, "syzkaller.txt"), spec)
		}
		specs++
	}
	fmt.Printf("wrote %d source files and %d handler spec dirs under %s\n", files, specs, *out)
}

func writeSpec(path string, f *syzlang.File) {
	if err := os.WriteFile(path, []byte(syzlang.Format(f)), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// oracleTarget compiles the merged ground-truth specs of every loaded
// handler plus the fd-plumbing/mmap surface — the widest target the
// kernel supports, so any program a campaign could have stored
// (including -plumbing campaigns) validates against it.
func oracleTarget(c *corpus.Corpus) (*prog.Target, error) {
	files := []*syzlang.File{}
	for _, h := range c.Handlers {
		if h.Loaded {
			files = append(files, corpus.OracleSpec(h))
		}
	}
	files = append(files, c.PlumbingSuite())
	spec := syzlang.MergeDedup(files...)
	if errs := syzlang.Validate(spec, c.Env()); len(errs) > 0 {
		return nil, fmt.Errorf("oracle suite invalid: %v", errs[0])
	}
	return prog.Compile(spec, c.Env())
}

// storeMain is the corpus-store mode: list + validate (exiting
// nonzero when any entry fails re-validation), merge another store
// in, or add a repro.
func storeMain(c *corpus.Corpus, dir, add, merge string, mergeCap int) {
	tgt, err := oracleTarget(c)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st, err := corpusstore.Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if add != "" && merge != "" {
		fmt.Fprintln(os.Stderr, "-add and -merge are mutually exclusive")
		os.Exit(2)
	}
	if add != "" {
		addToStore(c, st, tgt, add)
		return
	}
	if merge != "" {
		mergeStores(st, tgt, merge, mergeCap)
		return
	}
	m, err := st.Manifest()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	seeds, rep, err := st.Load(tgt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	skipped := map[string]string{}
	for _, s := range rep.Skipped {
		skipped[s.File] = s.Reason
	}
	fmt.Printf("corpus store %s: %d entries, store cover %d blocks\n", st.Dir(), len(m.Seeds), m.CoverBlocks)
	fmt.Println("file                      weight  op          calls  status")
	i := 0
	for _, e := range m.Seeds {
		status, calls := "ok", "-"
		if reason, bad := skipped[e.File]; bad {
			status = "SKIP: " + reason
		} else if i < len(seeds) {
			calls = fmt.Sprint(len(seeds[i].Prog.Calls))
			i++
		}
		op := e.Op
		if op == "" {
			op = "generated"
		}
		fmt.Printf("%-25s %6d  %-10s %6s  %s\n", e.File, e.Prio+e.Bonus, op, calls, status)
	}
	fmt.Printf("%d valid, %d skipped\n", rep.Loaded, len(rep.Skipped))
	// Invalid/stale entries are an actionable condition (a spec drifted,
	// a file was corrupted): make the exit status say so for CI.
	if len(rep.Skipped) > 0 {
		os.Exit(1)
	}
}

// mergeStores folds the src store into dst via corpusstore.Merge:
// union of both, deduplicated by program text keeping the
// higher-weight copy, bounded deterministically. The default bound is
// lossless — every seed of both stores survives minus duplicates —
// because a CLI merge must not silently truncate a store built with a
// larger-than-default capacity; pass -merge-cap to shrink. Invalid
// src entries are reported and left behind; invalid dst entries
// refuse the merge (rewriting dst would delete them).
func mergeStores(dst *corpusstore.Store, tgt *prog.Target, srcDir string, mergeCap int) {
	src, err := corpusstore.Open(srcDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srcSeeds, srcRep, err := src.Load(tgt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(srcRep.Skipped) > 0 {
		fmt.Fprintf(os.Stderr, "note: %d invalid source entries stay behind (%s)\n", len(srcRep.Skipped), srcRep)
	}
	dstSeeds, dstRep, err := dst.Load(tgt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(dstRep.Skipped) > 0 {
		fmt.Fprintf(os.Stderr, "%s\nrefusing to rewrite a store with invalid entries (a rewrite would delete them); inspect with: corpusdump -store %s\n", dstRep, dst.Dir())
		os.Exit(1)
	}
	cover := dstRep.CoverBlocks
	if srcRep.CoverBlocks > cover {
		cover = srcRep.CoverBlocks
	}
	if mergeCap <= 0 {
		mergeCap = len(dstSeeds) + len(srcSeeds)
		if mergeCap == 0 {
			mergeCap = 1 // Merge treats <=0 as the default capacity
		}
	}
	merged := corpusstore.Merge(mergeCap, dstSeeds, srcSeeds)
	if err := dst.Save(merged, cover); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("merged %s (%d seeds) into %s: now %d seeds (was %d)\n",
		src.Dir(), len(srcSeeds), dst.Dir(), len(merged), len(dstSeeds))
}

// addToStore measures a repro's coverage on the kernel and merges it
// into the store with that coverage as its priority.
func addToStore(c *corpus.Corpus, st *corpusstore.Store, tgt *prog.Target, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := prog.Deserialize(tgt, string(data))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad repro: %v\n", err)
		os.Exit(1)
	}
	kernel := vkernel.New(c)
	cov := vkernel.NewCoverSet(kernel.NumBlocks())
	for _, b := range kernel.Run(p).Cov {
		cov.Add(b)
	}
	prio := cov.Count()
	if prio < 1 {
		prio = 1
	}
	seeds, rep, err := st.Load(tgt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Rewriting the store drops anything Load skipped — refuse rather
	// than silently deleting entries the user may want to salvage.
	if len(rep.Skipped) > 0 {
		fmt.Fprintf(os.Stderr, "%s\nrefusing to rewrite a store with invalid entries (a rewrite would delete them); inspect with: corpusdump -store %s\n", rep, st.Dir())
		os.Exit(1)
	}
	merged := corpusstore.Merge(0, seeds, []seedpool.SeedState{{Prog: p, Prio: prio}})
	if err := st.Save(merged, rep.CoverBlocks); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("added %s to %s (prio %d, %d calls); store now %d seeds\n",
		corpusstore.FileFor(p.Serialize()), st.Dir(), prio, len(p.Calls), len(merged))
}
