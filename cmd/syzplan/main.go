// Command syzplan is the campaign capacity planner built on
// internal/sim: fit a cost + coverage-yield model from the system's
// own telemetry, then answer fleet-sizing questions in milliseconds
// instead of CPU-hours.
//
// Subcommands:
//
//	syzplan fit -bench BENCH_fuzz.json -trace trace.jsonl \
//	    -stats stats.json -hub-stats hub.json \
//	    -workers 3 -shard-execs 2048 -o model.json
//	  Fit cost coefficients from benchmark medians (benchgate -json
//	  export or the gate file itself), the yield curve from a syzfuzz
//	  -trace Progress stream, and calibrate against a recorded run's
//	  timing stats (syzfuzz -stats-json, plus the hub's /v1/stats for
//	  hub-side sync service times).
//
//	syzplan run -model model.json -workers 8 -execs 200000 [-hub] [-json]
//	  Simulate one fleet configuration. With -target-cover and
//	  -deadline instead of -execs, answer the planner query "min
//	  workers to reach the target by the deadline".
//
//	syzplan sweep -model model.json -execs 200000 \
//	    -workers 1,2,4,8,16 -shard-execs 1024,2048,4096 [-json]
//	  Simulate the cross product of worker counts, shard grains, and
//	  hub attachment, and print a comparison table.
//
//	syzplan validate -model model.json -stats stats.json \
//	    -hub-stats hub.json -workers 3 -shard-execs 2048 [-json]
//	  Score the model against a real recorded run; exits 1 when a
//	  prediction error exceeds its tolerance (the CI drift gate).
//
// Everything is deterministic for fixed inputs: the same model, trace,
// and flags always print the same predictions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"kernelgpt/internal/hub"
	"kernelgpt/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "fit":
		err = cmdFit(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "syzplan: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "syzplan %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: syzplan <fit|run|sweep|validate> [flags]  (syzplan <sub> -h for flags)")
}

// runFlags are the campaign-shape flags shared by fit and validate
// (the recorded run's configuration, which the stats dump does not
// carry).
type runFlags struct {
	stats      *string
	hubStats   *string
	workers    *int
	shardExecs *int
	seed       *int64
}

func addRunFlags(fs *flag.FlagSet) runFlags {
	return runFlags{
		stats:      fs.String("stats", "", "syzfuzz -stats-json output of the recorded run"),
		hubStats:   fs.String("hub-stats", "", "hub /v1/stats JSON of the recorded run (hub-side sync service times)"),
		workers:    fs.Int("workers", 1, "worker (shard) count of the recorded run"),
		shardExecs: fs.Int("shard-execs", 0, "shard grain of the recorded run (0 = fuzzer default rule)"),
		seed:       fs.Int64("seed", 1, "seed of the recorded run"),
	}
}

// loadRecord assembles a sim.RunRecord from the stats dump plus the
// hub stats document. Multi-rep dumps are rejected: a record is one
// campaign's ground truth.
func (rf runFlags) loadRecord() (sim.RunRecord, error) {
	var rec sim.RunRecord
	data, err := os.ReadFile(*rf.stats)
	if err != nil {
		return rec, err
	}
	var dump hub.CampaignDump
	if err := json.Unmarshal(data, &dump); err != nil {
		return rec, fmt.Errorf("%s: %w", *rf.stats, err)
	}
	if len(dump.Reps) != 1 {
		return rec, fmt.Errorf("%s: need exactly 1 repetition, got %d (record one campaign per run)", *rf.stats, len(dump.Reps))
	}
	r := dump.Reps[0]
	rec = sim.RunRecord{
		Workers: *rf.workers, ShardExecs: *rf.shardExecs, Seed: *rf.seed,
		Hub:   r.Syncs > 0,
		Execs: r.Execs, Cover: r.Cover, Crashes: len(r.Crashes),
		ElapsedNs: r.ElapsedNs, WorkNs: r.WorkNs, TriageNs: r.TriageNs,
		SyncNs: r.SyncNs, Syncs: r.Syncs,
	}
	if rec.ElapsedNs <= 0 {
		return rec, fmt.Errorf("%s: no timing fields (produced by an older syzfuzz?)", *rf.stats)
	}
	if *rf.hubStats != "" {
		hdata, err := os.ReadFile(*rf.hubStats)
		if err != nil {
			return rec, err
		}
		var hs hub.HubStats
		if err := json.Unmarshal(hdata, &hs); err != nil {
			return rec, fmt.Errorf("%s: %w", *rf.hubStats, err)
		}
		if hs.Sync.Count > 0 {
			rec.HubServiceNsMean = hs.Sync.MeanServiceNs()
			rec.BytesPerSync = hs.Sync.MeanBytes()
		}
		// Per-worker aggregates are the sample points for splitting hub
		// service time into base + per-byte (sim.Calibrate runs the
		// regression when at least two payload sizes differ).
		for _, wk := range hs.Workers {
			if wk.Sync.Count == 0 {
				continue
			}
			rec.WorkerSyncs = append(rec.WorkerSyncs, sim.SyncSample{
				Count:         wk.Sync.Count,
				MeanBytes:     wk.Sync.MeanBytes(),
				MeanServiceNs: wk.Sync.MeanServiceNs(),
			})
		}
	}
	return rec, nil
}

func cmdFit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark medians JSON (benchgate/benchtables -json export, or the BENCH_fuzz.json gate file)")
	trace := fs.String("trace", "", "syzfuzz -trace Progress stream (JSON lines) for the yield curve")
	out := fs.String("o", "model.json", "output model file")
	rf := addRunFlags(fs)
	fs.Parse(args)
	if *bench == "" || *trace == "" {
		return fmt.Errorf("need -bench and -trace")
	}
	medians, err := sim.LoadBenchMedians(*bench)
	if err != nil {
		return err
	}
	costs, err := sim.FitCosts(medians)
	if err != nil {
		return err
	}
	pts, err := sim.ReadTraceFile(*trace)
	if err != nil {
		return err
	}
	yield, err := sim.FitYield(pts)
	if err != nil {
		return err
	}
	m := &sim.Model{Cost: costs, Yield: yield, FittedFrom: fmt.Sprintf("bench=%s trace=%s", *bench, *trace)}
	if *rf.stats != "" {
		rec, err := rf.loadRecord()
		if err != nil {
			return err
		}
		m.Calibrate(rec)
		m.FittedFrom += fmt.Sprintf(" calibrated=%s", *rf.stats)
	}
	if err := m.Save(*out); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", *out)
	fmt.Printf("  per-exec: exec=%s mutate=%s triage=%s\n",
		ns(m.Cost.ExecNs), ns(m.Cost.MutateNs), ns(m.Cost.TriageNs))
	fmt.Printf("  sync: base=%s hub-service=%s", ns(m.Cost.SyncBaseNs), ns(m.Cost.HubServiceNs))
	if m.Cost.HubPerByteNs > 0 {
		fmt.Printf(" +%.2fns/B × %.0fB", m.Cost.HubPerByteNs, m.BytesPerSync)
	}
	fmt.Println()
	fmt.Printf("  yield: Cmax=%.0f K=%.0f B=%.2f (trace: %d points)\n",
		m.Yield.Cmax, m.Yield.K, m.Yield.B, len(pts))
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	model := fs.String("model", "model.json", "fitted model file")
	workers := fs.Int("workers", 1, "worker count")
	execs := fs.Int("execs", 0, "execution budget")
	shardExecs := fs.Int("shard-execs", 0, "shard grain (0 = fuzzer default rule)")
	deadline := fs.Duration("deadline", 0, "wall-clock horizon (truncates the budget; with -target-cover, the planning deadline)")
	hubOn := fs.Bool("hub", false, "attach the fleet to a hub")
	checkpoint := fs.Bool("checkpoint", false, "checkpoint the corpus at unit boundaries")
	llmSeeds := fs.Int("llm-seeds", 0, "LLM-generated seed programs paid for up front")
	seed := fs.Int64("seed", 1, "jitter seed")
	targetCover := fs.Int("target-cover", 0, "planner query: min workers to reach this many blocks by -deadline")
	maxWorkers := fs.Int("max-workers", 64, "search ceiling for -target-cover")
	asJSON := fs.Bool("json", false, "JSON output")
	fs.Parse(args)
	m, err := sim.LoadModel(*model)
	if err != nil {
		return err
	}
	base := sim.FleetConfig{
		Workers: *workers, Execs: *execs, ShardExecs: *shardExecs,
		Hub: *hubOn, Checkpoint: *checkpoint, LLMSeeds: *llmSeeds, Seed: *seed,
	}
	if *targetCover > 0 {
		if *deadline <= 0 {
			return fmt.Errorf("-target-cover needs -deadline")
		}
		plan, err := sim.MinWorkers(m, base, *targetCover, deadline.Nanoseconds(), *maxWorkers)
		if err != nil {
			return err
		}
		if *asJSON {
			return printJSON(plan)
		}
		if !plan.Feasible {
			fmt.Printf("infeasible: %d blocks by %v (curve asymptote %.0f, needs %d execs, searched ≤%d workers)\n",
				*targetCover, *deadline, m.Yield.Cmax, plan.ExecsNeeded, *maxWorkers)
			return nil
		}
		fmt.Printf("min workers: %d  (%d execs, predicted %s wall, cover %d)\n",
			plan.Workers, plan.ExecsNeeded, dur(plan.Result.WallNs), plan.Result.Cover)
		return nil
	}
	if *execs <= 0 {
		return fmt.Errorf("need -execs (or a -target-cover query)")
	}
	base.DeadlineNs = deadline.Nanoseconds()
	r, err := sim.Simulate(m, base)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(r)
	}
	printResultTable([]sim.Result{r})
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	model := fs.String("model", "model.json", "fitted model file")
	execs := fs.Int("execs", 0, "execution budget for every config")
	workers := fs.String("workers", "1,2,4,8", "comma-separated worker counts")
	shardExecs := fs.String("shard-execs", "0", "comma-separated shard grains (0 = fuzzer default rule)")
	hubMode := fs.String("hub", "both", "hub attachment: on, off, or both")
	seed := fs.Int64("seed", 1, "jitter seed")
	asJSON := fs.Bool("json", false, "JSON output")
	fs.Parse(args)
	m, err := sim.LoadModel(*model)
	if err != nil {
		return err
	}
	if *execs <= 0 {
		return fmt.Errorf("need -execs")
	}
	ws, err := intList(*workers)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	grains, err := intList(*shardExecs)
	if err != nil {
		return fmt.Errorf("-shard-execs: %w", err)
	}
	var hubs []bool
	switch *hubMode {
	case "on":
		hubs = []bool{true}
	case "off":
		hubs = []bool{false}
	case "both":
		hubs = []bool{false, true}
	default:
		return fmt.Errorf("-hub must be on, off, or both")
	}
	var cfgs []sim.FleetConfig
	for _, w := range ws {
		for _, g := range grains {
			for _, h := range hubs {
				cfgs = append(cfgs, sim.FleetConfig{
					Workers: w, Execs: *execs, ShardExecs: g, Hub: h, Seed: *seed,
				})
			}
		}
	}
	start := time.Now()
	results, err := sim.Sweep(m, cfgs)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if *asJSON {
		return printJSON(struct {
			Configs int          `json:"configs"`
			SweepNs int64        `json:"sweep_ns"`
			Results []sim.Result `json:"results"`
		}{len(cfgs), elapsed.Nanoseconds(), results})
	}
	printResultTable(results)
	fmt.Printf("%d configs swept in %v\n", len(cfgs), elapsed)
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	model := fs.String("model", "model.json", "fitted model file")
	execTol := fs.Float64("exec-tol", sim.DefaultExecTol, "relative exec prediction tolerance")
	coverTol := fs.Float64("cover-tol", sim.DefaultCoverTol, "relative cover prediction tolerance")
	wallTol := fs.Float64("wall-tol", sim.DefaultWallTol, "relative wall-clock prediction tolerance")
	asJSON := fs.Bool("json", false, "JSON output")
	rf := addRunFlags(fs)
	fs.Parse(args)
	if *rf.stats == "" {
		return fmt.Errorf("need -stats")
	}
	m, err := sim.LoadModel(*model)
	if err != nil {
		return err
	}
	rec, err := rf.loadRecord()
	if err != nil {
		return err
	}
	v, err := sim.Validate(m, rec, *execTol, *coverTol, *wallTol)
	if err != nil {
		return err
	}
	if *asJSON {
		if err := printJSON(v); err != nil {
			return err
		}
	} else {
		fmt.Printf("real:      execs=%-8d cover=%-6d wall=%s\n", rec.Execs, rec.Cover, dur(rec.ElapsedNs))
		fmt.Printf("predicted: execs=%-8d cover=%-6d wall=%s\n", v.PredExecs, v.PredCover, dur(v.PredWallNs))
		fmt.Printf("errors:    execs=%.1f%% (tol %.0f%%)  cover=%.1f%% (tol %.0f%%)  wall=%.1f%% (tol %.0f%%)\n",
			100*v.ExecErr, 100*v.ExecTol, 100*v.CoverErr, 100*v.CoverTol, 100*v.WallErr, 100*v.WallTol)
	}
	if !v.Pass {
		return fmt.Errorf("model drifted from reality: %s", strings.Join(v.Failures, "; "))
	}
	if !*asJSON {
		fmt.Println("PASS")
	}
	return nil
}

func printResultTable(results []sim.Result) {
	fmt.Println("workers  grain  hub  execs     wall       cover  util   syncs  hub-busy")
	for _, r := range results {
		hubCol := "-"
		if r.Config.Hub {
			hubCol = "yes"
		}
		wall := dur(r.WallNs)
		if r.Truncated {
			wall += "*"
		}
		fmt.Printf("%7d  %5d  %-3s  %-8d  %-9s  %-5d  %4.0f%%  %5d  %s\n",
			r.Config.Workers, r.Config.ShardExecs, hubCol, r.Execs, wall,
			r.Cover, 100*r.Utilization(), r.Syncs, dur(r.HubBusyNs))
	}
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func intList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// ns renders a nanosecond coefficient human-readably.
func ns(v float64) string { return time.Duration(v).String() }

// dur renders an int64 nanosecond count.
func dur(v int64) string { return time.Duration(v).Round(time.Millisecond).String() }
