package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"kernelgpt/internal/analysis"
)

// The `go vet -vettool` protocol: for each package, the go command
// writes a JSON config naming the source files and the export-data
// files of every dependency (already compiled, so no network and no
// re-typechecking of the world), then invokes the tool with that
// single *.cfg argument. The tool typechecks just the one package,
// prints findings to stderr, writes the (for us, empty) facts file,
// and exits 1 if it found anything. This mirrors
// golang.org/x/tools/go/analysis/unitchecker on the standard
// library.

// vetConfig is the subset of the go command's vet config the checker
// consumes (unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string, suite []*analysis.Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "syzlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "syzlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The facts file must exist for the go command to cache the run;
	// our analyzers exchange no facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "syzlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := loadFromConfig(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "syzlint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, suite)
	if err != nil {
		fmt.Fprintf(stderr, "syzlint: %v\n", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	analysis.Print(stderr, pkg.Fset, diags)
	return 1
}

// loadFromConfig typechecks the one package the config describes,
// resolving imports through the export-data files the go command
// listed.
func loadFromConfig(cfg *vetConfig) (*analysis.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}
	return &analysis.Package{
		ImportPath: cfg.ImportPath, Dir: cfg.Dir, GoFiles: cfg.GoFiles,
		Fset: fset, Files: files, Types: tpkg, TypesInfo: info,
	}, nil
}
