// Command syzlint is the repo's invariant multichecker: it runs the
// custom static analyzers in internal/analysis — detorder (map
// iteration order escaping into serialized output), lockguard
// (`// guarded by mu` lock discipline), detrand (wall clock / global
// RNG in deterministic packages), and ctxhygiene (ctx-aware blocking
// APIs) — over Go packages and exits nonzero on any finding. CI
// gates the lint job on it; run it locally before pushing:
//
//	go run ./cmd/syzlint ./...
//
// Individual checkers can be disabled (-detorder=false, ...). The
// binary also speaks the `go vet -vettool` unitchecker protocol
// (-V=full, -flags, and single *.cfg invocations), so the same
// checks run under the build cache:
//
//	go build -o syzlint ./cmd/syzlint
//	go vet -vettool=$PWD/syzlint ./...
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kernelgpt/internal/analysis"
	"kernelgpt/internal/analysis/ctxhygiene"
	"kernelgpt/internal/analysis/detorder"
	"kernelgpt/internal/analysis/detrand"
	"kernelgpt/internal/analysis/lockguard"
)

// All is the multichecker's analyzer suite.
var All = []*analysis.Analyzer{
	ctxhygiene.Analyzer,
	detorder.Analyzer,
	detrand.Analyzer,
	lockguard.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("syzlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vFlag := fs.String("V", "", "print version information (-V=full, for the go command)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (for the go command)")
	enabled := map[string]*bool{}
	for _, a := range All {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *vFlag != "":
		printVersion(stdout)
		return 0
	case *flagsFlag:
		printFlagDefs(stdout)
		return 0
	}
	var suite []*analysis.Analyzer
	for _, a := range All {
		if *enabled[a.Name] {
			suite = append(suite, a)
		}
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], suite, stderr)
	}
	return standalone(rest, suite, stdout, stderr)
}

// standalone loads the packages matched by the patterns (default
// ./...) and prints findings: exit 0 clean, 1 findings, 2 load
// failure.
func standalone(patterns []string, suite []*analysis.Analyzer, stdout, stderr io.Writer) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "syzlint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "syzlint: %v\n", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	if len(pkgs) > 0 {
		analysis.Print(stdout, pkgs[0].Fset, diags)
	}
	fmt.Fprintf(stderr, "syzlint: %d finding(s)\n", len(diags))
	return 1
}

// printVersion implements -V=full: the go command hashes this line
// into its action cache key, so it must change when the binary does.
func printVersion(w io.Writer) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "syzlint version devel buildID=%x\n", h.Sum(nil))
}

// printFlagDefs implements -flags: the go command discovers which
// flags it may pass through to the tool.
func printFlagDefs(w io.Writer) {
	fmt.Fprint(w, "[")
	for i, a := range All {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, "{\"Name\":%q,\"Bool\":true,\"Usage\":%q}", a.Name, a.Doc)
	}
	fmt.Fprintln(w, "]")
}
