package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"kernelgpt/internal/analysis"
	"kernelgpt/internal/analysis/analysistest"
	"kernelgpt/internal/analysis/ctxhygiene"
	"kernelgpt/internal/analysis/detorder"
	"kernelgpt/internal/analysis/detrand"
	"kernelgpt/internal/analysis/lockguard"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestSyzlintCleanOnRepo is the CI gate's in-process twin: the full
// analyzer suite over every package must report nothing. If this
// fails, either fix the code or record the judgment with the
// documented annotation (//syzlint:..., // guarded by mu).
func TestSyzlintCleanOnRepo(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, All)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) > 0 {
		var buf bytes.Buffer
		analysis.Print(&buf, pkgs[0].Fset, diags)
		t.Fatalf("syzlint must run clean on the repo; findings:\n%s", buf.String())
	}
}

// TestAnalyzersFireOnBrokenFixtures proves the clean run above is not
// vacuous: every analyzer still reports on its deliberately broken
// fixture.
func TestAnalyzersFireOnBrokenFixtures(t *testing.T) {
	root := repoRoot(t)
	cases := []struct {
		a          *analysis.Analyzer
		fixture    string
		importPath string
	}{
		{ctxhygiene.Analyzer, "ctxhygiene/testdata/src/ctxhygiene", "kernelgpt/internal/fixture"},
		{detorder.Analyzer, "detorder/testdata/src/detorder", "kernelgpt/internal/fixture"},
		{detrand.Analyzer, "detrand/testdata/src/detrand", "kernelgpt/internal/fuzz"},
		{lockguard.Analyzer, "lockguard/testdata/src/lockguard", "kernelgpt/internal/fixture"},
	}
	for _, tc := range cases {
		t.Run(tc.a.Name, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "analysis", tc.fixture)
			analysistest.MustFire(t, dir, tc.importPath, tc.a)
		})
	}
}

// TestVersionAndFlagsHandshake covers the two discovery calls the go
// command makes before delegating vet work to a -vettool.
func TestVersionAndFlagsHandshake(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &out); code != 0 {
		t.Fatalf("-V=full exited %d: %s", code, out.String())
	}
	fields := strings.Fields(out.String())
	if len(fields) != 4 || fields[0] != "syzlint" || fields[1] != "version" ||
		!strings.HasPrefix(fields[3], "buildID=") {
		t.Fatalf("malformed -V=full line: %q", out.String())
	}

	out.Reset()
	if code := run([]string{"-flags"}, &out, &out); code != 0 {
		t.Fatalf("-flags exited %d: %s", code, out.String())
	}
	var defs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out.Bytes(), &defs); err != nil {
		t.Fatalf("-flags output is not a JSON flag list: %v\n%s", err, out.String())
	}
	if len(defs) != len(All) {
		t.Fatalf("-flags advertised %d flags, want %d", len(defs), len(All))
	}
	for i, d := range defs {
		if d.Name != All[i].Name || !d.Bool {
			t.Fatalf("flag %d = %+v, want bool flag %q", i, d, All[i].Name)
		}
	}
}

// TestVetToolProtocol drives the built binary through the real
// `go vet -vettool` handshake on a few packages.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the syzlint binary")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "syzlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/syzlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/pool", "./internal/hub", "./internal/fuzz")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool reported findings on clean packages: %v\n%s", err, out)
	}
}
