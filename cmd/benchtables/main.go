// Command benchtables regenerates the paper's tables and figures.
//
// Usage:
//
//	benchtables                  # every experiment, paper scale
//	benchtables -quick           # small corpus, small budgets
//	benchtables -only table3     # one experiment
//	benchtables -execs 20000     # override campaign budget
//	benchtables -json out.json   # also export the tables as JSON
//
// -json writes every table that ran as structured JSON (id, title,
// header, rows, notes) for scripted consumers; the human-readable
// tables still print to stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"kernelgpt/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "small corpus and budgets (smoke run)")
	only := flag.String("only", "", "comma-separated experiment ids (table1..table6, figure7, ablation-iterative, ablation-model, ablation-repair, ablation-locality, audit, tokens)")
	execs := flag.Int("execs", 0, "override whole-suite campaign budget")
	perDriver := flag.Int("perdriver", 0, "override per-driver campaign budget")
	reps := flag.Int("reps", 0, "override repetition count")
	seed := flag.Int64("seed", 0, "override base seed")
	model := flag.String("model", "", "analysis model (gpt-4, gpt-4o, gpt-3.5)")
	workers := flag.Int("workers", 0, "override generation worker-pool size")
	jsonOut := flag.String("json", "", "also write the tables that ran as JSON to FILE (\"-\" = stdout)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	if *execs > 0 {
		opts.Execs = *execs
	}
	if *perDriver > 0 {
		opts.PerDriverExecs = *perDriver
	}
	if *reps > 0 {
		opts.Reps = *reps
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *model != "" {
		opts.Model = *model
	}
	if *workers > 0 {
		opts.Workers = *workers
	}

	r := bench.NewRunner(opts)
	r.Ctx = ctx
	fmt.Printf("corpus: %d handlers, kernel: %s\n\n", len(r.Corpus.Handlers), r.Kernel)

	type exp struct {
		id  string
		run func() *bench.Table
	}
	exps := []exp{
		{"table1", r.Table1},
		{"figure7", r.Figure7},
		{"table2", r.Table2},
		{"table3", r.Table3},
		{"table4", r.Table4},
		{"table5", r.Table5},
		{"table6", r.Table6},
		{"ablation-iterative", r.AblationIterative},
		{"ablation-model", r.AblationModel},
		{"ablation-repair", r.AblationRepair},
		{"ablation-locality", r.AblationLocality},
		{"audit", r.CorrectnessAudit},
		{"tokens", r.TokenCost},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	var tables []*bench.Table
	for _, e := range exps {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted — remaining experiments skipped; tables already printed may be partial")
			os.Exit(1)
		}
		t := e.run()
		fmt.Println(t)
		tables = append(tables, t)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched -only=%s\n", *only)
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := exportJSON(*jsonOut, tables); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
	}
}

// tableJSON is the structured export of one rendered table.
type tableJSON struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

func exportJSON(path string, tables []*bench.Table) error {
	doc := struct {
		Tables []tableJSON `json:"tables"`
	}{Tables: make([]tableJSON, 0, len(tables))}
	for _, t := range tables {
		doc.Tables = append(doc.Tables, tableJSON{
			ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes,
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
