// Package main's bench_test provides one testing.B benchmark per
// table and figure of the paper's evaluation, plus ablation benches
// for the design choices DESIGN.md calls out. Each benchmark builds
// the experiment through the same bench.Runner the benchtables
// command uses, at a reduced-but-representative scale so `go test
// -bench=.` completes in minutes, and reports domain-specific metrics
// (coverage, syscalls, bugs found) alongside ns/op.
//
// Regenerate the paper-scale numbers with: go run ./cmd/benchtables
package main

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"kernelgpt/internal/bench"
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/vkernel"
)

// benchOpts sizes the benchmark runs: a mid-scale corpus and budgets
// large enough for the shapes to be visible.
func benchOpts() bench.Options {
	return bench.Options{
		Scale: 0.25, Execs: 12000, PerDriverExecs: 3000,
		Reps: 2, Seed: 1, Model: "gpt-4",
	}
}

var (
	runnerOnce sync.Once
	runner     *bench.Runner
)

func sharedRunner() *bench.Runner {
	runnerOnce.Do(func() { runner = bench.NewRunner(benchOpts()) })
	return runner
}

// metric extracts a numeric cell for b.ReportMetric.
func metric(tb *bench.Table, row, col int) float64 {
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		return 0
	}
	s := strings.Fields(tb.Rows[row][col])
	if len(s) == 0 {
		return 0
	}
	v, _ := strconv.ParseFloat(s[0], 64)
	return v
}

// BenchmarkTable1 regenerates the handler/specification counts.
func BenchmarkTable1(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.Table1()
	}
	b.ReportMetric(metric(tb, 0, 4), "kgpt-valid-drivers")
	b.ReportMetric(metric(tb, 0, 3), "syzd-valid-drivers")
}

// BenchmarkFigure7 regenerates the missing-spec histogram.
func BenchmarkFigure7(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.Figure7()
	}
	b.ReportMetric(metric(tb, 3, 1), "drivers-over-75pct-missing")
}

// BenchmarkTable2 regenerates the new-syscall counts.
func BenchmarkTable2(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.Table2()
	}
	b.ReportMetric(metric(tb, 2, 3), "kgpt-new-syscalls")
	b.ReportMetric(metric(tb, 2, 1), "syzd-new-syscalls")
}

// BenchmarkTable3 regenerates the whole-suite fuzzing comparison.
func BenchmarkTable3(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.Table3()
	}
	b.ReportMetric(metric(tb, 0, 1), "syzkaller-cov")
	b.ReportMetric(metric(tb, 2, 1), "kernelgpt-cov")
}

// BenchmarkTable4 regenerates the bug-detection table.
func BenchmarkTable4(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.Table4()
	}
	found := 0.0
	for _, row := range tb.Rows {
		if row[4] == "FOUND" {
			found++
		}
	}
	b.ReportMetric(found, "new-bugs-found")
}

// BenchmarkTable5 regenerates the per-driver comparison.
func BenchmarkTable5(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.Table5()
	}
	last := len(tb.Rows) - 1
	b.ReportMetric(metric(tb, last, 2), "syzkaller-total-cov")
	b.ReportMetric(metric(tb, last, 6), "kernelgpt-total-cov")
}

// BenchmarkTable6 regenerates the per-socket comparison.
func BenchmarkTable6(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.Table6()
	}
	last := len(tb.Rows) - 1
	b.ReportMetric(metric(tb, last, 2), "syzkaller-total-cov")
	b.ReportMetric(metric(tb, last, 5), "kernelgpt-total-cov")
}

// BenchmarkAblationIterative regenerates the §5.2.3 prompting
// ablation.
func BenchmarkAblationIterative(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.AblationIterative()
	}
	b.ReportMetric(metric(tb, 0, 1), "iterative-syscalls")
	b.ReportMetric(metric(tb, 1, 1), "all-in-one-syscalls")
}

// BenchmarkAblationModel regenerates the §5.2.3 LLM-choice ablation.
func BenchmarkAblationModel(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.AblationModel()
	}
	for _, row := range tb.Rows {
		name := strings.ReplaceAll(row[0], ".", "") + "-syscalls"
		v, _ := strconv.ParseFloat(row[1], 64)
		b.ReportMetric(v, name)
	}
}

// BenchmarkCorrectnessAudit regenerates the §5.1.3 audit.
func BenchmarkCorrectnessAudit(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.CorrectnessAudit()
	}
	b.ReportMetric(metric(tb, 1, 1), "drivers-no-missing")
}

// BenchmarkTokenCost regenerates the §5.1.1 accounting.
func BenchmarkTokenCost(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.TokenCost()
	}
	b.ReportMetric(metric(tb, 1, 1), "input-tokens")
}

// --- micro-benchmarks for the substrates (ablation / profiling) ---

var microOnce sync.Once
var microCorpus *corpus.Corpus
var microKernel *vkernel.Kernel
var microTarget *prog.Target

func microSetup(b *testing.B) (*corpus.Corpus, *vkernel.Kernel, *prog.Target) {
	b.Helper()
	microOnce.Do(func() {
		microCorpus = corpus.Build(corpus.TestConfig())
		microKernel = vkernel.New(microCorpus)
		spec := corpus.OracleSpec(microCorpus.Handler("dm"))
		spec.Merge(corpus.OracleSpec(microCorpus.Handler("cec")))
		t, err := prog.Compile(spec, microCorpus.Env())
		if err != nil {
			panic(err)
		}
		microTarget = t
	})
	return microCorpus, microKernel, microTarget
}

// BenchmarkExecutor measures virtual-kernel syscall throughput — the
// substrate's equivalent of executor speed.
func BenchmarkExecutor(b *testing.B) {
	_, k, tgt := microSetup(b)
	g := prog.NewGen(tgt, 1)
	progs := make([]*prog.Prog, 64)
	for i := range progs {
		progs[i] = g.Generate(8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Run(progs[i%len(progs)])
	}
}

// BenchmarkGenerate measures program generation throughput.
func BenchmarkGenerate(b *testing.B) {
	_, _, tgt := microSetup(b)
	g := prog.NewGen(tgt, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate(8)
	}
}

// BenchmarkMutate measures mutation throughput.
func BenchmarkMutate(b *testing.B) {
	_, _, tgt := microSetup(b)
	g := prog.NewGen(tgt, 3)
	p := g.Generate(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = g.Mutate(p, 8)
	}
}

// BenchmarkCampaign measures end-to-end fuzzing throughput.
func BenchmarkCampaign(b *testing.B) {
	_, k, tgt := microSetup(b)
	f := fuzz.New(tgt, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Run(fuzz.DefaultConfig(500, int64(i)))
	}
}

// BenchmarkCorpusBuild measures synthetic-kernel construction.
func BenchmarkCorpusBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		corpus.Build(corpus.TestConfig())
	}
}

// BenchmarkAblationRepair regenerates the repair-phase ablation.
func BenchmarkAblationRepair(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.AblationRepair()
	}
	b.ReportMetric(metric(tb, 0, 1), "valid-with-repair")
	b.ReportMetric(metric(tb, 1, 1), "valid-without-repair")
}

// BenchmarkAblationLocality regenerates the fuzzer-locality ablation.
func BenchmarkAblationLocality(b *testing.B) {
	r := sharedRunner()
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = r.AblationLocality()
	}
	b.ReportMetric(metric(tb, 0, 2), "bugs-with-locality")
	b.ReportMetric(metric(tb, 1, 2), "bugs-uniform")
}
