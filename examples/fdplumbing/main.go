// Fd plumbing and the adaptive mutation scheduler: the expanded
// scenario space of the virtual kernel.
//
// The vkernel models dup/pipe/epoll fd plumbing and an mmap/munmap
// region model with their own coverage blocks; the plumbing specs
// (corpus.PlumbingSuite) are the userspace surface that reaches them.
// This walkthrough fuzzes the bundled drivers twice with identical
// budgets and seeds — once with uniform-random operator selection,
// once with the coverage-feedback bandit scheduler — and prints the
// per-operator outcome, the territory only the plumbing surface can
// reach, and the coverage delta the scheduler buys.
//
// Run with: go run ./examples/fdplumbing
package main

import (
	"context"
	"fmt"
	"log"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/vkernel"
)

func main() {
	c := corpus.Build(corpus.TestConfig())
	kernel := vkernel.New(c)
	drivers := []string{"dm", "cec", "kvm", "kvm_vm", "kvm_vcpu"}

	oracle := []*syzlang.File{}
	for _, n := range drivers {
		oracle = append(oracle, corpus.OracleSpec(c.Handler(n)))
	}
	plumb, err := c.PlumbingSpecFor(drivers...)
	if err != nil {
		log.Fatal(err)
	}
	full := syzlang.MergeDedup(append(oracle, plumb)...)
	fmt.Printf("suite: %d oracle syscalls + %d plumbing syscalls (dup/pipe/epoll/mmap)\n",
		len(syzlang.MergeDedup(oracle...).Syscalls), len(plumb.Syscalls))

	bare := compile(c, syzlang.MergeDedup(oracle...))
	tgt := compile(c, full)
	f := fuzz.New(tgt, kernel)

	cfg := fuzz.DefaultConfig(10_000, 1)
	cfg.NoTriage = true

	// The plumbing surface opens genuinely new territory.
	noPlumb := fuzz.New(bare, kernel).Run(cfg)
	withPlumb := f.Run(cfg)
	fmt.Printf("\ncoverage without plumbing surface: %d blocks\n", noPlumb.CoverCount())
	fmt.Printf("coverage with    plumbing surface: %d blocks (+%d only reachable via dup/pipe/epoll/mmap)\n",
		withPlumb.CoverCount(), withPlumb.CoverCount()-noPlumb.CoverCount())

	// Uniform vs adaptive operator scheduling, 3 repetitions each.
	ucfg := cfg
	ucfg.UniformOps = true
	uniform := f.RunRepetitions(context.Background(), ucfg, 3)
	adaptive := f.RunRepetitions(context.Background(), cfg, 3)
	fmt.Printf("\nuniform operator selection:  mean cov %.1f\n", fuzz.MeanCover(uniform))
	fmt.Printf("adaptive bandit scheduler:   mean cov %.1f\n", fuzz.MeanCover(adaptive))

	fmt.Println("\nper-operator outcome (adaptive, rep 1):")
	fmt.Println("  operator        picks  new-blocks")
	for _, op := range adaptive[0].Ops {
		fmt.Printf("  %-14s %6d  %10d\n", op.Name, op.Picks, op.NewBlocks)
	}
	var top fuzz.OpStat
	for _, op := range adaptive[0].Ops {
		if op.NewBlocks > top.NewBlocks {
			top = op
		}
	}
	fmt.Printf("\nthe bandit funneled %d of %d mutations into %q — the operator whose\n",
		top.Picks, mutations(adaptive[0]), top.Name)
	fmt.Println("lineage kept yielding fresh blocks. Uniform selection spreads that")
	fmt.Println("budget evenly and pays for it in coverage.")
}

// mutations counts scheduler-credited mutations across the campaign.
func mutations(s *fuzz.Stats) int {
	n := 0
	for _, op := range s.Ops {
		n += op.Picks
	}
	return n
}

func compile(c *corpus.Corpus, f *syzlang.File) *prog.Target {
	if errs := syzlang.Validate(f, c.Env()); len(errs) > 0 {
		log.Fatalf("suite invalid: %v", errs[0])
	}
	tgt, err := prog.Compile(f, c.Env())
	if err != nil {
		log.Fatal(err)
	}
	return tgt
}
