// Socket specification generation and fuzzing: the RDS case of
// §5.1.4.
//
// Syzkaller's RDS descriptions cover only the receive path; the
// missing sendto description is exactly where CVE-2024-23849 (the
// rds_cmsg_recv out-of-bounds) hides. SyzDescribe cannot analyze
// sockets at all. KernelGPT reads the proto_ops registration, walks
// the setsockopt dispatch into the per-option workers, recovers the
// sockaddr_rds layout (pinning the family field to AF_RDS from the
// bind handler's rejection check), and emits the full socket surface
// — including sendto — which the fuzzing campaign then drives into
// the planted bug.
//
// Run with: go run ./examples/socketfuzz
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/engine"
	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/vkernel"
)

func main() {
	c := corpus.Build(corpus.TestConfig())
	kernel := vkernel.New(c)
	rds := c.Handler("rds")

	human := corpus.SyzkallerSpec(rds)
	fmt.Printf("existing Syzkaller suite for rds: %d syscalls (no sendto: %v)\n",
		len(human.Syscalls), !hasCall(human, "sendto$rds"))

	eng := engine.New(c, engine.WithClient(llm.NewSim("gpt-4", 11)))
	res := eng.GenerateFor(context.Background(), rds)
	if !res.Valid {
		log.Fatalf("generation failed: %v", res.RemainingErrors)
	}
	fmt.Printf("KernelGPT spec for rds: %d syscalls (sendto described: %v)\n\n",
		len(res.Spec.Syscalls), hasCall(res.Spec, "sendto$rds"))
	for _, line := range strings.Split(syzlang.Format(res.Spec), "\n") {
		if strings.HasPrefix(line, "sendto$") || strings.HasPrefix(line, "socket$") ||
			strings.Contains(line, "family") {
			fmt.Println("  ", line)
		}
	}

	campaigns := []struct {
		name string
		spec *syzlang.File
	}{{"syzkaller", human}, {"kernelgpt", res.Spec}}
	for _, cp := range campaigns {
		name, spec := cp.name, cp.spec
		tgt, err := prog.Compile(spec, c.Env())
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		stats, ferr := fuzz.New(tgt, kernel).RunParallel(context.Background(), fuzz.DefaultConfig(6000, 5), 2)
		if ferr != nil {
			log.Fatalf("%s: %v", name, ferr)
		}
		fmt.Printf("\n[%s] %d blocks, crashes: %v\n", name, stats.CoverCount(), stats.CrashTitles())
		if cr, ok := stats.Crashes["UBSAN: array-index-out-of-bounds in rds_cmsg_recv"]; ok {
			// Repro is already minimized by the campaign's triage pass.
			fmt.Printf("CVE-2024-23849 reproduced at exec %d; minimized repro:\n", cr.FirstExec)
			fmt.Print(cr.Repro)
		}
	}
}

func hasCall(f *syzlang.File, name string) bool {
	if f == nil {
		return false
	}
	for _, s := range f.Syscalls {
		if s.Name() == name {
			return true
		}
	}
	return false
}
