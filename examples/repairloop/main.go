// Validation-and-repair walkthrough (§3.2).
//
// The demo hand-breaks a generated specification the same three ways
// the fallible analysis model does — a corrupted macro name, a
// misspelled scalar type, and a dangling len[] target — runs the
// Syzkaller-equivalent validator to get structured error messages,
// and feeds spec + errors + source back to the LLM for repair,
// printing each round.
//
// Run with: go run ./examples/repairloop
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/syzlang"
)

// broken is built at runtime from real corpus macros, then corrupted
// the same three ways the fallible analysis model corrupts its
// output.
func brokenSpec(c *corpus.Corpus) string {
	dm := c.Handler("dm")
	cmd0, cmd1 := dm.Cmds[0].Name, dm.Cmds[1].Name
	return `
resource fd_dm[fd]
openat$dm(fd const[AT_FDCWD], file ptr[in, string["/dev/mapper/control"]], flags const[O_RDWR], mode const[0]) fd_dm
ioctl$` + cmd0 + `(fd fd_dm, cmd const[` + cmd0 + `_FIXME], arg ptr[inout, dm_info_demo])
ioctl$` + cmd1 + `(fd fd_dm, cmd const[` + cmd1 + `], arg ptr[inout, dm_info_demo])

dm_info_demo {
	data_size	int3
	flags	int32
	n_entries	len[entriex, int32]
	entries	array[int64]
}
`
}

func main() {
	c := corpus.Build(corpus.TestConfig())
	env := c.Env()
	client := llm.NewSim("gpt-4", 3)

	spec, perrs := syzlang.Parse(brokenSpec(c))
	if len(perrs) > 0 {
		log.Fatalf("demo spec has syntax errors: %v", perrs)
	}

	for round := 1; round <= 4; round++ {
		errs := syzlang.Validate(spec, env)
		fmt.Printf("--- round %d: %d validation errors\n", round, len(errs))
		for _, e := range errs {
			fmt.Printf("    %v\n", e)
		}
		if len(errs) == 0 {
			fmt.Println("\nspecification is valid:")
			fmt.Println(indent(syzlang.Format(spec)))
			return
		}
		prompt := buildRepairPrompt(syzlang.FormatErrors(syzlang.ValidationErrorsToErrors(errs)),
			syzlang.Format(spec))
		reply, err := client.Complete(context.Background(), llm.Request{
			Messages: prompt, Purpose: "repair", Driver: "dm",
		})
		if err != nil {
			log.Fatal(err)
		}
		fixedText := llm.ExtractSection(reply.Text, "## Repaired Specification")
		fixed, perrs := syzlang.Parse(fixedText)
		if len(perrs) > 0 {
			log.Fatalf("repair produced unparseable output: %v", perrs)
		}
		spec = fixed
	}
	log.Fatal("repair did not converge")
}

func buildRepairPrompt(errs, spec string) []llm.Message {
	var b strings.Builder
	b.WriteString(llm.SecInstruction + "\nPlease repair the specification using the validation errors.\n\n")
	b.WriteString(llm.SecErrors + "\n" + errs + "\n\n")
	b.WriteString(llm.SecSpec + "\n" + spec + "\n\n")
	b.WriteString(llm.SecSource + "\n/* source elided for the demo */\n")
	return []llm.Message{{Role: "user", Content: b.String()}}
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}
