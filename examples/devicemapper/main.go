// Device mapper end-to-end: reproduce the paper's flagship result,
// CVE-2024-23851 ("kmalloc bug in ctl_ioctl", confirmed by Linus
// Torvalds per §5.1.4).
//
// The demo contrasts three specifications for /dev/mapper/control:
//
//  1. the existing Syzkaller suite — which has no dm descriptions at
//     all, so a fuzzing campaign never even opens the device;
//  2. the SyzDescribe static baseline — which extracts the wrong
//     device name (".name" instead of ".nodename", Figure 2c) and
//     cannot see through the table dispatch, so its campaign also
//     finds nothing;
//  3. the KernelGPT-generated specification — correct path, correct
//     _IOC-encoded command values, typed dm_ioctl payload — whose
//     campaign reaches ctl_ioctl's unchecked kvmalloc size and
//     crashes the virtual kernel.
//
// Run with: go run ./examples/devicemapper
package main

import (
	"context"
	"fmt"
	"log"

	"kernelgpt/internal/baseline"
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/engine"
	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/vkernel"
)

const budget = 8000

func main() {
	c := corpus.Build(corpus.TestConfig())
	kernel := vkernel.New(c)
	dm := c.Handler("dm")

	// 1. Existing Syzkaller suite: no dm coverage possible.
	if spec := corpus.SyzkallerSpec(dm); spec == nil {
		fmt.Println("[syzkaller]   no descriptions for the device mapper at all")
	}

	// 2. SyzDescribe.
	sd := baseline.New(c).GenerateFor(dm)
	fmt.Printf("[syzdescribe] %d commands described", sd.NewSyscalls())
	if sd.Spec != nil {
		for _, s := range sd.Spec.Syscalls {
			if s.CallName == "openat" {
				fmt.Printf("; device path %s (wrong: real path is %s)",
					pathOf(s), dm.DevPath)
			}
		}
	}
	fmt.Println()
	campaign("syzdescribe", c, kernel, sd.Spec)

	// 3. KernelGPT, through the Engine facade.
	eng := engine.New(c, engine.WithClient(llm.NewSim("gpt-4", 7)))
	kg := eng.GenerateFor(context.Background(), dm)
	if !kg.Valid {
		log.Fatalf("kernelgpt generation failed: %v", kg.RemainingErrors)
	}
	fmt.Printf("[kernelgpt]   %d commands described; correct path and dm_ioctl layout\n", kg.NewSyscalls())
	stats := campaign("kernelgpt", c, kernel, kg.Spec)

	if cr, ok := stats.Crashes["kmalloc bug in ctl_ioctl"]; ok {
		fmt.Printf("\nCVE-2024-23851 reproduced at exec %d.\n", cr.FirstExec)
		// The campaign triages every crash at discovery, so Repro is
		// already the minimal program.
		tgt, _ := prog.Compile(kg.Spec, c.Env())
		if p, err := prog.Deserialize(tgt, cr.Repro); err == nil {
			fmt.Printf("minimized repro (%d calls):\n%s", len(p.Calls), cr.Repro)
		}
	} else {
		fmt.Println("\n(the kvmalloc bug did not fire within this budget; increase it and re-run)")
	}
}

func pathOf(s *syzlang.SyscallDef) string {
	for _, a := range s.Args {
		t := a.Type
		if t.Ident == "ptr" && len(t.Args) == 2 && t.Args[1].Type != nil &&
			t.Args[1].Type.Ident == "string" && len(t.Args[1].Type.Args) == 1 {
			return t.Args[1].Type.Args[0].Str
		}
	}
	return "?"
}

func campaign(name string, c *corpus.Corpus, kernel *vkernel.Kernel, spec *syzlang.File) *fuzz.Stats {
	if spec == nil || len(spec.Syscalls) == 0 {
		fmt.Printf("  %-12s no spec to fuzz\n", name)
		return &fuzz.Stats{}
	}
	tgt, err := prog.Compile(spec, c.Env())
	if err != nil {
		fmt.Printf("  %-12s spec does not compile: %v\n", name, err)
		return &fuzz.Stats{}
	}
	// Shard the campaign across two workers; the merged results are
	// identical to a single-shard run.
	stats, err := fuzz.New(tgt, kernel).RunParallel(context.Background(), fuzz.DefaultConfig(budget, 3), 2)
	if err != nil {
		fmt.Printf("  %-12s campaign interrupted: %v\n", name, err)
		return stats
	}
	fmt.Printf("  %-12s campaign: %d blocks covered, %d unique crashes %v\n",
		name, stats.CoverCount(), stats.UniqueCrashes(), stats.CrashTitles())
	return stats
}
