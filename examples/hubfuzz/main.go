// Hub-coordinated fuzzing: several campaigns pooling their corpora,
// coverage, and crashes through a coordination daemon instead of
// re-discovering the same state in isolation.
//
// This walkthrough starts an in-process hub (the same server cmd/
// syzhub runs), attaches two half-budget workers to it, and compares
// the result against one lone worker spending the whole budget: the
// hub's union coverage matches (or beats) the lone run, each attached
// worker beats what it would have found detached, and the hub's crash
// table holds one record per normalized repro no matter how many
// workers hit it.
//
// Run with: go run ./examples/hubfuzz
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/hub"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/vkernel"
)

func main() {
	c := corpus.Build(corpus.TestConfig())
	kernel := vkernel.New(c)
	drivers := []string{"dm", "cec", "kvm", "kvm_vm", "kvm_vcpu"}
	files := []*syzlang.File{}
	for _, n := range drivers {
		files = append(files, corpus.OracleSpec(c.Handler(n)))
	}
	tgt, err := prog.Compile(syzlang.MergeDedup(files...), c.Env())
	if err != nil {
		log.Fatal(err)
	}
	f := fuzz.New(tgt, kernel)
	const budget = 10_000

	// The baseline: one detached worker spending the whole budget.
	lone := f.Run(fuzz.DefaultConfig(budget, 1))
	fmt.Printf("lone worker:   %6d execs -> %4d blocks, %d crashes\n",
		lone.Execs, lone.CoverCount(), lone.UniqueCrashes())

	// Start the hub: an authoritative on-disk store behind an HTTP
	// server (cmd/syzhub runs exactly this handler).
	dir, err := os.MkdirTemp("", "hubfuzz-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := corpusstore.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	h, err := hub.New(tgt, store)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: h.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("hub:           listening on %s, store %s\n", baseURL, dir)

	// Two workers at half budget each, syncing through the hub at
	// every checkpoint boundary. They run in sequence here so the
	// walkthrough is deterministic; concurrent workers pool just the
	// same, with timing-dependent sync contents.
	ctx := context.Background()
	var attached []int
	for i, seed := range []int64{2, 3} {
		name := fmt.Sprintf("worker-%c", 'a'+i)
		cl, err := hub.Dial(ctx, baseURL, name, tgt)
		if err != nil {
			log.Fatal(err)
		}
		cfg := fuzz.DefaultConfig(budget/2, seed)
		cfg.Hub = cl
		stats, err := f.RunContext(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		detached := f.Run(fuzz.DefaultConfig(budget/2, seed))
		attached = append(attached, stats.CoverCount())
		fmt.Printf("%s:      %6d execs -> %4d blocks (%4d if detached), %d crashes\n",
			name, stats.Execs, stats.CoverCount(), detached.CoverCount(), stats.UniqueCrashes())
	}

	st := h.Stats()
	fmt.Printf("hub union:     %6d execs -> %4d blocks across %d workers (gen %d, %d pooled seeds)\n",
		st.Execs, st.UnionCover, len(st.Workers), st.Generation, st.Seeds)

	crashes := h.Crashes()
	shared := 0
	for _, cr := range crashes {
		if cr.Workers > 1 {
			shared++
		}
	}
	fmt.Printf("crash table:   %d unique crashes (%d found by both workers, deduplicated by normalized repro)\n",
		len(crashes), shared)

	best := attached[0]
	if attached[1] > best {
		best = attached[1]
	}
	fmt.Printf("\nunion %d vs best single worker %d vs lone full-budget %d (union/lone = %d%%)\n",
		st.UnionCover, best, lone.CoverCount(), 100*st.UnionCover/lone.CoverCount())
}
