// Quickstart: generate a syscall specification for one kernel driver
// with KernelGPT and print it.
//
// This walks the complete §3 pipeline on the paper's running example,
// the device mapper driver: the extractor locates the operation
// handler, the analysis LLM iteratively deduces identifier values
// (seeing through the .nodename registration, the dm_ctl_ioctl →
// ctl_ioctl delegation, and the _IOC_NR command modification),
// recovers the dm_ioctl payload type with its len-relation, and the
// validator/repair loop certifies the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/engine"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/syzlang"
)

func main() {
	// Build the synthetic kernel codebase (a small scale is plenty
	// for one driver) and index it with the extractor.
	kernel := corpus.Build(corpus.TestConfig())

	// The Engine facade wires the analysis LLM (the simulated GPT-4
	// profile), middleware, and the paper's pipeline defaults
	// (MAX_ITER=5, repair on) behind functional options.
	eng := engine.New(kernel,
		engine.WithClient(llm.NewSim("gpt-4", 42)),
		engine.WithCache(1024))

	dm := kernel.Handler("dm")
	if dm == nil {
		log.Fatal("device mapper handler not in corpus")
	}
	fmt.Printf("analyzing %s (device %s, %d commands in ground truth)\n\n",
		dm.Name, dm.DevPath, len(dm.Cmds))

	res := eng.GenerateFor(context.Background(), dm)

	switch {
	case !res.Valid:
		log.Fatalf("generation failed: %v", res.RemainingErrors)
	case res.Repaired:
		fmt.Println("specification was invalid at first and repaired from validator errors (§3.2)")
	default:
		fmt.Println("specification validated on the first try")
	}
	fmt.Printf("LLM analysis rounds: %d\n\n", res.Iterations)
	fmt.Println(syzlang.Format(res.Spec))

	u := eng.Usage()
	fmt.Printf("# llm usage: %d calls, %d input / %d output tokens (≈$%.4f)\n",
		u.Calls, u.PromptTokens, u.CompletionTokens, u.CostUSD())
}
