// Corpus persistence and checkpoint/resume: campaigns that start
// warm instead of rediscovering the same coverage every run.
//
// A cold campaign evolves a seed corpus from scratch and — with
// fuzz.Config.CorpusDir set — flushes it to a persistent store: a
// directory of content-addressed repro-text files plus a JSON
// manifest carrying each seed's scheduling weight, lineage bonus, and
// operator provenance. A later campaign pointed at the same store
// imports those seeds (skipping any that no longer validate),
// replays them to re-establish their coverage, and keeps evolving
// from there. This walkthrough runs the cold campaign, then shows a
// resumed campaign reaching the stored corpus's coverage on a
// fraction of the budget — and what the same small budget covers
// from a cold start.
//
// Run with: go run ./examples/corpusresume
package main

import (
	"fmt"
	"log"
	"os"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/vkernel"
)

func main() {
	c := corpus.Build(corpus.TestConfig())
	kernel := vkernel.New(c)
	drivers := []string{"dm", "cec", "kvm", "kvm_vm", "kvm_vcpu"}

	files := []*syzlang.File{}
	for _, n := range drivers {
		files = append(files, corpus.OracleSpec(c.Handler(n)))
	}
	plumb, err := c.PlumbingSpecFor(drivers...)
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := prog.Compile(syzlang.MergeDedup(append(files, plumb)...), c.Env())
	if err != nil {
		log.Fatal(err)
	}
	f := fuzz.New(tgt, kernel)

	dir, err := os.MkdirTemp("", "corpusresume-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Cold campaign: full budget, corpus flushed to the store.
	const coldBudget = 10_000
	cold := fuzz.DefaultConfig(coldBudget, 1)
	cold.CorpusDir = dir
	coldStats := f.Run(cold)
	fmt.Printf("cold campaign:    %5d execs -> %4d blocks, %d crashes, %d seeds persisted to %s\n",
		coldStats.Execs, coldStats.CoverCount(), coldStats.UniqueCrashes(), coldStats.CorpusSize, dir)

	// What the store itself covers: replay every stored seed once.
	store, err := corpusstore.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	seeds, rep, err := store.Load(tgt)
	if err != nil {
		log.Fatal(err)
	}
	stored := vkernel.NewCoverSet(kernel.NumBlocks())
	vm := kernel.NewVM()
	for _, st := range seeds {
		for _, b := range vm.Run(st.Prog).Cov {
			stored.Add(b)
		}
	}
	fmt.Printf("stored corpus:    %5d seeds -> %4d blocks (%s)\n", rep.Loaded, stored.Count(), rep)

	// Resumed campaign at 20%% of the cold budget: the store's seeds
	// are imported and replayed, so its coverage is the baseline, and
	// the remaining budget evolves the corpus further.
	const resumeBudget = coldBudget / 5
	resume := fuzz.DefaultConfig(resumeBudget, 2)
	resume.CorpusDir = dir
	resumed := f.Run(resume)

	// A cold start at the same small budget, for contrast.
	coldSmall := f.Run(fuzz.DefaultConfig(resumeBudget, 2))

	fmt.Printf("resumed campaign: %5d execs -> %4d blocks (>= stored %d: %v)\n",
		resumed.Execs, resumed.CoverCount(), stored.Count(), resumed.CoverCount() >= stored.Count())
	fmt.Printf("cold at same budget: %2d execs -> %4d blocks\n", coldSmall.Execs, coldSmall.CoverCount())
	fmt.Printf("\nwarm start reached %d blocks with %d%% of the budget; the cold start got %d%% of the way there\n",
		resumed.CoverCount(), 100*resumeBudget/coldBudget, 100*coldSmall.CoverCount()/resumed.CoverCount())
}
