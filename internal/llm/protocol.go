package llm

import (
	"fmt"
	"strconv"
	"strings"
)

// The structured response protocol. The LLM boundary stays textual
// (prompts and completions are plain strings, as with the real API);
// these helpers define the bullet format both the simulated model and
// KernelGPT's response parser agree on — the role the few-shot
// examples play in the paper's prompts.

// CmdDecl is one command identifier the model deduced.
type CmdDecl struct {
	// Macro is the userspace command value's macro name.
	Macro string
	// Handler is the worker function for the command.
	Handler string
	// Arg is the payload struct name; ArgInt marks a plain int
	// payload; both empty/false means no payload.
	Arg    string
	ArgInt bool
	// Dir is "in"/"out"/"inout"/"none".
	Dir string
	// Plain marks raw (non-_IOC-encoded) values such as sockopts.
	Plain bool
}

// UnknownRef is a missing definition the model needs next iteration.
type UnknownRef struct {
	Kind  string // "FUNC" or "TYPE"
	Name  string
	Usage string
}

// SockCallDecl is one implemented socket call the model found.
type SockCallDecl struct {
	Call string // bind, connect, sendto, ...
	Addr string // sockaddr struct name, "" if unknown
	Fn   string // kernel handler function name
}

// IdentResult is the stage-1 (identifier deduction) result.
type IdentResult struct {
	DevicePath string
	// Domain/Level are the socket family and sockopt level macros.
	Domain string
	Level  string
	Cmds   []CmdDecl
	Calls  []SockCallDecl
	// Unknown lists dispatched functions the model could not see.
	Unknown []UnknownRef
}

// FormatIdentResult renders the stage-1 completion text.
func FormatIdentResult(r *IdentResult) string {
	var b strings.Builder
	if r.DevicePath != "" {
		b.WriteString("## Device Path\n")
		b.WriteString(r.DevicePath + "\n")
	}
	if r.Domain != "" || r.Level != "" {
		fmt.Fprintf(&b, "## Socket Family\n- DOMAIN: %s\n- LEVEL: %s\n", orDash(r.Domain), orDash(r.Level))
	}
	if len(r.Cmds) > 0 {
		b.WriteString("## Commands\n")
		for _, c := range r.Cmds {
			fmt.Fprintf(&b, "- MACRO: %s HANDLER: %s ARG: %s DIR: %s PLAIN: %t\n",
				c.Macro, orDash(c.Handler), argField(c), orDash(c.Dir), c.Plain)
		}
	}
	if len(r.Calls) > 0 {
		b.WriteString("## Socket Calls\n")
		for _, c := range r.Calls {
			fmt.Fprintf(&b, "- CALL: %s ADDR: %s FN: %s\n", c.Call, orDash(c.Addr), orDash(c.Fn))
		}
	}
	writeUnknown(&b, r.Unknown)
	return b.String()
}

func argField(c CmdDecl) string {
	switch {
	case c.Arg != "":
		return c.Arg
	case c.ArgInt:
		return "int"
	}
	return "-"
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func writeUnknown(b *strings.Builder, refs []UnknownRef) {
	if len(refs) == 0 {
		return
	}
	b.WriteString("## Unknown\n")
	for _, u := range refs {
		fmt.Fprintf(b, "- %s: %s USAGE: %s\n", u.Kind, u.Name, u.Usage)
	}
}

// ParseIdentResult parses a stage-1 completion.
func ParseIdentResult(text string) *IdentResult {
	r := &IdentResult{}
	r.DevicePath = firstLine(ExtractSection(text, "## Device Path"))
	for _, ln := range lines(ExtractSection(text, "## Socket Family")) {
		if v, ok := bulletValue(ln, "DOMAIN"); ok {
			r.Domain = undash(v)
		}
		if v, ok := bulletValue(ln, "LEVEL"); ok {
			r.Level = undash(v)
		}
	}
	for _, ln := range lines(ExtractSection(text, "## Commands")) {
		kv := parseKV(ln)
		if kv["MACRO"] == "" {
			continue
		}
		c := CmdDecl{
			Macro:   kv["MACRO"],
			Handler: undash(kv["HANDLER"]),
			Dir:     undash(kv["DIR"]),
			Plain:   kv["PLAIN"] == "true",
		}
		switch arg := undash(kv["ARG"]); arg {
		case "int":
			c.ArgInt = true
		case "":
		default:
			c.Arg = arg
		}
		r.Cmds = append(r.Cmds, c)
	}
	for _, ln := range lines(ExtractSection(text, "## Socket Calls")) {
		kv := parseKV(ln)
		if kv["CALL"] == "" {
			continue
		}
		r.Calls = append(r.Calls, SockCallDecl{Call: kv["CALL"], Addr: undash(kv["ADDR"]), Fn: undash(kv["FN"])})
	}
	r.Unknown = parseUnknown(text)
	return r
}

func parseUnknown(text string) []UnknownRef {
	var out []UnknownRef
	for _, ln := range lines(ExtractSection(text, "## Unknown")) {
		ln = strings.TrimPrefix(strings.TrimSpace(ln), "- ")
		kind, rest, ok := strings.Cut(ln, ": ")
		if !ok {
			continue
		}
		name, usage, _ := strings.Cut(rest, " USAGE:")
		out = append(out, UnknownRef{
			Kind: kind, Name: strings.TrimSpace(name),
			Usage: strings.TrimSpace(usage),
		})
	}
	return out
}

// TypeResult is the stage-2 (type recovery) result: syzlang struct
// definition text plus unresolved nested types.
type TypeResult struct {
	// Defs is syzlang source text (struct/union/flags definitions).
	Defs    string
	Unknown []UnknownRef
}

// FormatTypeResult renders the stage-2 completion.
func FormatTypeResult(r *TypeResult) string {
	var b strings.Builder
	b.WriteString("## Type Definitions\n")
	b.WriteString(r.Defs)
	if !strings.HasSuffix(r.Defs, "\n") {
		b.WriteByte('\n')
	}
	writeUnknown(&b, r.Unknown)
	return b.String()
}

// ParseTypeResult parses a stage-2 completion.
func ParseTypeResult(text string) *TypeResult {
	return &TypeResult{
		Defs:    ExtractSection(text, "## Type Definitions"),
		Unknown: parseUnknown(text),
	}
}

// DepDecl is one resource dependency the model found.
type DepDecl struct {
	// Cmd creates the resource; Creates is the anon inode tag (the
	// secondary handler name); Fops the secondary operations struct.
	Cmd     string
	Creates string
	Fops    string
}

// DepResult is the stage-3 (dependency analysis) result.
type DepResult struct {
	Deps    []DepDecl
	Unknown []UnknownRef
}

// FormatDepResult renders the stage-3 completion.
func FormatDepResult(r *DepResult) string {
	var b strings.Builder
	b.WriteString("## Dependencies\n")
	for _, d := range r.Deps {
		fmt.Fprintf(&b, "- CMD: %s CREATES: %s FOPS: %s\n", d.Cmd, d.Creates, orDash(d.Fops))
	}
	writeUnknown(&b, r.Unknown)
	return b.String()
}

// ParseDepResult parses a stage-3 completion.
func ParseDepResult(text string) *DepResult {
	r := &DepResult{}
	for _, ln := range lines(ExtractSection(text, "## Dependencies")) {
		kv := parseKV(ln)
		if kv["CMD"] == "" {
			continue
		}
		r.Deps = append(r.Deps, DepDecl{Cmd: kv["CMD"], Creates: kv["CREATES"], Fops: undash(kv["FOPS"])})
	}
	r.Unknown = parseUnknown(text)
	return r
}

// --- low-level helpers ---

func lines(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

func bulletValue(ln, key string) (string, bool) {
	ln = strings.TrimPrefix(strings.TrimSpace(ln), "- ")
	if rest, ok := strings.CutPrefix(ln, key+": "); ok {
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// parseKV splits "- K1: v1 K2: v2 ..." bullets where keys are
// ALLCAPS tokens followed by ": ".
func parseKV(ln string) map[string]string {
	out := map[string]string{}
	ln = strings.TrimPrefix(strings.TrimSpace(ln), "- ")
	fields := strings.Fields(ln)
	key := ""
	var val []string
	flush := func() {
		if key != "" {
			out[key] = strings.Join(val, " ")
		}
		val = nil
	}
	for _, f := range fields {
		if strings.HasSuffix(f, ":") && isAllCaps(strings.TrimSuffix(f, ":")) {
			flush()
			key = strings.TrimSuffix(f, ":")
			continue
		}
		val = append(val, f)
	}
	flush()
	return out
}

func isAllCaps(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'A' && c <= 'Z') && c != '_' {
			return false
		}
	}
	return true
}

// ParseIntDefault parses an integer with a fallback.
func ParseIntDefault(s string, def int) int {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return def
	}
	return v
}

// undash turns the "-" placeholder back into an empty string.
func undash(s string) string {
	if s == "-" {
		return ""
	}
	return s
}
