package llm

import (
	"context"
	"fmt"
	"strings"

	"kernelgpt/internal/ccode"
	"kernelgpt/internal/syzlang"
)

// SimModel is the deterministic simulated analysis LLM. Each
// completion genuinely analyzes the C source embedded in the prompt
// (re-parsing it with the ccode package — the model "reads" only what
// the prompt contains), filtered through the model's capability
// profile, with seeded fallibility injecting repairable and
// unrepairable specification errors. Completions are pure functions
// of (seed, prompt), so SimModel is safe for concurrent use: the only
// mutable state is the mutex-protected usage counter.
type SimModel struct {
	name  string
	caps  Capability
	seed  uint64
	usage UsageCounter
}

// NewSim returns a simulated model. The seed makes fallibility
// deterministic per campaign.
func NewSim(name string, seed uint64) *SimModel {
	return &SimModel{name: name, caps: ProfileFor(name), seed: seed}
}

// Name implements Client.
func (m *SimModel) Name() string { return m.name }

// Usage implements Client.
func (m *SimModel) Usage() Usage { return m.usage.Snapshot() }

// Caps exposes the capability profile (used by ablation harnesses).
func (m *SimModel) Caps() Capability { return m.caps }

// chance returns a deterministic pseudo-random draw in [0,1) keyed by
// the model seed and a string.
func (m *SimModel) chance(key string) float64 {
	h := m.seed ^ 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h%1_000_000) / 1_000_000
}

// Complete implements Client.
func (m *SimModel) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	var prompt strings.Builder
	for _, msg := range req.Messages {
		prompt.WriteString(msg.Content)
		prompt.WriteByte('\n')
	}
	text := prompt.String()
	ptoks := CountTokens(text)

	instr := strings.ToLower(ExtractSection(text, SecInstruction))
	src := ExtractSection(text, SecSource)
	// Context window: content beyond the window is simply not seen.
	if ptoks > m.caps.ContextTokens {
		keep := m.caps.ContextTokens * 4
		if keep < len(src) {
			src = src[:keep]
		}
	}
	// Attention dilution: the larger the prompt relative to the
	// window, the more likely any individual item is overlooked —
	// the mechanism behind the all-in-one ablation's losses.
	dilute := 0.0
	if over := ptoks - 6000; over > 0 {
		dilute = float64(over) / float64(m.caps.ContextTokens)
		if dilute > 0.85 {
			dilute = 0.85
		}
	}

	var resp string
	switch {
	case strings.Contains(instr, "repair"):
		resp = m.repair(text)
	case strings.Contains(instr, "dependency analysis"):
		resp = m.analyzeDeps(text, src)
	case strings.Contains(instr, "type definitions"):
		resp = m.analyzeTypes(text, src, dilute)
	default: // identifier deduction (also the all-in-one first half)
		resp = m.analyzeIdent(text, src, dilute)
	}
	call := Usage{Calls: 1, PromptTokens: ptoks, CompletionTokens: CountTokens(resp)}
	m.usage.Record(call)
	return Response{Text: resp, Usage: call}, nil
}

// --- stage 1: identifier deduction ---

func (m *SimModel) analyzeIdent(prompt, src string, dilute float64) string {
	ix := ccode.NewIndex(map[string]string{"prompt.c": src})
	r := &IdentResult{}
	unknowns := parseUnknown(prompt)

	// Device/socket discovery happens when registrations are present.
	m.discoverRegistration(ix, r)

	// Determine the dispatch function to analyze: the requested
	// unknown FUNC, else the fops/proto_ops entry.
	var targets []UnknownRef
	for _, u := range unknowns {
		if u.Kind == "FUNC" {
			targets = append(targets, u)
		}
	}
	if len(targets) == 0 {
		if entry := m.entryFunction(ix); entry != "" {
			targets = append(targets, UnknownRef{Kind: "FUNC", Name: entry})
		}
	}
	seen := map[string]bool{}
	for len(targets) > 0 {
		u := targets[0]
		targets = targets[1:]
		if seen[u.Name] {
			continue
		}
		seen[u.Name] = true
		fn := ix.Function(u.Name)
		if fn == nil {
			// Not in the prompt: genuinely unknown, ask for it.
			r.Unknown = append(r.Unknown, u)
			continue
		}
		more := m.analyzeDispatchFn(ix, fn, u, r)
		targets = append(targets, more...)
	}

	// Fallibility: drop commands, corrupt one macro name.
	r.Cmds = m.dropAndCorrupt(r.Cmds, dilute)
	return FormatIdentResult(r)
}

// discoverRegistration fills device path / socket family info from
// registrations visible in the prompt.
func (m *SimModel) discoverRegistration(ix *ccode.Index, r *IdentResult) {
	for _, reg := range ix.Registrations("miscdevice") {
		node, hasNode := reg.Fields["nodename"]
		if hasNode && m.caps.Nodename {
			if s, ok := ix.EvalString(node); ok {
				r.DevicePath = "/dev/" + s
				continue
			}
		}
		if name, ok := reg.Fields["name"]; ok {
			if s, ok := ix.EvalString(name); ok {
				r.DevicePath = "/dev/" + s
			}
		}
	}
	// Char devices: register_chrdev(MAJOR, "name", &fops) inside an
	// init function.
	for _, fn := range ix.Functions {
		info := ccode.AnalyzeBody(fn.Body)
		for _, call := range append(info.Calls, info.Delegations...) {
			if call.Name != "register_chrdev" || len(call.Args) < 3 {
				continue
			}
			for _, a := range call.Args {
				if strings.HasPrefix(a, `"`) {
					r.DevicePath = "/dev/" + ccode.StringValue(strings.ReplaceAll(a, " ", ""))
				}
			}
		}
	}
	for _, reg := range ix.Registrations("proto_ops") {
		r.Domain = strings.TrimSpace(reg.Fields["family"])
		// Socket calls implemented by this family.
		for _, call := range []string{"bind", "connect", "sendmsg", "recvmsg", "listen", "accept", "poll"} {
			fnName, ok := reg.Fields[call]
			if !ok {
				continue
			}
			decl := SockCallDecl{Call: call, Fn: strings.TrimSpace(fnName)}
			if fn := ix.Function(decl.Fn); fn != nil {
				decl.Addr = sockaddrCast(fn.Body)
			} else {
				r.Unknown = append(r.Unknown, UnknownRef{
					Kind: "FUNC", Name: decl.Fn, Usage: "sockcall " + call,
				})
			}
			r.Calls = append(r.Calls, decl)
		}
	}
}

// sockaddrCast finds "(struct X *)uaddr" casts in a bind/connect
// body.
func sockaddrCast(body string) string {
	idx := strings.Index(body, "struct ")
	for idx >= 0 {
		rest := body[idx+len("struct "):]
		end := 0
		for end < len(rest) && (rest[end] == '_' || rest[end] >= 'a' && rest[end] <= 'z' || rest[end] >= '0' && rest[end] <= '9') {
			end++
		}
		name := rest[:end]
		if strings.HasPrefix(name, "sockaddr_") {
			return name
		}
		next := strings.Index(rest, "struct ")
		if next < 0 {
			return ""
		}
		idx += len("struct ") + next
	}
	return ""
}

// entryFunction finds the ioctl/setsockopt entry point from a
// registration in the prompt.
func (m *SimModel) entryFunction(ix *ccode.Index) string {
	for _, reg := range ix.Registrations("file_operations") {
		if fn, ok := reg.Fields["unlocked_ioctl"]; ok {
			return strings.TrimSpace(fn)
		}
	}
	for _, reg := range ix.Registrations("proto_ops") {
		if fn, ok := reg.Fields["setsockopt"]; ok {
			return strings.TrimSpace(fn)
		}
	}
	return ""
}

// analyzeDispatchFn analyzes one function: switch dispatch, lookup
// tables, or delegation. Returns further functions to analyze (when
// their source is already in the prompt).
func (m *SimModel) analyzeDispatchFn(ix *ccode.Index, fn *ccode.Function, req UnknownRef, r *IdentResult) []UnknownRef {
	info := ccode.AnalyzeBody(fn.Body)
	modified := bodyModifiesIdent(info)

	// Level check for sockopt dispatchers: "if (level != SOL_X)".
	if lvl := levelCheck(fn.Body); lvl != "" {
		r.Level = lvl
	}

	if sw := anySwitch(info); sw != nil {
		m.analyzeSwitch(ix, sw, modified, r)
		return nil
	}
	// Table lookup dispatch (the dm pattern).
	if table := scanIoctlTable(srcOf(ix)); len(table) > 0 && calledLookup(info) {
		if m.caps.LookupTable {
			arg, argInt := copiedStruct(info)
			for _, ent := range table {
				macro := ent.nrMacro
				if modified && m.caps.IdentifierMod {
					if full, ok := invertNr(ix, ent.nrMacro); ok {
						macro = full
					}
				}
				r.Cmds = append(r.Cmds, CmdDecl{
					Macro: macro, Handler: ent.fn, Arg: arg, ArgInt: argInt,
					Dir: m.dirOf(ix, macro),
				})
			}
		}
		return nil
	}
	// Whole-body delegation: follow if present, else report unknown.
	for _, d := range info.Delegations {
		if inner := ix.Function(d.Name); inner != nil {
			return []UnknownRef{{Kind: "FUNC", Name: d.Name, Usage: d.Raw}}
		}
		r.Unknown = append(r.Unknown, UnknownRef{Kind: "FUNC", Name: d.Name, Usage: d.Raw})
	}
	// Socket call handlers requested with usage "sockcall <name>".
	if call, ok := strings.CutPrefix(req.Usage, "sockcall "); ok {
		r.Calls = append(r.Calls, SockCallDecl{
			Call: strings.TrimSpace(call),
			Addr: sockaddrCast(fn.Body),
			Fn:   fn.Name,
		})
		return nil
	}
	// Worker function analysis (socket option workers reached via
	// usage "opt MACRO").
	if opt, ok := strings.CutPrefix(req.Usage, "opt "); ok {
		arg, argInt := copiedStruct(info)
		r.Cmds = append(r.Cmds, CmdDecl{
			Macro: strings.TrimSpace(opt), Handler: fn.Name,
			Arg: arg, ArgInt: argInt, Dir: "in", Plain: true,
		})
	}
	return nil
}

func srcOf(ix *ccode.Index) string {
	for _, s := range ix.Files() {
		return s
	}
	return ""
}

func bodyModifiesIdent(info *ccode.BodyInfo) bool {
	for _, rhs := range info.Assigns {
		if strings.Contains(rhs, "_IOC_NR") {
			return true
		}
	}
	for i := range info.Switches {
		if strings.Contains(info.Switches[i].Expr, "_IOC_NR") {
			return true
		}
	}
	return false
}

func anySwitch(info *ccode.BodyInfo) *ccode.SwitchInfo {
	if len(info.Switches) == 0 {
		return nil
	}
	return &info.Switches[0]
}

func calledLookup(info *ccode.BodyInfo) bool {
	for _, c := range info.Calls {
		if strings.Contains(c.Name, "lookup_ioctl") {
			return true
		}
	}
	return false
}

// copiedStruct inspects copy_from_user/copy_from_sockptr destinations.
func copiedStruct(info *ccode.BodyInfo) (arg string, argInt bool) {
	if len(info.CopyFromUser) > 0 {
		return info.CopyFromUser[0], false
	}
	for _, c := range info.Calls {
		if c.Name == "copy_from_sockptr" {
			for _, a := range c.Args {
				if i := strings.Index(a, "struct "); i >= 0 {
					name := strings.Fields(a[i+len("struct "):])[0]
					return name, false
				}
				if strings.Contains(a, "sizeof ( int )") || strings.Contains(a, "sizeof(int)") {
					return "", true
				}
			}
		}
		if c.Name == "get_user" {
			return "", true
		}
	}
	return "", false
}

func levelCheck(body string) string {
	idx := strings.Index(body, "level !=")
	if idx < 0 {
		return ""
	}
	rest := strings.TrimSpace(body[idx+len("level !="):])
	end := 0
	for end < len(rest) && (rest[end] == '_' || rest[end] >= 'A' && rest[end] <= 'Z' || rest[end] >= '0' && rest[end] <= '9') {
		end++
	}
	return rest[:end]
}

// analyzeSwitch converts switch cases to command declarations.
func (m *SimModel) analyzeSwitch(ix *ccode.Index, sw *ccode.SwitchInfo, modified bool, r *IdentResult) {
	for _, cs := range sw.Cases {
		label := strings.TrimSpace(cs.Label)
		macro := label
		if modified {
			if m.caps.IdentifierMod {
				if full, ok := m.invert(ix, label); ok {
					macro = full
				}
			}
			// Without the capability the raw (modified) label is
			// reported — the wrong-identifier failure of §5.1.3.
		}
		decl := CmdDecl{Macro: macro, Dir: m.dirOf(ix, macro)}
		if len(cs.Calls) > 0 {
			for _, c := range cs.Calls {
				if c != "copy_from_user" && c != "get_user" && c != "put_user" {
					decl.Handler = c
				}
			}
		}
		info := ccode.AnalyzeBody("{" + cs.Body + "}")
		decl.Arg, decl.ArgInt = copiedStruct(info)
		if decl.Handler != "" && decl.Arg == "" && !decl.ArgInt {
			// Socket-style dispatch: the worker holds the payload
			// logic; request it, tagging the macro for correlation.
			r.Unknown = append(r.Unknown, UnknownRef{
				Kind: "FUNC", Name: decl.Handler, Usage: "opt " + macro,
			})
			if isPlainOption(ix, macro) {
				continue // resolved when the worker arrives
			}
		}
		decl.Plain = isPlainOption(ix, macro)
		r.Cmds = append(r.Cmds, decl)
	}
}

// isPlainOption reports whether a macro is a small raw value (sockopt
// style) rather than an _IOC encoding.
func isPlainOption(ix *ccode.Index, macro string) bool {
	v, ok := ix.ResolveMacroInt(macro)
	if !ok {
		return false
	}
	return v < 1<<16
}

// dirOf recovers the data direction from the _IOC macro text (the
// way a reader does), falling back to the numeric encoding.
func (m *SimModel) dirOf(ix *ccode.Index, macro string) string {
	if mac := ix.MacroDef(macro); mac != nil {
		val := strings.TrimSpace(mac.Value)
		switch {
		case strings.HasPrefix(val, "_IOWR"):
			return "inout"
		case strings.HasPrefix(val, "_IOW"):
			return "in"
		case strings.HasPrefix(val, "_IOR"):
			return "out"
		case strings.HasPrefix(val, "_IO"):
			return "none"
		}
	}
	v, ok := ix.ResolveMacroInt(macro)
	if !ok || v < 1<<16 {
		return "in"
	}
	switch ccode.IOCDir(v) {
	case 1:
		return "in"
	case 2:
		return "out"
	case 3:
		return "inout"
	}
	return "none"
}

// invert resolves a modified identifier back to its userspace macro;
// occasionally (the §5.1.3 audit's "3 wrong identifier values") even
// a strong model picks a neighboring macro — a semantic error
// validation cannot catch.
func (m *SimModel) invert(ix *ccode.Index, nrLabel string) (string, bool) {
	full, ok := invertNr(ix, nrLabel)
	if !ok {
		return "", false
	}
	if m.chance("wrongid:"+nrLabel) < 0.025 {
		if other, ok2 := neighborIoctlMacro(ix, full); ok2 {
			return other, true
		}
	}
	return full, true
}

// neighborIoctlMacro returns a different _IO-encoded macro from the
// same header, if any.
func neighborIoctlMacro(ix *ccode.Index, not string) (string, bool) {
	var names []string
	//syzlint:unordered -- only the lexicographic minimum survives below
	for name, mac := range ix.Macros {
		if name != not && len(mac.Params) == 0 && strings.Contains(mac.Value, "_IO") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", false
	}
	best := names[0]
	for _, n := range names[1:] {
		if n < best {
			best = n
		}
	}
	return best, true
}

// invertNr finds the full _IOC-encoded macro whose nr equals the
// given nr label — first textually (the _IO* invocation names the nr
// macro as its second argument, which is how a human reads it), then
// numerically.
func invertNr(ix *ccode.Index, nrLabel string) (string, bool) {
	for name, mac := range ix.Macros {
		if name == nrLabel || len(mac.Params) > 0 || !strings.Contains(mac.Value, "_IO") {
			continue
		}
		if containsToken(mac.Value, nrLabel) {
			return name, true
		}
	}
	nrVal, ok := ix.ResolveMacroInt(nrLabel)
	if !ok {
		return "", false
	}
	for name, mac := range ix.Macros {
		if name == nrLabel || len(mac.Params) > 0 || !strings.Contains(mac.Value, "_IO") {
			continue
		}
		v, ok := ix.ResolveMacroInt(name)
		if ok && ccode.IOCNr(v) == nrVal {
			return name, true
		}
	}
	return "", false
}

// containsToken reports whether ident occurs in text as a whole
// identifier token.
func containsToken(text, ident string) bool {
	for _, t := range ccode.LexC(text) {
		if t.Kind == ccode.CIdent && t.Text == ident {
			return true
		}
	}
	return false
}

// dropAndCorrupt applies the fallibility model to stage-1 output.
func (m *SimModel) dropAndCorrupt(cmds []CmdDecl, dilute float64) []CmdDecl {
	var out []CmdDecl
	for _, c := range cmds {
		if m.chance("drop:"+c.Macro) < m.caps.DropRate+dilute {
			continue
		}
		out = append(out, c)
	}
	if len(out) > 0 {
		key := "corrupt:" + out[0].Macro
		if m.chance(key) < m.caps.ErrorRate/2 {
			idx := int(m.chance(key+":idx")*1000) % len(out)
			out[idx].Macro += "_FIXME"
		}
	}
	return out
}

// --- stage 2: type recovery ---

func (m *SimModel) analyzeTypes(prompt, src string, dilute float64) string {
	ix := ccode.NewIndex(map[string]string{"prompt.c": src})
	var wanted []string
	for _, u := range parseUnknown(prompt) {
		if u.Kind == "TYPE" {
			wanted = append(wanted, u.Name)
		}
	}
	r := &TypeResult{}
	var defs strings.Builder
	emitted := map[string]bool{}
	for len(wanted) > 0 {
		name := wanted[0]
		wanted = wanted[1:]
		if emitted[name] {
			continue
		}
		emitted[name] = true
		if m.chance("losetype:"+name) < dilute {
			continue // attention dilution: the type is overlooked
		}
		st := ix.StructDef(name)
		if st == nil {
			r.Unknown = append(r.Unknown, UnknownRef{Kind: "TYPE", Name: name})
			continue
		}
		text, nested := m.structToSyzlang(ix, st, src)
		defs.WriteString(text)
		defs.WriteByte('\n')
		wanted = append(wanted, nested...)
	}
	r.Defs = m.injectTypeErrors(defs.String())
	return FormatTypeResult(r)
}

// structToSyzlang converts one C struct to a syzlang definition using
// the capability-gated semantic analysis.
func (m *SimModel) structToSyzlang(ix *ccode.Index, st *ccode.Struct, src string) (string, []string) {
	var b strings.Builder
	var nested []string
	fmt.Fprintf(&b, "%s {\n", st.Name)
	for _, f := range st.Fields {
		typ := m.fieldType(ix, st, f, src, &nested)
		fmt.Fprintf(&b, "\t%s\t%s", f.Name, typ)
		if m.isOutField(f) {
			b.WriteString("\t(out)")
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return b.String(), nested
}

func (m *SimModel) isOutField(f ccode.StructField) bool {
	c := strings.ToLower(f.Comment)
	return strings.Contains(c, "written back") || strings.HasPrefix(c, "out:")
}

var cToSyz = map[string]string{
	"char": "int8", "__u8": "int8", "__s8": "int8",
	"__u16": "int16", "__s16": "int16", "short": "int16",
	"__u32": "int32", "__s32": "int32", "int": "int32", "unsigned": "int32",
	"__u64": "int64", "__s64": "int64", "long": "int64",
}

func (m *SimModel) fieldType(ix *ccode.Index, st *ccode.Struct, f ccode.StructField, src string, nested *[]string) string {
	ctype := strings.TrimSpace(f.Type)
	if inner, ok := strings.CutPrefix(ctype, "struct "); ok {
		inner = strings.TrimSpace(strings.TrimSuffix(inner, "*"))
		*nested = append(*nested, inner)
		switch {
		case f.IsArray && strings.TrimSpace(f.Array) == "":
			return fmt.Sprintf("array[%s]", inner)
		case f.IsArray:
			return fmt.Sprintf("array[%s, %s]", inner, f.Array)
		}
		return inner
	}
	base, ok := cToSyz[ctype]
	if !ok {
		base = "int32"
	}
	// Length relation from the field comment (the Figure 5 insight).
	// Even the strong models occasionally treat the count field as a
	// plain integer — the "wrong types" the §5.1.3 audit reports.
	if m.caps.LenRelation && m.chance("lenmiss:"+st.Name+":"+f.Name) >= 0.15 {
		if target, ok := lenTargetFromComment(f.Comment); ok && st.Fields != nil {
			return fmt.Sprintf("len[%s, %s]", target, base)
		}
	}
	if f.IsArray {
		if strings.TrimSpace(f.Array) == "" {
			return fmt.Sprintf("array[%s]", base)
		}
		if n, ok := ix.EvalInt(f.Array); ok {
			return fmt.Sprintf("array[%s, %d]", base, n)
		}
		return fmt.Sprintf("array[%s]", base)
	}
	// Constant-enforced fields: "addr->f != MACRO" rejection checks
	// pin the field to the macro value (address families).
	if mac, ok := constFromCode(src, f.Name); ok {
		return fmt.Sprintf("const[%s, %s]", mac, base)
	}
	// Ranges: explicit validation code first, then comments.
	if lo, hi, ok := rangeFromCode(src, f.Name); ok {
		return fmt.Sprintf("%s[%d:%d]", base, lo, hi)
	}
	if m.caps.CommentHints {
		if lo, hi, ok := rangeFromComment(f.Comment); ok {
			return fmt.Sprintf("%s[%d:%d]", base, lo, hi)
		}
	}
	return base
}

func lenTargetFromComment(comment string) (string, bool) {
	const marker = "number of entries in "
	if i := strings.Index(strings.ToLower(comment), marker); i >= 0 {
		target := strings.TrimSpace(comment[i+len(marker):])
		if j := strings.IndexAny(target, " .,;"); j >= 0 {
			target = target[:j]
		}
		if target != "" {
			return target, true
		}
	}
	return "", false
}

// rangeFromCode scans for "param->f < lo || param->f > hi" validation.
func rangeFromCode(src, field string) (lo, hi uint64, ok bool) {
	pat := "param->" + field + " < "
	i := strings.Index(src, pat)
	if i < 0 {
		return 0, 0, false
	}
	rest := src[i+len(pat):]
	lo, n := scanUint(rest)
	if n == 0 {
		return 0, 0, false
	}
	pat2 := "param->" + field + " > "
	j := strings.Index(rest, pat2)
	if j < 0 {
		return 0, 0, false
	}
	hi, n2 := scanUint(rest[j+len(pat2):])
	if n2 == 0 {
		return 0, 0, false
	}
	return lo, hi, true
}

// constFromCode scans for "->f != MACRO)" rejection checks that pin a
// field to a single constant.
func constFromCode(src, field string) (string, bool) {
	pat := "->" + field + " != "
	i := strings.Index(src, pat)
	if i < 0 {
		return "", false
	}
	rest := src[i+len(pat):]
	end := 0
	for end < len(rest) && (rest[end] == '_' || rest[end] >= 'A' && rest[end] <= 'Z' || rest[end] >= '0' && rest[end] <= '9') {
		end++
	}
	mac := rest[:end]
	if mac == "" || mac[0] >= '0' && mac[0] <= '9' {
		return "", false
	}
	return mac, true
}

// rangeFromComment parses "valid range A..B" and "... (N)" styles.
func rangeFromComment(comment string) (lo, hi uint64, ok bool) {
	c := strings.ToLower(comment)
	if i := strings.Index(c, "valid range "); i >= 0 {
		rest := c[i+len("valid range "):]
		lo, n := scanUint(rest)
		if n > 0 {
			rest = rest[n:]
			rest = strings.TrimPrefix(rest, "..")
			hi, n2 := scanUint(rest)
			if n2 > 0 {
				return lo, hi, true
			}
		}
	}
	if strings.Contains(c, "not exceed") || strings.Contains(c, "at most") {
		if i := strings.LastIndexByte(c, '('); i >= 0 {
			if v, n := scanUint(c[i+1:]); n > 0 {
				return 0, v, true
			}
		}
	}
	return 0, 0, false
}

func scanUint(s string) (uint64, int) {
	i := 0
	var v uint64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + uint64(s[i]-'0')
		i++
	}
	return v, i
}

// injectTypeErrors applies the fallibility model to stage-2 output:
// one deterministic, validator-visible error per unlucky handler.
func (m *SimModel) injectTypeErrors(defs string) string {
	if defs == "" {
		return defs
	}
	key := "typerr:" + firstIdent(defs)
	if m.chance(key) >= m.caps.ErrorRate {
		return defs
	}
	switch int(m.chance(key+":kind")*1000) % 3 {
	case 0:
		// Misspell the first int32 → undefined type "int3".
		return strings.Replace(defs, "int32", "int3", 1)
	case 1:
		// Typo a len target.
		if i := strings.Index(defs, "len["); i >= 0 {
			j := strings.IndexByte(defs[i:], ',')
			if j > 0 {
				return defs[:i+j] + "x" + defs[i+j:]
			}
		}
		return strings.Replace(defs, "int32", "int3", 1)
	default:
		// Append an undefined nested reference to the first field.
		if i := strings.Index(defs, "\n\t"); i >= 0 {
			return strings.Replace(defs, "int8", "int8_undef_t", 1)
		}
		return strings.Replace(defs, "int32", "int3", 1)
	}
}

func firstIdent(s string) string {
	end := 0
	for end < len(s) && (s[end] == '_' || s[end] >= 'a' && s[end] <= 'z' || s[end] >= '0' && s[end] <= '9') {
		end++
	}
	return s[:end]
}

// --- stage 3: dependency analysis ---

func (m *SimModel) analyzeDeps(prompt, src string) string {
	r := &DepResult{}
	if !m.caps.Dependencies {
		return FormatDepResult(r)
	}
	ix := ccode.NewIndex(map[string]string{"prompt.c": src})
	for _, u := range parseUnknown(prompt) {
		if u.Kind != "FUNC" {
			continue
		}
		fn := ix.Function(u.Name)
		if fn == nil {
			continue
		}
		info := ccode.AnalyzeBody(fn.Body)
		for _, call := range append(info.Calls, info.Delegations...) {
			if call.Name != "anon_inode_getfd" || len(call.Args) < 2 {
				continue
			}
			tag := ccode.StringValue(strings.ReplaceAll(call.Args[0], " ", ""))
			fops := strings.TrimPrefix(strings.ReplaceAll(call.Args[1], " ", ""), "&")
			r.Deps = append(r.Deps, DepDecl{Cmd: u.Usage, Creates: tag, Fops: fops})
		}
	}
	return FormatDepResult(r)
}

// --- repair ---

// repair fixes the specification using the validator's error
// messages, exactly the §3.2 loop: each error is matched to its
// description and corrected (or, for hard cases, left broken /
// dropped).
func (m *SimModel) repair(prompt string) string {
	spec := ExtractSection(prompt, SecSpec)
	errsText := ExtractSection(prompt, SecErrors)
	if spec == "" {
		return "## Repaired Specification\n"
	}
	key := "repair:" + firstErrorRef(errsText)
	if m.chance(key) >= m.caps.RepairSkill || m.chance(key+":hard") < m.caps.HardErrorRate {
		// The model fails to see the problem and echoes the spec.
		return "## Repaired Specification\n" + spec + "\n"
	}
	// AST-level repair: parse the spec, correct every recognizable
	// error class, and re-render. Falls back to textual fixes when
	// the spec does not parse.
	fixed := m.repairAST(spec)
	// Anything still failing validation gets its declaration dropped
	// by the caller on the next validation round.
	return "## Repaired Specification\n" + fixed + "\n"
}

func firstErrorRef(errs string) string {
	return firstLine(errs)
}

// repairAST applies every known correction to the parsed spec:
// corrupted macro suffixes, misspelled scalar types, undefined
// sentinel types, and broken len targets.
func (m *SimModel) repairAST(spec string) string {
	f, errs := syzlang.Parse(spec)
	if len(errs) > 0 {
		s := strings.ReplaceAll(spec, "_FIXME", "")
		s = strings.ReplaceAll(s, "int8_undef_t", "int8")
		return s
	}
	fixType := func(te *syzlang.TypeExpr) {
		walkType(te, func(t *syzlang.TypeExpr) {
			t.Ident = strings.TrimSuffix(t.Ident, "_FIXME")
			switch t.Ident {
			case "int3":
				t.Ident = "int32"
			case "int8_undef_t":
				t.Ident = "int8"
			}
		})
	}
	for _, sc := range f.Syscalls {
		sc.Variant = strings.TrimSuffix(sc.Variant, "_FIXME")
		for _, a := range sc.Args {
			fixType(a.Type)
		}
	}
	for _, st := range f.Structs {
		for _, fl := range st.Fields {
			fixType(fl.Type)
		}
	}
	for _, u := range f.Unions {
		for _, fl := range u.Fields {
			fixType(fl.Type)
		}
	}
	for _, fl := range f.Flags {
		for i := range fl.Values {
			fl.Values[i].Name = strings.TrimSuffix(fl.Values[i].Name, "_FIXME")
		}
	}
	fixLenTargetsAST(f)
	return syzlang.Format(f)
}

// walkType visits a type expression tree.
func walkType(te *syzlang.TypeExpr, fn func(*syzlang.TypeExpr)) {
	if te == nil {
		return
	}
	fn(te)
	for _, a := range te.Args {
		if a.Type != nil {
			walkType(a.Type, fn)
		}
	}
}

// fixLenTargetsAST repoints broken len[] targets at a sibling array
// field.
func fixLenTargetsAST(f *syzlang.File) {
	for _, st := range f.Structs {
		names := map[string]bool{}
		arrayField := ""
		for _, fl := range st.Fields {
			names[fl.Name] = true
			if fl.Type.Ident == "array" && arrayField == "" {
				arrayField = fl.Name
			}
		}
		for _, fl := range st.Fields {
			te := fl.Type
			if (te.Ident != "len" && te.Ident != "bytesize") || len(te.Args) == 0 || te.Args[0].Type == nil {
				continue
			}
			if !names[te.Args[0].Type.Ident] && arrayField != "" {
				te.Args[0].Type.Ident = arrayField
			}
		}
	}
}

// tableEntry is one {nr, fn} pair of a dm-style ioctl lookup table.
type tableEntry struct {
	nrMacro string
	fn      string
}

// scanIoctlTable extracts the entries of a "_<x>_ioctls[] = { {NR,
// fn}, ... };" static dispatch table from raw source text.
func scanIoctlTable(src string) []tableEntry {
	idx := strings.Index(src, "_ioctls[] = {")
	if idx < 0 {
		return nil
	}
	rest := src[idx+len("_ioctls[] = {"):]
	if end := strings.Index(rest, "};"); end >= 0 {
		rest = rest[:end]
	}
	var out []tableEntry
	for _, line := range strings.Split(rest, "\n") {
		line = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), ","))
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			continue
		}
		inner := strings.TrimSuffix(strings.TrimPrefix(line, "{"), "}")
		parts := strings.Split(inner, ",")
		if len(parts) != 2 {
			continue
		}
		out = append(out, tableEntry{
			nrMacro: strings.TrimSpace(parts[0]),
			fn:      strings.TrimSpace(parts[1]),
		})
	}
	return out
}
