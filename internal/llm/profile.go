package llm

// Capability is a model's pattern-understanding profile. Each flag
// corresponds to a kernel implementation pattern discussed in the
// paper; a model lacking a capability behaves like the rule-based
// baseline on that pattern (it misreads the code in the
// characteristic way).
type Capability struct {
	// Nodename: understands that miscdevice.nodename, when set,
	// overrides .name as the device path (Figure 2's dm example).
	Nodename bool
	// IdentifierMod: understands identifier-value modification such
	// as cmd = _IOC_NR(command) and inverts it to recover the real
	// userspace command value.
	IdentifierMod bool
	// LookupTable: can follow table-based dispatch (dm's
	// lookup_ioctl) instead of a switch.
	LookupTable bool
	// LenRelation: infers len[field] semantics between count fields
	// and sibling arrays (Figure 5).
	LenRelation bool
	// CommentHints: reads constraints that appear only in comments
	// (the L-3 textual-comprehension advantage).
	CommentHints bool
	// Dependencies: recognizes anon_inode_getfd-style secondary
	// handler creation and reports the resource dependency.
	Dependencies bool
	// ContextTokens models the usable context window: prompt content
	// beyond it is truncated before analysis, and large prompts
	// dilute attention (the all-in-one ablation's failure mode).
	ContextTokens int
	// ErrorRate is the per-handler probability of injecting one
	// specification error that validation will catch (driving the
	// repair loop).
	ErrorRate float64
	// HardErrorRate is the probability that an injected error is
	// unrepairable (the model repeats it under repair), producing the
	// paper's residual invalid specs.
	HardErrorRate float64
	// DropRate is the per-command probability of silently omitting a
	// syscall from the response (GPT-3.5's dominant failure).
	DropRate float64
	// RepairSkill is the probability a repair query fixes the
	// reported error.
	RepairSkill float64
}

// Profiles for the evaluated models. GPT-4 and GPT-4o are nearly
// equivalent (the paper found comparable syscall counts and
// coverage); GPT-3.5 misses patterns and drops syscalls.
var profiles = map[string]Capability{
	"gpt-4": {
		Nodename: true, IdentifierMod: true, LookupTable: true,
		LenRelation: true, CommentHints: true, Dependencies: true,
		ContextTokens: 32000,
		ErrorRate:     0.30, HardErrorRate: 0, DropRate: 0.015,
		RepairSkill: 1.0,
	},
	"gpt-4o": {
		Nodename: true, IdentifierMod: true, LookupTable: true,
		LenRelation: true, CommentHints: true, Dependencies: true,
		ContextTokens: 32000,
		ErrorRate:     0.28, HardErrorRate: 0, DropRate: 0.02,
		RepairSkill: 1.0,
	},
	"gpt-3.5": {
		Nodename: true, IdentifierMod: false, LookupTable: false,
		LenRelation: false, CommentHints: false, Dependencies: false,
		ContextTokens: 3000,
		ErrorRate:     0.65, HardErrorRate: 0.25, DropRate: 0.35,
		RepairSkill: 0.6,
	},
}

// ProfileFor returns the capability profile for a model name,
// defaulting to gpt-4.
func ProfileFor(model string) Capability {
	if p, ok := profiles[model]; ok {
		return p
	}
	return profiles["gpt-4"]
}

// ModelNames lists the simulated models.
func ModelNames() []string { return []string{"gpt-4", "gpt-4o", "gpt-3.5"} }
