// Package llm provides the analysis-LLM abstraction KernelGPT queries
// (§4 "Analysis LLM") and a deterministic simulated implementation.
//
// The client surface is context-aware and concurrency-ready: a call
// is a Request (messages plus purpose/driver metadata) completed into
// a Response (text plus per-call token usage), and clients compose
// through Middleware — shipped wrappers provide an LRU response cache
// (deduplicating identical analysis prompts across drivers), a
// retry/backoff layer, and a concurrency limiter. All shipped clients
// are safe for concurrent use; cumulative Usage accounting is
// mutex-protected.
//
// The paper drives GPT-4 through the OpenAI chat API; this
// reproduction is offline, so the Client interface is implemented by
// a simulated model that genuinely analyzes the C source embedded in
// each prompt (using the ccode parser), but through a capability
// profile that controls which kernel implementation patterns the
// model understands (nodename registration, _IOC_NR identifier
// modification, table dispatch, len-relations, comment reading) and a
// seeded fallibility model that injects the specification errors
// (wrong macro names, undefined types, bad len targets) the
// validation-and-repair phase (§3.2) exists to fix. Profiles for
// gpt-4, gpt-4o and gpt-3.5 reproduce the §5.2.3 model ablation.
package llm

import (
	"context"
	"strings"
	"sync"
)

// Message is one chat message.
type Message struct {
	Role    string // "system" or "user"
	Content string
}

// Request is one completion call: the conversation plus metadata
// identifying what the pipeline is asking for. The metadata rides
// along for middleware (cache keys, logging) and for per-purpose
// accounting; it is not part of the prompt text.
type Request struct {
	Messages []Message
	// Purpose names the pipeline stage issuing the call:
	// "identifier", "type", "dependency", or "repair".
	Purpose string
	// Driver names the handler under analysis (for tracing and
	// progress reporting).
	Driver string
}

// Response is the model's reply plus the token accounting for this
// single call.
type Response struct {
	Text string
	// Usage is the cost of this call alone (zero when served from a
	// cache).
	Usage Usage
	// Cached reports that a caching middleware served the response
	// without consulting the underlying model.
	Cached bool
}

// Usage accumulates token accounting, mirroring the paper's cost
// report (§5.1.1: ~5.56M input tokens, ~400K output, $34). Usage is a
// plain value; clients that accumulate it concurrently must do so
// through a UsageCounter.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
	Calls            int
}

// Add merges another usage record.
func (u *Usage) Add(o Usage) {
	u.PromptTokens += o.PromptTokens
	u.CompletionTokens += o.CompletionTokens
	u.Calls += o.Calls
}

// CostUSD estimates the API cost at GPT-4-turbo-era prices
// ($10/M input, $30/M output), the pricing the paper's $34 figure
// reflects.
func (u *Usage) CostUSD() float64 {
	return float64(u.PromptTokens)*10/1e6 + float64(u.CompletionTokens)*30/1e6
}

// UsageCounter is a mutex-protected Usage accumulator for clients
// that serve concurrent completions.
type UsageCounter struct {
	mu sync.Mutex
	u  Usage // guarded by mu
}

// Record adds one call's usage.
func (c *UsageCounter) Record(u Usage) {
	c.mu.Lock()
	c.u.Add(u)
	c.mu.Unlock()
}

// Snapshot returns the accumulated totals.
func (c *UsageCounter) Snapshot() Usage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.u
}

// Client is the chat-completion interface KernelGPT consumes.
// Implementations must be safe for concurrent use.
type Client interface {
	// Complete sends one request and returns the model's reply with
	// per-call usage. The context cancels in-flight work.
	Complete(ctx context.Context, req Request) (Response, error)
	// Usage reports cumulative token accounting across all calls.
	Usage() Usage
	// Name identifies the model (for tables and ablations).
	Name() string
}

// Middleware wraps a Client with additional behavior (caching,
// retries, concurrency limiting). Middleware composes: the returned
// Client is itself wrappable.
type Middleware func(Client) Client

// Chain applies middleware so that the first listed is outermost:
// Chain(c, a, b) serves requests through a, then b, then c.
func Chain(c Client, mws ...Middleware) Client {
	for i := len(mws) - 1; i >= 0; i-- {
		c = mws[i](c)
	}
	return c
}

// CountTokens approximates tokenization at 4 characters per token,
// the standard rough estimate for code-heavy English text.
func CountTokens(s string) int { return (len(s) + 3) / 4 }

// Section markers form the prompt contract between KernelGPT's
// prompt builder and any model: the same structured template the
// paper shows in Figure 6.
const (
	SecInstruction = "## Instruction"
	SecUnknown     = "## Unknown"
	SecUsage       = "## Usage"
	SecSource      = "## Source Code of Relative Functions"
	SecFewShot     = "## Examples"
	SecErrors      = "## Validation Errors"
	SecSpec        = "## Current Specification"
)

// ExtractSection returns the body of the named section in a prompt
// or response (text between the marker line and the next "## "
// heading).
func ExtractSection(text, marker string) string {
	// Match the marker only at the start of a line, so example
	// blocks quoting the protocol (indented) are not picked up.
	idx := -1
	if strings.HasPrefix(text, marker) {
		idx = 0
	} else if i := strings.Index(text, "\n"+marker); i >= 0 {
		idx = i + 1
	}
	if idx < 0 {
		return ""
	}
	body := text[idx+len(marker):]
	if nl := strings.IndexByte(body, '\n'); nl >= 0 {
		body = body[nl+1:]
	} else {
		return ""
	}
	if end := strings.Index(body, "\n## "); end >= 0 {
		body = body[:end]
	}
	return strings.TrimSpace(body)
}
