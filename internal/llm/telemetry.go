package llm

import (
	"context"
	"time"

	"kernelgpt/internal/telemetry"
)

// Metrics is the LLM-client telemetry bundle: request outcomes, cache
// effectiveness, retries, token spend, and completion latency. A nil
// *Metrics disables recording (WithTelemetry becomes the identity
// middleware), matching the package-wide disabled-path discipline.
type Metrics struct {
	// Requests counts completions entering the chain
	// (llm_requests_total); Errors counts the ones that failed after
	// all retries (llm_errors_total).
	Requests *telemetry.Counter
	Errors   *telemetry.Counter
	// CacheHits/CacheMisses classify successful completions by
	// Response.Cached (llm_cache_hits_total / llm_cache_misses_total)
	// — measured at the chain surface, so they agree with what callers
	// were actually served, unlike CachingClient.Stats, which also
	// sees requests that later fail downstream.
	CacheHits   *telemetry.Counter
	CacheMisses *telemetry.Counter
	// Retries counts retry attempts beyond each request's first try
	// (llm_retries_total); feed it through WithRetryObserved.
	Retries *telemetry.Counter
	// PromptTokens/CompletionTokens accumulate billed token usage
	// (llm_tokens_total{kind="prompt"|"completion"}); cache hits
	// report zero usage and so add nothing.
	PromptTokens     *telemetry.Counter
	CompletionTokens *telemetry.Counter
	// LatencyNs is the full-chain completion latency (llm_latency_ns),
	// including cache lookups, retries, and limiter queueing.
	LatencyNs *telemetry.Histogram
}

// NewMetrics registers the LLM metric set on reg. A nil registry
// yields a nil (disabled) bundle.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Requests:         reg.Counter("llm_requests_total"),
		Errors:           reg.Counter("llm_errors_total"),
		CacheHits:        reg.Counter("llm_cache_hits_total"),
		CacheMisses:      reg.Counter("llm_cache_misses_total"),
		Retries:          reg.Counter("llm_retries_total"),
		PromptTokens:     reg.Counter(`llm_tokens_total{kind="prompt"}`),
		CompletionTokens: reg.Counter(`llm_tokens_total{kind="completion"}`),
		LatencyNs:        reg.Histogram("llm_latency_ns", nil),
	}
}

// RetryCounter returns the bundle's retry counter for feeding to
// WithRetryObserved. A nil bundle yields a nil (inert) counter, so
// callers can wire it unconditionally.
func (m *Metrics) RetryCounter() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.Retries
}

// telemetryClient records each completion's outcome into a Metrics
// bundle.
type telemetryClient struct {
	inner Client
	m     *Metrics
	clock telemetry.Clock
}

// WithTelemetry returns middleware recording completions into m with
// latency from clock (nil = system). Place it first in Chain
// (outermost) so it observes what callers are actually served — a hit
// flagged by the cache below it, a success salvaged by retries.
func WithTelemetry(m *Metrics, clock telemetry.Clock) Middleware {
	return func(c Client) Client {
		if m == nil {
			return c
		}
		return &telemetryClient{inner: c, m: m, clock: clock}
	}
}

func (t *telemetryClient) Complete(ctx context.Context, req Request) (Response, error) {
	t0 := t.clock.Now()
	resp, err := t.inner.Complete(ctx, req)
	t.m.Requests.Inc()
	t.m.LatencyNs.Observe(t.clock.Now().Sub(t0).Nanoseconds())
	if err != nil {
		t.m.Errors.Inc()
		return resp, err
	}
	if resp.Cached {
		t.m.CacheHits.Inc()
	} else {
		t.m.CacheMisses.Inc()
	}
	t.m.PromptTokens.Add(int64(resp.Usage.PromptTokens))
	t.m.CompletionTokens.Add(int64(resp.Usage.CompletionTokens))
	return resp, nil
}

func (t *telemetryClient) Usage() Usage   { return t.inner.Usage() }
func (t *telemetryClient) Name() string   { return t.inner.Name() }
func (t *telemetryClient) Unwrap() Client { return t.inner }

// WithRetryObserved is WithRetry with a per-retry counter: retries
// (nil-safe) is incremented once for every attempt beyond a request's
// first. WithRetry is equivalent to a nil counter.
func WithRetryObserved(attempts int, backoff time.Duration, retries *telemetry.Counter) Middleware {
	if attempts < 1 {
		attempts = 1
	}
	return func(c Client) Client {
		return &retryClient{inner: c, attempts: attempts, backoff: backoff, retries: retries}
	}
}
