package llm

import (
	"container/list"
	"context"
	"crypto/sha256"
	"sync"
	"time"

	"kernelgpt/internal/telemetry"
)

// --- caching ---

// CacheStats reports caching-middleware effectiveness.
type CacheStats struct {
	Hits      int
	Misses    int
	Evictions int
}

// CachingClient is an LRU completion cache. Identical requests (same
// messages and purpose) across drivers are served from memory without
// consulting — or billing — the underlying model, which is what makes
// repeated per-driver analysis of shared headers cheap. Safe for
// concurrent use; two racing identical misses may both reach the
// inner client (the second result wins the cache slot), which is
// correct for deterministic models and merely wasteful otherwise.
type CachingClient struct {
	inner   Client
	mu      sync.Mutex
	entries map[string]*list.Element // guarded by mu
	order   *list.List               // guarded by mu; front = most recent
	max     int
	stats   CacheStats // guarded by mu
}

type cacheEntry struct {
	key  string
	resp Response
}

// NewCaching wraps a client with an LRU response cache holding up to
// max entries (max <= 0 selects a default of 1024).
func NewCaching(inner Client, max int) *CachingClient {
	if max <= 0 {
		max = 1024
	}
	return &CachingClient{
		inner:   inner,
		entries: map[string]*list.Element{},
		order:   list.New(),
		max:     max,
	}
}

// WithCache is the Middleware form of NewCaching.
func WithCache(max int) Middleware {
	return func(c Client) Client { return NewCaching(c, max) }
}

// cacheKey folds the request into a fixed-size deduplication key (a
// digest, so multi-KB prompts are not retained as map keys). The
// driver name is deliberately excluded: two drivers asking the
// identical question about the same source must share one
// completion.
func cacheKey(req Request) string {
	h := sha256.New()
	h.Write([]byte(req.Purpose))
	for _, m := range req.Messages {
		h.Write([]byte{0})
		h.Write([]byte(m.Role))
		h.Write([]byte{0})
		h.Write([]byte(m.Content))
	}
	return string(h.Sum(nil))
}

// Complete implements Client.
func (c *CachingClient) Complete(ctx context.Context, req Request) (Response, error) {
	key := cacheKey(req)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		resp := el.Value.(*cacheEntry).resp
		c.stats.Hits++
		c.mu.Unlock()
		resp.Cached = true
		resp.Usage = Usage{}
		return resp, nil
	}
	c.stats.Misses++
	c.mu.Unlock()

	resp, err := c.inner.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
		if c.order.Len() > c.max {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			c.stats.Evictions++
		}
	}
	c.mu.Unlock()
	return resp, nil
}

// Usage implements Client (cache hits cost nothing, so the inner
// totals are the true spend).
func (c *CachingClient) Usage() Usage { return c.inner.Usage() }

// Name implements Client.
func (c *CachingClient) Name() string { return c.inner.Name() }

// Unwrap exposes the wrapped client for chain walking.
func (c *CachingClient) Unwrap() Client { return c.inner }

// Stats returns a snapshot of hit/miss/eviction counts.
func (c *CachingClient) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// FindCache walks a middleware chain looking for a CachingClient, so
// callers holding only the outermost Client can still report cache
// effectiveness.
func FindCache(c Client) (*CachingClient, bool) {
	for c != nil {
		if cc, ok := c.(*CachingClient); ok {
			return cc, true
		}
		u, ok := c.(interface{ Unwrap() Client })
		if !ok {
			return nil, false
		}
		c = u.Unwrap()
	}
	return nil, false
}

// --- retry ---

// retryClient retries failed completions with exponential backoff.
type retryClient struct {
	inner    Client
	attempts int
	backoff  time.Duration
	retries  *telemetry.Counter // optional, via WithRetryObserved
}

// WithRetry wraps a client so transient errors are retried up to
// attempts total tries, sleeping backoff, 2·backoff, … between tries.
// Context cancellation is never retried and interrupts the backoff
// sleep.
func WithRetry(attempts int, backoff time.Duration) Middleware {
	if attempts < 1 {
		attempts = 1
	}
	return func(c Client) Client {
		return &retryClient{inner: c, attempts: attempts, backoff: backoff}
	}
}

func (r *retryClient) Complete(ctx context.Context, req Request) (Response, error) {
	var resp Response
	var err error
	delay := r.backoff
	for try := 0; try < r.attempts; try++ {
		if try > 0 {
			r.retries.Inc()
			if delay > 0 {
				t := time.NewTimer(delay)
				select {
				case <-ctx.Done():
					t.Stop()
					return Response{}, ctx.Err()
				case <-t.C:
				}
				delay *= 2
			}
		}
		resp, err = r.inner.Complete(ctx, req)
		if err == nil || ctx.Err() != nil {
			return resp, err
		}
	}
	return resp, err
}

func (r *retryClient) Usage() Usage   { return r.inner.Usage() }
func (r *retryClient) Name() string   { return r.inner.Name() }
func (r *retryClient) Unwrap() Client { return r.inner }

// --- concurrency limiting ---

// limitClient bounds in-flight completions with a semaphore: the
// batching discipline that keeps a worker pool from overrunning an
// API's concurrent-request quota.
type limitClient struct {
	inner Client
	sem   chan struct{}
}

// WithConcurrencyLimit wraps a client so at most n completions run
// concurrently; excess callers block (or abort on context
// cancellation) until a slot frees.
func WithConcurrencyLimit(n int) Middleware {
	if n < 1 {
		n = 1
	}
	return func(c Client) Client {
		return &limitClient{inner: c, sem: make(chan struct{}, n)}
	}
}

func (l *limitClient) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	select {
	case l.sem <- struct{}{}:
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
	defer func() { <-l.sem }()
	return l.inner.Complete(ctx, req)
}

func (l *limitClient) Usage() Usage   { return l.inner.Usage() }
func (l *limitClient) Name() string   { return l.inner.Name() }
func (l *limitClient) Unwrap() Client { return l.inner }
