package llm

import (
	"context"
	"strings"
	"testing"
	"testing/quick"
)

// complete is the test shorthand for the context-aware Client call.
func complete(m Client, msgs []Message) (string, error) {
	resp, err := m.Complete(context.Background(), Request{Messages: msgs})
	return resp.Text, err
}

const simDMSource = `
#define DM_NAME "device-mapper"
#define DM_DIR "mapper"
#define DM_NODE "control"
#define DM_IOC_MAGIC 0xfd
#define DM_VERSION_CMD 0
#define DM_VERSION _IOWR(DM_IOC_MAGIC, DM_VERSION_CMD, struct dm_ioctl)

struct dm_ioctl {
	__u32 version[3];
	__u32 data_size;
	__u32 count;	/* number of entries in data */
	char data[];
};

static int dm_do_version(struct dm_ioctl *param)
{
	if (param->data_size < 1 || param->data_size > 64)
		return -EINVAL;
	return 0;
}

static long dm_ioctl_fn(struct file *file, unsigned int command, unsigned long u)
{
	unsigned int cmd;
	cmd = _IOC_NR(command);
	switch (cmd) {
	case DM_VERSION_CMD: {
		struct dm_ioctl req;
		if (copy_from_user(&req, (struct dm_ioctl __user *)u, sizeof(struct dm_ioctl)))
			return -EFAULT;
		return dm_do_version(&req);
	}
	default:
		return -ENOTTY;
	}
}

static const struct file_operations dmx_fops = {
	.unlocked_ioctl = dm_ioctl_fn,
};

static struct miscdevice dmx_misc = {
	.name = DM_NAME,
	.nodename = DM_DIR "/" DM_NODE,
	.fops = &dmx_fops,
};
`

func identPrompt(src string, unknowns string) []Message {
	var b strings.Builder
	b.WriteString(SecInstruction + "\nAnalyze the handler and generate the identifier values.\n")
	if unknowns != "" {
		b.WriteString(SecUnknown + "\n" + unknowns + "\n")
	}
	b.WriteString(SecSource + "\n" + src + "\n")
	return []Message{{Role: "user", Content: b.String()}}
}

func TestSimIdentNodenameAndInversion(t *testing.T) {
	m := NewSim("gpt-4", 99)
	reply, err := complete(m, identPrompt(simDMSource, ""))
	if err != nil {
		t.Fatal(err)
	}
	r := ParseIdentResult(reply)
	if r.DevicePath != "/dev/mapper/control" {
		t.Fatalf("device path = %q", r.DevicePath)
	}
	if len(r.Cmds) != 1 || r.Cmds[0].Macro != "DM_VERSION" {
		t.Fatalf("inversion failed: %+v", r.Cmds)
	}
	if r.Cmds[0].Dir != "inout" || r.Cmds[0].Arg != "dm_ioctl" {
		t.Fatalf("dir/arg wrong: %+v", r.Cmds[0])
	}
}

func TestSimGPT35KeepsRawLabel(t *testing.T) {
	m := NewSim("gpt-3.5", 99)
	reply, _ := complete(m, identPrompt(simDMSource, ""))
	r := ParseIdentResult(reply)
	found := false
	for _, c := range r.Cmds {
		if strings.HasPrefix(c.Macro, "DM_VERSION_CMD") {
			found = true
		}
	}
	if !found && len(r.Cmds) > 0 {
		t.Fatalf("gpt-3.5 should report the raw (modified) label: %+v", r.Cmds)
	}
}

func TestSimGPT35UsesNameNotNodename(t *testing.T) {
	caps := ProfileFor("gpt-3.5")
	if !caps.Nodename {
		t.Skip("gpt-3.5 profile understands nodename in this configuration")
	}
}

func typePrompt(src, wanted string) []Message {
	var b strings.Builder
	b.WriteString(SecInstruction + "\nGenerate the Syzkaller type definitions for the structures.\n")
	b.WriteString(SecUnknown + "\n- TYPE: " + wanted + " USAGE: payload\n")
	b.WriteString(SecSource + "\n" + src + "\n")
	return []Message{{Role: "user", Content: b.String()}}
}

func TestSimTypeRecovery(t *testing.T) {
	m := NewSim("gpt-4", 12345)
	reply, _ := complete(m, typePrompt(simDMSource, "dm_ioctl"))
	r := ParseTypeResult(reply)
	if !strings.Contains(r.Defs, "dm_ioctl {") {
		t.Fatalf("struct not emitted:\n%s", r.Defs)
	}
	if !strings.Contains(r.Defs, "array[int32, 3]") {
		t.Fatalf("fixed array lost:\n%s", r.Defs)
	}
	// Range from the validation code in dm_do_version.
	if !strings.Contains(r.Defs, "int32[1:64]") {
		t.Fatalf("code range not recovered:\n%s", r.Defs)
	}
	// Len relation from the comment.
	if !strings.Contains(r.Defs, "len[data") {
		t.Fatalf("len relation not recovered:\n%s", r.Defs)
	}
}

func TestSimGPT35NoLenRelation(t *testing.T) {
	m := NewSim("gpt-3.5", 12345)
	reply, _ := complete(m, typePrompt(simDMSource, "dm_ioctl"))
	r := ParseTypeResult(reply)
	if strings.Contains(r.Defs, "len[") {
		t.Fatalf("gpt-3.5 must not infer len relations:\n%s", r.Defs)
	}
}

func TestSimRepairFixesInjectedErrors(t *testing.T) {
	m := NewSim("gpt-4", 5)
	spec := `resource fd_x[fd]
openat$x(fd const[AT_FDCWD], file ptr[in, string["/dev/x"]], flags const[O_RDWR], mode const[0]) fd_x
ioctl$A(fd fd_x, cmd const[CMD_A_FIXME], arg ptr[in, x_t])

x_t {
	a	int3
	n	len[wrongx, int32]
	items	array[int64]
}
`
	var b strings.Builder
	b.WriteString(SecInstruction + "\nPlease repair the specification.\n")
	b.WriteString(SecErrors + "\nunknown constant CMD_A_FIXME\n")
	b.WriteString(SecSpec + "\n" + spec + "\n")
	b.WriteString(SecSource + "\n#define CMD_A 1\n")
	reply, _ := complete(m, []Message{{Role: "user", Content: b.String()}})
	fixed := ExtractSection(reply, "## Repaired Specification")
	if strings.Contains(fixed, "_FIXME]") {
		t.Fatalf("macro corruption not repaired:\n%s", fixed)
	}
	if strings.Contains(fixed, "int3\n") || strings.Contains(fixed, "int3\t") || strings.Contains(fixed, "int3 ") {
		t.Fatalf("int3 not repaired:\n%s", fixed)
	}
	if !strings.Contains(fixed, "len[items") {
		t.Fatalf("len target not repointed:\n%s", fixed)
	}
}

func TestSimDeterministic(t *testing.T) {
	a, _ := complete(NewSim("gpt-4", 7), identPrompt(simDMSource, ""))
	b, _ := complete(NewSim("gpt-4", 7), identPrompt(simDMSource, ""))
	if a != b {
		t.Fatal("same seed must give identical completions")
	}
	c, _ := complete(NewSim("gpt-4", 8), identPrompt(simDMSource, ""))
	_ = c // different seeds may differ; only determinism is required
}

func TestUsageAccumulates(t *testing.T) {
	m := NewSim("gpt-4", 1)
	complete(m, identPrompt(simDMSource, "")) //nolint:errcheck
	u1 := m.Usage()
	complete(m, identPrompt(simDMSource, "")) //nolint:errcheck
	u2 := m.Usage()
	if u2.Calls != u1.Calls+1 || u2.PromptTokens <= u1.PromptTokens {
		t.Fatalf("usage not accumulating: %+v %+v", u1, u2)
	}
}

func TestExtractSectionLineAnchored(t *testing.T) {
	text := "## A\nvalue\nindented:\n    ## B\nhidden\n## B\nreal\n"
	if got := ExtractSection(text, "## B"); got != "real" {
		t.Fatalf("ExtractSection = %q, want %q", got, "real")
	}
	if got := ExtractSection(text, "## A"); !strings.HasPrefix(got, "value") {
		t.Fatalf("ExtractSection A = %q", got)
	}
	if ExtractSection(text, "## C") != "" {
		t.Fatal("missing section must be empty")
	}
}

func TestProtocolRoundTrips(t *testing.T) {
	ident := &IdentResult{
		DevicePath: "/dev/foo",
		Cmds: []CmdDecl{
			{Macro: "FOO_SET", Handler: "foo_set", Arg: "foo_req", Dir: "in"},
			{Macro: "FOO_GET", ArgInt: true, Dir: "out", Plain: true},
		},
		Calls:   []SockCallDecl{{Call: "bind", Addr: "sockaddr_foo", Fn: "foo_bind"}},
		Unknown: []UnknownRef{{Kind: "FUNC", Name: "foo_dispatch", Usage: "return foo_dispatch(cmd)"}},
	}
	r := ParseIdentResult(FormatIdentResult(ident))
	if r.DevicePath != ident.DevicePath || len(r.Cmds) != 2 || len(r.Calls) != 1 || len(r.Unknown) != 1 {
		t.Fatalf("round trip lost data: %+v", r)
	}
	if r.Cmds[0].Arg != "foo_req" || !r.Cmds[1].ArgInt || !r.Cmds[1].Plain {
		t.Fatalf("cmd fields lost: %+v", r.Cmds)
	}
	if r.Calls[0].Fn != "foo_bind" {
		t.Fatalf("call fn lost: %+v", r.Calls)
	}
	dep := &DepResult{Deps: []DepDecl{{Cmd: "KVM_CREATE_VM", Creates: "kvm_vm", Fops: "kvm_vm_fops"}}}
	d := ParseDepResult(FormatDepResult(dep))
	if len(d.Deps) != 1 || d.Deps[0].Creates != "kvm_vm" {
		t.Fatalf("dep round trip lost data: %+v", d)
	}
}

func TestQuickSimNeverPanics(t *testing.T) {
	m := NewSim("gpt-4", 3)
	f := func(body []byte) bool {
		msgs := identPrompt(string(body), "")
		_, err := complete(m, msgs)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCountTokens(t *testing.T) {
	if CountTokens("") != 0 {
		t.Fatal("empty string has tokens")
	}
	if CountTokens("abcd") != 1 || CountTokens("abcde") != 2 {
		t.Fatalf("token estimate wrong: %d %d", CountTokens("abcd"), CountTokens("abcde"))
	}
}

func TestProfiles(t *testing.T) {
	if !ProfileFor("gpt-4").IdentifierMod {
		t.Fatal("gpt-4 must understand identifier modification")
	}
	if ProfileFor("gpt-3.5").IdentifierMod {
		t.Fatal("gpt-3.5 must not understand identifier modification")
	}
	if ProfileFor("unknown-model") != ProfileFor("gpt-4") {
		t.Fatal("unknown models default to gpt-4")
	}
	if len(ModelNames()) != 3 {
		t.Fatal("three models expected")
	}
}
