package llm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClient is a scriptable Client for middleware tests.
type fakeClient struct {
	mu    sync.Mutex
	calls int
	// failFirst makes the first n calls fail.
	failFirst int
	// inFlight/maxInFlight observe concurrency.
	inFlight    int32
	maxInFlight int32
	// delay stretches each call so concurrency is observable.
	delay time.Duration
	usage UsageCounter
}

var errFlaky = errors.New("transient backend error")

func (f *fakeClient) Complete(ctx context.Context, req Request) (Response, error) {
	cur := atomic.AddInt32(&f.inFlight, 1)
	for {
		old := atomic.LoadInt32(&f.maxInFlight)
		if cur <= old || atomic.CompareAndSwapInt32(&f.maxInFlight, old, cur) {
			break
		}
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	atomic.AddInt32(&f.inFlight, -1)

	f.mu.Lock()
	f.calls++
	n := f.calls
	fail := n <= f.failFirst
	f.mu.Unlock()
	if fail {
		return Response{}, errFlaky
	}
	u := Usage{Calls: 1, PromptTokens: CountTokens(req.Messages[0].Content), CompletionTokens: 2}
	f.usage.Record(u)
	return Response{Text: "echo:" + req.Messages[0].Content, Usage: u}, nil
}

func (f *fakeClient) Usage() Usage { return f.usage.Snapshot() }
func (f *fakeClient) Name() string { return "fake" }

func req(content string) Request {
	return Request{Messages: []Message{{Role: "user", Content: content}}, Purpose: "identifier"}
}

func TestCacheHitMiss(t *testing.T) {
	fake := &fakeClient{}
	c := Chain(fake, WithCache(8))
	ctx := context.Background()

	r1, err := c.Complete(ctx, req("prompt-a"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.Usage.Calls != 1 {
		t.Fatalf("first call must miss and bill: %+v", r1)
	}
	r2, err := c.Complete(ctx, req("prompt-a"))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || r2.Text != r1.Text {
		t.Fatalf("second identical call must hit: %+v", r2)
	}
	if r2.Usage != (Usage{}) {
		t.Fatalf("cache hits must not bill: %+v", r2.Usage)
	}
	if u := c.Usage(); u.Calls != 1 {
		t.Fatalf("cumulative usage must count only real calls: %+v", u)
	}
	if _, err := c.Complete(ctx, req("prompt-b")); err != nil {
		t.Fatal(err)
	}
	cc, ok := FindCache(c)
	if !ok {
		t.Fatal("FindCache failed on direct cache")
	}
	if st := cc.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

func TestCacheKeyRespectsPurposeNotDriver(t *testing.T) {
	fake := &fakeClient{}
	c := NewCaching(fake, 8)
	ctx := context.Background()
	r := Request{Messages: []Message{{Role: "user", Content: "x"}}, Purpose: "identifier", Driver: "dm"}
	if _, err := c.Complete(ctx, r); err != nil {
		t.Fatal(err)
	}
	other := r
	other.Driver = "rds" // different driver, same question: must hit
	resp, _ := c.Complete(ctx, other)
	if !resp.Cached {
		t.Fatal("driver metadata must not fragment the cache")
	}
	typ := r
	typ.Purpose = "type" // different stage: must miss
	resp, _ = c.Complete(ctx, typ)
	if resp.Cached {
		t.Fatal("purpose must be part of the cache key")
	}
}

func TestCacheEviction(t *testing.T) {
	fake := &fakeClient{}
	c := NewCaching(fake, 2)
	ctx := context.Background()
	for _, p := range []string{"a", "b", "c"} { // "a" evicted
		if _, err := c.Complete(ctx, req(p)); err != nil {
			t.Fatal(err)
		}
	}
	if resp, _ := c.Complete(ctx, req("a")); resp.Cached {
		t.Fatal("LRU must have evicted the oldest entry")
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("evictions not counted: %+v", st)
	}
}

func TestRetryRecoversTransientErrors(t *testing.T) {
	fake := &fakeClient{failFirst: 2}
	c := Chain(fake, WithRetry(3, time.Millisecond))
	resp, err := c.Complete(context.Background(), req("p"))
	if err != nil {
		t.Fatalf("retry should have absorbed 2 failures: %v", err)
	}
	if resp.Text != "echo:p" {
		t.Fatalf("bad response: %+v", resp)
	}
	if fake.calls != 3 {
		t.Fatalf("expected 3 tries, got %d", fake.calls)
	}
}

func TestRetryGivesUp(t *testing.T) {
	fake := &fakeClient{failFirst: 10}
	c := Chain(fake, WithRetry(3, 0))
	if _, err := c.Complete(context.Background(), req("p")); !errors.Is(err, errFlaky) {
		t.Fatalf("want the backend error after exhausting tries, got %v", err)
	}
	if fake.calls != 3 {
		t.Fatalf("expected exactly 3 tries, got %d", fake.calls)
	}
}

func TestRetryHonorsCancellation(t *testing.T) {
	fake := &fakeClient{failFirst: 10}
	c := Chain(fake, WithRetry(5, time.Hour))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Complete(ctx, req("p"))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry slept through cancellation")
	}
}

func TestConcurrencyLimitHonorsBound(t *testing.T) {
	fake := &fakeClient{delay: 5 * time.Millisecond}
	c := Chain(fake, WithConcurrencyLimit(3))
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Complete(context.Background(), req(fmt.Sprintf("p%d", i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if max := atomic.LoadInt32(&fake.maxInFlight); max > 3 {
		t.Fatalf("observed %d in-flight calls, limit is 3", max)
	}
	if fake.calls != 24 {
		t.Fatalf("all calls must complete, got %d", fake.calls)
	}
}

func TestConcurrencyLimitCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := Chain(&fakeClient{delay: time.Second}, WithConcurrencyLimit(1))
	// A cancelled context must not deadlock waiting for a slot.
	if _, err := c.Complete(ctx, req("p")); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestChainedMiddlewareUnderRace hammers the full production chain
// (cache → retry → limit → sim) from many goroutines; run with
// -race, this is the regression test for the Usage data race.
func TestChainedMiddlewareUnderRace(t *testing.T) {
	sim := NewSim("gpt-4", 17)
	c := Chain(sim, WithCache(64), WithRetry(2, 0), WithConcurrencyLimit(4))
	prompts := []Request{}
	for i := 0; i < 8; i++ {
		r := req(fmt.Sprintf("%s\nprobe %d\n%s\n%s", SecInstruction, i, SecSource, simDMSource))
		r.Purpose = "identifier"
		prompts = append(prompts, r)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := c.Complete(context.Background(), prompts[(g+i)%len(prompts)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	u := c.Usage()
	if u.Calls == 0 || u.Calls > 8*20 {
		t.Fatalf("usage totals implausible: %+v", u)
	}
	cc, ok := FindCache(c)
	if !ok {
		t.Fatal("FindCache must walk Unwrap chains")
	}
	if st := cc.Stats(); st.Hits == 0 {
		t.Fatalf("expected cache hits under repetition: %+v", st)
	}
}

// TestSimConcurrentDeterminism checks that concurrent completions on
// one SimModel agree with serial ones (completions are pure; only
// accounting is shared).
func TestSimConcurrentDeterminism(t *testing.T) {
	serial := NewSim("gpt-4", 9)
	want, err := serial.Complete(context.Background(), Request{Messages: identPrompt(simDMSource, "")})
	if err != nil {
		t.Fatal(err)
	}
	shared := NewSim("gpt-4", 9)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := shared.Complete(context.Background(), Request{Messages: identPrompt(simDMSource, "")})
			if err != nil {
				t.Error(err)
				return
			}
			if got.Text != want.Text {
				t.Errorf("concurrent completion diverged")
			}
		}()
	}
	wg.Wait()
	if u := shared.Usage(); u.Calls != 8 {
		t.Fatalf("usage lost calls under concurrency: %+v", u)
	}
}

// clientFunc adapts a function to Client for cancel-path tests that
// need call-site control over the context.
type clientFunc struct {
	fn    func(ctx context.Context, req Request) (Response, error)
	calls int32
}

func (c *clientFunc) Complete(ctx context.Context, req Request) (Response, error) {
	atomic.AddInt32(&c.calls, 1)
	return c.fn(ctx, req)
}
func (c *clientFunc) Usage() Usage { return Usage{} }
func (c *clientFunc) Name() string { return "func" }

// TestRetryCancellationStopsFurtherTries pins the exact try count on
// the cancel path: after the first failure the retry middleware must
// park in its backoff sleep and never reach the inner client again
// once the context dies (the hub client reuses this discipline for
// sync retries, where a second post after cancellation would leak
// work past a campaign's shutdown).
func TestRetryCancellationStopsFurtherTries(t *testing.T) {
	fake := &fakeClient{failFirst: 10}
	c := Chain(fake, WithRetry(5, time.Hour))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Complete(ctx, req("p"))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry slept through cancellation")
	}
	fake.mu.Lock()
	calls := fake.calls
	fake.mu.Unlock()
	if calls != 1 {
		t.Fatalf("cancellation must stop further tries: %d inner calls", calls)
	}
}

// TestRetryDoesNotRetryMidCallCancellation: when the context dies
// while the inner call is in flight (and the call consequently
// fails), the failure must surface immediately instead of being
// treated as transient and retried.
func TestRetryDoesNotRetryMidCallCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	inner := &clientFunc{fn: func(ctx context.Context, req Request) (Response, error) {
		cancel() // the context dies mid-call
		return Response{}, ctx.Err()
	}}
	c := Chain(inner, WithRetry(5, 0))
	_, err := c.Complete(ctx, req("p"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := atomic.LoadInt32(&inner.calls); n != 1 {
		t.Fatalf("mid-call cancellation retried: %d inner calls", n)
	}
}

// TestRetryDeadlineInterruptsBackoff: an expiring deadline behaves
// like cancellation — the backoff sleep ends early and the deadline
// error surfaces with no further tries.
func TestRetryDeadlineInterruptsBackoff(t *testing.T) {
	fake := &fakeClient{failFirst: 10}
	c := Chain(fake, WithRetry(5, time.Hour))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Complete(ctx, req("p"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline did not interrupt the backoff sleep")
	}
	fake.mu.Lock()
	defer fake.mu.Unlock()
	if fake.calls != 1 {
		t.Fatalf("deadline must stop further tries: %d inner calls", fake.calls)
	}
}

// TestConcurrencyLimitCancelWhileBlocked: a caller parked on a full
// semaphore must abort on cancellation without ever reaching the
// inner client.
func TestConcurrencyLimitCancelWhileBlocked(t *testing.T) {
	release := make(chan struct{})
	inner := &clientFunc{fn: func(ctx context.Context, req Request) (Response, error) {
		<-release
		return Response{Text: "ok"}, nil
	}}
	c := Chain(inner, WithConcurrencyLimit(1))
	// Occupy the only slot.
	first := make(chan struct{})
	go func() {
		close(first)
		c.Complete(context.Background(), req("holder"))
	}()
	<-first
	time.Sleep(5 * time.Millisecond) // let the holder take the slot
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Complete(ctx, req("blocked"))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked caller ignored cancellation")
	}
	close(release)
	if n := atomic.LoadInt32(&inner.calls); n != 1 {
		t.Fatalf("cancelled waiter leaked through to the inner client: %d calls", n)
	}
}
