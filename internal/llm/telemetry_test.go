package llm

import (
	"context"
	"testing"
	"time"

	"kernelgpt/internal/telemetry"
)

func fixedClock() telemetry.Clock {
	at := time.Unix(1_700_000_000, 0).UTC()
	return func() time.Time { return at }
}

// TestTelemetryObservesChain drives a full middleware stack —
// telemetry outermost, then cache, then retry — and checks every
// series: a retried miss, a hit, and a second miss.
func TestTelemetryObservesChain(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	fake := &fakeClient{failFirst: 1}
	c := Chain(fake,
		WithTelemetry(m, fixedClock()),
		WithCache(8),
		WithRetryObserved(3, 0, m.RetryCounter()))
	ctx := context.Background()

	r1, err := c.Complete(ctx, req("prompt-a")) // fails once, retried, miss
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatalf("first call must miss: %+v", r1)
	}
	r2, err := c.Complete(ctx, req("prompt-a")) // hit
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatalf("second identical call must hit: %+v", r2)
	}
	if _, err := c.Complete(ctx, req("prompt-b")); err != nil { // miss
		t.Fatal(err)
	}

	want := map[string]int64{
		"llm_requests_total":     3,
		"llm_errors_total":       0,
		"llm_cache_hits_total":   1,
		"llm_cache_misses_total": 2,
		"llm_retries_total":      1,
	}
	for name, v := range want {
		if got := reg.Counter(name).Value(); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	// Token counters see only billed (uncached) completions; the hit
	// reports zero usage.
	wantPrompt := int64(CountTokens("prompt-a") + CountTokens("prompt-b"))
	if got := m.PromptTokens.Value(); got != wantPrompt {
		t.Errorf("prompt tokens = %d, want %d", got, wantPrompt)
	}
	if got := m.CompletionTokens.Value(); got != 4 {
		t.Errorf("completion tokens = %d, want 4", got)
	}
	// Under a frozen clock every latency observation is exactly zero.
	if m.LatencyNs.Count() != 3 || m.LatencyNs.Sum() != 0 {
		t.Errorf("latency count/sum = %d/%d, want 3/0", m.LatencyNs.Count(), m.LatencyNs.Sum())
	}
}

// TestTelemetryCountsErrors: a request that exhausts its retries is
// one request, one error, attempts-1 retries — and no cache
// classification.
func TestTelemetryCountsErrors(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	fake := &fakeClient{failFirst: 10}
	c := Chain(fake,
		WithTelemetry(m, fixedClock()),
		WithRetryObserved(3, 0, m.RetryCounter()))
	if _, err := c.Complete(context.Background(), req("doomed")); err == nil {
		t.Fatal("want error after exhausted retries")
	}
	if got := m.Requests.Value(); got != 1 {
		t.Errorf("requests = %d, want 1", got)
	}
	if got := m.Errors.Value(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
	if got := m.Retries.Value(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if hits, misses := m.CacheHits.Value(), m.CacheMisses.Value(); hits != 0 || misses != 0 {
		t.Errorf("errored request classified as cache traffic: hits=%d misses=%d", hits, misses)
	}
}

// TestTelemetryDisabled: a nil bundle makes WithTelemetry the
// identity middleware and WithRetryObserved equivalent to WithRetry.
func TestTelemetryDisabled(t *testing.T) {
	var m *Metrics
	if m.RetryCounter() != nil {
		t.Error("nil bundle must yield a nil retry counter")
	}
	fake := &fakeClient{failFirst: 1}
	c := Chain(fake, WithTelemetry(nil, nil), WithRetryObserved(2, 0, m.RetryCounter()))
	if _, ok := c.(*telemetryClient); ok {
		t.Error("disabled telemetry must not insert a chain layer")
	}
	if _, err := c.Complete(context.Background(), req("x")); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryChainWalking: the telemetry layer must not break
// FindCache's Unwrap traversal.
func TestTelemetryChainWalking(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := Chain(&fakeClient{}, WithTelemetry(NewMetrics(reg), fixedClock()), WithCache(4))
	if _, ok := FindCache(c); !ok {
		t.Error("FindCache must see through the telemetry layer")
	}
}
