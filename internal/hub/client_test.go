package hub

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/vkernel"
)

// flakyHub wraps a real hub handler, failing the first n requests per
// path with HTTP 503.
func flakyHub(t *testing.T, failFirst int32) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	tgt := targetFor(t, "dm")
	_, inner := newHub(t, tgt)
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= failFirst {
			writeError(w, http.StatusServiceUnavailable, "transient")
			return
		}
		// Proxy to the real hub.
		resp, err := http.Post(inner.URL+r.URL.Path, "application/json", r.Body)
		if err != nil {
			writeError(w, http.StatusBadGateway, "%v", err)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestClientRetryRecoversTransientErrors(t *testing.T) {
	srv, calls := flakyHub(t, 2)
	c, err := Dial(context.Background(), srv.URL, "w", targetFor(t, "dm"),
		WithRetry(4, time.Millisecond))
	if err != nil {
		t.Fatalf("retry should have absorbed two 503s: %v", err)
	}
	if c.WorkerID() == "" {
		t.Fatal("no worker id after successful registration")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("expected 3 tries, saw %d", got)
	}
}

func TestClientRetryGivesUpOnPersistentFailure(t *testing.T) {
	srv, calls := flakyHub(t, 1000)
	_, err := Dial(context.Background(), srv.URL, "w", targetFor(t, "dm"),
		WithRetry(3, 0))
	if err == nil {
		t.Fatal("dial against a dead hub must fail")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("expected exactly 3 tries, saw %d", got)
	}
}

func TestClientBackoffHonorsCancellation(t *testing.T) {
	srv, calls := flakyHub(t, 1000)
	tgt := targetFor(t, "dm")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// An hour of backoff: only cancellation can end this promptly.
		_, err := Dial(ctx, srv.URL, "w", tgt, WithRetry(5, time.Hour))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client slept through cancellation")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("cancellation must stop further tries: saw %d calls", got)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusBadRequest, "bad protocol version")
	}))
	defer srv.Close()
	_, err := Dial(context.Background(), srv.URL, "w", targetFor(t, "dm"),
		WithRetry(5, time.Millisecond))
	if err == nil {
		t.Fatal("4xx must surface as an error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("4xx must not be retried: saw %d calls", got)
	}
}

// TestSyncFailureLeavesDeltasPending: when a sync fails, nothing is
// marked shipped — the next successful sync re-pushes everything the
// hub missed.
func TestSyncFailureLeavesDeltasPending(t *testing.T) {
	tgt := targetFor(t, "dm")
	store, err := corpusstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hub, err := New(tgt, store)
	if err != nil {
		t.Fatal(err)
	}
	handler := hub.Handler()
	broken := atomic.Bool{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() && r.URL.Path == "/v1/sync" {
			writeError(w, http.StatusServiceUnavailable, "down")
			return
		}
		handler.ServeHTTP(w, r)
	}))
	defer srv.Close()
	ctx := context.Background()
	c, err := Dial(ctx, srv.URL, "w", tgt, WithRetry(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	g := prog.NewGen(tgt, 9)
	st := fuzz.SyncState{
		Seeds: []seedpool.SeedState{{Prog: g.Generate(3), Prio: 2}},
		Cover: vkernel.NewCoverSet(8),
	}
	st.Cover.Add(3)
	broken.Store(true)
	if _, err := c.Sync(ctx, st); err == nil {
		t.Fatal("sync against a dead hub must fail")
	}
	broken.Store(false)
	if _, err := c.Sync(ctx, st); err != nil {
		t.Fatal(err)
	}
	hs := hub.Stats()
	if hs.Seeds != 1 || hs.UnionCover != 1 {
		t.Fatalf("retry after failure lost deltas: %+v", hs)
	}
}

// TestReRegistrationPreservesDialSnapshot pins the contract that the
// exported HubFingerprint/HubSeeds fields are read-only after Dial:
// the transparent re-registration inside Sync must not rewrite them
// from the second register response, both because the documented
// semantics are "as reported at registration [time of Dial]" and
// because rewriting would race with concurrent readers (run under
// -race, the concurrent reads below catch a regression).
func TestReRegistrationPreservesDialSnapshot(t *testing.T) {
	var registers, syncs atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", func(w http.ResponseWriter, r *http.Request) {
		n := registers.Add(1)
		resp := RegisterResponse{
			Version: ProtoVersion, WorkerID: "w1", LeaseID: "L1",
			LeaseTTLMs: 60_000, HubFingerprint: "fp-dial", Seeds: 7,
		}
		if n > 1 { // the hub "restarted" with different state
			resp.WorkerID, resp.LeaseID = "w2", "L2"
			resp.HubFingerprint, resp.Seeds = "fp-restart", 99
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/v1/sync", func(w http.ResponseWriter, r *http.Request) {
		if syncs.Add(1) == 1 {
			writeError(w, http.StatusNotFound, "unknown worker")
			return
		}
		writeJSON(w, http.StatusOK, SyncResponse{Version: ProtoVersion, Generation: 1, LeaseTTLMs: 60_000})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx := context.Background()
	c, err := Dial(ctx, srv.URL, "w", targetFor(t, "dm"), WithProtocol("json"))
	if err != nil {
		t.Fatal(err)
	}
	if c.HubFingerprint != "fp-dial" || c.HubSeeds != 7 {
		t.Fatalf("dial snapshot = %q/%d, want fp-dial/7", c.HubFingerprint, c.HubSeeds)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			_ = c.HubFingerprint
			_ = c.HubSeeds
		}
	}()
	if _, err := c.Sync(ctx, fuzz.SyncState{Cover: &vkernel.CoverSet{}}); err != nil {
		t.Fatal(err)
	}
	<-done

	if c.WorkerID() != "w2" {
		t.Fatalf("client did not re-register: worker id %q", c.WorkerID())
	}
	if c.HubFingerprint != "fp-dial" || c.HubSeeds != 7 {
		t.Fatalf("re-registration rewrote the Dial snapshot: %q/%d", c.HubFingerprint, c.HubSeeds)
	}
}
