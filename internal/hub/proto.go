// Package hub is the multi-campaign coordination daemon and its
// embedded campaign client. Independent fuzzing campaigns — separate
// processes, machines, or CI jobs — register with a hub, periodically
// push their corpus deltas, new coverage, and crashes, and pull the
// merged global corpus diff since their last sync. The hub maintains
// an authoritative on-disk corpus store (fuzz/corpusstore), a global
// crash-dedup table keyed by normalized repro text (first reporter
// wins, duplicate reports tracked), and live aggregated stats served
// as JSON for monitoring.
//
// The wire protocol is versioned JSON over HTTP: POST /v1/register
// and /v1/sync carry the types below; GET /v1/stats and /v1/crashes
// serve the monitoring views; GET /healthz answers liveness probes.
// Syncs are batched in both directions — a push ships at most
// MaxPushBatch seeds (the client keeps the rest for the next
// boundary) and a pull response ships whole store generations up to
// MaxPullBatch seeds, returning the generation the client should
// resume from.
package hub

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/vkernel"
)

// ProtoVersion is the wire-protocol version this package speaks.
// Requests carrying a different version are rejected with HTTP 400.
const ProtoVersion = 1

const (
	// MaxPushBatch bounds the seeds one sync pushes.
	MaxPushBatch = 256
	// MaxPullBatch bounds the seeds one sync response returns. The
	// bound is applied in whole generations so a client's resume
	// generation never splits one.
	MaxPullBatch = 512
)

// RegisterRequest announces a worker to the hub.
type RegisterRequest struct {
	Version int `json:"version"`
	// Name labels the worker in stats (hostname:pid by convention).
	Name string `json:"name"`
	// Fingerprint identifies the worker's compiled syscall surface
	// (see Fingerprint). Workers with different fingerprints may share
	// a hub: seeds are validated against each side's own target, so a
	// narrower worker simply skips seeds it cannot parse.
	Fingerprint string `json:"fingerprint"`
	// LeaseID, when set, asks to resume a prior lease (after a hub
	// restart or a lease expiry during a partition). A hub that still
	// holds the lease's generation-stamped state revives it and sets
	// Resumed in the response, sparing the client a full cover/crash
	// replay.
	LeaseID string `json:"lease_id,omitempty"`
}

// RegisterResponse assigns the worker its hub identity and lease.
type RegisterResponse struct {
	Version  int    `json:"version"`
	WorkerID string `json:"worker_id"`
	// Generation is the store generation at registration; the first
	// sync pulls everything after 0 regardless, this is informational.
	Generation int `json:"generation"`
	// Seeds is the hub corpus size at registration.
	Seeds int `json:"seeds"`
	// HubFingerprint is the hub target's fingerprint, so a worker can
	// warn when its spec surface differs from the hub's.
	HubFingerprint string `json:"hub_fingerprint"`
	// LeaseID names the worker's lease. Every sync must present it;
	// it is renewed by syncs and heartbeats and expires LeaseTTLMs
	// after the last renewal, at which point the hub stops charging
	// state to the worker and syncs are rejected until re-registration.
	LeaseID string `json:"lease_id,omitempty"`
	// LeaseTTLMs is the lease time-to-live in milliseconds.
	LeaseTTLMs int64 `json:"lease_ttl_ms,omitempty"`
	// Resumed reports that LeaseID in the request matched persisted
	// lease state: the hub still holds the worker's cover/crash
	// attribution, so the client keeps its delta bookkeeping instead
	// of replaying its full history.
	Resumed bool `json:"resumed,omitempty"`
}

// HeartbeatRequest renews a lease without a sync payload (for gaps
// between checkpoint boundaries longer than the TTL).
type HeartbeatRequest struct {
	Version  int    `json:"version"`
	WorkerID string `json:"worker_id"`
	LeaseID  string `json:"lease_id"`
}

// HeartbeatResponse acknowledges a renewal.
type HeartbeatResponse struct {
	Version    int   `json:"version"`
	LeaseTTLMs int64 `json:"lease_ttl_ms"`
}

// WireSeed is one corpus entry in flight: the serialized program plus
// the seedpool scheduling state the corpusstore manifest persists.
type WireSeed struct {
	Text  string `json:"text"`
	Prio  int    `json:"prio"`
	Bonus int    `json:"bonus,omitempty"`
	Op    string `json:"op,omitempty"`
}

// WireCrash is one crash report in flight. Count is the worker's
// cumulative local hit count; the hub differences it against the
// worker's previous report, which keeps retried syncs idempotent — a
// delta encoding would double-count whenever a response is lost
// after the server already committed the exchange.
type WireCrash struct {
	Title string `json:"title"`
	Repro string `json:"repro"`
	Count int    `json:"count"`
}

// OpJSON is one mutation operator's outcome (fuzz.OpStat on the
// wire).
type OpJSON struct {
	Name      string `json:"name"`
	Picks     int    `json:"picks"`
	NewBlocks int    `json:"new_blocks"`
}

// WorkerStats is a worker's cumulative campaign counters, refreshed
// on every sync.
type WorkerStats struct {
	Execs   int      `json:"execs"`
	Cover   int      `json:"cover"`
	Crashes int      `json:"crashes"`
	Ops     []OpJSON `json:"ops,omitempty"`
}

// SyncRequest is one worker→hub exchange: push the deltas, pull the
// merged corpus diff since SinceGen.
type SyncRequest struct {
	Version  int    `json:"version"`
	WorkerID string `json:"worker_id"`
	// LeaseID authenticates the exchange against the worker's lease
	// and renews it. Empty is tolerated for legacy (PR-5) clients.
	LeaseID string `json:"lease_id,omitempty"`
	// SinceGen is the last store generation the worker has pulled.
	SinceGen int `json:"since_gen"`
	// Seeds are corpus entries the worker has not pushed before.
	Seeds []WireSeed `json:"seeds,omitempty"`
	// NewBlocks are block IDs covered since the previous sync.
	NewBlocks []vkernel.BlockID `json:"new_blocks,omitempty"`
	// Crashes are crash reports new or grown since the previous sync.
	Crashes []WireCrash `json:"crashes,omitempty"`
	// Stats is the worker's cumulative campaign snapshot.
	Stats WorkerStats `json:"stats"`
	// Final marks the worker's campaign-end sync.
	Final bool `json:"final,omitempty"`
}

// SyncResponse carries the merged corpus diff back.
type SyncResponse struct {
	Version int `json:"version"`
	// Generation is the store generation the returned seeds reach;
	// the client resumes from it. It can be lower than the request's
	// SinceGen after a hub restart — clients must then restart from 0.
	Generation int `json:"generation"`
	// Seeds is the corpus diff (SinceGen, Generation].
	Seeds []WireSeed `json:"seeds,omitempty"`
	// RejectedSeeds counts pushed seeds the hub's target could not
	// parse (stale or out-of-surface programs).
	RejectedSeeds int `json:"rejected_seeds,omitempty"`
	// LeaseTTLMs echoes the renewed lease's time-to-live.
	LeaseTTLMs int64 `json:"lease_ttl_ms,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// CrashJSON is one globally deduplicated crash in the monitoring
// views (/v1/crashes and -stats-json dumps).
type CrashJSON struct {
	Title string `json:"title"`
	// Repro is the normalized repro text the dedup table keys on.
	Repro string `json:"repro"`
	// FirstWorker is the worker that reported the crash first
	// (first-reporter-wins attribution).
	FirstWorker string `json:"first_worker,omitempty"`
	// Count is the total hits summed across workers.
	Count int `json:"count"`
	// Reports counts sync reports that mentioned the crash; Workers
	// counts distinct reporting workers (Workers > 1 means the crash
	// was independently rediscovered — a deduplicated duplicate).
	Reports int `json:"reports,omitempty"`
	Workers int `json:"workers,omitempty"`
	// FirstExec is the exec index of the first local discovery (only
	// meaningful in single-campaign dumps).
	FirstExec int `json:"first_exec,omitempty"`
}

// HubStats is the GET /v1/stats monitoring document.
type HubStats struct {
	Version    int `json:"version"`
	Generation int `json:"generation"`
	// Seeds is the merged corpus size; UnionCover the globally merged
	// covered-block count.
	Seeds      int `json:"seeds"`
	UnionCover int `json:"union_cover"`
	// Execs sums the latest cumulative exec counts of every worker;
	// ExecsPerSec divides by the hub's uptime.
	Execs       int     `json:"execs"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	// Crashes counts deduplicated crashes; CrashReports the sync
	// reports folded into them; RejectedSeeds pushes the hub's target
	// could not parse.
	Crashes       int `json:"crashes"`
	CrashReports  int `json:"crash_reports"`
	RejectedSeeds int `json:"rejected_seeds"`
	// Ops is the per-operator yield summed across workers.
	Ops     []OpJSON     `json:"ops,omitempty"`
	Workers []WorkerJSON `json:"workers"`
	// Sync is the hub-wide sync cost aggregate (sums over workers;
	// maxes are the worst single sync seen anywhere).
	Sync SyncAggJSON `json:"sync"`
	// SyncBytesRatio is Sync.BytesRatio() materialized for scripts:
	// wire bytes over the JSON-equivalent baseline (0 until a sync
	// arrives, 1.0 for pure-JSON traffic, < 1 when binary wins).
	SyncBytesRatio float64 `json:"sync_bytes_ratio"`
	// ActiveLeases/ExpiredLeases/ReleasedLeases count the lease table:
	// live workers, leases reaped after missing their TTL, and leases
	// released by a Final sync. ActiveLeases == 0 after a clean
	// campaign end.
	ActiveLeases   int `json:"active_leases"`
	ExpiredLeases  int `json:"expired_leases"`
	ReleasedLeases int `json:"released_leases"`
	// Parent is the upstream hub URL when this hub is a leaf in a
	// hierarchical topology (empty for root/standalone hubs).
	Parent string `json:"parent,omitempty"`
}

// SyncAggJSON aggregates the cost of a worker's /v1/sync exchanges:
// how many ran, how long the hub spent serving them (time under the
// hub lock — merge, save, diff — excluding queueing), and how large
// the request payloads were. Count/sum/max lets operators read mean
// and worst-case sync cost per worker straight off /v1/stats, and
// gives `syzplan fit` the hub-side service-time coefficient.
type SyncAggJSON struct {
	Count int `json:"count"`
	// ServiceNsSum/ServiceNsMax aggregate per-sync service time in
	// nanoseconds.
	ServiceNsSum int64 `json:"service_ns_sum"`
	ServiceNsMax int64 `json:"service_ns_max"`
	// BytesSum/BytesMax aggregate request payload sizes as they
	// arrived on the wire (binary or JSON).
	BytesSum int64 `json:"bytes_sum"`
	BytesMax int64 `json:"bytes_max"`
	// JSONBytesSum aggregates what the same requests measure in the
	// JSON encoding — for binary syncs the hub re-encodes the decoded
	// request to get the equivalent, for JSON syncs it equals the
	// payload. BytesSum/JSONBytesSum is the binary protocol's payload
	// ratio against the JSON baseline.
	JSONBytesSum int64 `json:"json_bytes_sum,omitempty"`
}

// MeanServiceNs returns the average per-sync service time.
func (a SyncAggJSON) MeanServiceNs() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.ServiceNsSum) / float64(a.Count)
}

// MeanBytes returns the average request payload size.
func (a SyncAggJSON) MeanBytes() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.BytesSum) / float64(a.Count)
}

// BytesRatio returns wire bytes over the JSON-equivalent baseline
// (1.0 for pure-JSON traffic, < 1 when the binary protocol wins).
func (a SyncAggJSON) BytesRatio() float64 {
	if a.JSONBytesSum == 0 {
		return 0
	}
	return float64(a.BytesSum) / float64(a.JSONBytesSum)
}

// WorkerJSON is one registered worker in the stats view.
type WorkerJSON struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	Fingerprint string `json:"fingerprint"`
	// LastSyncUnix is the wall-clock time of the worker's latest
	// sync, in Unix seconds (0 = registered but never synced).
	LastSyncUnix int64 `json:"last_sync_unix,omitempty"`
	Final        bool  `json:"final,omitempty"`
	// Lease is the worker's lease state: "active", "expired", or
	// "released".
	Lease string      `json:"lease,omitempty"`
	Stats WorkerStats `json:"stats"`
	// Sync aggregates the worker's sync service times and payloads.
	Sync SyncAggJSON `json:"sync"`
}

// CampaignStats is the wire form of one campaign's fuzz.Stats — the
// schema syzfuzz -stats-json writes, shared with the hub's monitoring
// views so scripts parse one format everywhere.
type CampaignStats struct {
	Execs      int         `json:"execs"`
	Cover      int         `json:"cover"`
	CorpusSize int         `json:"corpus_size"`
	Crashes    []CrashJSON `json:"crashes,omitempty"`
	Ops        []OpJSON    `json:"ops,omitempty"`
	// Wall-clock ground truth (fuzz.Stats timing fields, in
	// nanoseconds): campaign elapsed, summed per-unit work time,
	// triage share, and hub-sync cost. `syzplan fit` calibrates its
	// cost model from these.
	ElapsedNs int64 `json:"elapsed_ns,omitempty"`
	WorkNs    int64 `json:"work_ns,omitempty"`
	TriageNs  int64 `json:"triage_ns,omitempty"`
	SyncNs    int64 `json:"sync_ns,omitempty"`
	Syncs     int   `json:"syncs,omitempty"`
}

// CampaignDump is a full syzfuzz -stats-json document: per-repetition
// stats plus the cross-repetition aggregates the CLI prints.
type CampaignDump struct {
	Version      int             `json:"version"`
	Reps         []CampaignStats `json:"reps"`
	UnionCover   int             `json:"union_cover"`
	MeanCover    float64         `json:"mean_cover"`
	UnionCrashes int             `json:"union_crashes"`
}

// FromStats converts one campaign outcome to its wire form.
func FromStats(s *fuzz.Stats) CampaignStats {
	out := CampaignStats{
		Execs:      s.Execs,
		Cover:      s.CoverCount(),
		CorpusSize: s.CorpusSize,
		Ops:        opsJSON(s.Ops),
		ElapsedNs:  s.Elapsed.Nanoseconds(),
		WorkNs:     s.WorkTime.Nanoseconds(),
		TriageNs:   s.TriageTime.Nanoseconds(),
		SyncNs:     s.SyncTime.Nanoseconds(),
		Syncs:      s.Syncs,
	}
	for _, title := range s.CrashTitles() {
		cr := s.Crashes[title]
		out.Crashes = append(out.Crashes, CrashJSON{
			Title: cr.Title, Repro: cr.Repro, Count: cr.Count, FirstExec: cr.FirstExec,
		})
	}
	return out
}

// DumpStats builds the full -stats-json document from a run's
// per-repetition stats.
func DumpStats(reps []*fuzz.Stats) CampaignDump {
	d := CampaignDump{Version: ProtoVersion, Reps: []CampaignStats{}}
	for _, s := range reps {
		d.Reps = append(d.Reps, FromStats(s))
	}
	d.UnionCover = fuzz.UnionCover(reps).Count()
	d.MeanCover = fuzz.MeanCover(reps)
	d.UnionCrashes = len(fuzz.UnionCrashTitles(reps))
	return d
}

// opsJSON converts operator stats, dropping operators that never ran.
func opsJSON(ops []fuzz.OpStat) []OpJSON {
	var out []OpJSON
	for _, op := range ops {
		if op.Picks == 0 && op.NewBlocks == 0 {
			continue
		}
		out = append(out, OpJSON{Name: op.Name, Picks: op.Picks, NewBlocks: op.NewBlocks})
	}
	return out
}

// Fingerprint digests a compiled target's syscall surface: the sorted
// syscall names hashed to a short stable hex string. Two targets
// compiled from the same specs fingerprint identically regardless of
// declaration order.
func Fingerprint(t *prog.Target) string {
	names := make([]string, 0, len(t.Syscalls))
	for _, sc := range t.Syscalls {
		names = append(names, sc.Name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}
