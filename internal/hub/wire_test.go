package hub

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kernelgpt/internal/vkernel"
)

func mustJSONLen(t *testing.T, v any) int {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return len(data)
}

var updateGolden = flag.Bool("update", false, "rewrite golden wire frames")

// goldenSyncRequest is a fixed, fully populated request: every frame
// type, signed and unsigned varints, multi-container cover.
func goldenSyncRequest() *SyncRequest {
	return &SyncRequest{
		Version:  ProtoVersion,
		WorkerID: "w7",
		LeaseID:  "L7.1a2b3c",
		SinceGen: 42,
		Seeds: []WireSeed{
			{Text: "r0 = open(dev)\nioctl(r0, CMD, 3)\n", Prio: 120, Bonus: -4, Op: "splice"},
			{Text: "mmap(kvm)\n", Prio: 1},
		},
		NewBlocks: []vkernel.BlockID{1, 2, 3, 900, 70000, 70001, 1 << 20},
		Crashes: []WireCrash{
			{Title: "KASAN: use-after-free in dm_resume", Repro: "r0 = open(dev)\n", Count: 3},
		},
		Stats: WorkerStats{
			Execs: 5000, Cover: 321, Crashes: 1,
			Ops: []OpJSON{{Name: "insert", Picks: 10, NewBlocks: 4}, {Name: "splice", Picks: 7}},
		},
		Final: true,
	}
}

func goldenSyncResponse() *SyncResponse {
	return &SyncResponse{
		Version:    ProtoVersion,
		Generation: 43,
		Seeds: []WireSeed{
			{Text: "close(r0)\n", Prio: 55, Bonus: 2, Op: "insert"},
		},
		RejectedSeeds: 1,
		LeaseTTLMs:    60000,
	}
}

// checkGolden compares encoded bytes to the checked-in frame file, so
// accidental wire-format changes fail review explicitly.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire format drifted from %s:\n got %x\nwant %x\nIf the change is intentional, bump the wire version and regenerate with -update.", path, got, want)
	}
}

func TestWireSyncRequestGolden(t *testing.T) {
	enc := EncodeSyncRequest(goldenSyncRequest())
	checkGolden(t, "sync_request.bin", enc)
	dec, err := DecodeSyncRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, goldenSyncRequest()) {
		t.Fatalf("decode mismatch:\n got %+v\nwant %+v", dec, goldenSyncRequest())
	}
}

func TestWireSyncResponseGolden(t *testing.T) {
	enc := EncodeSyncResponse(goldenSyncResponse())
	checkGolden(t, "sync_response.bin", enc)
	dec, err := DecodeSyncResponse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, goldenSyncResponse()) {
		t.Fatalf("decode mismatch:\n got %+v\nwant %+v", dec, goldenSyncResponse())
	}
}

func TestWireEmptyRequest(t *testing.T) {
	req := &SyncRequest{Version: ProtoVersion, WorkerID: "w1"}
	dec, err := DecodeSyncRequest(EncodeSyncRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, req) {
		t.Fatalf("decode mismatch: got %+v", dec)
	}
}

func TestWireSmallerThanJSON(t *testing.T) {
	// The acceptance criterion in miniature: a representative sync
	// must be measurably smaller on the binary wire than in JSON.
	req := goldenSyncRequest()
	for b := vkernel.BlockID(5000); b < 6000; b++ {
		req.NewBlocks = append(req.NewBlocks, b)
	}
	bin := EncodeSyncRequest(req)
	jsonBytes := mustJSONLen(t, req)
	if len(bin)*2 > jsonBytes {
		t.Fatalf("binary encoding %dB not under half of JSON %dB", len(bin), jsonBytes)
	}
}

func TestWireRejectsMalformed(t *testing.T) {
	enc := EncodeSyncRequest(goldenSyncRequest())
	cases := map[string][]byte{
		"empty":         {},
		"bad-magic":     append([]byte{'X'}, enc[1:]...),
		"bad-version":   {'S', 'H', 'B', 0x7F},
		"no-frames":     enc[:4],
		"truncated":     enc[:len(enc)-3],
		"trailing":      append(append([]byte{}, enc...), 0x00),
		"unknown-frame": append(append([]byte{}, enc[:4]...), 0x7E, 0x00),
	}
	for name, data := range cases {
		if _, err := DecodeSyncRequest(data); err == nil {
			t.Errorf("%s: decode accepted malformed request", name)
		}
	}
	if _, err := DecodeSyncResponse(EncodeSyncRequest(goldenSyncRequest())); err == nil {
		t.Error("response decoder accepted a request stream")
	}
}

// FuzzWireSyncRequest checks the codec identity both ways: anything
// the decoder accepts must survive encode→decode unchanged, and the
// re-encoding must be stable (second generation equals first).
func FuzzWireSyncRequest(f *testing.F) {
	f.Add(EncodeSyncRequest(goldenSyncRequest()))
	f.Add(EncodeSyncRequest(&SyncRequest{Version: ProtoVersion}))
	f.Add([]byte{'S', 'H', 'B', ProtoVersion, frameEnd, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSyncRequest(data)
		if err != nil {
			return
		}
		enc := EncodeSyncRequest(req)
		req2, err := DecodeSyncRequest(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(req, req2) {
			t.Fatalf("encode->decode not identity:\n got %+v\nwant %+v", req2, req)
		}
		if enc2 := EncodeSyncRequest(req2); !bytes.Equal(enc, enc2) {
			t.Fatalf("re-encoding unstable: %x vs %x", enc, enc2)
		}
	})
}

func FuzzWireSyncResponse(f *testing.F) {
	f.Add(EncodeSyncResponse(goldenSyncResponse()))
	f.Add(EncodeSyncResponse(&SyncResponse{Version: ProtoVersion}))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeSyncResponse(data)
		if err != nil {
			return
		}
		enc := EncodeSyncResponse(resp)
		resp2, err := DecodeSyncResponse(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(resp, resp2) {
			t.Fatalf("encode->decode not identity:\n got %+v\nwant %+v", resp2, resp)
		}
		if enc2 := EncodeSyncResponse(resp2); !bytes.Equal(enc, enc2) {
			t.Fatalf("re-encoding unstable: %x vs %x", enc, enc2)
		}
	})
}
