package hub

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Hub state sidecar. The corpus store persists seeds, but the hub's
// other authoritative state — union coverage, the crash-dedup table,
// and per-worker leases with their cumulative crash counts — used to
// live only in memory, so every restart forced re-registered clients
// into a full cover/crash replay (and double-counted nothing only
// because the crash table was lost too). With WithStatePath the hub
// mirrors that state to a JSON sidecar (atomic temp+rename) after
// every mutating exchange; New restores it, and a restarted hub then
// accepts existing workers' leases as if nothing happened.

// hubStateJSON is the sidecar document.
type hubStateJSON struct {
	Version       int   `json:"version"`
	NextWorker    int   `json:"next_worker"`
	NextLease     int   `json:"next_lease"`
	RejectedSeeds int   `json:"rejected_seeds"`
	CrashReports  int   `json:"crash_reports"`
	StartUnixNs   int64 `json:"start_unix_ns"`
	// Cover is the union coverage as a vkernel compressed-bitmap
	// container stream (EncodeDelta against nothing).
	Cover   []byte            `json:"cover,omitempty"`
	Crashes []crashStateJSON  `json:"crashes,omitempty"`
	Workers []workerStateJSON `json:"workers,omitempty"`
}

type crashStateJSON struct {
	Title       string   `json:"title"`
	Repro       string   `json:"repro"`
	FirstWorker string   `json:"first_worker"`
	Count       int      `json:"count"`
	Reports     int      `json:"reports"`
	Workers     []string `json:"workers,omitempty"`
}

type workerStateJSON struct {
	ID          string         `json:"id"`
	Name        string         `json:"name,omitempty"`
	Fingerprint string         `json:"fingerprint,omitempty"`
	LeaseID     string         `json:"lease_id,omitempty"`
	LeaseState  string         `json:"lease_state,omitempty"`
	Gen         int            `json:"gen,omitempty"`
	LastSyncNs  int64          `json:"last_sync_ns,omitempty"`
	Final       bool           `json:"final,omitempty"`
	Stats       WorkerStats    `json:"stats"`
	Sync        SyncAggJSON    `json:"sync"`
	CrashCounts map[string]int `json:"crash_counts,omitempty"`
}

// persistLocked mirrors the hub state to the sidecar. Best-effort: a
// failed write is logged, not fatal — the corpus store stays the
// source of truth for seeds, and losing the sidecar only degrades a
// future restart to the legacy full-replay path. Callers hold h.mu.
func (h *Hub) persistLocked() {
	if h.statePath == "" {
		return
	}
	doc := hubStateJSON{
		Version:       ProtoVersion,
		NextWorker:    h.nextWorker,
		NextLease:     h.nextLease,
		RejectedSeeds: h.rejectedSeeds,
		CrashReports:  h.crashReports,
		StartUnixNs:   h.start.UnixNano(),
		Cover:         h.cover.EncodeDelta(nil),
	}
	keys := make([]string, 0, len(h.crashes))
	for k := range h.crashes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rec := h.crashes[k]
		cs := crashStateJSON{
			Title: rec.title, Repro: rec.repro, FirstWorker: rec.firstWorker,
			Count: rec.count, Reports: rec.reports,
		}
		for id := range rec.workers {
			cs.Workers = append(cs.Workers, id)
		}
		sort.Strings(cs.Workers)
		doc.Crashes = append(doc.Crashes, cs)
	}
	ids := make([]string, 0, len(h.workers))
	for id := range h.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		wk := h.workers[id]
		ws := workerStateJSON{
			ID: wk.id, Name: wk.name, Fingerprint: wk.fingerprint,
			LeaseID: wk.leaseID, LeaseState: wk.leaseState, Gen: wk.gen,
			Final: wk.final, Stats: wk.stats, Sync: wk.sync,
			CrashCounts: wk.crashCounts,
		}
		if !wk.lastSync.IsZero() {
			ws.LastSyncNs = wk.lastSync.UnixNano()
		}
		doc.Workers = append(doc.Workers, ws)
	}
	data, err := json.Marshal(&doc)
	if err != nil {
		h.logf("hub: state marshal: %v", err)
		return
	}
	tmp := h.statePath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		h.logf("hub: state write: %v", err)
		return
	}
	if err := os.Rename(tmp, h.statePath); err != nil {
		h.logf("hub: state rename: %v", err)
	}
}

// loadState restores the sidecar written by persistLocked. A missing
// file is a fresh start; a corrupt one is an error (silently starting
// empty would double-count crash reports from clients that trust
// their resumed leases). Restored active leases get a fresh TTL from
// load time, since the downtime should not count against workers.
// Callers have exclusive access (New, pre-publication).
//
//syzlint:locked mu
func (h *Hub) loadState() error {
	if h.statePath == "" {
		return nil
	}
	data, err := os.ReadFile(h.statePath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("hub: state read: %w", err)
	}
	var doc hubStateJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("hub: state %s: %w", filepath.Base(h.statePath), err)
	}
	if doc.Version != ProtoVersion {
		return fmt.Errorf("hub: state version %d not supported (this build speaks %d)", doc.Version, ProtoVersion)
	}
	h.nextWorker = doc.NextWorker
	h.nextLease = doc.NextLease
	h.rejectedSeeds = doc.RejectedSeeds
	h.crashReports = doc.CrashReports
	if doc.StartUnixNs != 0 {
		// Keep the original campaign epoch so execs/sec stays honest
		// across restarts (worker exec counters are cumulative).
		h.start = time.Unix(0, doc.StartUnixNs)
	}
	if len(doc.Cover) > 0 {
		if _, err := h.cover.ApplyDelta(doc.Cover); err != nil {
			return fmt.Errorf("hub: state cover: %w", err)
		}
	}
	for _, cs := range doc.Crashes {
		rec := &crashRecord{
			title: cs.Title, repro: cs.Repro, firstWorker: cs.FirstWorker,
			count: cs.Count, reports: cs.Reports, workers: map[string]bool{},
		}
		for _, id := range cs.Workers {
			rec.workers[id] = true
		}
		h.crashes[cs.Repro] = rec
	}
	now := h.now()
	for _, ws := range doc.Workers {
		wk := &worker{
			id: ws.ID, name: ws.Name, fingerprint: ws.Fingerprint,
			leaseID: ws.LeaseID, leaseState: ws.LeaseState, gen: ws.Gen,
			final: ws.Final, stats: ws.Stats, sync: ws.Sync,
			crashCounts: ws.CrashCounts,
		}
		if wk.crashCounts == nil {
			wk.crashCounts = map[string]int{}
		}
		if ws.LastSyncNs != 0 {
			wk.lastSync = time.Unix(0, ws.LastSyncNs)
		}
		if wk.leaseState == LeaseActive {
			wk.leaseExpiry = now.Add(h.leaseTTL)
		}
		h.workers[wk.id] = wk
	}
	h.logf("hub: restored state: %d workers, %d crashes, %d cover blocks",
		len(doc.Workers), len(doc.Crashes), h.cover.Count())
	return nil
}
