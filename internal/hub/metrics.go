package hub

import (
	"fmt"
	"net/http"

	"kernelgpt/internal/telemetry"
)

// hubMetrics is the hub-side telemetry bundle. Fixed label sets
// (protocols, lease events, shed kinds) are pre-registered so every
// series appears in the first scrape at zero — the CI monotonicity
// checks difference scrapes and must never see a series pop into
// existence between them. Per-path request counters register lazily
// (the path set is small and closed in practice).
type hubMetrics struct {
	reg *telemetry.Registry
	// syncSvc mirrors SyncAggJSON service time as a distribution
	// (syzhub_sync_service_ns): its _sum/_count reconcile exactly with
	// /v1/stats sync.service_ns_sum/count — the same measurements,
	// two views.
	syncSvc *telemetry.Histogram
	// syncBytes counts sync payload bytes by wire protocol
	// (syzhub_sync_bytes_total{proto="binary"|"json"}).
	syncBytes map[string]*telemetry.Counter
	// leaseEvents counts lease lifecycle transitions
	// (syzhub_lease_events_total{event=...}).
	leaseEvents map[string]*telemetry.Counter
	// sheds counts backpressure rejections
	// (syzhub_backpressure_sheds_total{kind="inflight"|"rate"}).
	sheds map[string]*telemetry.Counter
	// reqNs is the HTTP request service-time distribution
	// (syzhub_request_ns), measured by the Handler middleware.
	reqNs *telemetry.Histogram
}

func newHubMetrics(reg *telemetry.Registry) *hubMetrics {
	if reg == nil {
		return nil
	}
	m := &hubMetrics{
		reg:         reg,
		syncSvc:     reg.Histogram("syzhub_sync_service_ns", nil),
		syncBytes:   map[string]*telemetry.Counter{},
		leaseEvents: map[string]*telemetry.Counter{},
		sheds:       map[string]*telemetry.Counter{},
		reqNs:       reg.Histogram("syzhub_request_ns", nil),
	}
	for _, proto := range []string{"binary", "json"} {
		m.syncBytes[proto] = reg.Counter(fmt.Sprintf("syzhub_sync_bytes_total{proto=%q}", proto))
	}
	for _, ev := range []string{"grant", "renew", "expire", "release", "resume"} {
		m.leaseEvents[ev] = reg.Counter(fmt.Sprintf("syzhub_lease_events_total{event=%q}", ev))
	}
	for _, kind := range []string{"inflight", "rate"} {
		m.sheds[kind] = reg.Counter(fmt.Sprintf("syzhub_backpressure_sheds_total{kind=%q}", kind))
	}
	return m
}

// syncObserved records one exchange's service time and payload size.
func (m *hubMetrics) syncObserved(serviceNs, payloadBytes int64, binary bool) {
	if m == nil {
		return
	}
	m.syncSvc.Observe(serviceNs)
	proto := "json"
	if binary {
		proto = "binary"
	}
	m.syncBytes[proto].Add(payloadBytes)
}

// lease records one lease lifecycle transition.
func (m *hubMetrics) lease(event string) {
	if m == nil {
		return
	}
	m.leaseEvents[event].Inc()
}

// shed records one backpressure rejection.
func (m *hubMetrics) shed(kind string) {
	if m == nil {
		return
	}
	m.sheds[kind].Inc()
}

// request records one served HTTP request. The per-code/path counter
// registers on first use; /metrics itself is never routed here (a
// scrape must not change what the next scrape reads).
func (m *hubMetrics) request(path string, code int, durNs int64) {
	if m == nil {
		return
	}
	m.reqNs.Observe(durNs)
	m.reg.Counter(fmt.Sprintf("syzhub_http_requests_total{code=\"%d\",path=%q}", code, path)).Inc()
}

// statusWriter captures the response status for the Handler
// middleware (WriteHeader may never be called explicitly — an
// implicit 200 from the first Write counts as such).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}
