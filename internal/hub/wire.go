package hub

import (
	"encoding/binary"
	"fmt"

	"kernelgpt/internal/vkernel"
)

// Binary wire format
//
// The fleet-scale sync path ships /v1/sync exchanges as a compact
// binary frame stream negotiated per request: a client that POSTs
// with Content-Type BinaryContentType is decoded from this format,
// and one whose Accept header names it gets its response encoded the
// same way. JSON remains the default and the two formats are
// semantically identical — every stream decodes to the same
// SyncRequest/SyncResponse structs the JSON path unmarshals to.
//
// A stream is the 4-byte magic "SHB" + version, then length-prefixed
// frames until an end frame:
//
//	[1-byte frame type][uvarint payload length][payload]
//
// Seeds travel one frame each (the corpus diff streams per-seed
// instead of as one monolithic array), cover deltas as a single
// frame holding a vkernel compressed-bitmap container stream, and
// crashes one frame each. Integers inside payloads are varints
// (zigzag for the signed scheduling weights, uvarint for counters
// and lengths); strings are uvarint-length-prefixed bytes. Frames
// with unknown types are an error — the format is versioned, not
// extensible-by-skipping, so accidental format drift fails loudly
// (the golden-frame tests pin the bytes).
const (
	// BinaryContentType negotiates the binary sync framing.
	BinaryContentType = "application/x-syzhub-bin"
	// JSONContentType is the default protocol's media type.
	JSONContentType = "application/json"
)

// wireMagic starts every binary stream; the last byte is the wire
// version and tracks ProtoVersion.
var wireMagic = [4]byte{'S', 'H', 'B', ProtoVersion}

// Frame types.
const (
	frameReqHeader  = 0x01 // SyncRequest scalars + worker stats
	frameSeed       = 0x02 // one WireSeed (either direction)
	frameCover      = 0x03 // vkernel.EncodeDelta cover payload
	frameCrash      = 0x04 // one WireCrash
	frameRespHeader = 0x05 // SyncResponse scalars
	frameEnd        = 0x06 // end of stream
)

// maxFramePayload bounds a single frame (a seed repro or crash text
// can be long, but nothing legitimate approaches this).
const maxFramePayload = 16 << 20

// appendString encodes a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendInt zigzag-encodes a signed integer.
func appendInt(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}

// wireReader is a cursor over one frame payload (or the whole
// stream); its methods record the first error and no-op after it.
type wireReader struct {
	data []byte
	err  error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("hub wire: "+format, args...)
	}
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *wireReader) int() int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.data = r.data[n:]
	return int(v)
}

func (r *wireReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)) {
		r.fail("string length %d overruns payload", n)
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

// frame reads one [type][len][payload] frame off the stream.
func (r *wireReader) frame() (byte, *wireReader) {
	if r.err != nil {
		return 0, &wireReader{err: r.err}
	}
	if len(r.data) < 1 {
		r.fail("truncated stream (missing end frame)")
		return 0, &wireReader{err: r.err}
	}
	typ := r.data[0]
	r.data = r.data[1:]
	n := r.uvarint()
	if r.err == nil && (n > maxFramePayload || n > uint64(len(r.data))) {
		r.fail("frame payload %d overruns stream", n)
	}
	if r.err != nil {
		return 0, &wireReader{err: r.err}
	}
	payload := &wireReader{data: r.data[:n]}
	r.data = r.data[n:]
	return typ, payload
}

// done asserts the payload was fully consumed.
func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("hub wire: %d trailing bytes", len(r.data))
	}
	return nil
}

// appendFrame wraps a payload in its frame header.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// appendSeedFrame encodes one WireSeed frame.
func appendSeedFrame(dst []byte, scratch []byte, ws WireSeed) ([]byte, []byte) {
	p := scratch[:0]
	p = appendString(p, ws.Text)
	p = appendInt(p, ws.Prio)
	p = appendInt(p, ws.Bonus)
	p = appendString(p, ws.Op)
	return appendFrame(dst, frameSeed, p), p
}

func readSeed(p *wireReader) (WireSeed, error) {
	ws := WireSeed{Text: p.string()}
	ws.Prio = p.int()
	ws.Bonus = p.int()
	ws.Op = p.string()
	return ws, p.done()
}

// EncodeSyncRequest serializes a sync request as a binary frame
// stream. The NewBlocks cover delta is compressed through the
// vkernel container codec.
func EncodeSyncRequest(req *SyncRequest) []byte {
	dst := append([]byte(nil), wireMagic[:]...)
	var p []byte
	p = appendString(p, req.WorkerID)
	p = appendString(p, req.LeaseID)
	p = binary.AppendUvarint(p, uint64(req.SinceGen))
	flags := byte(0)
	if req.Final {
		flags |= 1
	}
	p = append(p, flags)
	p = appendInt(p, req.Stats.Execs)
	p = appendInt(p, req.Stats.Cover)
	p = appendInt(p, req.Stats.Crashes)
	p = binary.AppendUvarint(p, uint64(len(req.Stats.Ops)))
	for _, op := range req.Stats.Ops {
		p = appendString(p, op.Name)
		p = appendInt(p, op.Picks)
		p = appendInt(p, op.NewBlocks)
	}
	dst = appendFrame(dst, frameReqHeader, p)
	if len(req.NewBlocks) > 0 {
		cov := &vkernel.CoverSet{}
		for _, b := range req.NewBlocks {
			cov.Add(b)
		}
		dst = appendFrame(dst, frameCover, cov.EncodeDelta(nil))
	}
	var scratch []byte
	for _, ws := range req.Seeds {
		dst, scratch = appendSeedFrame(dst, scratch, ws)
	}
	for _, wc := range req.Crashes {
		p := scratch[:0]
		p = appendString(p, wc.Title)
		p = appendString(p, wc.Repro)
		p = appendInt(p, wc.Count)
		dst = appendFrame(dst, frameCrash, p)
		scratch = p
	}
	return appendFrame(dst, frameEnd, nil)
}

// DecodeSyncRequest parses a binary sync request stream.
func DecodeSyncRequest(data []byte) (*SyncRequest, error) {
	r, err := openStream(data)
	if err != nil {
		return nil, err
	}
	req := &SyncRequest{Version: ProtoVersion}
	sawHeader, sawCover := false, false
	for {
		typ, p := r.frame()
		if r.err != nil {
			return nil, r.err
		}
		switch typ {
		case frameReqHeader:
			if sawHeader {
				return nil, fmt.Errorf("hub wire: duplicate request header")
			}
			sawHeader = true
			req.WorkerID = p.string()
			req.LeaseID = p.string()
			req.SinceGen = int(p.uvarint())
			if p.err == nil && len(p.data) >= 1 {
				req.Final = p.data[0]&1 != 0
				p.data = p.data[1:]
			} else {
				p.fail("missing flags byte")
			}
			req.Stats.Execs = p.int()
			req.Stats.Cover = p.int()
			req.Stats.Crashes = p.int()
			nops := p.uvarint()
			if p.err == nil && nops > uint64(len(p.data)) {
				p.fail("op count %d overruns payload", nops)
			}
			for i := uint64(0); i < nops && p.err == nil; i++ {
				op := OpJSON{Name: p.string()}
				op.Picks = p.int()
				op.NewBlocks = p.int()
				req.Stats.Ops = append(req.Stats.Ops, op)
			}
			if err := p.done(); err != nil {
				return nil, err
			}
		case frameCover:
			if sawCover {
				return nil, fmt.Errorf("hub wire: duplicate cover frame")
			}
			sawCover = true
			blocks, err := vkernel.DecodeDeltaBlocks(p.data)
			if err != nil {
				return nil, fmt.Errorf("hub wire: %w", err)
			}
			req.NewBlocks = blocks
		case frameSeed:
			ws, err := readSeed(p)
			if err != nil {
				return nil, err
			}
			req.Seeds = append(req.Seeds, ws)
		case frameCrash:
			wc := WireCrash{Title: p.string()}
			wc.Repro = p.string()
			wc.Count = p.int()
			if err := p.done(); err != nil {
				return nil, err
			}
			req.Crashes = append(req.Crashes, wc)
		case frameEnd:
			if err := p.done(); err != nil {
				return nil, err
			}
			if !sawHeader {
				return nil, fmt.Errorf("hub wire: stream without request header")
			}
			if err := r.done(); err != nil {
				return nil, err
			}
			return req, nil
		default:
			return nil, fmt.Errorf("hub wire: unknown frame type %#x", typ)
		}
	}
}

// EncodeSyncResponse serializes a sync response as a binary frame
// stream.
func EncodeSyncResponse(resp *SyncResponse) []byte {
	dst := append([]byte(nil), wireMagic[:]...)
	var p []byte
	p = binary.AppendUvarint(p, uint64(resp.Generation))
	p = appendInt(p, resp.RejectedSeeds)
	p = binary.AppendUvarint(p, uint64(resp.LeaseTTLMs))
	dst = appendFrame(dst, frameRespHeader, p)
	var scratch []byte
	for _, ws := range resp.Seeds {
		dst, scratch = appendSeedFrame(dst, scratch, ws)
	}
	return appendFrame(dst, frameEnd, nil)
}

// DecodeSyncResponse parses a binary sync response stream.
func DecodeSyncResponse(data []byte) (*SyncResponse, error) {
	r, err := openStream(data)
	if err != nil {
		return nil, err
	}
	resp := &SyncResponse{Version: ProtoVersion}
	sawHeader := false
	for {
		typ, p := r.frame()
		if r.err != nil {
			return nil, r.err
		}
		switch typ {
		case frameRespHeader:
			if sawHeader {
				return nil, fmt.Errorf("hub wire: duplicate response header")
			}
			sawHeader = true
			resp.Generation = int(p.uvarint())
			resp.RejectedSeeds = p.int()
			resp.LeaseTTLMs = int64(p.uvarint())
			if err := p.done(); err != nil {
				return nil, err
			}
		case frameSeed:
			ws, err := readSeed(p)
			if err != nil {
				return nil, err
			}
			resp.Seeds = append(resp.Seeds, ws)
		case frameEnd:
			if err := p.done(); err != nil {
				return nil, err
			}
			if !sawHeader {
				return nil, fmt.Errorf("hub wire: stream without response header")
			}
			if err := r.done(); err != nil {
				return nil, err
			}
			return resp, nil
		default:
			return nil, fmt.Errorf("hub wire: unknown frame type %#x", typ)
		}
	}
}

// openStream validates the stream magic and version.
func openStream(data []byte) (*wireReader, error) {
	if len(data) < len(wireMagic) {
		return nil, fmt.Errorf("hub wire: stream shorter than magic")
	}
	if data[0] != 'S' || data[1] != 'H' || data[2] != 'B' {
		return nil, fmt.Errorf("hub wire: bad magic")
	}
	if data[3] != ProtoVersion {
		return nil, fmt.Errorf("hub wire: protocol version %d not supported (this build speaks %d)", data[3], ProtoVersion)
	}
	return &wireReader{data: data[len(wireMagic):]}, nil
}
