package hub

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/telemetry"
	"kernelgpt/internal/vkernel"
)

// runGoldenScenario drives one fully pinned hub session — fixed
// clock, fixed RNG seed, fixed worker order — and returns the bytes
// of GET /v1/stats, the hubstate.json sidecar, and two consecutive
// GET /metrics scrapes taken afterwards.
func runGoldenScenario(t *testing.T) (statsBody, stateBody, metrics1, metrics2 []byte) {
	t.Helper()
	tgt := targetFor(t, "dm")
	clock := time.Unix(1_700_000_000, 0).UTC()
	dir := t.TempDir()
	statePath := filepath.Join(dir, "hubstate.json")
	store, err := corpusstore.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(tgt, store,
		withNow(func() time.Time { return clock }),
		WithStatePath(statePath),
		WithMetrics(telemetry.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	ctx := context.Background()
	c1, err := Dial(ctx, srv.URL, "alpha", tgt)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(ctx, srv.URL, "beta", tgt)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.NewGen(tgt, 1)
	var seeds []seedpool.SeedState
	for i := 0; i < 3; i++ {
		seeds = append(seeds, seedpool.SeedState{Prog: g.Generate(3), Prio: i + 1})
	}
	cover := vkernel.NewCoverSet(16)
	for _, b := range []vkernel.BlockID{1, 2, 5} {
		cover.Add(b)
	}
	if _, err := c1.Sync(ctx, fuzz.SyncState{
		Seeds: seeds, Cover: cover, Execs: 100,
		Crashes: []fuzz.CrashReport{{Title: "bug-a", Repro: seeds[0].Prog.Serialize(), Count: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Sync(ctx, fuzz.SyncState{Cover: &vkernel.CoverSet{}, Execs: 50}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) []byte {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	statsBody = get("/v1/stats")
	stateBody, err = os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	metrics1 = get("/metrics")
	metrics2 = get("/metrics")
	return statsBody, stateBody, metrics1, metrics2
}

// TestStatsAndStateGoldenBytes pins the monitoring and persistence
// surfaces byte-for-byte: the same session must serialize to the same
// bytes on every run (no map-order leaks — the detorder invariant),
// and to exactly the checked-in goldens (wire-format drift is a
// deliberate act: regenerate with `go test ./internal/hub -run
// Golden -update`).
func TestStatsAndStateGoldenBytes(t *testing.T) {
	stats1, state1, metricsA1, metricsA2 := runGoldenScenario(t)
	stats2, state2, metricsB1, _ := runGoldenScenario(t)
	if !bytes.Equal(stats1, stats2) {
		t.Errorf("/v1/stats is not byte-stable across identical runs:\nrun1: %s\nrun2: %s", stats1, stats2)
	}
	if !bytes.Equal(state1, state2) {
		t.Errorf("hubstate.json is not byte-stable across identical runs:\nrun1: %s\nrun2: %s", state1, state2)
	}
	// Double-scrape equality: serving /metrics must not change what
	// the next scrape reads (scrapes are not self-counted).
	if !bytes.Equal(metricsA1, metricsA2) {
		t.Errorf("/metrics is not byte-stable across consecutive scrapes:\nscrape1:\n%s\nscrape2:\n%s", metricsA1, metricsA2)
	}
	if !bytes.Equal(metricsA1, metricsB1) {
		t.Errorf("/metrics is not byte-stable across identical runs:\nrun1:\n%s\nrun2:\n%s", metricsA1, metricsB1)
	}
	checkGolden(t, "golden_stats.json", stats1)
	checkGolden(t, "golden_hubstate.json", state1)
	checkGolden(t, "golden_metrics.txt", metricsA1)
}
