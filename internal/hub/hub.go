package hub

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/telemetry"
	"kernelgpt/internal/vkernel"
)

// DefaultLeaseTTL is the lease time-to-live granted at registration
// and refreshed by every sync and heartbeat. Campaigns sync at
// checkpoint cadence (well under a minute), so a worker that goes
// this long without either is treated as dead.
const DefaultLeaseTTL = time.Minute

// Lease states (WorkerJSON.Lease).
const (
	LeaseActive   = "active"
	LeaseExpired  = "expired"
	LeaseReleased = "released"
)

// Hub is the coordination daemon's state: the authoritative merged
// corpus (mirrored to an on-disk corpusstore after every mutating
// sync), the global crash-dedup table, per-worker bookkeeping, and
// the union coverage map. All request handling serializes on one
// mutex — the hub's unit of work is a batch exchange at checkpoint
// cadence, not a hot path.
type Hub struct {
	target *prog.Target
	store  *corpusstore.Store
	cap    int
	logf   func(format string, args ...any)
	now    telemetry.Clock

	leaseTTL        time.Duration
	maxInflight     int
	minSyncInterval time.Duration
	statePath       string
	parentURL       string

	// registry/metrics serve and feed /metrics (nil = telemetry off);
	// flight buffers recent request activity and dumps it when a
	// request fails.
	registry *telemetry.Registry
	metrics  *hubMetrics
	flight   *telemetry.FlightRecorder

	// inflight counts /v1/sync requests currently being served; when
	// it would exceed maxInflight the hub sheds load with 429 before
	// touching the mutex.
	inflight atomic.Int64

	mu sync.Mutex
	// states is the merged corpus image (what the store holds);
	// entries/generation mirror the store manifest after each save,
	// so pull diffs reuse the store's generation bookkeeping. texts
	// caches each entry's serialized program by file name.
	states  []seedpool.SeedState    // guarded by mu
	entries []corpusstore.Entry     // guarded by mu
	gen     int                     // guarded by mu
	texts   map[string]string       // guarded by mu
	cover   *vkernel.CoverSet       // guarded by mu
	crashes map[string]*crashRecord // guarded by mu
	workers map[string]*worker      // guarded by mu

	nextWorker    int // guarded by mu
	nextLease     int // guarded by mu
	rejectedSeeds int // guarded by mu
	crashReports  int // guarded by mu
	start         time.Time
}

// worker is one registered campaign's bookkeeping.
type worker struct {
	id          string
	name        string
	fingerprint string
	lastSync    time.Time
	final       bool
	stats       WorkerStats
	// leaseID names the worker's lease; leaseExpiry is when it lapses
	// unless a sync or heartbeat renews it first; leaseState tracks
	// active → expired (reaped) or released (Final sync).
	leaseID     string
	leaseExpiry time.Time
	leaseState  string
	// gen stamps the store generation of the worker's last exchange;
	// persisted with the lease so a resumed worker's replay window is
	// bounded by what the store already holds.
	gen int
	// sync aggregates the worker's per-sync service time and payload
	// size (count/sum/max), the operator-facing cost of keeping this
	// worker attached.
	sync SyncAggJSON
	// crashCounts is the worker's last reported cumulative hit count
	// per normalized repro; recordCrash differences against it so
	// retried reports fold in exactly once.
	crashCounts map[string]int
}

// observeSync folds one exchange's service time, wire payload size,
// and JSON-equivalent size into a sync aggregate.
func observeSync(a *SyncAggJSON, serviceNs, payloadBytes, jsonBytes int64) {
	a.Count++
	a.ServiceNsSum += serviceNs
	if serviceNs > a.ServiceNsMax {
		a.ServiceNsMax = serviceNs
	}
	a.BytesSum += payloadBytes
	if payloadBytes > a.BytesMax {
		a.BytesMax = payloadBytes
	}
	a.JSONBytesSum += jsonBytes
}

// crashRecord is one globally deduplicated crash, keyed in
// Hub.crashes by normalized repro text.
type crashRecord struct {
	title       string
	repro       string // normalized
	firstWorker string
	count       int
	reports     int
	workers     map[string]bool
}

// Option configures a Hub.
type Option func(*Hub)

// WithCapacity bounds the merged corpus (<= 0 selects
// seedpool.DefaultCapacity).
func WithCapacity(n int) Option { return func(h *Hub) { h.cap = n } }

// WithLog directs hub event logging (registrations, syncs, saves).
func WithLog(logf func(format string, args ...any)) Option {
	return func(h *Hub) { h.logf = logf }
}

// WithLeaseTTL overrides the worker lease time-to-live (<= 0 selects
// DefaultLeaseTTL).
func WithLeaseTTL(d time.Duration) Option {
	return func(h *Hub) { h.leaseTTL = d }
}

// WithMaxInflight bounds concurrent /v1/sync requests; excess load is
// shed with 429 + Retry-After before it queues on the hub mutex
// (0 = unbounded).
func WithMaxInflight(n int) Option { return func(h *Hub) { h.maxInflight = n } }

// WithMinSyncInterval rate-limits each worker to one non-final sync
// per interval; faster arrivals get 429 + Retry-After (0 = no limit).
func WithMinSyncInterval(d time.Duration) Option {
	return func(h *Hub) { h.minSyncInterval = d }
}

// WithStatePath enables the hub state sidecar: cover union, crash
// table, and worker leases are persisted to this JSON file after
// every mutating exchange and restored by New, so a hub restart does
// not force re-registered workers into a full cover/crash replay.
func WithStatePath(path string) Option { return func(h *Hub) { h.statePath = path } }

// WithParent records the upstream hub URL this hub aggregates into
// (for /v1/stats; the actual upward sync loop is driven by the
// caller via SyncParent).
func WithParent(url string) Option { return func(h *Hub) { h.parentURL = url } }

// withNow overrides the hub clock (tests).
func withNow(now func() time.Time) Option { return func(h *Hub) { h.now = now } }

// WithClock injects the hub's time source — the same
// telemetry.Clock the campaigns thread through fuzz.Config.Clock, so
// worker traces and hub-side aggregates (SyncAggJSON service times,
// lease expiries) are measured against one clock. Nil reads the
// system wall clock.
func WithClock(c telemetry.Clock) Option {
	return func(h *Hub) {
		if c != nil {
			h.now = c
		}
	}
}

// WithMetrics attaches a telemetry registry: hub metrics (sync
// service time, payload bytes by protocol, lease events, backpressure
// sheds, HTTP request counts) are recorded into it and Handler serves
// it at /metrics next to /v1/stats. Scrapes of /metrics itself are
// not counted, so identical hub state always scrapes to identical
// bytes.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(h *Hub) {
		h.registry = reg
		h.metrics = newHubMetrics(reg)
	}
}

// WithFlightRecorder buffers recent request activity in rec and dumps
// the ring when a request fails (status >= 400, except 429
// backpressure sheds, which are expected under load).
func WithFlightRecorder(rec *telemetry.FlightRecorder) Option {
	return func(h *Hub) { h.flight = rec }
}

// New opens a hub over the given compiled target and corpus store.
// An existing store warm-starts the hub: its entries become the
// initial merged corpus (invalid ones are skipped, as in any load)
// and its generation lineage continues, so workers of a previous hub
// instance can keep syncing. Without a state sidecar (WithStatePath)
// union coverage and the crash table restart empty — workers re-push
// their full history after re-registering; with one, leases and all
// attribution state are restored and restarted workers carry on as if
// nothing happened.
func New(t *prog.Target, store *corpusstore.Store, opts ...Option) (*Hub, error) {
	h := &Hub{
		target:  t,
		store:   store,
		logf:    func(string, ...any) {},
		now:     telemetry.SystemClock,
		texts:   map[string]string{},
		cover:   &vkernel.CoverSet{},
		crashes: map[string]*crashRecord{},
		workers: map[string]*worker{},
	}
	for _, o := range opts {
		o(h)
	}
	if h.cap <= 0 {
		h.cap = seedpool.DefaultCapacity
	}
	if h.leaseTTL <= 0 {
		h.leaseTTL = DefaultLeaseTTL
	}
	h.start = h.now()
	states, rep, err := store.Load(t)
	if err != nil {
		return nil, fmt.Errorf("hub: %w", err)
	}
	h.states = states
	if len(rep.Skipped) > 0 {
		h.logf("hub: store load skipped %d entries", len(rep.Skipped))
	}
	if err := h.refreshIndex(); err != nil {
		return nil, err
	}
	if err := h.loadState(); err != nil {
		return nil, err
	}
	return h, nil
}

// refreshIndex re-reads the store manifest into the in-memory mirror
// (entries with generations, current generation, text cache).
// Callers hold h.mu, or have exclusive access (New).
//
//syzlint:locked mu
func (h *Hub) refreshIndex() error {
	m, err := h.store.Manifest()
	if err != nil {
		return fmt.Errorf("hub: %w", err)
	}
	h.entries = m.Seeds
	h.gen = m.Generation
	texts := make(map[string]string, len(h.states))
	for _, st := range h.states {
		text := st.Prog.Serialize()
		texts[corpusstore.FileFor(text)] = text
	}
	h.texts = texts
	return nil
}

// Handler returns the hub's HTTP interface. With WithMetrics set the
// registry is served at /metrics, and every API request is recorded
// (count by code/path, service-time histogram); with a flight
// recorder attached, failed requests dump the recent-activity ring.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", h.handleRegister)
	mux.HandleFunc("/v1/sync", h.handleSync)
	mux.HandleFunc("/v1/heartbeat", h.handleHeartbeat)
	mux.HandleFunc("/v1/stats", h.handleStats)
	mux.HandleFunc("/v1/crashes", h.handleCrashes)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	if h.metrics == nil && h.flight == nil {
		if h.registry != nil {
			mux.Handle("/metrics", telemetry.Handler(h.registry))
		}
		return mux
	}
	instrumented := h.instrument(mux)
	outer := http.NewServeMux()
	// /metrics bypasses instrumentation: a scrape must not change what
	// the next scrape reads (the double-scrape golden invariant).
	if h.registry != nil {
		outer.Handle("/metrics", telemetry.Handler(h.registry))
	}
	outer.Handle("/", instrumented)
	return outer
}

// instrument wraps the API mux in one interception point: request
// count + service time into metrics, a request event into the flight
// ring, and a ring dump when the request failed (status >= 400,
// except 429 — backpressure sheds are normal operation, and dumping
// per shed would thrash the recorder exactly when the hub is busiest).
func (h *Hub) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := h.now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		durNs := h.now().Sub(t0).Nanoseconds()
		h.metrics.request(r.URL.Path, sw.status, durNs)
		if h.flight != nil {
			h.flight.Record(telemetry.Event{
				Span: "http", ElapsedNs: t0.UnixNano(), DurNs: durNs,
				Detail: fmt.Sprintf("%s %s -> %d", r.Method, r.URL.Path, sw.status),
			})
			if sw.status >= 400 && sw.status != http.StatusTooManyRequests {
				h.flight.Dump(fmt.Sprintf("http-%d", sw.status))
			}
		}
	})
}

// writeJSON serializes one response body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decode parses a JSON request body and enforces the protocol
// version, writing the error response itself on failure. It returns
// the payload size in bytes so handlers can account sync cost.
func decode(w http.ResponseWriter, r *http.Request, version *int, body any) (int64, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return 0, false
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return 0, false
	}
	if err := json.Unmarshal(data, body); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return int64(len(data)), false
	}
	if *version != ProtoVersion {
		writeError(w, http.StatusBadRequest, "protocol version %d not supported (hub speaks %d)", *version, ProtoVersion)
		return int64(len(data)), false
	}
	return int64(len(data)), true
}

// reapLocked expires leases whose TTL lapsed. Expired workers keep
// their bookkeeping (so a LeaseID resume needs no replay and crash
// differencing stays exact) but their syncs are rejected until they
// re-register. Callers hold h.mu.
func (h *Hub) reapLocked() {
	now := h.now()
	for _, wk := range h.workers {
		if wk.leaseState == LeaseActive && wk.leaseExpiry.Before(now) {
			wk.leaseState = LeaseExpired
			h.metrics.lease("expire")
			h.flight.RecordNow("lease-expire", 0, wk.id)
			h.logf("hub: lease for %s (%s) expired", wk.id, wk.name)
		}
	}
}

// grantLease issues a fresh lease on wk. The ID is unique per hub
// lifetime (counter) and across restarts (start-time suffix), so a
// stale client resuming against a restarted hub cannot collide with
// a newly issued lease. Callers hold h.mu.
//
//syzlint:locked mu
func (h *Hub) grantLease(wk *worker) {
	h.nextLease++
	wk.leaseID = fmt.Sprintf("L%d.%x", h.nextLease, h.start.UnixNano())
	wk.leaseState = LeaseActive
	wk.leaseExpiry = h.now().Add(h.leaseTTL)
	h.metrics.lease("grant")
}

func (h *Hub) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if _, ok := decode(w, r, &req.Version, &req); !ok {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.reapLocked()
	hubFP := Fingerprint(h.target)
	// Resume: if the presented lease matches a worker we still hold
	// state for (in memory, or restored from the state sidecar after
	// a restart), revive it — the worker keeps its identity and the
	// client keeps its delta bookkeeping.
	if req.LeaseID != "" {
		for _, wk := range h.workers {
			if wk.leaseID == req.LeaseID && wk.leaseState != LeaseReleased {
				wk.leaseState = LeaseActive
				wk.leaseExpiry = h.now().Add(h.leaseTTL)
				h.metrics.lease("resume")
				h.persistLocked()
				h.logf("hub: resumed %s (%s, lease %s)", wk.id, wk.name, wk.leaseID)
				writeJSON(w, http.StatusOK, RegisterResponse{
					Version: ProtoVersion, WorkerID: wk.id, Generation: h.gen,
					Seeds: len(h.states), HubFingerprint: hubFP,
					LeaseID: wk.leaseID, LeaseTTLMs: h.leaseTTL.Milliseconds(),
					Resumed: true,
				})
				return
			}
		}
	}
	h.nextWorker++
	id := fmt.Sprintf("w%d", h.nextWorker)
	wk := &worker{id: id, name: req.Name, fingerprint: req.Fingerprint, crashCounts: map[string]int{}}
	h.grantLease(wk)
	h.workers[id] = wk
	h.persistLocked()
	h.logf("hub: registered %s (%s, fingerprint %s, lease %s)", id, req.Name, req.Fingerprint, wk.leaseID)
	writeJSON(w, http.StatusOK, RegisterResponse{
		Version: ProtoVersion, WorkerID: id, Generation: h.gen,
		Seeds: len(h.states), HubFingerprint: hubFP,
		LeaseID: wk.leaseID, LeaseTTLMs: h.leaseTTL.Milliseconds(),
	})
}

func (h *Hub) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if _, ok := decode(w, r, &req.Version, &req); !ok {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.reapLocked()
	wk := h.workers[req.WorkerID]
	if wk == nil || !h.leaseOKLocked(w, wk, req.LeaseID) {
		if wk == nil {
			writeError(w, http.StatusNotFound, "unknown worker %q (hub restarted? re-register)", req.WorkerID)
		}
		return
	}
	if wk.leaseState == LeaseActive {
		wk.leaseExpiry = h.now().Add(h.leaseTTL)
		h.metrics.lease("renew")
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{
		Version: ProtoVersion, LeaseTTLMs: h.leaseTTL.Milliseconds(),
	})
}

// leaseOKLocked validates a presented lease against a worker's,
// writing the 404 re-register hint itself on mismatch or expiry. An
// empty presented lease is tolerated for legacy clients as long as
// the worker's lease is live. Callers hold h.mu.
func (h *Hub) leaseOKLocked(w http.ResponseWriter, wk *worker, leaseID string) bool {
	if leaseID != "" && leaseID != wk.leaseID {
		writeError(w, http.StatusNotFound, "stale lease for %q: re-register", wk.id)
		return false
	}
	if wk.leaseState == LeaseExpired {
		writeError(w, http.StatusNotFound, "lease for %q expired: re-register (send lease_id to resume)", wk.id)
		return false
	}
	return true
}

// decodeSync parses a /v1/sync body by Content-Type: the binary frame
// stream when negotiated, JSON otherwise. It returns the request, the
// wire payload size, and the JSON-equivalent size (what the same
// request measures in the default encoding — the baseline the binary
// protocol is judged against in /v1/stats).
func decodeSync(w http.ResponseWriter, r *http.Request) (*SyncRequest, int64, int64, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return nil, 0, 0, false
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, 0, 0, false
	}
	payload := int64(len(data))
	if strings.HasPrefix(r.Header.Get("Content-Type"), BinaryContentType) {
		req, err := DecodeSyncRequest(data)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return nil, payload, 0, false
		}
		jsonBody, _ := json.Marshal(req)
		return req, payload, int64(len(jsonBody)), true
	}
	req := &SyncRequest{}
	if err := json.Unmarshal(data, req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, payload, 0, false
	}
	if req.Version != ProtoVersion {
		writeError(w, http.StatusBadRequest, "protocol version %d not supported (hub speaks %d)", req.Version, ProtoVersion)
		return nil, payload, 0, false
	}
	return req, payload, payload, true
}

func (h *Hub) handleSync(w http.ResponseWriter, r *http.Request) {
	// Backpressure: shed load before decoding or queueing on the hub
	// mutex. The client's retry loop honors Retry-After.
	if h.maxInflight > 0 {
		if n := h.inflight.Add(1); n > int64(h.maxInflight) {
			h.inflight.Add(-1)
			h.metrics.shed("inflight")
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "hub at capacity (%d syncs in flight)", h.maxInflight)
			return
		}
		defer h.inflight.Add(-1)
	}
	req, payload, jsonBytes, ok := decodeSync(w, r)
	if !ok {
		return
	}
	gotBinary := strings.HasPrefix(r.Header.Get("Content-Type"), BinaryContentType)
	wantBinary := strings.Contains(r.Header.Get("Accept"), BinaryContentType)
	h.mu.Lock()
	defer h.mu.Unlock()
	// Service time is measured from lock acquisition: the hub's own
	// work (validate, merge, save, diff), excluding queueing behind
	// other syncs — the queueing delay is what capacity planning
	// derives FROM this number, so baking it in would double-count.
	svcStart := h.now()
	h.reapLocked()
	wk := h.workers[req.WorkerID]
	if wk == nil {
		writeError(w, http.StatusNotFound, "unknown worker %q (hub restarted? re-register)", req.WorkerID)
		return
	}
	if !h.leaseOKLocked(w, wk, req.LeaseID) {
		return
	}
	// Per-worker rate limit. Final syncs are exempt — a campaign must
	// always be able to deliver its last exchange and release its
	// lease.
	if h.minSyncInterval > 0 && !req.Final && !wk.lastSync.IsZero() {
		if elapsed := svcStart.Sub(wk.lastSync); elapsed < h.minSyncInterval {
			wait := h.minSyncInterval - elapsed
			secs := int(wait/time.Second) + 1
			h.metrics.shed("rate")
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
			writeError(w, http.StatusTooManyRequests, "sync rate limit for %q: retry in %v", wk.id, wait)
			return
		}
	}
	defer func() {
		serviceNs := h.now().Sub(svcStart).Nanoseconds()
		observeSync(&wk.sync, serviceNs, payload, jsonBytes)
		h.metrics.syncObserved(serviceNs, payload, gotBinary)
	}()
	// Push: validate incoming programs against the hub target, merge
	// into the authoritative image, persist, refresh the generation
	// mirror.
	var incoming []seedpool.SeedState
	rejected := 0
	for _, ws := range req.Seeds {
		p, err := prog.Deserialize(h.target, ws.Text)
		if err != nil || ws.Prio <= 0 {
			rejected++
			continue
		}
		incoming = append(incoming, seedpool.SeedState{Prog: p, Prio: ws.Prio, Bonus: ws.Bonus, Op: ws.Op})
	}
	h.rejectedSeeds += rejected
	if len(incoming) > 0 {
		// Commit to memory only after the store accepts the image, so
		// a failed save leaves stats, pull diffs, and disk agreeing
		// (the client retries the whole sync).
		merged := corpusstore.Merge(h.cap, h.states, incoming)
		if err := h.store.Save(merged, h.cover.Count()); err != nil {
			writeError(w, http.StatusInternalServerError, "store save: %v", err)
			return
		}
		h.states = merged
		if err := h.refreshIndex(); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	for _, b := range req.NewBlocks {
		h.cover.Add(b)
	}
	for _, wc := range req.Crashes {
		h.recordCrash(wk, wc)
	}
	// Concurrent unit completions can deliver snapshots out of order
	// (they post outside the campaign's merge lock); keep the stats
	// monotone by ignoring a snapshot older than the recorded one.
	if req.Stats.Execs >= wk.stats.Execs {
		wk.stats = req.Stats
	}
	wk.lastSync = h.now()
	wk.final = wk.final || req.Final
	// Lease lifecycle: a Final sync releases the lease (the campaign
	// is done — the CI fleet check asserts zero active leases at
	// exit); any other successful sync renews it.
	if req.Final {
		wk.leaseState = LeaseReleased
		h.metrics.lease("release")
	} else if wk.leaseState == LeaseActive {
		wk.leaseExpiry = h.now().Add(h.leaseTTL)
		h.metrics.lease("renew")
	}
	seeds, gen := h.diff(req.SinceGen)
	wk.gen = gen
	h.persistLocked()
	h.logf("hub: sync %s: +%d seeds (%d rejected), +%d blocks, %d crash reports -> %d seeds at gen %d",
		req.WorkerID, len(incoming), rejected, len(req.NewBlocks), len(req.Crashes), len(seeds), gen)
	resp := &SyncResponse{
		Version: ProtoVersion, Generation: gen, Seeds: seeds, RejectedSeeds: rejected,
		LeaseTTLMs: h.leaseTTL.Milliseconds(),
	}
	if wantBinary {
		w.Header().Set("Content-Type", BinaryContentType)
		w.WriteHeader(http.StatusOK)
		w.Write(EncodeSyncResponse(resp))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// diff collects the corpus entries admitted after generation since,
// batched in whole generations up to MaxPullBatch seeds, and returns
// the generation the batch reaches (the client's next SinceGen).
// Callers hold h.mu.
//
//syzlint:locked mu
func (h *Hub) diff(since int) ([]WireSeed, int) {
	type cand struct {
		e    corpusstore.Entry
		text string
	}
	var cands []cand
	for _, e := range h.entries {
		// Same selection as corpusstore.Diff: since <= 0 means
		// everything, including Gen-0 entries from pre-generation
		// manifests (a warm start from a legacy store must still
		// serve its corpus to first-time pullers).
		if since > 0 && e.Gen <= since {
			continue
		}
		if text, ok := h.texts[e.File]; ok {
			cands = append(cands, cand{e: e, text: text})
		}
	}
	if len(cands) == 0 {
		return nil, h.gen
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].e.Gen != cands[j].e.Gen {
			return cands[i].e.Gen < cands[j].e.Gen
		}
		return cands[i].text < cands[j].text
	})
	out := make([]WireSeed, 0, len(cands))
	reached := since
	for i := 0; i < len(cands); {
		g := cands[i].e.Gen
		j := i
		for j < len(cands) && cands[j].e.Gen == g {
			j++
		}
		// Take whole generations while the batch has room; always take
		// at least one so the client makes progress.
		if len(out) > 0 && len(out)+(j-i) > MaxPullBatch {
			break
		}
		for ; i < j; i++ {
			c := cands[i]
			out = append(out, WireSeed{Text: c.text, Prio: c.e.Prio, Bonus: c.e.Bonus, Op: c.e.Op})
		}
		reached = g
	}
	if reached == h.gen || len(out) == 0 {
		return out, h.gen
	}
	return out, reached
}

// recordCrash folds one report into the global dedup table. The key
// is the normalized repro text — re-serialized through the hub target
// when it parses, raw otherwise — so the same crash reported by
// different workers (or in cosmetically different formatting)
// collapses into one record. The first reporter keeps attribution.
// Counts arrive cumulative per worker and are differenced against the
// worker's previous report, so a retried sync folds in exactly once.
// Callers hold h.mu.
//
//syzlint:locked mu
func (h *Hub) recordCrash(wk *worker, wc WireCrash) {
	key := wc.Repro
	if p, err := prog.Deserialize(h.target, wc.Repro); err == nil {
		key = p.Serialize()
	}
	delta := wc.Count - wk.crashCounts[key]
	if delta <= 0 {
		return // retry of a committed report, or a stale snapshot
	}
	wk.crashCounts[key] = wc.Count
	h.crashReports++
	rec := h.crashes[key]
	if rec == nil {
		rec = &crashRecord{
			title: wc.Title, repro: key, firstWorker: wk.id,
			workers: map[string]bool{},
		}
		h.crashes[key] = rec
	}
	rec.count += delta
	rec.reports++
	rec.workers[wk.id] = true
}

func (h *Hub) handleStats(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	defer h.mu.Unlock()
	writeJSON(w, http.StatusOK, h.statsLocked())
}

// statsLocked builds the monitoring document. Callers hold h.mu.
func (h *Hub) statsLocked() HubStats {
	h.reapLocked()
	st := HubStats{
		Version:       ProtoVersion,
		Generation:    h.gen,
		Seeds:         len(h.states),
		UnionCover:    h.cover.Count(),
		Crashes:       len(h.crashes),
		CrashReports:  h.crashReports,
		RejectedSeeds: h.rejectedSeeds,
		Parent:        h.parentURL,
	}
	ops := map[string]*OpJSON{}
	var opOrder []string
	ids := make([]string, 0, len(h.workers))
	for id := range h.workers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j]) // w2 before w10
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		wk := h.workers[id]
		wj := WorkerJSON{
			ID: wk.id, Name: wk.name, Fingerprint: wk.fingerprint,
			Final: wk.final, Lease: wk.leaseState, Stats: wk.stats, Sync: wk.sync,
		}
		if !wk.lastSync.IsZero() {
			wj.LastSyncUnix = wk.lastSync.Unix()
		}
		st.Workers = append(st.Workers, wj)
		switch wk.leaseState {
		case LeaseActive:
			st.ActiveLeases++
		case LeaseExpired:
			st.ExpiredLeases++
		case LeaseReleased:
			st.ReleasedLeases++
		}
		// Hub-wide sync load: totals across workers, worst single
		// exchange anywhere.
		st.Sync.Count += wk.sync.Count
		st.Sync.ServiceNsSum += wk.sync.ServiceNsSum
		st.Sync.BytesSum += wk.sync.BytesSum
		st.Sync.JSONBytesSum += wk.sync.JSONBytesSum
		if wk.sync.ServiceNsMax > st.Sync.ServiceNsMax {
			st.Sync.ServiceNsMax = wk.sync.ServiceNsMax
		}
		if wk.sync.BytesMax > st.Sync.BytesMax {
			st.Sync.BytesMax = wk.sync.BytesMax
		}
		st.Execs += wk.stats.Execs
		for _, op := range wk.stats.Ops {
			o := ops[op.Name]
			if o == nil {
				o = &OpJSON{Name: op.Name}
				ops[op.Name] = o
				opOrder = append(opOrder, op.Name)
			}
			o.Picks += op.Picks
			o.NewBlocks += op.NewBlocks
		}
	}
	sort.Strings(opOrder)
	for _, name := range opOrder {
		st.Ops = append(st.Ops, *ops[name])
	}
	if up := h.now().Sub(h.start).Seconds(); up > 0 {
		st.ExecsPerSec = float64(st.Execs) / up
	}
	st.SyncBytesRatio = st.Sync.BytesRatio()
	return st
}

func (h *Hub) handleCrashes(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	defer h.mu.Unlock()
	writeJSON(w, http.StatusOK, h.crashesLocked())
}

// crashesLocked renders the dedup table sorted by title then repro.
// Callers hold h.mu.
func (h *Hub) crashesLocked() []CrashJSON {
	out := make([]CrashJSON, 0, len(h.crashes))
	for _, rec := range h.crashes {
		out = append(out, CrashJSON{
			Title: rec.title, Repro: rec.repro, FirstWorker: rec.firstWorker,
			Count: rec.count, Reports: rec.reports, Workers: len(rec.workers),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Title != out[j].Title {
			return out[i].Title < out[j].Title
		}
		return out[i].Repro < out[j].Repro
	})
	return out
}

// Stats snapshots the monitoring document (the programmatic form of
// GET /v1/stats).
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.statsLocked()
}

// Crashes snapshots the global crash table (GET /v1/crashes).
func (h *Hub) Crashes() []CrashJSON {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.crashesLocked()
}

// UnionCover clones the hub's merged coverage set.
func (h *Hub) UnionCover() *vkernel.CoverSet {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cover.Clone()
}
