package hub

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/vkernel"
)

// Client is the campaign-embedded hub connection; it implements
// fuzz.HubSync. Each Sync diffs the campaign snapshot against what
// the hub has already seen — seeds are pushed once (content-addressed
// dedup), coverage as new-block deltas, crashes as count deltas — and
// imports the merged corpus diff the hub returns. Transient transport
// and server errors are retried with doubling backoff; a hub restart
// is survived by transparent re-registration and a generation reset.
//
// Client is safe for concurrent use; syncs serialize on an internal
// mutex (parallel campaign units share one connection).
type Client struct {
	baseURL     string
	target      *prog.Target
	hc          *http.Client
	attempts    int
	backoff     time.Duration
	name        string
	fingerprint string
	binary      bool

	mu       sync.Mutex
	workerID string            // guarded by mu
	leaseID  string            // guarded by mu
	leaseTTL time.Duration     // guarded by mu
	gen      int               // guarded by mu
	pushed   map[string]bool   // guarded by mu
	lastCov  *vkernel.CoverSet // guarded by mu
	crashes  map[string]int    // guarded by mu

	// HubFingerprint is the hub target's fingerprint as reported at
	// registration (read-only after Dial).
	HubFingerprint string
	// HubSeeds is the hub corpus size at registration.
	HubSeeds int
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the transport (tests, custom timeouts).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithRetry sets the per-request try count and initial backoff
// (doubling between tries; context cancellation interrupts the
// sleep). attempts < 1 means one try.
func WithRetry(attempts int, backoff time.Duration) ClientOption {
	return func(c *Client) { c.attempts = attempts; c.backoff = backoff }
}

// WithProtocol selects the /v1/sync encoding: "binary" (the default;
// compact frame streams with compressed cover deltas) or "json" (the
// PR-5 wire format, interoperable with any hub). Register, heartbeat,
// and monitoring endpoints always speak JSON.
func WithProtocol(proto string) ClientOption {
	return func(c *Client) { c.binary = proto != "json" }
}

// Dial registers a worker with the hub at baseURL and returns the
// connected client. The worker's fingerprint is derived from its
// compiled target; name labels it in the hub's stats.
func Dial(ctx context.Context, baseURL, name string, t *prog.Target, opts ...ClientOption) (*Client, error) {
	c := &Client{
		baseURL:     baseURL,
		target:      t,
		hc:          &http.Client{Timeout: 30 * time.Second},
		attempts:    3,
		backoff:     100 * time.Millisecond,
		name:        name,
		fingerprint: Fingerprint(t),
		binary:      true,
		pushed:      map[string]bool{},
		lastCov:     &vkernel.CoverSet{},
		crashes:     map[string]int{},
	}
	for _, o := range opts {
		o(c)
	}
	resp, err := c.register(ctx)
	if err != nil {
		return nil, err
	}
	c.HubFingerprint = resp.HubFingerprint
	c.HubSeeds = resp.Seeds
	return c, nil
}

// register performs the /v1/register exchange, presenting the current
// lease for resumption when one is held. The returned response tells
// the caller whether the hub resumed the lease (our delta bookkeeping
// is still valid hub-side). It deliberately does not touch the
// exported HubFingerprint/HubSeeds fields: those are documented
// read-only after Dial, and register also runs during transparent
// re-registration inside Sync, where rewriting them would race with
// concurrent readers.
//
//syzlint:locked mu
func (c *Client) register(ctx context.Context) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.do(ctx, "/v1/register", RegisterRequest{
		Version: ProtoVersion, Name: c.name, Fingerprint: c.fingerprint,
		LeaseID: c.leaseID,
	}, &resp)
	if err != nil {
		return RegisterResponse{}, fmt.Errorf("hub register: %w", err)
	}
	c.workerID = resp.WorkerID
	c.leaseID = resp.LeaseID
	c.leaseTTL = time.Duration(resp.LeaseTTLMs) * time.Millisecond
	return resp, nil
}

// LeaseID returns the current lease (empty against a pre-lease hub).
func (c *Client) LeaseID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaseID
}

// Heartbeat renews the worker's lease without a sync payload — for
// gaps between checkpoint boundaries that would outlast the TTL.
func (c *Client) Heartbeat(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var resp HeartbeatResponse
	err := c.do(ctx, "/v1/heartbeat", HeartbeatRequest{
		Version: ProtoVersion, WorkerID: c.workerID, LeaseID: c.leaseID,
	}, &resp)
	if err != nil {
		return fmt.Errorf("hub heartbeat: %w", err)
	}
	c.leaseTTL = time.Duration(resp.LeaseTTLMs) * time.Millisecond
	return nil
}

// WorkerID returns the hub-assigned identity (it can change after a
// transparent re-registration).
func (c *Client) WorkerID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workerID
}

// Generation returns the last store generation pulled.
func (c *Client) Generation() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Sync implements fuzz.HubSync: one push/pull exchange at a campaign
// checkpoint boundary.
func (c *Client) Sync(ctx context.Context, st fuzz.SyncState) ([]seedpool.SeedState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	req := SyncRequest{
		Version:  ProtoVersion,
		WorkerID: c.workerID,
		LeaseID:  c.leaseID,
		SinceGen: c.gen,
		Final:    st.Final,
		Stats: WorkerStats{
			Execs: st.Execs, Cover: st.Cover.Count(), Crashes: len(st.Crashes),
			Ops: opsJSON(st.Ops),
		},
	}
	// Corpus delta: seeds whose content address the hub has not seen
	// from us (either direction), capped per batch.
	sentFiles := make([]string, 0, MaxPushBatch)
	for _, s := range st.Seeds {
		if len(req.Seeds) >= MaxPushBatch {
			break // remainder ships at the next boundary
		}
		text := s.Prog.Serialize()
		file := corpusstore.FileFor(text)
		if c.pushed[file] {
			continue
		}
		req.Seeds = append(req.Seeds, WireSeed{Text: text, Prio: s.Prio, Bonus: s.Bonus, Op: s.Op})
		sentFiles = append(sentFiles, file)
	}
	// Coverage delta: blocks covered since the previous successful
	// sync.
	st.Cover.ForEach(func(b vkernel.BlockID) {
		if !c.lastCov.Has(b) {
			req.NewBlocks = append(req.NewBlocks, b)
		}
	})
	// Crashes: new titles, or titles whose hit count grew, with
	// cumulative counts (the hub differences per worker, so a retry
	// that repeats a committed report adds nothing).
	for _, cr := range st.Crashes {
		if cr.Count > c.crashes[cr.Title] {
			req.Crashes = append(req.Crashes, WireCrash{Title: cr.Title, Repro: cr.Repro, Count: cr.Count})
		}
	}

	resp, err := c.doSync(ctx, &req)
	if err != nil {
		if !isUnknownWorker(err) {
			return nil, err
		}
		// Our registration is gone (hub restart) or our lease lapsed
		// (missed heartbeats during a partition): re-register,
		// presenting the lease for resumption.
		reg, err := c.register(ctx)
		if err != nil {
			return nil, err
		}
		req.WorkerID = c.workerID
		req.LeaseID = c.leaseID
		if !reg.Resumed {
			// The hub holds no state for us. The content-addressed
			// push dedup stays valid — the hub reloaded its corpus
			// from the store — but union coverage and the crash table
			// restarted empty, so those deltas replay from zero:
			// rebuild the request with the full cumulative state.
			c.lastCov = &vkernel.CoverSet{}
			c.crashes = map[string]int{}
			req.SinceGen = 0
			req.NewBlocks = st.Cover.Blocks()
			req.Crashes = nil
			for _, cr := range st.Crashes {
				if cr.Count > 0 {
					req.Crashes = append(req.Crashes, WireCrash{Title: cr.Title, Repro: cr.Repro, Count: cr.Count})
				}
			}
		}
		// A resumed lease keeps all delta bookkeeping: the hub still
		// holds our cover/crash attribution, so the original request
		// is retried as-is.
		if resp, err = c.doSync(ctx, &req); err != nil {
			return nil, err
		}
	}

	// The exchange succeeded: commit the local dedup state.
	for _, f := range sentFiles {
		c.pushed[f] = true
	}
	c.lastCov = st.Cover.Clone()
	for _, cr := range st.Crashes {
		if cr.Count > c.crashes[cr.Title] {
			c.crashes[cr.Title] = cr.Count
		}
	}
	if resp.Generation < req.SinceGen {
		c.gen = 0 // hub generation went backwards (restart): re-pull
	} else {
		c.gen = resp.Generation
	}
	// Import the pulled diff: deserialize against our own (possibly
	// narrower) target, skip what does not parse, and remember the
	// hub already holds these so we never push them back.
	var out []seedpool.SeedState
	for _, ws := range resp.Seeds {
		p, err := prog.Deserialize(c.target, ws.Text)
		if err != nil {
			continue
		}
		c.pushed[corpusstore.FileFor(ws.Text)] = true
		out = append(out, seedpool.SeedState{Prog: p, Prio: ws.Prio, Bonus: ws.Bonus, Op: ws.Op})
	}
	return out, nil
}

// statusError is a non-2xx HTTP reply. retryAfter carries the
// server's Retry-After hint on 429 responses.
type statusError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *statusError) Error() string {
	return fmt.Sprintf("hub: HTTP %d: %s", e.code, e.msg)
}

func isUnknownWorker(err error) bool {
	se, ok := err.(*statusError)
	return ok && se.code == http.StatusNotFound
}

// retryable reports whether a request should be retried: transport
// errors, server-side (5xx) failures, and backpressure (429) are;
// other client-side (4xx) rejections are not.
func retryable(err error) bool {
	if se, ok := err.(*statusError); ok {
		return se.code >= 500 || se.code == http.StatusTooManyRequests
	}
	return true
}

// withRetry runs one exchange with retry/backoff (the retry
// discipline mirrors the llm middleware: doubling sleeps, context
// cancellation is never retried and interrupts the backoff). A 429's
// Retry-After overrides the backoff for that sleep — the hub said
// when it wants us back.
func (c *Client) withRetry(ctx context.Context, fn func() error) error {
	delay := c.backoff
	attempts := c.attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			wait := delay
			if se, ok := err.(*statusError); ok && se.retryAfter > 0 {
				wait = se.retryAfter
			}
			if wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-ctx.Done():
					t.Stop()
					return ctx.Err()
				case <-t.C:
				}
			}
			delay *= 2
		}
		err = fn()
		if err == nil || ctx.Err() != nil || !retryable(err) {
			return err
		}
	}
	return err
}

// do POSTs one JSON request with retry/backoff.
func (c *Client) do(ctx context.Context, path string, in, out any) error {
	return c.withRetry(ctx, func() error { return c.post(ctx, path, in, out) })
}

// doSync runs one /v1/sync exchange in the negotiated protocol with
// retry/backoff.
func (c *Client) doSync(ctx context.Context, req *SyncRequest) (*SyncResponse, error) {
	var resp *SyncResponse
	err := c.withRetry(ctx, func() error {
		r, err := c.postSync(ctx, req)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	return resp, err
}

// readError turns a non-2xx reply into a statusError, capturing the
// Retry-After hint.
func readError(resp *http.Response) error {
	var er ErrorResponse
	json.NewDecoder(resp.Body).Decode(&er)
	se := &statusError{code: resp.StatusCode, msg: er.Error}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			se.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// post performs one JSON POST exchange.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", JSONContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postSync performs one /v1/sync exchange, encoding per the client's
// protocol: the binary frame stream (with Accept negotiating a binary
// response) or plain JSON. Error replies are always JSON.
func (c *Client) postSync(ctx context.Context, sreq *SyncRequest) (*SyncResponse, error) {
	var body []byte
	contentType := JSONContentType
	if c.binary {
		body = EncodeSyncRequest(sreq)
		contentType = BinaryContentType
	} else {
		var err error
		if body, err = json.Marshal(sreq); err != nil {
			return nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/v1/sync", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if c.binary {
		req.Header.Set("Accept", BinaryContentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), BinaryContentType) {
		return DecodeSyncResponse(data)
	}
	out := &SyncResponse{}
	if err := json.Unmarshal(data, out); err != nil {
		return nil, err
	}
	return out, nil
}
