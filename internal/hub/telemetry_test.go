package hub

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/telemetry"
	"kernelgpt/internal/vkernel"
)

// scrapeValue extracts one metric line's integer value from an
// exposition body.
func scrapeValue(t *testing.T, body []byte, line string) int64 {
	t.Helper()
	for _, l := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(l, line+" ") {
			var v int64
			if _, err := fmt.Sscanf(l[len(line)+1:], "%d", &v); err != nil {
				t.Fatalf("parse %q: %v", l, err)
			}
			return v
		}
	}
	t.Fatalf("metric %q not in scrape:\n%s", line, body)
	return 0
}

// TestMetricsReconcileWithStats asserts the two monitoring surfaces
// agree: syzhub_sync_service_ns _sum/_count equal /v1/stats'
// sync.service_ns_sum/count, and the byte counters equal its
// bytes_sum — the CI hub-smoke reconciliation, in-process.
func TestMetricsReconcileWithStats(t *testing.T) {
	tgt := targetFor(t, "dm")
	store, err := corpusstore.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(tgt, store, WithMetrics(telemetry.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()
	ctx := context.Background()
	c, err := Dial(ctx, srv.URL, "alpha", tgt)
	if err != nil {
		t.Fatal(err)
	}
	cover := vkernel.NewCoverSet(16)
	cover.Add(3)
	for i := 0; i < 3; i++ {
		if _, err := c.Sync(ctx, fuzz.SyncState{Cover: cover, Execs: (i + 1) * 100}); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Stats()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()
	if got := scrapeValue(t, body, "syzhub_sync_service_ns_count"); got != int64(st.Sync.Count) {
		t.Errorf("sync service count: metrics %d, stats %d", got, st.Sync.Count)
	}
	if got := scrapeValue(t, body, "syzhub_sync_service_ns_sum"); got != st.Sync.ServiceNsSum {
		t.Errorf("sync service sum: metrics %d, stats %d", got, st.Sync.ServiceNsSum)
	}
	gotBytes := scrapeValue(t, body, `syzhub_sync_bytes_total{proto="binary"}`) +
		scrapeValue(t, body, `syzhub_sync_bytes_total{proto="json"}`)
	if gotBytes != st.Sync.BytesSum {
		t.Errorf("sync bytes: metrics %d, stats %d", gotBytes, st.Sync.BytesSum)
	}
	if got := scrapeValue(t, body, `syzhub_lease_events_total{event="grant"}`); got != 1 {
		t.Errorf("lease grants = %d, want 1", got)
	}
}

// TestFlightDumpOnRequestFailure asserts a failed hub request dumps
// the flight ring, with the failing request as the final event.
func TestFlightDumpOnRequestFailure(t *testing.T) {
	tgt := targetFor(t, "dm")
	store, err := corpusstore.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	h, err := New(tgt, store,
		WithMetrics(telemetry.NewRegistry()),
		WithFlightRecorder(telemetry.NewFlightRecorder(dir, 32, nil)))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()
	// A healthy request first, so the ring has context to dump.
	if _, err := http.Get(srv.URL + "/v1/stats"); err != nil {
		t.Fatal(err)
	}
	// An unparseable sync fails with 400 and must trigger a dump.
	body, _ := json.Marshal(map[string]any{"version": 999})
	resp, err := http.Post(srv.URL+"/v1/sync", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	dumps, err := filepath.Glob(filepath.Join(dir, "flight-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1", len(dumps))
	}
	reason, events, err := telemetry.ReadFlightDump(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if reason != "http-400" {
		t.Errorf("dump reason = %q, want http-400", reason)
	}
	last := events[len(events)-1]
	if last.Span != "http" || !strings.Contains(last.Detail, "/v1/sync -> 400") {
		t.Errorf("final event is not the failing request: %+v", last)
	}
	if events[0].Span != "http" || !strings.Contains(events[0].Detail, "/v1/stats -> 200") {
		t.Errorf("ring lost the preceding activity: %+v", events[0])
	}
}
