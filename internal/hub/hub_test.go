package hub

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/vkernel"
)

var (
	testCorpus = corpus.Build(corpus.TestConfig())
	testKernel = vkernel.New(testCorpus)
)

func targetFor(t *testing.T, names ...string) *prog.Target {
	t.Helper()
	f := &syzlang.File{}
	for _, n := range names {
		h := testCorpus.Handler(n)
		if h == nil {
			t.Fatalf("no handler %q", n)
		}
		f.Merge(corpus.OracleSpec(h))
	}
	tgt, err := prog.Compile(f, testCorpus.Env())
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

// newHub spins up a hub over a fresh store and its HTTP server.
func newHub(t *testing.T, tgt *prog.Target, opts ...Option) (*Hub, *httptest.Server) {
	t.Helper()
	store, err := corpusstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(tgt, store, opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Handler())
	t.Cleanup(srv.Close)
	return h, srv
}

func TestRegisterSyncPullRoundTrip(t *testing.T) {
	tgt := targetFor(t, "dm")
	hub, srv := newHub(t, tgt)
	ctx := context.Background()

	c1, err := Dial(ctx, srv.URL, "alpha", tgt)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(ctx, srv.URL, "beta", tgt)
	if err != nil {
		t.Fatal(err)
	}
	if c1.WorkerID() == c2.WorkerID() {
		t.Fatalf("workers share an id: %s", c1.WorkerID())
	}
	if c1.HubFingerprint != Fingerprint(tgt) {
		t.Fatalf("hub fingerprint %q, want %q", c1.HubFingerprint, Fingerprint(tgt))
	}

	// Worker 1 pushes a small corpus, coverage, and a crash.
	g := prog.NewGen(tgt, 1)
	var seeds []seedpool.SeedState
	cover := vkernel.NewCoverSet(16)
	for _, b := range []vkernel.BlockID{1, 2, 5} {
		cover.Add(b)
	}
	for i := 0; i < 3; i++ {
		seeds = append(seeds, seedpool.SeedState{Prog: g.Generate(3), Prio: i + 1})
	}
	crash := fuzz.CrashReport{Title: "bug-a", Repro: seeds[0].Prog.Serialize(), Count: 2}
	remote, err := c1.Sync(ctx, fuzz.SyncState{
		Seeds: seeds, Cover: cover, Execs: 100,
		Crashes: []fuzz.CrashReport{crash},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != 3 {
		t.Fatalf("pusher pulled %d seeds back, want its own 3 (gen diff includes them)", len(remote))
	}

	// Worker 2 pulls the merged corpus on an empty push.
	remote2, err := c2.Sync(ctx, fuzz.SyncState{Cover: &vkernel.CoverSet{}, Execs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(remote2) != 3 {
		t.Fatalf("worker 2 pulled %d seeds, want 3", len(remote2))
	}
	if c2.Generation() != hub.Stats().Generation {
		t.Fatalf("client gen %d != hub gen %d", c2.Generation(), hub.Stats().Generation)
	}

	// A second pull with nothing new ships nothing.
	remote3, err := c2.Sync(ctx, fuzz.SyncState{Cover: &vkernel.CoverSet{}, Execs: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(remote3) != 0 {
		t.Fatalf("idle pull shipped %d seeds", len(remote3))
	}

	st := hub.Stats()
	if st.Seeds != 3 || st.UnionCover != 3 || st.Execs != 100+60 || st.Crashes != 1 {
		t.Fatalf("hub stats wrong: %+v", st)
	}
	if len(st.Workers) != 2 || st.Workers[0].Name != "alpha" || st.Workers[1].Name != "beta" {
		t.Fatalf("worker roster wrong: %+v", st.Workers)
	}
}

func TestCrashDedupFirstReporterWins(t *testing.T) {
	tgt := targetFor(t, "dm")
	hub, srv := newHub(t, tgt)
	ctx := context.Background()
	c1, _ := Dial(ctx, srv.URL, "first", tgt)
	c2, _ := Dial(ctx, srv.URL, "second", tgt)

	repro := prog.NewGen(tgt, 3).Generate(2).Serialize()
	push := func(c *Client, title string, count int) {
		t.Helper()
		_, err := c.Sync(ctx, fuzz.SyncState{
			Cover:   &vkernel.CoverSet{},
			Crashes: []fuzz.CrashReport{{Title: title, Repro: repro, Count: count}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	push(c1, "bug-x", 3)
	push(c2, "bug-x", 4)

	crashes := hub.Crashes()
	if len(crashes) != 1 {
		t.Fatalf("duplicate normalized repro not deduplicated: %+v", crashes)
	}
	cr := crashes[0]
	if cr.FirstWorker != c1.WorkerID() {
		t.Fatalf("first reporter lost: %q, want %q", cr.FirstWorker, c1.WorkerID())
	}
	if cr.Count != 7 || cr.Workers != 2 || cr.Reports != 2 {
		t.Fatalf("duplicate accounting wrong: %+v", cr)
	}
	// Client-side dedup: re-syncing an unchanged crash pushes nothing.
	push(c1, "bug-x", 3)
	if got := hub.Crashes()[0]; got.Reports != 2 || got.Count != 7 {
		t.Fatalf("unchanged crash re-pushed: %+v", got)
	}
}

func TestHubRestartClientReregisters(t *testing.T) {
	tgt := targetFor(t, "dm")
	dir := t.TempDir()
	store, err := corpusstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := New(tgt, store)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h1.Handler())
	defer srv.Close()
	ctx := context.Background()
	c, err := Dial(ctx, srv.URL, "w", tgt)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.NewGen(tgt, 5)
	cover := vkernel.NewCoverSet(16)
	for _, b := range []vkernel.BlockID{1, 4, 9} {
		cover.Add(b)
	}
	state := fuzz.SyncState{
		Seeds:   []seedpool.SeedState{{Prog: g.Generate(3), Prio: 2}},
		Cover:   cover,
		Execs:   200,
		Crashes: []fuzz.CrashReport{{Title: "bug-r", Repro: g.Generate(2).Serialize(), Count: 3}},
	}
	if _, err := c.Sync(ctx, state); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh hub over the same store loses the worker table
	// but keeps the corpus and its generation lineage.
	store2, err := corpusstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := New(tgt, store2)
	if err != nil {
		t.Fatal(err)
	}
	srv.Config.Handler = h2.Handler()

	// The next sync carries the same cumulative campaign state; the
	// client must notice the restart and re-push the full cover and
	// crash history (the hub's union cover and crash table are
	// in-memory only — without the re-push they would stay empty).
	if _, err := c.Sync(ctx, state); err != nil {
		t.Fatalf("sync across hub restart: %v", err)
	}
	st := h2.Stats()
	if len(st.Workers) != 1 || st.Workers[0].Name != "w" {
		t.Fatalf("client did not re-register with the restarted hub: %+v", st.Workers)
	}
	if st.Seeds != 1 {
		t.Fatalf("restarted hub lost the corpus: %d seeds", st.Seeds)
	}
	if st.UnionCover != 3 {
		t.Fatalf("pre-restart coverage not re-pushed: union %d, want 3", st.UnionCover)
	}
	if st.Crashes != 1 || h2.Crashes()[0].Count != 3 {
		t.Fatalf("pre-restart crashes not re-pushed: %+v", h2.Crashes())
	}
	if c.Generation() != st.Generation {
		t.Fatalf("client gen %d not resynced to restarted hub's %d", c.Generation(), st.Generation)
	}
}

// TestTwoHalfBudgetWorkersMatchLoneWorker is the subsystem's
// acceptance bar: two hub-attached campaigns at budget B/2 each must
// reach at least 95% of a detached campaign's coverage at budget B —
// pooling via the hub recovers what halving the budget loses. The
// workers run sequentially, so the whole exchange is deterministic
// per seed; the run is repeated to prove it. The hub's crash table
// must hold no duplicate normalized repros across the workers.
func TestTwoHalfBudgetWorkersMatchLoneWorker(t *testing.T) {
	tgt := targetFor(t, "dm", "cec", "kvm", "kvm_vm", "kvm_vcpu")
	f := fuzz.New(tgt, testKernel)
	const budget = 8000

	lone := f.Run(fuzz.DefaultConfig(budget, 1))

	runWorkers := func() (int, []int, []CrashJSON) {
		hub, srv := newHub(t, tgt)
		ctx := context.Background()
		var covers []int
		for i, seed := range []int64{2, 3} {
			c, err := Dial(ctx, srv.URL, []string{"w-a", "w-b"}[i], tgt)
			if err != nil {
				t.Fatal(err)
			}
			cfg := fuzz.DefaultConfig(budget/2, seed)
			cfg.Hub = c
			s, err := f.RunContext(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			covers = append(covers, s.CoverCount())
		}
		return hub.Stats().UnionCover, covers, hub.Crashes()
	}

	union, covers, crashes := runWorkers()
	if min := lone.CoverCount() * 95 / 100; union < min {
		t.Fatalf("hub union cover %d < 95%% of lone worker's %d", union, lone.CoverCount())
	}
	for i, c := range covers {
		if union < c {
			t.Fatalf("union %d below worker %d's own cover %d", union, i, c)
		}
	}
	// The corpus actually transfers: the second worker, warm with the
	// first's seeds, must beat its own detached twin (same seed, same
	// budget, no hub).
	detached := f.Run(fuzz.DefaultConfig(budget/2, 3))
	if covers[1] <= detached.CoverCount() {
		t.Fatalf("hub attachment did not help worker b: %d attached vs %d detached",
			covers[1], detached.CoverCount())
	}
	// No duplicate normalized repros across workers: every record is
	// unique by construction of the table; verify the records also
	// don't collide after a fresh normalization pass.
	seen := map[string]bool{}
	for _, cr := range crashes {
		key := cr.Repro
		if p, err := prog.Deserialize(tgt, cr.Repro); err == nil {
			key = p.Serialize()
		}
		if seen[key] {
			t.Fatalf("crash table holds a duplicate normalized repro: %q", cr.Title)
		}
		seen[key] = true
	}
	union2, covers2, _ := runWorkers()
	if union2 != union || covers2[0] != covers[0] || covers2[1] != covers[1] {
		t.Fatalf("hub-attached run not deterministic per seed: %d %v vs %d %v",
			union, covers, union2, covers2)
	}
}

func TestFingerprintStable(t *testing.T) {
	a := Fingerprint(targetFor(t, "dm", "cec"))
	b := Fingerprint(targetFor(t, "cec", "dm"))
	if a != b {
		t.Fatalf("fingerprint depends on declaration order: %s vs %s", a, b)
	}
	if a == Fingerprint(targetFor(t, "dm")) {
		t.Fatal("different surfaces share a fingerprint")
	}
}

// TestHubServesLegacyGenZeroStore: a hub warm-started from a
// pre-generation manifest (entries without gen stamps) must still
// serve that corpus to first-time pullers.
func TestHubServesLegacyGenZeroStore(t *testing.T) {
	tgt := targetFor(t, "dm")
	dir := t.TempDir()
	store, err := corpusstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.NewGen(tgt, 21)
	var seeds []seedpool.SeedState
	for i := 0; i < 3; i++ {
		seeds = append(seeds, seedpool.SeedState{Prog: g.Generate(3), Prio: i + 1})
	}
	if err := store.Save(seeds, 7); err != nil {
		t.Fatal(err)
	}
	// Strip the generation bookkeeping, as a manifest written before
	// this PR would look.
	path := filepath.Join(dir, "manifest.json")
	var m map[string]any
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "generation")
	for _, e := range m["seeds"].([]any) {
		delete(e.(map[string]any), "gen")
	}
	data, _ = json.Marshal(m)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	h, err := New(tgt, store)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()
	c, err := Dial(context.Background(), srv.URL, "w", tgt)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.Sync(context.Background(), fuzz.SyncState{Cover: &vkernel.CoverSet{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != 3 {
		t.Fatalf("first pull from a legacy store shipped %d of 3 seeds", len(remote))
	}
}

// TestCrashReportRetryIdempotent: replaying an identical sync request
// (a client retry after a lost response) must not inflate the crash
// table — counts are cumulative per worker and differenced hub-side.
func TestCrashReportRetryIdempotent(t *testing.T) {
	tgt := targetFor(t, "dm")
	hub, srv := newHub(t, tgt)
	var reg RegisterResponse
	postJSON(t, srv.URL+"/v1/register", RegisterRequest{Version: ProtoVersion, Name: "w", Fingerprint: "fp"}, &reg)
	repro := prog.NewGen(tgt, 31).Generate(2).Serialize()
	req := SyncRequest{
		Version: ProtoVersion, WorkerID: reg.WorkerID,
		Crashes: []WireCrash{{Title: "bug-i", Repro: repro, Count: 5}},
		Stats:   WorkerStats{Execs: 100},
	}
	var resp SyncResponse
	postJSON(t, srv.URL+"/v1/sync", req, &resp)
	postJSON(t, srv.URL+"/v1/sync", req, &resp) // the retry
	crashes := hub.Crashes()
	if len(crashes) != 1 || crashes[0].Count != 5 || crashes[0].Reports != 1 {
		t.Fatalf("retry inflated the crash table: %+v", crashes)
	}
	// A genuinely grown cumulative count folds in the difference.
	req.Crashes[0].Count = 8
	postJSON(t, srv.URL+"/v1/sync", req, &resp)
	if got := hub.Crashes()[0]; got.Count != 8 || got.Reports != 2 {
		t.Fatalf("grown count not differenced: %+v", got)
	}
}

// postJSON is a minimal raw client for protocol-level tests.
func postJSON(t *testing.T, url string, in, out any) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestSyncServiceAggregates checks the per-worker sync cost accounting
// that capacity planning consumes: exchange count, service time under a
// deterministic stepping clock, and payload byte totals.
func TestSyncServiceAggregates(t *testing.T) {
	tgt := targetFor(t, "dm")
	var tick int64
	clock := func() time.Time {
		tick++
		return time.Unix(0, tick*int64(time.Millisecond))
	}
	hub, srv := newHub(t, tgt, withNow(clock))
	ctx := context.Background()
	c, err := Dial(ctx, srv.URL, "w", tgt)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.NewGen(tgt, 41)
	cover := vkernel.NewCoverSet(16)
	cover.Add(2)
	for i := 0; i < 2; i++ {
		st := fuzz.SyncState{
			Seeds: []seedpool.SeedState{{Prog: g.Generate(3), Prio: i + 1}},
			Cover: cover, Execs: 100 * (i + 1),
		}
		if _, err := c.Sync(ctx, st); err != nil {
			t.Fatal(err)
		}
	}
	st := hub.Stats()
	if len(st.Workers) != 1 {
		t.Fatalf("want 1 worker, got %+v", st.Workers)
	}
	agg := st.Workers[0].Sync
	if agg.Count != 2 {
		t.Fatalf("want 2 recorded syncs, got %d", agg.Count)
	}
	// The stepping clock advances 1ms per reading, so every exchange
	// observes a positive, millisecond-quantized service time.
	if agg.ServiceNsSum < 2*int64(time.Millisecond) {
		t.Fatalf("service time not measured: %+v", agg)
	}
	if agg.ServiceNsMax <= 0 || agg.ServiceNsMax > agg.ServiceNsSum {
		t.Fatalf("service max inconsistent: %+v", agg)
	}
	if agg.BytesSum <= 0 || agg.BytesMax <= 0 || agg.BytesMax > agg.BytesSum {
		t.Fatalf("payload bytes not accounted: %+v", agg)
	}
	if agg.MeanServiceNs() <= 0 {
		t.Fatalf("mean service time %v", agg.MeanServiceNs())
	}
	// The hub-wide aggregate mirrors the single worker's.
	if st.Sync != agg {
		t.Fatalf("hub-wide sync agg %+v != worker agg %+v", st.Sync, agg)
	}
}
