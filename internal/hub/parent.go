package hub

import (
	"context"
	"sort"

	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/fuzz/seedpool"
)

// Hierarchical hubs. A leaf hub aggregates its own workers' deltas
// and periodically plays the worker role against a root hub, reusing
// the Client machinery verbatim: the leaf's merged corpus, union
// coverage, and crash table become one upward SyncState, and the
// Client's content-addressed seed dedup, cover-delta, and cumulative
// crash-count differencing apply unchanged. Seeds pulled from the
// root merge into the leaf's store, where leaf workers pick them up
// through the ordinary generation diff — so fan-in at the root scales
// with the number of leaves, not the number of workers.

// parentState snapshots the hub's aggregate state as a campaign-shaped
// SyncState for the upward sync.
func (h *Hub) parentState(final bool) fuzz.SyncState {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := fuzz.SyncState{
		Seeds: append([]seedpool.SeedState(nil), h.states...),
		Cover: h.cover.Clone(),
		Final: final,
	}
	keys := make([]string, 0, len(h.crashes))
	for k := range h.crashes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rec := h.crashes[k]
		st.Crashes = append(st.Crashes, fuzz.CrashReport{
			Title: rec.title, Repro: rec.repro, Count: rec.count,
		})
	}
	ops := map[string]*fuzz.OpStat{}
	var names []string
	for _, wk := range h.workers {
		st.Execs += wk.stats.Execs
		for _, op := range wk.stats.Ops {
			o := ops[op.Name]
			if o == nil {
				o = &fuzz.OpStat{Name: op.Name}
				ops[op.Name] = o
				names = append(names, op.Name)
			}
			o.Picks += op.Picks
			o.NewBlocks += op.NewBlocks
		}
	}
	sort.Strings(names)
	for _, name := range names {
		st.Ops = append(st.Ops, *ops[name])
	}
	return st
}

// SyncParent runs one upward exchange against a parent hub through
// client (a Client dialed at the parent's URL): push this hub's
// aggregate deltas, merge the pulled corpus diff back into the local
// store. It returns the number of seeds imported from the parent.
// final releases the leaf's lease on the parent (shutdown). The hub
// mutex is not held across the network exchange, so local worker
// syncs proceed while the parent round-trips.
func (h *Hub) SyncParent(ctx context.Context, client *Client, final bool) (int, error) {
	st := h.parentState(final)
	imported, err := client.Sync(ctx, st)
	if err != nil {
		return 0, err
	}
	if len(imported) == 0 {
		return 0, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	merged := corpusstore.Merge(h.cap, h.states, imported)
	if err := h.store.Save(merged, h.cover.Count()); err != nil {
		return 0, err
	}
	h.states = merged
	if err := h.refreshIndex(); err != nil {
		return 0, err
	}
	h.persistLocked()
	h.logf("hub: parent sync imported %d seeds -> %d seeds at gen %d", len(imported), len(h.states), h.gen)
	return len(imported), nil
}
