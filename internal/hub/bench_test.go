package hub

import (
	"fmt"
	"testing"

	"kernelgpt/internal/vkernel"
)

// benchSyncRequest is a fleet-representative exchange: a checkpoint's
// worth of fresh seeds, a clustered cover delta, and one crash.
func benchSyncRequest() *SyncRequest {
	req := &SyncRequest{
		Version:  ProtoVersion,
		WorkerID: "w17",
		LeaseID:  "L17.abcdef",
		SinceGen: 9,
		Stats: WorkerStats{
			Execs: 120000, Cover: 4800, Crashes: 2,
			Ops: []OpJSON{
				{Name: "insert", Picks: 400, NewBlocks: 90},
				{Name: "mutate-arg", Picks: 700, NewBlocks: 40},
				{Name: "splice", Picks: 300, NewBlocks: 25},
			},
		},
	}
	for i := 0; i < 32; i++ {
		req.Seeds = append(req.Seeds, WireSeed{
			Text: fmt.Sprintf("r0 = open(dev%d)\nioctl(r0, CMD%d, %d)\nclose(r0)\n", i, i%7, i*13),
			Prio: 100 + i, Bonus: i % 3, Op: "insert",
		})
	}
	for b := vkernel.BlockID(6000); b < 6400; b++ {
		req.NewBlocks = append(req.NewBlocks, b)
	}
	for b := vkernel.BlockID(7000); b < 12000; b += 17 {
		req.NewBlocks = append(req.NewBlocks, b)
	}
	req.Crashes = []WireCrash{
		{Title: "KASAN: slab-out-of-bounds in cec_transmit", Repro: "r0 = open(cec)\n", Count: 4},
	}
	return req
}

// BenchmarkHubSyncRoundtrip measures the codec hot path: one sync
// request encoded and decoded through the binary wire format.
func BenchmarkHubSyncRoundtrip(b *testing.B) {
	req := benchSyncRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := EncodeSyncRequest(req)
		if _, err := DecodeSyncRequest(enc); err != nil {
			b.Fatal(err)
		}
	}
}
