package hub

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/vkernel"
)

// fakeClock is a manually advanced hub clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func coverOf(blocks ...vkernel.BlockID) *vkernel.CoverSet {
	s := &vkernel.CoverSet{}
	for _, b := range blocks {
		s.Add(b)
	}
	return s
}

// TestLeaseExpiryUnderPartition: a worker partitioned past its TTL
// loses the lease, its in-flight sync is rejected with a re-register
// hint, and the client recovers transparently by resuming the lease —
// same identity, no replay, no double-counted crashes.
func TestLeaseExpiryUnderPartition(t *testing.T) {
	tgt := targetFor(t, "dm")
	clock := &fakeClock{t: time.Unix(1000, 0)}
	hub, srv := newHub(t, tgt, withNow(clock.Now), WithLeaseTTL(time.Second))
	ctx := context.Background()
	c, err := Dial(ctx, srv.URL, "w", tgt)
	if err != nil {
		t.Fatal(err)
	}
	id0, lease0 := c.WorkerID(), c.LeaseID()
	if lease0 == "" {
		t.Fatal("registration granted no lease")
	}
	repro := prog.NewGen(tgt, 11).Generate(2).Serialize()
	if _, err := c.Sync(ctx, fuzz.SyncState{
		Cover: coverOf(1, 4, 9), Execs: 100,
		Crashes: []fuzz.CrashReport{{Title: "bug-p", Repro: repro, Count: 1}},
	}); err != nil {
		t.Fatal(err)
	}

	// Partition: the worker misses every heartbeat for several TTLs.
	clock.Advance(5 * time.Second)
	st := hub.Stats()
	if st.ActiveLeases != 0 || st.ExpiredLeases != 1 {
		t.Fatalf("lease not reaped: active %d expired %d", st.ActiveLeases, st.ExpiredLeases)
	}

	// The worker returns with grown cumulative state. The sync is
	// rejected (404 + hint), the client re-registers presenting its
	// lease, the hub resumes it, and the retry carries only deltas.
	if _, err := c.Sync(ctx, fuzz.SyncState{
		Cover: coverOf(1, 4, 9, 16), Execs: 200,
		Crashes: []fuzz.CrashReport{{Title: "bug-p", Repro: repro, Count: 2}},
	}); err != nil {
		t.Fatalf("sync across lease expiry: %v", err)
	}
	if c.WorkerID() != id0 || c.LeaseID() != lease0 {
		t.Fatalf("resume changed identity: %s/%s -> %s/%s", id0, lease0, c.WorkerID(), c.LeaseID())
	}
	st = hub.Stats()
	if len(st.Workers) != 1 {
		t.Fatalf("resume created a second worker: %+v", st.Workers)
	}
	if st.ActiveLeases != 1 || st.ExpiredLeases != 0 {
		t.Fatalf("lease not revived: active %d expired %d", st.ActiveLeases, st.ExpiredLeases)
	}
	if st.UnionCover != 4 {
		t.Fatalf("union cover %d, want 4", st.UnionCover)
	}
	// The resumed lease kept crash attribution: cumulative count 2 was
	// differenced against the retained 1, not replayed in full.
	if got := hub.Crashes(); len(got) != 1 || got[0].Count != 2 {
		t.Fatalf("crash count double-counted across resume: %+v", got)
	}

	// A Final sync releases the lease.
	if _, err := c.Sync(ctx, fuzz.SyncState{Cover: coverOf(1, 4, 9, 16), Execs: 300, Final: true}); err != nil {
		t.Fatal(err)
	}
	st = hub.Stats()
	if st.ActiveLeases != 0 || st.ReleasedLeases != 1 {
		t.Fatalf("final sync did not release the lease: %+v", st)
	}
}

// TestHeartbeatRenewsLease: heartbeats keep a lease alive across gaps
// longer than the TTL without a sync payload.
func TestHeartbeatRenewsLease(t *testing.T) {
	tgt := targetFor(t, "dm")
	clock := &fakeClock{t: time.Unix(2000, 0)}
	hub, srv := newHub(t, tgt, withNow(clock.Now), WithLeaseTTL(10*time.Second))
	ctx := context.Background()
	c, err := Dial(ctx, srv.URL, "w", tgt)
	if err != nil {
		t.Fatal(err)
	}
	id0 := c.WorkerID()
	clock.Advance(8 * time.Second)
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Advance(8 * time.Second)
	// 16s since registration — past the TTL, but within it since the
	// heartbeat. The sync must be served on the original lease.
	if _, err := c.Sync(ctx, fuzz.SyncState{Cover: coverOf(2)}); err != nil {
		t.Fatalf("sync after heartbeat renewal: %v", err)
	}
	st := hub.Stats()
	if len(st.Workers) != 1 || st.Workers[0].ID != id0 || st.ActiveLeases != 1 {
		t.Fatalf("heartbeat did not keep the lease: %+v", st.Workers)
	}
	// Without further renewal the lease lapses.
	clock.Advance(11 * time.Second)
	if err := c.Heartbeat(ctx); err == nil {
		t.Fatal("heartbeat on an expired lease succeeded")
	}
	if st := hub.Stats(); st.ExpiredLeases != 1 {
		t.Fatalf("expired lease not counted: %+v", st)
	}
}

// postForStatus posts JSON and returns the HTTP status and the
// Retry-After header (protocol-level backpressure checks).
func postForStatus(t *testing.T, url string, in any) (int, string) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, JSONContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

// TestSyncBackpressure: a hub at its in-flight bound sheds syncs with
// 429 + Retry-After, and the per-worker rate limit rejects arrivals
// faster than the configured interval (Final syncs exempt).
func TestSyncBackpressure(t *testing.T) {
	tgt := targetFor(t, "dm")
	clock := &fakeClock{t: time.Unix(3000, 0)}
	hub, srv := newHub(t, tgt, withNow(clock.Now),
		WithMaxInflight(2), WithMinSyncInterval(10*time.Second))
	var reg RegisterResponse
	postJSON(t, srv.URL+"/v1/register", RegisterRequest{Version: ProtoVersion, Name: "w", Fingerprint: "fp"}, &reg)
	req := SyncRequest{Version: ProtoVersion, WorkerID: reg.WorkerID, LeaseID: reg.LeaseID}

	// Occupy both in-flight slots; the next sync is shed before it
	// queues.
	hub.inflight.Add(2)
	if code, ra := postForStatus(t, srv.URL+"/v1/sync", req); code != http.StatusTooManyRequests || ra == "" {
		t.Fatalf("full hub answered %d (Retry-After %q), want 429 with hint", code, ra)
	}
	hub.inflight.Add(-2)

	var resp SyncResponse
	postJSON(t, srv.URL+"/v1/sync", req, &resp)
	// Too soon: rate-limited with a Retry-After hint.
	clock.Advance(3 * time.Second)
	if code, ra := postForStatus(t, srv.URL+"/v1/sync", req); code != http.StatusTooManyRequests || ra == "" {
		t.Fatalf("rapid re-sync answered %d (Retry-After %q), want 429 with hint", code, ra)
	}
	// A Final sync is never rate-limited — campaigns must be able to
	// deliver their last exchange.
	final := req
	final.Final = true
	if code, _ := postForStatus(t, srv.URL+"/v1/sync", final); code != http.StatusOK {
		t.Fatalf("final sync rate-limited: %d", code)
	}
	if st := hub.Stats(); st.Sync.Count != 2 {
		t.Fatalf("shed syncs leaked into the aggregates: %+v", st.Sync)
	}
}

// TestClientHonorsRetryAfter: the client's retry loop absorbs 429 by
// sleeping the server's Retry-After before retrying.
func TestClientHonorsRetryAfter(t *testing.T) {
	tgt := targetFor(t, "dm")
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/register" {
			writeJSON(w, http.StatusOK, RegisterResponse{Version: ProtoVersion, WorkerID: "w1", LeaseID: "L1"})
			return
		}
		hits++
		if hits == 1 {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "busy")
			return
		}
		writeJSON(w, http.StatusOK, SyncResponse{Version: ProtoVersion})
	}))
	defer srv.Close()
	c, err := Dial(context.Background(), srv.URL, "w", tgt, WithProtocol("json"))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Sync(context.Background(), fuzz.SyncState{Cover: &vkernel.CoverSet{}}); err != nil {
		t.Fatalf("sync through backpressure: %v", err)
	}
	if hits != 2 {
		t.Fatalf("server saw %d sync attempts, want 2", hits)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("client retried after %v, ignoring Retry-After: 1", elapsed)
	}
}

// TestHubRestartWithStateSidecar: with the state sidecar, a restarted
// hub restores union cover, the crash table, and worker leases — a
// surviving client keeps syncing deltas with no re-registration and
// no replay, and nothing double-counts.
func TestHubRestartWithStateSidecar(t *testing.T) {
	tgt := targetFor(t, "dm")
	dir := t.TempDir()
	statePath := filepath.Join(dir, "hubstate.json")
	store, err := corpusstore.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := New(tgt, store, WithStatePath(statePath))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h1.Handler())
	defer srv.Close()
	ctx := context.Background()
	c, err := Dial(ctx, srv.URL, "w", tgt)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.NewGen(tgt, 5)
	repro := g.Generate(2).Serialize()
	if _, err := c.Sync(ctx, fuzz.SyncState{
		Seeds:   []seedpool.SeedState{{Prog: g.Generate(3), Prio: 2}},
		Cover:   coverOf(1, 4, 9),
		Execs:   200,
		Crashes: []fuzz.CrashReport{{Title: "bug-r", Repro: repro, Count: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	id0 := c.WorkerID()

	// Restart over the same store and sidecar.
	store2, err := corpusstore.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := New(tgt, store2, WithStatePath(statePath))
	if err != nil {
		t.Fatal(err)
	}
	srv.Config.Handler = h2.Handler()

	// The next sync ships only what is new. The restored hub accepts
	// the existing lease — no 404, no re-registration, no full replay.
	if _, err := c.Sync(ctx, fuzz.SyncState{
		Cover:   coverOf(1, 4, 9, 16),
		Execs:   300,
		Crashes: []fuzz.CrashReport{{Title: "bug-r", Repro: repro, Count: 4}},
	}); err != nil {
		t.Fatalf("sync across sidecar restart: %v", err)
	}
	if c.WorkerID() != id0 {
		t.Fatalf("client re-registered despite restored lease: %s -> %s", id0, c.WorkerID())
	}
	st := h2.Stats()
	if len(st.Workers) != 1 || st.Workers[0].ID != id0 {
		t.Fatalf("restart lost or duplicated the worker: %+v", st.Workers)
	}
	if st.UnionCover != 4 {
		t.Fatalf("restored union cover wrong: %d, want 4 (3 restored + 1 delta)", st.UnionCover)
	}
	// Cumulative count 4 differenced against the restored 3: +1, not
	// +4 — the restart did not double-count.
	if got := h2.Crashes(); len(got) != 1 || got[0].Count != 4 {
		t.Fatalf("crash table double-counted across restart: %+v", got)
	}
	if st.Seeds != 1 || st.Generation == 0 {
		t.Fatalf("store lineage broken: %d seeds at gen %d", st.Seeds, st.Generation)
	}
}

// TestHierarchicalHub: a leaf hub aggregates its workers' state
// upward to a root with the ordinary client machinery, pulls the
// root's corpus down into its own store, and releases its lease on
// final sync.
func TestHierarchicalHub(t *testing.T) {
	tgt := targetFor(t, "dm")
	root, rootSrv := newHub(t, tgt)
	leafStore, err := corpusstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := New(tgt, leafStore, WithParent(rootSrv.URL))
	if err != nil {
		t.Fatal(err)
	}
	leafSrv := httptest.NewServer(leaf.Handler())
	defer leafSrv.Close()
	ctx := context.Background()

	// Two workers feed the leaf.
	g := prog.NewGen(tgt, 9)
	repro := g.Generate(2).Serialize()
	c1, err := Dial(ctx, leafSrv.URL, "w-a", tgt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Sync(ctx, fuzz.SyncState{
		Seeds:   []seedpool.SeedState{{Prog: g.Generate(3), Prio: 3}},
		Cover:   coverOf(1, 2),
		Execs:   50,
		Crashes: []fuzz.CrashReport{{Title: "bug-h", Repro: repro, Count: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(ctx, leafSrv.URL, "w-b", tgt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Sync(ctx, fuzz.SyncState{
		Seeds: []seedpool.SeedState{{Prog: g.Generate(4), Prio: 2}},
		Cover: coverOf(2, 3),
		Execs: 60,
	}); err != nil {
		t.Fatal(err)
	}

	// Leaf → root: the aggregate flows up through one client.
	pc, err := Dial(ctx, rootSrv.URL, "leaf-1", tgt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leaf.SyncParent(ctx, pc, false); err != nil {
		t.Fatal(err)
	}
	rst := root.Stats()
	if rst.UnionCover != 3 {
		t.Fatalf("root union cover %d, want 3", rst.UnionCover)
	}
	if rst.Seeds != leaf.Stats().Seeds {
		t.Fatalf("root has %d seeds, leaf %d", rst.Seeds, leaf.Stats().Seeds)
	}
	if got := root.Crashes(); len(got) != 1 || got[0].Count != 2 {
		t.Fatalf("crash did not aggregate upward: %+v", got)
	}
	if leaf.Stats().Parent != rootSrv.URL {
		t.Fatalf("leaf stats parent %q, want %q", leaf.Stats().Parent, rootSrv.URL)
	}

	// Root → leaf: a seed from a direct root worker flows down on the
	// next parent sync, then out to leaf workers through the ordinary
	// generation diff.
	c3, err := Dial(ctx, rootSrv.URL, "w-c", tgt)
	if err != nil {
		t.Fatal(err)
	}
	downProg := g.Generate(5)
	if _, err := c3.Sync(ctx, fuzz.SyncState{
		Seeds: []seedpool.SeedState{{Prog: downProg, Prio: 4}},
		Cover: coverOf(7),
	}); err != nil {
		t.Fatal(err)
	}
	imported, err := leaf.SyncParent(ctx, pc, false)
	if err != nil {
		t.Fatal(err)
	}
	if imported < 1 {
		t.Fatalf("parent pull imported %d seeds, want >= 1", imported)
	}
	out, err := c1.Sync(ctx, fuzz.SyncState{Cover: coverOf(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	want := downProg.Serialize()
	found := false
	for _, s := range out {
		if s.Prog.Serialize() == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("root seed did not reach the leaf worker: pulled %d seeds", len(out))
	}

	// Re-syncing upward is idempotent (client-side deltas).
	if _, err := leaf.SyncParent(ctx, pc, false); err != nil {
		t.Fatal(err)
	}
	if got := root.Crashes(); got[0].Count != 2 {
		t.Fatalf("upward re-sync double-counted: %+v", got)
	}

	// Shutdown: the final parent sync releases the leaf's lease.
	if _, err := leaf.SyncParent(ctx, pc, true); err != nil {
		t.Fatal(err)
	}
	for _, wk := range root.Stats().Workers {
		if wk.Name == "leaf-1" && wk.Lease != LeaseReleased {
			t.Fatalf("leaf lease not released at shutdown: %+v", wk)
		}
	}
}
