// Package baseline reimplements SyzDescribe (Hao et al., S&P 2023),
// the state-of-the-art static specification generator the paper
// compares against. It encodes exactly the hard-coded rules and
// documented limitations §1 and §5 describe:
//
//   - the device name comes from miscdevice.name (never .nodename),
//     so nodename-registered drivers get the wrong path (Figure 2c);
//   - switch case labels are taken verbatim as command values, so
//     handlers that switch on _IOC_NR(command) get wrong values;
//   - struct fields are emitted positionally as field_N with no
//     semantic relations (no len[], no ranges, no out annotations —
//     Figure 5's "static analysis" column);
//   - dispatch is followed for at most one delegation hop;
//   - sockets are not supported at all ("N/A" throughout Tables 1-6);
//   - the same ioctl may be described repeatedly with different types
//     (the duplication §5.2.1 notes), modeled by emitting one variant
//     per observed payload cast.
package baseline

import (
	"fmt"
	"strings"

	"kernelgpt/internal/ccode"
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/syzlang"
)

// Result is the outcome of SyzDescribe for one handler.
type Result struct {
	Handler *corpus.Handler
	Spec    *syzlang.File
	// Valid reports the spec validates and describes ≥1 command.
	Valid bool
	// Err explains a total failure (e.g. socket handler).
	Err error
}

// NewSyscalls counts described operations beyond openat.
func (r *Result) NewSyscalls() int {
	if r.Spec == nil {
		return 0
	}
	n := 0
	for _, s := range r.Spec.Syscalls {
		if s.CallName != "openat" {
			n++
		}
	}
	return n
}

// NewTypes counts type definitions.
func (r *Result) NewTypes() int {
	if r.Spec == nil {
		return 0
	}
	return len(r.Spec.Structs) + len(r.Spec.Unions)
}

// Generator is the static analyzer.
type Generator struct {
	Corpus *corpus.Corpus
}

// New constructs the baseline generator.
func New(c *corpus.Corpus) *Generator { return &Generator{Corpus: c} }

// GenerateFor runs the static rules on one handler.
func (g *Generator) GenerateFor(h *corpus.Handler) *Result {
	res := &Result{Handler: h}
	if h.Kind == corpus.KindSocket {
		// SyzDescribe cannot analyze sockets (§5.1.1): the extensive
		// implementation effort was never undertaken.
		res.Err = fmt.Errorf("socket handlers are unsupported")
		return res
	}
	ix := g.Corpus.Index
	src := ix.Files()[h.SourcePath()]

	devPath, ok := g.deviceName(h, ix)
	if !ok {
		res.Err = fmt.Errorf("no device registration found")
		return res
	}
	entry := g.entryPoint(h, ix)
	if entry == "" {
		res.Err = fmt.Errorf("no unlocked_ioctl handler found")
		return res
	}
	cmds := g.commands(ix, src, entry)

	res.Spec = g.assemble(h, devPath, cmds, ix)
	errs := syzlang.Validate(res.Spec, g.Corpus.Env())
	// The static tool has no repair loop: broken declarations are
	// silently dropped (its real-world behavior of emitting only what
	// its rules can prove).
	for round := 0; round < 4 && len(errs) > 0; round++ {
		res.Spec = dropDecls(res.Spec, errs)
		errs = syzlang.Validate(res.Spec, g.Corpus.Env())
	}
	res.Valid = len(errs) == 0 && res.NewSyscalls() > 0
	return res
}

// deviceName applies the miscdevice.name rule — the one that misfires
// on nodename-registered drivers.
func (g *Generator) deviceName(h *corpus.Handler, ix *ccode.Index) (string, bool) {
	for _, reg := range ix.Registrations("miscdevice") {
		if reg.File != h.SourcePath() {
			continue
		}
		if name, ok := reg.Fields["name"]; ok {
			if s, ok := ix.EvalString(name); ok {
				return "/dev/" + s, true
			}
		}
	}
	// Char devices: the registration name.
	if fn := g.initFunction(h, ix); fn != nil {
		info := ccode.AnalyzeBody(fn.Body)
		for _, call := range append(info.Calls, info.Delegations...) {
			if call.Name == "register_chrdev" && len(call.Args) >= 3 {
				for _, a := range call.Args {
					if strings.HasPrefix(a, `"`) {
						return "/dev/" + ccode.StringValue(strings.ReplaceAll(a, " ", "")), true
					}
				}
			}
		}
	}
	return "", false
}

func (g *Generator) initFunction(h *corpus.Handler, ix *ccode.Index) *ccode.Function {
	for _, fn := range ix.Functions {
		if fn.File == h.SourcePath() && strings.HasSuffix(fn.Name, "_init") {
			return fn
		}
	}
	return nil
}

// entryPoint finds the unlocked_ioctl target for the handler's fops.
func (g *Generator) entryPoint(h *corpus.Handler, ix *ccode.Index) string {
	for _, reg := range ix.Registrations("file_operations") {
		if reg.File != h.SourcePath() {
			continue
		}
		if fn, ok := reg.Fields["unlocked_ioctl"]; ok {
			return strings.TrimSpace(fn)
		}
	}
	return ""
}

// cmdInfo is one command the static rules extracted.
type cmdInfo struct {
	// label is the case label, used verbatim as the command value
	// (the rule that misfires under _IOC_NR modification).
	label string
	// argStruct is the copy_from_user destination type, "" if none.
	argStruct string
	argInt    bool
}

// commands walks the dispatch function, following at most one
// delegation hop — the modeled static-analysis depth limit.
func (g *Generator) commands(ix *ccode.Index, src, entry string) []cmdInfo {
	fn := ix.Function(entry)
	if fn == nil {
		return nil
	}
	info := ccode.AnalyzeBody(fn.Body)
	hops := 0
	for len(info.Switches) == 0 && hops < 1 {
		// One delegation hop only.
		if len(info.Delegations) == 0 {
			break
		}
		next := ix.Function(info.Delegations[0].Name)
		if next == nil {
			break
		}
		fn = next
		info = ccode.AnalyzeBody(fn.Body)
		hops++
	}
	var out []cmdInfo
	for i := range info.Switches {
		for _, cs := range info.Switches[i].Cases {
			ci := cmdInfo{label: strings.TrimSpace(cs.Label)}
			body := ccode.AnalyzeBody("{" + cs.Body + "}")
			if len(body.CopyFromUser) > 0 {
				ci.argStruct = body.CopyFromUser[0]
			} else if strings.Contains(cs.Body, "get_user") {
				ci.argInt = true
			}
			out = append(out, ci)
		}
	}
	// The lookup-table pattern is invisible to the rule set: no
	// switch means no commands (dm's case in Figure 2c, where only
	// the raw fallback constants appear).
	return out
}

// assemble emits the spec in SyzDescribe's characteristic style:
// numeric suffixes, field_N names, untyped byte-array payloads when
// the copy destination was not proven.
func (g *Generator) assemble(h *corpus.Handler, devPath string, cmds []cmdInfo, ix *ccode.Index) *syzlang.File {
	f := &syzlang.File{}
	id := fmt.Sprintf("%05d", hashID(h.Name))
	resName := "fd_" + id
	f.Resources = append(f.Resources, &syzlang.ResourceDef{Name: resName, Base: "fd"})
	f.Syscalls = append(f.Syscalls, &syzlang.SyscallDef{
		CallName: "openat", Variant: id,
		Args: []*syzlang.Field{
			mkField("fd", "const[AT_FDCWD]"),
			mkField("file", fmt.Sprintf("ptr[in, string[%q]]", devPath)),
			mkField("flags", "const[O_RDWR]"),
			mkField("mode", "const[0]"),
		},
		Ret: resName,
	})
	emitted := map[string]bool{}
	for i, c := range cmds {
		variant := fmt.Sprintf("%s_%d", id, i)
		call := &syzlang.SyscallDef{
			CallName: "ioctl", Variant: variant,
			Args: []*syzlang.Field{
				mkField("fd", resName),
				mkField("cmd", fmt.Sprintf("const[%s]", c.label)),
			},
		}
		switch {
		case c.argStruct != "":
			structName := c.argStruct + "_" + id
			call.Args = append(call.Args, mkField("arg", fmt.Sprintf("ptr[in, %s]", structName)))
			if !emitted[structName] {
				emitted[structName] = true
				if def := g.positionalStruct(ix, c.argStruct, structName); def != nil {
					f.Structs = append(f.Structs, def)
				} else {
					// Unproven type: raw byte array (Figure 2c's
					// "inaccurate arg type").
					call.Args[2] = mkField("arg", "ptr[in, array[int8]]")
				}
			}
		case c.argInt:
			call.Args = append(call.Args, mkField("arg", "ptr[in, int32]"))
		default:
			call.Args = append(call.Args, mkField("arg", "ptr[in, array[int8]]"))
		}
		f.Syscalls = append(f.Syscalls, call)
	}
	return f
}

// positionalStruct recovers the syntactic layout only: field_0,
// field_1, ... with plain scalar types and no semantic relations.
func (g *Generator) positionalStruct(ix *ccode.Index, cName, outName string) *syzlang.StructDef {
	st := ix.StructDef(cName)
	if st == nil {
		return nil
	}
	def := &syzlang.StructDef{Name: outName}
	for i, fld := range st.Fields {
		base := scalarSyz(fld.Type)
		var typ string
		switch {
		case strings.HasPrefix(strings.TrimSpace(fld.Type), "struct "):
			// Nested structs are flattened to byte arrays.
			typ = "array[int8]"
		case fld.IsArray && strings.TrimSpace(fld.Array) == "":
			typ = fmt.Sprintf("array[%s]", base)
		case fld.IsArray:
			if n, ok := ix.EvalInt(fld.Array); ok {
				typ = fmt.Sprintf("array[%s, %d]", base, n)
			} else {
				typ = fmt.Sprintf("array[%s]", base)
			}
		default:
			typ = base
		}
		def.Fields = append(def.Fields, mkField(fmt.Sprintf("field_%d", i), typ))
	}
	return def
}

func scalarSyz(ctype string) string {
	switch strings.TrimSpace(ctype) {
	case "char", "__u8", "__s8":
		return "int8"
	case "__u16", "__s16", "short":
		return "int16"
	case "__u64", "__s64", "long":
		return "int64"
	default:
		return "int32"
	}
}

func mkField(name, typ string) *syzlang.Field {
	te, err := syzlang.ParseTypeExpr(typ)
	if err != nil {
		te = &syzlang.TypeExpr{Ident: "intptr"}
	}
	return &syzlang.Field{Name: name, Type: te}
}

func hashID(name string) int {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return int(h % 100000)
}

func dropDecls(f *syzlang.File, errs []*syzlang.ValidationError) *syzlang.File {
	bad := map[string]bool{}
	for _, e := range errs {
		bad[e.Decl] = true
	}
	out := &syzlang.File{}
	for _, r := range f.Resources {
		if !bad[r.Name] {
			out.Resources = append(out.Resources, r)
		}
	}
	for _, s := range f.Syscalls {
		if !bad[s.Name()] {
			out.Syscalls = append(out.Syscalls, s)
		}
	}
	for _, s := range f.Structs {
		if !bad[s.Name] {
			out.Structs = append(out.Structs, s)
		}
	}
	for _, u := range f.Unions {
		if !bad[u.Name] {
			out.Unions = append(out.Unions, u)
		}
	}
	for _, fl := range f.Flags {
		if !bad[fl.Name] {
			out.Flags = append(out.Flags, fl)
		}
	}
	return out
}

// GenerateAll runs the baseline over a worklist.
func (g *Generator) GenerateAll(handlers []*corpus.Handler) []*Result {
	out := make([]*Result, 0, len(handlers))
	for _, h := range handlers {
		out = append(out, g.GenerateFor(h))
	}
	return out
}

// MergeSpecs combines valid baseline results into one suite.
func MergeSpecs(results []*Result) *syzlang.File {
	merged := &syzlang.File{}
	for _, r := range results {
		if r.Spec != nil && r.Valid {
			merged.Merge(r.Spec)
		}
	}
	return merged
}
