package baseline

import (
	"strings"
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/syzlang"
)

var testCorpus = corpus.Build(corpus.TestConfig())

func TestSocketsUnsupported(t *testing.T) {
	g := New(testCorpus)
	res := g.GenerateFor(testCorpus.Handler("rds"))
	if res.Err == nil || res.Valid {
		t.Fatal("SyzDescribe must refuse socket handlers")
	}
}

func TestDMWrongDeviceName(t *testing.T) {
	// The paper's Figure 2c: SyzDescribe uses .name, not .nodename,
	// and cannot see through the lookup-table dispatch.
	g := New(testCorpus)
	res := g.GenerateFor(testCorpus.Handler("dm"))
	if res.Spec == nil {
		t.Fatal("nil spec")
	}
	text := syzlang.Format(res.Spec)
	if !strings.Contains(text, "/dev/device-mapper") {
		t.Fatalf("expected the wrong .name-derived path:\n%s", text)
	}
	if strings.Contains(text, "/dev/mapper/control") {
		t.Fatalf("baseline must not discover the nodename path:\n%s", text)
	}
	// Lookup table dispatch is invisible: no ioctl commands found.
	if res.NewSyscalls() != 0 {
		t.Fatalf("baseline should find no dm commands, got %d", res.NewSyscalls())
	}
}

func TestIOCNRHandlerGetsRawLabels(t *testing.T) {
	// controlC0 switches on _IOC_NR(command): the baseline's verbatim
	// case labels are the *_CMD nr macros, not the full values.
	g := New(testCorpus)
	res := g.GenerateFor(testCorpus.Handler("controlC0"))
	if res.Spec == nil || res.NewSyscalls() == 0 {
		t.Fatalf("expected commands for controlC0: %+v", res.Err)
	}
	text := syzlang.Format(res.Spec)
	if !strings.Contains(text, "_CMD]") {
		t.Fatalf("expected raw nr-macro command values:\n%s", text)
	}
}

func TestQuirkFreeDriverWorks(t *testing.T) {
	// On a conventional driver the rules work: right device name,
	// right command values.
	g := New(testCorpus)
	h := testCorpus.Handler("loop0")
	res := g.GenerateFor(h)
	if !res.Valid {
		t.Fatalf("baseline failed on quirk-free driver: %v", res.Err)
	}
	text := syzlang.Format(res.Spec)
	if !strings.Contains(text, h.DevPath) {
		t.Fatalf("wrong device path:\n%s", text)
	}
}

func TestPositionalFieldNames(t *testing.T) {
	g := New(testCorpus)
	res := g.GenerateFor(testCorpus.Handler("loop0"))
	if res.Spec == nil || len(res.Spec.Structs) == 0 {
		t.Skip("no structs recovered for loop0")
	}
	for _, st := range res.Spec.Structs {
		for _, f := range st.Fields {
			if !strings.HasPrefix(f.Name, "field_") {
				t.Fatalf("expected positional field names, got %q", f.Name)
			}
			if f.Type.Ident == "len" {
				t.Fatalf("baseline must not infer len relations: %s", f.Type)
			}
		}
	}
}

func TestValidSpecsValidate(t *testing.T) {
	g := New(testCorpus)
	env := testCorpus.Env()
	for _, h := range testCorpus.Incomplete(corpus.KindDriver) {
		res := g.GenerateFor(h)
		if !res.Valid {
			continue
		}
		if errs := syzlang.Validate(res.Spec, env); len(errs) > 0 {
			t.Fatalf("%s: valid spec fails validation: %v", h.Name, errs)
		}
	}
}

func TestBaselineCoverageOfIncomplete(t *testing.T) {
	// The baseline succeeds on only a minority of incomplete drivers
	// (Table 1: 20/75 ≈ 27%). The full-scale corpus reproduces that
	// ratio; the thin test corpus only bounds it loosely because the
	// hand-modeled Table 5 drivers (which the baseline handles by
	// design) dominate it.
	if testing.Short() {
		t.Skip("full corpus build")
	}
	c := corpus.Build(corpus.DefaultConfig())
	g := New(c)
	results := g.GenerateAll(c.Incomplete(corpus.KindDriver))
	valid := 0
	for _, r := range results {
		if r.Valid {
			valid++
		}
	}
	if valid == 0 {
		t.Fatal("baseline should succeed on at least one driver")
	}
	frac := float64(valid) / float64(len(results))
	if frac < 0.15 || frac > 0.5 {
		t.Fatalf("baseline success fraction %.2f outside the paper's band (27%%)", frac)
	}
}

func TestMergeSpecsValidates(t *testing.T) {
	g := New(testCorpus)
	results := g.GenerateAll(testCorpus.Incomplete(corpus.KindDriver))
	merged := MergeSpecs(results)
	if errs := syzlang.Validate(merged, testCorpus.Env()); len(errs) > 0 {
		t.Fatalf("merged baseline suite invalid: %v", errs[:min(3, len(errs))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
