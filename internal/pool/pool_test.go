package pool

import (
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	cases := []struct {
		name                   string
		n, requested, fallback int
		want                   int
	}{
		{"normal request", 8, 4, 2, 4},
		{"request equals n", 8, 8, 2, 8},
		{"request above n clamps to n", 8, 100, 2, 8},
		{"zero request uses fallback", 8, 0, 3, 3},
		{"negative request uses fallback", 8, -5, 3, 3},
		{"fallback above n clamps to n", 4, 0, 100, 4},
		{"zero fallback floors at one", 8, 0, 0, 1},
		{"negative fallback floors at one", 8, 0, -2, 1},
		{"zero n floors at one", 0, 4, 2, 1},
		{"one unit", 1, 8, 8, 1},
	}
	for _, tc := range cases {
		if got := Clamp(tc.n, tc.requested, tc.fallback); got != tc.want {
			t.Errorf("%s: Clamp(%d, %d, %d) = %d, want %d",
				tc.name, tc.n, tc.requested, tc.fallback, got, tc.want)
		}
	}
}

// TestRunEveryUnitExactlyOnce: for serial and concurrent worker
// counts — including more workers than units — every unit index runs
// exactly once.
func TestRunEveryUnitExactlyOnce(t *testing.T) {
	const n = 37
	for _, workers := range []int{1, 2, n + 16} {
		var counts [n]int32
		Run(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: unit %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunZeroUnits(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ran := int32(0)
		Run(workers, 0, func(int) { atomic.AddInt32(&ran, 1) })
		if ran != 0 {
			t.Fatalf("workers=%d: %d units ran for n=0", workers, ran)
		}
	}
}

// TestRunConcurrentWorkersOverlap: with two workers, two units can be
// in flight at once — Run is a worker pool, not a serial loop. A
// serial execution would deadlock here (and fail via test timeout):
// both units block until both have started.
func TestRunConcurrentWorkersOverlap(t *testing.T) {
	ready := make(chan struct{}, 2)
	release := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		Run(2, 2, func(int) {
			ready <- struct{}{}
			<-release
		})
		close(finished)
	}()
	<-ready
	<-ready
	close(release)
	<-finished
}
