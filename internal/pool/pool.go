// Package pool is the minimal worker-pool primitive shared by the
// engine's generation fan-out and the fuzzer's sharded campaigns.
package pool

import "sync"

// Clamp bounds a requested worker count to [1, n], substituting
// fallback when the request is unset (<= 0).
func Clamp(n, requested, fallback int) int {
	w := requested
	if w <= 0 {
		w = fallback
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn(0..n-1) on a pool of workers. Every unit is
// invoked exactly once — cancellation is the unit body's concern, so
// callers never observe missing results.
func Run(workers, n int, fn func(i int)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	units := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range units {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		units <- i
	}
	close(units)
	wg.Wait()
}
