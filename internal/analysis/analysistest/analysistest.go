// Package analysistest runs an analyzer over a fixture package and
// checks its findings against // want annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard
// library only.
//
// A fixture is a directory of .go files (conventionally
// testdata/src/<name>/ next to the analyzer). Lines that should
// trigger a finding carry a trailing comment of the form
//
//	x := 1 // want "regexp"
//
// with one Go-quoted regular expression per expected diagnostic on
// that line. Every reported diagnostic must be matched by a want and
// every want must be matched by a diagnostic, or the test fails.
// Fixtures may import the standard library (resolved through the
// toolchain's export data, offline); the import path the fixture is
// typechecked under is chosen by the test, so path-scoped analyzers
// (detrand, ctxhygiene) can be exercised both inside and outside
// their territory from one fixture.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"kernelgpt/internal/analysis"
)

// Run typechecks the fixture directory under the given import path,
// applies the analyzer, and reports any mismatch against the // want
// annotations through t.
func Run(t *testing.T, fixtureDir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	diags, fset, files, err := runAnalyzer(fixtureDir, importPath, a)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, fset, files)
	checkWants(t, fset, diags, wants)
}

// MustFire asserts the analyzer reports at least one finding on the
// fixture — the "deliberately broken fixture still trips the
// checker" guard.
func MustFire(t *testing.T, fixtureDir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	diags, _, _, err := runAnalyzer(fixtureDir, importPath, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatalf("%s reported no findings on %s; expected at least one", a.Name, fixtureDir)
	}
}

func runAnalyzer(fixtureDir, importPath string, a *analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, []*ast.File, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(fixtureDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in %s", fixtureDir)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: stdlibImporter(fset)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("typecheck fixture %s: %w", fixtureDir, err)
	}
	pkg := &analysis.Package{
		ImportPath: importPath, Dir: fixtureDir,
		Fset: fset, Files: files, Types: tpkg, TypesInfo: info,
	}
	diags, err := analysis.RunPackage(pkg, a)
	if err != nil {
		return nil, nil, nil, err
	}
	return diags, fset, files, nil
}

// stdlibImporter resolves standard-library imports through export
// data located with one `go list` invocation per test process.
func stdlibImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
}

var exportCache = struct {
	m map[string]string
}{m: map[string]string{}}

func exportFile(path string) (string, error) {
	if f, ok := exportCache.m[path]; ok {
		return f, nil
	}
	pkgs, err := listExports(path)
	if err != nil {
		return "", err
	}
	for p, f := range pkgs {
		exportCache.m[p] = f
	}
	f, ok := exportCache.m[path]
	if !ok {
		return "", fmt.Errorf("no export data for %q", path)
	}
	return f, nil
}

func listExports(path string) (map[string]string, error) {
	pkgs, err := analysis.GoListExports("", path)
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// collectWants parses // want annotations from the fixture comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want annotation %q", pos, c.Text)
					}
					unq, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %q", pos, q)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, unq, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: unq})
					rest = rest[len(q):]
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// checkWants matches diagnostics against expectations one-to-one.
func checkWants(t *testing.T, fset *token.FileSet, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected finding: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
