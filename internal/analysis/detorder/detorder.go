// Package detorder flags map iterations whose nondeterministic order
// can escape into outputs that must be byte-stable: wire encodings,
// serialized manifests, merged stats, digests, and RNG-consuming
// code. This is the exact bug class fixed by hand twice already
// (PR 4's mergeInto tie-break, PR 5's crash table) — an unsorted
// `for k := range m` feeding an encoder makes /v1/stats, hubstate
// sidecars, or shard merges differ run to run.
//
// A `range` over a map is reported when its body
//
//   - calls a serialization sink (encoding/json|xml|gob, an Encode /
//     Write / WriteString method — which covers hash.Hash — or a
//     fmt.Print*/Fprint* call),
//   - consumes randomness from a *math/rand.Rand (iteration order
//     would perturb the RNG stream),
//   - sends on a channel, or
//   - appends to a slice declared outside the loop that is not
//     passed to a sort.*/slices.Sort* call later in the same
//     function (collect-then-sort is the sanctioned pattern).
//
// Pure reductions — map writes, delete, counters, min/max — pass.
// An iteration whose order provably cannot matter but that trips the
// heuristics opts out with //syzlint:unordered.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"kernelgpt/internal/analysis"
)

// Analyzer is the detorder checker.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc: "flag map iteration whose order escapes into encoders, digests, RNG draws, channels, " +
		"or unsorted collected slices; opt out with //syzlint:unordered",
	Run: run,
}

// encodingPackages are treated as serialization sinks wholesale.
var encodingPackages = map[string]bool{
	"encoding/json": true, "encoding/xml": true, "encoding/gob": true,
	"encoding/binary": true,
}

// sinkMethods are method names that commit bytes in call order.
var sinkMethods = map[string]bool{
	"Encode": true, "Write": true, "WriteString": true, "WriteByte": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Suppressed("unordered", rs.For) {
			return true
		}
		checkMapRange(pass, body, rs)
		return true
	})
}

// checkMapRange inspects one map-range loop for order-escaping
// sinks.
func checkMapRange(pass *analysis.Pass, fn *ast.BlockStmt, rs *ast.RangeStmt) {
	var appends []appendSite
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "map iteration order escapes through a channel send; collect and sort first (or annotate //syzlint:unordered)")
		case *ast.CallExpr:
			if site, ok := appendTarget(pass, n, rs); ok {
				appends = append(appends, site)
				return true
			}
			if what := sinkCall(pass, n); what != "" {
				pass.Reportf(n.Pos(), "map iteration order escapes into %s; iterate sorted keys instead (or annotate //syzlint:unordered)", what)
			}
		}
		return true
	})
	for _, site := range appends {
		if !sortedAfter(pass, fn, rs.End(), site.target) {
			pass.Reportf(site.pos, "slice %s collects map-range values but is never sorted in this function; sort it before it escapes (or annotate //syzlint:unordered)", site.target)
		}
	}
}

type appendSite struct {
	target string
	pos    token.Pos
}

// appendTarget recognizes `x = append(x, ...)` inside the loop where
// x is declared outside it, returning x's printed form.
func appendTarget(pass *analysis.Pass, call *ast.CallExpr, rs *ast.RangeStmt) (appendSite, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return appendSite{}, false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return appendSite{}, false
	}
	target := call.Args[0]
	// A target rooted at a variable declared inside the loop body
	// cannot outlive an iteration, so its order cannot escape.
	if root := rootIdent(target); root != nil {
		if obj := pass.TypesInfo.Uses[root]; obj != nil {
			if rs.Body.Pos() <= obj.Pos() && obj.Pos() < rs.Body.End() {
				return appendSite{}, false
			}
		}
	}
	return appendSite{target: types.ExprString(target), pos: call.Pos()}, true
}

// rootIdent returns the base identifier of an expression chain
// (a.b.c -> a, s[i] -> s).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sinkCall classifies a call as a serialization/randomness sink,
// returning a description ("" if benign).
func sinkCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// Package-qualified: encoding/* and fmt printers.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			path := pn.Imported().Path()
			if encodingPackages[path] {
				return path + "." + sel.Sel.Name
			}
			if path == "fmt" && (strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")) {
				return "fmt." + sel.Sel.Name
			}
			return ""
		}
	}
	// Method sinks: Encode/Write/... on any receiver (covers
	// json.Encoder, bufio.Writer, hash.Hash, strings.Builder).
	if sinkMethods[sel.Sel.Name] {
		if selInfo, ok := pass.TypesInfo.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			return types.TypeString(selInfo.Recv(), nil) + "." + sel.Sel.Name
		}
	}
	// RNG draws: any method on *math/rand.Rand.
	if t := pass.TypesInfo.TypeOf(sel.X); t != nil {
		if ptr, ok := t.(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok {
				obj := named.Obj()
				if obj.Name() == "Rand" && obj.Pkg() != nil && strings.HasPrefix(obj.Pkg().Path(), "math/rand") {
					return "a *rand.Rand draw (the RNG stream becomes order-dependent)"
				}
			}
		}
	}
	return ""
}

// sortedAfter reports whether a sort.*/slices.* call mentioning
// target appears in fn after pos.
func sortedAfter(pass *analysis.Pass, fn *ast.BlockStmt, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if mentions(arg, target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes sort.*/slices.* calls and calls to local
// helpers with "sort" in their name (sortStructs(xs) counts).
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				path := pn.Imported().Path()
				return path == "sort" || path == "slices"
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}

// mentions reports whether expression e contains a sub-expression
// printing as target (so sort.Sort(byName(out)) counts for out).
func mentions(e ast.Expr, target string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if sub, ok := n.(ast.Expr); ok && types.ExprString(sub) == target {
			found = true
			return false
		}
		return true
	})
	return found
}
