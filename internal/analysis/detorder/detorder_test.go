package detorder_test

import (
	"testing"

	"kernelgpt/internal/analysis/analysistest"
	"kernelgpt/internal/analysis/detorder"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, "testdata/src/detorder", "kernelgpt/internal/fixture", detorder.Analyzer)
}

func TestDetorderFires(t *testing.T) {
	analysistest.MustFire(t, "testdata/src/detorder", "kernelgpt/internal/fixture", detorder.Analyzer)
}
