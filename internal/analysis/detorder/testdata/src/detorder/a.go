// Fixture for the detorder checker.
package fixture

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
)

func encodeInLoop(m map[string]int) {
	enc := json.NewEncoder(os.Stdout)
	for k := range m {
		enc.Encode(k) // want `map iteration order escapes into .*Encoder\.Encode`
	}
}

func printInLoop(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration order escapes into fmt.Println`
	}
}

func digestInLoop(m map[string]string) [32]byte {
	h := sha256.New()
	for _, v := range m {
		h.Write([]byte(v)) // want `map iteration order escapes into .*\.Write`
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice keys collects map-range values but is never sorted`
	}
	return keys
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func collectHelperSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(ks []string) { sort.Strings(ks) }

func reduce(m map[string]int) (total int) {
	for _, v := range m {
		total += v
	}
	return total
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func rngDraw(m map[string]int, r *rand.Rand) (n int) {
	for range m {
		n += r.Intn(3) // want `rand\.Rand draw`
	}
	return n
}

func sendInLoop(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `map iteration order escapes through a channel send`
	}
}

func annotated(m map[string]int) []string {
	var out []string
	//syzlint:unordered
	for k := range m {
		out = append(out, k)
	}
	return out
}

func innerScoped(m map[string]map[string]int) map[string][]string {
	out := make(map[string][]string, len(m))
	for outerKey, inner := range m {
		var ks []string
		for k := range inner {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		out[outerKey] = ks
	}
	return out
}

func fieldCollect(m map[string]int) struct{ Names []string } {
	var doc struct{ Names []string }
	for k := range m {
		doc.Names = append(doc.Names, k) // want `slice doc.Names collects map-range values but is never sorted`
	}
	return doc
}
