// Package analysis is a self-contained static-analysis framework
// modeled on golang.org/x/tools/go/analysis, built only on the
// standard library so the repo's invariant checkers (cmd/syzlint)
// carry no external dependency. An Analyzer inspects one typechecked
// package through a Pass and reports Diagnostics; the loader
// (load.go) typechecks packages offline via `go list -export` and
// the toolchain's export data, and the runner (run.go) fans analyzers
// out over loaded packages. The analysistest subpackage runs
// analyzers over testdata fixtures with // want expectations, and
// cmd/syzlint fronts everything as a multichecker that also speaks
// the `go vet -vettool` unitchecker protocol.
//
// The analyzers themselves (detorder, lockguard, detrand,
// ctxhygiene) machine-check the determinism and concurrency
// contracts the fuzzing pipeline stakes correctness on: sorted map
// iteration before serialization, `// guarded by mu` lock
// discipline, no wall-clock or global RNG in deterministic packages,
// and ctx-aware blocking APIs.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one invariant checker. Run inspects a single package
// via the Pass and reports findings through Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags
	// (lowercase, no spaces).
	Name string
	// Doc is the one-paragraph description shown by `syzlint help`.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Pass is the interface between one Analyzer and one package, a la
// x/tools go/analysis.Pass (minus facts, which none of our checkers
// need).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic (set by the runner).
	Report func(Diagnostic)

	directives map[*ast.File]DirectiveMap
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the reporting checker's name (filled by the runner).
	Analyzer string
}

// Position resolves the diagnostic's file position.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// FileOf returns the *ast.File containing pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Suppressed reports whether a //syzlint:<kind> directive covers pos:
// either on the same source line (trailing comment), on the line
// directly above, or on the enclosing function declaration. This is
// the opt-out mechanism every checker honors.
func (p *Pass) Suppressed(kind string, pos token.Pos) bool {
	f := p.FileOf(pos)
	if f == nil {
		return false
	}
	if p.directives == nil {
		p.directives = map[*ast.File]DirectiveMap{}
	}
	dm, ok := p.directives[f]
	if !ok {
		dm = Directives(p.Fset, f)
		p.directives[f] = dm
	}
	line := p.Fset.Position(pos).Line
	if dm.Has(kind, line) || dm.Has(kind, line-1) {
		return true
	}
	// Function-level suppression: a directive on the func declaration
	// (or the line above it) covers the whole body.
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Pos() <= pos && pos <= fd.End() {
			dl := p.Fset.Position(fd.Pos()).Line
			if dm.Has(kind, dl) || dm.Has(kind, dl-1) {
				return true
			}
		}
	}
	return false
}
