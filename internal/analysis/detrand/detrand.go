// Package detrand bans nondeterminism sources — wall-clock reads and
// the globally seeded math/rand — inside the packages whose outputs
// must be a pure function of their inputs and RNG seed: program
// generation/mutation, campaign execution and stats merging, the
// seed pool, the corpus store, the discrete-event simulator, and the
// telemetry substrate (whose only sanctioned raw wall-clock read is
// telemetry.SystemClock, the bottom of the injected Clock seam).
// One time.Now() in a merge path silently breaks shard invariance,
// hub restart replay, and the sim-validate gate; this checker makes
// that a build failure instead of a reviewer catch.
//
// Legitimate wall-clock reads (the operator-facing Stats timing
// fields) opt out per line or per function with
//
//	//syzlint:wallclock
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"kernelgpt/internal/analysis"
)

// DeterministicPackages lists the import-path suffixes the checker
// polices. A package matches when its path equals a suffix or ends
// with "/"+suffix, so the module prefix does not matter.
var DeterministicPackages = []string{
	"internal/prog",
	"internal/fuzz",
	"internal/fuzz/seedpool",
	"internal/fuzz/corpusstore",
	"internal/sim",
	"internal/telemetry",
}

// The telemetry package is policed like the rest, with one carve-out:
// telemetry.SystemClock is the bottom of the injected Clock seam —
// the single sanctioned raw wall-clock read in the deterministic
// tree. Only that exact function body may call time.Now; everything
// else in the package must thread a Clock.
const (
	clockSeamPackage = "internal/telemetry"
	clockSeamFunc    = "SystemClock"
)

// wallClockFuncs are the time package functions that read the wall
// clock. (time.Sleep is ctxhygiene's business.)
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
}

// seededConstructors are the math/rand package-level functions that
// are fine in deterministic code: they build explicitly seeded
// generators rather than consuming the global one.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// Analyzer is the detrand checker.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock reads and the global math/rand in deterministic packages " +
		"(prog, fuzz, seedpool, corpusstore, sim, telemetry); opt out with //syzlint:wallclock",
	Run: run,
}

// InDeterministicPackage reports whether path is policed.
func InDeterministicPackage(path string) bool {
	for _, s := range DeterministicPackages {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !InDeterministicPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		seamStart, seamEnd := clockSeamRange(pass, f)
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "crypto/rand" {
				if !pass.Suppressed("wallclock", imp.Pos()) {
					pass.Reportf(imp.Pos(), "crypto/rand in deterministic package %s: outputs must be a pure function of the seed", pass.Pkg.Path())
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgName, ok := pkgOf(pass, sel)
			if !ok {
				return true
			}
			switch pkgName {
			case "time":
				if seamStart.IsValid() && sel.Pos() >= seamStart && sel.Pos() < seamEnd {
					return true
				}
				if wallClockFuncs[sel.Sel.Name] && !pass.Suppressed("wallclock", sel.Pos()) {
					pass.Reportf(sel.Pos(), "time.%s in deterministic package %s: wall-clock state leaks into outputs that must be a pure function of the seed (annotate //syzlint:wallclock if this only feeds timing stats)", sel.Sel.Name, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[sel.Sel.Name] && isPackageFunc(pass, sel) && !pass.Suppressed("wallclock", sel.Pos()) {
					pass.Reportf(sel.Pos(), "global rand.%s in deterministic package %s: the process-global generator is not seed-derived; thread a *rand.Rand from the campaign seed", sel.Sel.Name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}

// clockSeamRange returns the source range of the sanctioned
// SystemClock function body, valid only when pass is over the
// telemetry package itself.
func clockSeamRange(pass *analysis.Pass, f *ast.File) (start, end token.Pos) {
	path := pass.Pkg.Path()
	if path != clockSeamPackage && !strings.HasSuffix(path, "/"+clockSeamPackage) {
		return token.NoPos, token.NoPos
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == clockSeamFunc {
			return fd.Pos(), fd.End()
		}
	}
	return token.NoPos, token.NoPos
}

// pkgOf resolves a selector's base to an imported package name,
// returning its import path.
func pkgOf(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// isPackageFunc reports whether the selector names a package-level
// function (as opposed to a type or constant from the package).
func isPackageFunc(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	_, isFunc := obj.(*types.Func)
	return isFunc
}
