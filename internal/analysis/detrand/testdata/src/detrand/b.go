package fixture

import (
	crand "crypto/rand" // want `crypto/rand in deterministic package`
)

func cryptoRead(b []byte) {
	crand.Read(b)
}
