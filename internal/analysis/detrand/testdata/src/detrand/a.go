// Fixture for the detrand checker: typechecked under a
// deterministic import path by the test.
package fixture

import (
	"math/rand"
	"time"
)

var sink int64

func wallClock() {
	t := time.Now() // want `time.Now in deterministic package`
	sink = t.UnixNano()
	sink = int64(time.Since(time.Unix(0, sink))) // want `time.Since in deterministic package`
	sink = int64(time.Until(time.Unix(0, 0)))    // want `time.Until in deterministic package`
}

func annotatedSameLine() {
	sink = time.Now().UnixNano() //syzlint:wallclock
}

//syzlint:wallclock
func annotatedFunc() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func annotatedAbove() {
	//syzlint:wallclock
	sink = time.Now().UnixNano()
}

func seeded() int {
	r := rand.New(rand.NewSource(1)) // explicit seed: fine
	return r.Intn(10)
}

func globalRand() int {
	return rand.Intn(10) // want `global rand.Intn in deterministic package`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle`
}

func typeOnly(r *rand.Rand) int64 {
	// Naming the rand.Rand type is not a draw from the global source.
	return r.Int63()
}
