// The same wall-clock reads as the detrand fixture, typechecked
// under a non-deterministic import path: nothing may be reported.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(10))
}
