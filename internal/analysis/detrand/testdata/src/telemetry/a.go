// Fixture for the telemetry clock-seam carve-out: typechecked under
// the telemetry import path by the test. Exactly one function —
// SystemClock, the bottom of the injected Clock seam — may read the
// wall clock raw; everything else in the package is policed like any
// other deterministic package.
package fixture

import "time"

// SystemClock is the sanctioned seam: no finding, no annotation.
func SystemClock() time.Time {
	return time.Now()
}

// Clock mirrors the real package's injectable time source.
type Clock func() time.Time

// Now lives outside the seam, so its fallback must route through
// SystemClock, not time.Now.
func (c Clock) Now() time.Time {
	if c == nil {
		return SystemClock()
	}
	return c()
}

// systemClock has the right shape but the wrong name — only the
// exact seam function is carved out.
func systemClock() time.Time {
	return time.Now() // want `time.Now in deterministic package`
}

func smuggledRead() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package`
}

func smuggledSince() time.Duration {
	return time.Since(time.Unix(0, 0)) // want `time.Since in deterministic package`
}
