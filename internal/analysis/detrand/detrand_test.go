package detrand_test

import (
	"testing"

	"kernelgpt/internal/analysis/analysistest"
	"kernelgpt/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata/src/detrand", "kernelgpt/internal/sim", detrand.Analyzer)
}

// The same banned calls outside the deterministic package set are
// none of detrand's business.
func TestDetrandScopedToDeterministicPackages(t *testing.T) {
	analysistest.Run(t, "testdata/src/nondet", "kernelgpt/internal/hub", detrand.Analyzer)
}

// The broken fixture keeps firing — the meta-guard that the checker
// itself has not been neutered.
func TestDetrandFires(t *testing.T) {
	analysistest.MustFire(t, "testdata/src/detrand", "kernelgpt/internal/fuzz", detrand.Analyzer)
}

// The telemetry package is policed with exactly one carve-out: the
// SystemClock seam function may read the wall clock raw; every other
// read in the package still fires.
func TestDetrandTelemetryClockSeam(t *testing.T) {
	analysistest.Run(t, "testdata/src/telemetry", "kernelgpt/internal/telemetry", detrand.Analyzer)
}

// The carve-out is scoped to the telemetry package: the same fixture
// under another deterministic path gets no seam, so SystemClock's raw
// read fires too.
func TestDetrandSeamScopedToTelemetry(t *testing.T) {
	analysistest.MustFire(t, "testdata/src/telemetry", "kernelgpt/internal/fuzz", detrand.Analyzer)
}
