package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Syzlint directives are magic comments, written //syzlint:<kind>
// with an optional argument, that record a human judgment the
// checkers cannot make themselves:
//
//	//syzlint:wallclock    this wall-clock read feeds operator-facing
//	                       timing stats, not deterministic state
//	//syzlint:unordered    this map iteration's output genuinely does
//	                       not depend on order
//	//syzlint:locked mu    every caller of this function already
//	                       holds mu (lockguard trusts, not verifies)
//	//syzlint:ctx          this context.Background/TODO or blocking
//	                       call is a deliberate API boundary
//
// A directive on a line suppresses findings on that line and the one
// below it; on a func declaration it covers the whole function.

// DirectivePrefix is the comment marker the checkers recognize.
const DirectivePrefix = "//syzlint:"

// Directive is one parsed //syzlint: comment.
type Directive struct {
	Kind string // e.g. "wallclock", "locked"
	Arg  string // e.g. the mutex name for "locked"
	Line int
}

// DirectiveMap indexes a file's directives by line.
type DirectiveMap map[int][]Directive

// Has reports whether a directive of the given kind sits on line.
func (m DirectiveMap) Has(kind string, line int) bool {
	for _, d := range m[line] {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

// Arg returns the argument of the kind directive on line ("" if
// absent).
func (m DirectiveMap) Arg(kind string, line int) string {
	for _, d := range m[line] {
		if d.Kind == kind {
			return d.Arg
		}
	}
	return ""
}

// Directives extracts every //syzlint: comment in f, indexed by the
// line the comment sits on.
func Directives(fset *token.FileSet, f *ast.File) DirectiveMap {
	m := DirectiveMap{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, DirectivePrefix)
			kind, arg, _ := strings.Cut(rest, " ")
			kind = strings.TrimSpace(kind)
			if kind == "" {
				continue
			}
			line := fset.Position(c.Pos()).Line
			m[line] = append(m[line], Directive{Kind: kind, Arg: strings.TrimSpace(arg), Line: line})
		}
	}
	return m
}

// GuardedBy parses a field's `// guarded by <name>` annotation from
// its doc or trailing comment, returning the named sibling mutex
// field ("" when unannotated). The convention (see lockguard) is
//
//	mu sync.Mutex
//	seeds map[string]int // guarded by mu
//
// and the guard must name a field of the same struct.
func GuardedBy(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			text = strings.TrimSuffix(text, "*/")
			for _, line := range strings.Split(text, "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "guarded by "); ok {
					name := strings.TrimSpace(rest)
					// Tolerate trailing prose: "guarded by mu (except ...)".
					if i := strings.IndexAny(name, " .,;("); i >= 0 {
						name = name[:i]
					}
					if name != "" {
						return name
					}
				}
			}
		}
	}
	return ""
}
