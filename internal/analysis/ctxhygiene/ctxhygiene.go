// Package ctxhygiene enforces the context discipline of internal/
// library code: blocking work must be cancelable. Concretely:
//
//   - no naked time.Sleep — retry/backoff loops must select on a
//     context (the pattern the llm middleware and hub client follow);
//   - library code does not mint its own root context with
//     context.Background()/context.TODO(); the caller owns cancellation;
//   - when an exported function takes a context.Context it comes
//     first in the parameter list (Go API convention, and what every
//     call site in this repo assumes);
//   - exported functions that perform obviously blocking work
//     (time.Sleep, net dials, *http.Client round trips) must accept a
//     context.Context.
//
// Deliberate exceptions (compat wrappers whose whole point is to
// default the context) opt out with //syzlint:ctx.
package ctxhygiene

import (
	"go/ast"
	"go/types"
	"strings"

	"kernelgpt/internal/analysis"
)

// Analyzer is the ctxhygiene checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxhygiene",
	Doc: "enforce ctx-aware blocking APIs in internal/ packages: no naked time.Sleep, " +
		"no context.Background in library code, context.Context first; opt out with //syzlint:ctx",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !inInternal(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.FuncDecl:
				checkSignature(pass, n)
			}
			return true
		})
	}
	return nil
}

// inInternal reports whether the package is library code under an
// internal/ tree (commands and examples are operator-facing and may
// block or default contexts as they please).
func inInternal(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if sel.Sel.Name == "Sleep" && !pass.Suppressed("ctx", sel.Pos()) {
			pass.Reportf(sel.Pos(), "naked time.Sleep in library code: select on a context-aware timer so callers can cancel the wait")
		}
	case "context":
		if (sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") && !pass.Suppressed("ctx", sel.Pos()) {
			pass.Reportf(sel.Pos(), "context.%s in library code: accept the caller's context instead of minting a root one", sel.Sel.Name)
		}
	}
}

// checkSignature enforces ctx-first on exported functions and
// requires a context parameter on exported functions that do
// obviously blocking work.
func checkSignature(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	ctxIndex := -1
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass, field.Type) && ctxIndex < 0 {
			ctxIndex = idx
		}
		idx += n
	}
	if ctxIndex > 0 && !pass.Suppressed("ctx", fd.Pos()) {
		pass.Reportf(fd.Pos(), "exported %s takes context.Context at parameter %d: contexts come first", fd.Name.Name, ctxIndex+1)
	}
	if ctxIndex < 0 && fd.Body != nil && !pass.Suppressed("ctx", fd.Pos()) {
		if what := blockingCall(pass, fd.Body); what != "" {
			pass.Reportf(fd.Pos(), "exported %s blocks (%s) but has no context.Context parameter", fd.Name.Name, what)
		}
	}
}

func isContextType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// blockingCall scans a body for the blocking operations the checker
// recognizes, returning a description of the first one ("" if none).
func blockingCall(pass *analysis.Pass, body *ast.BlockStmt) string {
	var found string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "time":
					if sel.Sel.Name == "Sleep" {
						found = "time.Sleep"
					}
				case "net":
					if strings.HasPrefix(sel.Sel.Name, "Dial") {
						found = "net." + sel.Sel.Name
					}
				}
				return true
			}
		}
		// *http.Client round trips without a request-scoped context.
		if t := pass.TypesInfo.TypeOf(sel.X); t != nil {
			if ptr, ok := t.(*types.Pointer); ok {
				if named, ok := ptr.Elem().(*types.Named); ok {
					obj := named.Obj()
					if obj.Name() == "Client" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
						switch sel.Sel.Name {
						case "Do", "Get", "Post", "PostForm", "Head":
							found = "http.Client." + sel.Sel.Name
						}
					}
				}
			}
		}
		return true
	})
	return found
}
