package ctxhygiene_test

import (
	"testing"

	"kernelgpt/internal/analysis/analysistest"
	"kernelgpt/internal/analysis/ctxhygiene"
)

func TestCtxHygiene(t *testing.T) {
	analysistest.Run(t, "testdata/src/ctxhygiene", "kernelgpt/internal/fixture", ctxhygiene.Analyzer)
}

func TestCtxHygieneScopedToInternal(t *testing.T) {
	analysistest.Run(t, "testdata/src/cmdok", "kernelgpt/cmd/fixture", ctxhygiene.Analyzer)
}

func TestCtxHygieneFires(t *testing.T) {
	analysistest.MustFire(t, "testdata/src/ctxhygiene", "kernelgpt/internal/fixture", ctxhygiene.Analyzer)
}
