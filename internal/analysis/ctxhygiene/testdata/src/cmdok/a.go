// The same blocking patterns in operator-facing command code:
// ctxhygiene only polices internal/ packages.
package fixture

import (
	"context"
	"time"
)

func Wait() {
	time.Sleep(time.Nanosecond)
	_ = context.Background()
}
