// Fixture for the ctxhygiene checker: typechecked under an
// internal/ import path by the test.
package fixture

import (
	"context"
	"net/http"
	"time"
)

func Retry(n int) { // want `exported Retry blocks \(time.Sleep\) but has no context.Context parameter`
	for i := 0; i < n; i++ {
		time.Sleep(time.Millisecond) // want `naked time.Sleep in library code`
	}
}

func RetryCtx(ctx context.Context, n int) error {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func Fetch(c *http.Client, url string) error { // want `exported Fetch blocks \(http.Client.Do\) but has no context.Context parameter`
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func FetchCtx(ctx context.Context, c *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func Indexed(items []string, ctx context.Context) int { // want `exported Indexed takes context.Context at parameter 2: contexts come first`
	_ = ctx
	return len(items)
}

func mint() context.Context {
	return context.Background() // want `context.Background in library code`
}

func todo() context.Context {
	return context.TODO() // want `context.TODO in library code`
}

//syzlint:ctx
func Compat() {
	// A deliberate compatibility wrapper: the directive on the
	// declaration covers the whole body.
	time.Sleep(time.Nanosecond)
	_ = context.Background()
}

func unexportedSleeps() {
	// Unexported helpers still may not sleep nakedly...
	time.Sleep(time.Nanosecond) // want `naked time.Sleep in library code`
}
