package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
}

// goList runs `go list` in dir with the given arguments and decodes
// the JSON package stream.
func goList(dir string, args ...string) ([]listPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(args, " "), msg)
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load typechecks the packages matched by patterns (relative to dir,
// e.g. "./..."), resolving imports through the toolchain's compiled
// export data so no network or external module is ever consulted.
// Test files are not loaded: the invariants syzlint enforces are
// production-code contracts, and tests legitimately use wall clocks,
// sleeps, and ad-hoc maps. Packages that fail to compile fail the
// load.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Pass 1: the target packages.
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,Name,GoFiles,CgoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	// Pass 2: export data for every dependency (building as needed).
	deps, err := goList(dir, append([]string{"-export", "-deps", "-json=ImportPath,Export,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 || len(t.CgoFiles) > 0 {
			continue
		}
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// GoListExports resolves path (and its transitive dependencies) to
// compiled export-data files via `go list -export -deps`, building
// them if needed. dir == "" runs in the current directory.
func GoListExports(dir string, paths ...string) (map[string]string, error) {
	pkgs, err := goList(dir, append([]string{"-export", "-deps", "-json=ImportPath,Export"}, paths...)...)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// check parses and typechecks one package against the shared
// importer.
func check(fset *token.FileSet, imp types.Importer, t listPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		GoFiles:    t.GoFiles,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewTypesInfo allocates a types.Info with every map the checkers
// consult populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
