package analysis

import (
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// RunPackage applies one analyzer to one loaded package and returns
// its diagnostics sorted by position.
func RunPackage(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	pass.Report = func(d Diagnostic) {
		// Test files are out of scope repo-wide. Standalone loading
		// already excludes them (go list GoFiles), but under the
		// `go vet -vettool` protocol the test-variant compilation
		// units include _test.go sources.
		if strings.HasSuffix(pkg.Fset.Position(d.Pos).Filename, "_test.go") {
			return
		}
		d.Analyzer = a.Name
		diags = append(diags, d)
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// Run applies every analyzer to every package and returns the
// combined findings, sorted by file position then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := RunPackage(pkg, a)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}
	if len(pkgs) > 0 {
		sortDiagnostics(pkgs[0].Fset, all)
	}
	return all, nil
}

// sortDiagnostics orders findings by filename, offset, then analyzer
// so output is stable regardless of analyzer or package order.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Offset != pj.Offset {
			return pi.Offset < pj.Offset
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// Print writes findings in the conventional file:line:col form.
func Print(w io.Writer, fset *token.FileSet, diags []Diagnostic) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: %s: %s\n", formatPos(pos), d.Analyzer, d.Message)
	}
}

func formatPos(pos token.Position) string {
	if pos.Filename == "" {
		return "-"
	}
	return fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
}
