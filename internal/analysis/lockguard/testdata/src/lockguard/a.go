// Fixture for the lockguard checker.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) Incr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) Racy() int {
	return c.n // want `counter.n is guarded by mu but accessed without c.mu held`
}

func (c *counter) snapshotLocked() int {
	return c.n // *Locked suffix: callers hold the lock
}

//syzlint:locked mu
func (c *counter) peek() int {
	return c.n
}

func (c *counter) spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `counter.n is guarded by mu but accessed without c.mu held`
	}()
}

func (c *counter) deferredUnderLock() {
	c.mu.Lock()
	defer func() {
		c.n++ // deferred literal inherits the enclosing critical section
		c.mu.Unlock()
	}()
}

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // locally constructed, not shared yet
	return c
}

func otherVar(c *counter) {
	c.n = 2 // want `counter.n is guarded by mu but accessed without c.mu held`
}

func lockedElsewhere(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 3
}

type table struct {
	mu   sync.RWMutex
	rows map[string]int // guarded by mu
	hits int            // guarded by mu
}

func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k]
}

func (t *table) put(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows[k] = v
	t.hits++
}

func (t *table) putUnderRLock(k string, v int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.rows[k] = v // want `table.rows is written under t.mu.RLock\(\); writes need the full Lock`
	t.hits++      // want `table.hits is written under t.mu.RLock\(\); writes need the full Lock`
}

type badGuard struct {
	// guarded by lock
	x int // want `struct badGuard has no field named lock`
}

type badMutex struct {
	mu int
	// guarded by mu
	y int // want `field badMutex.mu is not a sync.Mutex or sync.RWMutex`
}
