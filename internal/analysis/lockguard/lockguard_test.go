package lockguard_test

import (
	"testing"

	"kernelgpt/internal/analysis/analysistest"
	"kernelgpt/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata/src/lockguard", "kernelgpt/internal/fixture", lockguard.Analyzer)
}

func TestLockguardFires(t *testing.T) {
	analysistest.MustFire(t, "testdata/src/lockguard", "kernelgpt/internal/fixture", lockguard.Analyzer)
}
