// Package lockguard enforces `// guarded by mu` field annotations:
// a struct field carrying that comment may only be touched by code
// that visibly holds the named sibling mutex. The hub's whole
// correctness story ("all request handling serializes on one mutex")
// rests on this discipline, which until now was enforced by review
// only.
//
// The check is flow-insensitive by design — cheap, deterministic,
// and good enough to catch the real bug class (a new method touching
// h.workers without h.mu.Lock()):
//
//   - an access to x.f (f guarded by mu) is satisfied when the
//     enclosing function, or a lexically enclosing function literal
//     that is not launched with `go`, contains an x.mu.Lock() or
//     x.mu.RLock() call;
//   - a write (assignment, ++/--, or &x.f escape) under only an
//     RLock of a sync.RWMutex is still reported;
//   - functions named *Locked, or annotated //syzlint:locked mu on
//     the line above their declaration, assert that every caller
//     already holds mu and are trusted;
//   - variables the function itself builds with a composite literal
//     (constructors: h := &Hub{...}) are exempt — the value is not
//     shared yet.
//
// Aliasing (h2 := h) and cross-struct guards are out of scope; the
// annotation convention is a sibling mutex field.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"kernelgpt/internal/analysis"
)

// Analyzer is the lockguard checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "check that fields annotated `// guarded by mu` are only accessed holding the named " +
		"sibling mutex; assert caller-held locks with a *Locked name or //syzlint:locked",
	Run: run,
}

// guard describes one annotated field.
type guard struct {
	muName string
	rw     bool // guard is a sync.RWMutex
	owner  string
}

const (
	holdNone  = 0
	holdRead  = 1
	holdWrite = 2
)

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		dm := analysis.Directives(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if callerHolds(pass, dm, fd) {
				continue
			}
			c := &checker{pass: pass, guards: guards, writes: writeSites(fd.Body), exempt: constructed(pass, fd.Body)}
			c.checkScope(fd.Body, &scope{})
		}
	}
	return nil
}

// collectGuards indexes every `// guarded by <mu>` field in the
// package by its types.Var, validating that the guard names a
// sibling mutex field.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	guards := map[*types.Var]guard{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			byName := map[string]*ast.Field{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					byName[name.Name] = field
				}
			}
			for _, field := range st.Fields.List {
				muName := analysis.GuardedBy(field)
				if muName == "" {
					continue
				}
				mu, ok := byName[muName]
				if !ok {
					pass.Reportf(field.Pos(), "guarded by %s: struct %s has no field named %s", muName, ts.Name.Name, muName)
					continue
				}
				rw, isMutex := mutexType(pass, mu.Type)
				if !isMutex {
					pass.Reportf(field.Pos(), "guarded by %s: field %s.%s is not a sync.Mutex or sync.RWMutex", muName, ts.Name.Name, muName)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = guard{muName: muName, rw: rw, owner: ts.Name.Name}
					}
				}
			}
			return true
		})
	}
	return guards
}

// mutexType reports whether t is sync.Mutex or sync.RWMutex
// (possibly behind a pointer), and whether it is the RW flavor.
func mutexType(pass *analysis.Pass, e ast.Expr) (rw, ok bool) {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false, false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// callerHolds reports whether the function asserts its callers hold
// the lock: a *Locked suffix or a //syzlint:locked directive on (or
// directly above) the declaration line.
func callerHolds(pass *analysis.Pass, dm analysis.DirectiveMap, fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	line := pass.Fset.Position(fd.Pos()).Line
	return dm.Has("locked", line) || dm.Has("locked", line-1)
}

// scope is one function body's flow-insensitive lock state.
type scope struct {
	parent *scope
	goLit  bool           // a `go func(){...}` boundary: locks do not inherit
	held   map[string]int // "h.mu" -> holdRead|holdWrite
}

func (s *scope) holds(lockExpr string) int {
	mode := holdNone
	for sc := s; sc != nil; sc = sc.parent {
		mode |= sc.held[lockExpr]
		if sc.goLit {
			break
		}
	}
	return mode
}

type checker struct {
	pass   *analysis.Pass
	guards map[*types.Var]guard
	writes map[token.Pos]bool
	exempt map[types.Object]bool
}

// checkScope registers this body's Lock/RLock calls, then validates
// guarded-field accesses, recursing into function literals with
// child scopes.
func (c *checker) checkScope(body *ast.BlockStmt, sc *scope) {
	sc.held = map[string]int{}
	c.collectLocks(body, sc)
	c.walk(body, sc)
}

// collectLocks records E.Lock()/E.RLock() calls lexically in this
// body, not descending into nested function literals.
func (c *checker) collectLocks(body *ast.BlockStmt, sc *scope) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock":
			sc.held[types.ExprString(sel.X)] |= holdWrite | holdRead
		case "RLock":
			sc.held[types.ExprString(sel.X)] |= holdRead
		}
		return true
	})
}

// walk validates accesses in this body, spawning child scopes at
// function literals.
func (c *checker) walk(n ast.Node, sc *scope) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned goroutine runs outside the current critical
			// section; arguments evaluate in this scope.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				child := &scope{parent: sc, goLit: true}
				c.checkScope(lit.Body, child)
				for _, arg := range n.Call.Args {
					c.walk(arg, sc)
				}
				return false
			}
		case *ast.FuncLit:
			// Deferred and inline literals execute while the
			// surrounding function's locks may be held: inherit.
			child := &scope{parent: sc}
			c.checkScope(n.Body, child)
			return false
		case *ast.SelectorExpr:
			c.checkAccess(n, sc)
		}
		return true
	})
}

// checkAccess validates one selector expression against the guard
// table.
func (c *checker) checkAccess(sel *ast.SelectorExpr, sc *scope) {
	selInfo, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return
	}
	field, ok := selInfo.Obj().(*types.Var)
	if !ok {
		return
	}
	g, guarded := c.guards[field]
	if !guarded {
		return
	}
	if root := rootIdent(sel.X); root != nil {
		if obj := c.pass.TypesInfo.Uses[root]; obj != nil && c.exempt[obj] {
			return
		}
	}
	lockExpr := types.ExprString(sel.X) + "." + g.muName
	mode := sc.holds(lockExpr)
	write := c.writes[sel.Pos()]
	if mode == holdNone {
		if c.pass.Suppressed("locked", sel.Pos()) {
			return
		}
		c.pass.Reportf(sel.Pos(), "%s.%s is guarded by %s but accessed without %s held (lock it, suffix the function name with Locked, or annotate //syzlint:locked %s)",
			g.owner, field.Name(), g.muName, lockExpr, g.muName)
		return
	}
	if write && g.rw && mode&holdWrite == 0 {
		if c.pass.Suppressed("locked", sel.Pos()) {
			return
		}
		c.pass.Reportf(sel.Pos(), "%s.%s is written under %s.RLock(); writes need the full Lock()",
			g.owner, field.Name(), lockExpr)
	}
}

// writeSites collects the positions of selector expressions that are
// written: assignment LHS, ++/--, and &x.f escapes.
func writeSites(body *ast.BlockStmt) map[token.Pos]bool {
	writes := map[token.Pos]bool{}
	mark := func(e ast.Expr) {
		// Unwrap index/deref chains so `t.rows[k] = v` marks t.rows.
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				if sel, ok := e.(*ast.SelectorExpr); ok {
					writes[sel.Pos()] = true
				}
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return writes
}

// constructed collects local variables initialized from composite
// literals in this function (h := &Hub{...}): they are unshared, so
// field writes before publication are exempt.
func constructed(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = u.X
			}
			if _, ok := rhs.(*ast.CompositeLit); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// rootIdent returns the base identifier of an expression chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
