package vkernel

import (
	"bytes"
	"math/rand"
	"testing"
)

// deltaRoundTrip encodes s \ base and decodes it back, failing the
// test on any mismatch. Returns the encoded bytes.
func deltaRoundTrip(t *testing.T, s, base *CoverSet) []byte {
	t.Helper()
	enc := s.EncodeDelta(base)
	got, err := DecodeDeltaBlocks(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := []BlockID{}
	s.ForEach(func(b BlockID) {
		if !base.Has(b) {
			want = append(want, b)
		}
	})
	if len(got) != len(want) {
		t.Fatalf("round trip: %d blocks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round trip: block[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Canonical: re-encoding the decoded set reproduces the bytes.
	re := &CoverSet{}
	for _, b := range got {
		re.Add(b)
	}
	if enc2 := re.EncodeDelta(nil); !bytes.Equal(enc, enc2) && base.Count() == 0 {
		t.Fatalf("encoding not canonical: %x vs %x", enc, enc2)
	}
	return enc
}

func TestCoverDeltaEmpty(t *testing.T) {
	enc := (&CoverSet{}).EncodeDelta(nil)
	blocks, err := DecodeDeltaBlocks(enc)
	if err != nil || len(blocks) != 0 {
		t.Fatalf("empty delta: %v blocks, err %v", blocks, err)
	}
	var nilSet *CoverSet
	if !bytes.Equal(nilSet.EncodeDelta(nil), enc) {
		t.Fatal("nil set encodes differently from empty set")
	}
}

func TestCoverDeltaShapes(t *testing.T) {
	shapes := map[string]func(s *CoverSet){
		"sparse": func(s *CoverSet) { // array container
			for _, b := range []BlockID{1, 7, 100, 65000} {
				s.Add(b)
			}
		},
		"clustered": func(s *CoverSet) { // run container
			for b := BlockID(100); b < 900; b++ {
				s.Add(b)
			}
			for b := BlockID(2000); b < 2500; b++ {
				s.Add(b)
			}
		},
		"dense-scattered": func(s *CoverSet) { // bitmap container
			for b := BlockID(0); b < 1<<16; b += 2 {
				s.Add(b)
			}
		},
		"multi-container": func(s *CoverSet) {
			for _, b := range []BlockID{5, 1 << 16, 1<<16 + 1, 3 << 16, 1 << 20} {
				s.Add(b)
			}
		},
		"full-container": func(s *CoverSet) { // one maximal run
			for b := BlockID(0); b < 1<<16; b++ {
				s.Add(b)
			}
		},
	}
	for name, fill := range shapes {
		t.Run(name, func(t *testing.T) {
			s := &CoverSet{}
			fill(s)
			deltaRoundTrip(t, s, &CoverSet{})
		})
	}
}

func TestCoverDeltaAgainstBase(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	base := NewCoverSet(1 << 14)
	s := NewCoverSet(1 << 14)
	for i := 0; i < 4000; i++ {
		b := BlockID(r.Intn(1 << 14))
		base.Add(b)
		s.Add(b)
	}
	for i := 0; i < 300; i++ {
		s.Add(BlockID(r.Intn(1 << 14)))
	}
	enc := deltaRoundTrip(t, s, base)
	full := s.EncodeDelta(nil)
	if len(enc) >= len(full) {
		t.Fatalf("delta (%dB) not smaller than full encoding (%dB)", len(enc), len(full))
	}
	// Applying the delta to a clone of base reconstructs s.
	merged := base.Clone()
	if _, err := merged.ApplyDelta(enc); err != nil {
		t.Fatal(err)
	}
	if !merged.Equal(s) {
		t.Fatal("base + delta != full set")
	}
}

func TestCoverDeltaCompression(t *testing.T) {
	// A contiguous handler-style block range must compress far below
	// its JSON array form (~6 bytes per block ID).
	s := &CoverSet{}
	for b := BlockID(100); b < 1100; b++ {
		s.Add(b)
	}
	enc := s.EncodeDelta(nil)
	if len(enc) > 64 {
		t.Fatalf("1000-block run encoded to %d bytes, want run-length compression", len(enc))
	}
}

func TestCoverDeltaRejectsMalformed(t *testing.T) {
	s := &CoverSet{}
	for _, b := range []BlockID{1, 2, 3, 900} {
		s.Add(b)
	}
	enc := s.EncodeDelta(nil)
	cases := map[string][]byte{
		"empty":       {},
		"bad-magic":   append([]byte{0x00}, enc[1:]...),
		"bad-version": append([]byte{deltaMagic, 0x7F}, enc[2:]...),
		"truncated":   enc[:len(enc)-1],
		"trailing":    append(append([]byte{}, enc...), 0x00),
	}
	for name, data := range cases {
		if _, err := DecodeDeltaBlocks(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

// FuzzCoverDeltaRoundTrip is the codec's native fuzz target: any
// input that decodes must re-encode to the identical bytes (the
// canonical-form invariant), and the decoded blocks must be strictly
// ascending.
func FuzzCoverDeltaRoundTrip(f *testing.F) {
	seed := &CoverSet{}
	for _, b := range []BlockID{0, 1, 5, 64, 70000, 1 << 20} {
		seed.Add(b)
	}
	f.Add(seed.EncodeDelta(nil))
	run := &CoverSet{}
	for b := BlockID(0); b < 2000; b++ {
		run.Add(b)
	}
	f.Add(run.EncodeDelta(nil))
	f.Add([]byte{deltaMagic, deltaVersion, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		var blocks []BlockID
		prev := -1
		err := DecodeDelta(data, func(b BlockID) {
			if int(b) <= prev {
				t.Fatalf("decoded blocks not ascending: %d after %d", b, prev)
			}
			prev = int(b)
			blocks = append(blocks, b)
		})
		if err != nil {
			return
		}
		s := &CoverSet{}
		for _, b := range blocks {
			s.Add(b)
		}
		if re := s.EncodeDelta(nil); !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical input: %x re-encodes to %x", data, re)
		}
	})
}
