package vkernel

import (
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
)

// Crash is a sanitizer report from the virtual kernel.
type Crash struct {
	// Title is the dedup key, e.g. "kmalloc bug in ctl_ioctl".
	Title string
	Bug   *corpus.Bug
}

// Result is the outcome of executing one program.
type Result struct {
	// Cov lists the basic blocks covered, deduplicated and sorted.
	Cov []BlockID
	// Crash is non-nil if a planted bug fired; execution stops at the
	// crashing call.
	Crash *Crash
	// Errno counts calls that failed (bad fd, unknown command, ...).
	Errno int
}

// exec carries per-program mutable state (one "VM instance"). The
// state is owned by a VM and recycled across runs via reset — the
// coverage bitmap, fd table, and history maps keep their capacity.
type exec struct {
	k   *Kernel
	cov *CoverSet
	// fds maps call index → the handler whose fd that call returned.
	fds []*khandler
	// vmas maps call index → the memory region that call mapped (the
	// mmap region model; munmap consumes entries by result index).
	vmas []vma
	// watches counts live epoll registrations (epoll_wait readiness).
	watches int
	// history records commands issued per handler during this
	// program, for stateful bug preconditions.
	history map[string]map[string]bool
	crash   *Crash
	errs    int
}

// vma is one mapped region in the mmap region model.
type vma struct {
	kh     *khandler
	length uint64
	mapped bool
}

// reset prepares the state for a program of n calls, reusing prior
// allocations.
func (e *exec) reset(n int) {
	e.cov.Clear()
	if cap(e.fds) < n {
		e.fds = make([]*khandler, n)
	} else {
		e.fds = e.fds[:n]
		for i := range e.fds {
			e.fds[i] = nil
		}
	}
	if cap(e.vmas) < n {
		e.vmas = make([]vma, n)
	} else {
		e.vmas = e.vmas[:n]
		for i := range e.vmas {
			e.vmas[i] = vma{}
		}
	}
	e.watches = 0
	for _, m := range e.history {
		clear(m)
	}
	e.crash = nil
	e.errs = 0
}

func (e *exec) cover(blocks ...BlockID) {
	for _, b := range blocks {
		e.cov.Add(b)
	}
}

func (e *exec) record(h *corpus.Handler, op string) {
	m := e.history[h.Name]
	if m == nil {
		m = map[string]bool{}
		e.history[h.Name] = m
	}
	m[op] = true
}

func (e *exec) seen(h *corpus.Handler, ops []string) bool {
	m := e.history[h.Name]
	for _, op := range ops {
		if !m[op] {
			return false
		}
	}
	return true
}

// scalar evaluates an argument to its runtime scalar (resources are
// not scalars here; use fd()).
func scalar(v *prog.Value) uint64 {
	if v == nil {
		return 0
	}
	return v.Scalar
}

// fd resolves a resource argument to the handler its fd belongs to.
func (e *exec) fd(v *prog.Value) *khandler {
	if v == nil || v.Type.Kind != prog.KindResource || v.ResultOf < 0 || v.ResultOf >= len(e.fds) {
		return nil
	}
	return e.fds[v.ResultOf]
}

// blob returns the encoded payload behind a pointer argument.
func blob(v *prog.Value) []byte {
	if v == nil || v.Type.Kind != prog.KindPtr || v.Ptr == nil {
		return nil
	}
	return v.Ptr.Encode()
}

// str returns the string behind a pointer argument.
func str(v *prog.Value) string {
	if v == nil || v.Type.Kind != prog.KindPtr || v.Ptr == nil {
		return ""
	}
	if v.Ptr.Type.Kind == prog.KindString || v.Ptr.Type.Kind == prog.KindBuffer {
		return string(v.Ptr.Data)
	}
	return ""
}

func arg(c *prog.Call, i int) *prog.Value {
	if i < len(c.Args) {
		return c.Args[i]
	}
	return nil
}

func (e *exec) runCall(idx int, c *prog.Call) {
	if g, ok := e.k.genericBlocks[c.Sc.CallName]; ok {
		e.cover(g)
	}
	switch c.Sc.CallName {
	case "openat", "open", "syz_open_dev":
		e.runOpen(idx, c)
	case "socket":
		e.runSocket(idx, c)
	case "ioctl":
		e.runIoctl(idx, c)
	case "setsockopt", "getsockopt":
		e.runSockopt(c)
	case "bind", "connect":
		e.runAddrCall(c, kindOf(c.Sc.CallName))
	case "sendto":
		e.runSendRecv(c, corpus.SockSendto, 4, 5)
	case "recvfrom":
		e.runSendRecv(c, corpus.SockRecvfrom, 4, 5)
	case "sendmsg":
		e.runSimpleSock(c, corpus.SockSendmsg)
	case "recvmsg":
		e.runSimpleSock(c, corpus.SockRecvmsg)
	case "listen":
		e.runSimpleSock(c, corpus.SockListen)
	case "accept":
		e.runAccept(idx, c)
	case "dup", "dup2", "dup3":
		e.runDup(idx, c)
	case "pipe", "pipe2":
		e.runPipe(idx)
	case "epoll_create", "epoll_create1":
		e.runEpollCreate(idx)
	case "epoll_ctl":
		e.runEpollCtl(c)
	case "epoll_wait", "epoll_pwait":
		e.runEpollWait(c)
	case "mmap":
		e.runMmap(idx, c)
	case "munmap":
		e.runMunmap(c)
	case "read", "write":
		e.runReadWrite(c)
	default:
		// close/poll: generic entry only.
	}
}

func kindOf(call string) corpus.SockCallKind {
	if call == "bind" {
		return corpus.SockBind
	}
	return corpus.SockConnect
}

func (e *exec) runOpen(idx int, c *prog.Call) {
	// The path is the first string-pointer argument.
	var path string
	for _, a := range c.Args {
		if s := str(a); s != "" {
			path = s
			break
		}
	}
	kh := e.k.byPath[path]
	if kh == nil {
		e.errs++
		return
	}
	e.cover(kh.open...)
	e.fds[idx] = kh
	e.record(kh.h, "open")
}

func (e *exec) runSocket(idx int, c *prog.Call) {
	domain := int(scalar(arg(c, 0)))
	kh := e.k.byDomain[domain]
	if kh == nil {
		e.errs++
		return
	}
	e.cover(kh.open...)
	e.fds[idx] = kh
	e.record(kh.h, "socket")
}

func (e *exec) runIoctl(idx int, c *prog.Call) {
	kh := e.fd(arg(c, 0))
	if kh == nil {
		e.errs++
		return
	}
	cmdVal := scalar(arg(c, 1))
	kc := kh.cmds[cmdVal]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	e.cover(kc.body...)
	payload := blob(arg(c, 2))
	e.record(kh.h, kc.c.Name)
	e.evalGatesAndBug(kh, kc, payload)
	if e.crash != nil {
		return
	}
	if kc.c.MakesRes != "" {
		child := e.k.byName[kc.c.MakesRes]
		if child != nil {
			e.cover(child.open...)
			e.fds[idx] = child
			e.record(child.h, "open")
		}
	}
}

// evalGatesAndBug decodes payload fields at the ground-truth offsets,
// covers gated blocks whose conditions hold, and fires the planted
// bug when its precondition and trigger are met.
func (e *exec) evalGatesAndBug(kh *khandler, kc *kcmd, payload []byte) {
	for _, g := range kc.gates {
		if kc.layout == nil {
			continue
		}
		v, ok := kc.layout.ReadField(payload, g.g.Field)
		if ok && g.g.Eval(v) {
			e.cover(g.blocks...)
		}
	}
	bug := kc.c.Bug
	if bug == nil {
		return
	}
	if len(bug.PriorCmds) > 0 && !e.seen(kh.h, bug.PriorCmds) {
		return
	}
	if bug.TriggerField != "" {
		if kc.layout == nil {
			return
		}
		v, ok := kc.layout.ReadField(payload, bug.TriggerField)
		if !ok || !bug.Trigger.Eval(v) {
			return
		}
	}
	e.cover(kc.bugBlk)
	e.crash = &Crash{Title: bug.Title, Bug: bug}
}

func (e *exec) runSockopt(c *prog.Call) {
	kh := e.fd(arg(c, 0))
	if kh == nil || kh.h.Kind != corpus.KindSocket {
		e.errs++
		return
	}
	level := int(scalar(arg(c, 1)))
	if level != kh.h.Socket.LevelVal {
		e.errs++
		return
	}
	opt := scalar(arg(c, 2))
	kc := kh.cmds[opt]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	payload := blob(arg(c, 3))
	optlen := scalar(arg(c, 4))
	if kc.layout != nil && int(optlen) < kc.layout.Size {
		// The rendered sockopt worker rejects short optlen before
		// doing any work.
		e.errs++
		return
	}
	e.cover(kc.body...)
	e.record(kh.h, kc.c.Name)
	e.evalGatesAndBug(kh, kc, payload)
}

func (e *exec) runAddrCall(c *prog.Call, kind corpus.SockCallKind) {
	kh := e.fd(arg(c, 0))
	if kh == nil {
		e.errs++
		return
	}
	kc := kh.calls[kind]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	addr := blob(arg(c, 1))
	addrlen := scalar(arg(c, 2))
	if !e.addrValid(kh, kc, addr, addrlen) {
		e.errs++
		return
	}
	e.cover(kc.body...)
	e.record(kh.h, kind.String())
	e.fireSockBug(kh, kc)
}

func (e *exec) runSendRecv(c *prog.Call, kind corpus.SockCallKind, addrIdx, lenIdx int) {
	kh := e.fd(arg(c, 0))
	if kh == nil {
		e.errs++
		return
	}
	kc := kh.calls[kind]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	addr := blob(arg(c, addrIdx))
	addrlen := scalar(arg(c, lenIdx))
	if !e.addrValid(kh, kc, addr, addrlen) {
		e.errs++
		return
	}
	e.cover(kc.body...)
	e.record(kh.h, kind.String())
	e.fireSockBug(kh, kc)
}

func (e *exec) runSimpleSock(c *prog.Call, kind corpus.SockCallKind) {
	kh := e.fd(arg(c, 0))
	if kh == nil {
		e.errs++
		return
	}
	kc := kh.calls[kind]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	e.cover(kc.body...)
	e.record(kh.h, kind.String())
	e.fireSockBug(kh, kc)
}

func (e *exec) runAccept(idx int, c *prog.Call) {
	kh := e.fd(arg(c, 0))
	if kh == nil {
		e.errs++
		return
	}
	kc := kh.calls[corpus.SockAccept]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	e.cover(kc.body...)
	e.fds[idx] = kh
	e.record(kh.h, corpus.SockAccept.String())
}

// Userspace constant values mirrored from the corpus base header
// (include/uapi/base.h).
const (
	protRead     = 1
	protWrite    = 2
	epollCtlAdd  = 1
	epollCtlDel  = 2
	epollCtlMod  = 3
	maxMmapBytes = 1 << 30
)

// runDup duplicates an fd: the new call index aliases the same
// handler, so later calls can drive the device through either fd.
func (e *exec) runDup(idx int, c *prog.Call) {
	kh := e.fd(arg(c, 0))
	if kh == nil {
		e.errs++
		return
	}
	e.cover(kh.dupBlk)
	e.fds[idx] = kh
}

// runPipe creates a pipe fd backed by the builtin pipe
// pseudo-handler.
func (e *exec) runPipe(idx int) {
	e.cover(e.k.pipe.open...)
	e.fds[idx] = e.k.pipe
	e.record(e.k.pipe.h, "pipe")
}

// runEpollCreate creates an epoll instance fd.
func (e *exec) runEpollCreate(idx int) {
	e.cover(e.k.epoll.open...)
	e.fds[idx] = e.k.epoll
	e.record(e.k.epoll.h, "epoll_create")
}

// runEpollCtl registers, modifies, or removes a watch. Registering a
// handler-backed fd covers the handler's poll-registration block —
// per-handler territory only reachable through the epoll surface.
func (e *exec) runEpollCtl(c *prog.Call) {
	ep := e.fd(arg(c, 0))
	if ep != e.k.epoll || ep == nil {
		e.errs++
		return
	}
	op := scalar(arg(c, 1))
	target := e.fd(arg(c, 2))
	if target == nil {
		e.errs++
		return
	}
	switch op {
	case epollCtlAdd:
		e.cover(e.k.plumb["epoll_add"])
		e.cover(target.epollBlk)
		e.watches++
	case epollCtlDel:
		if e.watches == 0 {
			e.errs++
			return
		}
		e.cover(e.k.plumb["epoll_del"])
		e.watches--
	case epollCtlMod:
		if e.watches == 0 {
			e.errs++
			return
		}
		e.cover(e.k.plumb["epoll_mod"])
	default:
		e.errs++
	}
}

// runEpollWait polls the instance; the ready path needs at least one
// live watch.
func (e *exec) runEpollWait(c *prog.Call) {
	ep := e.fd(arg(c, 0))
	if ep != e.k.epoll || ep == nil {
		e.errs++
		return
	}
	e.cover(e.k.plumb["epoll_wait"])
	if e.watches > 0 {
		e.cover(e.k.plumb["epoll_ready"])
	}
}

// runMmap maps a region of a mappable handler's device:
// mmap(addr, len, prot, flags, fd, off). The validate path rejects
// empty and oversized lengths; the fault path covers blocks gated on
// protection bits and page alignment, and a successful mapping enters
// the region table for munmap.
func (e *exec) runMmap(idx int, c *prog.Call) {
	kh := e.fd(arg(c, 4))
	if kh == nil || !kh.mappable {
		// Unmappable device (or bad fd): generic entry only.
		e.errs++
		return
	}
	e.cover(kh.mmapEntry)
	length := scalar(arg(c, 1))
	if length == 0 || length > maxMmapBytes {
		e.errs++
		return
	}
	prot := scalar(arg(c, 2))
	body := kh.mmapBody
	e.cover(body[0])
	gates := []bool{
		prot&protRead != 0,
		prot&protWrite != 0,
		length%4096 == 0,
		length >= 1<<20,
	}
	for i, ok := range gates {
		if ok && i+1 < len(body) {
			e.cover(body[i+1])
		}
	}
	// Body blocks beyond the gated prefix are the unconditional tail
	// of the fault path: every successful mapping reaches them (no
	// block is allocated that no input can cover).
	for i := len(gates) + 1; i < len(body); i++ {
		e.cover(body[i])
	}
	e.vmas[idx] = vma{kh: kh, length: length, mapped: true}
	e.record(kh.h, "mmap")
}

// runMunmap tears down a mapping: munmap(map, len). The map argument
// is the resource produced by an earlier mmap; unmapping twice is an
// error.
func (e *exec) runMunmap(c *prog.Call) {
	v := arg(c, 0)
	if v == nil || v.Type.Kind != prog.KindResource || v.ResultOf < 0 || v.ResultOf >= len(e.vmas) {
		e.errs++
		return
	}
	region := &e.vmas[v.ResultOf]
	if !region.mapped {
		e.errs++
		return
	}
	region.mapped = false
	e.cover(region.kh.munmapBlk)
	e.record(region.kh.h, "munmap")
}

// runReadWrite models pipe I/O; on any other fd the generic entry
// block is all there is (matching the historical behavior).
func (e *exec) runReadWrite(c *prog.Call) {
	if kh := e.fd(arg(c, 0)); kh == e.k.pipe && kh != nil {
		if c.Sc.CallName == "read" {
			e.cover(e.k.plumb["pipe_read"])
		} else {
			e.cover(e.k.plumb["pipe_write"])
		}
		e.record(kh.h, c.Sc.CallName)
	}
}

// addrValid models the kernel's sockaddr validation: length at least
// the family's address size and the family field (offset 0, u16)
// matching the domain.
func (e *exec) addrValid(kh *khandler, kc *kcall, addr []byte, addrlen uint64) bool {
	if kc.layout == nil {
		return true
	}
	if int(addrlen) < kc.layout.Size || len(addr) < 2 {
		return false
	}
	fam := uint64(addr[0]) | uint64(addr[1])<<8
	return fam == uint64(kh.h.Socket.DomainVal) || fam == 0
}

func (e *exec) fireSockBug(kh *khandler, kc *kcall) {
	bug := kc.sc.Bug
	if bug == nil {
		return
	}
	if len(bug.PriorCmds) > 0 && !e.seen(kh.h, bug.PriorCmds) {
		return
	}
	e.crash = &Crash{Title: bug.Title, Bug: bug}
}
