package vkernel

import (
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
)

// Crash is a sanitizer report from the virtual kernel.
type Crash struct {
	// Title is the dedup key, e.g. "kmalloc bug in ctl_ioctl".
	Title string
	Bug   *corpus.Bug
}

// Result is the outcome of executing one program.
type Result struct {
	// Cov lists the basic blocks covered, deduplicated and sorted.
	Cov []BlockID
	// Crash is non-nil if a planted bug fired; execution stops at the
	// crashing call.
	Crash *Crash
	// Errno counts calls that failed (bad fd, unknown command, ...).
	Errno int
}

// exec carries per-program mutable state (one "VM instance"). The
// state is owned by a VM and recycled across runs via reset — the
// coverage bitmap, fd table, and history bitset keep their capacity.
type exec struct {
	k   *Kernel
	cov *CoverSet
	// fds maps call index → the handler whose fd that call returned.
	fds []*khandler
	// vmas maps call index → the memory region that call mapped (the
	// mmap region model; munmap consumes entries by result index).
	vmas []vma
	// watches counts live epoll registrations (epoll_wait readiness).
	watches int
	// hist is the per-program operation history, one bit per
	// (handler, operation) pair as assigned at kernel build, for
	// stateful bug preconditions.
	hist  []uint64
	crash *Crash
	errs  int
}

// vma is one mapped region in the mmap region model.
type vma struct {
	kh     *khandler
	length uint64
	mapped bool
}

// reset prepares the state for a program of n calls, reusing prior
// allocations.
func (e *exec) reset(n int) {
	e.cov.Clear()
	if cap(e.fds) < n {
		e.fds = make([]*khandler, n)
	} else {
		e.fds = e.fds[:n]
		for i := range e.fds {
			e.fds[i] = nil
		}
	}
	if cap(e.vmas) < n {
		e.vmas = make([]vma, n)
	} else {
		e.vmas = e.vmas[:n]
		for i := range e.vmas {
			e.vmas[i] = vma{}
		}
	}
	e.watches = 0
	clear(e.hist)
	e.crash = nil
	e.errs = 0
}

func (e *exec) cover(blocks ...BlockID) {
	for _, b := range blocks {
		e.cov.Add(b)
	}
}

// rec marks one history bit (a handler/operation pair).
func (e *exec) rec(bit uint32) {
	e.hist[bit>>6] |= 1 << (bit & 63)
}

// seenBits reports whether every bit in bits is recorded.
func (e *exec) seenBits(bits []uint32) bool {
	for _, b := range bits {
		if e.hist[b>>6]&(1<<(b&63)) == 0 {
			return false
		}
	}
	return true
}

// scalar evaluates an argument to its runtime scalar (resources are
// not scalars here; use fd()).
func scalar(v *prog.Value) uint64 {
	if v == nil {
		return 0
	}
	return v.Scalar
}

// blob returns the encoded payload behind a pointer argument.
func blob(v *prog.Value) []byte {
	if v == nil || v.Type.Kind != prog.KindPtr || v.Ptr == nil {
		return nil
	}
	return v.Ptr.Encode()
}

// str returns the string behind a pointer argument.
func str(v *prog.Value) string {
	if v == nil || v.Type.Kind != prog.KindPtr || v.Ptr == nil {
		return ""
	}
	if v.Ptr.Type.Kind == prog.KindString || v.Ptr.Type.Kind == prog.KindBuffer {
		return string(v.Ptr.Data)
	}
	return ""
}

// callView is the engine's uniform view of one call: either a rich
// *prog.Call (interpreted mode — arguments evaluated on demand,
// pointer payloads encoded per run) or a compiled *prog.ExecCall
// (arguments pre-evaluated, payloads pre-encoded). Exactly one of
// c/ec is non-nil; the handlers below are the single semantics shared
// by both paths, so compiled-vs-interpreted equivalence holds by
// construction.
type callView struct {
	sc *prog.Syscall
	c  *prog.Call
	ec *prog.ExecCall
}

// scalar returns argument i's immediate value (0 when absent).
func (cv callView) scalar(i int) uint64 {
	if cv.ec != nil {
		if i < len(cv.ec.Args) {
			return cv.ec.Args[i].Scalar
		}
		return 0
	}
	if i < len(cv.c.Args) {
		return scalar(cv.c.Args[i])
	}
	return 0
}

// res returns argument i's resource binding (the producing call
// index), or -1 when the argument is absent, not a resource, or
// unbound.
func (cv callView) res(i int) int {
	if cv.ec != nil {
		if i < len(cv.ec.Args) {
			return int(cv.ec.Args[i].Res)
		}
		return -1
	}
	if i < len(cv.c.Args) {
		if v := cv.c.Args[i]; v != nil && v.Type.Kind == prog.KindResource {
			return v.ResultOf
		}
	}
	return -1
}

// blob returns argument i's encoded pointee payload (nil when absent
// or not a pointer).
func (cv callView) blob(i int) []byte {
	if cv.ec != nil {
		if i < len(cv.ec.Args) {
			return cv.ec.Args[i].Blob
		}
		return nil
	}
	if i < len(cv.c.Args) {
		return blob(cv.c.Args[i])
	}
	return nil
}

// fdAt resolves argument i's resource binding to the handler whose fd
// that call returned.
func (e *exec) fdAt(cv callView, i int) *khandler {
	r := cv.res(i)
	if r < 0 || r >= len(e.fds) {
		return nil
	}
	return e.fds[r]
}

// runCall executes one interpreted call: generic entry block, lazy
// handler resolution for open/socket, then shared dispatch.
func (e *exec) runCall(idx int, c *prog.Call) {
	if g, ok := e.k.genericBlocks[c.Sc.CallName]; ok {
		e.cover(g)
	}
	op := opOf[c.Sc.CallName]
	cv := callView{sc: c.Sc, c: c}
	var kh *khandler
	switch op {
	case opOpen:
		// The path is the first string-pointer argument.
		var path string
		for _, a := range c.Args {
			if s := str(a); s != "" {
				path = s
				break
			}
		}
		kh = e.k.byPath[path]
	case opSocket:
		kh = e.k.byDomain[int(cv.scalar(0))]
	}
	e.dispatch(idx, op, kh, cv)
}

// dispatch routes one call (interpreted or compiled) to its handler
// implementation. kh is the pre-resolved target handler for
// open/socket opcodes (nil = no such device/domain) and unused
// otherwise.
func (e *exec) dispatch(idx int, op exop, kh *khandler, cv callView) {
	switch op {
	case opOpen:
		e.runOpen(idx, kh)
	case opSocket:
		e.runSocket(idx, kh)
	case opIoctl:
		e.runIoctl(idx, cv)
	case opSockopt:
		e.runSockopt(cv)
	case opBind:
		e.runAddrCall(cv, corpus.SockBind)
	case opConnect:
		e.runAddrCall(cv, corpus.SockConnect)
	case opSendto:
		e.runSendRecv(cv, corpus.SockSendto, 4, 5)
	case opRecvfrom:
		e.runSendRecv(cv, corpus.SockRecvfrom, 4, 5)
	case opSendmsg:
		e.runSimpleSock(cv, corpus.SockSendmsg)
	case opRecvmsg:
		e.runSimpleSock(cv, corpus.SockRecvmsg)
	case opListen:
		e.runSimpleSock(cv, corpus.SockListen)
	case opAccept:
		e.runAccept(idx, cv)
	case opDup:
		e.runDup(idx, cv)
	case opPipe:
		e.runPipe(idx)
	case opEpollCreate:
		e.runEpollCreate(idx)
	case opEpollCtl:
		e.runEpollCtl(cv)
	case opEpollWait:
		e.runEpollWait(cv)
	case opMmap:
		e.runMmap(idx, cv)
	case opMunmap:
		e.runMunmap(cv)
	case opReadWrite:
		e.runReadWrite(cv)
	default:
		// close/poll: generic entry only.
	}
}

func (e *exec) runOpen(idx int, kh *khandler) {
	if kh == nil {
		e.errs++
		return
	}
	e.cover(kh.open...)
	e.fds[idx] = kh
	e.rec(kh.openBit)
}

func (e *exec) runSocket(idx int, kh *khandler) {
	if kh == nil {
		e.errs++
		return
	}
	e.cover(kh.open...)
	e.fds[idx] = kh
	e.rec(kh.socketBit)
}

func (e *exec) runIoctl(idx int, cv callView) {
	kh := e.fdAt(cv, 0)
	if kh == nil {
		e.errs++
		return
	}
	cmdVal := cv.scalar(1)
	kc := kh.cmds[cmdVal]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	e.cover(kc.body...)
	payload := cv.blob(2)
	e.rec(kc.recBit)
	e.evalGatesAndBug(kc, payload)
	if e.crash != nil {
		return
	}
	if kc.c.MakesRes != "" {
		child := e.k.byName[kc.c.MakesRes]
		if child != nil {
			e.cover(child.open...)
			e.fds[idx] = child
			e.rec(child.openBit)
		}
	}
}

// evalGatesAndBug decodes payload fields at the ground-truth offsets,
// covers gated blocks whose conditions hold, and fires the planted
// bug when its precondition and trigger are met.
func (e *exec) evalGatesAndBug(kc *kcmd, payload []byte) {
	for _, g := range kc.gates {
		if kc.layout == nil {
			continue
		}
		v, ok := kc.layout.ReadField(payload, g.g.Field)
		if ok && g.g.Eval(v) {
			e.cover(g.blocks...)
		}
	}
	bug := kc.c.Bug
	if bug == nil {
		return
	}
	if kc.priorImpossible || !e.seenBits(kc.prior) {
		return
	}
	if bug.TriggerField != "" {
		if kc.layout == nil {
			return
		}
		v, ok := kc.layout.ReadField(payload, bug.TriggerField)
		if !ok || !bug.Trigger.Eval(v) {
			return
		}
	}
	e.cover(kc.bugBlk)
	e.crash = &Crash{Title: bug.Title, Bug: bug}
}

func (e *exec) runSockopt(cv callView) {
	kh := e.fdAt(cv, 0)
	if kh == nil || kh.h.Kind != corpus.KindSocket {
		e.errs++
		return
	}
	level := int(cv.scalar(1))
	if level != kh.h.Socket.LevelVal {
		e.errs++
		return
	}
	opt := cv.scalar(2)
	kc := kh.cmds[opt]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	payload := cv.blob(3)
	optlen := cv.scalar(4)
	if kc.layout != nil && int(optlen) < kc.layout.Size {
		// The rendered sockopt worker rejects short optlen before
		// doing any work.
		e.errs++
		return
	}
	e.cover(kc.body...)
	e.rec(kc.recBit)
	e.evalGatesAndBug(kc, payload)
}

func (e *exec) runAddrCall(cv callView, kind corpus.SockCallKind) {
	kh := e.fdAt(cv, 0)
	if kh == nil {
		e.errs++
		return
	}
	kc := kh.calls[kind]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	addr := cv.blob(1)
	addrlen := cv.scalar(2)
	if !e.addrValid(kh, kc, addr, addrlen) {
		e.errs++
		return
	}
	e.cover(kc.body...)
	e.rec(kc.recBit)
	e.fireSockBug(kc)
}

func (e *exec) runSendRecv(cv callView, kind corpus.SockCallKind, addrIdx, lenIdx int) {
	kh := e.fdAt(cv, 0)
	if kh == nil {
		e.errs++
		return
	}
	kc := kh.calls[kind]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	addr := cv.blob(addrIdx)
	addrlen := cv.scalar(lenIdx)
	if !e.addrValid(kh, kc, addr, addrlen) {
		e.errs++
		return
	}
	e.cover(kc.body...)
	e.rec(kc.recBit)
	e.fireSockBug(kc)
}

func (e *exec) runSimpleSock(cv callView, kind corpus.SockCallKind) {
	kh := e.fdAt(cv, 0)
	if kh == nil {
		e.errs++
		return
	}
	kc := kh.calls[kind]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	e.cover(kc.body...)
	e.rec(kc.recBit)
	e.fireSockBug(kc)
}

func (e *exec) runAccept(idx int, cv callView) {
	kh := e.fdAt(cv, 0)
	if kh == nil {
		e.errs++
		return
	}
	kc := kh.calls[corpus.SockAccept]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	e.cover(kc.body...)
	e.fds[idx] = kh
	e.rec(kc.recBit)
}

// Userspace constant values mirrored from the corpus base header
// (include/uapi/base.h).
const (
	protRead     = 1
	protWrite    = 2
	epollCtlAdd  = 1
	epollCtlDel  = 2
	epollCtlMod  = 3
	maxMmapBytes = 1 << 30
)

// runDup duplicates an fd: the new call index aliases the same
// handler, so later calls can drive the device through either fd.
func (e *exec) runDup(idx int, cv callView) {
	kh := e.fdAt(cv, 0)
	if kh == nil {
		e.errs++
		return
	}
	e.cover(kh.dupBlk)
	e.fds[idx] = kh
}

// runPipe creates a pipe fd backed by the builtin pipe
// pseudo-handler.
func (e *exec) runPipe(idx int) {
	e.cover(e.k.pipe.open...)
	e.fds[idx] = e.k.pipe
	e.rec(e.k.pipe.pipeBit)
}

// runEpollCreate creates an epoll instance fd.
func (e *exec) runEpollCreate(idx int) {
	e.cover(e.k.epoll.open...)
	e.fds[idx] = e.k.epoll
	e.rec(e.k.epoll.epollCreateBit)
}

// runEpollCtl registers, modifies, or removes a watch. Registering a
// handler-backed fd covers the handler's poll-registration block —
// per-handler territory only reachable through the epoll surface.
func (e *exec) runEpollCtl(cv callView) {
	ep := e.fdAt(cv, 0)
	if ep != e.k.epoll || ep == nil {
		e.errs++
		return
	}
	op := cv.scalar(1)
	target := e.fdAt(cv, 2)
	if target == nil {
		e.errs++
		return
	}
	switch op {
	case epollCtlAdd:
		e.cover(e.k.plumb["epoll_add"])
		e.cover(target.epollBlk)
		e.watches++
	case epollCtlDel:
		if e.watches == 0 {
			e.errs++
			return
		}
		e.cover(e.k.plumb["epoll_del"])
		e.watches--
	case epollCtlMod:
		if e.watches == 0 {
			e.errs++
			return
		}
		e.cover(e.k.plumb["epoll_mod"])
	default:
		e.errs++
	}
}

// runEpollWait polls the instance; the ready path needs at least one
// live watch.
func (e *exec) runEpollWait(cv callView) {
	ep := e.fdAt(cv, 0)
	if ep != e.k.epoll || ep == nil {
		e.errs++
		return
	}
	e.cover(e.k.plumb["epoll_wait"])
	if e.watches > 0 {
		e.cover(e.k.plumb["epoll_ready"])
	}
}

// runMmap maps a region of a mappable handler's device:
// mmap(addr, len, prot, flags, fd, off). The validate path rejects
// empty and oversized lengths; the fault path covers blocks gated on
// protection bits and page alignment, and a successful mapping enters
// the region table for munmap.
func (e *exec) runMmap(idx int, cv callView) {
	kh := e.fdAt(cv, 4)
	if kh == nil || !kh.mappable {
		// Unmappable device (or bad fd): generic entry only.
		e.errs++
		return
	}
	e.cover(kh.mmapEntry)
	length := cv.scalar(1)
	if length == 0 || length > maxMmapBytes {
		e.errs++
		return
	}
	prot := cv.scalar(2)
	body := kh.mmapBody
	e.cover(body[0])
	gates := [4]bool{
		prot&protRead != 0,
		prot&protWrite != 0,
		length%4096 == 0,
		length >= 1<<20,
	}
	for i, ok := range gates {
		if ok && i+1 < len(body) {
			e.cover(body[i+1])
		}
	}
	// Body blocks beyond the gated prefix are the unconditional tail
	// of the fault path: every successful mapping reaches them (no
	// block is allocated that no input can cover).
	for i := len(gates) + 1; i < len(body); i++ {
		e.cover(body[i])
	}
	e.vmas[idx] = vma{kh: kh, length: length, mapped: true}
	e.rec(kh.mmapBit)
}

// runMunmap tears down a mapping: munmap(map, len). The map argument
// is the resource produced by an earlier mmap; unmapping twice is an
// error.
func (e *exec) runMunmap(cv callView) {
	r := cv.res(0)
	if r < 0 || r >= len(e.vmas) {
		e.errs++
		return
	}
	region := &e.vmas[r]
	if !region.mapped {
		e.errs++
		return
	}
	region.mapped = false
	e.cover(region.kh.munmapBlk)
	e.rec(region.kh.munmapBit)
}

// runReadWrite models pipe I/O; on any other fd the generic entry
// block is all there is (matching the historical behavior).
func (e *exec) runReadWrite(cv callView) {
	if kh := e.fdAt(cv, 0); kh == e.k.pipe && kh != nil {
		if cv.sc.CallName == "read" {
			e.cover(e.k.plumb["pipe_read"])
			e.rec(kh.readBit)
		} else {
			e.cover(e.k.plumb["pipe_write"])
			e.rec(kh.writeBit)
		}
	}
}

// addrValid models the kernel's sockaddr validation: length at least
// the family's address size and the family field (offset 0, u16)
// matching the domain.
func (e *exec) addrValid(kh *khandler, kc *kcall, addr []byte, addrlen uint64) bool {
	if kc.layout == nil {
		return true
	}
	if int(addrlen) < kc.layout.Size || len(addr) < 2 {
		return false
	}
	fam := uint64(addr[0]) | uint64(addr[1])<<8
	return fam == uint64(kh.h.Socket.DomainVal) || fam == 0
}

func (e *exec) fireSockBug(kc *kcall) {
	bug := kc.sc.Bug
	if bug == nil {
		return
	}
	if kc.priorImpossible || !e.seenBits(kc.prior) {
		return
	}
	e.crash = &Crash{Title: bug.Title, Bug: bug}
}
