package vkernel

import (
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
)

// Crash is a sanitizer report from the virtual kernel.
type Crash struct {
	// Title is the dedup key, e.g. "kmalloc bug in ctl_ioctl".
	Title string
	Bug   *corpus.Bug
}

// Result is the outcome of executing one program.
type Result struct {
	// Cov lists the basic blocks covered, deduplicated and sorted.
	Cov []BlockID
	// Crash is non-nil if a planted bug fired; execution stops at the
	// crashing call.
	Crash *Crash
	// Errno counts calls that failed (bad fd, unknown command, ...).
	Errno int
}

// exec carries per-program mutable state (one "VM instance"). The
// state is owned by a VM and recycled across runs via reset — the
// coverage bitmap, fd table, and history maps keep their capacity.
type exec struct {
	k   *Kernel
	cov *CoverSet
	// fds maps call index → the handler whose fd that call returned.
	fds []*khandler
	// history records commands issued per handler during this
	// program, for stateful bug preconditions.
	history map[string]map[string]bool
	crash   *Crash
	errs    int
}

// reset prepares the state for a program of n calls, reusing prior
// allocations.
func (e *exec) reset(n int) {
	e.cov.Clear()
	if cap(e.fds) < n {
		e.fds = make([]*khandler, n)
	} else {
		e.fds = e.fds[:n]
		for i := range e.fds {
			e.fds[i] = nil
		}
	}
	for _, m := range e.history {
		clear(m)
	}
	e.crash = nil
	e.errs = 0
}

func (e *exec) cover(blocks ...BlockID) {
	for _, b := range blocks {
		e.cov.Add(b)
	}
}

func (e *exec) record(h *corpus.Handler, op string) {
	m := e.history[h.Name]
	if m == nil {
		m = map[string]bool{}
		e.history[h.Name] = m
	}
	m[op] = true
}

func (e *exec) seen(h *corpus.Handler, ops []string) bool {
	m := e.history[h.Name]
	for _, op := range ops {
		if !m[op] {
			return false
		}
	}
	return true
}

// scalar evaluates an argument to its runtime scalar (resources are
// not scalars here; use fd()).
func scalar(v *prog.Value) uint64 {
	if v == nil {
		return 0
	}
	return v.Scalar
}

// fd resolves a resource argument to the handler its fd belongs to.
func (e *exec) fd(v *prog.Value) *khandler {
	if v == nil || v.Type.Kind != prog.KindResource || v.ResultOf < 0 || v.ResultOf >= len(e.fds) {
		return nil
	}
	return e.fds[v.ResultOf]
}

// blob returns the encoded payload behind a pointer argument.
func blob(v *prog.Value) []byte {
	if v == nil || v.Type.Kind != prog.KindPtr || v.Ptr == nil {
		return nil
	}
	return v.Ptr.Encode()
}

// str returns the string behind a pointer argument.
func str(v *prog.Value) string {
	if v == nil || v.Type.Kind != prog.KindPtr || v.Ptr == nil {
		return ""
	}
	if v.Ptr.Type.Kind == prog.KindString || v.Ptr.Type.Kind == prog.KindBuffer {
		return string(v.Ptr.Data)
	}
	return ""
}

func arg(c *prog.Call, i int) *prog.Value {
	if i < len(c.Args) {
		return c.Args[i]
	}
	return nil
}

func (e *exec) runCall(idx int, c *prog.Call) {
	if g, ok := e.k.genericBlocks[c.Sc.CallName]; ok {
		e.cover(g)
	}
	switch c.Sc.CallName {
	case "openat", "open", "syz_open_dev":
		e.runOpen(idx, c)
	case "socket":
		e.runSocket(idx, c)
	case "ioctl":
		e.runIoctl(idx, c)
	case "setsockopt", "getsockopt":
		e.runSockopt(c)
	case "bind", "connect":
		e.runAddrCall(c, kindOf(c.Sc.CallName))
	case "sendto":
		e.runSendRecv(c, corpus.SockSendto, 4, 5)
	case "recvfrom":
		e.runSendRecv(c, corpus.SockRecvfrom, 4, 5)
	case "sendmsg":
		e.runSimpleSock(c, corpus.SockSendmsg)
	case "recvmsg":
		e.runSimpleSock(c, corpus.SockRecvmsg)
	case "listen":
		e.runSimpleSock(c, corpus.SockListen)
	case "accept":
		e.runAccept(idx, c)
	default:
		// read/write/close/mmap/poll: generic entry only.
	}
}

func kindOf(call string) corpus.SockCallKind {
	if call == "bind" {
		return corpus.SockBind
	}
	return corpus.SockConnect
}

func (e *exec) runOpen(idx int, c *prog.Call) {
	// The path is the first string-pointer argument.
	var path string
	for _, a := range c.Args {
		if s := str(a); s != "" {
			path = s
			break
		}
	}
	kh := e.k.byPath[path]
	if kh == nil {
		e.errs++
		return
	}
	e.cover(kh.open...)
	e.fds[idx] = kh
	e.record(kh.h, "open")
}

func (e *exec) runSocket(idx int, c *prog.Call) {
	domain := int(scalar(arg(c, 0)))
	kh := e.k.byDomain[domain]
	if kh == nil {
		e.errs++
		return
	}
	e.cover(kh.open...)
	e.fds[idx] = kh
	e.record(kh.h, "socket")
}

func (e *exec) runIoctl(idx int, c *prog.Call) {
	kh := e.fd(arg(c, 0))
	if kh == nil {
		e.errs++
		return
	}
	cmdVal := scalar(arg(c, 1))
	kc := kh.cmds[cmdVal]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	e.cover(kc.body...)
	payload := blob(arg(c, 2))
	e.record(kh.h, kc.c.Name)
	e.evalGatesAndBug(kh, kc, payload)
	if e.crash != nil {
		return
	}
	if kc.c.MakesRes != "" {
		child := e.k.byName[kc.c.MakesRes]
		if child != nil {
			e.cover(child.open...)
			e.fds[idx] = child
			e.record(child.h, "open")
		}
	}
}

// evalGatesAndBug decodes payload fields at the ground-truth offsets,
// covers gated blocks whose conditions hold, and fires the planted
// bug when its precondition and trigger are met.
func (e *exec) evalGatesAndBug(kh *khandler, kc *kcmd, payload []byte) {
	for _, g := range kc.gates {
		if kc.layout == nil {
			continue
		}
		v, ok := kc.layout.ReadField(payload, g.g.Field)
		if ok && g.g.Eval(v) {
			e.cover(g.blocks...)
		}
	}
	bug := kc.c.Bug
	if bug == nil {
		return
	}
	if len(bug.PriorCmds) > 0 && !e.seen(kh.h, bug.PriorCmds) {
		return
	}
	if bug.TriggerField != "" {
		if kc.layout == nil {
			return
		}
		v, ok := kc.layout.ReadField(payload, bug.TriggerField)
		if !ok || !bug.Trigger.Eval(v) {
			return
		}
	}
	e.cover(kc.bugBlk)
	e.crash = &Crash{Title: bug.Title, Bug: bug}
}

func (e *exec) runSockopt(c *prog.Call) {
	kh := e.fd(arg(c, 0))
	if kh == nil || kh.h.Kind != corpus.KindSocket {
		e.errs++
		return
	}
	level := int(scalar(arg(c, 1)))
	if level != kh.h.Socket.LevelVal {
		e.errs++
		return
	}
	opt := scalar(arg(c, 2))
	kc := kh.cmds[opt]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	payload := blob(arg(c, 3))
	optlen := scalar(arg(c, 4))
	if kc.layout != nil && int(optlen) < kc.layout.Size {
		// The rendered sockopt worker rejects short optlen before
		// doing any work.
		e.errs++
		return
	}
	e.cover(kc.body...)
	e.record(kh.h, kc.c.Name)
	e.evalGatesAndBug(kh, kc, payload)
}

func (e *exec) runAddrCall(c *prog.Call, kind corpus.SockCallKind) {
	kh := e.fd(arg(c, 0))
	if kh == nil {
		e.errs++
		return
	}
	kc := kh.calls[kind]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	addr := blob(arg(c, 1))
	addrlen := scalar(arg(c, 2))
	if !e.addrValid(kh, kc, addr, addrlen) {
		e.errs++
		return
	}
	e.cover(kc.body...)
	e.record(kh.h, kind.String())
	e.fireSockBug(kh, kc)
}

func (e *exec) runSendRecv(c *prog.Call, kind corpus.SockCallKind, addrIdx, lenIdx int) {
	kh := e.fd(arg(c, 0))
	if kh == nil {
		e.errs++
		return
	}
	kc := kh.calls[kind]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	addr := blob(arg(c, addrIdx))
	addrlen := scalar(arg(c, lenIdx))
	if !e.addrValid(kh, kc, addr, addrlen) {
		e.errs++
		return
	}
	e.cover(kc.body...)
	e.record(kh.h, kind.String())
	e.fireSockBug(kh, kc)
}

func (e *exec) runSimpleSock(c *prog.Call, kind corpus.SockCallKind) {
	kh := e.fd(arg(c, 0))
	if kh == nil {
		e.errs++
		return
	}
	kc := kh.calls[kind]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	e.cover(kc.body...)
	e.record(kh.h, kind.String())
	e.fireSockBug(kh, kc)
}

func (e *exec) runAccept(idx int, c *prog.Call) {
	kh := e.fd(arg(c, 0))
	if kh == nil {
		e.errs++
		return
	}
	kc := kh.calls[corpus.SockAccept]
	if kc == nil {
		e.errs++
		return
	}
	e.cover(kc.entry)
	e.cover(kc.body...)
	e.fds[idx] = kh
	e.record(kh.h, corpus.SockAccept.String())
}

// addrValid models the kernel's sockaddr validation: length at least
// the family's address size and the family field (offset 0, u16)
// matching the domain.
func (e *exec) addrValid(kh *khandler, kc *kcall, addr []byte, addrlen uint64) bool {
	if kc.layout == nil {
		return true
	}
	if int(addrlen) < kc.layout.Size || len(addr) < 2 {
		return false
	}
	fam := uint64(addr[0]) | uint64(addr[1])<<8
	return fam == uint64(kh.h.Socket.DomainVal) || fam == 0
}

func (e *exec) fireSockBug(kh *khandler, kc *kcall) {
	bug := kc.sc.Bug
	if bug == nil {
		return
	}
	if len(bug.PriorCmds) > 0 && !e.seen(kh.h, bug.PriorCmds) {
		return
	}
	e.crash = &Crash{Title: bug.Title, Bug: bug}
}
