package vkernel

import (
	"kernelgpt/internal/prog"
)

// Executor runs one program at a time and reports its outcome. It is
// the seam between the fuzzing loop and the execution substrate: the
// virtual kernel implements it twice (*Kernel for shared concurrent
// use, *VM for single-goroutine reuse), and alternative backends —
// other kernel images, a real-executor bridge, a record/replay shim —
// can slot in behind the same interface.
//
// Run must be deterministic for a given program, and the returned
// Result must not alias executor-internal state (callers retain it
// across subsequent runs).
type Executor interface {
	Run(p *prog.Prog) *Result
}

// VM is a reusable executor: one virtual machine instance whose
// per-program state (coverage bitmap, fd table, command history) is
// allocated once and recycled across runs. This is the fuzzing hot
// path — a campaign executes every program on one VM instead of
// allocating fresh maps per execution.
//
// A VM is not safe for concurrent use; run one VM per goroutine (or
// use Kernel.Run, which pools VMs internally).
type VM struct {
	st exec
}

// NewVM returns a fresh executor VM backed by the kernel image.
func (k *Kernel) NewVM() *VM {
	return &VM{st: exec{
		k:       k,
		cov:     NewCoverSet(k.NumBlocks()),
		history: map[string]map[string]bool{},
	}}
}

// Run executes a program, recycling the VM's exec state. Execution is
// deterministic; the Result is freshly allocated and safe to retain.
func (v *VM) Run(p *prog.Prog) *Result {
	e := &v.st
	e.reset(len(p.Calls))
	for i, c := range p.Calls {
		e.runCall(i, c)
		if e.crash != nil {
			break
		}
	}
	return &Result{Cov: e.cov.Blocks(), Crash: e.crash, Errno: e.errs}
}

var _ Executor = (*VM)(nil)
var _ Executor = (*Kernel)(nil)

// Run executes a program against the kernel and reports coverage and
// crashes. It is safe for concurrent use: each call borrows a pooled
// VM, so the per-program state is still recycled rather than
// reallocated. Callers running a tight single-goroutine loop should
// hold their own VM via NewVM and skip the pool round-trip.
func (k *Kernel) Run(p *prog.Prog) *Result {
	v, _ := k.vms.Get().(*VM)
	if v == nil {
		v = k.NewVM()
	}
	res := v.Run(p)
	k.vms.Put(v)
	return res
}
