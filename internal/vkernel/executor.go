package vkernel

import (
	"kernelgpt/internal/prog"
)

// Executor runs one program at a time and reports its outcome. It is
// the seam between the fuzzing loop and the execution substrate: the
// virtual kernel implements it twice (*Kernel for shared concurrent
// use, *VM for single-goroutine reuse), and alternative backends —
// other kernel images, a real-executor bridge, a record/replay shim —
// can slot in behind the same interface.
//
// Run must be deterministic for a given program, and the returned
// Result must not alias executor-internal state (callers retain it
// across subsequent runs).
type Executor interface {
	Run(p *prog.Prog) *Result
}

// VM is a reusable executor: one virtual machine instance whose
// per-program state (coverage bitmap, fd table, command history) is
// allocated once and recycled across runs. This is the fuzzing hot
// path — a campaign executes every program on one VM instead of
// allocating fresh maps per execution.
//
// Beyond the interpreted Run, a VM executes compiled programs
// (prog.ExecProg) via RunCompiled/RunBatch with zero allocations on
// the non-crash path: coverage stays in the VM's internal CoverSet
// (Cover/AppendCover) and results go into caller-provided buffers.
//
// A VM is not safe for concurrent use; run one VM per goroutine (or
// use Kernel.Run, which pools VMs internally). A compiled program's
// resolution cache is owned by whichever VM ran it last, so an
// ExecProg must not be shared across concurrently running VMs either.
type VM struct {
	st exec
}

// NewVM returns a fresh executor VM backed by the kernel image.
func (k *Kernel) NewVM() *VM {
	return &VM{st: exec{
		k:    k,
		cov:  NewCoverSet(k.NumBlocks()),
		hist: make([]uint64, k.histWords),
	}}
}

// Run executes a program, recycling the VM's exec state. Execution is
// deterministic; the Result is freshly allocated and safe to retain.
func (v *VM) Run(p *prog.Prog) *Result {
	e := &v.st
	e.reset(len(p.Calls))
	for i, c := range p.Calls {
		e.runCall(i, c)
		if e.crash != nil {
			break
		}
	}
	return &Result{Cov: e.cov.Blocks(), Crash: e.crash, Errno: e.errs}
}

// rprog is a compiled program resolved against one kernel image: the
// per-call opcode, generic entry block, and (for open/socket) target
// handler, all looked up once instead of per run. It lives in the
// ExecProg's cache slot, keyed by kernel identity and compilation
// generation.
type rprog struct {
	k     *Kernel
	gen   uint64
	calls []rcall
}

// rcall is one pre-resolved instruction.
type rcall struct {
	op         exop
	hasGeneric bool
	generic    BlockID
	// kh is the pre-resolved handler for opOpen (byPath) and opSocket
	// (byDomain); nil = no such device/domain. Unused for other ops.
	kh *khandler
}

// resolve returns the program's dispatch resolution against kernel k,
// reusing the cached one when it is current. The rcall slice is
// recycled across recompilations, so a fuzzing loop that compiles
// into one ExecProg reaches a zero-allocation steady state.
func (k *Kernel) resolve(ep *prog.ExecProg) *rprog {
	rp, _ := ep.Cache().(*rprog)
	if rp != nil && rp.k == k && rp.gen == ep.Gen() {
		return rp
	}
	if rp == nil || rp.k != k {
		rp = &rprog{k: k}
	}
	rp.gen = ep.Gen()
	if cap(rp.calls) < len(ep.Calls) {
		rp.calls = make([]rcall, len(ep.Calls))
	} else {
		rp.calls = rp.calls[:len(ep.Calls)]
	}
	for i := range ep.Calls {
		ec := &ep.Calls[i]
		rc := rcall{op: opOf[ec.Sc.CallName]}
		rc.generic, rc.hasGeneric = k.genericBlocks[ec.Sc.CallName]
		switch rc.op {
		case opOpen:
			rc.kh = k.byPath[string(ec.Path)]
		case opSocket:
			var dom uint64
			if len(ec.Args) > 0 {
				dom = ec.Args[0].Scalar
			}
			rc.kh = k.byDomain[int(dom)]
		}
		rp.calls[i] = rc
	}
	ep.SetCache(rp)
	return rp
}

// RunCompiled executes a compiled program. Coverage is left in the
// VM's internal CoverSet — read it with Cover or AppendCover before
// the next run — and the crash/errno outcome is returned directly, so
// the non-crash path performs zero allocations once the program's
// resolution cache is warm.
func (v *VM) RunCompiled(ep *prog.ExecProg) (*Crash, int) {
	e := &v.st
	rp := e.k.resolve(ep)
	e.reset(len(ep.Calls))
	for i := range ep.Calls {
		rc := &rp.calls[i]
		if rc.hasGeneric {
			e.cover(rc.generic)
		}
		e.dispatch(i, rc.op, rc.kh, callView{sc: ep.Calls[i].Sc, ec: &ep.Calls[i]})
		if e.crash != nil {
			break
		}
	}
	return e.crash, e.errs
}

// Cover returns the VM's internal coverage set for the most recent
// Run/RunCompiled. The set aliases VM state: it is valid until the
// next run and must not be mutated.
func (v *VM) Cover() *CoverSet { return v.st.cov }

// AppendCover appends the last run's covered blocks (sorted,
// deduplicated) to dst and returns the extended slice. With a
// recycled dst this is allocation-free.
func (v *VM) AppendCover(dst []BlockID) []BlockID {
	return v.st.cov.AppendBlocks(dst)
}

// RunBatch executes compiled programs back to back on one VM,
// amortizing dispatch overhead and reusing out[i].Cov capacity across
// batches. Each element runs in a fresh VM state (full reset — no fd,
// mapping, or history leakage between elements), and a crashing
// element does not stop the batch: out[i] records each program's own
// outcome. len(out) must be at least len(eps).
func (v *VM) RunBatch(eps []*prog.ExecProg, out []Result) {
	for i, ep := range eps {
		crash, errs := v.RunCompiled(ep)
		out[i].Cov = v.st.cov.AppendBlocks(out[i].Cov[:0])
		out[i].Crash = crash
		out[i].Errno = errs
	}
}

var _ Executor = (*VM)(nil)
var _ Executor = (*Kernel)(nil)

// Run executes a program against the kernel and reports coverage and
// crashes. It is safe for concurrent use: each call borrows a pooled
// VM, so the per-program state is still recycled rather than
// reallocated. Callers running a tight single-goroutine loop should
// hold their own VM via NewVM and skip the pool round-trip.
func (k *Kernel) Run(p *prog.Prog) *Result {
	k.poolGets.Inc()
	v, _ := k.vms.Get().(*VM)
	if v == nil {
		k.poolMisses.Inc()
		v = k.NewVM()
	}
	res := v.Run(p)
	k.vms.Put(v)
	return res
}
