package vkernel

import (
	"sync"
	"testing"

	"kernelgpt/internal/prog"
	"kernelgpt/internal/telemetry"
)

// TestPoolCounters: the concurrent Run path counts every borrow, and
// misses (fresh VM builds) never exceed borrows. Exact reuse depends
// on sync.Pool internals, so only the invariants are pinned.
func TestPoolCounters(t *testing.T) {
	tgt := targetFor(t, "dm")
	k := New(testCorpus)
	reg := telemetry.NewRegistry()
	k.InstrumentPool(reg)
	g := prog.NewGen(tgt, 1)
	const runs = 32
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		p := g.Generate(3)
		wg.Add(1)
		go func() {
			defer wg.Done()
			k.Run(p)
		}()
	}
	wg.Wait()
	gets := reg.Counter("vkernel_vm_pool_gets_total").Value()
	misses := reg.Counter("vkernel_vm_pool_misses_total").Value()
	if gets != runs {
		t.Errorf("pool gets = %d, want %d", gets, runs)
	}
	if misses < 1 || misses > gets {
		t.Errorf("pool misses = %d, want in [1, %d]", misses, gets)
	}
}

// TestUninstrumentedPoolIsInert: the default kernel carries nil
// counters and Run must not panic or allocate telemetry.
func TestUninstrumentedPoolIsInert(t *testing.T) {
	tgt := targetFor(t, "dm")
	k := New(testCorpus)
	g := prog.NewGen(tgt, 1)
	if res := k.Run(g.Generate(3)); res == nil {
		t.Fatal("nil result")
	}
	if k.poolGets != nil || k.poolMisses != nil {
		t.Fatal("counters allocated without InstrumentPool")
	}
}
