package vkernel

import (
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
)

// buildProg deserializes a repro against a compiled oracle target.
func buildProg(t *testing.T, tgt *prog.Target, text string) *prog.Prog {
	t.Helper()
	p, err := prog.Deserialize(tgt, text)
	if err != nil {
		t.Fatalf("bad test program: %v", err)
	}
	return p
}

func rdsTarget(t *testing.T) *prog.Target {
	t.Helper()
	return targetFor(t, "rds")
}

func TestSockoptLevelMismatchRejected(t *testing.T) {
	tgt := rdsTarget(t)
	rds := testCorpus.Handler("rds")
	opt := rds.Cmds[0]
	optVal := rds.CmdValue(&rds.Cmds[0], nil)
	dom := hex(uint64(rds.Socket.DomainVal))
	text := "r0 = socket$rds(" + dom + ", 0x2, 0x0)\n" +
		"setsockopt$" + opt.Name + "(r0, 0x1, " + hex(optVal) + ", &0x0, 0x4)\n"
	p := buildProg(t, tgt, text)
	res := testKernel.Run(p)
	// Wrong level: the option body must not be covered.
	lo, hi := testKernel.BlockRange("rds")
	covered := 0
	for _, b := range res.Cov {
		if b >= lo && b < hi {
			covered++
		}
	}
	if covered > rds.OpenBlocks {
		t.Fatalf("wrong level still dispatched: %d handler blocks", covered)
	}
	if res.Errno == 0 {
		t.Fatal("level mismatch should error")
	}
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0x0"
	}
	buf := []byte{}
	for v > 0 {
		buf = append([]byte{digits[v&0xf]}, buf...)
		v >>= 4
	}
	return "0x" + string(buf)
}

func TestSockoptShortOptlenRejected(t *testing.T) {
	tgt := rdsTarget(t)
	rds := testCorpus.Handler("rds")
	var structOpt *corpus.Cmd
	for i := range rds.Cmds {
		if rds.Cmds[i].Arg != "" {
			structOpt = &rds.Cmds[i]
			break
		}
	}
	if structOpt == nil {
		t.Skip("rds has no struct-payload option")
	}
	level := hex(uint64(rds.Socket.LevelVal))
	optVal := hex(rds.CmdValue(structOpt, nil))
	sm := rds.LayoutOf(structOpt.Arg)
	// Build the option call with optlen = 1 (below the struct size):
	// entry block covered, body not.
	sc := tgt.ByName["setsockopt$"+structOpt.Name]
	if sc == nil {
		t.Fatalf("no compiled setsockopt$%s", structOpt.Name)
	}
	g := prog.NewGen(tgt, 7)
	g.Enabled = map[string]bool{"socket$rds": true, "setsockopt$" + structOpt.Name: true}
	var short, full int
	for i := 0; i < 400; i++ {
		p := g.Generate(3)
		for _, c := range p.Calls {
			if c.Sc != sc {
				continue
			}
			// Force optlen below/at the struct size alternately.
			if i%2 == 0 {
				c.Args[4].Scalar = 1
			} else {
				c.Args[4].Scalar = uint64(sm.Size)
			}
		}
		res := testKernel.Run(p)
		n := len(res.Cov)
		if i%2 == 0 && n > short {
			short = n
		}
		if i%2 == 1 && n > full {
			full = n
		}
	}
	if short >= full {
		t.Fatalf("short optlen (%d blocks) should cover less than full (%d)", short, full)
	}
	_ = level
	_ = optVal
}

func TestBindFamilyValidation(t *testing.T) {
	tgt := rdsTarget(t)
	dom := hex(uint64(testCorpus.Handler("rds").Socket.DomainVal))
	good := "r0 = socket$rds(" + dom + ", 0x2, 0x0)\n" +
		"bind$rds(r0, &{" + dom + ", 0x0, [0x0, 0x0, 0x0, 0x0]}, 0x14)\n"
	bad := "r0 = socket$rds(" + dom + ", 0x2, 0x0)\n" +
		"bind$rds(r0, &{0x7777, 0x0, [0x0, 0x0, 0x0, 0x0]}, 0x14)\n"
	gp := testKernel.Run(buildProg(t, tgt, good))
	bp := testKernel.Run(buildProg(t, tgt, bad))
	if len(gp.Cov) <= len(bp.Cov) {
		t.Fatalf("correct family (%d blocks) should out-cover wrong family (%d)",
			len(gp.Cov), len(bp.Cov))
	}
	if bp.Errno == 0 {
		t.Fatal("wrong family should error")
	}
}

func TestAcceptReturnsUsableSocket(t *testing.T) {
	// Find any socket with an accept call in the corpus.
	var h *corpus.Handler
	for _, cand := range testCorpus.Loaded(corpus.KindSocket) {
		for _, sc := range cand.Socket.Calls {
			if sc.Kind == corpus.SockAccept {
				h = cand
			}
		}
	}
	if h == nil {
		t.Skip("no socket with accept in test corpus")
	}
}

func TestUnknownDomainErrors(t *testing.T) {
	tgt := rdsTarget(t)
	// Craft socket() with a bogus domain by mutating the const.
	g := prog.NewGen(tgt, 9)
	g.Enabled = map[string]bool{"socket$rds": true}
	p := g.Generate(1)
	p.Calls[0].Args[0].Scalar = 0x9999
	res := testKernel.Run(p)
	if res.Errno == 0 {
		t.Fatal("unknown domain should error")
	}
}

func TestSocketStateHistoryPerHandler(t *testing.T) {
	// The rds sendto bug fires regardless of prior cmds (no
	// PriorCmds), but the l2tp bug also has none; verify a stateful
	// bug in a socket would honor history by checking the cec pattern
	// applies to sockets too (shared evalGatesAndBug path).
	tgt := targetFor(t, "l2tp_ip6")
	dom := hex(uint64(testCorpus.Handler("l2tp_ip6").Socket.DomainVal))
	text := "r0 = socket$l2tp_ip6(" + dom + ", 0x2, 0x0)\n" +
		"sendto$l2tp_ip6(r0, &[0x0], 0x1, 0x0, &{" + dom + ", 0x0, [0x0, 0x0, 0x0, 0x0]}, 0x14)\n"
	res := testKernel.Run(buildProg(t, tgt, text))
	if res.Crash == nil || res.Crash.Title != "memory leak in __ip6_append_data" {
		t.Fatalf("l2tp sendto bug did not fire: %+v", res.Crash)
	}
}

func TestValidationGateBlocksShortAddr(t *testing.T) {
	tgt := targetFor(t, "l2tp_ip6")
	dom := hex(uint64(testCorpus.Handler("l2tp_ip6").Socket.DomainVal))
	// addrlen below sizeof(sockaddr): body must not run, no crash.
	text := "r0 = socket$l2tp_ip6(" + dom + ", 0x2, 0x0)\n" +
		"sendto$l2tp_ip6(r0, &[0x0], 0x1, 0x0, &{" + dom + ", 0x0, [0x0, 0x0, 0x0, 0x0]}, 0x2)\n"
	res := testKernel.Run(buildProg(t, tgt, text))
	if res.Crash != nil {
		t.Fatal("short addrlen must not reach the bug")
	}
	if res.Errno == 0 {
		t.Fatal("short addrlen should error")
	}
}

func TestOracleSpecAddrConstFamily(t *testing.T) {
	// The oracle pins sockaddr.family to the domain const, which is
	// what makes generated sendto calls pass addrValid routinely.
	spec := corpus.OracleSpec(testCorpus.Handler("rds"))
	text := syzlang.Format(spec)
	if want := "const[AF_RDS, int16]"; !contains(text, want) {
		t.Fatalf("oracle sockaddr missing %q:\n%s", want, text)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
