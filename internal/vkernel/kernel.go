// Package vkernel is the virtual Linux kernel the fuzzer executes
// against: syscall dispatch for the synthetic drivers and sockets,
// per-handler basic-block coverage, stateful planted bugs, and
// sanitizer-style crash reports. It plays the role of the paper's
// QEMU-booted kernel: coverage and crashes are mediated entirely by
// how well the fuzzer's specifications match the handlers' ground
// truth (device paths, command values, payload layouts, resource
// dependencies).
package vkernel

import (
	"fmt"
	"sort"
	"sync"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/telemetry"
)

// BlockID identifies one basic block in the virtual kernel.
type BlockID = uint32

// Kernel is the immutable, shareable kernel image: block numbering,
// per-handler dispatch tables, and ground-truth layouts. Executors
// (one per fuzzing "VM") carry the mutable state.
type Kernel struct {
	c *corpus.Corpus
	// byPath maps device paths to driver handlers.
	byPath map[string]*khandler
	// byDomain maps socket domain values to socket handlers.
	byDomain map[int]*khandler
	// byName maps handler names (for secondary-resource creation).
	byName map[string]*khandler
	// TotalBlocks is the number of assigned basic blocks.
	TotalBlocks uint32
	// genericBlocks cover the shared syscall-entry paths.
	genericBlocks map[string]BlockID
	// pipe and epoll are the builtin pseudo-handlers behind the fd
	// plumbing syscalls; their fds flow through the same fd table as
	// driver fds (dup them, watch them, read/write the pipe).
	pipe, epoll *khandler
	// plumb names the builtin plumbing blocks: pipe read/write paths
	// and the epoll ctl/wait/ready paths.
	plumb map[string]BlockID
	// histWords sizes the per-exec history bitset (one bit per
	// handler/operation pair, pre-assigned at build).
	histWords int
	// vms recycles executor VMs for the concurrent Run path.
	vms sync.Pool
	// poolGets/poolMisses instrument vms recycling (nil = disabled, the
	// default); see InstrumentPool.
	poolGets, poolMisses *telemetry.Counter
}

// InstrumentPool registers VM-pool effectiveness counters on reg:
// vkernel_vm_pool_gets_total counts borrows through the concurrent
// Run path, vkernel_vm_pool_misses_total the borrows that had to
// build a fresh VM. Deterministic campaigns hold their own VM via
// NewVM and never touch the pool, so instrumentation cannot perturb
// them. Call before sharing the kernel across goroutines.
func (k *Kernel) InstrumentPool(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	k.poolGets = reg.Counter("vkernel_vm_pool_gets_total")
	k.poolMisses = reg.Counter("vkernel_vm_pool_misses_total")
}

// khandler is the kernel-side view of one operation handler.
type khandler struct {
	h *corpus.Handler
	// lo/hi bound the handler's contiguous block range.
	lo, hi BlockID
	open   []BlockID
	// cmds maps the userspace command value (ioctl encoded value or
	// raw sockopt option) to the command's runtime info.
	cmds map[uint64]*kcmd
	// calls maps socket call kinds to runtime info.
	calls map[corpus.SockCallKind]*kcall
	// layouts caches ground-truth layouts by struct name.
	layouts map[string]*corpus.Layout
	// dupBlk and epollBlk are the handler's fd-plumbing blocks:
	// duplicating one of its fds and registering one on an epoll
	// instance each cover one handler-specific block.
	dupBlk, epollBlk BlockID
	// mmap region model (allocated only when the handler models an
	// mmap surface): entry, the fault/validate body, and the munmap
	// teardown block.
	mmapEntry BlockID
	mmapBody  []BlockID
	munmapBlk BlockID
	mappable  bool
	// History bit positions (absolute indices into exec.hist) for the
	// handler-level operations the engine records. Command and socket
	// call bits live on kcmd/kcall. Pre-resolving the bits at kernel
	// build replaces the per-exec map-of-maps the engine used to
	// allocate and hash into.
	openBit, socketBit, pipeBit, epollCreateBit uint32
	mmapBit, munmapBit, readBit, writeBit       uint32
}

// kcmd is the runtime info of one command.
type kcmd struct {
	c      *corpus.Cmd
	entry  BlockID
	body   []BlockID
	gates  []kgate
	bugBlk BlockID
	layout *corpus.Layout // payload layout, nil if no struct arg
	// recBit is the command's history bit; prior holds the planted
	// bug's precondition bits (priorImpossible: a precondition names
	// an operation this handler can never record, so the bug cannot
	// fire).
	recBit          uint32
	prior           []uint32
	priorImpossible bool
}

type kgate struct {
	g      corpus.FieldGate
	blocks []BlockID
}

// kcall is the runtime info of one non-sockopt socket call.
type kcall struct {
	sc     *corpus.SockCall
	entry  BlockID
	body   []BlockID
	layout *corpus.Layout // sockaddr layout
	// recBit/prior mirror kcmd's history bits for socket-call bugs.
	recBit          uint32
	prior           []uint32
	priorImpossible bool
}

// exop is the engine dispatch opcode a syscall name lowers to. The
// zero value (opGeneric) dispatches nothing beyond the generic entry
// block — the close/poll behavior.
type exop uint8

const (
	opGeneric exop = iota
	opOpen
	opSocket
	opIoctl
	opSockopt
	opBind
	opConnect
	opSendto
	opRecvfrom
	opSendmsg
	opRecvmsg
	opListen
	opAccept
	opDup
	opPipe
	opEpollCreate
	opEpollCtl
	opEpollWait
	opMmap
	opMunmap
	opReadWrite
)

// opOf lowers syscall base names to dispatch opcodes (the string
// switch the interpreter used to run per call, folded into one table
// shared by the interpreted and compiled paths).
var opOf = map[string]exop{
	"openat": opOpen, "open": opOpen, "syz_open_dev": opOpen,
	"socket":     opSocket,
	"ioctl":      opIoctl,
	"setsockopt": opSockopt, "getsockopt": opSockopt,
	"bind": opBind, "connect": opConnect,
	"sendto": opSendto, "recvfrom": opRecvfrom,
	"sendmsg": opSendmsg, "recvmsg": opRecvmsg,
	"listen": opListen, "accept": opAccept,
	"dup": opDup, "dup2": opDup, "dup3": opDup,
	"pipe": opPipe, "pipe2": opPipe,
	"epoll_create": opEpollCreate, "epoll_create1": opEpollCreate,
	"epoll_ctl":  opEpollCtl,
	"epoll_wait": opEpollWait, "epoll_pwait": opEpollWait,
	"mmap": opMmap, "munmap": opMunmap,
	"read": opReadWrite, "write": opReadWrite,
}

// New builds the kernel image for a corpus. Block numbering is
// deterministic: handlers in corpus order, commands in declaration
// order.
func New(c *corpus.Corpus) *Kernel {
	k := &Kernel{
		c:             c,
		byPath:        map[string]*khandler{},
		byDomain:      map[int]*khandler{},
		byName:        map[string]*khandler{},
		genericBlocks: map[string]BlockID{},
	}
	var next uint32
	alloc := func(n int) []BlockID {
		out := make([]BlockID, n)
		for i := range out {
			out[i] = next
			next++
		}
		return out
	}
	// History-bit allocation: one bit per (handler, operation) the
	// engine can record, assigned at build so the per-exec history is a
	// flat bitset instead of string-keyed maps. Recording an operation
	// name twice on one handler reuses the bit (the old map-of-bools
	// semantics); bug preconditions resolve to bit lists here, and a
	// precondition naming an operation the handler can never record
	// marks the bug impossible (it could never appear in the old map
	// either).
	var histBits uint32
	regBits := func(kh *khandler, kcmds []*kcmd, kcalls []*kcall) {
		ops := map[string]uint32{}
		bit := func(name string) uint32 {
			if b, ok := ops[name]; ok {
				return b
			}
			b := histBits
			histBits++
			ops[name] = b
			return b
		}
		kh.openBit = bit("open")
		kh.socketBit = bit("socket")
		kh.pipeBit = bit("pipe")
		kh.epollCreateBit = bit("epoll_create")
		kh.mmapBit = bit("mmap")
		kh.munmapBit = bit("munmap")
		kh.readBit = bit("read")
		kh.writeBit = bit("write")
		for _, kc := range kcmds {
			kc.recBit = bit(kc.c.Name)
		}
		for _, kc := range kcalls {
			kc.recBit = bit(kc.sc.Kind.String())
		}
		for _, kc := range kcmds {
			if kc.c.Bug == nil {
				continue
			}
			for _, name := range kc.c.Bug.PriorCmds {
				if b, ok := ops[name]; ok {
					kc.prior = append(kc.prior, b)
				} else {
					kc.priorImpossible = true
				}
			}
		}
		for _, kc := range kcalls {
			if kc.sc.Bug == nil {
				continue
			}
			for _, name := range kc.sc.Bug.PriorCmds {
				if b, ok := ops[name]; ok {
					kc.prior = append(kc.prior, b)
				} else {
					kc.priorImpossible = true
				}
			}
		}
	}
	// Generic syscall-entry blocks.
	for _, name := range []string{
		"openat", "open", "close", "read", "write", "ioctl", "mmap", "poll",
		"socket", "bind", "connect", "accept", "listen", "sendto",
		"recvfrom", "sendmsg", "recvmsg", "setsockopt", "getsockopt",
		"dup", "pipe", "epoll_create", "epoll_ctl", "epoll_wait", "munmap",
	} {
		k.genericBlocks[name] = alloc(1)[0]
	}
	// Builtin pipe and epoll pseudo-handlers: fd plumbing the mutation
	// operators can thread through driver programs. Their handler
	// models are synthetic (no corpus entry); history keys use the
	// reserved names below.
	k.pipe = &khandler{
		h:    &corpus.Handler{Name: "#pipe"},
		lo:   next,
		open: alloc(2),
	}
	k.plumb = map[string]BlockID{}
	for _, name := range []string{"pipe_read", "pipe_write"} {
		k.plumb[name] = alloc(1)[0]
	}
	// Builtin fds are dup-able and epoll-watchable like any other fd;
	// without their own blocks the zero value would alias block 0.
	k.pipe.dupBlk = alloc(1)[0]
	k.pipe.epollBlk = alloc(1)[0]
	k.pipe.hi = next
	regBits(k.pipe, nil, nil)
	k.epoll = &khandler{
		h:    &corpus.Handler{Name: "#epoll"},
		lo:   next,
		open: alloc(2),
	}
	for _, name := range []string{"epoll_add", "epoll_del", "epoll_mod", "epoll_wait", "epoll_ready"} {
		k.plumb[name] = alloc(1)[0]
	}
	k.epoll.dupBlk = alloc(1)[0]
	k.epoll.epollBlk = alloc(1)[0]
	k.epoll.hi = next
	regBits(k.epoll, nil, nil)
	for _, h := range c.Handlers {
		if !h.Loaded {
			continue
		}
		// Capture lo before alloc runs: in a composite literal the
		// alloc() call would be evaluated before the plain `next`
		// operand, leaving the open blocks outside [lo, hi).
		lo := next
		kh := &khandler{
			h:       h,
			lo:      lo,
			open:    alloc(h.OpenBlocks),
			cmds:    map[uint64]*kcmd{},
			calls:   map[corpus.SockCallKind]*kcall{},
			layouts: map[string]*corpus.Layout{},
		}
		layout := func(name string) *corpus.Layout {
			if name == "" {
				return nil
			}
			if l, ok := kh.layouts[name]; ok {
				return l
			}
			l := h.LayoutOf(name)
			kh.layouts[name] = l
			return l
		}
		kcmds := make([]*kcmd, 0, len(h.Cmds))
		for i := range h.Cmds {
			cmd := &h.Cmds[i]
			kc := &kcmd{
				c:      cmd,
				entry:  alloc(1)[0],
				body:   alloc(cmd.Blocks),
				layout: layout(cmd.Arg),
			}
			for _, g := range cmd.Gates {
				kc.gates = append(kc.gates, kgate{g: g, blocks: alloc(g.Blocks)})
			}
			if cmd.Bug != nil {
				kc.bugBlk = alloc(1)[0]
			}
			val := h.CmdValue(cmd, c.Index.Sizeof)
			kh.cmds[val] = kc
			kcmds = append(kcmds, kc)
		}
		kcalls := make([]*kcall, 0, len(h.Socket.Calls))
		for i := range h.Socket.Calls {
			sc := &h.Socket.Calls[i]
			kc := &kcall{
				sc:     sc,
				entry:  alloc(1)[0],
				body:   alloc(sc.Blocks),
				layout: layout(sc.Addr),
			}
			kh.calls[sc.Kind] = kc
			kcalls = append(kcalls, kc)
		}
		regBits(kh, kcmds, kcalls)
		// fd plumbing: every handler's fds can be duplicated and
		// epoll-registered; mappable handlers additionally get an mmap
		// fault path and a munmap teardown block.
		kh.dupBlk = alloc(1)[0]
		kh.epollBlk = alloc(1)[0]
		if h.MmapBlocks > 0 {
			kh.mappable = true
			kh.mmapEntry = alloc(1)[0]
			kh.mmapBody = alloc(h.MmapBlocks)
			kh.munmapBlk = alloc(1)[0]
		}
		kh.hi = next
		k.byName[h.Name] = kh
		if h.Kind == corpus.KindDriver && h.DevPath != "" {
			k.byPath[h.DevPath] = kh
		}
		if h.Kind == corpus.KindSocket {
			k.byDomain[h.Socket.DomainVal] = kh
		}
	}
	k.TotalBlocks = next
	k.histWords = int(histBits+63) / 64
	return k
}

// Corpus returns the corpus this kernel was built from.
func (k *Kernel) Corpus() *corpus.Corpus { return k.c }

// NumBlocks bounds the block-ID space: every BlockID the kernel can
// report is in [0, NumBlocks). Dense coverage structures (CoverSet)
// size themselves from this.
func (k *Kernel) NumBlocks() uint32 { return k.TotalBlocks }

// ReachableBlocks reports, for diagnostics, the number of blocks
// belonging to the named handler.
func (k *Kernel) ReachableBlocks(handler string) int {
	kh := k.byName[handler]
	if kh == nil {
		return 0
	}
	n := len(kh.open)
	for _, kc := range kh.cmds {
		n += 1 + len(kc.body)
		for _, g := range kc.gates {
			n += len(g.blocks)
		}
		if kc.c.Bug != nil {
			n++
		}
	}
	for _, kc := range kh.calls {
		n += 1 + len(kc.body)
	}
	n += 2 // dup + epoll registration
	if kh.mappable {
		n += 2 + len(kh.mmapBody) // mmap entry + body + munmap
	}
	return n
}

// BlockRange returns the half-open block-id range [lo, hi) assigned
// to the named handler's code. Block numbering is contiguous per
// handler, which gives the benchmarks cheap per-handler coverage
// attribution.
func (k *Kernel) BlockRange(handler string) (lo, hi BlockID) {
	kh := k.byName[handler]
	if kh == nil {
		return 0, 0
	}
	return kh.lo, kh.hi
}

// HandlerNames lists loaded handler names in deterministic order.
func (k *Kernel) HandlerNames() []string {
	names := make([]string, 0, len(k.byName))
	for n := range k.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String summarizes the kernel image.
func (k *Kernel) String() string {
	return fmt.Sprintf("vkernel{%d handlers, %d blocks}", len(k.byName), k.TotalBlocks)
}
