package vkernel

// Tests for the compiled execution path: compiled-vs-interpreted
// equivalence over the full bundled-driver + plumbing corpus, state
// isolation across RunBatch elements, and the zero-allocation
// guarantee of the non-crash path.

import (
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
)

// fullPlumbedTarget compiles the oracle specs of every loaded handler
// (drivers and sockets) plus the fd-plumbing/mmap surface — the
// widest program space the kernel executes.
func fullPlumbedTarget(t testing.TB) *prog.Target {
	t.Helper()
	var names []string
	var files []*syzlang.File
	for _, h := range testCorpus.Handlers {
		if !h.Loaded {
			continue
		}
		names = append(names, h.Name)
		files = append(files, corpus.OracleSpec(h))
	}
	pf, err := testCorpus.PlumbingSpecFor(names...)
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, pf)
	tgt, err := prog.Compile(syzlang.MergeDedup(files...), testCorpus.Env())
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func sameCov(a, b []BlockID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameCrash(a, b *Crash) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Title == b.Title
}

// TestCompiledMatchesInterpreted is the equivalence acceptance check:
// for a wide generated corpus over every bundled handler plus the
// plumbing surface, RunCompiled must produce exactly the coverage,
// crash verdict, and errno count of the interpreted Run.
func TestCompiledMatchesInterpreted(t *testing.T) {
	tgt := fullPlumbedTarget(t)
	g := prog.NewGen(tgt, 7)
	ivm := testKernel.NewVM()
	cvm := testKernel.NewVM()
	var ep prog.ExecProg
	var cov []BlockID
	crashes := 0
	for i := 0; i < 2000; i++ {
		p := g.Generate(2 + i%12)
		want := ivm.Run(p)
		prog.CompileExecInto(p, &ep)
		crash, errno := cvm.RunCompiled(&ep)
		cov = cvm.AppendCover(cov[:0])
		if !sameCov(want.Cov, cov) {
			t.Fatalf("coverage diverged on:\n%s\ninterpreted %d blocks, compiled %d", p.String(), len(want.Cov), len(cov))
		}
		if !sameCrash(want.Crash, crash) {
			t.Fatalf("crash verdict diverged on:\n%s\ninterpreted %+v, compiled %+v", p.String(), want.Crash, crash)
		}
		if want.Errno != errno {
			t.Fatalf("errno diverged on:\n%s\ninterpreted %d, compiled %d", p.String(), want.Errno, errno)
		}
		if want.Crash != nil {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("equivalence corpus never crashed; the crash path went untested")
	}
}

// TestCompiledStatefulCrash pins the stateful-bug path: the CEC
// PriorCmds chain must crash compiled exactly as interpreted, and the
// stripped chain must not.
func TestCompiledStatefulCrash(t *testing.T) {
	_, p := cecChainProg(t)
	vm := testKernel.NewVM()
	ep := prog.CompileExec(p)
	crash, _ := vm.RunCompiled(ep)
	if crash == nil || crash.Title != "WARNING in cec_data_cancel" {
		t.Fatalf("compiled chain did not crash: %+v", crash)
	}
	stripped := p.Clone()
	var calls []*prog.Call
	for _, c := range stripped.Calls {
		if c.Sc.Name != "ioctl$CEC_TRANSMIT" {
			calls = append(calls, c)
		}
	}
	stripped.Calls = calls
	if crash, _ := vm.RunCompiled(prog.CompileExec(stripped)); crash != nil {
		t.Fatalf("compiled bug fired without its PriorCmds: %v", crash.Title)
	}
}

// TestRunBatchIsolation runs a batch whose elements open fds, map
// regions, register epoll watches, and crash, and checks every
// element's outcome equals the same program run alone on a fresh VM —
// no fd-table, vma, watch, history, or coverage leakage between batch
// elements.
func TestRunBatchIsolation(t *testing.T) {
	tgt := fullPlumbedTarget(t)
	g := prog.NewGen(tgt, 11)
	progs := make([]*prog.Prog, 0, 66)
	for i := 0; i < 64; i++ {
		progs = append(progs, g.Generate(2+i%12))
	}
	// Plant a crashing chain followed by its stripped tail: if history
	// or the crash flag leaked, the tail would crash too.
	_, chain := cecChainProg(t)
	tail := chain.Clone()
	var calls []*prog.Call
	for _, c := range tail.Calls {
		if c.Sc.Name != "ioctl$CEC_TRANSMIT" {
			calls = append(calls, c)
		}
	}
	tail.Calls = calls
	progs = append(progs, chain, tail)

	eps := make([]*prog.ExecProg, len(progs))
	for i, p := range progs {
		eps[i] = prog.CompileExec(p)
	}
	out := make([]Result, len(eps))
	vm := testKernel.NewVM()
	vm.RunBatch(eps, out)
	for i, p := range progs {
		want := testKernel.NewVM().Run(p)
		if !sameCov(want.Cov, out[i].Cov) || !sameCrash(want.Crash, out[i].Crash) || want.Errno != out[i].Errno {
			t.Fatalf("batch element %d diverged from a fresh VM on:\n%s\nfresh {cov %d, crash %+v, errno %d} vs batch {cov %d, crash %+v, errno %d}",
				i, p.String(), len(want.Cov), want.Crash, want.Errno, len(out[i].Cov), out[i].Crash, out[i].Errno)
		}
	}
	if out[len(out)-2].Crash == nil {
		t.Fatal("planted chain did not crash in the batch")
	}
	if out[len(out)-1].Crash != nil {
		t.Fatal("state leaked across batch elements: stripped tail crashed")
	}
}

// TestRunCompiledZeroAllocs is the alloc-regression guard for the
// executor: once a program's resolution cache and the caller's cover
// buffer are warm, RunCompiled + AppendCover must stay within the
// ≤5 allocs/op budget (and is expected to hit 0) so alloc creep fails
// go test, not just the bench gate.
func TestRunCompiledZeroAllocs(t *testing.T) {
	tgt := fullPlumbedTarget(t)
	g := prog.NewGen(tgt, 13)
	vm := testKernel.NewVM()
	var eps []*prog.ExecProg
	var cov []BlockID
	for len(eps) < 32 {
		p := g.Generate(2 + len(eps)%10)
		ep := prog.CompileExec(p)
		// Keep the non-crash path honest: crashing programs allocate
		// the Crash report by design.
		if crash, _ := vm.RunCompiled(ep); crash == nil {
			eps = append(eps, ep)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, ep := range eps {
			vm.RunCompiled(ep)
			cov = vm.AppendCover(cov[:0])
		}
	})
	per := allocs / float64(len(eps))
	if per > 5 {
		t.Fatalf("RunCompiled allocates %.2f/op, budget is 5", per)
	}
	if per != 0 {
		t.Logf("RunCompiled allocates %.2f/op (budget 5)", per)
	}
}
