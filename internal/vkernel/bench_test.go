package vkernel

import (
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
)

func benchProgs(b *testing.B) []*prog.Prog {
	b.Helper()
	f := &syzlang.File{}
	for _, n := range []string{"dm", "cec", "rds"} {
		f.Merge(corpus.OracleSpec(testCorpus.Handler(n)))
	}
	tgt, err := prog.Compile(f, testCorpus.Env())
	if err != nil {
		b.Fatal(err)
	}
	g := prog.NewGen(tgt, 1)
	progs := make([]*prog.Prog, 64)
	for i := range progs {
		progs[i] = g.Generate(8)
	}
	return progs
}

// BenchmarkKernelRun measures the concurrent-safe pooled execution
// path (one borrowed VM per call).
func BenchmarkKernelRun(b *testing.B) {
	progs := benchProgs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testKernel.Run(progs[i%len(progs)])
	}
}

// BenchmarkVMRun measures the single-goroutine reusable-VM path the
// fuzzing loop uses.
func BenchmarkVMRun(b *testing.B) {
	progs := benchProgs(b)
	vm := testKernel.NewVM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Run(progs[i%len(progs)])
	}
}
