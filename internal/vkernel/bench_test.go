package vkernel

import (
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
)

func benchProgs(b *testing.B) []*prog.Prog {
	b.Helper()
	f := &syzlang.File{}
	for _, n := range []string{"dm", "cec", "rds"} {
		f.Merge(corpus.OracleSpec(testCorpus.Handler(n)))
	}
	tgt, err := prog.Compile(f, testCorpus.Env())
	if err != nil {
		b.Fatal(err)
	}
	g := prog.NewGen(tgt, 1)
	progs := make([]*prog.Prog, 64)
	for i := range progs {
		progs[i] = g.Generate(8)
	}
	return progs
}

// BenchmarkKernelRun measures the concurrent-safe pooled execution
// path (one borrowed VM per call).
func BenchmarkKernelRun(b *testing.B) {
	progs := benchProgs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testKernel.Run(progs[i%len(progs)])
	}
}

// BenchmarkVMRun measures the single-goroutine reusable-VM path the
// fuzzing loop uses.
func BenchmarkVMRun(b *testing.B) {
	progs := benchProgs(b)
	vm := testKernel.NewVM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Run(progs[i%len(progs)])
	}
}

// benchExecProgs compiles the benchmark corpus and warms each
// program's kernel resolution cache.
func benchExecProgs(b *testing.B, vm *VM) []*prog.ExecProg {
	b.Helper()
	progs := benchProgs(b)
	eps := make([]*prog.ExecProg, len(progs))
	for i, p := range progs {
		eps[i] = prog.CompileExec(p)
		vm.RunCompiled(eps[i])
	}
	return eps
}

// BenchmarkVMRunCompiled measures the compiled hot path: pre-lowered
// programs interpreted with coverage read back into a recycled
// buffer. Compare against BenchmarkVMRun for the compilation win.
func BenchmarkVMRunCompiled(b *testing.B) {
	vm := testKernel.NewVM()
	eps := benchExecProgs(b, vm)
	// Pre-grow the coverage buffer over every program so the timed
	// loop is pure dispatch — the steady state a campaign loop runs in.
	var cov []BlockID
	for _, ep := range eps {
		vm.RunCompiled(ep)
		cov = vm.AppendCover(cov[:0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.RunCompiled(eps[i%len(eps)])
		cov = vm.AppendCover(cov[:0])
	}
	_ = cov
}

// BenchmarkVMRunBatch measures batched dispatch; ns/op is still
// per-program (each iteration runs one batch element's share).
func BenchmarkVMRunBatch(b *testing.B) {
	vm := testKernel.NewVM()
	eps := benchExecProgs(b, vm)
	out := make([]Result, len(eps))
	vm.RunBatch(eps, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(eps) {
		n := len(eps)
		if rem := b.N - i; rem < n {
			n = rem
		}
		vm.RunBatch(eps[:n], out[:n])
	}
}

// BenchmarkCoverDeltaEncode measures the hub sync path's cover-delta
// compression: a campaign-shaped coverage set (contiguous handler
// block runs plus scattered singles) diffed against the previous
// sync's snapshot and encoded into a recycled buffer.
func BenchmarkCoverDeltaEncode(b *testing.B) {
	base := NewCoverSet(1 << 14)
	cur := NewCoverSet(1 << 14)
	// Base: what the last sync already shipped — dense handler ranges.
	for blk := BlockID(0); blk < 6000; blk++ {
		base.Add(blk)
		cur.Add(blk)
	}
	// New since then: a fresh contiguous range plus scattered blocks.
	for blk := BlockID(6000); blk < 6400; blk++ {
		cur.Add(blk)
	}
	for blk := BlockID(7000); blk < 12000; blk += 17 {
		cur.Add(blk)
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = cur.AppendDelta(buf[:0], base)
	}
	_ = buf
}
