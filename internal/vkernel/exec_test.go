package vkernel

// Edge-case tests for the execution layer: executor state reuse,
// sockopt short-optlen rejection, accept fd chaining, sockaddr family
// validation, and stateful PriorCmds bug preconditions.

import (
	"reflect"
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
)

// cecChainProg builds the stateful CEC chain open → CEC_TRANSMIT →
// CEC_S_MODE, which fires "WARNING in cec_data_cancel" (PriorCmds:
// CEC_TRANSMIT), by generating with only those calls enabled.
func cecChainProg(t *testing.T) (*prog.Target, *prog.Prog) {
	t.Helper()
	tgt := targetFor(t, "cec")
	g := prog.NewGen(tgt, 17)
	g.Enabled = map[string]bool{
		"openat$cec": true, "ioctl$CEC_TRANSMIT": true, "ioctl$CEC_S_MODE": true,
	}
	for i := 0; i < 4000; i++ {
		p := g.Generate(6)
		if res := testKernel.Run(p); res.Crash != nil && res.Crash.Title == "WARNING in cec_data_cancel" {
			return tgt, p
		}
	}
	t.Fatal("could not build a crashing CEC chain")
	return nil, nil
}

func TestPriorCmdsOrderedChain(t *testing.T) {
	_, p := cecChainProg(t)
	// The chain crashes: TRANSMIT recorded in history before S_MODE.
	res := testKernel.Run(p)
	if res.Crash == nil || res.Crash.Title != "WARNING in cec_data_cancel" {
		t.Fatalf("chain did not crash: %+v", res.Crash)
	}
	// Dropping every TRANSMIT removes the precondition: no crash.
	stripped := p.Clone()
	var calls []*prog.Call
	for _, c := range stripped.Calls {
		if c.Sc.Name != "ioctl$CEC_TRANSMIT" {
			calls = append(calls, c)
		}
	}
	stripped.Calls = calls
	if res := testKernel.Run(stripped); res.Crash != nil {
		t.Fatalf("bug fired without its PriorCmds: %v", res.Crash.Title)
	}
}

func TestVMReuseIsolatesState(t *testing.T) {
	_, p := cecChainProg(t)
	vm := testKernel.NewVM()
	if res := vm.Run(p); res.Crash == nil {
		t.Fatal("chain did not crash on a fresh VM")
	}
	// Re-running only the tail (open + S_MODE) on the SAME VM must
	// not crash: the previous run's command history must not leak.
	tail := p.Clone()
	var calls []*prog.Call
	for _, c := range tail.Calls {
		if c.Sc.Name != "ioctl$CEC_TRANSMIT" {
			calls = append(calls, c)
		}
	}
	tail.Calls = calls
	res := vm.Run(tail)
	if res.Crash != nil {
		t.Fatalf("history leaked across VM reuse: %v", res.Crash.Title)
	}
	// Coverage must also reset: the tail alone covers strictly less
	// than the crashing chain.
	if full := vm.Run(p); len(res.Cov) >= len(full.Cov) {
		t.Fatalf("coverage leaked across reuse: tail %d >= chain %d", len(res.Cov), len(full.Cov))
	}
}

func TestVMMatchesPooledRun(t *testing.T) {
	tgt := targetFor(t, "dm", "cec", "rds")
	g := prog.NewGen(tgt, 23)
	vm := testKernel.NewVM()
	for i := 0; i < 300; i++ {
		p := g.Generate(8)
		a := vm.Run(p)         // reused state
		b := testKernel.Run(p) // pooled path
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("VM and pooled Run diverged on:\n%s\n%+v\nvs\n%+v", p.String(), a, b)
		}
	}
}

func TestSockoptShortOptlenErrno(t *testing.T) {
	tgt := rdsTarget(t)
	rds := testCorpus.Handler("rds")
	var structOpt *corpus.Cmd
	for i := range rds.Cmds {
		if rds.Cmds[i].Arg != "" {
			structOpt = &rds.Cmds[i]
			break
		}
	}
	if structOpt == nil {
		t.Skip("rds has no struct-payload option")
	}
	size := rds.LayoutOf(structOpt.Arg).Size
	sc := tgt.ByName["setsockopt$"+structOpt.Name]
	g := prog.NewGen(tgt, 29)
	g.Enabled = map[string]bool{"socket$rds": true, "setsockopt$" + structOpt.Name: true}
	var p *prog.Prog
	var call *prog.Call
	for p == nil {
		trial := g.Generate(2)
		for _, c := range trial.Calls {
			if c.Sc == sc && c.Args[0].ResultOf >= 0 {
				p, call = trial, c
			}
		}
	}
	call.Args[4].Scalar = uint64(size - 1)
	short := testKernel.Run(p)
	call.Args[4].Scalar = uint64(size)
	full := testKernel.Run(p)
	if short.Errno <= full.Errno {
		t.Fatalf("short optlen must error: short=%d full=%d", short.Errno, full.Errno)
	}
	// The worker rejects before the body: entry covered, body not.
	if len(short.Cov) >= len(full.Cov) {
		t.Fatalf("short optlen covered the body: %d vs %d blocks", len(short.Cov), len(full.Cov))
	}
}

// TestAcceptFdChaining gives a socket handler an accept call and
// checks the accepted fd drives later calls on the same handler.
func TestAcceptFdChaining(t *testing.T) {
	c := corpus.Build(corpus.TestConfig())
	h := c.Handler("rds")
	h.Socket.Calls = append(h.Socket.Calls, corpus.SockCall{Kind: corpus.SockAccept, Blocks: 3})
	k := New(c)

	var plainOpt *corpus.Cmd
	for i := range h.Cmds {
		if h.Cmds[i].Arg == "" {
			plainOpt = &h.Cmds[i]
			break
		}
	}
	optVal := uint64(0)
	optLen := uint64(8)
	if plainOpt == nil {
		plainOpt = &h.Cmds[0]
		optLen = uint64(h.LayoutOf(plainOpt.Arg).Size)
	}
	optVal = h.CmdValue(plainOpt, c.Index.Sizeof)

	intT := &prog.Type{Kind: prog.KindInt, Bytes: 8}
	resT := &prog.Type{Kind: prog.KindResource}
	scalarArg := func(v uint64) *prog.Value { return &prog.Value{Type: intT, Scalar: v} }
	resArg := func(of int) *prog.Value { return &prog.Value{Type: resT, ResultOf: of} }
	p := &prog.Prog{Calls: []*prog.Call{
		{Sc: &prog.Syscall{Name: "socket$rds", CallName: "socket"},
			Args: []*prog.Value{scalarArg(uint64(h.Socket.DomainVal)), scalarArg(2), scalarArg(0)}},
		{Sc: &prog.Syscall{Name: "accept$rds", CallName: "accept"},
			Args: []*prog.Value{resArg(0)}},
		{Sc: &prog.Syscall{Name: "setsockopt$" + plainOpt.Name, CallName: "setsockopt"},
			Args: []*prog.Value{resArg(1), scalarArg(uint64(h.Socket.LevelVal)),
				scalarArg(optVal), scalarArg(0), scalarArg(optLen)}},
	}}
	res := k.Run(p)
	if res.Errno != 0 {
		t.Fatalf("accept-chained sockopt errored: %+v", res)
	}
	lo, hi := k.BlockRange("rds")
	inRange := 0
	for _, b := range res.Cov {
		if b >= lo && b < hi {
			inRange++
		}
	}
	// open blocks + accept entry/body + option entry (+ body/gates).
	if inRange <= h.OpenBlocks+1+3 {
		t.Fatalf("accepted fd did not dispatch: only %d handler blocks", inRange)
	}
	// Without the synthetic accept call the same program must error.
	if res := testKernel.Run(p); res.Errno == 0 {
		t.Fatal("accept on an accept-less socket should error")
	}
}

func TestAddrValidFamilyMismatch(t *testing.T) {
	tgt := targetFor(t, "l2tp_ip6")
	dom := hex(uint64(testCorpus.Handler("l2tp_ip6").Socket.DomainVal))
	run := func(fam string) *Result {
		text := "r0 = socket$l2tp_ip6(" + dom + ", 0x2, 0x0)\n" +
			"sendto$l2tp_ip6(r0, &[0x0], 0x1, 0x0, &{" + fam + ", 0x0, [0x0, 0x0, 0x0, 0x0]}, 0x14)\n"
		return testKernel.Run(buildProg(t, tgt, text))
	}
	matched := run(dom)
	if matched.Errno != 0 {
		t.Fatalf("matching family rejected: %+v", matched)
	}
	// Family 0 is the wildcard the validator accepts.
	if wild := run("0x0"); wild.Errno != 0 || len(wild.Cov) != len(matched.Cov) {
		t.Fatalf("zero-family wildcard rejected: %+v", wild)
	}
	mism := run("0x7777")
	if mism.Errno == 0 {
		t.Fatal("mismatched family accepted")
	}
	if len(mism.Cov) >= len(matched.Cov) {
		t.Fatalf("mismatched family covered the body: %d vs %d", len(mism.Cov), len(matched.Cov))
	}
}
