package vkernel

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// CoverSet is a dense bitmap over basic-block IDs. Because the kernel
// numbers blocks contiguously from zero, a bitmap of NumBlocks bits
// replaces the per-program hash sets the fuzzer used to allocate:
// Add/Has are one word operation each, Union is a word-wise OR, and
// the population count is cached so Count is O(1). The zero value is
// an empty set that grows on demand; NewCoverSet pre-sizes the bitmap
// so the hot path never reallocates.
//
// CoverSet is not safe for concurrent mutation; the fuzzer gives each
// campaign goroutine its own set and merges under a lock.
type CoverSet struct {
	words []uint64
	n     int
}

// NewCoverSet returns an empty set pre-sized for block IDs in
// [0, bound).
func NewCoverSet(bound uint32) *CoverSet {
	return &CoverSet{words: make([]uint64, (int(bound)+63)/64)}
}

// grow ensures the bitmap covers word index w, at least doubling so
// grow-on-demand sets stay amortized O(1) per Add.
func (s *CoverSet) grow(w int) {
	if w < len(s.words) {
		return
	}
	words := make([]uint64, max(w+1, 2*len(s.words)))
	copy(words, s.words)
	s.words = words
}

// Add inserts block b and reports whether it was newly covered.
func (s *CoverSet) Add(b BlockID) bool {
	w, bit := int(b>>6), uint64(1)<<(b&63)
	s.grow(w)
	if s.words[w]&bit != 0 {
		return false
	}
	s.words[w] |= bit
	s.n++
	return true
}

// Has reports whether block b is covered.
func (s *CoverSet) Has(b BlockID) bool {
	if s == nil {
		return false
	}
	w := int(b >> 6)
	return w < len(s.words) && s.words[w]&(1<<(b&63)) != 0
}

// Count returns the number of covered blocks in O(1).
func (s *CoverSet) Count() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Union folds o into s and returns the number of newly covered
// blocks.
func (s *CoverSet) Union(o *CoverSet) int {
	if o == nil {
		return 0
	}
	if len(o.words) > 0 {
		s.grow(len(o.words) - 1)
	}
	added := 0
	for i, w := range o.words {
		if nw := w &^ s.words[i]; nw != 0 {
			s.words[i] |= nw
			added += bits.OnesCount64(nw)
		}
	}
	s.n += added
	return added
}

// Diff returns the number of blocks covered by s but not by o
// (the evaluation's "unique coverage" metric).
func (s *CoverSet) Diff(o *CoverSet) int {
	if s == nil {
		return 0
	}
	n := 0
	for i, w := range s.words {
		if o != nil && i < len(o.words) {
			w &^= o.words[i]
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear empties the set, retaining its capacity for reuse.
func (s *CoverSet) Clear() {
	clear(s.words)
	s.n = 0
}

// Clone returns an independent copy of the set.
func (s *CoverSet) Clone() *CoverSet {
	if s == nil {
		return &CoverSet{}
	}
	return &CoverSet{words: append([]uint64(nil), s.words...), n: s.n}
}

// Equal reports whether two sets cover exactly the same blocks.
func (s *CoverSet) Equal(o *CoverSet) bool {
	if s.Count() != o.Count() {
		return false
	}
	if s == nil || o == nil {
		return true // counts matched, so both are empty
	}
	long, short := s, o
	if len(o.words) > len(s.words) {
		long, short = o, s
	}
	for i, w := range long.words {
		var ow uint64
		if i < len(short.words) {
			ow = short.words[i]
		}
		if w != ow {
			return false
		}
	}
	return true
}

// Blocks returns the covered blocks as a sorted slice — the set's
// sorted iterator, materialized. Bitmap order is ID order, so no
// sorting pass is needed.
func (s *CoverSet) Blocks() []BlockID {
	if s == nil {
		return nil
	}
	out := make([]BlockID, 0, s.n)
	s.ForEach(func(b BlockID) { out = append(out, b) })
	return out
}

// AppendBlocks appends the covered blocks to dst in ascending ID
// order and returns the extended slice — the allocation-free form of
// Blocks for callers that recycle a buffer.
func (s *CoverSet) AppendBlocks(dst []BlockID) []BlockID {
	if s == nil {
		return dst
	}
	for i, w := range s.words {
		base := BlockID(i) << 6
		for w != 0 {
			dst = append(dst, base+BlockID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// ForEach visits every covered block in ascending ID order.
func (s *CoverSet) ForEach(fn func(BlockID)) {
	if s == nil {
		return
	}
	for i, w := range s.words {
		base := BlockID(i) << 6
		for w != 0 {
			fn(base + BlockID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// Compressed delta codec
//
// EncodeDelta/DecodeDelta serialize the set difference s \ base as a
// roaring-style container stream: block IDs are partitioned by their
// high 16 bits into containers of up to 65536 values, and each
// container independently picks the smallest of three encodings —
// a sorted uint16 array (sparse), run-length [start, length] pairs
// (clustered, the common shape for contiguous handler block ranges),
// or a raw 8 KiB bitmap (dense). The encoding is canonical: a given
// block set always encodes to the same bytes, and DecodeDelta rejects
// non-canonical input (out-of-order values, wrong container choice,
// overlapping runs), so encode∘decode is the identity both ways.
// This is the hub sync path's cover-delta wire format.

// Delta codec framing constants.
const (
	deltaMagic   = 0xC5 // "CoverSet" stream marker
	deltaVersion = 0x01

	containerArray  = 0x00
	containerRun    = 0x01
	containerBitmap = 0x02

	// containerWords is the bitmap words per container (2^16 bits).
	containerWords = 1 << 10
	// bitmapBytes is the raw-bitmap container payload size.
	bitmapBytes = containerWords * 8
)

// EncodeDelta returns the canonical encoding of s \ base (blocks
// covered by s but not by base). A nil base encodes the whole set.
func (s *CoverSet) EncodeDelta(base *CoverSet) []byte {
	return s.AppendDelta(nil, base)
}

// AppendDelta appends the canonical encoding of s \ base to dst and
// returns the extended slice (the allocation-free form of
// EncodeDelta for callers that recycle a buffer).
func (s *CoverSet) AppendDelta(dst []byte, base *CoverSet) []byte {
	dst = append(dst, deltaMagic, deltaVersion)
	if s == nil {
		return binary.AppendUvarint(dst, 0)
	}
	// First pass: count non-empty containers (no materialization).
	containers := 0
	for start := 0; start < len(s.words); start += containerWords {
		end := min(start+containerWords, len(s.words))
		for i := start; i < end; i++ {
			w := s.words[i]
			if base != nil && i < len(base.words) {
				w &^= base.words[i]
			}
			if w != 0 {
				containers++
				break
			}
		}
	}
	dst = binary.AppendUvarint(dst, uint64(containers))
	var vals []uint16
	forEachContainer(s, base, func(key int, words []uint64) {
		vals = containerValues(vals[:0], words)
		runs := countRuns(vals)
		arrayBytes := 2 * len(vals)
		runBytes := 4 * runs
		dst = binary.AppendUvarint(dst, uint64(key))
		switch {
		case runBytes < arrayBytes && runBytes < bitmapBytes:
			dst = append(dst, containerRun)
			dst = binary.AppendUvarint(dst, uint64(runs))
			dst = appendRuns(dst, vals)
		case arrayBytes <= bitmapBytes:
			dst = append(dst, containerArray)
			dst = binary.AppendUvarint(dst, uint64(len(vals)))
			for _, v := range vals {
				dst = binary.LittleEndian.AppendUint16(dst, v)
			}
		default:
			dst = append(dst, containerBitmap)
			var buf [8]byte
			for i := 0; i < containerWords; i++ {
				var w uint64
				if i < len(words) {
					w = words[i]
				}
				binary.LittleEndian.PutUint64(buf[:], w)
				dst = append(dst, buf[:]...)
			}
		}
	})
	return dst
}

// forEachContainer visits each 65536-block container of s \ base that
// holds at least one block, in ascending key order, handing the
// caller the container's diffed words (length <= containerWords; the
// callback must not retain the slice).
func forEachContainer(s, base *CoverSet, fn func(key int, words []uint64)) {
	var scratch [containerWords]uint64
	for start := 0; start < len(s.words); start += containerWords {
		end := min(start+containerWords, len(s.words))
		nonEmpty := false
		for i := start; i < end; i++ {
			w := s.words[i]
			if base != nil && i < len(base.words) {
				w &^= base.words[i]
			}
			scratch[i-start] = w
			nonEmpty = nonEmpty || w != 0
		}
		if nonEmpty {
			fn(start/containerWords, scratch[:end-start])
		}
	}
}

// containerValues appends the low-16-bit values of the set words to
// dst in ascending order.
func containerValues(dst []uint16, words []uint64) []uint16 {
	for i, w := range words {
		base := uint16(i) << 6
		for w != 0 {
			dst = append(dst, base+uint16(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// countRuns counts maximal runs of consecutive values.
func countRuns(vals []uint16) int {
	runs := 0
	for i, v := range vals {
		if i == 0 || v != vals[i-1]+1 {
			runs++
		}
	}
	return runs
}

// appendRuns encodes sorted values as (start, length-1) uint16 pairs.
func appendRuns(dst []byte, vals []uint16) []byte {
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[j-1]+1 {
			j++
		}
		dst = binary.LittleEndian.AppendUint16(dst, vals[i])
		dst = binary.LittleEndian.AppendUint16(dst, uint16(j-i-1))
		i = j
	}
	return dst
}

// strictUvarint decodes a uvarint, rejecting non-minimal encodings
// (an over-long encoding would decode fine but re-encode shorter,
// breaking the canonical-form invariant).
func strictUvarint(data []byte) (uint64, int) {
	v, n := binary.Uvarint(data)
	if n > 1 && data[n-1] == 0 {
		return 0, 0 // top byte contributes nothing: not minimal
	}
	return v, n
}

// DecodeDelta parses an EncodeDelta stream, invoking fn for every
// encoded block in ascending ID order. It rejects malformed and
// non-canonical input, so a successful decode re-encodes to exactly
// the input bytes.
func DecodeDelta(data []byte, fn func(BlockID)) error {
	if len(data) < 2 || data[0] != deltaMagic || data[1] != deltaVersion {
		return fmt.Errorf("coverset delta: bad header")
	}
	data = data[2:]
	containers, n := strictUvarint(data)
	if n <= 0 {
		return fmt.Errorf("coverset delta: bad container count")
	}
	data = data[n:]
	prevKey := -1
	for c := uint64(0); c < containers; c++ {
		key, n := strictUvarint(data)
		if n <= 0 || key > (1<<16)-1 {
			return fmt.Errorf("coverset delta: bad container key")
		}
		data = data[n:]
		if int(key) <= prevKey {
			return fmt.Errorf("coverset delta: container keys not ascending")
		}
		prevKey = int(key)
		if len(data) < 1 {
			return fmt.Errorf("coverset delta: truncated container")
		}
		typ := data[0]
		data = data[1:]
		base := BlockID(key) << 16
		switch typ {
		case containerArray:
			count, n := strictUvarint(data)
			if n <= 0 || count == 0 || count > 1<<16 || len(data[n:]) < int(count)*2 {
				return fmt.Errorf("coverset delta: bad array container")
			}
			data = data[n:]
			if 2*int(count) > bitmapBytes {
				return fmt.Errorf("coverset delta: array container larger than bitmap")
			}
			prev, runs := -1, 0
			for i := uint64(0); i < count; i++ {
				v := int(binary.LittleEndian.Uint16(data[2*i:]))
				if v <= prev {
					return fmt.Errorf("coverset delta: array values not ascending")
				}
				if v != prev+1 || i == 0 {
					runs++
				}
				prev = v
				fn(base + BlockID(v))
			}
			if 4*runs < 2*int(count) {
				return fmt.Errorf("coverset delta: array container should be run-encoded")
			}
			data = data[2*count:]
		case containerRun:
			runs, n := strictUvarint(data)
			if n <= 0 || runs == 0 || runs > 1<<15 || len(data[n:]) < int(runs)*4 {
				return fmt.Errorf("coverset delta: bad run container")
			}
			data = data[n:]
			count := 0
			prevEnd := -2
			for i := uint64(0); i < runs; i++ {
				start := int(binary.LittleEndian.Uint16(data[4*i:]))
				length := int(binary.LittleEndian.Uint16(data[4*i+2:])) + 1
				if start <= prevEnd+1 {
					return fmt.Errorf("coverset delta: runs not canonical")
				}
				if start+length > 1<<16 {
					return fmt.Errorf("coverset delta: run overflows container")
				}
				for v := start; v < start+length; v++ {
					fn(base + BlockID(v))
				}
				count += length
				prevEnd = start + length - 1
			}
			if 4*int(runs) >= 2*count || 4*int(runs) >= bitmapBytes {
				return fmt.Errorf("coverset delta: run container should be array- or bitmap-encoded")
			}
			data = data[4*runs:]
		case containerBitmap:
			if len(data) < bitmapBytes {
				return fmt.Errorf("coverset delta: truncated bitmap container")
			}
			count, runs := 0, 0
			prev := -2
			for i := 0; i < containerWords; i++ {
				w := binary.LittleEndian.Uint64(data[8*i:])
				wbase := i << 6
				for w != 0 {
					v := wbase + bits.TrailingZeros64(w)
					if v != prev+1 {
						runs++
					}
					prev = v
					count++
					fn(base + BlockID(v))
					w &= w - 1
				}
			}
			if count == 0 {
				return fmt.Errorf("coverset delta: empty bitmap container")
			}
			if 2*count <= bitmapBytes || 4*runs < bitmapBytes {
				return fmt.Errorf("coverset delta: bitmap container should be array- or run-encoded")
			}
			data = data[bitmapBytes:]
		default:
			return fmt.Errorf("coverset delta: unknown container type %#x", typ)
		}
	}
	if len(data) != 0 {
		return fmt.Errorf("coverset delta: %d trailing bytes", len(data))
	}
	return nil
}

// DecodeDeltaBlocks materializes a decoded delta as a sorted slice.
func DecodeDeltaBlocks(data []byte) ([]BlockID, error) {
	var out []BlockID
	if err := DecodeDelta(data, func(b BlockID) { out = append(out, b) }); err != nil {
		return nil, err
	}
	return out, nil
}

// ApplyDelta decodes data into s, returning the number of newly
// covered blocks.
func (s *CoverSet) ApplyDelta(data []byte) (int, error) {
	added := 0
	err := DecodeDelta(data, func(b BlockID) {
		if s.Add(b) {
			added++
		}
	})
	return added, err
}
