package vkernel

import "math/bits"

// CoverSet is a dense bitmap over basic-block IDs. Because the kernel
// numbers blocks contiguously from zero, a bitmap of NumBlocks bits
// replaces the per-program hash sets the fuzzer used to allocate:
// Add/Has are one word operation each, Union is a word-wise OR, and
// the population count is cached so Count is O(1). The zero value is
// an empty set that grows on demand; NewCoverSet pre-sizes the bitmap
// so the hot path never reallocates.
//
// CoverSet is not safe for concurrent mutation; the fuzzer gives each
// campaign goroutine its own set and merges under a lock.
type CoverSet struct {
	words []uint64
	n     int
}

// NewCoverSet returns an empty set pre-sized for block IDs in
// [0, bound).
func NewCoverSet(bound uint32) *CoverSet {
	return &CoverSet{words: make([]uint64, (int(bound)+63)/64)}
}

// grow ensures the bitmap covers word index w, at least doubling so
// grow-on-demand sets stay amortized O(1) per Add.
func (s *CoverSet) grow(w int) {
	if w < len(s.words) {
		return
	}
	words := make([]uint64, max(w+1, 2*len(s.words)))
	copy(words, s.words)
	s.words = words
}

// Add inserts block b and reports whether it was newly covered.
func (s *CoverSet) Add(b BlockID) bool {
	w, bit := int(b>>6), uint64(1)<<(b&63)
	s.grow(w)
	if s.words[w]&bit != 0 {
		return false
	}
	s.words[w] |= bit
	s.n++
	return true
}

// Has reports whether block b is covered.
func (s *CoverSet) Has(b BlockID) bool {
	if s == nil {
		return false
	}
	w := int(b >> 6)
	return w < len(s.words) && s.words[w]&(1<<(b&63)) != 0
}

// Count returns the number of covered blocks in O(1).
func (s *CoverSet) Count() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Union folds o into s and returns the number of newly covered
// blocks.
func (s *CoverSet) Union(o *CoverSet) int {
	if o == nil {
		return 0
	}
	if len(o.words) > 0 {
		s.grow(len(o.words) - 1)
	}
	added := 0
	for i, w := range o.words {
		if nw := w &^ s.words[i]; nw != 0 {
			s.words[i] |= nw
			added += bits.OnesCount64(nw)
		}
	}
	s.n += added
	return added
}

// Diff returns the number of blocks covered by s but not by o
// (the evaluation's "unique coverage" metric).
func (s *CoverSet) Diff(o *CoverSet) int {
	if s == nil {
		return 0
	}
	n := 0
	for i, w := range s.words {
		if o != nil && i < len(o.words) {
			w &^= o.words[i]
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear empties the set, retaining its capacity for reuse.
func (s *CoverSet) Clear() {
	clear(s.words)
	s.n = 0
}

// Clone returns an independent copy of the set.
func (s *CoverSet) Clone() *CoverSet {
	if s == nil {
		return &CoverSet{}
	}
	return &CoverSet{words: append([]uint64(nil), s.words...), n: s.n}
}

// Equal reports whether two sets cover exactly the same blocks.
func (s *CoverSet) Equal(o *CoverSet) bool {
	if s.Count() != o.Count() {
		return false
	}
	if s == nil || o == nil {
		return true // counts matched, so both are empty
	}
	long, short := s, o
	if len(o.words) > len(s.words) {
		long, short = o, s
	}
	for i, w := range long.words {
		var ow uint64
		if i < len(short.words) {
			ow = short.words[i]
		}
		if w != ow {
			return false
		}
	}
	return true
}

// Blocks returns the covered blocks as a sorted slice — the set's
// sorted iterator, materialized. Bitmap order is ID order, so no
// sorting pass is needed.
func (s *CoverSet) Blocks() []BlockID {
	if s == nil {
		return nil
	}
	out := make([]BlockID, 0, s.n)
	s.ForEach(func(b BlockID) { out = append(out, b) })
	return out
}

// AppendBlocks appends the covered blocks to dst in ascending ID
// order and returns the extended slice — the allocation-free form of
// Blocks for callers that recycle a buffer.
func (s *CoverSet) AppendBlocks(dst []BlockID) []BlockID {
	if s == nil {
		return dst
	}
	for i, w := range s.words {
		base := BlockID(i) << 6
		for w != 0 {
			dst = append(dst, base+BlockID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// ForEach visits every covered block in ascending ID order.
func (s *CoverSet) ForEach(fn func(BlockID)) {
	if s == nil {
		return
	}
	for i, w := range s.words {
		base := BlockID(i) << 6
		for w != 0 {
			fn(base + BlockID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}
