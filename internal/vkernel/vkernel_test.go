package vkernel

import (
	"testing"
	"testing/quick"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
)

var (
	testCorpus = corpus.Build(corpus.TestConfig())
	testKernel = New(testCorpus)
)

// targetFor compiles the oracle spec of one handler (plus ancestors)
// into a prog.Target.
func targetFor(t *testing.T, names ...string) *prog.Target {
	t.Helper()
	f := &syzlang.File{}
	for _, n := range names {
		h := testCorpus.Handler(n)
		if h == nil {
			t.Fatalf("no handler %q", n)
		}
		f.Merge(corpus.OracleSpec(h))
	}
	tgt, err := prog.Compile(f, testCorpus.Env())
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func mkCall(t *testing.T, tgt *prog.Target, g *prog.Gen, p *prog.Prog, name string) int {
	t.Helper()
	sc := tgt.ByName[name]
	if sc == nil {
		t.Fatalf("no syscall %q", name)
	}
	// Generate until the resource bindings resolve (creator chain is
	// deterministic enough at low depth).
	before := len(p.Calls)
	for tries := 0; tries < 50; tries++ {
		trial := &prog.Prog{Calls: append([]*prog.Call(nil), p.Calls...)}
		g2 := g
		_ = g2
		idx := appendCallPublic(g, trial, sc)
		if idx >= 0 {
			*p = *trial
			return idx
		}
		p.Calls = p.Calls[:before]
	}
	t.Fatalf("could not build call %s", name)
	return -1
}

// appendCallPublic drives Gen through its public API: generate a
// one-call program for the syscall by restricting Enabled.
func appendCallPublic(g *prog.Gen, p *prog.Prog, sc *prog.Syscall) int {
	saved := g.Enabled
	defer func() { g.Enabled = saved }()
	// Build using Generate on a temp then append — instead, simplest:
	// use Mutate-free direct generation via Generate with only this
	// syscall + creators enabled is fiddly; we instead call Generate
	// on the full target and scan.
	g.Enabled = nil
	for tries := 0; tries < 200; tries++ {
		q := g.Generate(4)
		for i, c := range q.Calls {
			if c.Sc.Name == sc.Name {
				base := len(p.Calls)
				// Shift resource references.
				for _, cc := range q.Calls {
					cc.ForEachValue(func(v *prog.Value) {
						if v.Type.Kind == prog.KindResource && v.ResultOf >= 0 {
							v.ResultOf += base
						}
					})
				}
				p.Calls = append(p.Calls, q.Calls...)
				return base + i
			}
		}
	}
	return -1
}

func TestOpenCoversDeviceBlocks(t *testing.T) {
	tgt := targetFor(t, "dm")
	g := prog.NewGen(tgt, 1)
	p := &prog.Prog{}
	mkCall(t, tgt, g, p, "openat$dm")
	res := testKernel.Run(p)
	if len(res.Cov) < testCorpus.Handler("dm").OpenBlocks {
		t.Fatalf("open covered %d blocks, want at least %d", len(res.Cov), testCorpus.Handler("dm").OpenBlocks)
	}
}

func TestWrongDeviceNameGetsNothing(t *testing.T) {
	// A spec with the wrong device path (SyzDescribe's dm failure)
	// covers only the generic openat entry block.
	src := `
resource fd_wrong[fd]
openat$wrong(fd const[AT_FDCWD], file ptr[in, string["/dev/device-mapper"]], flags const[O_RDWR], mode const[0]) fd_wrong
ioctl$WRONG(fd fd_wrong, cmd const[2], arg ptr[in, array[int8]])
`
	f, errs := syzlang.Parse(src)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	tgt, err := prog.Compile(f, testCorpus.Env())
	if err != nil {
		t.Fatal(err)
	}
	g := prog.NewGen(tgt, 2)
	covMax := 0
	for i := 0; i < 50; i++ {
		res := testKernel.Run(g.Generate(4))
		if len(res.Cov) > covMax {
			covMax = len(res.Cov)
		}
	}
	if covMax > 2 {
		t.Fatalf("wrong device name still covered %d blocks", covMax)
	}
}

func TestIoctlDispatchAndGates(t *testing.T) {
	tgt := targetFor(t, "cec")
	g := prog.NewGen(tgt, 3)
	// Run many generated programs; coverage must exceed open+entry
	// blocks eventually (gates pass with ranged fields).
	best := 0
	for i := 0; i < 400; i++ {
		res := testKernel.Run(g.Generate(8))
		if n := len(res.Cov); n > best {
			best = n
		}
	}
	min := testCorpus.Handler("cec").OpenBlocks + 8
	if best <= min {
		t.Fatalf("cec fuzzing best coverage %d never exceeded %d", best, min)
	}
}

func TestWrongCmdValueNoDispatch(t *testing.T) {
	// Raw nr values (what SyzDescribe extracts under QuirkIOCNR) are
	// not valid dm command values.
	dm := testCorpus.Handler("dm")
	src := `
resource fd_dm2[fd]
openat$dm2(fd const[AT_FDCWD], file ptr[in, string["/dev/mapper/control"]], flags const[O_RDWR], mode const[0]) fd_dm2
ioctl$RAW(fd fd_dm2, cmd const[2], arg ptr[in, array[int8]])
`
	f, _ := syzlang.Parse(src)
	tgt, err := prog.Compile(f, testCorpus.Env())
	if err != nil {
		t.Fatal(err)
	}
	g := prog.NewGen(tgt, 4)
	for i := 0; i < 100; i++ {
		res := testKernel.Run(g.Generate(4))
		// open blocks + generic entries only; never a cmd entry.
		if len(res.Cov) > dm.OpenBlocks+2 {
			t.Fatalf("raw nr dispatched: %d blocks", len(res.Cov))
		}
	}
}

func TestDMBugTriggers(t *testing.T) {
	tgt := targetFor(t, "dm")
	g := prog.NewGen(tgt, 5)
	g.Enabled = map[string]bool{"openat$dm": true, "ioctl$DM_LIST_VERSIONS": true}
	var hit *Crash
	for i := 0; i < 3000 && hit == nil; i++ {
		res := testKernel.Run(g.Generate(4))
		hit = res.Crash
	}
	if hit == nil {
		t.Fatal("kmalloc bug in ctl_ioctl never triggered with the correct spec")
	}
	if hit.Title != "kmalloc bug in ctl_ioctl" {
		t.Fatalf("unexpected crash %q", hit.Title)
	}
}

func TestStatefulBugNeedsPriorCmds(t *testing.T) {
	tgt := targetFor(t, "cec")
	g := prog.NewGen(tgt, 6)
	// Only CEC_RECEIVE enabled (plus open): the UAF must NOT fire
	// without its prior commands.
	g.Enabled = map[string]bool{"openat$cec": true, "ioctl$CEC_RECEIVE": true}
	for i := 0; i < 500; i++ {
		if res := testKernel.Run(g.Generate(6)); res.Crash != nil {
			t.Fatalf("stateful bug fired without preconditions: %v", res.Crash.Title)
		}
	}
}

func TestKVMResourceChainCoversChildren(t *testing.T) {
	tgt := targetFor(t, "kvm", "kvm_vm", "kvm_vcpu")
	g := prog.NewGen(tgt, 7)
	lo, hi := testKernel.BlockRange("kvm_vm")
	if hi <= lo {
		t.Fatal("kvm_vm has no block range")
	}
	sawChild := false
	for i := 0; i < 500 && !sawChild; i++ {
		res := testKernel.Run(g.Generate(10))
		for _, b := range res.Cov {
			if b >= lo && b < hi {
				sawChild = true
			}
		}
	}
	if !sawChild {
		t.Fatal("kvm child handler blocks never covered through the resource chain")
	}
}

func TestSocketFamilyDispatch(t *testing.T) {
	tgt := targetFor(t, "rds")
	g := prog.NewGen(tgt, 8)
	best := 0
	for i := 0; i < 300; i++ {
		res := testKernel.Run(g.Generate(8))
		if len(res.Cov) > best {
			best = len(res.Cov)
		}
	}
	if best <= testCorpus.Handler("rds").OpenBlocks+2 {
		t.Fatalf("rds socket fuzzing stuck at %d blocks", best)
	}
}

func TestRDSSendtoBug(t *testing.T) {
	tgt := targetFor(t, "rds")
	g := prog.NewGen(tgt, 9)
	g.Enabled = map[string]bool{"socket$rds": true, "sendto$rds": true}
	var hit *Crash
	for i := 0; i < 2000 && hit == nil; i++ {
		res := testKernel.Run(g.Generate(4))
		hit = res.Crash
	}
	if hit == nil {
		t.Fatal("rds sendto bug never triggered")
	}
	if hit.Title != "UBSAN: array-index-out-of-bounds in rds_cmsg_recv" {
		t.Fatalf("unexpected crash %q", hit.Title)
	}
}

func TestDeterministicExecution(t *testing.T) {
	tgt := targetFor(t, "dm")
	g := prog.NewGen(tgt, 10)
	p := g.Generate(6)
	a := testKernel.Run(p)
	b := testKernel.Run(p)
	if len(a.Cov) != len(b.Cov) {
		t.Fatal("nondeterministic coverage")
	}
	for i := range a.Cov {
		if a.Cov[i] != b.Cov[i] {
			t.Fatal("nondeterministic coverage order")
		}
	}
}

func TestBlockNumberingDisjoint(t *testing.T) {
	// Two kernels over the same corpus number identically.
	k2 := New(testCorpus)
	if k2.TotalBlocks != testKernel.TotalBlocks {
		t.Fatal("nondeterministic block count")
	}
}

func TestQuickRunNeverPanics(t *testing.T) {
	tgt := targetFor(t, "dm", "cec", "rds")
	f := func(seed int64) bool {
		g := prog.NewGen(tgt, seed)
		p := g.Generate(8)
		for i := 0; i < 3; i++ {
			testKernel.Run(p)
			p = g.Mutate(p, 8)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageBounded(t *testing.T) {
	tgt := targetFor(t, "dm", "cec")
	g := prog.NewGen(tgt, 12)
	for i := 0; i < 100; i++ {
		res := testKernel.Run(g.Generate(8))
		for _, b := range res.Cov {
			if b >= testKernel.TotalBlocks {
				t.Fatalf("block id %d out of range %d", b, testKernel.TotalBlocks)
			}
		}
	}
}
