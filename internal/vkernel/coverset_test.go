package vkernel

import (
	"math/rand"
	"sort"
	"testing"
)

func TestCoverSetAddHasCount(t *testing.T) {
	s := NewCoverSet(256)
	if s.Count() != 0 || s.Has(0) {
		t.Fatal("new set not empty")
	}
	for _, b := range []BlockID{0, 63, 64, 65, 200} {
		if !s.Add(b) {
			t.Fatalf("Add(%d) not new", b)
		}
		if s.Add(b) {
			t.Fatalf("Add(%d) twice reported new", b)
		}
		if !s.Has(b) {
			t.Fatalf("Has(%d) false after Add", b)
		}
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
	if s.Has(1) || s.Has(255) {
		t.Fatal("Has reports uncovered block")
	}
}

func TestCoverSetGrowsBeyondBound(t *testing.T) {
	s := NewCoverSet(8)
	if !s.Add(1000) || !s.Has(1000) {
		t.Fatal("set did not grow past its initial bound")
	}
	var zero CoverSet
	if !zero.Add(77) || zero.Count() != 1 {
		t.Fatal("zero-value set unusable")
	}
}

func TestCoverSetBlocksSorted(t *testing.T) {
	s := NewCoverSet(512)
	want := []BlockID{3, 64, 65, 127, 128, 300, 511}
	for i := len(want) - 1; i >= 0; i-- {
		s.Add(want[i])
	}
	got := s.Blocks()
	if len(got) != len(want) {
		t.Fatalf("Blocks len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Blocks[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
		t.Fatal("Blocks not sorted")
	}
}

func TestCoverSetUnionDiff(t *testing.T) {
	a, b := NewCoverSet(200), NewCoverSet(200)
	for _, blk := range []BlockID{1, 2, 3, 100} {
		a.Add(blk)
	}
	for _, blk := range []BlockID{2, 150} {
		b.Add(blk)
	}
	if got := a.Diff(b); got != 3 {
		t.Fatalf("Diff = %d, want 3", got)
	}
	if got := b.Diff(a); got != 1 {
		t.Fatalf("reverse Diff = %d, want 1", got)
	}
	added := a.Union(b)
	if added != 1 || a.Count() != 5 || !a.Has(150) {
		t.Fatalf("Union added %d, count %d", added, a.Count())
	}
	// Union with a longer set grows the receiver.
	c := NewCoverSet(0)
	if c.Union(a) != 5 || !c.Equal(a) {
		t.Fatal("union into empty set diverged")
	}
}

func TestCoverSetClearClone(t *testing.T) {
	s := NewCoverSet(128)
	s.Add(5)
	s.Add(99)
	c := s.Clone()
	s.Clear()
	if s.Count() != 0 || s.Has(5) {
		t.Fatal("Clear left residue")
	}
	if c.Count() != 2 || !c.Has(5) || !c.Has(99) {
		t.Fatal("Clone shares state with original")
	}
	if s.Equal(c) {
		t.Fatal("cleared set equal to clone")
	}
	s.Add(5)
	s.Add(99)
	if !s.Equal(c) {
		t.Fatal("re-added set not equal")
	}
}

func TestCoverSetEqualNil(t *testing.T) {
	var nilSet *CoverSet
	empty := &CoverSet{}
	if !nilSet.Equal(empty) || !empty.Equal(nilSet) || !nilSet.Equal(nilSet) {
		t.Fatal("nil and empty sets should compare equal")
	}
	one := NewCoverSet(64)
	one.Add(3)
	if nilSet.Equal(one) || one.Equal(nilSet) {
		t.Fatal("nil set equal to non-empty set")
	}
}

// TestCoverSetMatchesMapModel cross-checks the bitmap against the map
// implementation it replaced.
func TestCoverSetMatchesMapModel(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := NewCoverSet(1 << 12)
	model := map[BlockID]struct{}{}
	for i := 0; i < 5000; i++ {
		b := BlockID(r.Intn(1 << 12))
		_, dup := model[b]
		model[b] = struct{}{}
		if s.Add(b) == dup {
			t.Fatalf("Add(%d) newness diverged from model", b)
		}
	}
	if s.Count() != len(model) {
		t.Fatalf("Count %d vs model %d", s.Count(), len(model))
	}
	for _, b := range s.Blocks() {
		if _, ok := model[b]; !ok {
			t.Fatalf("block %d not in model", b)
		}
	}
}
