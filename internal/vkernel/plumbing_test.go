package vkernel

// Execution-layer tests for the fd-plumbing and mmap-region surface:
// dup aliasing, pipe I/O, epoll watch lifecycle, and the mmap/munmap
// region model (double-unmap rejection, length validation,
// per-handler block attribution).

import (
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
)

// plumbTarget compiles the cec oracle spec merged with the plumbing
// surface (cec models an mmap region).
func plumbTarget(t *testing.T) *prog.Target {
	t.Helper()
	pf, err := testCorpus.PlumbingSpecFor("cec")
	if err != nil {
		t.Fatal(err)
	}
	merged := syzlang.MergeDedup(corpus.OracleSpec(testCorpus.Handler("cec")), pf)
	if errs := syzlang.Validate(merged, testCorpus.Env()); len(errs) > 0 {
		t.Fatalf("plumbing target invalid: %v", errs[0])
	}
	tgt, err := prog.Compile(merged, testCorpus.Env())
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func mustRun(t *testing.T, tgt *prog.Target, text string) *Result {
	t.Helper()
	p, err := prog.Deserialize(tgt, text)
	if err != nil {
		t.Fatalf("bad program: %v\n%s", err, text)
	}
	return testKernel.Run(p)
}

func TestDupAliasesHandlerFd(t *testing.T) {
	tgt := plumbTarget(t)
	// CEC_ADAP_G_PHYS_ADDR: _IOR('a', 1, int) = 2<<30 | 4<<16 | 0x61<<8 | 1.
	ioctlViaDup := `r0 = openat$cec(0xffffff9c, &"/dev/cec0", 0x2, 0x0)
r1 = dup$cec(r0)
ioctl$CEC_ADAP_G_PHYS_ADDR(r1, 0x80046101, &0x0)
`
	res := mustRun(t, tgt, ioctlViaDup)
	if res.Errno != 0 {
		t.Fatalf("ioctl through dup'd fd failed: %d errors", res.Errno)
	}
	without := mustRun(t, tgt, `r0 = openat$cec(0xffffff9c, &"/dev/cec0", 0x2, 0x0)
ioctl$CEC_ADAP_G_PHYS_ADDR(r0, 0x80046101, &0x0)
`)
	if len(res.Cov) <= len(without.Cov) {
		t.Fatalf("dup covered no extra blocks: %d vs %d", len(res.Cov), len(without.Cov))
	}
	// dup of a bad fd is an error.
	bad := mustRun(t, tgt, `r0 = openat$cec(0xffffff9c, &"/dev/nope", 0x2, 0x0)
dup$cec(0xffffffffffffffff)
`)
	if bad.Errno != 2 {
		t.Fatalf("bad-fd dup not rejected: %d errors", bad.Errno)
	}
}

func TestPipeReadWrite(t *testing.T) {
	tgt := plumbTarget(t)
	res := mustRun(t, tgt, `r0 = pipe$fuzz(0x0)
write$pipe(r0, &[0x41], 0x1)
read$pipe(r0, &[0x0], 0x1)
`)
	if res.Errno != 0 {
		t.Fatalf("pipe I/O failed: %d errors", res.Errno)
	}
	onlyOpen := mustRun(t, tgt, "r0 = pipe$fuzz(0x0)\n")
	// write+read add the generic entries plus both pipe body blocks.
	if len(res.Cov) != len(onlyOpen.Cov)+4 {
		t.Fatalf("pipe I/O blocks off: %d vs %d+4", len(res.Cov), len(onlyOpen.Cov))
	}
}

func TestEpollWatchLifecycle(t *testing.T) {
	tgt := plumbTarget(t)
	ready := mustRun(t, tgt, `r0 = epoll_create$fuzz(0x1)
r1 = pipe$fuzz(0x0)
epoll_ctl$pipe(r0, 0x1, r1, &[])
epoll_wait$fuzz(r0, &[], 0x0, 0x0)
`)
	if ready.Errno != 0 {
		t.Fatalf("epoll add+wait failed: %d errors", ready.Errno)
	}
	idle := mustRun(t, tgt, `r0 = epoll_create$fuzz(0x1)
epoll_wait$fuzz(r0, &[], 0x0, 0x0)
`)
	// The ready path needs a live watch: add covers epoll_add, the
	// target's registration block, and epoll_ready beyond the idle run
	// (which lacks pipe blocks too; compare via the ready-block delta).
	if len(ready.Cov) <= len(idle.Cov) {
		t.Fatalf("watched wait covered no extra blocks: %d vs %d", len(ready.Cov), len(idle.Cov))
	}
	// DEL without a watch is an error; with one it succeeds.
	if res := mustRun(t, tgt, `r0 = epoll_create$fuzz(0x1)
r1 = pipe$fuzz(0x0)
epoll_ctl$pipe(r0, 0x2, r1, &[])
`); res.Errno != 1 {
		t.Fatalf("del-without-watch not rejected: %d errors", res.Errno)
	}
	if res := mustRun(t, tgt, `r0 = epoll_create$fuzz(0x1)
r1 = pipe$fuzz(0x0)
epoll_ctl$pipe(r0, 0x1, r1, &[])
epoll_ctl$pipe(r0, 0x2, r1, &[])
`); res.Errno != 0 {
		t.Fatalf("add-then-del failed: %d errors", res.Errno)
	}
}

func TestMmapRegionModel(t *testing.T) {
	tgt := plumbTarget(t)
	open := `r0 = openat$cec(0xffffff9c, &"/dev/cec0", 0x2, 0x0)
`
	// Page-aligned read/write mapping then unmap: full path, no errors.
	res := mustRun(t, tgt, open+`r1 = mmap$cec(0x0, 0x1000, 0x3, 0x1, r0, 0x0)
munmap$cec(r1, 0x1000)
`)
	if res.Errno != 0 {
		t.Fatalf("mmap+munmap failed: %d errors", res.Errno)
	}
	lo, hi := testKernel.BlockRange("cec")
	mmapBlocks := 0
	openRes := mustRun(t, tgt, open)
	base := map[BlockID]bool{}
	for _, b := range openRes.Cov {
		base[b] = true
	}
	for _, b := range res.Cov {
		if !base[b] && b >= lo && b < hi {
			mmapBlocks++
		}
	}
	// entry + validate + prot-read + prot-write + aligned + munmap
	// (the >=1MB gate stays closed for a 4KiB mapping).
	if mmapBlocks < 5 {
		t.Fatalf("mmap path covered only %d cec blocks", mmapBlocks)
	}

	// Zero-length mapping is rejected and produces no region.
	if res := mustRun(t, tgt, open+`r1 = mmap$cec(0x0, 0x0, 0x3, 0x1, r0, 0x0)
munmap$cec(r1, 0x0)
`); res.Errno != 2 {
		t.Fatalf("zero-length mmap chain: want 2 errors, got %d", res.Errno)
	}

	// Double unmap is rejected.
	if res := mustRun(t, tgt, open+`r1 = mmap$cec(0x0, 0x1000, 0x3, 0x1, r0, 0x0)
munmap$cec(r1, 0x1000)
munmap$cec(r1, 0x1000)
`); res.Errno != 1 {
		t.Fatalf("double munmap: want 1 error, got %d", res.Errno)
	}

	// Unmappable device: dm has no mmap surface; its spec has no
	// mmap$dm either, so mapping a dm fd is unreachable by
	// construction — assert at the model level instead.
	if testCorpus.Handler("dm").MmapBlocks != 0 {
		t.Fatal("dm unexpectedly mappable")
	}
}
