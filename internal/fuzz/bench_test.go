package fuzz

import (
	"context"
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/telemetry"
)

func benchTarget(b *testing.B) *prog.Target {
	b.Helper()
	f := &syzlang.File{}
	for _, n := range []string{"dm", "cec"} {
		f.Merge(corpus.OracleSpec(testCorpus.Handler(n)))
	}
	tgt, err := prog.Compile(f, testCorpus.Env())
	if err != nil {
		b.Fatal(err)
	}
	return tgt
}

// BenchmarkCampaign measures end-to-end serial fuzzing throughput on
// the reusable-VM hot path; execs/sec is 500 / (ns_per_op · 1e-9).
func BenchmarkCampaign(b *testing.B) {
	f := New(benchTarget(b), testKernel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Run(DefaultConfig(500, int64(i)))
	}
}

// BenchmarkCampaignTelemetry is BenchmarkCampaign with the full
// telemetry bundle attached (metrics + flight ring): the A/B against
// BenchmarkCampaign prices the enabled path, and BenchmarkCampaign
// itself — whose config leaves telemetry nil — gates the disabled
// path against the recorded baseline.
func BenchmarkCampaignTelemetry(b *testing.B) {
	reg := telemetry.NewRegistry()
	fr := telemetry.NewFlightRecorder(b.TempDir(), 256, nil)
	f := New(benchTarget(b), testKernel)
	cfg := DefaultConfig(500, 0)
	cfg.Metrics = NewMetrics(reg)
	cfg.Flight = fr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		f.Run(cfg)
	}
}

// BenchmarkCampaignNoTriage isolates the fuzzing loop from the
// crash-minimization pass.
func BenchmarkCampaignNoTriage(b *testing.B) {
	f := New(benchTarget(b), testKernel)
	cfg := DefaultConfig(500, 0)
	cfg.NoTriage = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		f.Run(cfg)
	}
}

// BenchmarkCampaignAdaptive measures the scheduler-driven loop on the
// bundled drivers with the plumbing surface (the tentpole
// configuration); ns/op here prices the bandit bookkeeping.
func BenchmarkCampaignAdaptive(b *testing.B) {
	f := New(plumbedTarget(b, "dm", "cec", "kvm", "kvm_vm", "kvm_vcpu"), testKernel)
	cfg := DefaultConfig(500, 0)
	cfg.NoTriage = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		f.Run(cfg)
	}
}

// BenchmarkCampaignUniform is the ablation twin of
// BenchmarkCampaignAdaptive (uniform operator selection, same target).
func BenchmarkCampaignUniform(b *testing.B) {
	f := New(plumbedTarget(b, "dm", "cec", "kvm", "kvm_vm", "kvm_vcpu"), testKernel)
	cfg := DefaultConfig(500, 0)
	cfg.NoTriage = true
	cfg.UniformOps = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		f.Run(cfg)
	}
}

// BenchmarkCampaignResume measures the warm-start path: each
// iteration loads the corpus store, imports and replays the stored
// seeds, and runs a short campaign on top. The store itself is built
// once outside the timer and read-only during iterations, so every
// iteration does identical work.
func BenchmarkCampaignResume(b *testing.B) {
	dir := b.TempDir()
	f := New(benchTarget(b), testKernel)
	cold := DefaultConfig(2000, 1)
	cold.NoTriage = true
	cold.CorpusDir = dir
	f.Run(cold)
	cfg := DefaultConfig(500, 0)
	cfg.NoTriage = true
	cfg.CorpusDir = dir
	cfg.ReadOnlyCorpus = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		f.Run(cfg)
	}
}

// BenchmarkRunParallel measures the sharded campaign path end to end.
func BenchmarkRunParallel(b *testing.B) {
	f := New(benchTarget(b), testKernel)
	cfg := DefaultConfig(2048, 1)
	cfg.ShardExecs = 512
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := f.RunParallel(context.Background(), cfg, 4); err != nil {
			b.Fatal(err)
		}
	}
}
