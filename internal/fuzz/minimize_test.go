package fuzz

import (
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
)

// findCrash runs campaigns until one produces the given crash and
// returns the crashing program, re-parsed from its repro text.
func findCrash(t *testing.T, tgt *prog.Target, title string, seed int64) *prog.Prog {
	t.Helper()
	f := New(tgt, testKernel)
	for s := seed; s < seed+6; s++ {
		stats := f.Run(DefaultConfig(8000, s))
		if cr, ok := stats.Crashes[title]; ok {
			p, err := prog.Deserialize(tgt, cr.Repro)
			if err != nil {
				t.Fatalf("repro does not deserialize: %v\n%s", err, cr.Repro)
			}
			return p
		}
	}
	t.Skipf("crash %q not found within budget", title)
	return nil
}

func TestMinimizePreservesCrash(t *testing.T) {
	tgt := targetFor(t, "dm")
	const title = "kmalloc bug in ctl_ioctl"
	p := findCrash(t, tgt, title, 31)
	min := Minimize(testKernel, p, title)
	if !crashesWith(testKernel, min, title) {
		t.Fatalf("minimized program lost the crash:\n%s", min.Serialize())
	}
	if len(min.Calls) > len(p.Calls) {
		t.Fatal("minimization grew the program")
	}
}

func TestMinimizeShrinksToEssentials(t *testing.T) {
	tgt := targetFor(t, "dm")
	const title = "kmalloc bug in ctl_ioctl"
	p := findCrash(t, tgt, title, 41)
	min := Minimize(testKernel, p, title)
	// The dm kvmalloc bug needs exactly: open + the triggering ioctl.
	if len(min.Calls) > 2 {
		t.Fatalf("expected a 2-call repro, got %d:\n%s", len(min.Calls), min.Serialize())
	}
	names := map[string]bool{}
	for _, c := range min.Calls {
		names[c.Sc.Name] = true
	}
	if !names["openat$dm"] || !names["ioctl$DM_LIST_VERSIONS"] {
		t.Fatalf("essential calls missing:\n%s", min.Serialize())
	}
}

func TestMinimizeStatefulChainKeepsPriors(t *testing.T) {
	tgt := targetFor(t, "cec")
	const title = "WARNING in cec_data_cancel" // needs CEC_TRANSMIT first
	p := findCrash(t, tgt, title, 51)
	min := Minimize(testKernel, p, title)
	if !crashesWith(testKernel, min, title) {
		t.Fatal("minimized chain lost the crash")
	}
	names := map[string]bool{}
	for _, c := range min.Calls {
		names[c.Sc.Name] = true
	}
	// The precondition call must survive minimization.
	if !names["ioctl$CEC_TRANSMIT"] {
		t.Fatalf("prior command removed from stateful repro:\n%s", min.Serialize())
	}
}

func TestMinimizeNonReproducingReturnsInput(t *testing.T) {
	tgt := targetFor(t, "dm")
	g := prog.NewGen(tgt, 61)
	p := g.Generate(4)
	min := Minimize(testKernel, p, "no such crash title")
	if min.Serialize() != p.Clone().Serialize() {
		t.Fatal("non-reproducing input was modified")
	}
}

func TestMinimizedReproSerializes(t *testing.T) {
	tgt := targetFor(t, "dm")
	const title = "kmalloc bug in ctl_ioctl"
	p := findCrash(t, tgt, title, 71)
	min := Minimize(testKernel, p, title)
	rt, err := prog.Deserialize(tgt, min.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if !crashesWith(testKernel, rt, title) {
		t.Fatal("serialized minimized repro does not reproduce")
	}
}

func TestMinimizeHonorsGroundTruthTrigger(t *testing.T) {
	// After minimization, the dm repro's payload must still carry a
	// data_size above the trigger threshold (the essential byte).
	tgt := targetFor(t, "dm")
	const title = "kmalloc bug in ctl_ioctl"
	p := findCrash(t, tgt, title, 81)
	min := Minimize(testKernel, p, title)
	dm := testCorpus.Handler("dm")
	layout := dm.LayoutOf("dm_ioctl")
	found := false
	for _, c := range min.Calls {
		if c.Sc.Name != "ioctl$DM_LIST_VERSIONS" {
			continue
		}
		for _, a := range c.Args {
			if a.Type.Kind == prog.KindPtr && a.Ptr != nil {
				if v, ok := layout.ReadField(a.Ptr.Encode(), "data_size"); ok && v > 0x7fffffff {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("minimized payload lost the trigger value:\n%s", min.Serialize())
	}
	_ = corpus.GateGt // document the trigger op in use
}
