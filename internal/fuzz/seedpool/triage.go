package seedpool

import (
	"kernelgpt/internal/prog"
	"kernelgpt/internal/vkernel"
)

// Minimize shrinks a crashing program while preserving the crash
// title — the triage step applied to every repro before reporting.
// It runs against any Executor (a reusable VM avoids per-trial
// allocation on the triage path). Two passes run to a fixed point:
//
//  1. call removal: drop each call (rebinding resource indices) and
//     keep the removal if the crash still reproduces;
//  2. payload simplification: zero scalar fields and shrink variable
//     arrays one value at a time, keeping changes that preserve the
//     crash.
//
// The result is the small, readable repro a kernel developer would
// receive (Table 4's bug reports).
func Minimize(x vkernel.Executor, p *prog.Prog, title string) *prog.Prog {
	cur := p.Clone()
	if !Reproduces(x, cur, title) {
		return cur // not reproducible as given; return unchanged
	}
	for {
		next, changed := removeOneCall(x, cur, title)
		if !changed {
			break
		}
		cur = next
	}
	simplifyPayloads(x, cur, title)
	return cur
}

// Reproduces reports whether executing p yields a crash with the
// given title.
func Reproduces(x vkernel.Executor, p *prog.Prog, title string) bool {
	res := x.Run(p)
	return res.Crash != nil && res.Crash.Title == title
}

// removeOneCall tries dropping each call in turn; the first removal
// that still crashes is kept.
func removeOneCall(x vkernel.Executor, p *prog.Prog, title string) (*prog.Prog, bool) {
	if len(p.Calls) <= 1 {
		return p, false
	}
	for drop := 0; drop < len(p.Calls); drop++ {
		trial, ok := withoutCall(p, drop)
		if !ok {
			continue
		}
		if Reproduces(x, trial, title) {
			return trial, true
		}
	}
	return p, false
}

// withoutCall clones p minus call #drop, rebinding resource indices.
// Returns false when a later call references the dropped result (the
// dependency makes the removal structurally invalid).
func withoutCall(p *prog.Prog, drop int) (*prog.Prog, bool) {
	c := p.Clone()
	referenced := false
	for i, call := range c.Calls {
		if i == drop {
			continue
		}
		call.ForEachValue(func(v *prog.Value) {
			if v.Type.Kind == prog.KindResource && v.ResultOf == drop {
				referenced = true
			}
		})
	}
	if referenced {
		return nil, false
	}
	c.Calls = append(c.Calls[:drop], c.Calls[drop+1:]...)
	for _, call := range c.Calls {
		call.ForEachValue(func(v *prog.Value) {
			if v.Type.Kind == prog.KindResource && v.ResultOf > drop {
				v.ResultOf--
			}
		})
	}
	return c, true
}

// simplifyPayloads zeroes non-essential scalars and shrinks arrays in
// place, reverting each change that loses the crash.
func simplifyPayloads(x vkernel.Executor, p *prog.Prog, title string) {
	for _, call := range p.Calls {
		call.ForEachValue(func(v *prog.Value) {
			switch v.Type.Kind {
			case prog.KindInt, prog.KindFlags:
				if v.Scalar == 0 {
					return
				}
				old := v.Scalar
				v.Scalar = 0
				call.FixupLens()
				if !Reproduces(x, p, title) {
					v.Scalar = old
					call.FixupLens()
				}
			case prog.KindArray:
				if v.Type.FixedLen >= 0 {
					return
				}
				for len(v.Fields) > 0 {
					saved := v.Fields
					v.Fields = v.Fields[:len(v.Fields)-1]
					call.FixupLens()
					if !Reproduces(x, p, title) {
						v.Fields = saved
						call.FixupLens()
						break
					}
				}
			case prog.KindString, prog.KindBuffer:
				if v.Type.Str != "" || len(v.Data) == 0 {
					return
				}
				saved := v.Data
				v.Data = v.Data[:0]
				call.FixupLens()
				if !Reproduces(x, p, title) {
					v.Data = saved
					call.FixupLens()
				}
			}
		})
	}
}
