package seedpool

import (
	"math/rand"
	"testing"

	"kernelgpt/internal/prog"
)

// mkProg builds a distinguishable empty program.
func mkProg() *prog.Prog { return &prog.Prog{} }

func TestPoolAddAndLen(t *testing.T) {
	p := New(4)
	if p.Len() != 0 || p.Cap() != 4 {
		t.Fatalf("fresh pool: len=%d cap=%d", p.Len(), p.Cap())
	}
	if p.Add(mkProg(), 0, "") || p.Add(mkProg(), -3, "") {
		t.Fatal("non-positive priority admitted")
	}
	for i := 1; i <= 4; i++ {
		if !p.Add(mkProg(), i, "") {
			t.Fatalf("Add #%d rejected below capacity", i)
		}
	}
	if p.Len() != 4 || p.TotalPrio() != 10 {
		t.Fatalf("len=%d total=%d", p.Len(), p.TotalPrio())
	}
}

func TestPoolEvictsLowestPriority(t *testing.T) {
	p := New(3)
	a, b, c, d := mkProg(), mkProg(), mkProg(), mkProg()
	p.Add(a, 5, "")
	p.Add(b, 1, "")
	p.Add(c, 3, "")
	// d outranks b (the weakest): b is evicted.
	if !p.Add(d, 2, "") {
		t.Fatal("stronger offer rejected")
	}
	if p.Len() != 3 || p.TotalPrio() != 10 {
		t.Fatalf("after eviction: len=%d total=%d", p.Len(), p.TotalPrio())
	}
	held := map[*prog.Prog]bool{}
	p.ForEach(func(s Seed) { held[s.Prog] = true })
	if held[b] || !held[a] || !held[c] || !held[d] {
		t.Fatalf("wrong eviction victim: %v", held)
	}
	// An offer weaker than (or tying) the weakest is rejected.
	if p.Add(mkProg(), 2, "") {
		t.Fatal("tying offer should be rejected (older seed sticky)")
	}
	if p.Add(mkProg(), 1, "") {
		t.Fatal("weaker offer admitted")
	}
	added, evicted, rejected := p.Stats()
	if added != 4 || evicted != 1 || rejected != 2 {
		t.Fatalf("stats = %d/%d/%d", added, evicted, rejected)
	}
}

func TestPoolPickWeighted(t *testing.T) {
	p := New(8)
	lo, hi := mkProg(), mkProg()
	p.Add(lo, 1, "")
	p.Add(hi, 9, "")
	r := rand.New(rand.NewSource(1))
	counts := map[*prog.Prog]int{}
	for i := 0; i < 5000; i++ {
		counts[p.Pick(r)]++
	}
	if counts[lo]+counts[hi] != 5000 {
		t.Fatalf("picks outside pool: %v", counts)
	}
	// Expect ~10%/90%; allow generous slack.
	if counts[hi] < 4000 || counts[lo] < 200 {
		t.Fatalf("weighting off: lo=%d hi=%d", counts[lo], counts[hi])
	}
}

func TestPoolPickEmpty(t *testing.T) {
	p := New(2)
	if p.Pick(rand.New(rand.NewSource(1))) != nil {
		t.Fatal("empty pool picked a seed")
	}
}

func TestPoolDeterministic(t *testing.T) {
	build := func() []*prog.Prog {
		p := New(16)
		progs := make([]*prog.Prog, 64)
		for i := range progs {
			progs[i] = mkProg()
			p.Add(progs[i], (i*7)%13+1, "")
		}
		r := rand.New(rand.NewSource(42))
		var picks []*prog.Prog
		for i := 0; i < 100; i++ {
			picks = append(picks, p.Pick(r))
		}
		return picks
	}
	// Identity-based comparison is impossible across builds; compare
	// pick indices instead by re-running with recorded mapping.
	idx := func(picks []*prog.Prog) []int {
		seen := map[*prog.Prog]int{}
		var out []int
		for _, pr := range picks {
			if _, ok := seen[pr]; !ok {
				seen[pr] = len(seen)
			}
			out = append(out, seen[pr])
		}
		return out
	}
	a, b := idx(build()), idx(build())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestPoolFenwickConsistency hammers the pool with churn and checks
// the Fenwick mass always matches the heap contents, and that every
// pick lands on a live slot.
func TestPoolFenwickConsistency(t *testing.T) {
	p := New(32)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		p.Add(mkProg(), r.Intn(40)+1, "")
		var sum int64
		p.ForEach(func(s Seed) { sum += int64(s.Prio) })
		if sum != p.TotalPrio() {
			t.Fatalf("iter %d: total %d != sum %d", i, p.TotalPrio(), sum)
		}
		if p.Pick(r) == nil {
			t.Fatalf("iter %d: pick failed on non-empty pool", i)
		}
	}
	if p.Len() != 32 {
		t.Fatalf("pool not at capacity: %d", p.Len())
	}
}

// TestPoolHeapProperty verifies the eviction victim is always the
// minimum under churn.
func TestPoolHeapProperty(t *testing.T) {
	p := New(16)
	r := rand.New(rand.NewSource(9))
	live := map[*prog.Prog]int{}
	for i := 0; i < 500; i++ {
		pr, prio := mkProg(), r.Intn(100)+1
		before := map[*prog.Prog]bool{}
		p.ForEach(func(s Seed) { before[s.Prog] = true })
		if p.Add(pr, prio, "") {
			live[pr] = prio
			if len(before) == p.Cap() {
				// Someone was evicted; it must have had the minimum
				// priority among the pre-add seeds.
				minPrio := 1 << 30
				for q := range before {
					if live[q] < minPrio {
						minPrio = live[q]
					}
				}
				var evicted *prog.Prog
				p.ForEach(func(s Seed) { delete(before, s.Prog) })
				for q := range before {
					evicted = q
				}
				if evicted == nil || live[evicted] != minPrio {
					t.Fatalf("iter %d: evicted prio %d, min was %d", i, live[evicted], minPrio)
				}
				delete(live, evicted)
			}
		}
	}
}

// TestPoolLineageReward: coverage feedback shifts scheduling weight
// toward productive lineages and decays it when they run dry.
func TestPoolLineageReward(t *testing.T) {
	p := New(8)
	hot, cold := mkProg(), mkProg()
	p.Add(hot, 2, "splice")
	p.Add(cold, 2, "insert")
	r := rand.New(rand.NewSource(5))
	var hotRef uint64
	for {
		pr, ref := p.PickRef(r)
		if pr == hot {
			hotRef = ref
			break
		}
	}
	for i := 0; i < 10; i++ {
		p.Reward(hotRef, 3)
	}
	if p.TotalPrio() <= 4 {
		t.Fatalf("lineage bonus not applied: total=%d", p.TotalPrio())
	}
	counts := map[*prog.Prog]int{}
	for i := 0; i < 4000; i++ {
		counts[p.Pick(r)]++
	}
	if counts[hot] < 2*counts[cold] {
		t.Fatalf("productive lineage not favored: hot=%d cold=%d", counts[hot], counts[cold])
	}
	// A long dry streak decays the bonus back toward the base weight.
	before := p.TotalPrio()
	for i := 0; i < 200; i++ {
		p.Reward(hotRef, 0)
	}
	if p.TotalPrio() >= before {
		t.Fatalf("dry lineage did not decay: %d -> %d", before, p.TotalPrio())
	}
	// Rewards on dead refs are no-ops.
	p.Reward(9999, 5)
}

// TestPoolLineageBonusCapped: one hot seed cannot grow without bound.
func TestPoolLineageBonusCapped(t *testing.T) {
	p := New(4)
	s := mkProg()
	p.Add(s, 1, "")
	r := rand.New(rand.NewSource(2))
	_, ref := p.PickRef(r)
	for i := 0; i < 1000; i++ {
		p.Reward(ref, 50)
	}
	if got := p.TotalPrio(); got != 1+64 {
		t.Fatalf("bonus not capped: total=%d", got)
	}
}

// TestPoolOpProvenance: seeds remember the operator that bred them.
func TestPoolOpProvenance(t *testing.T) {
	p := New(4)
	p.Add(mkProg(), 1, "shuffle")
	p.Add(mkProg(), 2, "")
	ops := map[string]int{}
	p.ForEach(func(s Seed) { ops[s.Op]++ })
	if ops["shuffle"] != 1 || ops[""] != 1 {
		t.Fatalf("provenance lost: %v", ops)
	}
}

func TestPoolExportImportRoundTrip(t *testing.T) {
	p := New(8)
	progs := []*prog.Prog{mkProg(), mkProg(), mkProg()}
	p.Add(progs[0], 5, "splice")
	p.Add(progs[1], 2, "")
	p.Add(progs[2], 9, "insert")
	// Grow a lineage bonus on the weakest seed so Import must carry
	// more than base priorities.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		_, ref := p.PickRef(r)
		p.Reward(ref, 1)
	}
	exp := p.Export()
	if len(exp) != 3 {
		t.Fatalf("exported %d seeds", len(exp))
	}
	for i := 1; i < len(exp); i++ {
		if exp[i].Weight() > exp[i-1].Weight() {
			t.Fatalf("export not weight-ordered: %+v", exp)
		}
	}
	q := New(8)
	if n := q.Import(exp); n != 3 {
		t.Fatalf("imported %d of 3", n)
	}
	if q.TotalPrio() != p.TotalPrio() {
		t.Fatalf("weight mass not preserved: %d vs %d", q.TotalPrio(), p.TotalPrio())
	}
	if !equalExports(q.Export(), exp) {
		t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", q.Export(), exp)
	}
}

// equalExports compares export snapshots by state (Prog identity
// included).
func equalExports(a, b []SeedState) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPoolImportRespectsCapacityAndRanking(t *testing.T) {
	exp := []SeedState{
		{Prog: mkProg(), Prio: 9},
		{Prog: mkProg(), Prio: 7, Bonus: 1},
		{Prog: mkProg(), Prio: 1},
	}
	p := New(2)
	if n := p.Import(exp); n != 2 {
		t.Fatalf("imported %d into cap-2 pool", n)
	}
	got := p.Export()
	if got[0].Prio != 9 || got[1].Prio != 7 {
		t.Fatalf("wrong survivors: %+v", got)
	}
	// Invalid states are skipped, not admitted.
	if p.Import([]SeedState{{Prog: nil, Prio: 5}, {Prog: mkProg(), Prio: 0}}) != 0 {
		t.Fatal("invalid states admitted")
	}
}

func TestPoolImportClampsBonus(t *testing.T) {
	p := New(4)
	p.Import([]SeedState{
		{Prog: mkProg(), Prio: 3, Bonus: 10 * maxLineageBonus},
		{Prog: mkProg(), Prio: 3, Bonus: -17},
	})
	exp := p.Export()
	if exp[0].Bonus != maxLineageBonus || exp[1].Bonus != 0 {
		t.Fatalf("bonuses not clamped: %+v", exp)
	}
}

func TestPoolImportedLineageStaysRewardable(t *testing.T) {
	p := New(4)
	p.Import([]SeedState{{Prog: mkProg(), Prio: 4, Bonus: 2, Op: "splice"}})
	r := rand.New(rand.NewSource(3))
	_, ref := p.PickRef(r)
	p.Reward(ref, 5)
	exp := p.Export()
	if exp[0].Bonus != 7 {
		t.Fatalf("imported seed bonus not live: %+v", exp[0])
	}
	if exp[0].Op != "splice" {
		t.Fatalf("provenance lost: %+v", exp[0])
	}
}

// namedProg builds a program whose serialized text is distinct per
// name (Reconcile dedups by text, so mkProg's empty programs all
// collide).
func namedProg(name string) *prog.Prog {
	return &prog.Prog{Calls: []*prog.Call{{Sc: &prog.Syscall{Name: name}}}}
}

func TestReconcileDedupsByTextAndRaisesWeight(t *testing.T) {
	p := New(8)
	local := namedProg("a")
	p.Add(local, 5, "")
	p.Add(namedProg("b"), 2, "")

	remote := []SeedState{
		{Prog: namedProg("a"), Prio: 9, Bonus: 1}, // duplicate, heavier: reconcile up
		{Prog: namedProg("b"), Prio: 1},           // duplicate, lighter: no demotion
		{Prog: namedProg("c"), Prio: 4, Op: "splice"},
		{Prog: namedProg("c"), Prio: 3}, // batch-internal duplicate, lighter
	}
	added, reconciled := p.Reconcile(remote)
	if added != 1 || reconciled != 1 {
		t.Fatalf("added=%d reconciled=%d, want 1/1", added, reconciled)
	}
	if p.Len() != 3 {
		t.Fatalf("pool holds %d seeds, want 3 (no duplicate copies)", p.Len())
	}
	weights := map[string]int{}
	held := map[string]*prog.Prog{}
	p.ForEach(func(s Seed) {
		weights[s.Prog.Calls[0].Sc.Name] = s.Weight()
		held[s.Prog.Calls[0].Sc.Name] = s.Prog
	})
	if weights["a"] != 10 {
		t.Fatalf(`seed "a" weight %d, want 10 (raised to remote copy)`, weights["a"])
	}
	if held["a"] != local {
		t.Fatal("reconciliation must keep the local program, not swap in the remote copy")
	}
	if weights["b"] != 2 {
		t.Fatalf(`seed "b" weight %d, want 2 (remote colder copy must not demote)`, weights["b"])
	}
	if weights["c"] != 4 {
		t.Fatalf(`seed "c" weight %d, want 4 (heavier batch copy first)`, weights["c"])
	}
	if p.TotalPrio() != int64(10+2+4) {
		t.Fatalf("weight mass %d, want 16", p.TotalPrio())
	}
}

func TestReconcilePickRespectsRaisedWeight(t *testing.T) {
	p := New(4)
	p.Add(namedProg("cold"), 1, "")
	p.Add(namedProg("hot"), 1, "")
	p.Reconcile([]SeedState{{Prog: namedProg("hot"), Prio: 50}})
	r := rand.New(rand.NewSource(3))
	hot := 0
	for i := 0; i < 500; i++ {
		if pr := p.Pick(r); pr.Calls[0].Sc.Name == "hot" {
			hot++
		}
	}
	// Weight 50 vs 1: the hot seed must dominate selection.
	if hot < 400 {
		t.Fatalf("hot seed picked %d/500 times; raised weight not feeding Pick", hot)
	}
}

func TestReconcileAdmissionFollowsPolicy(t *testing.T) {
	p := New(2)
	p.Add(namedProg("a"), 5, "")
	p.Add(namedProg("b"), 4, "")
	// A weaker offer is rejected; a stronger one evicts the victim.
	added, _ := p.Reconcile([]SeedState{
		{Prog: namedProg("c"), Prio: 3},
		{Prog: namedProg("d"), Prio: 6},
	})
	if added != 1 {
		t.Fatalf("added=%d, want 1 (only the outranking offer)", added)
	}
	names := map[string]bool{}
	p.ForEach(func(s Seed) { names[s.Prog.Calls[0].Sc.Name] = true })
	if !names["a"] || !names["d"] || names["b"] || names["c"] {
		t.Fatalf("wrong survivors: %v", names)
	}
}
