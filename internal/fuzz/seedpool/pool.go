// Package seedpool is the fuzzer's corpus-management subsystem: a
// bounded priority pool of coverage-increasing seed programs with
// O(log n) eviction, priority-proportional seed scheduling, and
// crash-repro triage (minimization). The fuzzing loop hands the pool
// every program that found new coverage; the pool decides what to
// keep, what to evict when full, and which seed to mutate next.
//
// Seeds carry the provenance of the mutation operator that produced
// them, and their scheduling weight is dynamic: Reward feedback adds
// a lineage bonus when mutating a seed keeps finding fresh blocks and
// decays it when the lineage runs dry, so Pick drifts toward the
// productive frontier of the corpus.
//
// All operations are deterministic given the caller's random stream,
// which is what lets sharded campaigns remain bitwise identical
// across worker counts.
package seedpool

import (
	"math/rand"
	"sort"

	"kernelgpt/internal/prog"
)

// DefaultCapacity bounds the pool when New is given a non-positive
// capacity. It matches the seed-corpus bound the serial fuzzer used
// historically.
const DefaultCapacity = 512

// maxLineageBonus caps the dynamic weight a productive lineage can
// accumulate, so one hot seed cannot starve the rest of the corpus.
const maxLineageBonus = 64

// lineageMissWindow is the number of consecutive yield-less mutations
// after which a seed's lineage bonus decays by a quarter.
const lineageMissWindow = 8

// Seed is one retained corpus entry.
type Seed struct {
	Prog *prog.Prog
	// Prio is the base scheduling weight: the number of new blocks
	// the program contributed when it was admitted.
	Prio int
	// Op names the mutation operator that produced the program (""
	// for freshly generated seeds) — the per-seed provenance the
	// campaign Stats aggregate.
	Op string
	// bonus is the lineage bonus: new blocks found by mutations of
	// this seed, capped and decayed as the lineage dries up.
	bonus int
	// misses counts consecutive yield-less mutations since the last
	// bonus change.
	misses int
	// seq orders admissions; among equal weights the newer seed is
	// evicted first, so long-lived discoveries are sticky. It doubles
	// as the seed's stable ref for Reward.
	seq uint64
}

// Weight is the seed's current scheduling weight (base priority plus
// lineage bonus).
func (s *Seed) Weight() int { return s.Prio + s.bonus }

// Pool is a bounded seed corpus. Internally it is a min-heap ordered
// by (Weight, -seq) — the root is always the next eviction victim —
// overlaid with a Fenwick tree of weights over the heap slots, so
// eviction, weighted seed selection, and lineage reweighting are all
// O(log n).
//
// Pool is not safe for concurrent use; campaigns own one pool each.
type Pool struct {
	cap   int
	seeds []Seed
	// fen is a Fenwick (binary indexed) tree over heap slots; fen
	// prefix sums give cumulative weight mass for weighted Pick.
	fen   []int64
	total int64
	seq   uint64
	// slot maps a seed's stable ref (seq) to its current heap slot.
	slot map[uint64]int

	added, evicted, rejected int
}

// New returns an empty pool bounded to capacity seeds (DefaultCapacity
// when capacity <= 0).
func New(capacity int) *Pool {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Pool{cap: capacity, fen: make([]int64, capacity+1), slot: make(map[uint64]int)}
}

// Len returns the number of retained seeds.
func (p *Pool) Len() int { return len(p.seeds) }

// Cap returns the pool bound.
func (p *Pool) Cap() int { return p.cap }

// TotalPrio returns the summed scheduling weight of the retained
// seeds (base priorities plus lineage bonuses).
func (p *Pool) TotalPrio() int64 { return p.total }

// Stats reports lifetime admission counters: seeds admitted, seeds
// evicted to make room, and candidates rejected for ranking below the
// current eviction victim.
func (p *Pool) Stats() (added, evicted, rejected int) {
	return p.added, p.evicted, p.rejected
}

// Add offers a program with the given priority (its new-coverage
// contribution) and the name of the mutation operator that produced
// it ("" for generated programs). Non-positive priorities are
// rejected. When the pool is full, the offer replaces the
// lowest-weight seed if it ranks strictly above it, otherwise it is
// rejected. O(log n).
func (p *Pool) Add(pr *prog.Prog, prio int, op string) bool {
	if prio <= 0 {
		return false
	}
	return p.admit(Seed{Prog: pr, Prio: prio, Op: op})
}

// admit runs the admission policy for a fully formed seed (possibly
// carrying an imported lineage bonus), assigning its seq.
func (p *Pool) admit(s Seed) bool {
	s.seq = p.seq
	p.seq++
	w := int64(s.Weight())
	if len(p.seeds) < p.cap {
		p.seeds = append(p.seeds, s)
		i := len(p.seeds) - 1
		p.slot[s.seq] = i
		p.fenAdd(i, w)
		p.total += w
		p.siftUp(i)
		p.added++
		return true
	}
	if !less(p.seeds[0], s) {
		// The victim outranks (or ties) the offer: keep the corpus.
		p.rejected++
		return false
	}
	delete(p.slot, p.seeds[0].seq)
	d := w - int64(p.seeds[0].Weight())
	p.fenAdd(0, d)
	p.total += d
	p.seeds[0] = s
	p.slot[s.seq] = 0
	p.siftDown(0)
	p.added++
	p.evicted++
	return true
}

// Pick returns a seed chosen with probability proportional to its
// weight, drawing from r. Returns nil on an empty pool. O(log n).
func (p *Pool) Pick(r *rand.Rand) *prog.Prog {
	pr, _ := p.PickRef(r)
	return pr
}

// PickRef is Pick plus the chosen seed's stable ref, which later
// Reward calls use to feed lineage results back. The ref stays valid
// until the seed is evicted; Reward on a dead ref is a no-op.
func (p *Pool) PickRef(r *rand.Rand) (*prog.Prog, uint64) {
	if len(p.seeds) == 0 || p.total <= 0 {
		return nil, 0
	}
	s := &p.seeds[p.fenFind(r.Int63n(p.total))]
	return s.Prog, s.seq
}

// Reward reports the outcome of mutating the seed identified by ref:
// newBlocks is the new coverage the mutation found (zero for a dry
// run). Productive lineages gain weight (capped); lineages that stay
// dry for lineageMissWindow consecutive mutations decay by a quarter
// of their bonus. O(log n) when the weight changes.
func (p *Pool) Reward(ref uint64, newBlocks int) {
	i, ok := p.slot[ref]
	if !ok {
		return
	}
	s := &p.seeds[i]
	var delta int
	if newBlocks > 0 {
		delta = newBlocks
		if s.bonus+delta > maxLineageBonus {
			delta = maxLineageBonus - s.bonus
		}
		s.misses = 0
	} else {
		s.misses++
		if s.misses >= lineageMissWindow && s.bonus > 0 {
			delta = -((s.bonus + 3) / 4)
			s.misses = 0
		}
	}
	if delta == 0 {
		return
	}
	s.bonus += delta
	p.fenAdd(i, int64(delta))
	p.total += int64(delta)
	// The weight change may violate the heap order; restore it.
	if delta > 0 {
		p.siftDown(i)
	} else {
		p.siftUp(i)
	}
}

// ForEach visits the retained seeds in unspecified order.
func (p *Pool) ForEach(fn func(Seed)) {
	for _, s := range p.seeds {
		fn(s)
	}
}

// SeedState is one seed's persistable state: the program plus the
// scheduling weights that Export/Import carry across campaigns (and
// that the corpus store serializes to disk).
type SeedState struct {
	Prog *prog.Prog
	// Prio is the base scheduling weight (new blocks at admission).
	Prio int
	// Bonus is the lineage bonus at export time.
	Bonus int
	// Op is the operator provenance ("" for generated seeds).
	Op string
}

// Weight is the state's total scheduling weight.
func (s SeedState) Weight() int { return s.Prio + s.Bonus }

// Export snapshots the retained seeds with their priority and lineage
// state, in deterministic order: descending weight, then admission
// order. The snapshot shares Prog pointers with the pool; callers
// must not mutate them.
func (p *Pool) Export() []SeedState {
	ordered := append([]Seed(nil), p.seeds...)
	sort.Slice(ordered, func(i, j int) bool {
		if wi, wj := ordered[i].Weight(), ordered[j].Weight(); wi != wj {
			return wi > wj
		}
		return ordered[i].seq < ordered[j].seq
	})
	out := make([]SeedState, len(ordered))
	for i, s := range ordered {
		out[i] = SeedState{Prog: s.Prog, Prio: s.Prio, Bonus: s.bonus, Op: s.Op}
	}
	return out
}

// Import offers exported seeds back to the pool, preserving priority
// and lineage state (bonuses are clamped to the lineage cap).
// Admission follows the normal policy — a full pool keeps only offers
// that outrank its current victim — and the number admitted is
// returned.
func (p *Pool) Import(seeds []SeedState) int {
	n := 0
	for _, st := range seeds {
		if st.Prog == nil || st.Prio <= 0 {
			continue
		}
		bonus := st.Bonus
		if bonus < 0 {
			bonus = 0
		}
		if bonus > maxLineageBonus {
			bonus = maxLineageBonus
		}
		if p.admit(Seed{Prog: st.Prog, Prio: st.Prio, Op: st.Op, bonus: bonus}) {
			n++
		}
	}
	return n
}

// Reconcile imports seeds that may duplicate programs the pool
// already holds — the hub-sync import path, where remote workers keep
// rediscovering the same programs. Seeds are deduplicated by
// serialized program text (within the batch and against the pool):
// a duplicate of a retained seed reconciles weights instead of
// admitting a second copy, raising the retained seed's priority and
// bonus to the incoming copy's when the incoming copy weighs more
// (weights never decrease — a remote's colder view must not demote a
// locally productive lineage). New programs go through the normal
// admission policy. Returns seeds admitted and seeds reconciled
// upward.
//
// Unlike Import, Reconcile serializes every retained program to build
// the text index — checkpoint-cadence work, not hot-path work (and
// skipped entirely for an empty batch, the steady state of a hub
// sync with nothing new).
func (p *Pool) Reconcile(seeds []SeedState) (added, reconciled int) {
	if len(seeds) == 0 {
		return 0, 0
	}
	index := make(map[string]uint64, len(p.seeds))
	for _, s := range p.seeds {
		index[s.Prog.Serialize()] = s.seq
	}
	for _, st := range seeds {
		if st.Prog == nil || st.Prio <= 0 {
			continue
		}
		bonus := st.Bonus
		if bonus < 0 {
			bonus = 0
		}
		if bonus > maxLineageBonus {
			bonus = maxLineageBonus
		}
		text := st.Prog.Serialize()
		if ref, ok := index[text]; ok {
			if p.raiseWeight(ref, st.Prio, bonus) {
				reconciled++
			}
			continue
		}
		s := Seed{Prog: st.Prog, Prio: st.Prio, Op: st.Op, bonus: bonus}
		seq := p.seq // admit assigns this seq
		if p.admit(s) {
			index[text] = seq
			added++
		}
	}
	return added, reconciled
}

// raiseWeight lifts the seed identified by ref to the given priority
// and bonus when they weigh more than its current state. Reports
// whether the weight changed.
func (p *Pool) raiseWeight(ref uint64, prio, bonus int) bool {
	i, ok := p.slot[ref]
	if !ok {
		return false
	}
	s := &p.seeds[i]
	if prio+bonus <= s.Weight() {
		return false
	}
	delta := int64(prio + bonus - s.Weight())
	s.Prio, s.bonus = prio, bonus
	p.fenAdd(i, delta)
	p.total += delta
	p.siftDown(i) // weight increased: may need to sink below children
	return true
}

// less orders eviction: lower weight first; among equals, the newer
// admission (higher seq) goes first.
func less(a, b Seed) bool {
	if aw, bw := a.Weight(), b.Weight(); aw != bw {
		return aw < bw
	}
	return a.seq > b.seq
}

// swap exchanges heap slots i and j and moves their weight mass in
// the Fenwick overlay.
func (p *Pool) swap(i, j int) {
	if d := int64(p.seeds[j].Weight() - p.seeds[i].Weight()); d != 0 {
		p.fenAdd(i, d)
		p.fenAdd(j, -d)
	}
	p.seeds[i], p.seeds[j] = p.seeds[j], p.seeds[i]
	p.slot[p.seeds[i].seq] = i
	p.slot[p.seeds[j].seq] = j
}

func (p *Pool) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(p.seeds[i], p.seeds[parent]) {
			return
		}
		p.swap(i, parent)
		i = parent
	}
}

func (p *Pool) siftDown(i int) {
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < len(p.seeds) && less(p.seeds[l], p.seeds[min]) {
			min = l
		}
		if r < len(p.seeds) && less(p.seeds[r], p.seeds[min]) {
			min = r
		}
		if min == i {
			return
		}
		p.swap(i, min)
		i = min
	}
}

// fenAdd adds delta to slot i's weight mass.
func (p *Pool) fenAdd(i int, delta int64) {
	for i++; i < len(p.fen); i += i & -i {
		p.fen[i] += delta
	}
}

// fenFind returns the smallest slot whose cumulative weight mass
// exceeds t (0 <= t < total), by binary-indexed descent.
func (p *Pool) fenFind(t int64) int {
	pos := 0
	// Largest power of two covering the tree.
	step := 1
	for step<<1 < len(p.fen) {
		step <<= 1
	}
	for ; step > 0; step >>= 1 {
		if next := pos + step; next < len(p.fen) && p.fen[next] <= t {
			t -= p.fen[next]
			pos = next
		}
	}
	// pos is the count of slots whose cumulative mass is <= t.
	if pos >= len(p.seeds) {
		pos = len(p.seeds) - 1
	}
	return pos
}
