// Package seedpool is the fuzzer's corpus-management subsystem: a
// bounded priority pool of coverage-increasing seed programs with
// O(log n) eviction, priority-proportional seed scheduling, and
// crash-repro triage (minimization). The fuzzing loop hands the pool
// every program that found new coverage; the pool decides what to
// keep, what to evict when full, and which seed to mutate next.
//
// All operations are deterministic given the caller's random stream,
// which is what lets sharded campaigns remain bitwise identical
// across worker counts.
package seedpool

import (
	"math/rand"

	"kernelgpt/internal/prog"
)

// DefaultCapacity bounds the pool when New is given a non-positive
// capacity. It matches the seed-corpus bound the serial fuzzer used
// historically.
const DefaultCapacity = 512

// Seed is one retained corpus entry.
type Seed struct {
	Prog *prog.Prog
	// Prio is the scheduling weight: the number of new blocks the
	// program contributed when it was admitted.
	Prio int
	// seq orders admissions; among equal priorities the newer seed is
	// evicted first, so long-lived discoveries are sticky.
	seq uint64
}

// Pool is a bounded seed corpus. Internally it is a min-heap ordered
// by (Prio, -seq) — the root is always the next eviction victim —
// overlaid with a Fenwick tree of priorities over the heap slots, so
// both eviction and weighted seed selection are O(log n).
//
// Pool is not safe for concurrent use; campaigns own one pool each.
type Pool struct {
	cap   int
	seeds []Seed
	// fen is a Fenwick (binary indexed) tree over heap slots; fen
	// prefix sums give cumulative priority mass for weighted Pick.
	fen   []int64
	total int64
	seq   uint64

	added, evicted, rejected int
}

// New returns an empty pool bounded to capacity seeds (DefaultCapacity
// when capacity <= 0).
func New(capacity int) *Pool {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Pool{cap: capacity, fen: make([]int64, capacity+1)}
}

// Len returns the number of retained seeds.
func (p *Pool) Len() int { return len(p.seeds) }

// Cap returns the pool bound.
func (p *Pool) Cap() int { return p.cap }

// TotalPrio returns the summed priority mass of the retained seeds.
func (p *Pool) TotalPrio() int64 { return p.total }

// Stats reports lifetime admission counters: seeds admitted, seeds
// evicted to make room, and candidates rejected for ranking below the
// current eviction victim.
func (p *Pool) Stats() (added, evicted, rejected int) {
	return p.added, p.evicted, p.rejected
}

// Add offers a program with the given priority (its new-coverage
// contribution). Non-positive priorities are rejected. When the pool
// is full, the offer replaces the lowest-priority seed if it ranks
// strictly above it, otherwise it is rejected. O(log n).
func (p *Pool) Add(pr *prog.Prog, prio int) bool {
	if prio <= 0 {
		return false
	}
	s := Seed{Prog: pr, Prio: prio, seq: p.seq}
	p.seq++
	if len(p.seeds) < p.cap {
		p.seeds = append(p.seeds, s)
		i := len(p.seeds) - 1
		p.fenAdd(i, int64(prio))
		p.total += int64(prio)
		p.siftUp(i)
		p.added++
		return true
	}
	if !less(p.seeds[0], s) {
		// The victim outranks (or ties) the offer: keep the corpus.
		p.rejected++
		return false
	}
	p.fenAdd(0, int64(prio-p.seeds[0].Prio))
	p.total += int64(prio - p.seeds[0].Prio)
	p.seeds[0] = s
	p.siftDown(0)
	p.added++
	p.evicted++
	return true
}

// Pick returns a seed chosen with probability proportional to its
// priority, drawing from r. Returns nil on an empty pool. O(log n).
func (p *Pool) Pick(r *rand.Rand) *prog.Prog {
	if len(p.seeds) == 0 || p.total <= 0 {
		return nil
	}
	return p.seeds[p.fenFind(r.Int63n(p.total))].Prog
}

// ForEach visits the retained seeds in unspecified order.
func (p *Pool) ForEach(fn func(Seed)) {
	for _, s := range p.seeds {
		fn(s)
	}
}

// less orders eviction: lower priority first; among equals, the newer
// admission (higher seq) goes first.
func less(a, b Seed) bool {
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.seq > b.seq
}

// swap exchanges heap slots i and j and moves their priority mass in
// the Fenwick overlay.
func (p *Pool) swap(i, j int) {
	if d := int64(p.seeds[j].Prio - p.seeds[i].Prio); d != 0 {
		p.fenAdd(i, d)
		p.fenAdd(j, -d)
	}
	p.seeds[i], p.seeds[j] = p.seeds[j], p.seeds[i]
}

func (p *Pool) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(p.seeds[i], p.seeds[parent]) {
			return
		}
		p.swap(i, parent)
		i = parent
	}
}

func (p *Pool) siftDown(i int) {
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < len(p.seeds) && less(p.seeds[l], p.seeds[min]) {
			min = l
		}
		if r < len(p.seeds) && less(p.seeds[r], p.seeds[min]) {
			min = r
		}
		if min == i {
			return
		}
		p.swap(i, min)
		i = min
	}
}

// fenAdd adds delta to slot i's priority mass.
func (p *Pool) fenAdd(i int, delta int64) {
	for i++; i < len(p.fen); i += i & -i {
		p.fen[i] += delta
	}
}

// fenFind returns the smallest slot whose cumulative priority mass
// exceeds t (0 <= t < total), by binary-indexed descent.
func (p *Pool) fenFind(t int64) int {
	pos := 0
	// Largest power of two covering the tree.
	step := 1
	for step<<1 < len(p.fen) {
		step <<= 1
	}
	for ; step > 0; step >>= 1 {
		if next := pos + step; next < len(p.fen) && p.fen[next] <= t {
			t -= p.fen[next]
			pos = next
		}
	}
	// pos is the count of slots whose cumulative mass is <= t.
	if pos >= len(p.seeds) {
		pos = len(p.seeds) - 1
	}
	return pos
}
