package fuzz

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/pool"
	"kernelgpt/internal/telemetry"
)

// shardPlan decomposes a campaign budget into independent work units.
// The decomposition depends only on the config — never on the worker
// count — which is what makes RunParallel's merged results identical
// for any number of shards.
type shardPlan struct {
	grain int
	units int
	total int
}

// maxDefaultUnits caps the default decomposition so the per-unit
// budget — and with it corpus evolution depth — scales with the
// campaign budget instead of being pinned at DefaultShardExecs.
const maxDefaultUnits = 16

func planShards(cfg Config) shardPlan {
	grain := cfg.ShardExecs
	if grain <= 0 {
		grain = DefaultShardExecs
		if scaled := (cfg.Execs + maxDefaultUnits - 1) / maxDefaultUnits; scaled > grain {
			grain = scaled
		}
	}
	units := (cfg.Execs + grain - 1) / grain
	if units < 1 {
		units = 1
	}
	return shardPlan{grain: grain, units: units, total: cfg.Execs}
}

// budget returns the execution budget of unit i.
func (p shardPlan) budget(i int) int {
	start := i * p.grain
	if rem := p.total - start; rem < p.grain {
		return rem
	}
	return p.grain
}

// unitSeed derives the campaign seed for unit i of a base seed. The
// derivation is a splitmix-style hash so unit campaigns are
// decorrelated from each other and from RunRepetitions' linear
// derivation.
func unitSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// RunParallel executes one campaign budget as a set of independent
// sharded sub-campaigns on a pool of `shards` worker goroutines and
// returns the merged Stats. The budget is decomposed into fixed-size
// work units (Config.ShardExecs each; by default the grain scales
// with the budget so at most maxDefaultUnits units exist) with
// deterministically derived seeds, so the merged coverage and crash
// sets are bitwise identical regardless of the worker count — shards
// only changes wall-clock time. Crash FirstExec indices are remapped
// into the global budget (unit i's executions occupy [i·grain,
// i·grain+budget)), which keeps discovery-time ordering meaningful
// after the merge. When two units hit the same crash title, the
// earliest remapped FirstExec's repro survives; an exact FirstExec
// tie is broken by lexicographically smaller repro text, so the
// merge never depends on unit completion order.
//
// Units restart corpus evolution from scratch, trading single-run
// corpus depth for restart diversity (empirically a wash or slight
// win on this substrate); for one maximally deep serial campaign use
// Run, or set ShardExecs = Execs.
//
// With Config.CorpusDir set, the store is loaded once up front and
// every unit warm-starts from that same snapshot (imports it and
// replays it against its own budget), so the decomposition stays
// worker-count-invariant. Completed units' corpora are merged back
// deterministically — in unit order, deduplicated, capacity-bounded —
// and flushed when the campaign ends; Config.Checkpoint additionally
// flushes after each completed unit (those intermediate store states
// depend on completion order, the final flush does not).
//
// With Config.Hub set, units do not sync individually (their local
// counters would masquerade as the worker's cumulative stats);
// instead one exchange runs after each completed unit with the merged
// campaign state — cumulative and monotone — plus a Final push when
// the campaign ends. Remote seeds pulled at a boundary warm-start the
// units that launch afterwards (merged into their snapshot and
// replayed, like stored seeds), which makes unit warm-starts depend
// on sync timing when units run concurrently — one more reason the
// detached determinism guarantees do not transfer to hub-attached
// runs.
//
// Cancellation stops unstarted units and interrupts running ones; the
// partial merge and ctx.Err() are returned. Config.Progress, when
// set, is invoked after each unit completes with the merged counts so
// far, and periodically while units run: running units relay their
// serial progress every progressEvery execs, and the aggregated
// update reports the live exec total (merged units plus every running
// unit's last report) alongside the merged-so-far cover and crash
// counts. Exec counts are monotone non-decreasing across the whole
// update stream; cover and crash counts advance when units complete.
func (f *Fuzzer) RunParallel(ctx context.Context, cfg Config, shards int) (*Stats, error) {
	store, seeds, err := f.openStore(cfg)
	if err != nil {
		return nil, err
	}
	clk := cfg.Clock
	start := clk.Now()
	plan := planShards(cfg)
	merged := &Stats{
		Cover:   f.newCover(),
		Crashes: map[string]*CrashReport{},
	}
	var mu sync.Mutex
	done := 0
	// liveExecs tracks each running unit's last progress report;
	// sumLive is their sum. A unit's contribution moves from sumLive
	// into merged.Execs when it completes, so emitted exec totals
	// never regress.
	liveExecs := make([]int, plan.units)
	sumLive := 0
	emit := func() {
		cfg.Progress(Progress{
			ShardsDone: done, ShardsTotal: plan.units,
			Execs: merged.Execs + sumLive, Cover: merged.CoverCount(),
			Crashes: merged.UniqueCrashes(),
			Ops:     append([]OpStat(nil), merged.Ops...),
			// One clock for the whole merged stream: unit-local
			// offsets are not relayed, so the stream stays monotone.
			ElapsedNs: clk.Now().Sub(start).Nanoseconds(),
		})
	}
	exports := make([][]seedpool.SeedState, plan.units)
	// flush merges the snapshot with every completed unit's corpus —
	// in unit order, so the content is deterministic for a fixed set
	// of completed units — and saves the store.
	flush := func() error {
		sets := append([][]seedpool.SeedState{seeds}, exports...)
		return store.Save(corpusstore.Merge(corpusCap(cfg), sets...), merged.CoverCount())
	}
	// Hub attachment: units must not inherit cfg.Hub — each would push
	// its unit-local counters as the worker's cumulative stats.
	// Instead, one exchange runs at every unit boundary with the
	// merged (cumulative, monotone) campaign state, and pulled remote
	// seeds warm-start the units that launch afterwards.
	var remote []seedpool.SeedState
	hubExchange := func(st SyncState) {
		t0 := clk.Now()
		pulled, err := cfg.Hub.Sync(ctx, st)
		d := clk.Now().Sub(t0)
		mu.Lock()
		merged.SyncTime += d
		merged.Syncs++
		if err == nil && !st.Final {
			remote = append(remote, pulled...)
		}
		mu.Unlock() // errors are best-effort, like every hub sync
		cfg.Metrics.syncDone(d.Nanoseconds())
		detail := ""
		if st.Final {
			detail = "final"
		}
		cfg.Flight.Record(telemetry.Event{
			Span: "sync", ElapsedNs: t0.Sub(start).Nanoseconds(),
			DurNs: d.Nanoseconds(), Execs: int64(st.Execs), Detail: detail,
		})
	}
	pool.Run(pool.Clamp(plan.units, shards, runtime.GOMAXPROCS(0)), plan.units, func(i int) {
		c := cfg
		c.Execs = plan.budget(i)
		c.Seed = unitSeed(cfg.Seed, i)
		c.Hub = nil
		c.Progress = nil
		if cfg.Progress != nil {
			c.Progress = func(p Progress) {
				// The unit's own final update (ShardsDone=1) is
				// superseded by the authoritative merge below; relay
				// only the periodic ones.
				if p.ShardsDone != 0 {
					return
				}
				mu.Lock()
				sumLive += p.Execs - liveExecs[i]
				liveExecs[i] = p.Execs
				emit()
				mu.Unlock()
			}
		}
		mu.Lock()
		campSeeds := seeds
		if len(remote) > 0 {
			// Remote seeds pulled so far join the warm-start snapshot
			// (deduplicated, bounded); like stored seeds, they are
			// replayed against the unit's budget.
			campSeeds = corpusstore.Merge(corpusCap(cfg), seeds, remote)
		}
		mu.Unlock()
		unit, corpus, _ := f.run(ctx, c, campaign{seeds: campSeeds})
		mu.Lock()
		sumLive -= liveExecs[i]
		liveExecs[i] = 0
		mergeInto(merged, unit, i*plan.grain)
		done++
		if store != nil || cfg.Hub != nil {
			exports[i] = corpus.Export()
		}
		if store != nil && !cfg.ReadOnlyCorpus && cfg.Checkpoint {
			flush() // best-effort; the final flush surfaces errors
		}
		var sync *SyncState
		if cfg.Hub != nil {
			sync = &SyncState{
				Seeds: exports[i], Cover: merged.Cover.Clone(),
				Execs: merged.Execs, Crashes: crashList(merged),
				Ops: append([]OpStat(nil), merged.Ops...),
			}
		}
		if cfg.Progress != nil {
			emit()
		}
		mu.Unlock()
		if sync != nil {
			hubExchange(*sync) // outside mu: a slow hub must not stall merges
		}
	})
	if cfg.Hub != nil {
		// Campaign-end push: the deterministic merged corpus and final
		// counters, marked Final so the hub can close out the worker.
		hubExchange(SyncState{
			Seeds: corpusstore.Merge(corpusCap(cfg), append([][]seedpool.SeedState{seeds}, exports...)...),
			Cover: merged.Cover.Clone(), Execs: merged.Execs,
			Crashes: crashList(merged), Ops: append([]OpStat(nil), merged.Ops...),
			Final: true,
		})
	}
	var saveErr error
	if store != nil && !cfg.ReadOnlyCorpus {
		saveErr = flush()
	}
	merged.Elapsed = clk.Now().Sub(start)
	return merged, errors.Join(ctx.Err(), saveErr)
}

// mergeInto folds one unit's stats into the merged campaign view.
// Every operation is commutative and order-independent (set union,
// min-by-totally-ordered-key, sum), so the merge result is identical
// for any unit completion order.
func mergeInto(dst, src *Stats, execBase int) {
	dst.Cover.Union(src.Cover)
	for title, cr := range src.Crashes {
		first := execBase + cr.FirstExec
		have := dst.Crashes[title]
		if have == nil {
			dst.Crashes[title] = &CrashReport{
				Title: title, FirstExec: first, Count: cr.Count, Repro: cr.Repro,
			}
			continue
		}
		have.Count += cr.Count
		// The surviving repro is the one from the earliest remapped
		// FirstExec; on an exact FirstExec tie (two units hitting the
		// same title at the same remapped index) the lexicographically
		// smaller repro text wins. Without the secondary key the
		// survivor would depend on unit completion order, breaking the
		// documented shard-count invariance.
		if first < have.FirstExec || (first == have.FirstExec && cr.Repro < have.Repro) {
			have.FirstExec = first
			have.Repro = cr.Repro
		}
	}
	dst.Execs += src.Execs
	dst.CorpusSize += src.CorpusSize
	// Wall-clock aggregates: a unit is a serial campaign, so its
	// Elapsed is one unit's busy time ("per-unit elapsed"); the merged
	// WorkTime is their sum. Elapsed of the merged campaign is stamped
	// by RunParallel itself from its own clock.
	dst.WorkTime += src.WorkTime
	dst.TriageTime += src.TriageTime
	dst.SyncTime += src.SyncTime
	dst.Syncs += src.Syncs
	for _, op := range src.Ops {
		merged := false
		for i := range dst.Ops {
			if dst.Ops[i].Name == op.Name {
				dst.Ops[i].Picks += op.Picks
				dst.Ops[i].NewBlocks += op.NewBlocks
				merged = true
				break
			}
		}
		if !merged {
			dst.Ops = append(dst.Ops, op)
		}
	}
}
