package fuzz

import (
	"context"
	"runtime"
	"sync"

	"kernelgpt/internal/pool"
)

// shardPlan decomposes a campaign budget into independent work units.
// The decomposition depends only on the config — never on the worker
// count — which is what makes RunParallel's merged results identical
// for any number of shards.
type shardPlan struct {
	grain int
	units int
	total int
}

// maxDefaultUnits caps the default decomposition so the per-unit
// budget — and with it corpus evolution depth — scales with the
// campaign budget instead of being pinned at DefaultShardExecs.
const maxDefaultUnits = 16

func planShards(cfg Config) shardPlan {
	grain := cfg.ShardExecs
	if grain <= 0 {
		grain = DefaultShardExecs
		if scaled := (cfg.Execs + maxDefaultUnits - 1) / maxDefaultUnits; scaled > grain {
			grain = scaled
		}
	}
	units := (cfg.Execs + grain - 1) / grain
	if units < 1 {
		units = 1
	}
	return shardPlan{grain: grain, units: units, total: cfg.Execs}
}

// budget returns the execution budget of unit i.
func (p shardPlan) budget(i int) int {
	start := i * p.grain
	if rem := p.total - start; rem < p.grain {
		return rem
	}
	return p.grain
}

// unitSeed derives the campaign seed for unit i of a base seed. The
// derivation is a splitmix-style hash so unit campaigns are
// decorrelated from each other and from RunRepetitions' linear
// derivation.
func unitSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// RunParallel executes one campaign budget as a set of independent
// sharded sub-campaigns on a pool of `shards` worker goroutines and
// returns the merged Stats. The budget is decomposed into fixed-size
// work units (Config.ShardExecs each; by default the grain scales
// with the budget so at most maxDefaultUnits units exist) with
// deterministically derived seeds, so the merged coverage and crash
// sets are bitwise identical regardless of the worker count — shards
// only changes wall-clock time. Crash FirstExec indices are remapped
// into the global budget (unit i's executions occupy [i·grain,
// i·grain+budget)), which keeps discovery-time ordering meaningful
// after the merge.
//
// Units restart corpus evolution from scratch, trading single-run
// corpus depth for restart diversity (empirically a wash or slight
// win on this substrate); for one maximally deep serial campaign use
// Run, or set ShardExecs = Execs.
//
// Cancellation stops unstarted units and interrupts running ones; the
// partial merge and ctx.Err() are returned. Config.Progress, when
// set, is invoked after each unit completes with the merged counts so
// far.
func (f *Fuzzer) RunParallel(ctx context.Context, cfg Config, shards int) (*Stats, error) {
	plan := planShards(cfg)
	merged := &Stats{
		Cover:   f.newCover(),
		Crashes: map[string]*CrashReport{},
	}
	var mu sync.Mutex
	done := 0
	pool.Run(pool.Clamp(plan.units, shards, runtime.GOMAXPROCS(0)), plan.units, func(i int) {
		c := cfg
		c.Execs = plan.budget(i)
		c.Seed = unitSeed(cfg.Seed, i)
		c.Progress = nil // per-unit campaigns report via the merge below
		unit, _ := f.run(ctx, c)
		mu.Lock()
		mergeInto(merged, unit, i*plan.grain)
		done++
		if cfg.Progress != nil {
			cfg.Progress(Progress{
				ShardsDone: done, ShardsTotal: plan.units,
				Execs: merged.Execs, Cover: merged.CoverCount(),
				Crashes: merged.UniqueCrashes(),
				Ops:     append([]OpStat(nil), merged.Ops...),
			})
		}
		mu.Unlock()
	})
	return merged, ctx.Err()
}

// mergeInto folds one unit's stats into the merged campaign view.
// Every operation is commutative (set union, min-by-disjoint-key,
// sum), so the merge result is independent of unit completion order.
func mergeInto(dst, src *Stats, execBase int) {
	dst.Cover.Union(src.Cover)
	for title, cr := range src.Crashes {
		first := execBase + cr.FirstExec
		have := dst.Crashes[title]
		if have == nil {
			dst.Crashes[title] = &CrashReport{
				Title: title, FirstExec: first, Count: cr.Count, Repro: cr.Repro,
			}
			continue
		}
		have.Count += cr.Count
		if first < have.FirstExec {
			have.FirstExec = first
			have.Repro = cr.Repro
		}
	}
	dst.Execs += src.Execs
	dst.CorpusSize += src.CorpusSize
	for _, op := range src.Ops {
		merged := false
		for i := range dst.Ops {
			if dst.Ops[i].Name == op.Name {
				dst.Ops[i].Picks += op.Picks
				dst.Ops[i].NewBlocks += op.NewBlocks
				merged = true
				break
			}
		}
		if !merged {
			dst.Ops = append(dst.Ops, op)
		}
	}
}
