package fuzz

import (
	"context"
	"testing"

	"kernelgpt/internal/prog"
)

func TestRunContextCancellation(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := f.RunContext(ctx, DefaultConfig(1_000_000, 5))
	if err == nil {
		t.Fatal("cancelled serial campaign must report the context error")
	}
	if stats == nil || stats.Execs >= 1_000_000 {
		t.Fatalf("cancellation did not stop the campaign: %+v", stats)
	}
}

func TestRunMatchesRunContext(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	a := f.Run(DefaultConfig(800, 9))
	b, err := f.RunContext(context.Background(), DefaultConfig(800, 9))
	if err != nil {
		t.Fatal(err)
	}
	if a.CoverCount() != b.CoverCount() || a.UniqueCrashes() != b.UniqueCrashes() ||
		a.CorpusSize != b.CorpusSize {
		t.Fatalf("Run and RunContext diverged: %+v vs %+v", a, b)
	}
}

func TestSerialProgress(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(4096, 3)
	var updates []Progress
	cfg.Progress = func(p Progress) { updates = append(updates, p) }
	if _, err := f.RunContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// Periodic updates every progressEvery execs plus the final one.
	if want := 4096/progressEvery - 1 + 1; len(updates) != want {
		t.Fatalf("want %d updates, got %d", want, len(updates))
	}
	last := updates[len(updates)-1]
	if last.ShardsDone != 1 || last.ShardsTotal != 1 || last.Execs != 4096 {
		t.Fatalf("final update wrong: %+v", last)
	}
	for i := 1; i < len(updates); i++ {
		if updates[i].Execs < updates[i-1].Execs || updates[i].Cover < updates[i-1].Cover {
			t.Fatalf("progress must be monotonic: %+v", updates)
		}
	}
}

// TestCrashReprosMinimized is the triage acceptance check: campaign
// crash reports carry minimized repros, not the raw crashing program.
func TestCrashReprosMinimized(t *testing.T) {
	tgt := targetFor(t, "dm")
	f := New(tgt, testKernel)
	stats := f.Run(DefaultConfig(6000, 3))
	cr, ok := stats.Crashes["kmalloc bug in ctl_ioctl"]
	if !ok {
		t.Skip("ctl_ioctl crash not found at this seed")
	}
	p, err := prog.Deserialize(tgt, cr.Repro)
	if err != nil {
		t.Fatalf("repro does not deserialize: %v\n%s", err, cr.Repro)
	}
	if !crashesWith(testKernel, p, cr.Title) {
		t.Fatalf("triaged repro does not reproduce:\n%s", cr.Repro)
	}
	// The dm kvmalloc bug needs exactly open + the triggering ioctl.
	if len(p.Calls) > 2 {
		t.Fatalf("repro not minimized (%d calls):\n%s", len(p.Calls), cr.Repro)
	}
}

func TestNoTriageKeepsRawRepro(t *testing.T) {
	tgt := targetFor(t, "dm")
	f := New(tgt, testKernel)
	cfg := DefaultConfig(6000, 3)
	cfg.NoTriage = true
	stats := f.Run(cfg)
	cr, ok := stats.Crashes["kmalloc bug in ctl_ioctl"]
	if !ok {
		t.Skip("ctl_ioctl crash not found at this seed")
	}
	p, err := prog.Deserialize(tgt, cr.Repro)
	if err != nil {
		t.Fatalf("raw repro does not deserialize: %v", err)
	}
	if !crashesWith(testKernel, p, cr.Title) {
		t.Fatal("raw repro does not reproduce")
	}
	// Triage must not change anything else about the campaign.
	min := f.Run(DefaultConfig(6000, 3))
	if min.CoverCount() != stats.CoverCount() || min.Execs != stats.Execs ||
		min.UniqueCrashes() != stats.UniqueCrashes() {
		t.Fatalf("NoTriage changed campaign outcome: %+v vs %+v", stats, min)
	}
}
