package fuzz

import "kernelgpt/internal/telemetry"

// Metrics is the campaign-side telemetry bundle. All fields are
// nil-safe instruments, and a nil *Metrics disables recording
// entirely, so the campaign loop carries one pointer and pays one nil
// check per event when telemetry is off.
//
// Counters and the exec histogram are fed at progress boundaries
// (every progressEvery execs) from the clock read the boundary
// already makes for Progress.ElapsedNs — telemetry never adds a
// wall-clock read to the per-exec path. Triage and sync histograms
// reuse the durations the campaign already measures into
// Stats.TriageTime/SyncTime.
type Metrics struct {
	// Execs counts executed programs (fuzz_execs_total).
	Execs *telemetry.Counter
	// CoverBlocks counts newly covered basic blocks
	// (fuzz_cover_blocks_total).
	CoverBlocks *telemetry.Counter
	// Crashes counts distinct crash titles discovered
	// (fuzz_crashes_total).
	Crashes *telemetry.Counter
	// CrashHits counts every crash reproduction, including duplicates
	// (fuzz_crash_hits_total).
	CrashHits *telemetry.Counter
	// ExecNs is the mean per-exec latency of each progress window
	// (fuzz_exec_ns): window wall time over window exec count, so it
	// includes amortized mutation/observation cost, which is what a
	// capacity planner wants.
	ExecNs *telemetry.Histogram
	// TriageNs is per-crash minimization latency (fuzz_triage_ns).
	TriageNs *telemetry.Histogram
	// SyncNs is per-hub-exchange latency (fuzz_sync_ns).
	SyncNs *telemetry.Histogram
	// UnitNs is per-work-unit busy time (fuzz_unit_ns): one
	// observation per serial campaign or RunParallel unit.
	UnitNs *telemetry.Histogram
}

// NewMetrics registers the campaign metric set on reg. A nil registry
// yields a nil (disabled) bundle.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Execs:       reg.Counter("fuzz_execs_total"),
		CoverBlocks: reg.Counter("fuzz_cover_blocks_total"),
		Crashes:     reg.Counter("fuzz_crashes_total"),
		CrashHits:   reg.Counter("fuzz_crash_hits_total"),
		ExecNs:      reg.Histogram("fuzz_exec_ns", nil),
		TriageNs:    reg.Histogram("fuzz_triage_ns", nil),
		SyncNs:      reg.Histogram("fuzz_sync_ns", nil),
		UnitNs:      reg.Histogram("fuzz_unit_ns", nil),
	}
}

// crashFound records a newly discovered crash title and, unless
// triage was disabled, its minimization latency.
func (m *Metrics) crashFound(triageNs int64, noTriage bool) {
	if m == nil {
		return
	}
	m.Crashes.Inc()
	if !noTriage {
		m.TriageNs.Observe(triageNs)
	}
}

// crashHit records one crash reproduction (duplicate or not).
func (m *Metrics) crashHit() {
	if m == nil {
		return
	}
	m.CrashHits.Inc()
}

// syncDone records one hub exchange's latency.
func (m *Metrics) syncDone(durNs int64) {
	if m == nil {
		return
	}
	m.SyncNs.Observe(durNs)
}

// unitDone records one work unit's busy time.
func (m *Metrics) unitDone(durNs int64) {
	if m == nil {
		return
	}
	m.UnitNs.Observe(durNs)
}

// metricsWindow folds progress-boundary deltas into a Metrics bundle.
// The caller hands it the elapsed-ns value it already computed for
// the boundary (the single sanctioned clock read), so window
// recording costs no additional time source access.
type metricsWindow struct {
	m         *Metrics
	lastNs    int64
	lastExecs int
	lastCover int
}

// observe folds the window since the previous boundary into counters
// and the exec-latency histogram.
func (w *metricsWindow) observe(stats *Stats, nowNs int64) {
	if w.m == nil {
		return
	}
	cover := stats.CoverCount()
	if de := stats.Execs - w.lastExecs; de > 0 {
		w.m.Execs.Add(int64(de))
		w.m.ExecNs.Observe((nowNs - w.lastNs) / int64(de))
		w.lastNs = nowNs
		w.lastExecs = stats.Execs
	}
	if dc := cover - w.lastCover; dc > 0 {
		w.m.CoverBlocks.Add(int64(dc))
		w.lastCover = cover
	}
}
