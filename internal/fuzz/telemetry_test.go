package fuzz

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kernelgpt/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got to testdata/<name>, rewriting the golden
// with -update (same convention as internal/hub).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s: %v (regenerate with -update)", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (regenerate with -update if deliberate):\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// fixedClock pins campaign time so every measured duration is zero
// and the /metrics exposition is a pure function of the seed.
func fixedClock() telemetry.Clock {
	at := time.Unix(1_700_000_000, 0).UTC()
	return func() time.Time { return at }
}

// runMetricsScenario runs one fully pinned campaign — fixed seed,
// fixed clock — with telemetry enabled and returns the /metrics
// exposition bytes.
func runMetricsScenario(t *testing.T) []byte {
	t.Helper()
	reg := telemetry.NewRegistry()
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(2000, 1)
	cfg.Clock = fixedClock()
	cfg.Metrics = NewMetrics(reg)
	stats := f.Run(cfg)
	if stats.Execs != 2000 {
		t.Fatalf("execs = %d", stats.Execs)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMetricsGoldenBytes pins the campaign /metrics exposition
// byte-for-byte under a fixed clock and seed: identical runs must
// scrape identically (all values are integers, durations are zero
// under the frozen clock, and counters are a pure function of the
// deterministic campaign), and must match the checked-in golden
// (regenerate with `go test ./internal/fuzz -run MetricsGolden
// -update`).
func TestMetricsGoldenBytes(t *testing.T) {
	scrape1 := runMetricsScenario(t)
	scrape2 := runMetricsScenario(t)
	if !bytes.Equal(scrape1, scrape2) {
		t.Errorf("/metrics is not byte-stable across identical runs:\nrun1:\n%s\nrun2:\n%s", scrape1, scrape2)
	}
	checkGolden(t, "golden_metrics.txt", scrape1)
}

// TestMetricsCountersMatchStats cross-checks the scrape against the
// campaign's own Stats: the counters and the stats are two views of
// one run and must agree exactly.
func TestMetricsCountersMatchStats(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(2000, 1)
	cfg.Metrics = m
	stats := f.Run(cfg)
	if got := m.Execs.Value(); got != int64(stats.Execs) {
		t.Errorf("fuzz_execs_total = %d, stats.Execs = %d", got, stats.Execs)
	}
	if got := m.CoverBlocks.Value(); got != int64(stats.CoverCount()) {
		t.Errorf("fuzz_cover_blocks_total = %d, stats cover = %d", got, stats.CoverCount())
	}
	if got := m.Crashes.Value(); got != int64(stats.UniqueCrashes()) {
		t.Errorf("fuzz_crashes_total = %d, unique crashes = %d", got, stats.UniqueCrashes())
	}
	hits := int64(0)
	for _, cr := range stats.Crashes {
		hits += int64(cr.Count)
	}
	if got := m.CrashHits.Value(); got != hits {
		t.Errorf("fuzz_crash_hits_total = %d, summed crash counts = %d", got, hits)
	}
	if stats.UniqueCrashes() > 0 && m.TriageNs.Count() != int64(stats.UniqueCrashes()) {
		t.Errorf("fuzz_triage_ns count = %d, want one observation per unique crash (%d)",
			m.TriageNs.Count(), stats.UniqueCrashes())
	}
	if m.UnitNs.Count() != 1 {
		t.Errorf("fuzz_unit_ns count = %d, want 1 for a serial campaign", m.UnitNs.Count())
	}
}

// TestParallelMetricsShardInvariant runs the same budget at two shard
// widths: the merged exec/cover/crash counters must be identical —
// telemetry inherits RunParallel's worker-count invariance.
func TestParallelMetricsShardInvariant(t *testing.T) {
	run := func(shards int) (*telemetry.Registry, *Metrics) {
		reg := telemetry.NewRegistry()
		m := NewMetrics(reg)
		f := New(targetFor(t, "dm"), testKernel)
		cfg := DefaultConfig(4000, 3)
		cfg.ShardExecs = 1000
		cfg.Metrics = m
		if _, err := f.RunParallel(t.Context(), cfg, shards); err != nil {
			t.Fatal(err)
		}
		return reg, m
	}
	_, m1 := run(1)
	_, m4 := run(4)
	if m1.Execs.Value() != m4.Execs.Value() {
		t.Errorf("exec counters differ across shard widths: %d vs %d", m1.Execs.Value(), m4.Execs.Value())
	}
	if m1.CoverBlocks.Value() != m4.CoverBlocks.Value() {
		t.Errorf("cover counters differ across shard widths: %d vs %d", m1.CoverBlocks.Value(), m4.CoverBlocks.Value())
	}
	if m1.Crashes.Value() != m4.Crashes.Value() {
		t.Errorf("crash counters differ across shard widths: %d vs %d", m1.Crashes.Value(), m4.Crashes.Value())
	}
	if m4.UnitNs.Count() != 4 {
		t.Errorf("fuzz_unit_ns count = %d, want one per unit", m4.UnitNs.Count())
	}
}

// TestFlightDumpOnCrash is the flight-recorder acceptance check: a
// campaign that crashes with a recorder attached must leave a dump
// whose final event is the crashing exec's span, and that exec index
// must match the crash report's FirstExec.
func TestFlightDumpOnCrash(t *testing.T) {
	dir := t.TempDir()
	fr := telemetry.NewFlightRecorder(dir, 64, nil)
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(2000, 1)
	cfg.Flight = fr
	stats := f.Run(cfg)
	if stats.UniqueCrashes() == 0 {
		t.Fatal("campaign found no crashes; the flight path is untested")
	}
	dumps, err := filepath.Glob(filepath.Join(dir, "flight-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != stats.UniqueCrashes() {
		t.Fatalf("dumps = %d, want one per unique crash (%d)", len(dumps), stats.UniqueCrashes())
	}
	for _, dump := range dumps {
		reason, events, err := telemetry.ReadFlightDump(dump)
		if err != nil {
			t.Fatal(err)
		}
		last := events[len(events)-1]
		if last.Span != "crash" {
			t.Fatalf("%s: final event span = %q, want the crashing exec's crash span", dump, last.Span)
		}
		if last.Detail != reason {
			t.Fatalf("%s: final span title %q != dump reason %q", dump, last.Detail, reason)
		}
		cr := stats.Crashes[last.Detail]
		if cr == nil {
			t.Fatalf("%s: dumped crash %q not in campaign stats", dump, last.Detail)
		}
		if last.Execs != int64(cr.FirstExec) {
			t.Fatalf("%s: final span exec %d != crash FirstExec %d", dump, last.Execs, cr.FirstExec)
		}
	}
}

// TestFlightDumpIsSpanStream checks dump lines parse as
// telemetry.SpanRecord — the flight format is the span JSONL format.
func TestFlightDumpIsSpanStream(t *testing.T) {
	dir := t.TempDir()
	fr := telemetry.NewFlightRecorder(dir, 64, nil)
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(2000, 1)
	cfg.Flight = fr
	f.Run(cfg)
	dumps, _ := filepath.Glob(filepath.Join(dir, "flight-*.jsonl"))
	if len(dumps) == 0 {
		t.Fatal("no dumps")
	}
	data, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	for _, line := range lines[1:] { // line 0 is the header
		var rec telemetry.SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("dump line is not a span record: %q: %v", line, err)
		}
		if rec.Span == "" {
			t.Fatalf("dump line has empty span: %q", line)
		}
	}
}

// TestDisabledTelemetryIsInert asserts the zero-config campaign never
// touches telemetry: same stats with and without the fields defaulted
// (the disabled-path guarantee BenchmarkCampaign gates on).
func TestDisabledTelemetryIsInert(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	a := f.Run(DefaultConfig(800, 7))
	cfg := DefaultConfig(800, 7)
	cfg.Metrics = nil
	cfg.Flight = nil
	cfg.Clock = nil
	b := f.Run(cfg)
	if a.CoverCount() != b.CoverCount() || a.UniqueCrashes() != b.UniqueCrashes() || a.Execs != b.Execs {
		t.Fatalf("telemetry-disabled campaign diverged: %d/%d/%d vs %d/%d/%d",
			a.CoverCount(), a.UniqueCrashes(), a.Execs, b.CoverCount(), b.UniqueCrashes(), b.Execs)
	}
}
