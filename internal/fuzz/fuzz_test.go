package fuzz

import (
	"context"
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/vkernel"
)

var (
	testCorpus = corpus.Build(corpus.TestConfig())
	testKernel = vkernel.New(testCorpus)
)

func targetFor(t *testing.T, names ...string) *prog.Target {
	t.Helper()
	f := &syzlang.File{}
	for _, n := range names {
		h := testCorpus.Handler(n)
		if h == nil {
			t.Fatalf("no handler %q", n)
		}
		f.Merge(corpus.OracleSpec(h))
	}
	tgt, err := prog.Compile(f, testCorpus.Env())
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func TestCampaignFindsCoverage(t *testing.T) {
	f := New(targetFor(t, "dm", "cec"), testKernel)
	stats := f.Run(DefaultConfig(2000, 1))
	if stats.CoverCount() < 50 {
		t.Fatalf("campaign covered only %d blocks", stats.CoverCount())
	}
	if stats.CorpusSize == 0 {
		t.Fatal("no seeds retained")
	}
	if stats.Execs != 2000 {
		t.Fatalf("execs = %d", stats.Execs)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	a := f.Run(DefaultConfig(800, 7))
	b := f.Run(DefaultConfig(800, 7))
	if a.CoverCount() != b.CoverCount() || a.UniqueCrashes() != b.UniqueCrashes() {
		t.Fatalf("campaign not deterministic: %d/%d vs %d/%d",
			a.CoverCount(), a.UniqueCrashes(), b.CoverCount(), b.UniqueCrashes())
	}
}

func TestCampaignFindsDMBugs(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	stats := f.Run(DefaultConfig(6000, 3))
	if stats.UniqueCrashes() == 0 {
		t.Fatal("oracle-spec campaign found no dm crashes")
	}
	if _, ok := stats.Crashes["kmalloc bug in ctl_ioctl"]; !ok {
		t.Fatalf("ctl_ioctl bug not found; got %v", stats.CrashTitles())
	}
	cr := stats.Crashes["kmalloc bug in ctl_ioctl"]
	if cr.Repro == "" || cr.Count == 0 {
		t.Fatalf("crash report incomplete: %+v", cr)
	}
}

func TestCoverageGuidanceBeatsBlindGeneration(t *testing.T) {
	tgt := targetFor(t, "cec", "dm", "kvm", "kvm_vm", "kvm_vcpu")
	f := New(tgt, testKernel)
	guided := f.Run(Config{Execs: 3000, Seed: 5, MaxCalls: 8, MutateBias: 0.7})
	blind := f.Run(Config{Execs: 3000, Seed: 5, MaxCalls: 8, MutateBias: 0})
	// Mutation of coverage-increasing seeds should at least match
	// blind generation (stateful deep paths need mutation chains).
	if float64(guided.CoverCount()) < float64(blind.CoverCount())*0.9 {
		t.Fatalf("guided %d much worse than blind %d", guided.CoverCount(), blind.CoverCount())
	}
}

func TestRepetitionsIndependent(t *testing.T) {
	f := New(targetFor(t, "cec"), testKernel)
	reps := f.RunRepetitions(context.Background(), DefaultConfig(500, 11), 3)
	if len(reps) != 3 {
		t.Fatal("wrong rep count")
	}
	if MeanCover(reps) <= 0 {
		t.Fatal("zero mean coverage")
	}
	// Union ≥ each individual.
	union := UnionCover(reps)
	for i, r := range reps {
		if union.Count() < r.CoverCount() {
			t.Fatalf("rep %d larger than union", i)
		}
	}
}

func TestEnabledRestriction(t *testing.T) {
	tgt := targetFor(t, "dm")
	f := New(tgt, testKernel)
	cfg := DefaultConfig(1000, 13)
	cfg.Enabled = map[string]bool{"openat$dm": true}
	stats := f.Run(cfg)
	dm := testCorpus.Handler("dm")
	// Open-only campaigns cover at most open blocks + generic entry.
	if stats.CoverCount() > dm.OpenBlocks+3 {
		t.Fatalf("restriction leaked: %d blocks", stats.CoverCount())
	}
}

func TestUniqueTo(t *testing.T) {
	a, b := vkernel.NewCoverSet(8), vkernel.NewCoverSet(8)
	for _, blk := range []vkernel.BlockID{1, 2, 3} {
		a.Add(blk)
	}
	b.Add(2)
	if got := UniqueTo(a, b); got != 2 {
		t.Fatalf("UniqueTo = %d, want 2", got)
	}
	if got := UniqueTo(b, a); got != 0 {
		t.Fatalf("UniqueTo = %d, want 0", got)
	}
}

func TestBetterSpecsCoverMore(t *testing.T) {
	// The central mechanism of the whole evaluation: the oracle spec
	// (KernelGPT-quality) must out-cover a degraded spec (wrong
	// device name) on the same budget.
	good := New(targetFor(t, "dm"), testKernel).Run(DefaultConfig(1500, 17))

	degraded := `
resource fd_dmx[fd]
openat$dmx(fd const[AT_FDCWD], file ptr[in, string["/dev/device-mapper"]], flags const[O_RDWR], mode const[0]) fd_dmx
ioctl$DMX(fd fd_dmx, cmd const[2], arg ptr[in, array[int8]])
`
	fl, errs := syzlang.Parse(degraded)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	tgt, err := prog.Compile(fl, testCorpus.Env())
	if err != nil {
		t.Fatal(err)
	}
	bad := New(tgt, testKernel).Run(DefaultConfig(1500, 17))
	if good.CoverCount() <= bad.CoverCount() {
		t.Fatalf("correct spec (%d) did not beat wrong spec (%d)",
			good.CoverCount(), bad.CoverCount())
	}
}
