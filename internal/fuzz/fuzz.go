// Package fuzz is the Syzkaller-equivalent fuzzing loop: a
// coverage-guided campaign that generates and mutates syscall
// programs from compiled specifications, executes them on the virtual
// kernel, keeps coverage-increasing programs as seeds, and
// deduplicates crashes by title. Campaign length is measured in
// executed programs rather than wall-clock hours, which maps the
// paper's fixed CPU-hour sessions onto a deterministic budget.
//
// Campaigns run three ways: Run executes one serial campaign,
// RunRepetitions executes n independent campaigns concurrently (the
// paper's 3-repetition averages), and RunParallel shards one campaign
// budget across a worker pool with deterministic per-shard seed
// derivation — the merged coverage and crash sets are identical for
// any worker count, so parallelism is purely a wall-clock knob. All
// entry points accept a context for cancellation and an optional
// progress callback (Config.Progress).
package fuzz

import (
	"context"
	"runtime"
	"sort"

	"kernelgpt/internal/pool"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/vkernel"
)

// Config parameterizes a campaign.
type Config struct {
	// Execs is the program-execution budget.
	Execs int
	// Seed drives all randomness (one seed per repetition).
	Seed int64
	// MaxCalls bounds generated program length.
	MaxCalls int
	// MutateBias is the fraction of iterations that mutate a corpus
	// seed instead of generating fresh programs (Syzkaller's default
	// behavior mutates most of the time once a corpus exists).
	MutateBias float64
	// Enabled restricts the syscall set (per-driver runs in Tables
	// 5/6 enable only the driver's own syscalls, per §5.2).
	Enabled map[string]bool
	// NoLocality disables the generator's resource-locality bias
	// (design-choice ablation).
	NoLocality bool
	// ShardExecs is the execution budget of one independent work
	// unit in RunParallel (0 selects DefaultShardExecs). The unit
	// decomposition — not the worker count — defines the campaign,
	// which is what makes merged results worker-count-invariant.
	ShardExecs int
	// Progress, when set, receives campaign progress updates. It may
	// be called from multiple goroutines, but calls are serialized;
	// the callback must not re-enter the fuzzer.
	Progress func(Progress)
}

// Progress is one progress-callback update, emitted by RunParallel
// after each completed work unit.
type Progress struct {
	// ShardsDone/ShardsTotal count completed work units.
	ShardsDone, ShardsTotal int
	// Execs is the number of programs executed so far.
	Execs int
	// Cover and Crashes are the merged unique counts so far.
	Cover   int
	Crashes int
}

// DefaultShardExecs is the per-unit budget RunParallel uses when
// Config.ShardExecs is zero.
const DefaultShardExecs = 4096

// DefaultConfig returns a campaign configuration with the standard
// knobs.
func DefaultConfig(execs int, seed int64) Config {
	return Config{Execs: execs, Seed: seed, MaxCalls: 8, MutateBias: 0.7}
}

// CrashReport is a deduplicated crash with discovery metadata.
type CrashReport struct {
	Title string
	// FirstExec is the execution index that first hit the crash.
	FirstExec int
	// Count is the number of times the crash reproduced.
	Count int
	// Repro is the crashing program text.
	Repro string
}

// Stats is the outcome of one campaign.
type Stats struct {
	// Cover is the set of covered basic blocks.
	Cover map[vkernel.BlockID]struct{}
	// Crashes maps crash title → report.
	Crashes map[string]*CrashReport
	// Execs is the number of executed programs.
	Execs int
	// CorpusSize is the number of retained seeds.
	CorpusSize int
}

// CoverCount returns the number of covered blocks.
func (s *Stats) CoverCount() int { return len(s.Cover) }

// UniqueCrashes returns the number of distinct crash titles.
func (s *Stats) UniqueCrashes() int { return len(s.Crashes) }

// CrashTitles returns the sorted crash titles.
func (s *Stats) CrashTitles() []string {
	out := make([]string, 0, len(s.Crashes))
	for t := range s.Crashes {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Fuzzer runs campaigns.
type Fuzzer struct {
	Target *prog.Target
	Kernel *vkernel.Kernel
}

// New constructs a fuzzer for a compiled spec suite and kernel.
func New(t *prog.Target, k *vkernel.Kernel) *Fuzzer {
	return &Fuzzer{Target: t, Kernel: k}
}

// seedEntry is one corpus program with its coverage signal.
type seedEntry struct {
	p   *prog.Prog
	cov int
}

// Run executes one campaign to completion.
func (f *Fuzzer) Run(cfg Config) *Stats {
	stats, _ := f.run(context.Background(), cfg)
	return stats
}

// run is the campaign loop. Cancellation is checked between
// executions, so the returned stats are always internally consistent.
func (f *Fuzzer) run(ctx context.Context, cfg Config) (*Stats, error) {
	if cfg.MaxCalls == 0 {
		cfg.MaxCalls = 8
	}
	g := prog.NewGen(f.Target, cfg.Seed)
	g.Enabled = cfg.Enabled
	g.NoLocality = cfg.NoLocality
	stats := &Stats{
		Cover:   map[vkernel.BlockID]struct{}{},
		Crashes: map[string]*CrashReport{},
	}
	var corpus []seedEntry
	for i := 0; i < cfg.Execs; i++ {
		if i%512 == 0 && ctx.Err() != nil {
			stats.CorpusSize = len(corpus)
			return stats, ctx.Err()
		}
		var p *prog.Prog
		if len(corpus) > 0 && g.R.Float64() < cfg.MutateBias {
			seed := corpus[g.R.Intn(len(corpus))]
			p = g.Mutate(seed.p, cfg.MaxCalls)
		} else {
			p = g.Generate(cfg.MaxCalls)
		}
		res := f.Kernel.Run(p)
		stats.Execs++
		newBlocks := 0
		for _, b := range res.Cov {
			if _, ok := stats.Cover[b]; !ok {
				stats.Cover[b] = struct{}{}
				newBlocks++
			}
		}
		if newBlocks > 0 {
			corpus = append(corpus, seedEntry{p: p, cov: newBlocks})
			// Bound the corpus: drop the weakest seeds when large.
			if len(corpus) > 512 {
				sort.SliceStable(corpus, func(a, b int) bool {
					return corpus[a].cov > corpus[b].cov
				})
				corpus = corpus[:384]
			}
		}
		if res.Crash != nil {
			cr := stats.Crashes[res.Crash.Title]
			if cr == nil {
				cr = &CrashReport{
					Title:     res.Crash.Title,
					FirstExec: i,
					Repro:     p.Serialize(),
				}
				stats.Crashes[res.Crash.Title] = cr
			}
			cr.Count++
		}
	}
	stats.CorpusSize = len(corpus)
	return stats, nil
}

// RunRepetitions executes n independent campaigns with derived seeds
// and returns per-rep stats (the paper reports 3-repetition
// averages). Repetitions run concurrently on up to GOMAXPROCS
// workers; results are identical to running them serially because
// each repetition is an independent campaign with its own derived
// seed. Cancellation stops remaining work; completed repetitions
// keep their full stats and interrupted ones report partial stats.
func (f *Fuzzer) RunRepetitions(ctx context.Context, cfg Config, n int) []*Stats {
	out := make([]*Stats, n)
	pool.Run(pool.Clamp(n, 0, runtime.GOMAXPROCS(0)), n, func(i int) {
		c := cfg
		c.Seed = RepSeed(cfg.Seed, i)
		out[i], _ = f.run(ctx, c)
	})
	return out
}

// RepSeed derives repetition i's campaign seed from a base seed —
// the one derivation shared by RunRepetitions and callers that run
// repetitions by hand (e.g. to shard each repetition).
func RepSeed(base int64, i int) int64 { return base + int64(i)*1000003 }

// MeanCover averages covered-block counts over repetitions.
func MeanCover(reps []*Stats) float64 {
	if len(reps) == 0 {
		return 0
	}
	sum := 0
	for _, s := range reps {
		sum += s.CoverCount()
	}
	return float64(sum) / float64(len(reps))
}

// MeanCrashes averages unique-crash counts over repetitions.
func MeanCrashes(reps []*Stats) float64 {
	if len(reps) == 0 {
		return 0
	}
	sum := 0
	for _, s := range reps {
		sum += s.UniqueCrashes()
	}
	return float64(sum) / float64(len(reps))
}

// UnionCover unions coverage across repetitions.
func UnionCover(reps []*Stats) map[vkernel.BlockID]struct{} {
	out := map[vkernel.BlockID]struct{}{}
	for _, s := range reps {
		for b := range s.Cover {
			out[b] = struct{}{}
		}
	}
	return out
}

// UnionCrashTitles unions crash titles across repetitions.
func UnionCrashTitles(reps []*Stats) map[string]bool {
	out := map[string]bool{}
	for _, s := range reps {
		for t := range s.Crashes {
			out[t] = true
		}
	}
	return out
}

// UniqueTo returns the blocks covered by a but not b (Table 3's
// "Unique Cov" column).
func UniqueTo(a, b map[vkernel.BlockID]struct{}) int {
	n := 0
	for blk := range a {
		if _, ok := b[blk]; !ok {
			n++
		}
	}
	return n
}
