// Package fuzz is the Syzkaller-equivalent fuzzing loop: a
// coverage-guided campaign that generates and mutates syscall
// programs from compiled specifications, executes them on the virtual
// kernel, keeps coverage-increasing programs as seeds, and
// deduplicates crashes by title. Campaign length is measured in
// executed programs rather than wall-clock hours, which maps the
// paper's fixed CPU-hour sessions onto a deterministic budget.
//
// The execution hot path recycles its heavy state across programs:
// each campaign runs on one reusable executor VM (vkernel.Executor),
// coverage is tracked in dense vkernel.CoverSet bitmaps, and the seed
// corpus lives in a seedpool.Pool with O(log n) priority eviction and
// priority-weighted scheduling. Crash repros are triaged (minimized)
// at discovery time.
//
// Campaigns run three ways: Run/RunContext execute one serial
// campaign, RunRepetitions executes n independent campaigns
// concurrently (the paper's 3-repetition averages), and RunParallel
// shards one campaign budget across a worker pool with deterministic
// per-shard seed derivation — the merged coverage and crash sets are
// identical for any worker count, so parallelism is purely a
// wall-clock knob. All entry points accept a context for cancellation
// and an optional progress callback (Config.Progress).
package fuzz

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"time"

	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/pool"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/telemetry"
	"kernelgpt/internal/vkernel"
)

// Config parameterizes a campaign.
type Config struct {
	// Execs is the program-execution budget.
	Execs int
	// Seed drives all randomness (one seed per repetition).
	Seed int64
	// MaxCalls bounds generated program length.
	MaxCalls int
	// MutateBias is the fraction of iterations that mutate a corpus
	// seed instead of generating fresh programs (Syzkaller's default
	// behavior mutates most of the time once a corpus exists).
	MutateBias float64
	// Enabled restricts the syscall set (per-driver runs in Tables
	// 5/6 enable only the driver's own syscalls, per §5.2).
	Enabled map[string]bool
	// NoLocality disables the generator's resource-locality bias
	// (design-choice ablation).
	NoLocality bool
	// CorpusCap bounds the seed pool (0 selects
	// seedpool.DefaultCapacity).
	CorpusCap int
	// NoTriage skips crash-repro minimization at discovery time;
	// CrashReport.Repro then holds the raw crashing program.
	NoTriage bool
	// UniformOps disables the adaptive operator scheduler: mutation
	// operators are drawn uniformly at random instead of by
	// coverage-feedback bandit weights (the scheduler ablation
	// baseline).
	UniformOps bool
	// ShardExecs is the execution budget of one independent work
	// unit in RunParallel (0 selects DefaultShardExecs). The unit
	// decomposition — not the worker count — defines the campaign,
	// which is what makes merged results worker-count-invariant.
	ShardExecs int
	// Progress, when set, receives campaign progress updates: after
	// each completed work unit in RunParallel, and periodically from
	// serial Run/RunContext campaigns. It may be called from multiple
	// goroutines, but calls are serialized; the callback must not
	// re-enter the fuzzer.
	Progress func(Progress)
	// CorpusDir, when non-empty, names a persistent corpus-store
	// directory (fuzz/corpusstore). The campaign warm-starts from it:
	// stored seeds are imported into the initial pool with their
	// saved priorities and lineage bonuses (entries that no longer
	// validate are skipped and reported via StoreReport), then
	// replayed — each imported seed is executed once, counting
	// against Execs — so the campaign's coverage baseline includes
	// the stored corpus. When the campaign ends (including on
	// cancellation) the evolved corpus is merged back into the store
	// with a deterministic, capacity-bounded flush. An empty or
	// absent store is a cold start that simply populates the
	// directory. Store configuration errors surface from
	// RunContext/RunParallel; the Run wrapper swallows them along
	// with its stats (use RunContext when CorpusDir is set).
	CorpusDir string
	// Checkpoint additionally flushes the store at intermediate
	// boundaries — after every completed work unit in RunParallel and
	// every progressEvery execs in serial campaigns — so a killed
	// campaign retains corpus progress. Requires CorpusDir.
	// Intermediate checkpoint contents depend on unit completion
	// order; the final flush does not.
	Checkpoint bool
	// ReadOnlyCorpus imports from CorpusDir without flushing back —
	// for evaluation, replay, and benchmark runs that must not
	// mutate the store.
	ReadOnlyCorpus bool
	// StoreReport, when set, receives the corpus-store load report
	// (loaded/skipped entry counts and reasons) before the campaign
	// starts.
	StoreReport func(corpusstore.Report)
	// Hub, when set, attaches the campaign to a coordination hub
	// (internal/hub.Client implements this). At every checkpoint
	// boundary — each progressEvery execs in serial campaigns, which
	// RunParallel units inherit — the campaign pushes its corpus
	// export, new coverage, and crashes, and imports the seeds the hub
	// returns into the live pool (weights reconciled, never demoted);
	// a final push-only sync runs when the campaign ends. Syncs are
	// best-effort: an unreachable hub never fails the campaign.
	//
	// Each sync also renews the worker's hub lease, so the checkpoint
	// cadence doubles as the liveness heartbeat: keep the inter-sync
	// gap under the hub's lease TTL (default one minute), or the hub
	// reaps the lease and the client transparently re-registers —
	// correct but costlier, as the first sync after re-registration
	// replays full state instead of deltas.
	//
	// Imported remote seeds change subsequent mutation picks, so a
	// hub-attached campaign is deterministic only if the hub's
	// responses are (e.g. workers syncing in a fixed order); detached
	// determinism guarantees do not transfer.
	Hub HubSync
	// Clock is the time source for all operator-facing timing:
	// Stats.Elapsed/WorkTime/TriageTime/SyncTime, Progress.ElapsedNs,
	// and telemetry stamps. Nil reads the system wall clock; tests and
	// golden fixtures inject a fixed or stepped clock. The clock never
	// influences campaign results — coverage, crashes, and the RNG
	// stream are identical for any Clock.
	Clock telemetry.Clock
	// Metrics, when set, receives campaign telemetry (exec/cover/crash
	// counters, exec/triage/sync/unit latency histograms). Nil
	// disables recording at one pointer check per event; see Metrics
	// for the feeding discipline that keeps the per-exec path free of
	// extra clock reads.
	Metrics *Metrics
	// Flight, when set, buffers recent campaign activity (progress
	// windows, syncs, crashes) in a bounded ring and dumps the ring to
	// disk whenever a new crash title is discovered, so every crash
	// report carries the engine activity leading up to it. The dump's
	// final event is the crashing exec's span.
	Flight *telemetry.FlightRecorder
}

// HubSync is the campaign-side face of a coordination hub: one
// two-way exchange of fuzzing state. Implementations must be safe for
// concurrent use (RunParallel units share one hub connection).
type HubSync interface {
	// Sync pushes the campaign snapshot and returns remote seeds to
	// import. A nil seed slice with nil error is a valid "nothing new"
	// response.
	Sync(ctx context.Context, st SyncState) ([]seedpool.SeedState, error)
}

// SyncState is the campaign snapshot handed to a hub sync. The hub
// client diffs it against what it already shipped, so handing the
// full cumulative state every time is correct and cheap.
type SyncState struct {
	// Seeds is the current corpus export (weight-ordered).
	Seeds []seedpool.SeedState
	// Cover is the campaign's covered-block set. Read-only for the
	// hook; it aliases live campaign state.
	Cover *vkernel.CoverSet
	// Execs is the budget spent so far.
	Execs int
	// Crashes holds every crash found so far, with cumulative counts.
	Crashes []CrashReport
	// Ops is the per-operator outcome so far.
	Ops []OpStat
	// Final marks the campaign-end sync: the hook should push but not
	// return imports (there is no campaign left to use them).
	Final bool
}

// Progress is one progress-callback update.
type Progress struct {
	// ShardsDone/ShardsTotal count completed work units (a serial
	// campaign is one unit, done when it finishes).
	ShardsDone, ShardsTotal int
	// Execs is the number of programs executed so far.
	Execs int
	// Cover and Crashes are the merged unique counts so far.
	Cover   int
	Crashes int
	// Ops is the merged per-operator scheduler snapshot so far (nil
	// until the first mutation has been credited).
	Ops []OpStat
	// ElapsedNs is the wall-clock offset, in nanoseconds, since the
	// emitting entry point (RunContext, RunParallel) started its
	// campaign. It is monotone non-decreasing across one campaign's
	// update stream, giving downstream consumers (trace files, the
	// internal/sim calibration) a time axis instead of having to
	// infer time from exec counts.
	ElapsedNs int64
}

// OpStat is one mutation operator's campaign outcome: how often the
// scheduler picked it and how much new coverage its mutations found.
// Per-operator yield (NewBlocks/Picks) is the feedback signal the
// adaptive scheduler turns into selection weights.
type OpStat struct {
	Name string
	// Picks is the number of mutations credited to the operator.
	Picks int
	// NewBlocks is the total new-coverage yield of those mutations.
	NewBlocks int
}

// DefaultShardExecs is the per-unit budget RunParallel uses when
// Config.ShardExecs is zero.
const DefaultShardExecs = 4096

// progressEvery is the serial campaign's progress-emission period.
const progressEvery = 1024

// DefaultConfig returns a campaign configuration with the standard
// knobs.
func DefaultConfig(execs int, seed int64) Config {
	return Config{Execs: execs, Seed: seed, MaxCalls: 8, MutateBias: 0.7}
}

// CrashReport is a deduplicated crash with discovery metadata.
type CrashReport struct {
	Title string
	// FirstExec is the execution index that first hit the crash.
	FirstExec int
	// Count is the number of times the crash reproduced.
	Count int
	// Repro is the crashing program text, minimized by the triage
	// pass unless Config.NoTriage was set.
	Repro string
}

// Stats is the outcome of one campaign.
type Stats struct {
	// Cover is the set of covered basic blocks.
	Cover *vkernel.CoverSet
	// Crashes maps crash title → report.
	Crashes map[string]*CrashReport
	// Execs is the number of executed programs.
	Execs int
	// CorpusSize is the number of retained seeds.
	CorpusSize int
	// Ops is the per-operator mutation outcome in canonical operator
	// order (merged by name across shards).
	Ops []OpStat
	// Elapsed is the campaign's wall-clock duration: the time spent
	// inside the campaign loop (serial runs) or between RunParallel
	// entry and the merged result (sharded runs).
	Elapsed time.Duration
	// WorkTime is the summed busy time of the campaign's work units.
	// For a serial campaign it equals Elapsed; for RunParallel it is
	// the sum of per-unit elapsed times, so WorkTime/Elapsed
	// approximates the effective worker parallelism. It includes
	// triage and (in serial campaigns) hub syncs.
	WorkTime time.Duration
	// TriageTime is the portion of WorkTime spent minimizing crash
	// repros (zero with Config.NoTriage).
	TriageTime time.Duration
	// SyncTime is the wall-clock time spent in hub exchanges and
	// Syncs the number of exchanges attempted (zero when detached).
	SyncTime time.Duration
	Syncs    int
}

// OpByName returns the named operator's campaign outcome, or a zero
// OpStat when the operator never ran.
func (s *Stats) OpByName(name string) OpStat {
	for _, o := range s.Ops {
		if o.Name == name {
			return o
		}
	}
	return OpStat{Name: name}
}

// CoverCount returns the number of covered blocks.
func (s *Stats) CoverCount() int { return s.Cover.Count() }

// UniqueCrashes returns the number of distinct crash titles.
func (s *Stats) UniqueCrashes() int { return len(s.Crashes) }

// CrashTitles returns the sorted crash titles.
func (s *Stats) CrashTitles() []string {
	out := make([]string, 0, len(s.Crashes))
	for t := range s.Crashes {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Fuzzer runs campaigns.
type Fuzzer struct {
	Target *prog.Target
	Kernel *vkernel.Kernel
	// NewExecutor, when set, supplies the executor each campaign
	// goroutine runs on — the seam for alternative kernels or
	// backends. Nil uses a reusable VM on Kernel. The factory is
	// called concurrently (RunRepetitions, RunParallel) and must
	// return a distinct executor per call; executors must be
	// deterministic for campaign results to be reproducible.
	NewExecutor func() vkernel.Executor
}

// New constructs a fuzzer for a compiled spec suite and kernel.
func New(t *prog.Target, k *vkernel.Kernel) *Fuzzer {
	return &Fuzzer{Target: t, Kernel: k}
}

// executor builds one campaign's executor.
func (f *Fuzzer) executor() vkernel.Executor {
	if f.NewExecutor != nil {
		return f.NewExecutor()
	}
	return f.Kernel.NewVM()
}

// newCover sizes a coverage set for the kernel when one is present;
// with only NewExecutor set (no Kernel) the set grows on demand.
func (f *Fuzzer) newCover() *vkernel.CoverSet {
	if f.Kernel == nil {
		return &vkernel.CoverSet{}
	}
	return vkernel.NewCoverSet(f.Kernel.NumBlocks())
}

// Run executes one campaign to completion; it is a thin compatibility
// wrapper over RunContext.
func (f *Fuzzer) Run(cfg Config) *Stats {
	stats, _ := f.RunContext(context.Background(), cfg) //syzlint:ctx -- compatibility shim; new callers use RunContext
	return stats
}

// RunContext executes one serial campaign, honoring cancellation and
// emitting Config.Progress updates as the budget is spent. On
// cancellation the partial stats and the context error are returned.
// With Config.CorpusDir set, the campaign warm-starts from the store
// and flushes the evolved corpus back before returning (a flush
// failure is joined into the returned error).
func (f *Fuzzer) RunContext(ctx context.Context, cfg Config) (*Stats, error) {
	store, seeds, err := f.openStore(cfg)
	if err != nil {
		return nil, err
	}
	camp := campaign{seeds: seeds}
	if store != nil && cfg.Checkpoint && !cfg.ReadOnlyCorpus {
		camp.checkpoint = func(corpus *seedpool.Pool, cover int) {
			// Best-effort: a failed checkpoint must not kill the
			// campaign; the final flush surfaces persistent errors.
			flushStore(store, cfg, cover, seeds, corpus.Export())
		}
	}
	stats, corpus, runErr := f.run(ctx, cfg, camp)
	if store != nil && !cfg.ReadOnlyCorpus {
		runErr = errors.Join(runErr, flushStore(store, cfg, stats.CoverCount(), seeds, corpus.Export()))
	}
	return stats, runErr
}

// campaign is the per-run state the entry points thread into the
// loop: the imported seed snapshot and an optional checkpoint hook.
type campaign struct {
	// seeds is the corpus-store snapshot to import and replay.
	seeds []seedpool.SeedState
	// checkpoint, when set, is called at progress boundaries with the
	// live pool and current cover count.
	checkpoint func(corpus *seedpool.Pool, cover int)
}

// openStore resolves cfg's corpus-store configuration into a handle
// and the imported (validated) seed snapshot. A nil store means no
// persistence is configured.
func (f *Fuzzer) openStore(cfg Config) (*corpusstore.Store, []seedpool.SeedState, error) {
	if cfg.CorpusDir == "" {
		return nil, nil, nil
	}
	store, err := corpusstore.Open(cfg.CorpusDir)
	if err != nil {
		return nil, nil, err
	}
	seeds, rep, err := store.Load(f.Target)
	if err != nil {
		return nil, nil, err
	}
	if cfg.StoreReport != nil {
		cfg.StoreReport(*rep)
	}
	return store, seeds, nil
}

// corpusCap is the store/pool bound cfg selects.
func corpusCap(cfg Config) int {
	if cfg.CorpusCap > 0 {
		return cfg.CorpusCap
	}
	return seedpool.DefaultCapacity
}

// flushStore merges the initial snapshot with campaign exports — in
// the deterministic order the caller fixes — and saves the store.
func flushStore(store *corpusstore.Store, cfg Config, cover int, initial []seedpool.SeedState, exports ...[]seedpool.SeedState) error {
	sets := append([][]seedpool.SeedState{initial}, exports...)
	return store.Save(corpusstore.Merge(corpusCap(cfg), sets...), cover)
}

// run is the campaign loop. Cancellation is checked between
// executions, so the returned stats are always internally consistent.
// The evolved seed pool is returned alongside the stats so entry
// points can flush it to a corpus store.
func (f *Fuzzer) run(ctx context.Context, cfg Config, camp campaign) (*Stats, *seedpool.Pool, error) {
	if cfg.MaxCalls == 0 {
		cfg.MaxCalls = 8
	}
	clk := cfg.Clock
	start := clk.Now()
	g := prog.NewGen(f.Target, cfg.Seed)
	g.Enabled = cfg.Enabled
	g.NoLocality = cfg.NoLocality
	x := f.executor()
	// Compiled fast path: when the campaign's executor is a reusable
	// VM, every candidate is lowered once into a recycled ExecProg and
	// run via RunCompiled, with coverage read back into a recycled
	// buffer — zero per-exec allocations. Results are identical to the
	// interpreted Run (same coverage, crashes, errno), so stats and
	// the RNG stream are bit-for-bit unchanged; custom Executors (a
	// recorder, a real-executor bridge) keep the interpreted path, as
	// does triage (cold path, runs on clones).
	vm, _ := x.(*vkernel.VM)
	var cep prog.ExecProg
	var cres vkernel.Result
	execute := func(p *prog.Prog) *vkernel.Result {
		if vm == nil {
			return x.Run(p)
		}
		prog.CompileExecInto(p, &cep)
		cres.Crash, cres.Errno = vm.RunCompiled(&cep)
		cres.Cov = vm.AppendCover(cres.Cov[:0])
		return &cres
	}
	stats := &Stats{
		Cover:   f.newCover(),
		Crashes: map[string]*CrashReport{},
	}
	// The wall-clock fields are stamped on every exit path (including
	// cancellation) so partial stats still carry calibration ground
	// truth. For a serial campaign the loop IS the work unit, so
	// WorkTime equals Elapsed.
	defer func() {
		stats.Elapsed = clk.Now().Sub(start)
		stats.WorkTime = stats.Elapsed
		cfg.Metrics.unitDone(stats.Elapsed.Nanoseconds())
	}()
	corpus := seedpool.New(cfg.CorpusCap)
	sched := newSched(cfg)
	ops := sched.Ops()
	stats.Ops = make([]OpStat, len(ops))
	opIndex := make(map[string]int, len(ops))
	for i, op := range ops {
		stats.Ops[i].Name = op.Name()
		opIndex[op.Name()] = i
	}
	mctx := &prog.MutateCtx{
		MaxCalls: cfg.MaxCalls,
		Donor:    func() *prog.Prog { return corpus.Pick(g.R) },
	}
	// emit is the progress boundary: one clock read feeds the Progress
	// callback, the metrics window, and the flight ring alike.
	win := metricsWindow{m: cfg.Metrics}
	emit := func(done int) {
		if cfg.Progress == nil && cfg.Metrics == nil && cfg.Flight == nil {
			return
		}
		elapsed := clk.Now().Sub(start).Nanoseconds()
		win.observe(stats, elapsed)
		cfg.Flight.Record(telemetry.Event{
			Span: "window", ElapsedNs: elapsed, Execs: int64(stats.Execs),
		})
		if cfg.Progress != nil {
			cfg.Progress(Progress{
				ShardsDone: done, ShardsTotal: 1, Execs: stats.Execs,
				Cover: stats.CoverCount(), Crashes: stats.UniqueCrashes(),
				Ops:       append([]OpStat(nil), stats.Ops...),
				ElapsedNs: elapsed,
			})
		}
	}
	// observe folds one execution result into the stats: new coverage
	// (returned) and crash discovery/dedup at execution index exec.
	observe := func(p *prog.Prog, res *vkernel.Result, exec int) int {
		newBlocks := 0
		for _, b := range res.Cov {
			if stats.Cover.Add(b) {
				newBlocks++
			}
		}
		if res.Crash != nil {
			cr := stats.Crashes[res.Crash.Title]
			if cr == nil {
				t0 := clk.Now()
				cr = &CrashReport{
					Title:     res.Crash.Title,
					FirstExec: exec,
					Repro:     triage(x, p, res.Crash.Title, cfg.NoTriage),
				}
				var triageNs int64
				if !cfg.NoTriage {
					d := clk.Now().Sub(t0)
					stats.TriageTime += d
					triageNs = d.Nanoseconds()
				}
				stats.Crashes[res.Crash.Title] = cr
				cfg.Metrics.crashFound(triageNs, cfg.NoTriage)
				// The crash span is recorded before the dump so the
				// dump's final event is the crashing exec.
				cfg.Flight.Record(telemetry.Event{
					Span: "crash", ElapsedNs: t0.Sub(start).Nanoseconds(),
					DurNs: triageNs, Execs: int64(exec), Detail: res.Crash.Title,
				})
				if cfg.Flight != nil {
					cfg.Flight.Dump(res.Crash.Title) // best-effort, like checkpoints
				}
			}
			cr.Count++
			cfg.Metrics.crashHit()
		}
		return newBlocks
	}
	// Warm start: import the stored snapshot with its scheduling
	// state intact, then replay each imported seed so the campaign's
	// coverage baseline includes the stored corpus. Replays spend
	// budget and can (re)discover crashes like any other execution.
	if len(camp.seeds) > 0 {
		corpus.Import(camp.seeds)
		if vm != nil {
			// Replays are the natural batch site: the seed set is known
			// up front and feedback is folded in after the fact, so they
			// run through RunBatch in chunks (budget trimmed per batch,
			// cancellation checked at batch granularity) with outcomes —
			// and therefore stats — identical to the serial replay.
			replayCompiled(ctx, cfg, vm, camp.seeds, stats, observe)
		} else {
			for _, st := range camp.seeds {
				if stats.Execs >= cfg.Execs || ctx.Err() != nil {
					break
				}
				observe(st.Prog, x.Run(st.Prog), stats.Execs)
				stats.Execs++
			}
		}
	}
	for i := stats.Execs; i < cfg.Execs; i++ {
		if i%512 == 0 && ctx.Err() != nil {
			stats.CorpusSize = corpus.Len()
			return stats, corpus, ctx.Err()
		}
		if i > 0 && i%progressEvery == 0 {
			emit(0)
			if camp.checkpoint != nil {
				camp.checkpoint(corpus, stats.CoverCount())
			}
			hubSync(ctx, cfg, corpus, stats, false, start)
		}
		var p *prog.Prog
		opIdx := -1
		var seedRef uint64
		if seed, ref := pickSeed(corpus, g, cfg.MutateBias); seed != nil {
			seedRef = ref
			var applied prog.Operator
			p, applied = g.MutateOp(seed, ops[sched.Pick(g.R)], mctx)
			// Credit follows the operator that actually mutated: an
			// inapplicable draw falls back (shuffle on a 2-call seed
			// runs mutateArg), and rewarding the requested operator
			// would teach the bandit another operator's yield.
			if applied != nil {
				if i, ok := opIndex[applied.Name()]; ok {
					opIdx = i
				}
			}
		} else {
			p = g.Generate(cfg.MaxCalls)
		}
		res := execute(p)
		stats.Execs++
		newBlocks := observe(p, res, i)
		opName := ""
		if opIdx >= 0 {
			// Feed the outcome back: the scheduler reweights the
			// operator, the pool reweights the seed's lineage.
			sched.Reward(opIdx, newBlocks)
			corpus.Reward(seedRef, newBlocks)
			stats.Ops[opIdx].Picks++
			stats.Ops[opIdx].NewBlocks += newBlocks
			opName = stats.Ops[opIdx].Name
		}
		corpus.Add(p, newBlocks, opName)
	}
	stats.CorpusSize = corpus.Len()
	emit(1)
	hubSync(ctx, cfg, corpus, stats, true, start)
	return stats, corpus, nil
}

// replayBatch is the chunk size warm-start replays run through
// RunBatch with: big enough to amortize dispatch overhead, small
// enough that cancellation (checked once per batch) stays responsive.
const replayBatch = 64

// replayCompiled replays the imported seed snapshot through the
// batched compiled path: each chunk is compiled into recycled
// ExecProgs, executed with RunBatch, and observed in seed order, so
// the resulting stats match the serial interpreted replay exactly.
func replayCompiled(ctx context.Context, cfg Config, vm *vkernel.VM, seeds []seedpool.SeedState, stats *Stats, observe func(*prog.Prog, *vkernel.Result, int) int) {
	eps := make([]*prog.ExecProg, replayBatch)
	for i := range eps {
		eps[i] = &prog.ExecProg{}
	}
	out := make([]vkernel.Result, replayBatch)
	for len(seeds) > 0 {
		if stats.Execs >= cfg.Execs || ctx.Err() != nil {
			return
		}
		n := replayBatch
		if n > len(seeds) {
			n = len(seeds)
		}
		if rem := cfg.Execs - stats.Execs; n > rem {
			n = rem
		}
		batch := seeds[:n]
		seeds = seeds[n:]
		for i, st := range batch {
			prog.CompileExecInto(st.Prog, eps[i])
		}
		vm.RunBatch(eps[:n], out[:n])
		for i, st := range batch {
			observe(st.Prog, &out[i], stats.Execs)
			stats.Execs++
		}
	}
}

// hubSync runs one hub exchange when the campaign is hub-attached:
// push the cumulative snapshot, reconcile returned remote seeds into
// the live pool (skipped on the final sync — there is no campaign
// left to use them). Best-effort: errors leave the campaign running
// detached until the next boundary retries.
func hubSync(ctx context.Context, cfg Config, corpus *seedpool.Pool, stats *Stats, final bool, start time.Time) {
	if cfg.Hub == nil {
		return
	}
	clk := cfg.Clock
	t0 := clk.Now()
	defer func() {
		d := clk.Now().Sub(t0)
		stats.SyncTime += d
		stats.Syncs++
		cfg.Metrics.syncDone(d.Nanoseconds())
		detail := ""
		if final {
			detail = "final"
		}
		cfg.Flight.Record(telemetry.Event{
			Span: "sync", ElapsedNs: t0.Sub(start).Nanoseconds(),
			DurNs: d.Nanoseconds(), Execs: int64(stats.Execs), Detail: detail,
		})
	}()
	remote, err := cfg.Hub.Sync(ctx, SyncState{
		Seeds:   corpus.Export(),
		Cover:   stats.Cover,
		Execs:   stats.Execs,
		Crashes: crashList(stats),
		Ops:     append([]OpStat(nil), stats.Ops...),
		Final:   final,
	})
	if err != nil || final {
		return
	}
	corpus.Reconcile(remote)
}

// crashList snapshots the crash table in sorted-title order.
func crashList(stats *Stats) []CrashReport {
	out := make([]CrashReport, 0, len(stats.Crashes))
	for _, title := range stats.CrashTitles() {
		out = append(out, *stats.Crashes[title])
	}
	return out
}

// newSched builds the campaign's operator scheduler: adaptive by
// default, uniform for the ablation baseline.
func newSched(cfg Config) *prog.Scheduler {
	if cfg.UniformOps {
		return prog.NewUniformScheduler()
	}
	return prog.NewScheduler()
}

// pickSeed decides mutate-vs-generate and selects a seed (returning
// its lineage ref for Reward). The random draws (bias coin, then
// weighted pick) are made in a fixed order so campaigns are
// deterministic.
func pickSeed(corpus *seedpool.Pool, g *prog.Gen, bias float64) (*prog.Prog, uint64) {
	if corpus.Len() == 0 || g.R.Float64() >= bias {
		return nil, 0
	}
	return corpus.PickRef(g.R)
}

// triage produces the reported repro text for a fresh crash,
// minimizing on the campaign's own executor unless disabled.
func triage(x vkernel.Executor, p *prog.Prog, title string, skip bool) string {
	if skip {
		return p.Serialize()
	}
	return seedpool.Minimize(x, p, title).Serialize()
}

// RunRepetitions executes n independent campaigns with derived seeds
// and returns per-rep stats (the paper reports 3-repetition
// averages). Repetitions run concurrently on up to GOMAXPROCS
// workers; results are identical to running them serially because
// each repetition is an independent campaign with its own derived
// seed and executor. Config.Progress is suppressed for the individual
// repetitions (per-rep updates would interleave without attribution).
// Cancellation stops remaining work; completed repetitions keep their
// full stats and interrupted ones report partial stats.
//
// Corpus persistence (Config.CorpusDir) is ignored here: repetitions
// are independent experiments, and warm-starting later reps from
// earlier ones would couple them. Use Run/RunParallel per repetition
// to accumulate a store deliberately.
func (f *Fuzzer) RunRepetitions(ctx context.Context, cfg Config, n int) []*Stats {
	out := make([]*Stats, n)
	pool.Run(pool.Clamp(n, 0, runtime.GOMAXPROCS(0)), n, func(i int) {
		c := cfg
		c.Seed = RepSeed(cfg.Seed, i)
		c.Progress = nil
		c.CorpusDir = ""
		c.Hub = nil // like CorpusDir: sharing would couple the reps
		out[i], _, _ = f.run(ctx, c, campaign{})
	})
	return out
}

// RepSeed derives repetition i's campaign seed from a base seed —
// the one derivation shared by RunRepetitions and callers that run
// repetitions by hand (e.g. to shard each repetition).
func RepSeed(base int64, i int) int64 { return base + int64(i)*1000003 }

// MeanCover averages covered-block counts over repetitions.
func MeanCover(reps []*Stats) float64 {
	if len(reps) == 0 {
		return 0
	}
	sum := 0
	for _, s := range reps {
		sum += s.CoverCount()
	}
	return float64(sum) / float64(len(reps))
}

// MeanCrashes averages unique-crash counts over repetitions.
func MeanCrashes(reps []*Stats) float64 {
	if len(reps) == 0 {
		return 0
	}
	sum := 0
	for _, s := range reps {
		sum += s.UniqueCrashes()
	}
	return float64(sum) / float64(len(reps))
}

// UnionCover unions coverage across repetitions.
func UnionCover(reps []*Stats) *vkernel.CoverSet {
	out := &vkernel.CoverSet{}
	for _, s := range reps {
		out.Union(s.Cover)
	}
	return out
}

// UnionCrashTitles unions crash titles across repetitions.
func UnionCrashTitles(reps []*Stats) map[string]bool {
	out := map[string]bool{}
	for _, s := range reps {
		for t := range s.Crashes {
			out[t] = true
		}
	}
	return out
}

// UniqueTo returns the blocks covered by a but not b (Table 3's
// "Unique Cov" column).
func UniqueTo(a, b *vkernel.CoverSet) int { return a.Diff(b) }
