package fuzz

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/vkernel"
)

// TestCampaignResumeWarmStart is the tentpole acceptance test: a
// campaign that persists its corpus, then a resumed campaign with 20%
// of the cold budget that must (a) load the stored seeds and (b)
// reach at least the stored corpus's block coverage — which a cold
// start at the same small budget does not.
func TestCampaignResumeWarmStart(t *testing.T) {
	const (
		coldBudget   = 10000
		resumeBudget = coldBudget / 5 // the ≤20% acceptance bound
	)
	dir := t.TempDir()
	// The bundled-driver + plumbing surface: large enough that a
	// resumeBudget-sized cold campaign cannot saturate it.
	tgt := plumbedTarget(t, "dm", "cec", "kvm", "kvm_vm", "kvm_vcpu")
	f := New(tgt, testKernel)

	cold := DefaultConfig(coldBudget, 21)
	cold.CorpusDir = dir
	coldStats, err := f.RunContext(context.Background(), cold)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.CorpusSize == 0 {
		t.Fatal("cold campaign retained no seeds")
	}

	// The stored corpus's own block coverage: replay every stored
	// seed once on a fresh VM.
	store, err := corpusstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seeds, rep, err := store.Load(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded == 0 || len(rep.Skipped) != 0 {
		t.Fatalf("store load wrong: %+v", rep)
	}
	if rep.Loaded > resumeBudget {
		t.Fatalf("stored corpus (%d) exceeds the resume budget (%d); widen the test budgets", rep.Loaded, resumeBudget)
	}
	stored := vkernel.NewCoverSet(testKernel.NumBlocks())
	vm := testKernel.NewVM()
	for _, st := range seeds {
		for _, b := range vm.Run(st.Prog).Cov {
			stored.Add(b)
		}
	}
	if stored.Count() < 50 {
		t.Fatalf("stored corpus covers only %d blocks; test target broken", stored.Count())
	}

	var loaded int
	resume := DefaultConfig(resumeBudget, 99)
	resume.CorpusDir = dir
	resume.StoreReport = func(r corpusstore.Report) { loaded = r.Loaded }
	resumed, err := f.RunContext(context.Background(), resume)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != rep.Loaded {
		t.Fatalf("resumed campaign loaded %d seeds, want %d", loaded, rep.Loaded)
	}
	if missing := stored.Diff(resumed.Cover); missing != 0 {
		t.Fatalf("resumed campaign at %d execs missed %d stored-corpus blocks (%d vs %d)",
			resumeBudget, missing, resumed.CoverCount(), stored.Count())
	}

	// The warm start is what did that: a cold campaign with the same
	// small budget stays below the stored-corpus coverage.
	coldSmall := f.Run(DefaultConfig(resumeBudget, 99))
	if coldSmall.CoverCount() >= stored.Count() {
		t.Fatalf("cold %d-exec campaign already covers %d >= stored %d; acceptance test not discriminating",
			resumeBudget, coldSmall.CoverCount(), stored.Count())
	}
	if resumed.CoverCount() <= coldSmall.CoverCount() {
		t.Fatalf("warm start (%d blocks) did not beat cold start (%d blocks)",
			resumed.CoverCount(), coldSmall.CoverCount())
	}
}

// TestCampaignResumeToleratesCorruptEntry: a corrupted store entry is
// skipped with a report; the campaign still runs and re-flushes a
// healthy store.
func TestCampaignResumeToleratesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	tgt := targetFor(t, "dm")
	f := New(tgt, testKernel)

	cold := DefaultConfig(3000, 5)
	cold.CorpusDir = dir
	if _, err := f.RunContext(context.Background(), cold); err != nil {
		t.Fatal(err)
	}
	store, err := corpusstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Seeds) < 2 {
		t.Fatalf("store too small to corrupt: %d seeds", len(m.Seeds))
	}
	if err := os.WriteFile(filepath.Join(dir, m.Seeds[0].File), []byte("zap\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var report corpusstore.Report
	resume := DefaultConfig(600, 6)
	resume.CorpusDir = dir
	resume.StoreReport = func(r corpusstore.Report) { report = r }
	stats, err := f.RunContext(context.Background(), resume)
	if err != nil {
		t.Fatalf("corrupt entry aborted the campaign: %v", err)
	}
	if len(report.Skipped) != 1 || !strings.Contains(report.Skipped[0].Reason, "corrupted") {
		t.Fatalf("corruption not reported: %+v", report)
	}
	if report.Loaded != len(m.Seeds)-1 {
		t.Fatalf("healthy entries not loaded: %+v", report)
	}
	if stats.Execs != 600 {
		t.Fatalf("budget not spent: %d", stats.Execs)
	}
	// The flush replaced the corrupt entry; the store is healthy again.
	if _, rep, err := store.Load(tgt); err != nil || len(rep.Skipped) != 0 {
		t.Fatalf("store not healthy after re-flush: %v %+v", err, rep)
	}
}

// TestRunParallelResumeShardInvariance: with a fixed store snapshot,
// warm-started sharded campaigns stay worker-count-invariant.
func TestRunParallelResumeShardInvariance(t *testing.T) {
	dir := t.TempDir()
	f := New(targetFor(t, "dm"), testKernel)

	cold := DefaultConfig(2000, 13)
	cold.CorpusDir = dir
	if _, err := f.RunContext(context.Background(), cold); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(4000, 17)
	cfg.ShardExecs = 1024
	cfg.CorpusDir = dir
	cfg.ReadOnlyCorpus = true // keep the snapshot fixed across runs
	base, err := f.RunParallel(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantCov, wantCrashes := mergedView(base)
	for _, shards := range []int{2, 4} {
		got, err := f.RunParallel(context.Background(), cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		cov, crashes := mergedView(got)
		if len(cov) != len(wantCov) {
			t.Fatalf("shards=%d: coverage diverged (%d vs %d)", shards, len(cov), len(wantCov))
		}
		for b := range wantCov {
			if _, ok := cov[b]; !ok {
				t.Fatalf("shards=%d: block %d missing", shards, b)
			}
		}
		if len(crashes) != len(wantCrashes) {
			t.Fatalf("shards=%d: crashes diverged", shards)
		}
		for title, want := range wantCrashes {
			if crashes[title] != want {
				t.Fatalf("shards=%d: crash %q diverged: %+v vs %+v", shards, title, crashes[title], want)
			}
		}
	}
}

// TestRunParallelCheckpointFlushes: with Checkpoint set, the store is
// written as units complete, so a campaign killed mid-run would still
// find corpus progress on disk. Verified here by the store being
// non-empty before... the campaign ends via the checkpoint path
// itself: a 1-unit-at-a-time progress hook observes the manifest
// growing.
func TestRunParallelCheckpointFlushes(t *testing.T) {
	dir := t.TempDir()
	f := New(targetFor(t, "dm"), testKernel)
	store, err := corpusstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(3000, 9)
	cfg.ShardExecs = 1000
	cfg.CorpusDir = dir
	cfg.Checkpoint = true
	sawIntermediate := false
	cfg.Progress = func(p Progress) {
		if p.ShardsDone < p.ShardsTotal {
			if m, err := store.Manifest(); err == nil && len(m.Seeds) > 0 {
				sawIntermediate = true
			}
		}
	}
	if _, err := f.RunParallel(context.Background(), cfg, 1); err != nil {
		t.Fatal(err)
	}
	if !sawIntermediate {
		t.Fatal("no intermediate checkpoint flush observed")
	}
}
