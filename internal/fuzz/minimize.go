package fuzz

import (
	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/vkernel"
)

// Minimize shrinks a crashing program while preserving the crash
// title. It is a compatibility wrapper over the seedpool triage pass,
// which campaigns now apply automatically at crash discovery; call it
// directly to re-triage externally supplied repros (syzfuzz -repro).
func Minimize(k *vkernel.Kernel, p *prog.Prog, title string) *prog.Prog {
	return seedpool.Minimize(k, p, title)
}

// crashesWith reports whether p crashes the kernel with the title.
func crashesWith(k *vkernel.Kernel, p *prog.Prog, title string) bool {
	return seedpool.Reproduces(k, p, title)
}
