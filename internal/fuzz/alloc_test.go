package fuzz

import "testing"

// TestCampaignStepAllocs is the loop-level alloc-regression guard:
// the amortized allocation count of one campaign step (seed pick,
// mutation, compile, compiled exec, observe, pool bookkeeping) must
// stay within budget so alloc creep in the hot loop fails go test,
// not just the bench gate. The budget is dominated by the mutation
// clone and pool insert; the exec itself is allocation-free
// (~200/exec as of the compiled-exec change).
func TestCampaignStepAllocs(t *testing.T) {
	const execs = 4000
	f := New(plumbedTarget(t, "dm", "cec"), testKernel)
	cfg := DefaultConfig(execs, 1)
	cfg.NoTriage = true
	f.Run(cfg) // warm process-level lazy state
	allocs := testing.AllocsPerRun(2, func() { f.Run(cfg) })
	per := allocs / execs
	t.Logf("campaign step: %.1f allocs/exec (%.0f total)", per, allocs)
	if per > 250 {
		t.Fatalf("campaign step allocates %.1f/exec, budget is 250", per)
	}
}
