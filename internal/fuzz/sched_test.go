package fuzz

import (
	"context"
	"reflect"
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
)

// plumbedTarget compiles the oracle specs of the bundled drivers plus
// the fd-plumbing/mmap surface — the expanded scenario space the
// adaptive scheduler is measured on.
func plumbedTarget(t testing.TB, names ...string) *prog.Target {
	t.Helper()
	files := []*syzlang.File{}
	for _, n := range names {
		h := testCorpus.Handler(n)
		if h == nil {
			t.Fatalf("no handler %q", n)
		}
		files = append(files, corpus.OracleSpec(h))
	}
	pf, err := testCorpus.PlumbingSpecFor(names...)
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, pf)
	tgt, err := prog.Compile(syzlang.MergeDedup(files...), testCorpus.Env())
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

// bundledDrivers is the acceptance target: the hand-modeled bundled
// drivers (the paper's running examples plus the kvm secondary-fd
// family) with the fd-plumbing/mmap surface merged in.
var bundledDrivers = []string{"dm", "cec", "kvm", "kvm_vm", "kvm_vcpu"}

// TestAdaptiveBeatsUniform is the tentpole acceptance check: on the
// bundled drivers, the adaptive operator scheduler must reach
// strictly more unique coverage per 10k-exec campaign than
// uniform-random operator selection with the identical budget and
// seeds, measured over the paper's standard 3 repetitions.
func TestAdaptiveBeatsUniform(t *testing.T) {
	f := New(plumbedTarget(t, bundledDrivers...), testKernel)
	cfg := DefaultConfig(10_000, 1)
	cfg.NoTriage = true

	adaptive := f.RunRepetitions(context.Background(), cfg, 3)

	ucfg := cfg
	ucfg.UniformOps = true
	uniform := f.RunRepetitions(context.Background(), ucfg, 3)

	am, um := MeanCover(adaptive), MeanCover(uniform)
	t.Logf("adaptive mean cov=%.1f uniform mean cov=%.1f", am, um)
	if am <= um {
		t.Fatalf("adaptive scheduler (%.1f blocks) did not beat uniform baseline (%.1f blocks)", am, um)
	}
}

// TestAdaptiveShardInvariance: the scheduler is per-unit state, so
// the worker-count invariance guarantee must survive it — including
// the merged per-operator stats.
func TestAdaptiveShardInvariance(t *testing.T) {
	f := New(plumbedTarget(t, "dm"), testKernel)
	cfg := DefaultConfig(4096, 11)
	cfg.ShardExecs = 1024
	base, err := f.RunParallel(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantCov, wantCrashes := mergedView(base)
	for _, shards := range []int{2, 4} {
		got, err := f.RunParallel(context.Background(), cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		cov, crashes := mergedView(got)
		if !reflect.DeepEqual(cov, wantCov) || !reflect.DeepEqual(crashes, wantCrashes) {
			t.Fatalf("shards=%d: adaptive campaign diverged", shards)
		}
		if !reflect.DeepEqual(got.Ops, base.Ops) {
			t.Fatalf("shards=%d: operator stats diverged:\n%+v\nvs\n%+v", shards, got.Ops, base.Ops)
		}
	}
}

// TestOpStatsAccounting: every mutation is credited to exactly one
// operator, and the operator set matches the canonical roster.
func TestOpStatsAccounting(t *testing.T) {
	f := New(plumbedTarget(t, "dm"), testKernel)
	stats := f.Run(DefaultConfig(2000, 3))
	ops := prog.DefaultOperators()
	if len(stats.Ops) != len(ops) {
		t.Fatalf("want %d operator entries, got %d", len(ops), len(stats.Ops))
	}
	totalPicks := 0
	for i, op := range ops {
		if stats.Ops[i].Name != op.Name() {
			t.Fatalf("operator order diverged: %s vs %s", stats.Ops[i].Name, op.Name())
		}
		totalPicks += stats.Ops[i].Picks
	}
	if totalPicks == 0 || totalPicks >= stats.Execs {
		t.Fatalf("implausible mutation count %d of %d execs", totalPicks, stats.Execs)
	}
	if stats.OpByName("mutateArg").Picks == 0 {
		t.Fatal("mutateArg never picked in 2000 execs")
	}
	if stats.OpByName("nosuch").Picks != 0 {
		t.Fatal("unknown operator reported picks")
	}
}

// TestProgressCarriesOpSnapshots: serial and sharded campaigns expose
// scheduler snapshots through Config.Progress.
func TestProgressCarriesOpSnapshots(t *testing.T) {
	f := New(plumbedTarget(t, "dm"), testKernel)
	cfg := DefaultConfig(4096, 5)
	cfg.ShardExecs = 2048
	var sawOps bool
	cfg.Progress = func(p Progress) {
		for _, op := range p.Ops {
			if op.Picks > 0 {
				sawOps = true
			}
		}
	}
	if _, err := f.RunParallel(context.Background(), cfg, 2); err != nil {
		t.Fatal(err)
	}
	if !sawOps {
		t.Fatal("no progress update carried operator stats")
	}
}
