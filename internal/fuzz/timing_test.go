package fuzz

import (
	"context"
	"testing"
)

// TestSerialTiming checks the wall-clock ground-truth fields a serial
// campaign records for sim calibration: elapsed and work time are set,
// triage time is a share of work time, and the progress stream carries
// a monotone time axis.
func TestSerialTiming(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(6000, 3)
	var elapsed []int64
	cfg.Progress = func(p Progress) { elapsed = append(elapsed, p.ElapsedNs) }
	stats, err := f.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elapsed <= 0 || stats.WorkTime != stats.Elapsed {
		t.Fatalf("serial campaign wall clock wrong: elapsed=%v work=%v", stats.Elapsed, stats.WorkTime)
	}
	if stats.TriageTime < 0 || stats.TriageTime > stats.WorkTime {
		t.Fatalf("triage time %v outside [0, %v]", stats.TriageTime, stats.WorkTime)
	}
	if stats.UniqueCrashes() > 0 && stats.TriageTime == 0 {
		t.Fatal("campaign triaged crashes but recorded no triage time")
	}
	if stats.Syncs != 0 || stats.SyncTime != 0 {
		t.Fatalf("detached campaign recorded syncs: %d (%v)", stats.Syncs, stats.SyncTime)
	}
	if len(elapsed) == 0 {
		t.Fatal("no progress updates")
	}
	for i := 1; i < len(elapsed); i++ {
		if elapsed[i] < elapsed[i-1] {
			t.Fatalf("progress ElapsedNs not monotone: %v", elapsed)
		}
	}
	if last := elapsed[len(elapsed)-1]; last <= 0 || last > stats.Elapsed.Nanoseconds() {
		t.Fatalf("final progress elapsed %d vs campaign elapsed %d", last, stats.Elapsed.Nanoseconds())
	}
}

// TestNoTriageRecordsNoTriageTime pins the documented contract:
// TriageTime is zero when triage is disabled.
func TestNoTriageRecordsNoTriageTime(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(6000, 3)
	cfg.NoTriage = true
	if stats := f.Run(cfg); stats.TriageTime != 0 {
		t.Fatalf("NoTriage campaign recorded triage time %v", stats.TriageTime)
	}
}

// TestParallelTiming checks the merged wall-clock aggregates: WorkTime
// sums per-unit elapsed (so it is at least the wall clock on a busy
// campaign with several units), and the merged progress stream shares
// one monotone clock.
func TestParallelTiming(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(4096, 7)
	cfg.ShardExecs = 1024
	var elapsed []int64
	cfg.Progress = func(p Progress) { elapsed = append(elapsed, p.ElapsedNs) }
	stats, err := f.RunParallel(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elapsed <= 0 {
		t.Fatalf("merged Elapsed not stamped: %v", stats.Elapsed)
	}
	if stats.WorkTime <= 0 {
		t.Fatalf("merged WorkTime not accumulated: %v", stats.WorkTime)
	}
	for i := 1; i < len(elapsed); i++ {
		if elapsed[i] < elapsed[i-1] {
			t.Fatalf("merged progress ElapsedNs not monotone: %v", elapsed)
		}
	}
}
