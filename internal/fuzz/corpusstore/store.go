// Package corpusstore persists an evolved fuzzing corpus across
// campaigns — the analogue of reusing profiles across builds in PGO:
// prior-run knowledge makes every subsequent campaign start warmer.
//
// A store is a directory of content-addressed repro-text files (one
// program per file, named by the SHA-256 of its serialized text) plus
// a JSON manifest carrying the seedpool scheduling state for each
// entry (priority, lineage bonus, operator provenance) and the
// covered-block count of the campaign that last flushed it.
//
// Writes are atomic — every file lands via temp-file + rename, and
// the manifest is renamed into place last — so a crashed flush never
// leaves a half-written store. Loading is tolerant: entries whose
// content no longer matches their address (corruption) or that no
// longer deserialize against the current target (staleness after a
// spec change) are skipped and reported, never fatal. Stores
// accumulate across runs via Merge, which deduplicates by program
// text, keeps the highest-weight copy, and bounds the result
// deterministically.
//
// A store expects one writer at a time; concurrent campaigns should
// flush through a single merge point (as fuzz.RunParallel does).
package corpusstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/prog"
)

// Version is the manifest format version this package writes.
const Version = 1

const (
	manifestName = "manifest.json"
	progExt      = ".prog"
)

// Entry is one stored seed's manifest record. The program text itself
// lives in the content-addressed File.
type Entry struct {
	// File is the content-addressed file name: <sha256-prefix>.prog.
	File string `json:"file"`
	// Prio is the seed's base scheduling weight.
	Prio int `json:"prio"`
	// Bonus is the seed's lineage bonus at flush time.
	Bonus int `json:"bonus,omitempty"`
	// Op is the mutation operator that bred the seed ("" = generated).
	Op string `json:"op,omitempty"`
	// Gen is the store generation that first admitted the entry
	// (see Manifest.Generation). Always >= 1 in manifests written by
	// this version; 0 marks entries from pre-generation manifests.
	Gen int `json:"gen,omitempty"`
}

// Manifest is the JSON index of a store directory.
type Manifest struct {
	Version int `json:"version"`
	// Generation counts Saves: every Save bumps it by one and stamps
	// entries whose program file was not in the previous manifest with
	// the new value. Diff uses it to ship only entries added after a
	// point in time — the hub's incremental corpus-sync primitive.
	Generation int `json:"generation,omitempty"`
	// CoverBlocks is the covered-block count of the campaign that
	// last flushed the store (metadata for tooling; Load reports it).
	CoverBlocks int     `json:"cover_blocks"`
	Seeds       []Entry `json:"seeds"`
}

// Skip records one entry the loader rejected and why.
type Skip struct {
	File   string
	Reason string
}

// Report summarizes one Load: how many entries made it, which were
// skipped, and the store's recorded coverage metadata.
type Report struct {
	Loaded      int
	Skipped     []Skip
	CoverBlocks int
}

// String renders the report in one line (skip reasons included).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "corpus store: loaded %d seeds (store cover %d blocks)", r.Loaded, r.CoverBlocks)
	for _, s := range r.Skipped {
		fmt.Fprintf(&b, "; skipped %s: %s", s.File, s.Reason)
	}
	return b.String()
}

// Store is a handle on one corpus directory.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if
// needed. Opening an empty directory yields an empty store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("corpusstore: empty directory path")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpusstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// FileFor returns the content-addressed file name for a program's
// serialized text.
func FileFor(text string) string {
	sum := sha256.Sum256([]byte(text))
	return hex.EncodeToString(sum[:8]) + progExt
}

// Manifest reads the store's index. A store with no manifest yet is
// an empty manifest, not an error; a manifest that fails to parse is
// an error (the whole index is gone, there is nothing to tolerate
// entry-by-entry).
func (s *Store) Manifest() (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return &Manifest{Version: Version}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("corpusstore: %w", err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("corpusstore: %s: %w", manifestName, err)
	}
	if m.Version > Version {
		return nil, fmt.Errorf("corpusstore: manifest version %d newer than supported %d", m.Version, Version)
	}
	return m, nil
}

// Save atomically replaces the store contents with the given seeds
// (typically a Merge result). Program files are written first, the
// manifest is renamed into place last, and prog files no longer
// referenced are removed best-effort — so a reader always sees a
// consistent (old or new) store.
//
// Save advances the store generation: entries whose program file the
// previous manifest already indexed keep their admission generation,
// new entries are stamped with the fresh one. An unreadable previous
// manifest restarts the generation lineage rather than failing the
// save (the data being written is intact either way).
func (s *Store) Save(seeds []seedpool.SeedState, coverBlocks int) error {
	prevGen := map[string]int{}
	gen := 1
	if prev, err := s.Manifest(); err == nil {
		gen = prev.Generation + 1
		for _, e := range prev.Seeds {
			if e.Gen > 0 {
				prevGen[e.File] = e.Gen
			}
		}
	}
	m := &Manifest{Version: Version, Generation: gen, CoverBlocks: coverBlocks}
	keep := map[string]bool{}
	for _, st := range seeds {
		if st.Prog == nil || st.Prio <= 0 {
			continue
		}
		text := st.Prog.Serialize()
		name := FileFor(text)
		if keep[name] {
			continue // duplicate program; first (highest-ranked) entry wins
		}
		if err := writeAtomic(filepath.Join(s.dir, name), []byte(text)); err != nil {
			return fmt.Errorf("corpusstore: %w", err)
		}
		keep[name] = true
		eg := gen
		if g, ok := prevGen[name]; ok {
			eg = g
		}
		m.Seeds = append(m.Seeds, Entry{File: name, Prio: st.Prio, Bonus: st.Bonus, Op: st.Op, Gen: eg})
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("corpusstore: %w", err)
	}
	if err := writeAtomic(filepath.Join(s.dir, manifestName), append(data, '\n')); err != nil {
		return fmt.Errorf("corpusstore: %w", err)
	}
	// Garbage-collect orphaned program files from earlier flushes.
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil // the save itself succeeded
	}
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, progExt) && !keep[name] {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
	return nil
}

// writeAtomic lands data at path via temp file + rename.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads every manifest entry, verifies its content address, and
// deserializes it against the target (which validates resource
// references). Entries that fail any step are skipped and reported;
// only a missing/corrupt manifest is an error. The returned states
// preserve manifest order.
func (s *Store) Load(t *prog.Target) ([]seedpool.SeedState, *Report, error) {
	m, err := s.Manifest()
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{CoverBlocks: m.CoverBlocks}
	var out []seedpool.SeedState
	for _, e := range m.Seeds {
		st, reason := s.loadEntry(t, e)
		if reason != "" {
			rep.Skipped = append(rep.Skipped, Skip{File: e.File, Reason: reason})
			continue
		}
		out = append(out, st)
	}
	rep.Loaded = len(out)
	return out, rep, nil
}

// Diff loads only the entries admitted after generation since — the
// incremental form of Load that lets a sync ship just the seeds a
// reader has not seen yet. since <= 0 selects everything (entries
// from pre-generation manifests carry Gen 0 and are included only
// then). The store's current generation is returned so the caller can
// resume from it; entries that fail validation are skipped and
// reported exactly as in Load. The hub serves its pull diffs from an
// in-memory mirror of the same manifest generations (hub.Hub.diff
// keeps the selection semantics aligned with this method); Diff is
// the store-level form for tooling and out-of-process readers.
func (s *Store) Diff(t *prog.Target, since int) ([]seedpool.SeedState, int, *Report, error) {
	m, err := s.Manifest()
	if err != nil {
		return nil, 0, nil, err
	}
	rep := &Report{CoverBlocks: m.CoverBlocks}
	var out []seedpool.SeedState
	for _, e := range m.Seeds {
		if since > 0 && e.Gen <= since {
			continue
		}
		st, reason := s.loadEntry(t, e)
		if reason != "" {
			rep.Skipped = append(rep.Skipped, Skip{File: e.File, Reason: reason})
			continue
		}
		out = append(out, st)
	}
	rep.Loaded = len(out)
	return out, m.Generation, rep, nil
}

// loadEntry validates one entry; a non-empty reason means skip.
func (s *Store) loadEntry(t *prog.Target, e Entry) (seedpool.SeedState, string) {
	if e.Prio <= 0 {
		return seedpool.SeedState{}, fmt.Sprintf("non-positive priority %d", e.Prio)
	}
	if e.File == "" || filepath.Base(e.File) != e.File {
		return seedpool.SeedState{}, fmt.Sprintf("bad file name %q", e.File)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, e.File))
	if err != nil {
		return seedpool.SeedState{}, fmt.Sprintf("unreadable: %v", err)
	}
	if FileFor(string(data)) != e.File {
		return seedpool.SeedState{}, "content does not match address (corrupted)"
	}
	p, err := prog.Deserialize(t, string(data))
	if err != nil {
		return seedpool.SeedState{}, fmt.Sprintf("stale against target: %v", err)
	}
	return seedpool.SeedState{Prog: p, Prio: e.Prio, Bonus: e.Bonus, Op: e.Op}, ""
}

// Merge folds seed sets into one bounded store image. Sets are
// visited in argument order; duplicate programs (identical serialized
// text) keep the higher-weight copy (earlier copy wins ties). The
// result is ordered by descending weight, then ascending program
// text, and truncated to capacity (<= 0 selects
// seedpool.DefaultCapacity) — fully deterministic for a fixed
// argument order, independent of map iteration or completion order.
func Merge(capacity int, sets ...[]seedpool.SeedState) []seedpool.SeedState {
	if capacity <= 0 {
		capacity = seedpool.DefaultCapacity
	}
	type item struct {
		st   seedpool.SeedState
		text string
	}
	index := map[string]int{}
	var items []item
	for _, set := range sets {
		for _, st := range set {
			if st.Prog == nil || st.Prio <= 0 {
				continue
			}
			text := st.Prog.Serialize()
			if i, ok := index[text]; ok {
				if st.Weight() > items[i].st.Weight() {
					items[i].st = st
				}
				continue
			}
			index[text] = len(items)
			items = append(items, item{st: st, text: text})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if wi, wj := items[i].st.Weight(), items[j].st.Weight(); wi != wj {
			return wi > wj
		}
		return items[i].text < items[j].text
	})
	if len(items) > capacity {
		items = items[:capacity]
	}
	out := make([]seedpool.SeedState, len(items))
	for i, it := range items {
		out[i] = it.st
	}
	return out
}
