package corpusstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
)

var testCorpus = corpus.Build(corpus.TestConfig())

func targetFor(t *testing.T, names ...string) *prog.Target {
	t.Helper()
	f := &syzlang.File{}
	for _, n := range names {
		h := testCorpus.Handler(n)
		if h == nil {
			t.Fatalf("no handler %q", n)
		}
		f.Merge(corpus.OracleSpec(h))
	}
	tgt, err := prog.Compile(f, testCorpus.Env())
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

// genSeeds builds n distinct valid programs with synthetic weights.
func genSeeds(t *testing.T, tgt *prog.Target, n int) []seedpool.SeedState {
	t.Helper()
	g := prog.NewGen(tgt, 7)
	seen := map[string]bool{}
	var out []seedpool.SeedState
	for len(out) < n {
		p := g.Generate(4)
		text := p.Serialize()
		if seen[text] {
			continue
		}
		seen[text] = true
		out = append(out, seedpool.SeedState{
			Prog:  p,
			Prio:  len(out) + 1,
			Bonus: len(out) % 3,
			Op:    []string{"", "splice", "insert"}[len(out)%3],
		})
	}
	return out
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	tgt := targetFor(t, "dm")
	seeds := genSeeds(t, tgt, 6)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(seeds, 123); err != nil {
		t.Fatal(err)
	}
	got, rep, err := st.Load(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 0 || rep.Loaded != 6 || rep.CoverBlocks != 123 {
		t.Fatalf("report wrong: %+v", rep)
	}
	if len(got) != len(seeds) {
		t.Fatalf("loaded %d of %d", len(got), len(seeds))
	}
	byText := map[string]seedpool.SeedState{}
	for _, s := range seeds {
		byText[s.Prog.Serialize()] = s
	}
	for _, s := range got {
		want, ok := byText[s.Prog.Serialize()]
		if !ok {
			t.Fatalf("loaded unknown program:\n%s", s.Prog.Serialize())
		}
		if s.Prio != want.Prio || s.Bonus != want.Bonus || s.Op != want.Op {
			t.Fatalf("state not preserved: %+v vs %+v", s, want)
		}
	}
}

func TestStoreEmptyDirIsEmptyStore(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := st.Load(targetFor(t, "dm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || rep.Loaded != 0 || len(rep.Skipped) != 0 {
		t.Fatalf("empty store loaded something: %+v", rep)
	}
}

// TestStoreLoadTolerance is the acceptance property: corrupted and
// stale entries are skipped with a report, never fatal, and the
// healthy remainder loads.
func TestStoreLoadTolerance(t *testing.T) {
	tgt := targetFor(t, "dm")
	seeds := genSeeds(t, tgt, 5)
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(seeds, 50); err != nil {
		t.Fatal(err)
	}

	// Corrupt one entry's file in place (content no longer matches
	// its address).
	m, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, m.Seeds[1].File), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Delete another entry's file outright.
	if err := os.Remove(filepath.Join(dir, m.Seeds[2].File)); err != nil {
		t.Fatal(err)
	}
	// Make a third entry stale: rewrite it (with a consistent content
	// address) to reference a syscall the target does not have.
	stale := "frob$nosuchcall(0x0)\n"
	staleName := FileFor(stale)
	if err := os.WriteFile(filepath.Join(dir, staleName), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	m.Seeds[3].File = staleName
	data, _ := json.MarshalIndent(m, "", "  ")
	if err := os.WriteFile(filepath.Join(dir, manifestName), data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, rep, err := st.Load(tgt)
	if err != nil {
		t.Fatalf("tolerant load must not fail: %v", err)
	}
	if len(got) != 2 || rep.Loaded != 2 {
		t.Fatalf("want 2 healthy seeds, got %d (%+v)", len(got), rep)
	}
	if len(rep.Skipped) != 3 {
		t.Fatalf("want 3 skips, got %+v", rep.Skipped)
	}
	reasons := strings.Join([]string{rep.Skipped[0].Reason, rep.Skipped[1].Reason, rep.Skipped[2].Reason}, "|")
	for _, want := range []string{"corrupted", "unreadable", "stale"} {
		if !strings.Contains(reasons, want) {
			t.Fatalf("skip reasons missing %q: %s", want, reasons)
		}
	}
	if !strings.Contains(rep.String(), "skipped") {
		t.Fatalf("report text missing skips: %s", rep.String())
	}
}

func TestStoreLoadRejectsTraversalFileNames(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{Version: Version, Seeds: []Entry{{File: "../evil.prog", Prio: 1}}}
	data, _ := json.Marshal(m)
	if err := os.WriteFile(filepath.Join(dir, manifestName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, rep, err := st.Load(targetFor(t, "dm"))
	if err != nil || len(got) != 0 || len(rep.Skipped) != 1 {
		t.Fatalf("traversal entry not skipped: %v %+v", err, rep)
	}
}

func TestStoreCorruptManifestIsError(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(targetFor(t, "dm")); err == nil {
		t.Fatal("corrupt manifest must be an error")
	}
}

func TestStoreSaveGarbageCollectsOrphans(t *testing.T) {
	tgt := targetFor(t, "dm")
	seeds := genSeeds(t, tgt, 4)
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(seeds, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(seeds[:2], 0); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	progFiles := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), progExt) {
			progFiles++
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if progFiles != 2 {
		t.Fatalf("orphans not collected: %d prog files", progFiles)
	}
}

func TestMergeDeduplicatesAndBounds(t *testing.T) {
	tgt := targetFor(t, "dm")
	seeds := genSeeds(t, tgt, 5)
	// A duplicate of seeds[0] with a higher weight must win.
	dup := seedpool.SeedState{Prog: seeds[0].Prog, Prio: 40}
	merged := Merge(4, seeds, []seedpool.SeedState{dup})
	if len(merged) != 4 {
		t.Fatalf("capacity not enforced: %d", len(merged))
	}
	if merged[0].Prio != 40 {
		t.Fatalf("higher-weight duplicate lost: %+v", merged[0])
	}
	texts := map[string]bool{}
	for _, s := range merged {
		text := s.Prog.Serialize()
		if texts[text] {
			t.Fatal("merge kept duplicate program")
		}
		texts[text] = true
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Weight() > merged[i-1].Weight() {
			t.Fatalf("merge not weight-ordered: %+v", merged)
		}
	}
}

// TestMergeOrderIndependentOnDisjointSets is the determinism
// property the sharded flush relies on: for sets merged in a fixed
// order the output is reproducible, and disjoint sets commute.
func TestMergeOrderIndependentOnDisjointSets(t *testing.T) {
	tgt := targetFor(t, "dm")
	seeds := genSeeds(t, tgt, 6)
	a, b := seeds[:3], seeds[3:]
	ab := Merge(10, a, b)
	ba := Merge(10, b, a)
	if len(ab) != len(ba) {
		t.Fatalf("disjoint merge diverged: %d vs %d", len(ab), len(ba))
	}
	for i := range ab {
		if ab[i] != ba[i] {
			t.Fatalf("disjoint merge diverged at %d: %+v vs %+v", i, ab[i], ba[i])
		}
	}
}

func TestSaveAdvancesGenerationAndStampsNewEntries(t *testing.T) {
	tgt := targetFor(t, "dm")
	seeds := genSeeds(t, tgt, 5)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(seeds[:3], 10); err != nil {
		t.Fatal(err)
	}
	m, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation != 1 {
		t.Fatalf("first save generation = %d, want 1", m.Generation)
	}
	for _, e := range m.Seeds {
		if e.Gen != 1 {
			t.Fatalf("first-save entry stamped gen %d: %+v", e.Gen, e)
		}
	}
	// Second save: carried-forward entries keep gen 1, new ones get 2.
	if err := st.Save(seeds, 20); err != nil {
		t.Fatal(err)
	}
	m, err = st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation != 2 {
		t.Fatalf("second save generation = %d, want 2", m.Generation)
	}
	gens := map[int]int{}
	for _, e := range m.Seeds {
		gens[e.Gen]++
	}
	if gens[1] != 3 || gens[2] != 2 {
		t.Fatalf("gen distribution %v, want 3 at gen 1 and 2 at gen 2", gens)
	}
}

func TestDiffShipsOnlyNewEntries(t *testing.T) {
	tgt := targetFor(t, "dm")
	seeds := genSeeds(t, tgt, 6)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(seeds[:4], 10); err != nil {
		t.Fatal(err)
	}
	all, gen, rep, err := st.Diff(tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 || gen != 1 || len(rep.Skipped) != 0 {
		t.Fatalf("full diff: %d seeds at gen %d (%+v)", len(all), gen, rep)
	}
	// Nothing new since the current generation.
	none, gen2, _, err := st.Diff(tgt, gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 || gen2 != gen {
		t.Fatalf("empty diff returned %d seeds at gen %d", len(none), gen2)
	}
	if err := st.Save(seeds, 20); err != nil {
		t.Fatal(err)
	}
	fresh, gen3, _, err := st.Diff(tgt, gen)
	if err != nil {
		t.Fatal(err)
	}
	if gen3 != gen+1 || len(fresh) != 2 {
		t.Fatalf("incremental diff: %d seeds at gen %d, want 2 at gen %d", len(fresh), gen3, gen+1)
	}
	want := map[string]bool{
		seeds[4].Prog.Serialize(): true,
		seeds[5].Prog.Serialize(): true,
	}
	for _, s := range fresh {
		if !want[s.Prog.Serialize()] {
			t.Fatalf("diff shipped an old entry: %q", s.Prog.Serialize())
		}
	}
}

func TestDiffOnEmptyStore(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seeds, gen, rep, err := st.Diff(targetFor(t, "dm"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 0 || gen != 0 || rep.Loaded != 0 {
		t.Fatalf("empty store diff: %d seeds gen %d %+v", len(seeds), gen, rep)
	}
}
