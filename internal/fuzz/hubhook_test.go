package fuzz

import (
	"context"
	"testing"

	"kernelgpt/internal/fuzz/seedpool"
	"kernelgpt/internal/prog"
)

// recordingHub is a fake HubSync that captures every sync and hands
// back a scripted remote corpus on the first non-final exchange.
type recordingHub struct {
	syncs  []SyncState
	remote []seedpool.SeedState
	served bool
}

func (h *recordingHub) Sync(ctx context.Context, st SyncState) ([]seedpool.SeedState, error) {
	h.syncs = append(h.syncs, st)
	if st.Final || h.served {
		return nil, nil
	}
	h.served = true
	return h.remote, nil
}

func TestHubSyncFiresAtCheckpointsAndEnd(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	hub := &recordingHub{}
	cfg := DefaultConfig(3000, 5)
	cfg.Hub = hub
	stats, err := f.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Boundaries at 1024 and 2048, plus the final sync.
	if len(hub.syncs) != 3 {
		t.Fatalf("got %d syncs, want 3 (two checkpoints + final)", len(hub.syncs))
	}
	for i, st := range hub.syncs[:2] {
		if st.Final {
			t.Fatalf("checkpoint sync %d marked final", i)
		}
		if st.Execs == 0 || len(st.Seeds) == 0 || st.Cover.Count() == 0 {
			t.Fatalf("checkpoint sync %d empty: execs=%d seeds=%d cover=%d",
				i, st.Execs, len(st.Seeds), st.Cover.Count())
		}
	}
	last := hub.syncs[2]
	if !last.Final || last.Execs != stats.Execs {
		t.Fatalf("final sync wrong: final=%v execs=%d (campaign %d)",
			last.Final, last.Execs, stats.Execs)
	}
	if last.Cover.Count() != stats.CoverCount() {
		t.Fatalf("final sync cover %d != campaign cover %d", last.Cover.Count(), stats.CoverCount())
	}
	for i := 1; i < len(last.Crashes); i++ {
		if last.Crashes[i].Title <= last.Crashes[i-1].Title {
			t.Fatal("sync crash list must be sorted by title")
		}
	}
}

func TestHubSyncImportsRemoteSeeds(t *testing.T) {
	tgt := targetFor(t, "dm")
	f := New(tgt, testKernel)
	// Remote corpus: programs a detached campaign would not hold, with
	// weights high enough that the (never-full) pool retains them.
	g := prog.NewGen(tgt, 999)
	hub := &recordingHub{}
	remoteTexts := map[string]bool{}
	for i := 0; i < 5; i++ {
		p := g.Generate(4)
		hub.remote = append(hub.remote, seedpool.SeedState{Prog: p, Prio: 100 + i})
		remoteTexts[p.Serialize()] = true
	}
	cfg := DefaultConfig(2000, 5)
	cfg.Hub = hub
	if _, err := f.RunContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// The final sync's export must include the imported remote seeds:
	// the pool never filled, so nothing could have evicted them.
	final := hub.syncs[len(hub.syncs)-1]
	if !final.Final {
		t.Fatal("last sync not final")
	}
	found := 0
	for _, st := range final.Seeds {
		if remoteTexts[st.Prog.Serialize()] {
			found++
		}
	}
	if found != len(remoteTexts) {
		t.Fatalf("final export holds %d of %d remote seeds", found, len(remoteTexts))
	}
}

// TestHubSyncErrorKeepsCampaignRunning: an unreachable hub must not
// fail or derail the campaign — results match a detached run exactly
// (error responses return no seeds, so nothing perturbs the pool).
func TestHubSyncErrorKeepsCampaignRunning(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(3000, 5)
	detached := f.Run(cfg)
	cfg.Hub = failingHub{}
	attached, err := f.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("hub errors must stay best-effort: %v", err)
	}
	if attached.CoverCount() != detached.CoverCount() || attached.Execs != detached.Execs {
		t.Fatalf("failing hub changed the campaign: %d/%d vs %d/%d",
			attached.CoverCount(), attached.Execs, detached.CoverCount(), detached.Execs)
	}
}

type failingHub struct{}

func (failingHub) Sync(ctx context.Context, st SyncState) ([]seedpool.SeedState, error) {
	return nil, context.DeadlineExceeded
}

// TestRunParallelHubSyncsMergedState: units must not push their local
// counters as worker stats — every sync carries the merged cumulative
// campaign state (monotone execs, final push marked Final with the
// full budget), and seeds pulled at a boundary warm-start the units
// that launch afterwards.
func TestRunParallelHubSyncsMergedState(t *testing.T) {
	tgt := targetFor(t, "dm")
	f := New(tgt, testKernel)
	g := prog.NewGen(tgt, 777)
	hub := &recordingHub{}
	remoteTexts := map[string]bool{}
	for i := 0; i < 4; i++ {
		p := g.Generate(4)
		hub.remote = append(hub.remote, seedpool.SeedState{Prog: p, Prio: 100 + i})
		remoteTexts[p.Serialize()] = true
	}
	cfg := DefaultConfig(4096, 9)
	cfg.ShardExecs = 1024 // 4 units; first boundary serves the remote corpus
	cfg.Hub = hub
	stats, err := f.RunParallel(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One sync per unit boundary plus the final push.
	if len(hub.syncs) != 5 {
		t.Fatalf("got %d syncs, want 5 (4 unit boundaries + final)", len(hub.syncs))
	}
	for i := 1; i < len(hub.syncs); i++ {
		if hub.syncs[i].Execs < hub.syncs[i-1].Execs {
			t.Fatalf("sync execs regressed: %d then %d — unit-local counters leaked",
				hub.syncs[i-1].Execs, hub.syncs[i].Execs)
		}
	}
	for i, st := range hub.syncs[:4] {
		if st.Final {
			t.Fatalf("boundary sync %d marked final", i)
		}
	}
	last := hub.syncs[4]
	if !last.Final || last.Execs != stats.Execs || stats.Execs != 4096 {
		t.Fatalf("final sync wrong: final=%v execs=%d (campaign %d)",
			last.Final, last.Execs, stats.Execs)
	}
	if last.Cover.Count() != stats.CoverCount() {
		t.Fatalf("final sync cover %d != merged cover %d", last.Cover.Count(), stats.CoverCount())
	}
	// Units 2..4 warm-started from the pulled corpus; the high-weight
	// remote seeds must survive into the final merged export.
	found := 0
	for _, st := range last.Seeds {
		if remoteTexts[st.Prog.Serialize()] {
			found++
		}
	}
	if found != len(remoteTexts) {
		t.Fatalf("final export holds %d of %d pulled remote seeds", found, len(remoteTexts))
	}
}
