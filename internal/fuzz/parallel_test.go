package fuzz

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"kernelgpt/internal/vkernel"
)

// mergedView reduces Stats to the comparable merged outcome: the
// coverage set, and per-title (FirstExec, Count, Repro).
func mergedView(s *Stats) (map[uint32]struct{}, map[string]CrashReport) {
	cov := map[uint32]struct{}{}
	s.Cover.ForEach(func(b uint32) { cov[b] = struct{}{} })
	crashes := map[string]CrashReport{}
	for t, cr := range s.Crashes {
		crashes[t] = *cr
	}
	return cov, crashes
}

// TestRunParallelWorkerCountInvariance is the acceptance check: N
// shards for N ∈ {1, 2, 4} must produce bitwise-identical merged
// coverage and crash sets given the same base seed.
func TestRunParallelWorkerCountInvariance(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(6000, 42)
	cfg.ShardExecs = 1024 // several units, uneven tail

	base, err := f.RunParallel(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantCov, wantCrashes := mergedView(base)
	if len(wantCov) == 0 {
		t.Fatal("campaign covered nothing; test target broken")
	}
	for _, shards := range []int{2, 4} {
		got, err := f.RunParallel(context.Background(), cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		cov, crashes := mergedView(got)
		if !reflect.DeepEqual(cov, wantCov) {
			t.Fatalf("shards=%d: coverage diverged (%d vs %d blocks)", shards, len(cov), len(wantCov))
		}
		if !reflect.DeepEqual(crashes, wantCrashes) {
			t.Fatalf("shards=%d: crash reports diverged:\n%v\nvs\n%v", shards, crashes, wantCrashes)
		}
		if got.Execs != base.Execs || got.CorpusSize != base.CorpusSize {
			t.Fatalf("shards=%d: execs/corpus diverged: %d/%d vs %d/%d",
				shards, got.Execs, got.CorpusSize, base.Execs, base.CorpusSize)
		}
	}
}

func TestRunParallelSpendsFullBudget(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(2500, 7)
	cfg.ShardExecs = 1000 // 1000 + 1000 + 500
	stats, err := f.RunParallel(context.Background(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Execs != 2500 {
		t.Fatalf("budget not spent exactly: %d", stats.Execs)
	}
}

func TestRunParallelProgress(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(4096, 3)
	cfg.ShardExecs = 1024
	var updates []Progress
	cfg.Progress = func(p Progress) { updates = append(updates, p) }
	if _, err := f.RunParallel(context.Background(), cfg, 2); err != nil {
		t.Fatal(err)
	}
	if len(updates) != 4 {
		t.Fatalf("want one update per unit (4), got %d", len(updates))
	}
	last := updates[len(updates)-1]
	if last.ShardsDone != 4 || last.ShardsTotal != 4 || last.Execs != 4096 {
		t.Fatalf("final update wrong: %+v", last)
	}
	for i := 1; i < len(updates); i++ {
		if updates[i].Execs < updates[i-1].Execs || updates[i].Cover < updates[i-1].Cover {
			t.Fatalf("progress must be monotonic: %+v", updates)
		}
	}
}

func TestRunParallelCancellation(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig(1_000_000, 5) // far more than a test should run
	start := time.Now()
	stats, err := f.RunParallel(ctx, cfg, 2)
	if err == nil {
		t.Fatal("cancelled campaign must report the context error")
	}
	if stats == nil {
		t.Fatal("partial stats must still be returned")
	}
	if stats.Execs >= 1_000_000 {
		t.Fatal("cancellation did not stop the campaign early")
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("cancellation took implausibly long")
	}
}

func TestRunRepetitionsMatchesSerial(t *testing.T) {
	f := New(targetFor(t, "cec"), testKernel)
	cfg := DefaultConfig(600, 11)
	par := f.RunRepetitions(context.Background(), cfg, 3)
	for i := 0; i < 3; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1000003
		want := f.Run(c)
		if par[i].CoverCount() != want.CoverCount() || par[i].UniqueCrashes() != want.UniqueCrashes() {
			t.Fatalf("rep %d diverged from serial: cov %d vs %d", i, par[i].CoverCount(), want.CoverCount())
		}
	}
}

// TestMergeIntoTieBreakDeterministic is the regression test for the
// shard-merge nondeterminism: two units hitting the same crash title
// with equal remapped FirstExec must keep the same Repro regardless
// of which unit's stats merge first (secondary key: lexicographically
// smaller repro text).
func TestMergeIntoTieBreakDeterministic(t *testing.T) {
	unit := func(repro string, firstExec int) *Stats {
		return &Stats{
			Cover: &vkernel.CoverSet{},
			Crashes: map[string]*CrashReport{
				"same title": {Title: "same title", FirstExec: firstExec, Count: 1, Repro: repro},
			},
		}
	}
	// Unit 0 occupies [0, 100), unit 1 occupies [100, 200): FirstExec
	// 150 in unit 0 and 50 in unit 1 remap to the same global index.
	merge := func(order [2]int) string {
		units := [2]*Stats{unit("bbb repro\n", 150), unit("aaa repro\n", 50)}
		bases := [2]int{0, 100}
		dst := &Stats{Cover: &vkernel.CoverSet{}, Crashes: map[string]*CrashReport{}}
		for _, i := range order {
			mergeInto(dst, units[i], bases[i])
		}
		cr := dst.Crashes["same title"]
		if cr.FirstExec != 150 || cr.Count != 2 {
			t.Fatalf("merge wrong: %+v", cr)
		}
		return cr.Repro
	}
	a, b := merge([2]int{0, 1}), merge([2]int{1, 0})
	if a != b {
		t.Fatalf("surviving repro depends on completion order: %q vs %q", a, b)
	}
	if a != "aaa repro\n" {
		t.Fatalf("tie must keep the lexicographically smaller repro, got %q", a)
	}
}

func TestShardPlan(t *testing.T) {
	cfg := Config{Execs: 2500, ShardExecs: 1000}
	p := planShards(cfg)
	if p.units != 3 {
		t.Fatalf("units = %d", p.units)
	}
	if p.budget(0) != 1000 || p.budget(1) != 1000 || p.budget(2) != 500 {
		t.Fatalf("budgets = %d %d %d", p.budget(0), p.budget(1), p.budget(2))
	}
	if unitSeed(1, 0) == unitSeed(1, 1) || unitSeed(1, 0) == unitSeed(2, 0) {
		t.Fatal("unit seeds must differ across units and bases")
	}
}

func TestRunParallelPeriodicProgressMonotone(t *testing.T) {
	f := New(targetFor(t, "dm"), testKernel)
	cfg := DefaultConfig(4096, 3)
	cfg.ShardExecs = 2048 // 2 units; each emits a periodic update at exec 1024
	var mu sync.Mutex
	var updates []Progress
	cfg.Progress = func(p Progress) {
		mu.Lock()
		updates = append(updates, p)
		mu.Unlock()
	}
	if _, err := f.RunParallel(context.Background(), cfg, 2); err != nil {
		t.Fatal(err)
	}
	if len(updates) <= 2 {
		t.Fatalf("want periodic updates beyond the 2 unit completions, got %d", len(updates))
	}
	for i := 1; i < len(updates); i++ {
		if updates[i].Execs < updates[i-1].Execs {
			t.Fatalf("exec counts regressed: %d then %d (update %d)",
				updates[i-1].Execs, updates[i].Execs, i)
		}
		if updates[i].ShardsDone < updates[i-1].ShardsDone {
			t.Fatalf("ShardsDone regressed at update %d: %+v", i, updates)
		}
	}
	mid := false
	for _, p := range updates {
		if p.ShardsDone == 0 && p.Execs > 0 {
			mid = true // a periodic update fired before any unit completed
		}
	}
	if !mid {
		t.Fatal("no aggregated update arrived while units were still running")
	}
	last := updates[len(updates)-1]
	if last.ShardsDone != 2 || last.ShardsTotal != 2 || last.Execs != 4096 {
		t.Fatalf("final update wrong: %+v", last)
	}
}
