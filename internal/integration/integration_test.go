// Package integration tests the full pipeline across module
// boundaries: corpus → extractor → KernelGPT → validator → compiler →
// fuzzer → virtual kernel, plus the end-to-end properties the paper's
// claims rest on.
package integration

import (
	"context"
	"strings"
	"testing"

	"kernelgpt/internal/baseline"
	"kernelgpt/internal/core"
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/vkernel"
)

var (
	testCorpus = corpus.Build(corpus.TestConfig())
	testKernel = vkernel.New(testCorpus)
	ctx        = context.Background()
)

// TestEndToEndDeviceMapperCVE is the headline integration: generate
// the dm spec with the full pipeline, fuzz with it, and reproduce
// CVE-2024-23851.
func TestEndToEndDeviceMapperCVE(t *testing.T) {
	gen := core.New(llm.NewSim("gpt-4", 1), testCorpus, core.DefaultOptions())
	res := gen.GenerateFor(ctx, testCorpus.Handler("dm"))
	if !res.Valid {
		t.Fatalf("generation failed: %v", res.RemainingErrors)
	}
	tgt, err := prog.Compile(res.Spec, testCorpus.Env())
	if err != nil {
		t.Fatal(err)
	}
	stats := fuzz.New(tgt, testKernel).Run(fuzz.DefaultConfig(12000, 2))
	if _, ok := stats.Crashes["kmalloc bug in ctl_ioctl"]; !ok {
		t.Fatalf("CVE-2024-23851 not reproduced; crashes: %v", stats.CrashTitles())
	}
}

// TestGeneratedBeatsBaselinePerDriver checks the Table 5 mechanism on
// the quirky drivers: the generated spec out-covers the static
// baseline where quirks apply.
func TestGeneratedBeatsBaselinePerDriver(t *testing.T) {
	gen := core.New(llm.NewSim("gpt-4", 2), testCorpus, core.DefaultOptions())
	sd := baseline.New(testCorpus)
	for _, name := range []string{"dm", "cec", "controlC0"} {
		h := testCorpus.Handler(name)
		kg := gen.GenerateFor(ctx, h)
		if !kg.Valid {
			t.Fatalf("%s: generation failed", name)
		}
		kgCov := coverage(t, kg.Spec, 3)
		base := sd.GenerateFor(h)
		var sdCov int
		if base.Spec != nil {
			sdCov = coverage(t, base.Spec, 3)
		}
		if kgCov <= sdCov {
			t.Fatalf("%s: KernelGPT cov %d did not beat SyzDescribe cov %d", name, kgCov, sdCov)
		}
	}
}

func coverage(t *testing.T, spec *syzlang.File, seed int64) int {
	t.Helper()
	if errs := syzlang.Validate(spec, testCorpus.Env()); len(errs) > 0 {
		return 0
	}
	tgt, err := prog.Compile(spec, testCorpus.Env())
	if err != nil {
		return 0
	}
	return fuzz.New(tgt, testKernel).Run(fuzz.DefaultConfig(3000, seed)).CoverCount()
}

// TestOracleUpperBounds checks the generated spec never covers more
// than the ground-truth oracle spec (it can at best match it).
func TestOracleUpperBounds(t *testing.T) {
	gen := core.New(llm.NewSim("gpt-4", 3), testCorpus, core.DefaultOptions())
	for _, name := range []string{"cec", "ubi_ctrl"} {
		h := testCorpus.Handler(name)
		kg := gen.GenerateFor(ctx, h)
		if !kg.Valid {
			continue
		}
		kgCov := coverage(t, kg.Spec, 5)
		oracleCov := coverage(t, corpus.OracleSpec(h), 5)
		if kgCov > oracleCov+oracleCov/10 {
			t.Fatalf("%s: generated spec (%d) covers more than the oracle (%d)?",
				name, kgCov, oracleCov)
		}
	}
}

// TestWholePipelineDeterminism re-runs generation + fuzzing and
// expects byte-identical specs and identical campaign results.
func TestWholePipelineDeterminism(t *testing.T) {
	run := func() (string, int) {
		c := corpus.Build(corpus.TestConfig())
		k := vkernel.New(c)
		gen := core.New(llm.NewSim("gpt-4", 9), c, core.DefaultOptions())
		res := gen.GenerateFor(ctx, c.Handler("cec"))
		if res.Spec == nil {
			t.Fatal("nil spec")
		}
		text := syzlang.Format(res.Spec)
		tgt, err := prog.Compile(res.Spec, c.Env())
		if err != nil {
			t.Fatal(err)
		}
		cov := fuzz.New(tgt, k).Run(fuzz.DefaultConfig(2000, 4)).CoverCount()
		return text, cov
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 {
		t.Fatal("spec generation not deterministic across corpus rebuilds")
	}
	if c1 != c2 {
		t.Fatalf("campaign not deterministic: %d vs %d", c1, c2)
	}
}

// TestHumanSuiteCannotReachNewBugs verifies the Table 4 exclusivity
// property at test scale: fuzzing only with the existing suite never
// triggers a new (non-Known) bug.
func TestHumanSuiteCannotReachNewBugs(t *testing.T) {
	suite := testCorpus.ExistingSuite()
	tgt, err := prog.Compile(suite, testCorpus.Env())
	if err != nil {
		t.Fatal(err)
	}
	stats := fuzz.New(tgt, testKernel).Run(fuzz.DefaultConfig(15000, 6))
	newBugs := testCorpus.AllBugs()
	for title := range stats.Crashes {
		if _, isNew := newBugs[title]; isNew {
			t.Fatalf("existing suite reached new bug %q", title)
		}
	}
}

// TestMergedSuitesCompile compiles every suite combination the bench
// harness uses.
func TestMergedSuitesCompile(t *testing.T) {
	existing := testCorpus.ExistingSuite()
	sd := baseline.MergeSpecs(baseline.New(testCorpus).GenerateAll(testCorpus.Incomplete(corpus.KindDriver)))
	gen := core.New(llm.NewSim("gpt-4", 7), testCorpus, core.DefaultOptions())
	var results []*core.Result
	for _, h := range testCorpus.Incomplete(corpus.KindDriver) {
		results = append(results, gen.GenerateFor(ctx, h))
	}
	kg := core.MergeSpecs(results)
	for i, f := range []*syzlang.File{
		existing,
		syzlang.MergeDedup(existing, sd),
		syzlang.MergeDedup(existing, kg),
	} {
		if errs := syzlang.Validate(f, testCorpus.Env()); len(errs) > 0 {
			t.Fatalf("suite %d invalid: %v", i, errs[0])
		}
		if _, err := prog.Compile(f, testCorpus.Env()); err != nil {
			t.Fatalf("suite %d does not compile: %v", i, err)
		}
	}
}

// TestReadableNames spot-checks the §5.1.1 readability claim: the
// generated spec uses the kernel's own macro and struct names, while
// the baseline uses numeric identifiers.
func TestReadableNames(t *testing.T) {
	gen := core.New(llm.NewSim("gpt-4", 8), testCorpus, core.DefaultOptions())
	kg := gen.GenerateFor(ctx, testCorpus.Handler("cec"))
	if !kg.Valid {
		t.Fatal("cec generation failed")
	}
	kgText := syzlang.Format(kg.Spec)
	if !strings.Contains(kgText, "CEC_TRANSMIT") || !strings.Contains(kgText, "cec_msg") {
		t.Fatalf("generated spec lost readable names:\n%s", kgText)
	}
	sd := baseline.New(testCorpus).GenerateFor(testCorpus.Handler("loop0"))
	if sd.Spec != nil && len(sd.Spec.Structs) > 0 {
		if !strings.Contains(syzlang.Format(sd.Spec), "field_0") {
			t.Fatal("baseline should use positional field names")
		}
	}
}

// TestIterationBudgetRespected verifies Algorithm 1's MAX_ITER bound.
func TestIterationBudgetRespected(t *testing.T) {
	opts := core.DefaultOptions()
	opts.MaxIter = 2
	opts.Repair = false
	gen := core.New(llm.NewSim("gpt-4", 10), testCorpus, opts)
	res := gen.GenerateFor(ctx, testCorpus.Handler("dm"))
	// dm needs ≥3 identifier rounds (regs → unlocked → dm_ioctl);
	// with MaxIter=2 the command table is never reached.
	if res.NewSyscalls() > 0 {
		t.Fatalf("MaxIter=2 should starve the dm analysis, got %d syscalls", res.NewSyscalls())
	}
	if res.Iterations > 2+2+1 {
		t.Fatalf("iteration budget exceeded: %d", res.Iterations)
	}
}
