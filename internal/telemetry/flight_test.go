package telemetry

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestFlightRecorderRingEviction(t *testing.T) {
	fr := NewFlightRecorder(t.TempDir(), 4, fixedClock(1_700_000_000))
	for i := 1; i <= 6; i++ {
		fr.Record(Event{Span: "e", ElapsedNs: int64(i), Execs: int64(i)})
	}
	if fr.Len() != 4 {
		t.Fatalf("ring length: got %d, want 4", fr.Len())
	}
	path, err := fr.Dump("crash")
	if err != nil {
		t.Fatal(err)
	}
	reason, events, err := ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if reason != "crash" {
		t.Fatalf("reason: %q", reason)
	}
	if len(events) != 4 {
		t.Fatalf("dump events: got %d, want 4", len(events))
	}
	// Oldest-first: events 3..6 survive the eviction of 1 and 2.
	for i, ev := range events {
		if ev.Execs != int64(i+3) {
			t.Fatalf("event %d: got exec %d, want %d", i, ev.Execs, i+3)
		}
	}
	if events[len(events)-1].Execs != 6 {
		t.Fatal("final event must be the most recent")
	}
}

func TestFlightDumpNamingAndSequence(t *testing.T) {
	dir := t.TempDir()
	fr := NewFlightRecorder(dir, 4, fixedClock(1_700_000_000))
	fr.Record(Event{Span: "x", ElapsedNs: 1})
	p1, err := fr.Dump("bug: a/b")
	if err != nil {
		t.Fatal(err)
	}
	if got := filepath.Base(p1); got != "flight-0001-bug__a_b.jsonl" {
		t.Fatalf("dump name: %q", got)
	}
	p2, err := fr.Dump("bug: a/b")
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("sequence number must advance per dump")
	}
	if !strings.HasPrefix(filepath.Base(p2), "flight-0002-") {
		t.Fatalf("second dump name: %q", filepath.Base(p2))
	}
}

func TestFlightNilAndEmpty(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(Event{Span: "x"})
	if fr.Len() != 0 {
		t.Fatal("nil recorder must be empty")
	}
	path, err := fr.Dump("crash")
	if err != nil || path != "" {
		t.Fatalf("nil dump: path=%q err=%v", path, err)
	}
	fr2 := NewFlightRecorder(t.TempDir(), 4, nil)
	path, err = fr2.Dump("crash")
	if err != nil || path != "" {
		t.Fatalf("empty-ring dump must be a no-op: path=%q err=%v", path, err)
	}
}

func TestFlightStampsElapsedFromClock(t *testing.T) {
	fr := NewFlightRecorder(t.TempDir(), 4, fixedClock(1_700_000_000))
	fr.RecordNow("bare", 0, "")
	path, err := fr.Dump("ok")
	if err != nil {
		t.Fatal(err)
	}
	_, events, err := ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if events[0].ElapsedNs != 1_700_000_000*1_000_000_000 {
		t.Fatalf("bare event not stamped from clock: %d", events[0].ElapsedNs)
	}
}
