// Package telemetry is the fleet's observability substrate: a
// stdlib-only metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms with zero-allocation hot-path
// recording), Prometheus text-format exposition for scraping, trace
// spans exported as JSONL compatible with the sim.TracePoint stream,
// and a crash flight recorder (flight.go) — a bounded ring of recent
// events dumped to disk when something goes wrong.
//
// Two disciplines shape the package:
//
//   - The disabled path is near-zero. Every metric method is nil-safe:
//     a nil *Counter, *Gauge, *Histogram, *Tracer, or *FlightRecorder
//     is an inert no-op, so instrumented code carries telemetry as
//     plain fields and pays one nil check per event when the operator
//     has not asked for metrics. No global registry exists to tempt
//     always-on recording.
//
//   - All clock use goes through the injected Clock seam. SystemClock
//     is the single sanctioned wall-clock read (the detrand analyzer
//     carves out exactly that function), which is what lets golden
//     tests pin /metrics and flight dumps byte-for-byte under a fixed
//     clock, and keeps telemetry from smuggling wall-clock state into
//     the deterministic fuzzing path. Telemetry is strictly
//     write-only from the instrumented code's point of view: nothing
//     here ever feeds back into RNG, scheduling, or coverage.
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the injectable time source every telemetry consumer
// threads instead of reading time.Now directly. The zero value (nil)
// falls back to the system wall clock, so production callers pass
// nothing and tests pass a fixed or stepped function.
type Clock func() time.Time

// SystemClock is the process wall clock — the one sanctioned raw
// time.Now read in the deterministic tree. The detrand analyzer
// carves out exactly this function; every other wall-clock read in a
// policed package must arrive through a Clock value.
func SystemClock() time.Time {
	return time.Now()
}

// Now returns the clock's current time, defaulting to SystemClock
// when c is nil.
func (c Clock) Now() time.Time {
	if c == nil {
		return SystemClock()
	}
	return c()
}

// metric is one registered instrument; write emits its exposition
// lines.
type metric interface {
	write(w io.Writer, name string)
}

// Registry holds named metrics and renders them in Prometheus text
// format. Metric names follow Prometheus conventions
// (snake_case, unit-suffixed: *_total counters, *_ns histograms) and
// may carry a label set in curly braces — the full "name{labels}"
// string is the registry key, and exposition merges the le label into
// histogram bucket lines. Registration is idempotent: asking twice
// for the same name returns the same instrument, so packages can
// build their metric bundles independently over a shared registry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metric{}}
}

// lookup returns the named metric, creating it with mk on first use.
// A name registered with a different instrument type panics — that is
// a programming error, not an operational condition.
func (r *Registry) lookup(name string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// Counter returns the named monotone counter, registering it on first
// use. A nil registry returns a nil (inert) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return c
}

// Gauge returns the named gauge, registering it on first use. A nil
// registry returns a nil (inert) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, registering it
// with the given ascending upper bounds on first use (nil bounds
// select LatencyBuckets). A nil registry returns a nil (inert)
// histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() metric { return newHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return h
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, sorted by full metric name so identical registry
// contents always serialize to identical bytes (the golden-scrape
// invariant). Values are integers throughout — counts and nanosecond
// sums — so no float formatting can drift between platforms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]metric, len(names))
	sort.Strings(names)
	for i, name := range names {
		ms[i] = r.metrics[name]
	}
	r.mu.Unlock()
	bw := &errWriter{w: w}
	lastFamily := ""
	for i, name := range names {
		family, _ := splitLabels(name)
		if family != lastFamily {
			lastFamily = family
			kind := "counter"
			switch ms[i].(type) {
			case *Gauge:
				kind = "gauge"
			case *Histogram:
				kind = "histogram"
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", family, kind)
		}
		ms[i].write(bw, name)
	}
	return bw.err
}

// Handler serves the registry as a Prometheus scrape endpoint
// (GET /metrics).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// errWriter latches the first write error so the exposition loop does
// not need per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}

// splitLabels separates "name{labels}" into the metric family and the
// brace-enclosed label body ("" when unlabeled).
func splitLabels(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// --- counter ---

// Counter is a monotone atomic counter. All methods are safe for
// concurrent use and inert on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.v.Load())
}

// --- gauge ---

// Gauge is an atomic instantaneous value (set or add/subtract). All
// methods are safe for concurrent use and inert on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, g.v.Load())
}

// --- histogram ---

// LatencyBuckets is the default nanosecond bucket ladder: powers of
// four from 1µs (just under one compiled exec) to ~4.4min, so one
// ladder spans per-exec costs, triage passes, hub syncs, and whole
// work units without per-metric tuning.
var LatencyBuckets = []int64{
	1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22,
	1 << 24, 1 << 26, 1 << 28, 1 << 30, 1 << 32, 1 << 34, 1 << 36, 1 << 38,
}

// Histogram is a fixed-bucket distribution of int64 observations
// (latencies in nanoseconds by convention). Recording is lock-free
// and allocation-free: one linear scan over the bounds plus three
// atomic adds. Concurrent scrapes may observe a sum/count pair
// mid-update; the drift is one observation and self-corrects on the
// next scrape (scrape-side smearing, the standard Prometheus
// trade-off).
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // one per bound, plus the +Inf overflow
	sum    atomic.Int64
	count  atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

func (h *Histogram) write(w io.Writer, name string) {
	family, labels := splitLabels(name)
	line := func(suffix, extraLabels string, v int64) {
		switch {
		case labels == "" && extraLabels == "":
			fmt.Fprintf(w, "%s%s %d\n", family, suffix, v)
		case labels == "":
			fmt.Fprintf(w, "%s%s{%s} %d\n", family, suffix, extraLabels, v)
		case extraLabels == "":
			fmt.Fprintf(w, "%s%s{%s} %d\n", family, suffix, labels, v)
		default:
			fmt.Fprintf(w, "%s%s{%s,%s} %d\n", family, suffix, labels, extraLabels, v)
		}
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		line("_bucket", fmt.Sprintf("le=%q", fmt.Sprintf("%d", b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	line("_bucket", `le="+Inf"`, cum)
	line("_sum", "", h.sum.Load())
	line("_count", "", h.count.Load())
}
