package telemetry

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock(sec int64) Clock {
	t := time.Unix(sec, 0).UTC()
	return func() time.Time { return t }
}

// stepClock returns a clock advancing by step on every read, for
// deterministic non-zero durations.
func stepClock(start time.Time, step time.Duration) Clock {
	var mu sync.Mutex
	now := start
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t := now
		now = now.Add(step)
		return t
	}
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(5)
	c.Inc()
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a_total")
	c2 := r.Counter("a_total")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	c1.Add(2)
	if c2.Value() != 2 {
		t.Fatalf("shared counter: got %d, want 2", c2.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("a_total")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count: got %d, want 5", h.Count())
	}
	if h.Sum() != 1+10+11+100+5000 {
		t.Fatalf("sum: got %d", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE lat_ns histogram
lat_ns_bucket{le="10"} 2
lat_ns_bucket{le="100"} 4
lat_ns_bucket{le="1000"} 4
lat_ns_bucket{le="+Inf"} 5
lat_ns_sum 5122
lat_ns_count 5
`
	if buf.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestExpositionSortedAndLabeled(t *testing.T) {
	r := NewRegistry()
	r.Counter(`bytes_total{proto="json"}`).Add(10)
	r.Counter(`bytes_total{proto="binary"}`).Add(20)
	r.Gauge("workers").Set(4)
	r.Histogram(`svc_ns{kind="sync"}`, []int64{100}).Observe(50)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE bytes_total counter
bytes_total{proto="binary"} 20
bytes_total{proto="json"} 10
# TYPE svc_ns histogram
svc_ns_bucket{kind="sync",le="100"} 1
svc_ns_bucket{kind="sync",le="+Inf"} 1
svc_ns_sum{kind="sync"} 50
svc_ns_count{kind="sync"} 1
# TYPE workers gauge
workers 4
`
	if buf.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
	// Byte stability: a second render of the same registry must be
	// identical (the double-scrape invariant the hub golden test
	// relies on).
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("exposition is not byte-stable across scrapes")
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(3)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type: %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hits_total 3") {
		t.Fatalf("body missing counter: %s", buf.String())
	}
}

func TestClockDefaultsToSystem(t *testing.T) {
	var c Clock
	before := time.Now()
	got := c.Now()
	if got.Before(before.Add(-time.Second)) || got.After(before.Add(time.Minute)) {
		t.Fatalf("nil clock should read system time, got %v", got)
	}
	fixed := fixedClock(1_700_000_000)
	if !fixed.Now().Equal(time.Unix(1_700_000_000, 0).UTC()) {
		t.Fatal("fixed clock must return its pinned instant")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total")
	h := r.Histogram("v_ns", []int64{8})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j % 16))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter: got %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count: got %d, want 8000", h.Count())
	}
}
