package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanRecord is one finished span, serialized as a JSONL line. The
// field names are chosen so span lines can interleave with
// sim.TracePoint lines in a single trace file: elapsed_ns means the
// same thing (offset from stream start), execs carries the campaign
// exec index when known, and the span/dur_ns/detail fields are ones
// sim-side readers skip (yieldObservations drops any line with a
// non-empty span).
type SpanRecord struct {
	Span      string `json:"span"`
	ElapsedNs int64  `json:"elapsed_ns"`
	DurNs     int64  `json:"dur_ns"`
	Execs     int64  `json:"execs,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

// Tracer emits begin/end spans as JSONL and optionally mirrors each
// finished span into a FlightRecorder ring. All methods are inert on
// a nil receiver. The zero offset is captured at construction so
// elapsed_ns is relative to tracer start, matching the -trace stream
// convention.
type Tracer struct {
	clock  Clock
	start  time.Time
	flight *FlightRecorder

	mu  sync.Mutex
	w   io.Writer // guarded by mu
	enc *json.Encoder
}

// NewTracer returns a tracer writing span records to w (nil for
// flight-only mirroring) with elapsed offsets measured from now.
func NewTracer(w io.Writer, clock Clock, flight *FlightRecorder) *Tracer {
	t := &Tracer{clock: clock, start: clock.Now(), flight: flight, w: w}
	if w != nil {
		t.enc = json.NewEncoder(w)
	}
	return t
}

// Span is an in-flight span started by Tracer.Begin; End finishes it.
type Span struct {
	tr    *Tracer
	name  string
	begin time.Time
	execs int64
}

// Begin starts a span. Execs may carry the campaign exec index (0 to
// omit). Returns an inert span on a nil tracer.
func (t *Tracer) Begin(name string, execs int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, begin: t.clock.Now(), execs: execs}
}

// End finishes the span, emitting its record with the given detail
// (crash title, peer name, ""). Safe on the zero Span.
func (s Span) End(detail string) {
	t := s.tr
	if t == nil {
		return
	}
	now := t.clock.Now()
	rec := SpanRecord{
		Span:      s.name,
		ElapsedNs: s.begin.Sub(t.start).Nanoseconds(),
		DurNs:     now.Sub(s.begin).Nanoseconds(),
		Execs:     s.execs,
		Detail:    detail,
	}
	t.emit(rec)
}

// Event records an instantaneous (zero-duration) span.
func (t *Tracer) Event(name string, execs int64, detail string) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	t.emit(SpanRecord{
		Span:      name,
		ElapsedNs: now.Sub(t.start).Nanoseconds(),
		Execs:     execs,
		Detail:    detail,
	})
}

func (t *Tracer) emit(rec SpanRecord) {
	if t.enc != nil {
		t.mu.Lock()
		t.enc.Encode(rec)
		t.mu.Unlock()
	}
	t.flight.Record(Event{
		Span:      rec.Span,
		ElapsedNs: rec.ElapsedNs,
		DurNs:     rec.DurNs,
		Execs:     rec.Execs,
		Detail:    rec.Detail,
	})
}
