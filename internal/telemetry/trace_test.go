package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerSpansJSONL(t *testing.T) {
	var buf bytes.Buffer
	clock := stepClock(time.Unix(1_700_000_000, 0).UTC(), time.Millisecond)
	tr := NewTracer(&buf, clock, nil)
	sp := tr.Begin("exec", 7)
	sp.End("bug-a")
	tr.Event("sync", 0, "hub")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 span lines, got %d: %q", len(lines), buf.String())
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Span != "exec" || rec.Execs != 7 || rec.Detail != "bug-a" {
		t.Fatalf("span record: %+v", rec)
	}
	// stepClock ticks once for the tracer start, once at Begin, once
	// at End: elapsed = 1ms, dur = 1ms.
	if rec.ElapsedNs != int64(time.Millisecond) || rec.DurNs != int64(time.Millisecond) {
		t.Fatalf("span timing: %+v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Span != "sync" || rec.DurNs != 0 || rec.Detail != "hub" {
		t.Fatalf("event record: %+v", rec)
	}
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x", 1)
	sp.End("")
	tr.Event("y", 0, "")
	var zero Span
	zero.End("still fine")
}

func TestTracerMirrorsToFlight(t *testing.T) {
	fr := NewFlightRecorder(t.TempDir(), 8, fixedClock(1_700_000_000))
	tr := NewTracer(nil, fixedClock(1_700_000_000), fr)
	tr.Begin("exec", 3).End("")
	tr.Event("crash", 3, "bug-a")
	if fr.Len() != 2 {
		t.Fatalf("flight ring: got %d events, want 2", fr.Len())
	}
}
