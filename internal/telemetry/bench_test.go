package telemetry

import "testing"

// BenchmarkCounterAdd measures the enabled hot path: one atomic add.
func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkCounterAddDisabled measures the disabled path: a nil
// counter must cost one predictable branch, nothing more.
func BenchmarkCounterAddDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkHistogramRecord measures the enabled observe path: a
// linear bound scan plus three atomic adds, zero allocations.
func BenchmarkHistogramRecord(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_ns", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i&0xFFFF) + 1000)
	}
}

// BenchmarkHistogramRecordDisabled measures the nil-histogram path.
func BenchmarkHistogramRecordDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
