package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Event is one flight-recorder ring entry. It carries the same JSON
// shape as SpanRecord so a dump file reads as a span stream: the last
// line of a crash dump is the crashing exec's span.
type Event struct {
	Span      string `json:"span"`
	ElapsedNs int64  `json:"elapsed_ns"`
	DurNs     int64  `json:"dur_ns,omitempty"`
	Execs     int64  `json:"execs,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

// flightHeader is the first line of every dump file: why the dump was
// taken, when (per the injected clock), and how many events follow.
type flightHeader struct {
	Flight string `json:"flight"`
	Reason string `json:"reason"`
	UnixNs int64  `json:"unix_ns"`
	Events int    `json:"events"`
}

// FlightRecorder keeps a bounded ring of recent telemetry events in
// memory and dumps them (oldest first) to a JSONL file when asked —
// typically when a campaign records a crash or a hub request fails —
// so every crash report carries the last N events of engine activity.
// All methods are safe for concurrent use and inert on a nil
// receiver. Recording is a ring-slot write under a mutex: no
// allocation once the ring is warm.
type FlightRecorder struct {
	dir   string
	clock Clock

	mu   sync.Mutex
	ring []Event // guarded by mu
	next int     // guarded by mu; index of the oldest slot once full
	full bool    // guarded by mu
	seq  int     // guarded by mu; dump file sequence number
}

// NewFlightRecorder returns a recorder holding the last size events,
// dumping into dir. Size defaults to 256 when <= 0.
func NewFlightRecorder(dir string, size int, clock Clock) *FlightRecorder {
	if size <= 0 {
		size = 256
	}
	return &FlightRecorder{dir: dir, clock: clock, ring: make([]Event, size)}
}

// Record appends one event to the ring verbatim, evicting the oldest
// when full. Callers with a meaningful stream offset set ElapsedNs
// themselves; use RecordNow for bare wall-stamped events.
func (f *FlightRecorder) Record(ev Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = ev
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.full = true
	}
	f.mu.Unlock()
}

// RecordNow records an instantaneous event stamped from the
// recorder's clock (nanoseconds since the Unix epoch) — for callers
// with no stream-relative offset, like hub request handlers.
func (f *FlightRecorder) RecordNow(span string, execs int64, detail string) {
	if f == nil {
		return
	}
	f.Record(Event{Span: span, ElapsedNs: f.clock.Now().UnixNano(), Execs: execs, Detail: detail})
}

// snapshotLocked returns the ring contents oldest-first; f.mu held.
func (f *FlightRecorder) snapshotLocked() []Event {
	out := make([]Event, 0, len(f.ring))
	if f.full {
		out = append(out, f.ring[f.next:]...)
	}
	out = append(out, f.ring[:f.next]...)
	return out
}

// Dump writes the current ring (oldest first) to
// dir/flight-<seq>-<reason>.jsonl and returns the file path. The
// first line is a header recording the reason and event count; each
// following line is one Event. Dumping does not clear the ring, so
// overlapping crashes each get full context. Returns "" with no
// error on a nil recorder or an empty ring.
func (f *FlightRecorder) Dump(reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	events := f.snapshotLocked()
	f.seq++
	seq := f.seq
	f.mu.Unlock()
	if len(events) == 0 {
		return "", nil
	}
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(f.dir, fmt.Sprintf("flight-%04d-%s.jsonl", seq, sanitizeReason(reason)))
	tmp, err := os.CreateTemp(f.dir, ".flight-*")
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(tmp)
	err = enc.Encode(flightHeader{
		Flight: "v1",
		Reason: reason,
		UnixNs: f.clock.Now().UnixNano(),
		Events: len(events),
	})
	for i := range events {
		if err == nil {
			err = enc.Encode(events[i])
		}
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// Len returns the number of buffered events.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.full {
		return len(f.ring)
	}
	return f.next
}

// sanitizeReason keeps dump filenames portable: anything outside
// [a-zA-Z0-9._-] becomes '_', and the reason is capped at 48 bytes.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "event"
	}
	if len(reason) > 48 {
		reason = reason[:48]
	}
	b := []byte(reason)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// ReadFlightDump parses a dump file back into its header fields and
// events — the test/tooling-side inverse of Dump.
func ReadFlightDump(path string) (reason string, events []Event, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var hdr flightHeader
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&hdr); err != nil {
		return "", nil, fmt.Errorf("flight dump %s: bad header: %w", path, err)
	}
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return "", nil, fmt.Errorf("flight dump %s: bad event: %w", path, err)
		}
		events = append(events, ev)
	}
	if len(events) != hdr.Events {
		return "", nil, fmt.Errorf("flight dump %s: header says %d events, found %d", path, hdr.Events, len(events))
	}
	return hdr.Reason, events, nil
}
