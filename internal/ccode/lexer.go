// Package ccode is a lightweight C source analyzer playing the role
// of the LLVM-based extractor in the paper (§4). It indexes the
// synthetic kernel codebase: function definitions, struct/union/enum
// definitions, #define macros (including _IO/_IOR/_IOW/_IOWR ioctl
// command encodings), and operation-handler registrations
// (file_operations, miscdevice, proto_ops, ...). It deliberately
// implements pattern-driven parsing, not a full C frontend — exactly
// the "simple yet general pattern matching" the paper describes for
// handler extraction, plus definition lookup by identifier for the
// LLM's ExtractCode requests.
package ccode

import "strings"

// CToken is a lexical token of C source.
type CToken struct {
	Kind CTokenKind
	Text string
	Off  int // byte offset in source
	Line int // 1-based
}

// CTokenKind enumerates C token categories.
type CTokenKind int

// C token kinds.
const (
	CEOF CTokenKind = iota
	CIdent
	CNumber
	CString
	CChar
	CPunct
	CComment   // /* ... */ or // ...
	CDirective // #define, #include, ... (whole line incl. continuations)
)

// LexC tokenizes C source, keeping comments and preprocessor
// directives as single tokens (the analyzer reads comments for
// intent, per the paper's L-3 discussion).
func LexC(src string) []CToken {
	var toks []CToken
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#' && atLineStart(src, i):
			start, startLine := i, line
			for i < n {
				if src[i] == '\n' {
					if i > 0 && src[i-1] == '\\' {
						line++
						i++
						continue
					}
					break
				}
				i++
			}
			toks = append(toks, CToken{Kind: CDirective, Text: src[start:i], Off: start, Line: startLine})
		case c == '/' && i+1 < n && src[i+1] == '*':
			start, startLine := i, line
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			i += 2
			if i > n {
				i = n
			}
			toks = append(toks, CToken{Kind: CComment, Text: src[start:min(i, n)], Off: start, Line: startLine})
		case c == '/' && i+1 < n && src[i+1] == '/':
			start := i
			for i < n && src[i] != '\n' {
				i++
			}
			toks = append(toks, CToken{Kind: CComment, Text: src[start:i], Off: start, Line: line})
		case isCIdentStart(c):
			start := i
			for i < n && isCIdentPart(src[i]) {
				i++
			}
			toks = append(toks, CToken{Kind: CIdent, Text: src[start:i], Off: start, Line: line})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (isCIdentPart(src[i]) || src[i] == '.') {
				i++
			}
			toks = append(toks, CToken{Kind: CNumber, Text: src[start:i], Off: start, Line: line})
		case c == '"':
			start := i
			i++
			for i < n && src[i] != '"' {
				if src[i] == '\\' {
					i++
				}
				i++
			}
			i++
			if i > n {
				i = n
			}
			toks = append(toks, CToken{Kind: CString, Text: src[start:min(i, n)], Off: start, Line: line})
		case c == '\'':
			start := i
			i++
			for i < n && src[i] != '\'' {
				if src[i] == '\\' {
					i++
				}
				i++
			}
			i++
			if i > n {
				i = n
			}
			toks = append(toks, CToken{Kind: CChar, Text: src[start:min(i, n)], Off: start, Line: line})
		default:
			// Multi-char punctuation we care about: -> << >> == != <= >= && ||
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "->", "<<", ">>", "==", "!=", "<=", ">=", "&&", "||", "|=", "&=", "+=", "-=":
				toks = append(toks, CToken{Kind: CPunct, Text: two, Off: i, Line: line})
				i += 2
			default:
				toks = append(toks, CToken{Kind: CPunct, Text: string(c), Off: i, Line: line})
				i++
			}
		}
	}
	return toks
}

func atLineStart(src string, i int) bool {
	for j := i - 1; j >= 0; j-- {
		switch src[j] {
		case ' ', '\t', '\r':
			continue
		case '\n':
			return true
		default:
			return false
		}
	}
	return true
}

func isCIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isCIdentPart(c byte) bool { return isCIdentStart(c) || (c >= '0' && c <= '9') }

// StringValue unquotes a C string literal token text.
func StringValue(text string) string {
	s := strings.TrimSuffix(strings.TrimPrefix(text, `"`), `"`)
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '0':
				b.WriteByte(0)
			default:
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
