package ccode

import (
	"strings"
	"testing"
	"testing/quick"
)

const dmSource = `
/* Device mapper control interface. */
#define DM_DIR "mapper"
#define DM_CONTROL_NODE "control"
#define DM_NAME "device-mapper"
#define DM_IOCTL 0xfd
#define DM_VERSION_CMD 0
#define DM_LIST_DEVICES_CMD 17
#define DM_VERSION _IOWR(DM_IOCTL, DM_VERSION_CMD, struct dm_ioctl)
#define DM_LIST_DEVICES _IOWR(DM_IOCTL, DM_LIST_DEVICES_CMD, struct dm_ioctl)

struct dm_ioctl {
	__u32 version[3];	/* ioctl interface version */
	__u32 data_size;	/* total size of data passed in */
	__u32 data_start;
	__u32 target_count;
	__u32 open_count;
	__u32 flags;
	char name[128];
	char data[];
};

/* Process a dm ioctl from userspace. */
static int ctl_ioctl(struct file *file, uint command, struct dm_ioctl *u)
{
	/* Only root can play with this. */
	uint cmd;
	cmd = _IOC_NR(command);
	if (cmd == DM_VERSION_CMD)
		return 0;
	fn = lookup_ioctl(cmd, &ioctl_flags);
	copy_from_user(param, u, sizeof(struct dm_ioctl));
	return 0;
}

static long dm_ctl_ioctl(struct file *file, uint command, ulong u)
{
	return ctl_ioctl(file, command, (struct dm_ioctl *)u);
}

static const struct file_operations _ctl_fops = {
	.open = dm_open,
	.unlocked_ioctl = dm_ctl_ioctl,
	.compat_ioctl = dm_compat_ctl_ioctl,
	.owner = THIS_MODULE,
};

static struct miscdevice _dm_misc = {
	.minor = MAPPER_CTRL_MINOR,
	.name = DM_NAME,
	.nodename = DM_DIR "/" DM_CONTROL_NODE,
	.fops = &_ctl_fops,
};

enum dm_state {
	DM_ACTIVE = 1,
	DM_SUSPENDED,
};
`

func dmIndex() *Index {
	return NewIndex(map[string]string{"drivers/md/dm-ioctl.c": dmSource})
}

func TestIndexFunctions(t *testing.T) {
	ix := dmIndex()
	fn := ix.Function("dm_ctl_ioctl")
	if fn == nil {
		t.Fatal("dm_ctl_ioctl not indexed")
	}
	if !fn.Static || len(fn.Params) != 3 {
		t.Fatalf("bad function: %+v", fn)
	}
	if fn.Params[1].Name != "command" {
		t.Fatalf("bad param: %+v", fn.Params[1])
	}
	if !strings.Contains(fn.Body, "ctl_ioctl") {
		t.Fatalf("body not captured: %q", fn.Body)
	}
	if got := ix.Function("ctl_ioctl"); got == nil || got.Comment == "" {
		t.Fatalf("ctl_ioctl missing or lost doc comment: %+v", got)
	}
}

func TestIndexStruct(t *testing.T) {
	ix := dmIndex()
	st := ix.StructDef("dm_ioctl")
	if st == nil {
		t.Fatal("dm_ioctl not indexed")
	}
	if len(st.Fields) != 8 {
		t.Fatalf("want 8 fields, got %d: %+v", len(st.Fields), st.Fields)
	}
	if st.Fields[0].Name != "version" || !st.Fields[0].IsArray || st.Fields[0].Array != "3" {
		t.Fatalf("bad version field: %+v", st.Fields[0])
	}
	if st.Fields[1].Comment == "" {
		t.Fatalf("field comment lost: %+v", st.Fields[1])
	}
	last := st.Fields[7]
	if last.Name != "data" || !last.IsArray || strings.TrimSpace(last.Array) != "" {
		t.Fatalf("bad flexible array field: %+v", last)
	}
	if st.Comment == "" {
		t.Fatal("struct doc comment lost")
	}
}

func TestIndexRegistrations(t *testing.T) {
	ix := dmIndex()
	fops := ix.Registrations("file_operations")
	if len(fops) != 1 {
		t.Fatalf("want 1 file_operations reg, got %d", len(fops))
	}
	if fops[0].Fields["unlocked_ioctl"] != "dm_ctl_ioctl" {
		t.Fatalf("bad unlocked_ioctl: %q", fops[0].Fields["unlocked_ioctl"])
	}
	misc := ix.Registrations("miscdevice")
	if len(misc) != 1 {
		t.Fatalf("want 1 miscdevice reg, got %d", len(misc))
	}
	if misc[0].Fields["fops"] != "& _ctl_fops" {
		t.Fatalf("bad fops ref: %q", misc[0].Fields["fops"])
	}
	if ix.RegistrationByVar("&_ctl_fops") != fops[0] {
		t.Fatal("RegistrationByVar failed to resolve &_ctl_fops")
	}
}

func TestEvalStringConcat(t *testing.T) {
	ix := dmIndex()
	misc := ix.Registrations("miscdevice")[0]
	name, ok := ix.EvalString(misc.Fields["nodename"])
	if !ok || name != "mapper/control" {
		t.Fatalf("nodename eval = %q, %v", name, ok)
	}
	plain, ok := ix.EvalString(misc.Fields["name"])
	if !ok || plain != "device-mapper" {
		t.Fatalf("name eval = %q, %v", plain, ok)
	}
}

func TestEvalIoctlMacro(t *testing.T) {
	ix := dmIndex()
	v, ok := ix.ResolveMacroInt("DM_VERSION")
	if !ok {
		t.Fatal("DM_VERSION did not evaluate")
	}
	// dir=3 (RW), size=sizeof(dm_ioctl)=164, type=0xfd, nr=0.
	wantSize := uint64(ix.Sizeof("struct dm_ioctl"))
	if IOCDir(v) != 3 || IOCSize(v) != wantSize || IOCNr(v) != 0 {
		t.Fatalf("bad encoding: dir=%d size=%d nr=%d", IOCDir(v), IOCSize(v), IOCNr(v))
	}
	v2, _ := ix.ResolveMacroInt("DM_LIST_DEVICES")
	if IOCNr(v2) != 17 {
		t.Fatalf("bad nr for DM_LIST_DEVICES: %d", IOCNr(v2))
	}
}

func TestSizeof(t *testing.T) {
	ix := dmIndex()
	// 3*4 + 5*4 + 128 + 0 (flexible) = 160, already 4-aligned.
	if got := ix.Sizeof("struct dm_ioctl"); got != 160 {
		t.Fatalf("sizeof dm_ioctl = %d, want 160", got)
	}
	if got := ix.Sizeof("__u64"); got != 8 {
		t.Fatalf("sizeof __u64 = %d", got)
	}
	if got := ix.Sizeof("struct nothere"); got != 0 {
		t.Fatalf("sizeof unknown = %d, want 0", got)
	}
}

func TestSizeofAlignment(t *testing.T) {
	src := `
struct padded {
	__u8 a;
	__u64 b;
	__u16 c;
};
`
	ix := NewIndex(map[string]string{"x.c": src})
	// a at 0, b at 8 (7 pad), c at 16, total 18 → pad to 24.
	if got := ix.Sizeof("struct padded"); got != 24 {
		t.Fatalf("sizeof padded = %d, want 24", got)
	}
}

func TestSizeofUnion(t *testing.T) {
	src := `
union u {
	__u32 a;
	__u64 b;
	char buf[12];
};
`
	ix := NewIndex(map[string]string{"x.c": src})
	// max(4, 8, 12) = 12 → pad to align 8 → 16.
	if got := ix.Sizeof("union u"); got != 16 {
		t.Fatalf("sizeof union = %d, want 16", got)
	}
}

func TestEnumValues(t *testing.T) {
	ix := dmIndex()
	if v, ok := ix.EnumVals["DM_SUSPENDED"]; !ok || v != 2 {
		t.Fatalf("DM_SUSPENDED = %d, %v", v, ok)
	}
}

func TestExtractCode(t *testing.T) {
	ix := dmIndex()
	for _, ident := range []string{"dm_ctl_ioctl", "dm_ioctl", "DM_VERSION", "dm_state"} {
		if _, ok := ix.ExtractCode(ident); !ok {
			t.Fatalf("ExtractCode(%q) failed", ident)
		}
	}
	if _, ok := ix.ExtractCode("no_such_thing"); ok {
		t.Fatal("ExtractCode found a ghost")
	}
}

func TestConstTable(t *testing.T) {
	ix := dmIndex()
	ct := ix.ConstTable()
	if ct["DM_IOCTL"] != 0xfd {
		t.Fatalf("DM_IOCTL = %#x", ct["DM_IOCTL"])
	}
	if _, ok := ct["DM_VERSION"]; !ok {
		t.Fatal("ioctl macro missing from const table")
	}
	if ct["DM_ACTIVE"] != 1 {
		t.Fatalf("enum value missing: %v", ct["DM_ACTIVE"])
	}
}

func TestAnalyzeBodyDMHandler(t *testing.T) {
	ix := dmIndex()
	info := AnalyzeBody(ix.Function("dm_ctl_ioctl").Body)
	if len(info.Delegations) != 1 || info.Delegations[0].Name != "ctl_ioctl" {
		t.Fatalf("delegation not detected: %+v", info.Delegations)
	}
}

func TestAnalyzeBodyAssignsAndCopies(t *testing.T) {
	ix := dmIndex()
	info := AnalyzeBody(ix.Function("ctl_ioctl").Body)
	if got := info.Assigns["cmd"]; !strings.Contains(got, "_IOC_NR") {
		t.Fatalf("assignment to cmd not captured: %q", got)
	}
	if len(info.CopyFromUser) != 1 || info.CopyFromUser[0] != "dm_ioctl" {
		t.Fatalf("copy_from_user type not captured: %+v", info.CopyFromUser)
	}
	if len(info.Comments) == 0 {
		t.Fatal("body comments not captured")
	}
}

func TestAnalyzeSwitch(t *testing.T) {
	body := `{
	switch (cmd) {
	case CMD_A:
		do_a(arg);
		break;
	case CMD_B: {
		do_b(arg, 1);
		break;
	}
	default:
		return -EINVAL;
	}
}`
	info := AnalyzeBody(body)
	if len(info.Switches) != 1 {
		t.Fatalf("want 1 switch, got %d", len(info.Switches))
	}
	sw := info.Switches[0]
	if sw.Expr != "cmd" || len(sw.Cases) != 2 {
		t.Fatalf("bad switch: %+v", sw)
	}
	if sw.Cases[0].Label != "CMD_A" || sw.Cases[1].Label != "CMD_B" {
		t.Fatalf("bad labels: %+v", sw.Cases)
	}
	if len(sw.Cases[1].Calls) != 1 || sw.Cases[1].Calls[0] != "do_b" {
		t.Fatalf("bad case calls: %+v", sw.Cases[1])
	}
	if info.FindSwitchOn("cmd") == nil || info.FindSwitchOn("other") != nil {
		t.Fatal("FindSwitchOn misbehaved")
	}
}

func TestAnalyzeSwitchOnModifiedExpr(t *testing.T) {
	body := `{
	switch (_IOC_NR(command)) {
	case 3:
		break;
	}
}`
	info := AnalyzeBody(body)
	if info.FindSwitchOn("command") == nil {
		t.Fatal("switch on _IOC_NR(command) not attributed to command")
	}
}

func TestIOCRoundTrip(t *testing.T) {
	f := func(dir8, typ, nr uint8, size16 uint16) bool {
		dir := uint64(dir8 % 4)
		size := uint64(size16 % (1 << 14))
		cmd := IOC(dir, uint64(typ), uint64(nr), size)
		return IOCDir(cmd) == dir && IOCNr(cmd) == uint64(nr) && IOCSize(cmd) == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLexCNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		LexC(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIndexNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		NewIndex(map[string]string{"f.c": string(data)})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalIntExpressions(t *testing.T) {
	ix := NewIndex(map[string]string{"x.h": `
#define A 4
#define B (1 << A)
#define C (A | B)
#define D 'M'
#define E (B + 2 - 1)
`})
	cases := map[string]uint64{"A": 4, "B": 16, "C": 20, "D": 'M', "E": 17}
	for name, want := range cases {
		got, ok := ix.ResolveMacroInt(name)
		if !ok || got != want {
			t.Errorf("%s = %d (ok=%v), want %d", name, got, ok, want)
		}
	}
	if _, ok := ix.EvalInt("UNDEFINED_THING"); ok {
		t.Error("undefined macro evaluated")
	}
}

func TestMacroRecursionBounded(t *testing.T) {
	ix := NewIndex(map[string]string{"x.h": "#define LOOP LOOP\n"})
	if _, ok := ix.ResolveMacroInt("LOOP"); ok {
		t.Fatal("self-referential macro evaluated")
	}
}
