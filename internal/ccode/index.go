package ccode

import (
	"fmt"
	"sort"
	"strings"
)

// Function is an indexed C function definition.
type Function struct {
	Name    string
	File    string
	Params  []Param
	Body    string // body text including braces
	Raw     string // full definition text (signature + body)
	Static  bool
	Comment string // doc comment immediately preceding the definition
}

// Param is one function parameter.
type Param struct {
	Type string
	Name string
}

// StructField is one member of a C struct/union definition.
type StructField struct {
	Type    string // C type text, e.g. "__u32", "struct foo *", "char"
	Name    string
	Array   string // array size expression, "" if not an array; "0" or "" text for flexible arrays
	IsArray bool
	Comment string // trailing or preceding comment on the field line
}

// Struct is an indexed struct or union definition.
type Struct struct {
	Name    string
	Union   bool
	Fields  []StructField
	Raw     string
	File    string
	Comment string
}

// Enum is an indexed enum definition.
type Enum struct {
	Name   string // may be "" for anonymous enums
	Values map[string]uint64
	Raw    string
	File   string
}

// Macro is an indexed #define.
type Macro struct {
	Name string
	// Value is the raw replacement text.
	Value string
	File  string
	// Params holds parameter names for function-like macros.
	Params []string
}

// Registration is a struct-variable initialization like
// "static const struct file_operations _ctl_fops = { .open = ..., };".
// These are the operation handlers the extractor hunts for.
type Registration struct {
	VarName    string
	StructType string // e.g. "file_operations", "miscdevice", "proto_ops"
	File       string
	// Fields maps designated-initializer field names to their raw
	// value text, e.g. "unlocked_ioctl" -> "dm_ctl_ioctl",
	// "nodename" -> `DM_DIR "/" DM_CONTROL_NODE`.
	Fields map[string]string
	// Order preserves field declaration order for deterministic output.
	Order []string
	Raw   string
}

// Index is the queryable database over a parsed source tree. It is
// the Go equivalent of the paper's "kernel code extractor": handler
// discovery plus definition extraction by identifier.
type Index struct {
	Functions map[string]*Function
	Structs   map[string]*Struct
	Enums     []*Enum
	EnumVals  map[string]uint64
	Macros    map[string]*Macro
	Regs      []*Registration
	files     map[string]string
}

// NewIndex parses every file in files (name → source text) and builds
// the definition index.
func NewIndex(files map[string]string) *Index {
	ix := &Index{
		Functions: map[string]*Function{},
		Structs:   map[string]*Struct{},
		EnumVals:  map[string]uint64{},
		Macros:    map[string]*Macro{},
		files:     files,
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ix.parseFile(name, files[name])
	}
	return ix
}

// Files returns the raw source map the index was built from.
func (ix *Index) Files() map[string]string { return ix.files }

// Function returns the indexed function with the given name, or nil.
func (ix *Index) Function(name string) *Function { return ix.Functions[name] }

// StructDef returns the struct/union definition with the given name,
// or nil.
func (ix *Index) StructDef(name string) *Struct { return ix.Structs[name] }

// MacroDef returns the macro with the given name, or nil.
func (ix *Index) MacroDef(name string) *Macro { return ix.Macros[name] }

// Registrations returns all registrations of the given struct type
// (e.g. "file_operations"), in deterministic order.
func (ix *Index) Registrations(structType string) []*Registration {
	var out []*Registration
	for _, r := range ix.Regs {
		if r.StructType == structType {
			out = append(out, r)
		}
	}
	return out
}

// RegistrationByVar finds a registration by its variable name
// (optionally prefixed with '&').
func (ix *Index) RegistrationByVar(name string) *Registration {
	name = strings.TrimPrefix(strings.TrimSpace(name), "&")
	for _, r := range ix.Regs {
		if r.VarName == name {
			return r
		}
	}
	return nil
}

// ExtractType returns the raw source of a struct/union/enum
// definition only, for type-kind lookups where a function shares the
// name (dm_ioctl is both a struct and, in some trees, a function).
func (ix *Index) ExtractType(ident string) (string, bool) {
	if s := ix.Structs[ident]; s != nil {
		return s.Raw, true
	}
	for _, e := range ix.Enums {
		if e.Name == ident {
			return e.Raw, true
		}
	}
	return "", false
}

// ExtractCode returns the raw source text for the named identifier:
// function, struct, enum, or macro — the LLM's on-demand definition
// fetch (Algorithm 1, ExtractCode). The bool reports whether the
// identifier was found.
func (ix *Index) ExtractCode(ident string) (string, bool) {
	if f := ix.Functions[ident]; f != nil {
		return f.Raw, true
	}
	if s := ix.Structs[ident]; s != nil {
		return s.Raw, true
	}
	if m := ix.Macros[ident]; m != nil {
		return "#define " + m.Name + " " + m.Value, true
	}
	for _, e := range ix.Enums {
		if e.Name == ident {
			return e.Raw, true
		}
		if _, ok := e.Values[ident]; ok {
			return e.Raw, true
		}
	}
	return "", false
}

// parseFile scans one source file for definitions.
func (ix *Index) parseFile(name, src string) {
	toks := LexC(src)
	depth := 0
	var lastComment string
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		switch t.Kind {
		case CDirective:
			ix.parseDirective(name, t.Text)
			continue
		case CComment:
			if depth == 0 {
				lastComment = cleanComment(t.Text)
			}
			continue
		case CPunct:
			switch t.Text {
			case "{":
				depth++
			case "}":
				depth--
			}
			continue
		}
		if depth != 0 || t.Kind != CIdent {
			continue
		}
		switch t.Text {
		case "struct", "union":
			if j := ix.tryParseStructDef(name, src, toks, i, t.Text == "union", lastComment); j > i {
				i = j
				lastComment = ""
				continue
			}
		case "enum":
			if j := ix.tryParseEnumDef(name, src, toks, i); j > i {
				i = j
				lastComment = ""
				continue
			}
		}
		if j := ix.tryParseRegistration(name, src, toks, i); j > i {
			i = j
			lastComment = ""
			continue
		}
		if j := ix.tryParseFunction(name, src, toks, i, lastComment); j > i {
			i = j
			lastComment = ""
			continue
		}
	}
}

func cleanComment(text string) string {
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	text = strings.TrimPrefix(text, "//")
	var lines []string
	for _, ln := range strings.Split(text, "\n") {
		ln = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(ln), "*"))
		if ln != "" {
			lines = append(lines, ln)
		}
	}
	return strings.Join(lines, " ")
}

// parseDirective handles #define lines.
func (ix *Index) parseDirective(file, text string) {
	text = strings.ReplaceAll(text, "\\\n", " ")
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), "#define")
	if !ok {
		return
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return
	}
	// Name runs to first space or '('.
	end := 0
	for end < len(rest) && isCIdentPart(rest[end]) {
		end++
	}
	name := rest[:end]
	if name == "" {
		return
	}
	m := &Macro{Name: name, File: file}
	rest = rest[end:]
	if strings.HasPrefix(rest, "(") {
		// Function-like macro: capture params.
		close := strings.Index(rest, ")")
		if close < 0 {
			return
		}
		for _, p := range strings.Split(rest[1:close], ",") {
			if p = strings.TrimSpace(p); p != "" {
				m.Params = append(m.Params, p)
			}
		}
		rest = rest[close+1:]
	}
	m.Value = strings.TrimSpace(rest)
	ix.Macros[name] = m
}

// matchParen returns the token index just past the matching closing
// delimiter, assuming toks[i] is the opening one.
func matchParen(toks []CToken, i int, open, close string) int {
	depth := 0
	for ; i < len(toks); i++ {
		if toks[i].Kind != CPunct {
			continue
		}
		switch toks[i].Text {
		case open:
			depth++
		case close:
			depth--
			if depth == 0 {
				return i + 1
			}
		}
	}
	return i
}

// tryParseStructDef handles "struct name { ... };" at top level.
// Returns the index of the last consumed token, or i if no match.
func (ix *Index) tryParseStructDef(file, src string, toks []CToken, i int, union bool, comment string) int {
	// toks[i] == "struct"/"union"; need IDENT '{'.
	j := i + 1
	if j >= len(toks) || toks[j].Kind != CIdent {
		return i
	}
	name := toks[j].Text
	j++
	if j >= len(toks) || toks[j].Text != "{" {
		return i
	}
	end := matchParen(toks, j, "{", "}")
	if end >= len(toks) || end <= j {
		return i
	}
	// Must be a definition (followed by ';'), not a variable decl
	// with initializer.
	if toks[end].Text != ";" {
		return i
	}
	raw := src[toks[i].Off : toks[end].Off+1]
	st := &Struct{Name: name, Union: union, Raw: raw, File: file, Comment: comment}
	st.Fields = parseStructFields(toks[j+1 : end-1])
	ix.Structs[name] = st
	return end
}

// parseStructFields splits the token run inside braces into
// ';'-terminated declarations.
func parseStructFields(toks []CToken) []StructField {
	var fields []StructField
	var cur []CToken
	var pending string // comment preceding the next field
	depth := 0
	flush := func(trailing string) {
		if len(cur) == 0 {
			return
		}
		if f, ok := parseOneField(cur); ok {
			if f.Comment == "" {
				f.Comment = trailing
			}
			if f.Comment == "" {
				f.Comment = pending
			}
			fields = append(fields, f)
		}
		cur = nil
		pending = ""
	}
	for k := 0; k < len(toks); k++ {
		t := toks[k]
		if t.Kind == CComment {
			c := cleanComment(t.Text)
			if len(cur) == 0 {
				pending = c
			} else if len(fields) > 0 && len(cur) == 0 {
				fields[len(fields)-1].Comment = c
			} else {
				// Comment after tokens but before ';' — attach on flush.
				defer func() {}()
				cur = append(cur, t)
			}
			continue
		}
		if t.Kind == CPunct {
			switch t.Text {
			case "{":
				depth++
			case "}":
				depth--
			case ";":
				if depth == 0 {
					// Peek for a trailing comment on the same line.
					trailing := ""
					if k+1 < len(toks) && toks[k+1].Kind == CComment && toks[k+1].Line == t.Line {
						trailing = cleanComment(toks[k+1].Text)
						k++
					}
					flush(trailing)
					continue
				}
			}
		}
		cur = append(cur, t)
	}
	flush("")
	return fields
}

// parseOneField interprets one declaration token run, e.g.
// "__u32 version [ 3 ]" or "struct dm_target_spec * spec" or
// "char name [ DM_NAME_LEN ]".
func parseOneField(toks []CToken) (StructField, bool) {
	// Strip embedded comments.
	clean := toks[:0:0]
	comment := ""
	for _, t := range toks {
		if t.Kind == CComment {
			comment = cleanComment(t.Text)
			continue
		}
		clean = append(clean, t)
	}
	toks = clean
	if len(toks) < 2 {
		return StructField{}, false
	}
	f := StructField{Comment: comment}
	// Array suffix?
	end := len(toks)
	if toks[end-1].Text == "]" {
		// Find matching '['.
		depth := 0
		for k := end - 1; k >= 0; k-- {
			if toks[k].Text == "]" {
				depth++
			}
			if toks[k].Text == "[" {
				depth--
				if depth == 0 {
					var parts []string
					for _, t := range toks[k+1 : end-1] {
						parts = append(parts, t.Text)
					}
					f.IsArray = true
					f.Array = strings.Join(parts, " ")
					end = k
					break
				}
			}
		}
	}
	if end < 2 || toks[end-1].Kind != CIdent {
		return StructField{}, false
	}
	f.Name = toks[end-1].Text
	var typeParts []string
	for _, t := range toks[:end-1] {
		typeParts = append(typeParts, t.Text)
	}
	f.Type = strings.Join(typeParts, " ")
	if f.Type == "" {
		return StructField{}, false
	}
	return f, true
}

// tryParseEnumDef handles "enum [name] { A = 1, B, };".
func (ix *Index) tryParseEnumDef(file, src string, toks []CToken, i int) int {
	j := i + 1
	name := ""
	if j < len(toks) && toks[j].Kind == CIdent {
		name = toks[j].Text
		j++
	}
	if j >= len(toks) || toks[j].Text != "{" {
		return i
	}
	end := matchParen(toks, j, "{", "}")
	if end >= len(toks) || toks[end].Text != ";" {
		return i
	}
	e := &Enum{Name: name, Values: map[string]uint64{}, File: file,
		Raw: src[toks[i].Off : toks[end].Off+1]}
	var next uint64
	inner := toks[j+1 : end-1]
	for k := 0; k < len(inner); k++ {
		if inner[k].Kind != CIdent {
			continue
		}
		vname := inner[k].Text
		val := next
		if k+2 < len(inner) && inner[k+1].Text == "=" {
			if v, ok := parseCInt(inner[k+2].Text); ok {
				val = v
				k += 2
			}
		}
		e.Values[vname] = val
		ix.EnumVals[vname] = val
		next = val + 1
		// Skip to next ','.
		for k < len(inner) && inner[k].Text != "," {
			k++
		}
	}
	ix.Enums = append(ix.Enums, e)
	return end
}

func parseCInt(text string) (uint64, bool) {
	text = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(text, "UL"), "U"), "u")
	var v uint64
	var err error
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		_, err = fmt.Sscanf(text, "%v", &v)
	} else {
		_, err = fmt.Sscanf(text, "%d", &v)
	}
	return v, err == nil
}

// tryParseRegistration handles
// "static const struct TYPE NAME = { .field = value, ... };".
func (ix *Index) tryParseRegistration(file, src string, toks []CToken, i int) int {
	// Accept a run of qualifiers then "struct TYPE NAME = {".
	j := i
	for j < len(toks) && toks[j].Kind == CIdent &&
		(toks[j].Text == "static" || toks[j].Text == "const" || toks[j].Text == "__read_mostly") {
		j++
	}
	if j >= len(toks) || toks[j].Text != "struct" {
		return i
	}
	j++
	if j+2 >= len(toks) || toks[j].Kind != CIdent || toks[j+1].Kind != CIdent || toks[j+2].Text != "=" {
		return i
	}
	structType, varName := toks[j].Text, toks[j+1].Text
	j += 3
	if j >= len(toks) || toks[j].Text != "{" {
		return i
	}
	end := matchParen(toks, j, "{", "}")
	if end > len(toks) {
		return i
	}
	reg := &Registration{
		VarName: varName, StructType: structType, File: file,
		Fields: map[string]string{},
	}
	rawEnd := toks[end-1].Off + 1
	if end < len(toks) && toks[end].Text == ";" {
		rawEnd = toks[end].Off + 1
	}
	reg.Raw = src[toks[i].Off:rawEnd]
	// Walk designated initializers: '.' IDENT '=' value-tokens (',' | '}').
	inner := toks[j+1 : end-1]
	for k := 0; k < len(inner); k++ {
		if inner[k].Text != "." || k+2 >= len(inner) || inner[k+1].Kind != CIdent || inner[k+2].Text != "=" {
			continue
		}
		fname := inner[k+1].Text
		k += 3
		var parts []string
		depth := 0
		for ; k < len(inner); k++ {
			t := inner[k]
			if t.Kind == CPunct {
				switch t.Text {
				case "(", "{", "[":
					depth++
				case ")", "}", "]":
					depth--
				case ",":
					if depth == 0 {
						goto done
					}
				}
			}
			if t.Kind == CComment {
				continue
			}
			parts = append(parts, t.Text)
		}
	done:
		reg.Fields[fname] = strings.Join(parts, " ")
		reg.Order = append(reg.Order, fname)
	}
	if len(reg.Fields) > 0 {
		ix.Regs = append(ix.Regs, reg)
	}
	return end
}

// tryParseFunction handles "[static] rettype name(params) { body }".
func (ix *Index) tryParseFunction(file, src string, toks []CToken, i int, comment string) int {
	// Scan forward from i over type tokens until IDENT '(' is found;
	// allow at most 6 tokens of return type to bound false positives.
	static := false
	j := i
	limit := i + 7
	for j < len(toks) && j < limit {
		t := toks[j]
		if t.Kind == CPunct && t.Text == "*" {
			j++
			continue
		}
		if t.Kind != CIdent {
			return i
		}
		if t.Text == "static" {
			static = true
		}
		if j+1 < len(toks) && toks[j+1].Text == "(" && j > i {
			break
		}
		j++
	}
	if j >= len(toks) || j >= limit || j+1 >= len(toks) || toks[j+1].Text != "(" {
		return i
	}
	name := toks[j].Text
	if name == "if" || name == "for" || name == "while" || name == "switch" || name == "return" || name == "sizeof" {
		return i
	}
	closeParen := matchParen(toks, j+1, "(", ")")
	if closeParen >= len(toks) || toks[closeParen].Text != "{" {
		return i
	}
	endBody := matchParen(toks, closeParen, "{", "}")
	if endBody > len(toks) {
		return i
	}
	fn := &Function{
		Name: name, File: file, Static: static, Comment: comment,
		Body: src[toks[closeParen].Off : toks[endBody-1].Off+1],
		Raw:  src[toks[i].Off : toks[endBody-1].Off+1],
	}
	fn.Params = parseParams(toks[j+2 : closeParen-1])
	ix.Functions[name] = fn
	return endBody - 1
}

// parseParams splits a parameter list token run on top-level commas.
func parseParams(toks []CToken) []Param {
	var params []Param
	var cur []CToken
	depth := 0
	flush := func() {
		if len(cur) == 0 {
			return
		}
		p := Param{}
		end := len(cur)
		if cur[end-1].Kind == CIdent {
			p.Name = cur[end-1].Text
			end--
		}
		var parts []string
		for _, t := range cur[:end] {
			parts = append(parts, t.Text)
		}
		p.Type = strings.Join(parts, " ")
		if p.Type == "" && p.Name != "" {
			p.Type, p.Name = p.Name, "" // e.g. "void"
		}
		if p.Type != "" {
			params = append(params, p)
		}
		cur = nil
	}
	for _, t := range toks {
		if t.Kind == CComment {
			continue
		}
		if t.Kind == CPunct {
			switch t.Text {
			case "(", "[":
				depth++
			case ")", "]":
				depth--
			case ",":
				if depth == 0 {
					flush()
					continue
				}
			}
		}
		cur = append(cur, t)
	}
	flush()
	return params
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
