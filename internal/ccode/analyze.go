package ccode

import "strings"

// BodyInfo is the structural summary of a function body that both the
// simulated analysis LLM and the SyzDescribe baseline consume:
// switch dispatch tables, call sites, simple assignments, and
// delegations ("return f(...)").
type BodyInfo struct {
	// Switches lists switch statements with the switched-on
	// expression and the case labels.
	Switches []SwitchInfo
	// Calls lists every function call site in source order.
	Calls []CallSite
	// Assigns maps variable names to the text of their last simple
	// assignment right-hand side (e.g. "cmd" -> "_IOC_NR ( command )").
	Assigns map[string]string
	// Delegations lists functions invoked as "return f(...)" — the
	// whole-body delegation pattern of dm_ctl_ioctl in the paper.
	Delegations []CallSite
	// CopyFromUser lists the destination struct types of
	// copy_from_user-style calls, in order.
	CopyFromUser []string
	// Comments holds all comment text found in the body.
	Comments []string
}

// SwitchInfo describes one switch statement.
type SwitchInfo struct {
	// Expr is the switched-on expression text, e.g. "cmd" or
	// "_IOC_NR ( command )".
	Expr string
	// Cases lists the case label expressions in order (default is
	// omitted).
	Cases []SwitchCase
}

// SwitchCase is one case label and a summary of its body.
type SwitchCase struct {
	// Label is the case expression text, e.g. "DM_VERSION_CMD".
	Label string
	// Calls lists functions invoked inside this case before the next
	// case/default/closing brace.
	Calls []string
	// Body is the raw text of the case body.
	Body string
}

// CallSite is one function invocation.
type CallSite struct {
	Name string
	// Args holds the raw text of each argument.
	Args []string
	// Raw is the full invocation text.
	Raw string
}

// controlKeywords are identifiers that look like calls but are not.
var controlKeywords = map[string]bool{
	"if": true, "for": true, "while": true, "switch": true,
	"return": true, "sizeof": true, "case": true, "do": true,
}

// AnalyzeBody parses a function body (text including outer braces)
// into a BodyInfo.
func AnalyzeBody(body string) *BodyInfo {
	toks := LexC(body)
	info := &BodyInfo{Assigns: map[string]string{}}
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		switch t.Kind {
		case CComment:
			if c := cleanComment(t.Text); c != "" {
				info.Comments = append(info.Comments, c)
			}
		case CIdent:
			switch {
			case t.Text == "switch":
				if sw, next := parseSwitch(toks, i); sw != nil {
					info.Switches = append(info.Switches, *sw)
					_ = next // continue scanning inside for nested calls
				}
			case t.Text == "return":
				if i+1 < len(toks) && toks[i+1].Kind == CIdent && i+2 < len(toks) && toks[i+2].Text == "(" {
					if cs := parseCall(toks, i+1); cs != nil {
						info.Delegations = append(info.Delegations, *cs)
					}
				}
			case !controlKeywords[t.Text] && i+1 < len(toks) && toks[i+1].Text == "(":
				if cs := parseCall(toks, i); cs != nil {
					info.Calls = append(info.Calls, *cs)
					if isCopyFromUser(cs.Name) && len(cs.Args) >= 2 {
						if typ := destStructType(cs.Args); typ != "" {
							info.CopyFromUser = append(info.CopyFromUser, typ)
						}
					}
				}
			case i+1 < len(toks) && toks[i+1].Kind == CPunct && toks[i+1].Text == "=":
				// Simple assignment "ident = rhs ;" (skip ==).
				if i+2 < len(toks) && toks[i+2].Text != "=" {
					rhs := collectUntil(toks, i+2, ";")
					if rhs != "" {
						info.Assigns[t.Text] = rhs
					}
				}
			}
		}
	}
	return info
}

func isCopyFromUser(name string) bool {
	switch name {
	case "copy_from_user", "copy_to_user", "get_user", "put_user", "memdup_user":
		return true
	}
	return false
}

// destStructType extracts "struct X" from a cast or sizeof inside
// copy_from_user-style argument text.
func destStructType(args []string) string {
	for _, a := range args {
		if idx := strings.Index(a, "struct "); idx >= 0 {
			rest := a[idx+len("struct "):]
			end := 0
			for end < len(rest) && (isCIdentPart(rest[end]) || rest[end] == ' ') {
				if rest[end] == ' ' && end > 0 {
					break
				}
				end++
			}
			name := strings.TrimSpace(rest[:end])
			if name != "" {
				return name
			}
		}
	}
	return ""
}

func collectUntil(toks []CToken, i int, stop string) string {
	var parts []string
	for ; i < len(toks); i++ {
		if toks[i].Kind == CPunct && toks[i].Text == stop {
			break
		}
		if toks[i].Kind == CComment {
			continue
		}
		parts = append(parts, toks[i].Text)
	}
	return strings.Join(parts, " ")
}

// parseCall parses a call expression at toks[i] (an identifier
// followed by '(') and returns the call site.
func parseCall(toks []CToken, i int) *CallSite {
	name := toks[i].Text
	if controlKeywords[name] {
		return nil
	}
	end := matchParen(toks, i+1, "(", ")")
	if end <= i+1 || end > len(toks) {
		return nil
	}
	cs := &CallSite{Name: name}
	var parts []string
	depth := 0
	for _, t := range toks[i+2 : end-1] {
		if t.Kind == CComment {
			continue
		}
		if t.Kind == CPunct {
			switch t.Text {
			case "(", "[", "{":
				depth++
			case ")", "]", "}":
				depth--
			case ",":
				if depth == 0 {
					cs.Args = append(cs.Args, strings.Join(parts, " "))
					parts = nil
					continue
				}
			}
		}
		parts = append(parts, t.Text)
	}
	if len(parts) > 0 {
		cs.Args = append(cs.Args, strings.Join(parts, " "))
	}
	var raw []string
	for _, t := range toks[i:end] {
		raw = append(raw, t.Text)
	}
	cs.Raw = strings.Join(raw, " ")
	return cs
}

// parseSwitch parses "switch (expr) { case L: ... }" at toks[i].
func parseSwitch(toks []CToken, i int) (*SwitchInfo, int) {
	if i+1 >= len(toks) || toks[i+1].Text != "(" {
		return nil, i
	}
	exprEnd := matchParen(toks, i+1, "(", ")")
	if exprEnd >= len(toks) || toks[exprEnd].Text != "{" {
		return nil, i
	}
	var exprParts []string
	for _, t := range toks[i+2 : exprEnd-1] {
		if t.Kind != CComment {
			exprParts = append(exprParts, t.Text)
		}
	}
	sw := &SwitchInfo{Expr: strings.Join(exprParts, " ")}
	bodyEnd := matchParen(toks, exprEnd, "{", "}")
	inner := toks[exprEnd+1 : min(bodyEnd-1, len(toks))]
	depth := 0
	for k := 0; k < len(inner); k++ {
		t := inner[k]
		if t.Kind == CPunct {
			switch t.Text {
			case "{":
				depth++
			case "}":
				depth--
			}
			continue
		}
		if depth != 0 || t.Kind != CIdent || t.Text != "case" {
			continue
		}
		// Label runs to ':'.
		var label []string
		k++
		for k < len(inner) && !(inner[k].Kind == CPunct && inner[k].Text == ":") {
			if inner[k].Kind != CComment {
				label = append(label, inner[k].Text)
			}
			k++
		}
		// Body runs to next top-level case/default or end.
		start := k + 1
		j := start
		d := 0
		for j < len(inner) {
			tt := inner[j]
			if tt.Kind == CPunct {
				if tt.Text == "{" {
					d++
				}
				if tt.Text == "}" {
					d--
				}
			}
			if d == 0 && tt.Kind == CIdent && (tt.Text == "case" || tt.Text == "default") {
				break
			}
			j++
		}
		c := SwitchCase{Label: strings.Join(label, " ")}
		var bodyParts []string
		for m := start; m < j; m++ {
			if inner[m].Kind == CComment {
				continue
			}
			bodyParts = append(bodyParts, inner[m].Text)
			if inner[m].Kind == CIdent && !controlKeywords[inner[m].Text] &&
				m+1 < j && inner[m+1].Text == "(" {
				c.Calls = append(c.Calls, inner[m].Text)
			}
		}
		c.Body = strings.Join(bodyParts, " ")
		sw.Cases = append(sw.Cases, c)
		k = j - 1
	}
	return sw, bodyEnd
}

// FindSwitchOn returns the first switch in the body whose switched-on
// expression mentions the given variable name.
func (b *BodyInfo) FindSwitchOn(varName string) *SwitchInfo {
	for i := range b.Switches {
		for _, tok := range LexC(b.Switches[i].Expr) {
			if tok.Kind == CIdent && tok.Text == varName {
				return &b.Switches[i]
			}
		}
	}
	return nil
}
