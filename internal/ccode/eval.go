package ccode

import (
	"fmt"
	"strings"
)

// Linux _IOC encoding constants (include/uapi/asm-generic/ioctl.h).
const (
	iocNrBits   = 8
	iocTypeBits = 8
	iocSizeBits = 14

	iocNrShift   = 0
	iocTypeShift = iocNrShift + iocNrBits
	iocSizeShift = iocTypeShift + iocTypeBits
	iocDirShift  = iocSizeShift + iocSizeBits

	iocNone  = 0
	iocWrite = 1
	iocRead  = 2
)

// IOC computes the Linux _IOC(dir,type,nr,size) command encoding.
func IOC(dir, typ, nr, size uint64) uint64 {
	return dir<<iocDirShift | typ<<iocTypeShift | nr<<iocNrShift | size<<iocSizeShift
}

// IOCNr extracts the nr field of an encoded ioctl command, i.e. the
// kernel's _IOC_NR macro — the identifier modification the paper's
// device-mapper example hinges on.
func IOCNr(cmd uint64) uint64 { return (cmd >> iocNrShift) & (1<<iocNrBits - 1) }

// IOCSize extracts the size field of an encoded ioctl command.
func IOCSize(cmd uint64) uint64 { return (cmd >> iocSizeShift) & (1<<iocSizeBits - 1) }

// IOCDir extracts the dir field of an encoded ioctl command.
func IOCDir(cmd uint64) uint64 { return (cmd >> iocDirShift) & 3 }

// SizeofType returns the byte size of a C scalar type name, or 0 if
// unknown.
func SizeofType(typ string) int {
	typ = strings.TrimSpace(typ)
	if strings.Contains(typ, "*") {
		return 8
	}
	switch strings.TrimPrefix(strings.TrimPrefix(typ, "unsigned "), "signed ") {
	case "char", "__u8", "__s8", "u8", "s8", "uint8_t", "int8_t", "bool":
		return 1
	case "short", "__u16", "__s16", "u16", "s16", "uint16_t", "int16_t":
		return 2
	case "int", "__u32", "__s32", "u32", "s32", "uint32_t", "int32_t", "unsigned", "__le32", "__be32":
		return 4
	case "long", "long long", "__u64", "__s64", "u64", "s64", "uint64_t",
		"int64_t", "size_t", "ssize_t", "loff_t", "__le64", "__be64":
		return 8
	}
	return 0
}

// Sizeof computes the size of "struct X"/"union X" or a scalar type,
// applying natural alignment. Returns 0 for unknown types (including
// flexible arrays, which contribute no size).
func (ix *Index) Sizeof(typ string) int {
	return ix.sizeofSeen(typ, map[string]bool{})
}

func (ix *Index) sizeofSeen(typ string, seen map[string]bool) int {
	typ = strings.TrimSpace(typ)
	if rest, ok := strings.CutPrefix(typ, "struct "); ok {
		return ix.sizeofComposite(strings.TrimSpace(rest), false, seen)
	}
	if rest, ok := strings.CutPrefix(typ, "union "); ok {
		return ix.sizeofComposite(strings.TrimSpace(rest), true, seen)
	}
	if s := ix.Structs[typ]; s != nil {
		return ix.sizeofComposite(typ, s.Union, seen)
	}
	return SizeofType(typ)
}

func (ix *Index) sizeofComposite(name string, union bool, seen map[string]bool) int {
	st := ix.Structs[name]
	if st == nil || seen[name] {
		return 0
	}
	seen[name] = true
	defer delete(seen, name)
	size, maxAlign, maxField := 0, 1, 0
	for _, f := range st.Fields {
		fs := ix.fieldSize(f, seen)
		al := ix.fieldAlign(f, seen)
		flexible := f.IsArray && strings.TrimSpace(f.Array) == ""
		if fs == 0 && !flexible {
			continue // unknown type
		}
		// Flexible array members contribute no size but do
		// contribute alignment and any padding before them (C11
		// semantics: sizeof(struct {int a; long long b[];}) == 8).
		if al > maxAlign {
			maxAlign = al
		}
		if union || st.Union {
			if fs > maxField {
				maxField = fs
			}
			continue
		}
		if rem := size % al; rem != 0 {
			size += al - rem
		}
		size += fs
	}
	if union || st.Union {
		size = maxField
	}
	if rem := size % maxAlign; rem != 0 {
		size += maxAlign - rem
	}
	return size
}

func (ix *Index) fieldSize(f StructField, seen map[string]bool) int {
	base := ix.sizeofSeen(f.Type, seen)
	if !f.IsArray {
		return base
	}
	if strings.TrimSpace(f.Array) == "" {
		return 0 // flexible array member
	}
	n, ok := ix.EvalInt(f.Array)
	if !ok {
		return 0
	}
	return base * int(n)
}

func (ix *Index) fieldAlign(f StructField, seen map[string]bool) int {
	a := ix.sizeofSeen(f.Type, seen)
	if st, ok := strings.CutPrefix(strings.TrimSpace(f.Type), "struct "); ok {
		name := strings.TrimSpace(st)
		if s := ix.Structs[name]; s != nil && !seen[name] {
			seen[name] = true
			a = 1
			for _, sf := range s.Fields {
				if fa := ix.fieldAlign(sf, seen); fa > a {
					a = fa
				}
			}
			delete(seen, name)
		}
	}
	if a == 0 || a > 8 {
		a = 8
	}
	return a
}

// EvalString evaluates a macro/expression to a string value, handling
// string literal concatenation like `DM_DIR "/" DM_CONTROL_NODE`.
func (ix *Index) EvalString(expr string) (string, bool) {
	return ix.evalStringDepth(expr, 0)
}

func (ix *Index) evalStringDepth(expr string, rdepth int) (string, bool) {
	if rdepth > maxMacroDepth {
		return "", false
	}
	toks := LexC(expr)
	var b strings.Builder
	any := false
	for _, t := range toks {
		switch t.Kind {
		case CString:
			b.WriteString(StringValue(t.Text))
			any = true
		case CIdent:
			m := ix.Macros[t.Text]
			if m == nil {
				return "", false
			}
			s, ok := ix.evalStringDepth(m.Value, rdepth+1)
			if !ok {
				return "", false
			}
			b.WriteString(s)
			any = true
		case CComment:
		default:
			return "", false
		}
	}
	return b.String(), any
}

// EvalInt evaluates an integer C constant expression: literals, macro
// names, enum values, _IO/_IOR/_IOW/_IOWR invocations, sizeof(...),
// parentheses, |, +, -, << and char constants.
func (ix *Index) EvalInt(expr string) (uint64, bool) {
	return ix.evalIntDepth(expr, 0)
}

const maxMacroDepth = 16

func (ix *Index) evalIntDepth(expr string, rdepth int) (uint64, bool) {
	if rdepth > maxMacroDepth {
		return 0, false
	}
	e := &evaluator{ix: ix, toks: dropComments(LexC(expr)), rdepth: rdepth}
	v, ok := e.expr(0)
	if !ok || e.i != len(e.toks) {
		return 0, false
	}
	return v, true
}

func dropComments(toks []CToken) []CToken {
	out := toks[:0:0]
	for _, t := range toks {
		if t.Kind != CComment {
			out = append(out, t)
		}
	}
	return out
}

type evaluator struct {
	ix     *Index
	toks   []CToken
	i      int
	depth  int
	rdepth int // macro-expansion recursion depth
}

const maxEvalDepth = 32

func (e *evaluator) peek() CToken {
	if e.i >= len(e.toks) {
		return CToken{Kind: CEOF}
	}
	return e.toks[e.i]
}

// expr parses binary expressions with a tiny precedence ladder:
// 0: '|'  1: '+' '-'  2: '<<' '>>'  3: primary.
func (e *evaluator) expr(prec int) (uint64, bool) {
	if prec >= 3 {
		return e.primary()
	}
	left, ok := e.expr(prec + 1)
	if !ok {
		return 0, false
	}
	for {
		t := e.peek()
		if t.Kind != CPunct {
			return left, true
		}
		var apply func(a, b uint64) uint64
		switch {
		case prec == 0 && t.Text == "|":
			apply = func(a, b uint64) uint64 { return a | b }
		case prec == 1 && t.Text == "+":
			apply = func(a, b uint64) uint64 { return a + b }
		case prec == 1 && t.Text == "-":
			apply = func(a, b uint64) uint64 { return a - b }
		case prec == 2 && t.Text == "<<":
			apply = func(a, b uint64) uint64 { return a << b }
		case prec == 2 && t.Text == ">>":
			apply = func(a, b uint64) uint64 { return a >> b }
		default:
			return left, true
		}
		e.i++
		right, ok := e.expr(prec + 1)
		if !ok {
			return 0, false
		}
		left = apply(left, right)
	}
}

func (e *evaluator) primary() (uint64, bool) {
	if e.depth++; e.depth > maxEvalDepth {
		return 0, false
	}
	defer func() { e.depth-- }()
	t := e.peek()
	switch t.Kind {
	case CNumber:
		e.i++
		return parseCInt(t.Text)
	case CChar:
		e.i++
		s := StringValue(strings.Trim(t.Text, "'"))
		if len(s) == 0 {
			return 0, false
		}
		return uint64(s[0]), true
	case CPunct:
		if t.Text == "(" {
			e.i++
			v, ok := e.expr(0)
			if !ok || e.peek().Text != ")" {
				return 0, false
			}
			e.i++
			return v, true
		}
		return 0, false
	case CIdent:
		return e.identPrimary(t)
	}
	return 0, false
}

func (e *evaluator) identPrimary(t CToken) (uint64, bool) {
	e.i++
	switch t.Text {
	case "sizeof":
		return e.sizeofCall()
	case "_IO", "_IOR", "_IOW", "_IOWR", "_IOC":
		return e.iocCall(t.Text)
	case "struct", "union":
		// e.g. appears inside sizeof handled above; bare is invalid.
		return 0, false
	}
	// Named constant: macro or enum value.
	if v, ok := e.ix.EnumVals[t.Text]; ok {
		return v, true
	}
	if m := e.ix.Macros[t.Text]; m != nil && len(m.Params) == 0 {
		return e.ix.evalIntDepth(m.Value, e.rdepth+1)
	}
	return 0, false
}

func (e *evaluator) sizeofCall() (uint64, bool) {
	if e.peek().Text != "(" {
		return 0, false
	}
	e.i++
	var parts []string
	for e.peek().Text != ")" && e.peek().Kind != CEOF {
		parts = append(parts, e.toks[e.i].Text)
		e.i++
	}
	if e.peek().Text != ")" {
		return 0, false
	}
	e.i++
	size := e.ix.Sizeof(strings.Join(parts, " "))
	if size == 0 {
		return 0, false
	}
	return uint64(size), true
}

// iocCall evaluates _IO/_IOR/_IOW/_IOWR(type, nr[, arg-type]).
func (e *evaluator) iocCall(name string) (uint64, bool) {
	if e.peek().Text != "(" {
		return 0, false
	}
	args, ok := e.splitArgs()
	if !ok {
		return 0, false
	}
	var dir uint64
	wantArgs := 2
	switch name {
	case "_IO":
		dir = iocNone
	case "_IOR":
		dir, wantArgs = iocRead, 3
	case "_IOW":
		dir, wantArgs = iocWrite, 3
	case "_IOWR":
		dir, wantArgs = iocRead|iocWrite, 3
	case "_IOC":
		wantArgs = 4
	}
	if len(args) != wantArgs {
		return 0, false
	}
	if name == "_IOC" {
		d, ok1 := e.ix.evalIntDepth(args[0], e.rdepth+1)
		typ, ok2 := e.ix.evalIntDepth(args[1], e.rdepth+1)
		nr, ok3 := e.ix.evalIntDepth(args[2], e.rdepth+1)
		size, ok4 := e.ix.evalIntDepth(args[3], e.rdepth+1)
		if !(ok1 && ok2 && ok3 && ok4) {
			return 0, false
		}
		return IOC(d, typ, nr, size), true
	}
	typ, ok := e.ix.evalIntDepth(args[0], e.rdepth+1)
	if !ok {
		return 0, false
	}
	nr, ok := e.ix.evalIntDepth(args[1], e.rdepth+1)
	if !ok {
		return 0, false
	}
	var size uint64
	if wantArgs == 3 {
		sz := e.ix.Sizeof(args[2])
		if sz == 0 {
			return 0, false
		}
		size = uint64(sz)
	}
	return IOC(dir, typ, nr, size), true
}

// splitArgs consumes "( a, b, c )" starting at '(' and returns the
// raw argument texts.
func (e *evaluator) splitArgs() ([]string, bool) {
	if e.peek().Text != "(" {
		return nil, false
	}
	e.i++
	var args []string
	var parts []string
	depth := 0
	for {
		t := e.peek()
		if t.Kind == CEOF {
			return nil, false
		}
		if t.Kind == CPunct {
			switch t.Text {
			case "(":
				depth++
			case ")":
				if depth == 0 {
					e.i++
					if len(parts) > 0 {
						args = append(args, strings.Join(parts, " "))
					}
					return args, true
				}
				depth--
			case ",":
				if depth == 0 {
					args = append(args, strings.Join(parts, " "))
					parts = nil
					e.i++
					continue
				}
			}
		}
		parts = append(parts, t.Text)
		e.i++
	}
}

// ResolveMacroInt evaluates the named macro to an integer.
func (ix *Index) ResolveMacroInt(name string) (uint64, bool) {
	if v, ok := ix.EnumVals[name]; ok {
		return v, true
	}
	m := ix.Macros[name]
	if m == nil {
		return 0, false
	}
	return ix.EvalInt(m.Value)
}

// ConstTable builds a name→value map of every macro and enum value
// that evaluates to an integer — the equivalent of running
// syz-extract over the kernel tree to obtain the constants file
// consumed by syzlang validation.
func (ix *Index) ConstTable() map[string]uint64 {
	out := make(map[string]uint64, len(ix.Macros)+len(ix.EnumVals))
	for name, v := range ix.EnumVals {
		out[name] = v
	}
	for name, m := range ix.Macros {
		if len(m.Params) > 0 {
			continue
		}
		if v, ok := ix.EvalInt(m.Value); ok {
			out[name] = v
		}
	}
	return out
}

// String renders a registration for diagnostics.
func (r *Registration) String() string {
	return fmt.Sprintf("struct %s %s = {%d fields} (%s)", r.StructType, r.VarName, len(r.Fields), r.File)
}
