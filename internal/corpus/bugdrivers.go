package corpus

// The "new specification" drivers: loaded under the syzbot config for
// years but carrying no Syzkaller descriptions at all. They host 17
// of the 24 Table 4 bugs. The device mapper and CEC drivers are
// modeled closely after the paper's running examples.

// buildDeviceMapper models drivers/md/dm-ioctl.c: nodename-based
// device path, full-body delegation (dm_ctl_ioctl → ctl_ioctl),
// _IOC_NR identifier modification, and table-lookup dispatch — every
// adversarial pattern of Figure 2 at once.
func buildDeviceMapper() *Handler {
	dmIoctl := StructModel{
		Name:    "dm_ioctl",
		Comment: "control structure shared by all dm ioctl commands",
		Fields: []FieldModel{
			{Name: "version", CType: "__u32", Array: 3, Comment: "ioctl interface version"},
			{Name: "data_size", CType: "__u32", Comment: "total size of data passed in, including this struct"},
			{Name: "data_start", CType: "__u32", Comment: "offset to start of data relative to start of this struct"},
			{Name: "target_count", CType: "__u32", LenOf: "data"},
			{Name: "open_count", CType: "__s32", Out: true, Comment: "out: number of open references"},
			{Name: "flags", CType: "__u32"},
			{Name: "event_nr", CType: "__u32", Out: true},
			{Name: "dev", CType: "__u64"},
			{Name: "name", CType: "char", Array: 128},
			{Name: "uuid", CType: "char", Array: 129},
			{Name: "data", CType: "char", Array: -1},
		},
	}
	cmds := []struct {
		name string
		nr   int
		bug  *Bug
	}{
		{name: "DM_VERSION", nr: 0},
		{name: "DM_REMOVE_ALL", nr: 1},
		{name: "DM_LIST_DEVICES", nr: 2},
		{name: "DM_DEV_CREATE", nr: 3},
		{name: "DM_DEV_REMOVE", nr: 4, bug: &Bug{
			Title: "general protection fault in cleanup_mapped_device", Class: BugGPF,
			CVE: "CVE-2024-50277", Confirmed: true, Fixed: true,
			PriorCmds: []string{"DM_DEV_CREATE"},
		}},
		{name: "DM_DEV_RENAME", nr: 5},
		{name: "DM_DEV_SUSPEND", nr: 6},
		{name: "DM_DEV_STATUS", nr: 7},
		{name: "DM_DEV_WAIT", nr: 8},
		{name: "DM_TABLE_LOAD", nr: 9, bug: &Bug{
			Title: "kmalloc bug in dm_table_create", Class: BugAllocSize,
			CVE: "CVE-2023-52429", Confirmed: true, Fixed: true,
			TriggerField: "target_count",
			Trigger:      FieldGate{Field: "target_count", Op: GateGt, Value: 1 << 28},
			PriorCmds:    []string{"DM_DEV_CREATE"},
		}},
		{name: "DM_TABLE_CLEAR", nr: 10},
		{name: "DM_TABLE_DEPS", nr: 11},
		{name: "DM_TABLE_STATUS", nr: 12},
		{name: "DM_LIST_VERSIONS", nr: 13, bug: &Bug{
			Title: "kmalloc bug in ctl_ioctl", Class: BugAllocSize,
			CVE: "CVE-2024-23851", Confirmed: true, Fixed: true,
			TriggerField: "data_size",
			Trigger:      FieldGate{Field: "data_size", Op: GateGt, Value: 0x7fffffff},
		}},
		{name: "DM_TARGET_MSG", nr: 14},
		{name: "DM_DEV_SET_GEOMETRY", nr: 15},
		{name: "DM_DEV_ARM_POLL", nr: 16},
		{name: "DM_GET_TARGET_VERSION", nr: 17},
	}
	h := &Handler{
		Name:          "dm",
		Kind:          KindDriver,
		DevPath:       "/dev/mapper/control",
		MiscName:      "device-mapper",
		Quirks:        QuirkNodename | QuirkDispatch | QuirkIOCNR | QuirkLookupTable | QuirkLenRelation,
		DispatchDepth: 1,
		IoctlChar:     0xfd,
		OpenBlocks:    6,
		Loaded:        true,
		Structs:       []StructModel{dmIoctl},
	}
	for _, c := range cmds {
		cmd := Cmd{Name: c.name, NR: c.nr, Dir: DirInOut, Arg: "dm_ioctl", Blocks: 6, Bug: c.bug}
		if c.bug != nil {
			c.bug.Cmd = c.name
		}
		cmd.Gates = []FieldGate{{Field: "data_size", Op: GateGt, Value: 0, Blocks: 3}}
		h.Cmds = append(h.Cmds, cmd)
	}
	return h
}

// buildCEC models the HDMI CEC driver, host of five Table 4 bugs
// including the use-after-free CVE-2024-23848. Its spec was the one
// merged upstream into Syzkaller (§5.1.1).
func buildCEC() *Handler {
	caps := StructModel{
		Name:    "cec_caps",
		Comment: "capabilities reported by CEC_ADAP_G_CAPS",
		Fields: []FieldModel{
			{Name: "driver", CType: "char", Array: 32, Out: true},
			{Name: "name", CType: "char", Array: 32, Out: true},
			{Name: "available_log_addrs", CType: "__u32", Out: true},
			{Name: "capabilities", CType: "__u32", Out: true},
			{Name: "version", CType: "__u32", Out: true},
		},
	}
	logAddrs := StructModel{
		Name:    "cec_log_addrs",
		Comment: "logical address configuration; num_log_addrs at most CEC_MAX_LOG_ADDRS (4)",
		Fields: []FieldModel{
			{Name: "log_addr", CType: "__u8", Array: 4},
			{Name: "log_addr_mask", CType: "__u16", Out: true},
			{Name: "cec_version", CType: "__u8"},
			{Name: "num_log_addrs", CType: "__u8", Ranged: true, Min: 0, Max: 4,
				Comment: "must not exceed CEC_MAX_LOG_ADDRS (4)"},
			{Name: "vendor_id", CType: "__u32"},
			{Name: "flags", CType: "__u32"},
			{Name: "osd_name", CType: "char", Array: 15},
			{Name: "primary_device_type", CType: "__u8", Array: 4},
			{Name: "log_addr_type", CType: "__u8", Array: 4},
		},
	}
	msg := StructModel{
		Name:    "cec_msg",
		Comment: "a CEC message: len counts the valid bytes in msg",
		Fields: []FieldModel{
			{Name: "tx_ts", CType: "__u64", Out: true},
			{Name: "rx_ts", CType: "__u64", Out: true},
			{Name: "len", CType: "__u32", Ranged: true, Min: 1, Max: 16},
			{Name: "timeout", CType: "__u32"},
			{Name: "sequence", CType: "__u32", Out: true},
			{Name: "flags", CType: "__u32"},
			{Name: "msg", CType: "__u8", Array: 16},
			{Name: "reply", CType: "__u8"},
			{Name: "rx_status", CType: "__u8", Out: true},
			{Name: "tx_status", CType: "__u8", Out: true},
		},
	}
	mode := StructModel{
		Name: "cec_mode",
		Fields: []FieldModel{
			{Name: "initiator", CType: "__u8", Ranged: true, Min: 0, Max: 3},
			{Name: "follower", CType: "__u8", Ranged: true, Min: 0, Max: 3},
		},
	}
	h := &Handler{
		Name:       "cec",
		Kind:       KindDriver,
		DevPath:    "/dev/cec0",
		MiscName:   "cec0",
		Quirks:     QuirkDispatch | QuirkCommentHint,
		IoctlChar:  'a',
		OpenBlocks: 5,
		MmapBlocks: 4, // message ring mapping
		Loaded:     true,
		Structs:    []StructModel{caps, logAddrs, msg, mode},
		// Two delegation hops: within MAX_ITER for the iterative LLM
		// analysis, beyond the static baseline's depth limit.
		DispatchDepth: 2,
	}
	h.Cmds = []Cmd{
		{Name: "CEC_ADAP_G_CAPS", NR: 0, Dir: DirInOut, Arg: "cec_caps", Blocks: 4},
		{Name: "CEC_ADAP_G_PHYS_ADDR", NR: 1, Dir: DirOut, ArgInt: true, Blocks: 3},
		{Name: "CEC_ADAP_S_PHYS_ADDR", NR: 2, Dir: DirIn, ArgInt: true, Blocks: 4},
		{Name: "CEC_ADAP_G_LOG_ADDRS", NR: 3, Dir: DirOut, Arg: "cec_log_addrs", Blocks: 5},
		{Name: "CEC_ADAP_S_LOG_ADDRS", NR: 4, Dir: DirInOut, Arg: "cec_log_addrs", Blocks: 8,
			Gates: []FieldGate{{Field: "num_log_addrs", Op: GateInRange, Value: 1, Max: 4, Blocks: 6}},
			Bug: &Bug{
				Title: "INFO: task hung in cec_claim_log_addrs", Class: BugTaskHung,
				Cmd:          "CEC_ADAP_S_LOG_ADDRS",
				TriggerField: "num_log_addrs",
				Trigger:      FieldGate{Field: "num_log_addrs", Op: GateEq, Value: 4},
			}},
		{Name: "CEC_TRANSMIT", NR: 5, Dir: DirInOut, Arg: "cec_msg", Blocks: 9,
			Gates: []FieldGate{{Field: "len", Op: GateInRange, Value: 1, Max: 16, Blocks: 5}},
			Bug: &Bug{
				Title: "ODEBUG bug in cec_transmit_msg_fh", Class: BugODebug,
				Cmd:       "CEC_TRANSMIT",
				Confirmed: true, Fixed: true,
				TriggerField: "timeout",
				Trigger:      FieldGate{Field: "timeout", Op: GateEq, Value: 0},
				PriorCmds:    []string{"CEC_ADAP_S_LOG_ADDRS"},
			}},
		{Name: "CEC_RECEIVE", NR: 6, Dir: DirInOut, Arg: "cec_msg", Blocks: 6,
			Bug: &Bug{
				Title: "KASAN: slab-use-after-free Read in cec_queue_msg_fh", Class: BugKASANUAF,
				Cmd: "CEC_RECEIVE",
				CVE: "CVE-2024-23848", Confirmed: true, Fixed: true,
				PriorCmds: []string{"CEC_ADAP_S_LOG_ADDRS", "CEC_S_MODE"},
			}},
		{Name: "CEC_G_MODE", NR: 7, Dir: DirOut, Arg: "cec_mode", Blocks: 3},
		{Name: "CEC_S_MODE", NR: 8, Dir: DirIn, Arg: "cec_mode", Blocks: 5,
			Gates: []FieldGate{{Field: "follower", Op: GateEq, Value: 3, Blocks: 4}},
			Bug: &Bug{
				Title: "WARNING in cec_data_cancel", Class: BugWarning,
				Cmd:       "CEC_S_MODE",
				Confirmed: true, Fixed: true,
				PriorCmds: []string{"CEC_TRANSMIT"},
			}},
		{Name: "CEC_DQEVENT", NR: 9, Dir: DirInOut, Arg: "cec_msg", Blocks: 5,
			Bug: &Bug{
				Title: "general protection fault in cec_transmit_done_ts", Class: BugGPF,
				Cmd:       "CEC_DQEVENT",
				Confirmed: true, Fixed: true,
				PriorCmds: []string{"CEC_TRANSMIT", "CEC_S_MODE"},
			}},
		{Name: "CEC_ADAP_G_CONNECTOR_INFO", NR: 10, Dir: DirOut, Arg: "cec_caps", Blocks: 3},
	}
	return h
}

// buildUBI models the UBI volume-management driver (two memory bugs).
func buildUBI() *Handler {
	h := genDriver("ubi_ctrl", 7, QuirkLenRelation|QuirkDispatch)
	h.DevPath = "/dev/ubi_ctrl"
	h.MiscName = "ubi_ctrl"
	h.DispatchDepth = 2
	h.Cmds[0].Bug = &Bug{
		Title: "zero-size vmalloc in ubi_read_volume_table", Class: BugWarning,
		Cmd: h.Cmds[0].Name, CVE: "CVE-2024-25739", Confirmed: true, Fixed: true,
	}
	if h.Cmds[0].Arg != "" {
		if f := firstScalarField(h.StructByName(h.Cmds[0].Arg)); f != "" {
			h.Cmds[0].Bug.TriggerField = f
			h.Cmds[0].Bug.Trigger = FieldGate{Field: f, Op: GateEq, Value: 0}
		}
	}
	h.Cmds[2].Bug = &Bug{
		Title: "memory leak in ubi_attach", Class: BugMemLeak,
		Cmd: h.Cmds[2].Name, CVE: "CVE-2024-25740", Confirmed: true,
	}
	return h
}

// buildPosixClock models the PTP clock character device.
func buildPosixClock() *Handler {
	h := genDriver("ptp0", 6, QuirkCharDev|QuirkDispatch)
	h.DispatchDepth = 2
	h.Cmds[1].Bug = &Bug{
		Title: "memory leak in posix_clock_open", Class: BugMemLeak,
		Cmd: h.Cmds[1].Name, CVE: "CVE-2024-26655", Confirmed: true, Fixed: true,
	}
	return h
}

// buildDVB models the DVB demux device family (four Table 4 bugs).
func buildDVB() *Handler {
	h := genDriver("dvb_demux", 12, QuirkNodename|QuirkDispatch|QuirkLenRelation)
	h.DevPath = "/dev/dvb/adapter0/demux0"
	h.MiscName = "dvb"
	h.DispatchDepth = 2
	bugs := []*Bug{
		{Title: "possible deadlock in dvb_demux_release", Class: BugDeadlock},
		{Title: "memory leak in dvb_dmxdev_add_pid", Class: BugMemLeak, Confirmed: true},
		{Title: "memory leak in dvb_dvr_do_ioctl", Class: BugMemLeak},
		{Title: "general protection fault in dvb_vb2_expbuf", Class: BugGPF,
			CVE: "CVE-2024-50291", Confirmed: true, Fixed: true},
	}
	for i, b := range bugs {
		idx := (i*3 + 1) % len(h.Cmds)
		b.Cmd = h.Cmds[idx].Name
		if i > 0 {
			b.PriorCmds = []string{h.Cmds[0].Name}
		}
		h.Cmds[idx].Bug = b
	}
	return h
}

// buildVEP models the USB gadget endpoint driver (vep_queue bugs).
func buildVEP() *Handler {
	h := genDriver("vep", 8, QuirkDispatch)
	h.DispatchDepth = 2
	h.DevPath = "/dev/vep0"
	h.MiscName = "vep0"
	h.Cmds[2].Bug = &Bug{
		Title: "WARNING in usb_ep_queue", Class: BugWarning,
		Cmd: h.Cmds[2].Name, CVE: "CVE-2024-25741", Confirmed: true,
	}
	h.Cmds[5].Bug = &Bug{
		Title: "BUG: corrupted list in vep_queue", Class: BugListCorrupt,
		Cmd: h.Cmds[5].Name, Confirmed: true,
		PriorCmds: []string{h.Cmds[2].Name},
	}
	return h
}

// buildUVC models the UVC video driver — partially described by
// Syzkaller, so its two bugs sit in the "incomplete" category.
func buildUVC() *Handler {
	h := genDriver("uvcvideo", 10, QuirkLenRelation|QuirkDispatch)
	h.DispatchDepth = 2
	h.DevPath = "/dev/video0"
	h.MiscName = "video0"
	withSyzkallerCoverage(h, 5)
	// Both bugs live in commands 5+ (outside the described prefix).
	h.Cmds[6].Bug = &Bug{
		Title: "WARNING in vb2_core_reqbufs", Class: BugWarning,
		Cmd: h.Cmds[6].Name, Confirmed: true,
	}
	if h.Cmds[7].Arg != "" {
		if f := firstScalarField(h.StructByName(h.Cmds[7].Arg)); f != "" {
			h.Cmds[7].Bug = &Bug{
				Title: "divide error in uvc_queue_setup", Class: BugDivide,
				Cmd: h.Cmds[7].Name, Confirmed: true,
				TriggerField: f,
				Trigger:      FieldGate{Field: f, Op: GateEq, Value: 0},
			}
		}
	}
	if h.Cmds[7].Bug == nil {
		h.Cmds[7].Bug = &Bug{
			Title: "divide error in uvc_queue_setup", Class: BugDivide,
			Cmd: h.Cmds[7].Name, Confirmed: true,
		}
	}
	return h
}

// buildBugDrivers returns every hand-modeled new-spec driver.
func buildBugDrivers() []*Handler {
	return []*Handler{
		buildDeviceMapper(),
		buildCEC(),
		buildUBI(),
		buildPosixClock(),
		buildDVB(),
		buildVEP(),
		buildUVC(),
	}
}
