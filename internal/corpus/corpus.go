package corpus

import (
	"fmt"
	"sort"

	"kernelgpt/internal/ccode"
	"kernelgpt/internal/syzlang"
)

// Config controls corpus construction.
type Config struct {
	// Scale multiplies the filler-handler population; 1.0 reproduces
	// the paper's Table 1 scale (666 driver / 85 socket handlers
	// scanned), smaller values build fast corpora for tests.
	Scale float64
}

// DefaultConfig is the full paper-scale corpus.
func DefaultConfig() Config { return Config{Scale: 1.0} }

// TestConfig is a small corpus for unit tests: all hand-modeled
// handlers plus a thin filler population.
func TestConfig() Config { return Config{Scale: 0.05} }

// Corpus is the complete synthetic kernel: handler models, rendered
// sources, the extractor index over them, and the constant table.
type Corpus struct {
	Handlers []*Handler
	// Index is the ccode extractor database over the rendered tree.
	Index *ccode.Index
	// Consts is the macro/enum constant table (syz-extract output).
	Consts map[string]uint64
	byName map[string]*Handler
}

// Paper-scale targets from Table 1 and §5.1.
const (
	targetDriversScanned  = 666
	targetDriversLoaded   = 278
	targetDriverNoSpec    = 45 // incomplete handlers with no specs at all
	targetDriverPartial   = 30 // incomplete handlers with partial specs
	targetSocketsScanned  = 85
	targetSocketsLoaded   = 81
	targetSocketNoSpec    = 18
	targetSocketPartial   = 48
	targetUnanalyzableDrv = 5 // KernelGPT fails even after repair
	targetUnanalyzableSck = 9
)

// baseHeader supplies OS-level constants every handler's spec needs.
const baseHeader = `
/* Synthetic uapi base definitions. */
#define AT_FDCWD 0xffffff9c
#define O_RDONLY 0
#define O_WRONLY 1
#define O_RDWR 2
#define O_NONBLOCK 2048
#define SOCK_STREAM 1
#define SOCK_DGRAM 2
#define SOCK_RAW 3
#define SOCK_SEQPACKET 5
#define MISC_DYNAMIC_MINOR 255
#define PROT_READ 1
#define PROT_WRITE 2
#define PROT_EXEC 4
#define MAP_SHARED 1
#define MAP_PRIVATE 2
#define EPOLL_CTL_ADD 1
#define EPOLL_CTL_DEL 2
#define EPOLL_CTL_MOD 3
`

// Build constructs the corpus: hand-modeled handlers, procedural
// fillers up to the configured scale, rendered C sources, extractor
// index, and constant table.
func Build(cfg Config) *Corpus {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	c := &Corpus{byName: map[string]*Handler{}}
	add := func(hs ...*Handler) {
		for _, h := range hs {
			if _, dup := c.byName[h.Name]; dup {
				panic(fmt.Sprintf("corpus: duplicate handler %q", h.Name))
			}
			c.byName[h.Name] = h
			c.Handlers = append(c.Handlers, h)
		}
	}
	add(buildTable5Drivers()...)
	add(buildBugDrivers()...)
	add(buildTable6Sockets()...)
	addFillers(add, c, cfg.Scale)

	files := map[string]string{"include/uapi/base.h": baseHeader}
	for _, h := range c.Handlers {
		files[h.SourcePath()] = RenderC(h)
	}
	c.Index = ccode.NewIndex(files)
	c.Consts = c.Index.ConstTable()
	return c
}

func scaled(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// addFillers tops each Table 1 category up to its (scaled) target.
func addFillers(add func(...*Handler), c *Corpus, scale float64) {
	// Count what the hand-modeled set already contributes.
	var drvNoSpec, drvPartial, drvLoaded, sckNoSpec, sckPartial, sckLoaded int
	for _, h := range c.Handlers {
		if !h.Loaded {
			continue
		}
		switch h.Kind {
		case KindDriver:
			drvLoaded++
			switch specState(h) {
			case stateNoSpec:
				drvNoSpec++
			case statePartial:
				drvPartial++
			}
		case KindSocket:
			sckLoaded++
			switch specState(h) {
			case stateNoSpec:
				sckNoSpec++
			case statePartial:
				sckPartial++
			}
		}
	}
	// Quirk palette for incomplete fillers: ~70% carry a quirk that
	// leaves SyzDescribe with nothing (deep delegation, table
	// dispatch) or with wrong values, matching its 20/75 success rate
	// in Table 1. Filler QuirkDispatch handlers delegate twice — one
	// hop beyond the static analyzer's depth.
	quirkPalette := []Quirk{
		QuirkDispatch | QuirkIOCNR,
		QuirkLookupTable | QuirkIOCNR,
		QuirkNodename | QuirkLookupTable | QuirkIOCNR,
		QuirkDispatch,
		QuirkNodename,
		QuirkLookupTable,
		QuirkDispatch | QuirkLenRelation,
		0,
		QuirkCharDev,
		QuirkDispatch | QuirkIOCNR,
	}
	mk := func(i int, base string, loadedQ bool) (string, Quirk) {
		name := fmt.Sprintf("%s%d", base, i)
		q := quirkPalette[i%len(quirkPalette)]
		if !loadedQ {
			if i%2 == 0 {
				q |= QuirkHardware
			} else {
				q |= QuirkDebug
			}
		}
		return name, q
	}

	unDrv := scaled(targetUnanalyzableDrv, scale)
	for i := 0; drvNoSpec < scaled(targetDriverNoSpec, scale); i++ {
		name, q := mk(i, "mdl", true)
		if unDrv > 0 {
			q |= QuirkIndirectCall
			unDrv--
		}
		h := genDriver(name, 2+i%9, q)
		if q.Has(QuirkDispatch) {
			h.DispatchDepth = 2
		}
		if q.Has(QuirkIndirectCall) {
			for j := range h.Cmds {
				h.Cmds[j].Indirect = true
			}
		}
		add(h)
		drvNoSpec++
		drvLoaded++
	}
	for i := 0; drvPartial < scaled(targetDriverPartial, scale); i++ {
		name, q := mk(i, "pdl", true)
		h := genDriver(name, 4+i%8, q)
		if q.Has(QuirkDispatch) {
			h.DispatchDepth = 2
		}
		withSyzkallerCoverage(h, 1+i%3)
		add(h)
		drvPartial++
		drvLoaded++
	}
	knownDrv := 0
	for i := 0; drvLoaded < scaled(targetDriversLoaded, scale); i++ {
		name, _ := mk(i, "cdl", true)
		h := genDriver(name, 2+i%6, 0)
		withSyzkallerCoverage(h, -1)
		// A slice of fully-described drivers carries already-known
		// bugs: the background crashes every suite (including plain
		// Syzkaller) finds in Table 3.
		if i%8 == 1 && knownDrv < scaled(22, scale) && len(h.Cmds) > 1 {
			c := &h.Cmds[len(h.Cmds)/2]
			bug := &Bug{
				Title: "WARNING in " + name + "_do_" + lower(c.Name),
				Class: BugWarning, Cmd: c.Name, Known: true,
			}
			if i%3 == 0 && len(h.Cmds) > 2 {
				bug.PriorCmds = []string{h.Cmds[0].Name}
			}
			c.Bug = bug
			knownDrv++
		}
		add(h)
		drvLoaded++
	}
	total := 0
	for _, h := range c.Handlers {
		if h.Kind == KindDriver {
			total++
		}
	}
	for i := 0; total < scaled(targetDriversScanned, scale); i++ {
		name, q := mk(i, "hwd", false)
		h := genDriver(name, 2+i%5, q)
		h.Loaded = false
		add(h)
		total++
	}

	// Sockets.
	unSck := scaled(targetUnanalyzableSck, scale)
	domain := 100
	for i := 0; sckNoSpec < scaled(targetSocketNoSpec, scale); i++ {
		name := fmt.Sprintf("msk%d", i)
		q := Quirk(0)
		if unSck > 0 {
			q |= QuirkIndirectCall
			unSck--
		}
		h := genSocket(name, domain, 3+i%10, q)
		domain++
		add(h)
		sckNoSpec++
		sckLoaded++
	}
	for i := 0; sckPartial < scaled(targetSocketPartial, scale); i++ {
		name := fmt.Sprintf("psk%d", i)
		h := genSocket(name, domain, 5+i%10, 0)
		domain++
		// Figure 7's socket distribution: a few partial sockets miss
		// >80% of their syscalls; most sit in the middle buckets.
		switch i % 4 {
		case 0:
			withSyzkallerCoverage(h, 1)
		case 1:
			withSyzkallerCoverage(h, 1+len(h.Cmds)/3)
		default:
			withSyzkallerCoverage(h, 1+len(h.Cmds)/2)
		}
		h.SyzkallerCalls = []SockCallKind{SockRecvfrom, SockBind}
		add(h)
		sckPartial++
		sckLoaded++
	}
	for i := 0; sckLoaded < scaled(targetSocketsLoaded, scale); i++ {
		h := genSocket(fmt.Sprintf("csk%d", i), domain, 3+i%6, 0)
		domain++
		withSyzkallerCoverage(h, -1)
		if i%4 == 1 && len(h.Cmds) > 0 {
			c := &h.Cmds[0]
			c.Bug = &Bug{
				Title: "WARNING in csk" + fmt.Sprint(i) + "_set_" + lower(c.Name),
				Class: BugWarning, Cmd: c.Name, Known: true,
			}
		}
		add(h)
		sckLoaded++
	}
	total = 0
	for _, h := range c.Handlers {
		if h.Kind == KindSocket {
			total++
		}
	}
	for i := 0; total < scaled(targetSocketsScanned, scale); i++ {
		h := genSocket(fmt.Sprintf("hws%d", i), domain, 3, QuirkHardware)
		domain++
		h.Loaded = false
		add(h)
		total++
	}
}

// SpecState classifies a handler's existing-description coverage.
type SpecState int

// Spec states.
const (
	stateNoSpec SpecState = iota
	statePartial
	stateComplete
)

func specState(h *Handler) SpecState {
	if h.SyzkallerComplete {
		return stateComplete
	}
	if h.SyzkallerCmds == nil {
		return stateNoSpec
	}
	described := len(h.SyzkallerCmds)
	totalCalls := len(h.Cmds)
	if h.Kind == KindSocket {
		totalCalls += len(h.Socket.Calls)
	}
	if described >= totalCalls {
		return stateComplete
	}
	return statePartial
}

// SpecStateOf exposes specState for other packages.
func SpecStateOf(h *Handler) SpecState { return specState(h) }

// MissingFraction is the fraction of the handler's syscalls lacking
// existing descriptions (the x-axis of Figure 7).
func MissingFraction(h *Handler) float64 {
	totalCalls := len(h.Cmds) + 1 // +1 for openat/socket
	if h.Kind == KindSocket {
		totalCalls += len(h.Socket.Calls)
	}
	described := 0
	if h.SyzkallerComplete {
		return 0
	}
	if h.SyzkallerCmds != nil {
		described = len(h.SyzkallerCmds) + 1
	}
	missing := totalCalls - described
	if missing < 0 {
		missing = 0
	}
	return float64(missing) / float64(totalCalls)
}

// Handler returns the named handler, or nil.
func (c *Corpus) Handler(name string) *Handler { return c.byName[name] }

// Loaded returns every loaded handler of the given kind.
func (c *Corpus) Loaded(kind Kind) []*Handler {
	var out []*Handler
	for _, h := range c.Handlers {
		if h.Loaded && h.Kind == kind {
			out = append(out, h)
		}
	}
	return out
}

// Scanned returns every handler of the given kind (the allyesconfig
// scan population of Table 1).
func (c *Corpus) Scanned(kind Kind) []*Handler {
	var out []*Handler
	for _, h := range c.Handlers {
		if h.Kind == kind {
			out = append(out, h)
		}
	}
	return out
}

// Incomplete returns the loaded handlers of the given kind with
// missing descriptions — the spec-generation worklist (§5.1).
func (c *Corpus) Incomplete(kind Kind) []*Handler {
	var out []*Handler
	for _, h := range c.Loaded(kind) {
		if specState(h) != stateComplete {
			out = append(out, h)
		}
	}
	return out
}

// Env returns the syzlang validation environment for this corpus.
func (c *Corpus) Env() *syzlang.Env { return syzlang.NewEnv(c.Consts) }

// ExistingSuite merges the human-written Syzkaller descriptions of
// every loaded handler into one file — the paper's "Syzkaller"
// baseline suite.
func (c *Corpus) ExistingSuite() *syzlang.File {
	out := &syzlang.File{}
	names := make([]string, 0, len(c.Handlers))
	for _, h := range c.Handlers {
		if h.Loaded {
			names = append(names, h.Name)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		out.Merge(SyzkallerSpec(c.byName[n]))
	}
	return out
}

// AllBugs returns every *new* planted bug in the corpus keyed by
// title (Table 4's population). Known background bugs are excluded.
func (c *Corpus) AllBugs() map[string]*Bug {
	out := map[string]*Bug{}
	for _, h := range c.Handlers {
		for _, b := range h.Bugs() {
			if !b.Known {
				out[b.Title] = b
			}
		}
	}
	return out
}

func lower(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ch >= 'A' && ch <= 'Z' {
			ch += 'a' - 'A'
		}
		out[i] = ch
	}
	return string(out)
}
