package corpus

// Ground-truth memory layout of model structs, using the same C
// layout rules as the ccode size calculator and the prog encoder
// (little-endian scalars, natural alignment, trailing flexible arrays
// contribute no size). The virtual kernel decodes syscall payloads at
// these offsets — which is exactly why a generator that recovered the
// wrong struct shape feeds garbage into field-gated branches.

// FieldOffset locates one field inside an encoded struct.
type FieldOffset struct {
	Name string
	// Off is the byte offset; Width the scalar width (1,2,4,8).
	Off, Width int
	// Count is the element count for fixed arrays (1 for scalars);
	// Flexible marks a trailing variable array.
	Count    int
	Flexible bool
	// Nested is non-nil for embedded struct fields.
	Nested *Layout
}

// Layout is the computed layout of a struct model.
type Layout struct {
	Name    string
	Size    int
	Align   int
	Offsets []FieldOffset
}

// Field returns the offset entry with the given name, or nil.
func (l *Layout) Field(name string) *FieldOffset {
	for i := range l.Offsets {
		if l.Offsets[i].Name == name {
			return &l.Offsets[i]
		}
	}
	return nil
}

// scalarWidth maps model C types to byte widths.
func scalarWidth(ctype string) int {
	switch ctype {
	case "char", "__u8", "__s8", "u8", "s8":
		return 1
	case "__u16", "__s16", "u16", "s16", "short":
		return 2
	case "__u64", "__s64", "u64", "s64", "long", "unsigned long":
		return 8
	default:
		return 4
	}
}

// LayoutOf computes the layout of the named struct within handler h.
// Returns nil if the struct is unknown.
func (h *Handler) LayoutOf(name string) *Layout {
	return h.layoutRec(name, map[string]bool{})
}

func (h *Handler) layoutRec(name string, seen map[string]bool) *Layout {
	sm := h.StructByName(name)
	if sm == nil || seen[name] {
		return nil
	}
	seen[name] = true
	defer delete(seen, name)
	l := &Layout{Name: name, Align: 1}
	off := 0
	for _, f := range sm.Fields {
		fo := FieldOffset{Name: f.Name, Count: 1}
		width := 0
		align := 1
		if inner, ok := cutStructPrefix(f.CType); ok {
			nested := h.layoutRec(inner, seen)
			if nested == nil {
				continue
			}
			fo.Nested = nested
			width = nested.Size
			align = nested.Align
		} else {
			width = scalarWidth(f.CType)
			align = width
		}
		fo.Width = width
		switch {
		case f.Array > 0:
			fo.Count = f.Array
		case f.Array < 0:
			fo.Flexible = true
			fo.Count = 0
		}
		if align > l.Align {
			l.Align = align
		}
		if rem := off % align; rem != 0 {
			off += align - rem
		}
		fo.Off = off
		if !fo.Flexible {
			off += width * fo.Count
		}
		l.Offsets = append(l.Offsets, fo)
	}
	if rem := off % l.Align; rem != 0 {
		off += l.Align - rem
	}
	l.Size = off
	return l
}

func cutStructPrefix(ctype string) (string, bool) {
	const p = "struct "
	if len(ctype) > len(p) && ctype[:len(p)] == p {
		return ctype[len(p):], true
	}
	return "", false
}

// ReadField decodes the named scalar field from an encoded payload.
// For array fields it reads the first element. Returns 0, false when
// the payload is too short or the field is unknown.
func (l *Layout) ReadField(data []byte, name string) (uint64, bool) {
	fo := l.Field(name)
	if fo == nil || fo.Nested != nil {
		return 0, false
	}
	return readScalar(data, fo.Off, fo.Width)
}

func readScalar(data []byte, off, width int) (uint64, bool) {
	if off+width > len(data) || width == 0 {
		return 0, false
	}
	var v uint64
	for i := width - 1; i >= 0; i-- {
		v = v<<8 | uint64(data[off+i])
	}
	return v, true
}
