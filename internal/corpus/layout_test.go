package corpus

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestLayoutDMIoctl(t *testing.T) {
	dm := fullCorpus.Handler("dm")
	l := dm.LayoutOf("dm_ioctl")
	if l == nil {
		t.Fatal("no layout")
	}
	// version[3]@0, data_size@12, data_start@16, target_count@20,
	// open_count@24, flags@28, event_nr@32, dev@40 (8-align),
	// name[128]@48, uuid[129]@176, data[]@305 → size padded to 312.
	cases := map[string]int{
		"version": 0, "data_size": 12, "data_start": 16,
		"target_count": 20, "open_count": 24, "flags": 28,
		"event_nr": 32, "dev": 40, "name": 48, "uuid": 176,
	}
	for field, off := range cases {
		fo := l.Field(field)
		if fo == nil {
			t.Fatalf("field %s missing", field)
		}
		if fo.Off != off {
			t.Errorf("field %s at %d, want %d", field, fo.Off, off)
		}
	}
	if data := l.Field("data"); data == nil || !data.Flexible {
		t.Fatal("data must be a flexible array")
	}
	if l.Size%8 != 0 {
		t.Fatalf("size %d not 8-aligned", l.Size)
	}
}

func TestLayoutMatchesCcodeSizeof(t *testing.T) {
	// The ground-truth layout and the extractor's sizeof must agree
	// (the prog encoder and the vkernel decoder both rely on it).
	for _, h := range fullCorpus.Handlers {
		if !h.Loaded {
			continue
		}
		for i := range h.Structs {
			name := h.Structs[i].Name
			l := h.LayoutOf(name)
			want := fullCorpus.Index.Sizeof("struct " + name)
			if l.Size != want {
				t.Fatalf("%s/%s: layout size %d != ccode sizeof %d",
					h.Name, name, l.Size, want)
			}
		}
	}
}

func TestReadFieldDecodesEncodedScalars(t *testing.T) {
	dm := fullCorpus.Handler("dm")
	l := dm.LayoutOf("dm_ioctl")
	buf := make([]byte, l.Size)
	binary.LittleEndian.PutUint32(buf[l.Field("data_size").Off:], 0xdeadbeef)
	binary.LittleEndian.PutUint64(buf[l.Field("dev").Off:], 0x1122334455667788)
	if v, ok := l.ReadField(buf, "data_size"); !ok || v != 0xdeadbeef {
		t.Fatalf("data_size = %#x, %v", v, ok)
	}
	if v, ok := l.ReadField(buf, "dev"); !ok || v != 0x1122334455667788 {
		t.Fatalf("dev = %#x, %v", v, ok)
	}
	if _, ok := l.ReadField(buf[:4], "dev"); ok {
		t.Fatal("short buffer must fail")
	}
	if _, ok := l.ReadField(buf, "nonexistent"); ok {
		t.Fatal("unknown field must fail")
	}
}

func TestQuickLayoutFieldsDisjoint(t *testing.T) {
	// Non-flexible fields never overlap and stay within the struct.
	f := func(seed uint64) bool {
		h := genDriver("lay"+randName(seed), 4, QuirkLenRelation)
		for i := range h.Structs {
			l := h.LayoutOf(h.Structs[i].Name)
			type span struct{ lo, hi int }
			var spans []span
			for _, fo := range l.Offsets {
				if fo.Flexible {
					continue
				}
				s := span{fo.Off, fo.Off + fo.Width*fo.Count}
				if s.hi > l.Size {
					return false
				}
				for _, o := range spans {
					if s.lo < o.hi && o.lo < s.hi {
						return false
					}
				}
				spans = append(spans, s)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
