package corpus

// Hand-modeled sockets: the 10 Table 6 families plus the two
// bug-hosting socket behaviors (the RDS sendto out-of-bounds and the
// ipv6 append-data leak on l2tp_ip6).

type table6Config struct {
	name      string
	domainVal int
	// nopts approximates KernelGPT's sockopt count.
	nopts int
	// syzN: existing Syzkaller sockopt coverage (same encoding as
	// table5Config.syzN).
	syzN int
	// syzCalls reports whether the human suite also describes the
	// non-sockopt calls (bind/connect/sendto/recvfrom).
	syzCalls bool
}

var table6Configs = []table6Config{
	{name: "caif_stream", domainVal: 37, nopts: 4, syzN: 2, syzCalls: false},
	{name: "l2tp_ip6", domainVal: 10, nopts: 45, syzN: 30, syzCalls: false},
	{name: "llc_ui", domainVal: 26, nopts: 16, syzN: 6, syzCalls: false},
	{name: "mptcp", domainVal: 2, nopts: 40, syzN: 15, syzCalls: false},
	{name: "packet", domainVal: 17, nopts: 20, syzN: 16, syzCalls: true},
	{name: "phonet_dgram", domainVal: 35, nopts: 8, syzN: 4, syzCalls: false},
	{name: "pppol2tp", domainVal: 24, nopts: 10, syzN: 7, syzCalls: false},
	{name: "rds", domainVal: 21, nopts: 12, syzN: 8, syzCalls: false},
	{name: "rfcomm_sock", domainVal: 31, nopts: 12, syzN: 12, syzCalls: true},
	{name: "sco_sock", domainVal: 31, nopts: 13, syzN: 12, syzCalls: true},
}

// Table6Names lists the Table 6 socket names in paper order.
func Table6Names() []string {
	names := make([]string, len(table6Configs))
	for i, c := range table6Configs {
		names[i] = c.name
	}
	return names
}

func buildTable6Sockets() []*Handler {
	var out []*Handler
	for i, cfg := range table6Configs {
		h := genSocket(cfg.name, cfg.domainVal+i, cfg.nopts, QuirkLenRelation)
		switch {
		case cfg.syzN < 0:
			withSyzkallerCoverage(h, -1)
		case cfg.syzN == 0:
			h.SyzkallerCmds = []string{}
		default:
			withSyzkallerCoverage(h, cfg.syzN)
		}
		// Human-described socket calls: every family has its receive
		// path covered; the configured ones also have the full
		// bind/connect/send surface.
		h.SyzkallerCalls = []SockCallKind{SockRecvfrom}
		if cfg.syzCalls {
			h.SyzkallerCalls = []SockCallKind{SockBind, SockConnect, SockSendto, SockRecvfrom}
		}
		// Background (already-known) bugs reachable through the
		// human-described options give Table 6 its non-zero baseline
		// crash column.
		if i%2 == 0 && len(h.SyzkallerCmds) > 0 {
			c := h.CmdByName(h.SyzkallerCmds[0])
			if c != nil && c.Bug == nil {
				c.Bug = &Bug{
					Title: "WARNING in " + h.Ident() + "_set_" + lower(c.Name),
					Class: BugWarning, Cmd: c.Name, Known: true,
				}
			}
		}
		switch cfg.name {
		case "rds":
			attachRDS(h)
		case "l2tp_ip6":
			attachL2TP(h)
		}
		out = append(out, h)
	}
	return out
}

func attachRDS(h *Handler) {
	// Syzkaller's RDS descriptions cover only recvmsg; the generated
	// sendto specification exposes the out-of-bounds read in
	// rds_cmsg_recv (§5.1.4).
	for i := range h.Socket.Calls {
		if h.Socket.Calls[i].Kind == SockSendto {
			h.Socket.Calls[i].Bug = &Bug{
				Title: "UBSAN: array-index-out-of-bounds in rds_cmsg_recv",
				Class: BugUBSANArray,
				Cmd:   "sendto",
				CVE:   "CVE-2024-23849", Confirmed: true, Fixed: true,
			}
		}
	}
}

func attachL2TP(h *Handler) {
	for i := range h.Socket.Calls {
		if h.Socket.Calls[i].Kind == SockSendto {
			h.Socket.Calls[i].Bug = &Bug{
				Title: "memory leak in __ip6_append_data", Class: BugMemLeak,
				Cmd: "sendto", Confirmed: true,
			}
		}
	}
}
