// Package corpus defines the synthetic Linux kernel codebase the
// reproduction analyzes and fuzzes. A single ground-truth model
// (Handler/Cmd/StructModel) drives three consumers:
//
//  1. the C renderer (render.go), which emits realistic kernel source
//     text exhibiting the implementation patterns the paper discusses
//     (miscdevice registration, .name vs .nodename, switch dispatch,
//     delegated sub-handlers, _IOC_NR identifier modification, nested
//     structs with length semantics, comments carrying intent);
//  2. the oracle (oracle.go), which derives the ground-truth syzlang
//     specification and the "existing Syzkaller" human-written suite;
//  3. the virtual kernel (internal/vkernel), which executes syscalls
//     against the same model with basic-block coverage and planted
//     bugs.
//
// Because all three views derive from one model, a specification
// generator is correct exactly when fuzzing with its output reaches
// the deep blocks — the property the paper's evaluation measures.
package corpus

import "fmt"

// Kind distinguishes driver and socket handlers.
type Kind int

// Handler kinds.
const (
	KindDriver Kind = iota
	KindSocket
)

// String names the kind.
func (k Kind) String() string {
	if k == KindSocket {
		return "socket"
	}
	return "driver"
}

// Quirk is a bitset of implementation patterns a handler exhibits.
// Quirks determine which analyzers can recover which parts of the
// spec: the SyzDescribe baseline fails on exactly the quirks the
// paper documents (§1, §5.1), while the LLM capability profiles
// handle broader subsets.
type Quirk uint32

// Handler quirks.
const (
	// QuirkNodename puts the device path in miscdevice.nodename
	// rather than deriving it from .name — the device-mapper pattern
	// SyzDescribe gets wrong.
	QuirkNodename Quirk = 1 << iota
	// QuirkIOCNR makes the dispatch switch on _IOC_NR(command)
	// rather than the raw command — so raw case labels are NOT valid
	// command values.
	QuirkIOCNR
	// QuirkDispatch delegates the ioctl body through one or more
	// intermediate functions before the switch (dm_ctl_ioctl →
	// ctl_ioctl). DispatchDepth controls how many hops.
	QuirkDispatch
	// QuirkLookupTable dispatches via a table-lookup helper function
	// (lookup_ioctl) instead of a switch.
	QuirkLookupTable
	// QuirkCommentHint encodes a critical constraint only in a
	// comment (e.g. valid range of a field).
	QuirkCommentHint
	// QuirkCharDev registers via register_chrdev/cdev instead of
	// miscdevice; the device path comes from the registration name.
	QuirkCharDev
	// QuirkLenRelation gives the arg struct a count field whose value
	// must equal the element count of a sibling array.
	QuirkLenRelation
	// QuirkHardware marks handlers requiring specific hardware; they
	// are filtered out of spec generation (§4 Implementation).
	QuirkHardware
	// QuirkDebug marks debug-only devices (… _test) that are
	// likewise filtered.
	QuirkDebug
	// QuirkNestedStruct nests a second struct inside the primary arg
	// struct.
	QuirkNestedStruct
	// QuirkIndirectCall dispatches sub-commands through a function
	// pointer array — the pattern §5.1.3 reports even LLMs missing
	// for 3 drivers.
	QuirkIndirectCall
)

// Has reports whether q contains all bits of mask.
func (q Quirk) Has(mask Quirk) bool { return q&mask == mask }

// ArgDir is the data direction of an ioctl/sockopt argument.
type ArgDir int

// Argument directions, mirroring _IO/_IOW/_IOR/_IOWR.
const (
	DirNone  ArgDir = iota // _IO: no argument payload
	DirIn                  // _IOW: userspace → kernel
	DirOut                 // _IOR: kernel → userspace
	DirInOut               // _IOWR: both
)

// String renders the direction as the syzlang ptr direction.
func (d ArgDir) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	}
	return "none"
}

// GateOp is a comparison that guards deeper basic blocks (and bugs).
type GateOp int

// Gate operators.
const (
	GateEq GateOp = iota
	GateNe
	GateLt
	GateGt
	GateInRange
	GateNonZero
)

// FieldGate describes a condition on an argument-struct field that
// unlocks additional basic blocks when satisfied. Gates are what make
// *typed* argument generation matter: a fuzzer with the wrong struct
// layout essentially never satisfies them.
type FieldGate struct {
	Field  string
	Op     GateOp
	Value  uint64
	Max    uint64 // for GateInRange
	Blocks int    // basic blocks unlocked
}

// Eval reports whether v satisfies the gate.
func (g FieldGate) Eval(v uint64) bool {
	switch g.Op {
	case GateEq:
		return v == g.Value
	case GateNe:
		return v != g.Value
	case GateLt:
		return v < g.Value
	case GateGt:
		return v > g.Value
	case GateInRange:
		return v >= g.Value && v <= g.Max
	case GateNonZero:
		return v != 0
	}
	return false
}

// BugClass categorizes planted bugs by the sanitizer that reports
// them, mirroring the crash-title prefixes in Table 4.
type BugClass int

// Bug classes.
const (
	BugKASANUAF BugClass = iota
	BugAllocSize
	BugWarning
	BugTaskHung
	BugGPF
	BugKernelBUG
	BugUBSANArray
	BugMemLeak
	BugDeadlock
	BugODebug
	BugListCorrupt
	BugDivide
	BugInfo
)

// Bug is a planted vulnerability reachable only under a specific
// condition on a specific command of a specific handler.
type Bug struct {
	// Title matches the crash title format of Table 4, e.g.
	// "kmalloc bug in ctl_ioctl".
	Title string
	Class BugClass
	// Cmd is the command (macro name) whose handler contains the bug.
	Cmd string
	// TriggerField/TriggerOp/TriggerValue specify the field condition
	// that fires the bug. Empty TriggerField means any invocation of
	// Cmd fires it (after PriorCmds are satisfied).
	TriggerField string
	Trigger      FieldGate
	// PriorCmds must have been issued on the same fd earlier in the
	// program for the bug to fire (stateful bugs like the CEC UAF).
	PriorCmds []string
	// CVE and status flags mirror Table 4's columns.
	CVE       string
	Confirmed bool
	Fixed     bool
	// Known marks pre-existing, already-reported bugs reachable with
	// the existing descriptions (the background crash population that
	// gives Table 3 its non-zero baseline crash counts). Known bugs
	// are excluded from Table 4.
	Known bool
}

// FieldModel describes one field of an argument struct.
type FieldModel struct {
	Name  string
	CType string // C scalar type ("__u32"), or "struct <name>"
	// Array: 0 scalar, >0 fixed-size array, -1 flexible trailing array.
	Array int
	// LenOf names a sibling field whose element count this field
	// carries (the count/devices relationship of Figure 5).
	LenOf string
	// Out marks kernel-written fields ("(out)" in syzlang).
	Out bool
	// Min/Max give the valid range when Ranged is set.
	Ranged   bool
	Min, Max uint64
	// Comment is rendered beside the field; with QuirkCommentHint the
	// range above appears only here, not in any code check readable
	// by one-hop analysis.
	Comment string
}

// StructModel describes a C struct used as an ioctl/sockopt payload.
type StructModel struct {
	Name   string
	Fields []FieldModel
	// Comment is the doc comment rendered above the definition.
	Comment string
}

// FieldIndex returns the index of the named field, or -1.
func (s *StructModel) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Cmd is one operation behind a generic syscall: an ioctl command for
// drivers, or a setsockopt/getsockopt option for sockets.
type Cmd struct {
	// Name is the macro name, e.g. "DM_LIST_DEVICES".
	Name string
	// NR is the command number (ioctl nr field / raw option value).
	NR  int
	Dir ArgDir
	// Arg names the payload struct (in Handler.Structs); empty with
	// ArgInt false means no payload.
	Arg string
	// ArgInt marks a plain integer payload instead of a struct.
	ArgInt bool
	// Plain uses the raw NR as the full command value (no _IOC
	// encoding) — common for legacy drivers and all sockopts.
	Plain bool
	// Blocks is the number of basic blocks in the command's
	// sub-handler body (reached once the command value is right).
	Blocks int
	// Gates guard deeper blocks on arg field values.
	Gates []FieldGate
	// Bug is the planted bug in this sub-handler, if any.
	Bug *Bug
	// MakesRes names a resource kind this command creates (secondary
	// fds like kvm's VM fd); empty otherwise.
	MakesRes string
	// NeedsRes names the resource kind the fd argument must be; empty
	// means the handler's primary fd.
	NeedsRes string
	// Indirect dispatches this command through a dynamic registry
	// (register_op at module init) rather than the visible switch —
	// the multiple-indirection pattern §5.1.3 reports defeating even
	// LLM analysis. Static analyzers and the simulated LLM both miss
	// indirect commands; only the expert-written Syzkaller suite can
	// describe them.
	Indirect bool
	// Comment is rendered above the sub-handler case.
	Comment string
}

// SockCallKind enumerates the socket syscalls beyond get/setsockopt
// that a socket handler can implement.
type SockCallKind int

// Socket call kinds.
const (
	SockBind SockCallKind = iota
	SockConnect
	SockSendto
	SockRecvfrom
	SockAccept
	SockListen
	SockSendmsg
	SockRecvmsg
)

// String returns the base syscall name.
func (k SockCallKind) String() string {
	switch k {
	case SockBind:
		return "bind"
	case SockConnect:
		return "connect"
	case SockSendto:
		return "sendto"
	case SockRecvfrom:
		return "recvfrom"
	case SockAccept:
		return "accept"
	case SockListen:
		return "listen"
	case SockSendmsg:
		return "sendmsg"
	case SockRecvmsg:
		return "recvmsg"
	}
	return "?"
}

// SockCall describes one non-sockopt socket syscall the handler
// implements.
type SockCall struct {
	Kind SockCallKind
	// Addr names the sockaddr struct for bind/connect/sendto; Buf
	// true means the call carries a plain byte buffer payload.
	Addr string
	Buf  bool
	// Blocks in the call's kernel handler.
	Blocks int
	Gates  []FieldGate
	Bug    *Bug
}

// SocketInfo carries socket-specific registration data.
type SocketInfo struct {
	// Domain is the address family macro, e.g. "AF_RDS"; DomainVal
	// its value.
	Domain    string
	DomainVal int
	// Type is the socket type macro, e.g. "SOCK_SEQPACKET".
	Type    string
	TypeVal int
	// Protocol value passed to socket(); usually 0.
	Protocol int
	// Level is the sockopt level macro and value (e.g. SOL_RDS, 276).
	Level    string
	LevelVal int
	// Calls lists the implemented non-sockopt syscalls.
	Calls []SockCall
}

// Handler is the ground-truth model of one driver or socket operation
// handler — the unit the paper counts in Table 1.
type Handler struct {
	// Name is a short identifier, e.g. "dm", "cec", "rds".
	Name string
	Kind Kind
	// DevPath is the device file path for drivers
	// (e.g. "/dev/mapper/control").
	DevPath string
	// MiscName is the miscdevice .name field value; when
	// QuirkNodename is absent, DevPath must equal "/dev/"+MiscName.
	MiscName string
	Quirks   Quirk
	// IoctlChar is the _IOC type byte for encoded commands.
	IoctlChar byte
	// DispatchDepth is the number of delegation hops before the
	// switch (meaningful with QuirkDispatch; ≥1).
	DispatchDepth int
	Cmds          []Cmd
	Structs       []StructModel
	Socket        SocketInfo
	// Loaded reports whether the handler is enabled under the syzbot
	// boot configuration (Table 1 splits scanned vs loaded).
	Loaded bool
	// OpenBlocks is the coverage earned just by opening the device
	// (or creating the socket).
	OpenBlocks int
	// MmapBlocks is the number of basic blocks in the handler's mmap
	// fault/validate path; 0 means the handler does not implement
	// mmap. Mappable handlers also get a munmap teardown block, and
	// their fds reach the vkernel's mmap region model.
	MmapBlocks int
	// SyzkallerCmds lists the command names already described by the
	// existing human-written Syzkaller suite; nil means the handler
	// has no existing descriptions at all (an empty non-nil slice
	// means only the open/socket call is described).
	SyzkallerCmds []string
	// SyzkallerCalls lists the non-sockopt socket calls the human
	// suite describes (the RDS situation: recvmsg covered, sendto
	// missing).
	SyzkallerCalls []SockCallKind
	// SyzkallerComplete marks handlers whose existing descriptions
	// cover every command (not "incomplete" in Table 1).
	SyzkallerComplete bool
	// Parent/CreatedBy link secondary operation handlers (kvm's
	// kvm_vm_fops / kvm_vcpu_fops) to the parent handler command that
	// creates their file descriptor via anon_inode_getfd. A handler
	// with Parent set has no DevPath; its fd is only obtainable
	// through the parent's CreatedBy command.
	Parent    string
	CreatedBy string
}

// StructByName returns the named struct model, or nil.
func (h *Handler) StructByName(name string) *StructModel {
	for i := range h.Structs {
		if h.Structs[i].Name == name {
			return &h.Structs[i]
		}
	}
	return nil
}

// CmdByName returns the named command, or nil.
func (h *Handler) CmdByName(name string) *Cmd {
	for i := range h.Cmds {
		if h.Cmds[i].Name == name {
			return &h.Cmds[i]
		}
	}
	return nil
}

// Ident is the handler name sanitized for use in C and syzlang
// identifiers ('-', '#' and '/' become '_').
func (h *Handler) Ident() string {
	out := make([]byte, len(h.Name))
	for i := 0; i < len(h.Name); i++ {
		c := h.Name[i]
		if c == '-' || c == '#' || c == '/' {
			c = '_'
		}
		out[i] = c
	}
	return string(out)
}

// FDResource is the syzlang resource name for the handler's primary
// file descriptor.
func (h *Handler) FDResource() string { return "fd_" + h.Ident() }

// SourcePath is the synthetic source file path for the handler.
func (h *Handler) SourcePath() string {
	if h.Kind == KindSocket {
		return fmt.Sprintf("net/%s/af_%s.c", h.Name, h.Name)
	}
	return fmt.Sprintf("drivers/%s/%s_main.c", h.Name, h.Name)
}

// CmdValue computes the userspace-visible command value for cmd:
// either the raw NR (Plain) or the _IOC encoding using the payload
// size. sizeof reports the byte size of a struct by name.
func (h *Handler) CmdValue(cmd *Cmd, sizeof func(string) int) uint64 {
	if cmd.Plain {
		return uint64(cmd.NR)
	}
	var dir, size uint64
	switch cmd.Dir {
	case DirIn:
		dir = 1
	case DirOut:
		dir = 2
	case DirInOut:
		dir = 3
	}
	if cmd.Arg != "" && sizeof != nil {
		size = uint64(sizeof(cmd.Arg))
	} else if cmd.ArgInt {
		size = 4
	}
	return dir<<30 | size<<16 | uint64(h.IoctlChar)<<8 | uint64(cmd.NR)
}

// Bugs returns every planted bug in the handler (commands and socket
// calls).
func (h *Handler) Bugs() []*Bug {
	var bugs []*Bug
	for i := range h.Cmds {
		if h.Cmds[i].Bug != nil {
			bugs = append(bugs, h.Cmds[i].Bug)
		}
	}
	for i := range h.Socket.Calls {
		if h.Socket.Calls[i].Bug != nil {
			bugs = append(bugs, h.Socket.Calls[i].Bug)
		}
	}
	return bugs
}
