package corpus

import (
	"fmt"
	"strings"
)

// RenderC emits the synthetic kernel C source for a handler. The
// output is what the extractor indexes and the analysis LLM reads; it
// reproduces the real kernel's implementation patterns, with the
// handler's quirks selecting between the common and the adversarial
// variants the paper discusses.
func RenderC(h *Handler) string {
	var b strings.Builder
	if h.Kind == KindSocket {
		renderSocket(&b, h)
		return b.String()
	}
	renderDriver(&b, h)
	return b.String()
}

func up(s string) string {
	return strings.ToUpper(strings.NewReplacer("-", "_", "#", "N", "/", "_").Replace(s))
}

func cmdNrMacro(cmdName string) string { return cmdName + "_CMD" }

func renderDriver(b *strings.Builder, h *Handler) {
	u := up(h.Ident())
	fmt.Fprintf(b, "/* %s driver — auto-modeled synthetic kernel module. */\n\n", h.Ident())

	// Device-name macros.
	if h.Parent == "" {
		if h.Quirks.Has(QuirkNodename) {
			dir, node := splitDevPath(h.DevPath)
			fmt.Fprintf(b, "#define %s_NAME \"%s\"\n", u, h.MiscName)
			fmt.Fprintf(b, "#define %s_DIR \"%s\"\n", u, dir)
			fmt.Fprintf(b, "#define %s_NODE \"%s\"\n", u, node)
		} else {
			fmt.Fprintf(b, "#define %s_NAME \"%s\"\n", u, h.MiscName)
		}
	}
	if h.IoctlChar != 0 {
		fmt.Fprintf(b, "#define %s_IOC_MAGIC 0x%02x\n", u, h.IoctlChar)
	}
	b.WriteByte('\n')

	// Command macros.
	for i := range h.Cmds {
		c := &h.Cmds[i]
		if c.Plain {
			fmt.Fprintf(b, "#define %s %d\n", c.Name, c.NR)
			continue
		}
		fmt.Fprintf(b, "#define %s %d\n", cmdNrMacro(c.Name), c.NR)
		ioc := "_IO"
		argText := ""
		switch c.Dir {
		case DirIn:
			ioc = "_IOW"
		case DirOut:
			ioc = "_IOR"
		case DirInOut:
			ioc = "_IOWR"
		}
		switch {
		case c.Arg != "":
			argText = ", struct " + c.Arg
		case c.ArgInt:
			argText = ", int"
		default:
			ioc = "_IO"
		}
		fmt.Fprintf(b, "#define %s %s(%s_IOC_MAGIC, %s%s)\n",
			c.Name, ioc, u, cmdNrMacro(c.Name), argText)
	}
	b.WriteByte('\n')

	renderStructs(b, h)
	renderSubHandlers(b, h)
	renderDispatch(b, h)
	renderRegistration(b, h)
}

func splitDevPath(p string) (dir, node string) {
	p = strings.TrimPrefix(p, "/dev/")
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[:i], p[i+1:]
	}
	return "", p
}

func renderStructs(b *strings.Builder, h *Handler) {
	for i := range h.Structs {
		s := &h.Structs[i]
		if s.Comment != "" {
			fmt.Fprintf(b, "/* %s */\n", s.Comment)
		}
		fmt.Fprintf(b, "struct %s {\n", s.Name)
		for _, f := range s.Fields {
			decl := fmt.Sprintf("\t%s %s", f.CType, f.Name)
			switch {
			case f.Array > 0:
				decl += fmt.Sprintf("[%d]", f.Array)
			case f.Array < 0:
				decl += "[]"
			}
			decl += ";"
			comment := f.Comment
			if f.LenOf != "" && comment == "" {
				comment = "number of entries in " + f.LenOf
			}
			if f.Out && comment == "" {
				comment = "written back to userspace"
			}
			if comment != "" {
				decl += "\t/* " + comment + " */"
			}
			b.WriteString(decl)
			b.WriteByte('\n')
		}
		b.WriteString("};\n\n")
	}
}

// subHandlerName is the per-command worker function name.
func subHandlerName(h *Handler, c *Cmd) string {
	return fmt.Sprintf("%s_do_%s", h.Ident(), strings.ToLower(c.Name))
}

func renderSubHandlers(b *strings.Builder, h *Handler) {
	for i := range h.Cmds {
		c := &h.Cmds[i]
		if c.Comment != "" {
			fmt.Fprintf(b, "/* %s */\n", c.Comment)
		}
		argDecl := "void *argp"
		if c.Arg != "" {
			argDecl = fmt.Sprintf("struct %s *param", c.Arg)
		} else if c.ArgInt {
			argDecl = "int val"
		}
		fmt.Fprintf(b, "static int %s(%s)\n{\n", subHandlerName(h, c), argDecl)
		renderWorkerBody(b, h, c)
		b.WriteString("}\n\n")
	}
}

// renderWorkerBody emits realistic-looking work inside a sub-handler:
// field validation mirroring the gates, a bug site comment-free
// trigger path, and filler statements proportional to Blocks.
func renderWorkerBody(b *strings.Builder, h *Handler, c *Cmd) {
	st := h.StructByName(c.Arg)
	if st != nil {
		for _, f := range st.Fields {
			if f.Ranged && !h.Quirks.Has(QuirkCommentHint) {
				fmt.Fprintf(b, "\tif (param->%s < %d || param->%s > %d)\n\t\treturn -EINVAL;\n",
					f.Name, f.Min, f.Name, f.Max)
			}
			if f.LenOf != "" {
				fmt.Fprintf(b, "\tif (param->%s > max_entries(param->%s))\n\t\treturn -EOVERFLOW;\n",
					f.Name, f.LenOf)
			}
		}
	}
	for _, g := range c.Gates {
		cond := gateCond("param->"+g.Field, g)
		fmt.Fprintf(b, "\tif (%s) {\n\t\t%s_process(param);\n\t}\n", cond, h.Ident())
	}
	if c.Bug != nil {
		renderBugSite(b, h, c)
	}
	if c.MakesRes != "" {
		fmt.Fprintf(b, "\treturn anon_inode_getfd(\"%s\", &%s_fops, ctx, O_RDWR);\n", c.MakesRes, c.MakesRes)
		return
	}
	b.WriteString("\treturn 0;\n")
}

func gateCond(lhs string, g FieldGate) string {
	switch g.Op {
	case GateEq:
		return fmt.Sprintf("%s == %d", lhs, g.Value)
	case GateNe:
		return fmt.Sprintf("%s != %d", lhs, g.Value)
	case GateLt:
		return fmt.Sprintf("%s < %d", lhs, g.Value)
	case GateGt:
		return fmt.Sprintf("%s > %d", lhs, g.Value)
	case GateInRange:
		return fmt.Sprintf("%s >= %d && %s <= %d", lhs, g.Value, lhs, g.Max)
	case GateNonZero:
		return fmt.Sprintf("%s != 0", lhs)
	}
	return "0"
}

func renderBugSite(b *strings.Builder, h *Handler, c *Cmd) {
	bug := c.Bug
	if bug.TriggerField != "" {
		cond := gateCond("param->"+bug.TriggerField, bug.Trigger)
		fmt.Fprintf(b, "\tif (%s) {\n", cond)
		fmt.Fprintf(b, "\t\t/* BUG SITE: %s */\n", bug.Title)
		fmt.Fprintf(b, "\t\tbuf = kvmalloc(param->%s, GFP_KERNEL);\n", bug.TriggerField)
		b.WriteString("\t}\n")
		return
	}
	fmt.Fprintf(b, "\t/* BUG SITE: %s */\n", bug.Title)
}

// dispatchFnName returns the function name at dispatch-chain depth d
// (0 = the fops-registered entry point).
func dispatchFnName(h *Handler, d int) string {
	depth := 0
	if h.Quirks.Has(QuirkDispatch) {
		depth = h.DispatchDepth
	}
	switch {
	case d == 0 && depth > 0:
		return h.Ident() + "_unlocked_ioctl"
	case d == depth:
		return h.Ident() + "_ioctl"
	default:
		return fmt.Sprintf("%s_ioctl_step%d", h.Ident(), d)
	}
}

func renderDispatch(b *strings.Builder, h *Handler) {
	depth := 0
	if h.Quirks.Has(QuirkDispatch) {
		depth = h.DispatchDepth
	}
	// Delegation chain, rendered top-down so the analyzer must follow
	// hops exactly as the paper's Figure 6 shows.
	for d := 0; d < depth; d++ {
		fmt.Fprintf(b, "static long %s(struct file *file, unsigned int command, unsigned long u)\n{\n",
			dispatchFnName(h, d))
		fmt.Fprintf(b, "\treturn %s(file, command, u);\n}\n\n", dispatchFnName(h, d+1))
	}
	if h.Quirks.Has(QuirkLookupTable) {
		renderLookupDispatch(b, h)
		return
	}
	renderSwitchDispatch(b, h)
}

// renderSwitchDispatch renders the final dispatch function with a
// switch over the command. With QuirkIOCNR the switch variable is
// first rewritten with _IOC_NR, and the case labels are the *_CMD nr
// macros (so raw labels are not valid command values).
func renderSwitchDispatch(b *strings.Builder, h *Handler) {
	fmt.Fprintf(b, "static long %s(struct file *file, unsigned int command, unsigned long u)\n{\n",
		dispatchFnName(b2depth(h), depthOf(h)))
	switchVar := "command"
	if h.Quirks.Has(QuirkIOCNR) {
		b.WriteString("\tunsigned int cmd;\n\n")
		b.WriteString("\t/* strip the size/dir bits; sub-commands are keyed on the nr only */\n")
		b.WriteString("\tcmd = _IOC_NR(command);\n")
		switchVar = "cmd"
	}
	fmt.Fprintf(b, "\tswitch (%s) {\n", switchVar)
	hasIndirect := false
	for i := range h.Cmds {
		c := &h.Cmds[i]
		if c.Indirect {
			hasIndirect = true
			continue
		}
		label := c.Name
		if h.Quirks.Has(QuirkIOCNR) && !c.Plain {
			label = cmdNrMacro(c.Name)
		}
		fmt.Fprintf(b, "\tcase %s: {\n", label)
		renderCaseBody(b, h, c)
		b.WriteString("\t}\n")
	}
	if hasIndirect {
		// Dynamically registered sub-commands fall through to the
		// runtime dispatch table; no static analysis can connect the
		// command values to their workers from here.
		fmt.Fprintf(b, "\tdefault:\n\t\treturn %s_dispatch_dynamic(%s, u);\n\t}\n}\n\n", h.Ident(), switchVar)
		renderDynamicRegistry(b, h)
		return
	}
	b.WriteString("\tdefault:\n\t\treturn -ENOTTY;\n\t}\n}\n\n")
}

// renderDynamicRegistry emits the module-init-time registration of
// indirect commands into an opaque dispatch table.
func renderDynamicRegistry(b *strings.Builder, h *Handler) {
	fmt.Fprintf(b, "static void %s_register_ops(void)\n{\n", h.Ident())
	for i := range h.Cmds {
		c := &h.Cmds[i]
		if !c.Indirect {
			continue
		}
		fmt.Fprintf(b, "\tregister_op(&%s_op_table, %s, %s);\n", h.Ident(), c.Name, subHandlerName(h, c))
	}
	b.WriteString("}\n\n")
}

func depthOf(h *Handler) int {
	if h.Quirks.Has(QuirkDispatch) {
		return h.DispatchDepth
	}
	return 0
}

// b2depth is an identity helper kept for symmetry in call sites.
func b2depth(h *Handler) *Handler { return h }

func renderCaseBody(b *strings.Builder, h *Handler, c *Cmd) {
	switch {
	case c.Arg != "":
		fmt.Fprintf(b, "\t\tstruct %s req;\n", c.Arg)
		fmt.Fprintf(b, "\t\tif (copy_from_user(&req, (struct %s __user *)u, sizeof(struct %s)))\n", c.Arg, c.Arg)
		b.WriteString("\t\t\treturn -EFAULT;\n")
		fmt.Fprintf(b, "\t\treturn %s(&req);\n", subHandlerName(h, c))
	case c.ArgInt:
		b.WriteString("\t\tint val;\n")
		b.WriteString("\t\tif (get_user(val, (int __user *)u))\n\t\t\treturn -EFAULT;\n")
		fmt.Fprintf(b, "\t\treturn %s(val);\n", subHandlerName(h, c))
	default:
		fmt.Fprintf(b, "\t\treturn %s((void *)u);\n", subHandlerName(h, c))
	}
}

// renderLookupDispatch renders the dm-style table lookup: the final
// dispatch function strips the nr, looks the worker up in a static
// table, and copies the (single shared) param struct.
func renderLookupDispatch(b *strings.Builder, h *Handler) {
	// Table of {nr, fn}.
	fmt.Fprintf(b, "static struct {\n\tunsigned int cmd;\n\tioctl_fn fn;\n} _%s_ioctls[] = {\n", h.Ident())
	for i := range h.Cmds {
		c := &h.Cmds[i]
		if c.Indirect {
			continue
		}
		nr := cmdNrMacro(c.Name)
		if c.Plain {
			nr = c.Name
		}
		fmt.Fprintf(b, "\t{%s, %s},\n", nr, subHandlerName(h, c))
	}
	b.WriteString("};\n\n")
	fmt.Fprintf(b, "static ioctl_fn %s_lookup_ioctl(unsigned int cmd)\n{\n", h.Ident())
	fmt.Fprintf(b, "\tunsigned int i;\n\tfor (i = 0; i < ARRAY_SIZE(_%s_ioctls); i++)\n", h.Ident())
	fmt.Fprintf(b, "\t\tif (_%s_ioctls[i].cmd == cmd)\n\t\t\treturn _%s_ioctls[i].fn;\n", h.Ident(), h.Ident())
	b.WriteString("\treturn NULL;\n}\n\n")

	arg := sharedArg(h)
	fmt.Fprintf(b, "static long %s(struct file *file, unsigned int command, unsigned long u)\n{\n",
		dispatchFnName(h, depthOf(h)))
	b.WriteString("\tunsigned int cmd;\n\tioctl_fn fn;\n\n")
	b.WriteString("\tcmd = _IOC_NR(command);\n")
	fmt.Fprintf(b, "\tfn = %s_lookup_ioctl(cmd);\n", h.Ident())
	b.WriteString("\tif (!fn)\n\t\treturn -ENOTTY;\n")
	if arg != "" {
		fmt.Fprintf(b, "\tstruct %s param;\n", arg)
		fmt.Fprintf(b, "\tif (copy_from_user(&param, (struct %s __user *)u, sizeof(struct %s)))\n", arg, arg)
		b.WriteString("\t\treturn -EFAULT;\n")
		b.WriteString("\treturn fn(&param);\n}\n\n")
		return
	}
	b.WriteString("\treturn fn((void *)u);\n}\n\n")
}

// sharedArg returns the single payload struct used by lookup-table
// handlers (dm's pattern: one dm_ioctl struct for every command).
func sharedArg(h *Handler) string {
	arg := ""
	for i := range h.Cmds {
		if h.Cmds[i].Arg != "" {
			if arg == "" {
				arg = h.Cmds[i].Arg
			}
			if arg != h.Cmds[i].Arg {
				return arg // mixed; first wins for the copy stub
			}
		}
	}
	return arg
}

func renderRegistration(b *strings.Builder, h *Handler) {
	u := up(h.Ident())
	entry := dispatchFnName(h, 0)
	fopsVar := h.Ident() + "_fops"
	if h.Parent != "" {
		fopsVar = h.Ident() + "_fops"
	}
	fmt.Fprintf(b, "static const struct file_operations %s = {\n", fopsVar)
	b.WriteString("\t.owner = THIS_MODULE,\n")
	fmt.Fprintf(b, "\t.open = %s_open,\n", h.Ident())
	fmt.Fprintf(b, "\t.unlocked_ioctl = %s,\n", entry)
	fmt.Fprintf(b, "\t.compat_ioctl = %s,\n", entry)
	b.WriteString("\t.llseek = noop_llseek,\n};\n\n")

	if h.Parent != "" {
		// Secondary handlers (kvm_vm_fops style) have no device node;
		// their fd comes from anon_inode_getfd in the parent.
		return
	}
	if h.Quirks.Has(QuirkCharDev) {
		fmt.Fprintf(b, "static int __init %s_init(void)\n{\n", h.Ident())
		fmt.Fprintf(b, "\treturn register_chrdev(%s_MAJOR, \"%s\", &%s);\n}\n\n",
			u, strings.TrimPrefix(h.DevPath, "/dev/"), fopsVar)
		return
	}
	fmt.Fprintf(b, "static struct miscdevice %s_misc = {\n", h.Ident())
	b.WriteString("\t.minor = MISC_DYNAMIC_MINOR,\n")
	fmt.Fprintf(b, "\t.name = %s_NAME,\n", u)
	if h.Quirks.Has(QuirkNodename) {
		fmt.Fprintf(b, "\t.nodename = %s_DIR \"/\" %s_NODE,\n", u, u)
	}
	fmt.Fprintf(b, "\t.fops = &%s,\n};\n", fopsVar)
}

// renderSocket emits the socket-family source: address struct,
// sockopt macros + dispatch, per-call handlers, proto_ops and
// net_proto_family registrations.
func renderSocket(b *strings.Builder, h *Handler) {
	si := &h.Socket
	fmt.Fprintf(b, "/* %s protocol family — synthetic socket module. */\n\n", h.Ident())
	fmt.Fprintf(b, "#define %s %d\n", si.Domain, si.DomainVal)
	fmt.Fprintf(b, "#define %s %d\n", si.Level, si.LevelVal)
	for i := range h.Cmds {
		fmt.Fprintf(b, "#define %s %d\n", h.Cmds[i].Name, h.Cmds[i].NR)
	}
	b.WriteByte('\n')
	renderStructs(b, h)

	// Sockopt worker per option.
	for i := range h.Cmds {
		c := &h.Cmds[i]
		if c.Comment != "" {
			fmt.Fprintf(b, "/* %s */\n", c.Comment)
		}
		argDecl := "sockptr_t optval, unsigned int optlen"
		fmt.Fprintf(b, "static int %s_set_%s(struct sock *sk, %s)\n{\n",
			h.Ident(), strings.ToLower(c.Name), argDecl)
		if c.Arg != "" {
			fmt.Fprintf(b, "\tstruct %s val;\n", c.Arg)
			fmt.Fprintf(b, "\tif (optlen < sizeof(struct %s))\n\t\treturn -EINVAL;\n", c.Arg)
			fmt.Fprintf(b, "\tif (copy_from_sockptr(&val, optval, sizeof(struct %s)))\n\t\treturn -EFAULT;\n", c.Arg)
		} else if c.ArgInt {
			b.WriteString("\tint val;\n\tif (copy_from_sockptr(&val, optval, sizeof(int)))\n\t\treturn -EFAULT;\n")
		}
		renderSocketGates(b, h, c)
		b.WriteString("\treturn 0;\n}\n\n")
	}

	// setsockopt dispatch: a switch normally, or an opaque dynamic
	// registry for indirect-dispatch families (invisible to any
	// static or LLM analysis).
	fmt.Fprintf(b, "static int %s_setsockopt(struct socket *sock, int level, int optname, sockptr_t optval, unsigned int optlen)\n{\n", h.Ident())
	fmt.Fprintf(b, "\tif (level != %s)\n\t\treturn -ENOPROTOOPT;\n", si.Level)
	if h.Quirks.Has(QuirkIndirectCall) {
		fmt.Fprintf(b, "\treturn %s_dispatch_dynamic(sock, optname, optval, optlen);\n}\n\n", h.Ident())
		fmt.Fprintf(b, "static void %s_register_opts(void)\n{\n", h.Ident())
		for i := range h.Cmds {
			c := &h.Cmds[i]
			fmt.Fprintf(b, "\tregister_op(&%s_opt_table, %s, %s_set_%s);\n",
				h.Ident(), c.Name, h.Ident(), strings.ToLower(c.Name))
		}
		b.WriteString("}\n\n")
		renderSocketRegs(b, h)
		return
	}
	b.WriteString("\tswitch (optname) {\n")
	for i := range h.Cmds {
		c := &h.Cmds[i]
		fmt.Fprintf(b, "\tcase %s:\n\t\treturn %s_set_%s(sk, optval, optlen);\n",
			c.Name, h.Ident(), strings.ToLower(c.Name))
	}
	b.WriteString("\tdefault:\n\t\treturn -ENOPROTOOPT;\n\t}\n}\n\n")

	// Non-sockopt calls.
	for i := range si.Calls {
		sc := &si.Calls[i]
		fn := fmt.Sprintf("%s_%s", h.Ident(), sc.Kind)
		switch sc.Kind {
		case SockBind, SockConnect:
			fmt.Fprintf(b, "static int %s(struct socket *sock, struct sockaddr *uaddr, int addr_len)\n{\n", fn)
			if sc.Addr != "" {
				fmt.Fprintf(b, "\tstruct %s *addr = (struct %s *)uaddr;\n", sc.Addr, sc.Addr)
				fmt.Fprintf(b, "\tif (addr_len < sizeof(struct %s))\n\t\treturn -EINVAL;\n", sc.Addr)
				fmt.Fprintf(b, "\tif (addr->family != %s)\n\t\treturn -EAFNOSUPPORT;\n", si.Domain)
			}
			b.WriteString("\treturn 0;\n}\n\n")
		case SockSendto, SockSendmsg:
			fmt.Fprintf(b, "static int %s(struct socket *sock, struct msghdr *msg, size_t len)\n{\n", fn)
			if sc.Addr != "" {
				fmt.Fprintf(b, "\tstruct %s *addr = (struct %s *)msg->msg_name;\n", sc.Addr, sc.Addr)
				fmt.Fprintf(b, "\tif (msg->msg_namelen < sizeof(struct %s))\n\t\treturn -EINVAL;\n", sc.Addr)
				fmt.Fprintf(b, "\tif (addr->family != %s)\n\t\treturn -EAFNOSUPPORT;\n", si.Domain)
			}
			if sc.Bug != nil {
				fmt.Fprintf(b, "\t/* BUG SITE: %s */\n", sc.Bug.Title)
			}
			b.WriteString("\treturn len;\n}\n\n")
		default:
			fmt.Fprintf(b, "static int %s(struct socket *sock)\n{\n\treturn 0;\n}\n\n", fn)
		}
	}

	renderSocketRegs(b, h)
}

// renderSocketRegs emits the proto_ops and net_proto_family
// registrations.
func renderSocketRegs(b *strings.Builder, h *Handler) {
	si := &h.Socket
	// proto_ops registration.
	fmt.Fprintf(b, "static const struct proto_ops %s_proto_ops = {\n", h.Ident())
	fmt.Fprintf(b, "\t.family = %s,\n", si.Domain)
	fmt.Fprintf(b, "\t.setsockopt = %s_setsockopt,\n", h.Ident())
	fmt.Fprintf(b, "\t.getsockopt = %s_getsockopt,\n", h.Ident())
	for i := range si.Calls {
		sc := &si.Calls[i]
		field := sc.Kind.String()
		if sc.Kind == SockSendto {
			field = "sendmsg"
		}
		if sc.Kind == SockRecvfrom {
			field = "recvmsg"
		}
		fmt.Fprintf(b, "\t.%s = %s_%s,\n", field, h.Ident(), sc.Kind)
	}
	b.WriteString("};\n\n")
	fmt.Fprintf(b, "static const struct net_proto_family %s_family_ops = {\n", h.Ident())
	fmt.Fprintf(b, "\t.family = %s,\n", si.Domain)
	fmt.Fprintf(b, "\t.create = %s_create,\n", h.Ident())
	b.WriteString("\t.owner = THIS_MODULE,\n};\n")
}

func renderSocketGates(b *strings.Builder, h *Handler, c *Cmd) {
	for _, g := range c.Gates {
		lhs := "val." + g.Field
		if c.ArgInt {
			lhs = "val"
		}
		fmt.Fprintf(b, "\tif (%s) {\n\t\t%s_apply(sk);\n\t}\n", gateCond(lhs, g), h.Ident())
	}
	if c.Bug != nil {
		fmt.Fprintf(b, "\t/* BUG SITE: %s */\n", c.Bug.Title)
	}
}
