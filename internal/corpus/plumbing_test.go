package corpus

import (
	"testing"

	"kernelgpt/internal/syzlang"
)

func TestPlumbingSuiteValidates(t *testing.T) {
	c := Build(TestConfig())
	suite := c.PlumbingSuite()
	if len(suite.Syscalls) == 0 {
		t.Fatal("empty plumbing suite")
	}
	if errs := syzlang.Validate(suite, c.Env()); len(errs) > 0 {
		t.Fatalf("plumbing suite invalid: %v", errs[0])
	}
	// It must also merge cleanly with the full oracle suite (shared
	// resources like fd_dm are referenced, not redefined).
	files := []*syzlang.File{suite}
	for _, h := range c.Handlers {
		if h.Loaded {
			files = append(files, OracleSpec(h))
		}
	}
	merged := syzlang.MergeDedup(files...)
	if errs := syzlang.Validate(merged, c.Env()); len(errs) > 0 {
		t.Fatalf("oracle+plumbing suite invalid: %v", errs[0])
	}
}

func TestPlumbingSpecMmapGating(t *testing.T) {
	c := Build(TestConfig())
	cec, dm := c.Handler("cec"), c.Handler("dm")
	if cec.MmapBlocks == 0 {
		t.Fatal("cec must model an mmap region")
	}
	if dm.MmapBlocks != 0 {
		t.Fatal("dm control device must not model an mmap region")
	}
	withMmap := PlumbingSpec(cec)
	if !hasCallWith(withMmap, "mmap$cec") || !hasCallWith(withMmap, "munmap$cec") {
		t.Fatalf("mappable handler lacks mmap surface: %v", callNames(withMmap))
	}
	without := PlumbingSpec(dm)
	if hasCallWith(without, "mmap$dm") {
		t.Fatal("unmappable handler got an mmap spec")
	}
	if !hasCallWith(without, "dup$dm") || !hasCallWith(without, "epoll_ctl$dm") {
		t.Fatalf("fd plumbing missing: %v", callNames(without))
	}
}

func hasCallWith(f *syzlang.File, name string) bool {
	for _, s := range f.Syscalls {
		if s.Name() == name {
			return true
		}
	}
	return false
}

func callNames(f *syzlang.File) []string {
	var out []string
	for _, s := range f.Syscalls {
		out = append(out, s.Name())
	}
	return out
}
