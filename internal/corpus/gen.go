package corpus

import (
	"fmt"
	"strings"
)

// Deterministic handler synthesis. Every procedurally generated
// handler derives from a seed (hash of its name), so the corpus is
// identical across runs and machines — a requirement for reproducible
// tables.

// hash64 is FNV-1a.
func hash64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// rng is a tiny splitmix64 generator for corpus synthesis.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) pick(opts []string) string { return opts[r.intn(len(opts))] }

var (
	cmdVerbs    = []string{"GET", "SET", "START", "STOP", "RESET", "QUERY", "ENABLE", "DISABLE", "READ", "WRITE", "ADD", "DEL", "FLUSH", "SYNC", "BIND", "ALLOC", "FREE", "MAP", "UNMAP", "WAIT"}
	cmdNouns    = []string{"CONFIG", "STATUS", "MODE", "BUFFER", "CHANNEL", "TIMER", "IRQ", "QUEUE", "STATE", "PARAMS", "INFO", "STATS", "REGION", "FEATURES", "VERSION", "CAPS", "EVENT", "RING", "FILTER", "LIMIT"}
	structKinds = []string{"config", "info", "params", "status", "req", "desc", "range", "entry", "state", "caps"}
	fieldNames  = []string{"flags", "mode", "index", "offset", "length", "count", "value", "mask", "id", "size", "level", "channel", "timeout", "threshold", "rate", "depth", "width", "num", "base", "limit"}
	fieldCTypes = []string{"__u32", "__u32", "__u32", "__u64", "__u16", "__u8", "__s32"}
)

// genStruct synthesizes a payload struct with nfields fields; with
// lenRel it gets a trailing flexible array plus a count field bound
// to it.
func genStruct(name string, r *rng, nfields int, lenRel bool) StructModel {
	sm := StructModel{Name: name, Comment: "userspace parameter block for " + name}
	used := map[string]bool{}
	for i := 0; i < nfields; i++ {
		fn := fieldNames[r.intn(len(fieldNames))]
		for used[fn] {
			fn = fmt.Sprintf("%s%d", fieldNames[r.intn(len(fieldNames))], i)
		}
		used[fn] = true
		f := FieldModel{Name: fn, CType: fieldCTypes[r.intn(len(fieldCTypes))]}
		switch r.intn(8) {
		case 0:
			f.Array = 4 + r.intn(4)*4
		case 1:
			f.Ranged = true
			f.Min = 0
			f.Max = uint64(1 + r.intn(63))
			f.Comment = fmt.Sprintf("valid range 0..%d", f.Max)
		case 2:
			f.Out = true
		}
		sm.Fields = append(sm.Fields, f)
	}
	if lenRel {
		sm.Fields = append(sm.Fields,
			FieldModel{Name: "n_entries", CType: "__u32", LenOf: "entries"},
			FieldModel{Name: "entries", CType: "__u64", Array: -1},
		)
	}
	return sm
}

// genCmdName builds a unique command macro name.
func genCmdName(prefix string, r *rng, used map[string]bool) string {
	for {
		name := fmt.Sprintf("%s_%s_%s", prefix, r.pick(cmdVerbs), r.pick(cmdNouns))
		if !used[name] {
			used[name] = true
			return name
		}
	}
}

// genDriver synthesizes a driver handler with ncmds commands. The
// quirks parameter layers in the adversarial patterns.
func genDriver(name string, ncmds int, quirks Quirk) *Handler {
	r := newRng(hash64(name))
	u := up(name)
	h := &Handler{
		Name:       name,
		Kind:       KindDriver,
		DevPath:    "/dev/" + name,
		MiscName:   name,
		Quirks:     quirks,
		IoctlChar:  byte(0x20 + r.intn(0x5f)),
		OpenBlocks: 3 + r.intn(5),
		Loaded:     true,
	}
	if quirks.Has(QuirkNodename) {
		h.DevPath = fmt.Sprintf("/dev/%s/%s", name, "ctl")
		h.MiscName = name + "-legacy"
	}
	if quirks.Has(QuirkDispatch) {
		h.DispatchDepth = 1 + r.intn(2)
	}
	if quirks.Has(QuirkCharDev) {
		h.DevPath = "/dev/" + name
	}
	// Shared struct pool.
	nstructs := 1 + ncmds/4
	if nstructs > 5 {
		nstructs = 5
	}
	var structNames []string
	for i := 0; i < nstructs; i++ {
		sname := fmt.Sprintf("%s_%s", strings.ReplaceAll(name, "-", "_"), structKinds[(i+r.intn(3))%len(structKinds)])
		if h.StructByName(sname) != nil {
			sname = fmt.Sprintf("%s%d", sname, i)
		}
		lenRel := quirks.Has(QuirkLenRelation) && i == 0
		h.Structs = append(h.Structs, genStruct(sname, r, 3+r.intn(5), lenRel))
		structNames = append(structNames, sname)
	}
	used := map[string]bool{}
	for i := 0; i < ncmds; i++ {
		c := Cmd{
			Name:   genCmdName(u, r, used),
			NR:     i,
			Dir:    ArgDir(1 + r.intn(3)),
			Blocks: 3 + r.intn(8),
		}
		switch r.intn(5) {
		case 0:
			c.ArgInt = true
		case 1:
			c.Dir = DirNone
		default:
			c.Arg = structNames[r.intn(len(structNames))]
		}
		if c.Arg != "" && r.intn(3) == 0 {
			// Deeper blocks behind a field gate.
			sm := h.StructByName(c.Arg)
			f := sm.Fields[r.intn(len(sm.Fields))]
			if f.Array == 0 && f.LenOf == "" && !f.Out {
				g := FieldGate{Field: f.Name, Op: GateEq, Value: uint64(r.intn(8)), Blocks: 4 + r.intn(8)}
				if f.Ranged {
					g.Value = f.Min + uint64(r.intn(int(f.Max-f.Min+1)))
				}
				c.Gates = append(c.Gates, g)
			}
		}
		h.Cmds = append(h.Cmds, c)
	}
	// Roughly a third of drivers expose an mmap region (ring buffers,
	// register windows). Drawn last so earlier synthesis output is
	// unchanged by the mmap extension.
	if r.intn(3) == 0 {
		h.MmapBlocks = 3 + r.intn(5)
	}
	return h
}

// genSocket synthesizes a socket handler with nopts sockopt options
// and a standard complement of socket calls.
func genSocket(name string, domainVal, nopts int, quirks Quirk) *Handler {
	r := newRng(hash64("sock:" + name))
	u := up(name)
	h := &Handler{
		Name:       name,
		Kind:       KindSocket,
		Quirks:     quirks,
		OpenBlocks: 4 + r.intn(5),
		Loaded:     true,
		Socket: SocketInfo{
			Domain:    "AF_" + u,
			DomainVal: domainVal,
			Type:      "SOCK_DGRAM",
			TypeVal:   2,
			Protocol:  0,
			Level:     "SOL_" + u,
			LevelVal:  200 + domainVal,
		},
	}
	sname := strings.ReplaceAll(name, "-", "_") + "_opts"
	h.Structs = append(h.Structs, genStruct(sname, r, 3+r.intn(3), quirks.Has(QuirkLenRelation)))
	addrName := "sockaddr_" + strings.ReplaceAll(name, "-", "_")
	h.Structs = append(h.Structs, StructModel{
		Name:    addrName,
		Comment: "address format for the " + name + " family",
		Fields: []FieldModel{
			{Name: "family", CType: "__u16"},
			{Name: "port", CType: "__u16"},
			{Name: "addr", CType: "__u32", Array: 4},
		},
	})
	used := map[string]bool{}
	for i := 0; i < nopts; i++ {
		c := Cmd{
			Name:   genCmdName(u, r, used),
			NR:     i + 1,
			Dir:    DirIn,
			Plain:  true,
			Blocks: 2 + r.intn(6),
		}
		switch r.intn(3) {
		case 0:
			c.Arg = sname
		default:
			c.ArgInt = true
		}
		h.Cmds = append(h.Cmds, c)
	}
	if !quirks.Has(QuirkIndirectCall) {
		h.Socket.Calls = []SockCall{
			{Kind: SockBind, Addr: addrName, Blocks: 4 + r.intn(4)},
			{Kind: SockConnect, Addr: addrName, Blocks: 4 + r.intn(4)},
			{Kind: SockSendto, Addr: addrName, Buf: true, Blocks: 5 + r.intn(5)},
			{Kind: SockRecvfrom, Addr: addrName, Buf: true, Blocks: 3 + r.intn(4)},
		}
	}
	return h
}

// withSyzkallerCoverage marks the first n commands as described by the
// existing human suite (n<0 marks the handler complete).
func withSyzkallerCoverage(h *Handler, n int) *Handler {
	if n < 0 {
		h.SyzkallerComplete = true
		h.SyzkallerCmds = allCmdNames(h)
		return h
	}
	if n > len(h.Cmds) {
		n = len(h.Cmds)
	}
	h.SyzkallerCmds = allCmdNames(h)[:n]
	return h
}
