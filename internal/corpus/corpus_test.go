package corpus

import (
	"strings"
	"testing"
	"testing/quick"

	"kernelgpt/internal/ccode"
	"kernelgpt/internal/syzlang"
)

// fullCorpus is built once; tests share it read-only.
var fullCorpus = Build(DefaultConfig())

func TestScaleTargets(t *testing.T) {
	c := fullCorpus
	if got := len(c.Scanned(KindDriver)); got != targetDriversScanned {
		t.Errorf("scanned drivers = %d, want %d", got, targetDriversScanned)
	}
	if got := len(c.Loaded(KindDriver)); got != targetDriversLoaded {
		t.Errorf("loaded drivers = %d, want %d", got, targetDriversLoaded)
	}
	if got := len(c.Scanned(KindSocket)); got != targetSocketsScanned {
		t.Errorf("scanned sockets = %d, want %d", got, targetSocketsScanned)
	}
	if got := len(c.Loaded(KindSocket)); got != targetSocketsLoaded {
		t.Errorf("loaded sockets = %d, want %d", got, targetSocketsLoaded)
	}
	// Table 1: 75 incomplete drivers, 66 incomplete sockets.
	if got := len(c.Incomplete(KindDriver)); got != 75 {
		t.Errorf("incomplete drivers = %d, want 75", got)
	}
	if got := len(c.Incomplete(KindSocket)); got != 66 {
		t.Errorf("incomplete sockets = %d, want 66", got)
	}
}

func TestNoSpecDriverCount(t *testing.T) {
	// 45 of the 75 incomplete drivers have no descriptions at all
	// (60%, per §5.1).
	n := 0
	for _, h := range fullCorpus.Incomplete(KindDriver) {
		if SpecStateOf(h) == stateNoSpec {
			n++
		}
	}
	if n != 45 {
		t.Fatalf("no-spec drivers = %d, want 45", n)
	}
}

func TestTable4BugInventory(t *testing.T) {
	bugs := fullCorpus.AllBugs()
	if len(bugs) != 24 {
		t.Fatalf("planted bugs = %d, want 24", len(bugs))
	}
	cves := 0
	for _, b := range bugs {
		if b.CVE != "" {
			cves++
		}
	}
	if cves != 11 {
		t.Fatalf("CVE bugs = %d, want 11", cves)
	}
	for _, title := range []string{
		"kmalloc bug in ctl_ioctl",
		"KASAN: slab-use-after-free Read in cec_queue_msg_fh",
		"UBSAN: array-index-out-of-bounds in rds_cmsg_recv",
		"divide error in uvc_queue_setup",
	} {
		if bugs[title] == nil {
			t.Errorf("missing planted bug %q", title)
		}
	}
}

func TestRenderedDMSourceParses(t *testing.T) {
	dm := fullCorpus.Handler("dm")
	if dm == nil {
		t.Fatal("dm handler missing")
	}
	ix := fullCorpus.Index
	// The miscdevice registration must expose both .name and
	// .nodename, with nodename holding the true device path.
	var misc *ccode.Registration
	for _, r := range ix.Registrations("miscdevice") {
		if strings.Contains(r.File, "/dm_") || strings.Contains(r.File, "/dm/") {
			misc = r
		}
	}
	if misc == nil {
		t.Fatal("dm miscdevice registration not indexed")
	}
	node, ok := ix.EvalString(misc.Fields["nodename"])
	if !ok || "/dev/"+node != dm.DevPath {
		t.Fatalf("nodename = %q (%v), want path %s", node, ok, dm.DevPath)
	}
	name, _ := ix.EvalString(misc.Fields["name"])
	if "/dev/"+name == dm.DevPath {
		t.Fatal("misc .name must NOT be the true device path for the dm quirk")
	}
}

func TestRenderedDMCommandsEvaluate(t *testing.T) {
	ix := fullCorpus.Index
	dm := fullCorpus.Handler("dm")
	for i := range dm.Cmds {
		c := &dm.Cmds[i]
		v, ok := ix.ResolveMacroInt(c.Name)
		if !ok {
			t.Fatalf("command macro %s does not evaluate", c.Name)
		}
		want := dm.CmdValue(c, ix.Sizeof)
		if v != want {
			t.Fatalf("%s = %#x, want %#x", c.Name, v, want)
		}
		if ccode.IOCNr(v) != uint64(c.NR) {
			t.Fatalf("%s nr = %d, want %d", c.Name, ccode.IOCNr(v), c.NR)
		}
	}
}

func TestEveryLoadedHandlerRenders(t *testing.T) {
	ix := fullCorpus.Index
	for _, h := range fullCorpus.Handlers {
		src, ok := ix.Files()[h.SourcePath()]
		if !ok || len(src) == 0 {
			t.Fatalf("handler %s has no rendered source", h.Name)
		}
		if h.Kind == KindDriver {
			if regs := findFopsFor(ix, h); regs == nil {
				t.Fatalf("handler %s: file_operations registration not indexed", h.Name)
			}
		} else if regs := findProtoOpsFor(ix, h); regs == nil {
			t.Fatalf("handler %s: proto_ops registration not indexed", h.Name)
		}
	}
}

func findFopsFor(ix *ccode.Index, h *Handler) *ccode.Registration {
	return ix.RegistrationByVar(h.Ident() + "_fops")
}

func findProtoOpsFor(ix *ccode.Index, h *Handler) *ccode.Registration {
	return ix.RegistrationByVar(h.Ident() + "_proto_ops")
}

func TestOracleSpecsValidate(t *testing.T) {
	env := fullCorpus.Env()
	for _, h := range fullCorpus.Handlers {
		if !h.Loaded {
			continue
		}
		spec := OracleSpec(h)
		if h.Parent != "" {
			// Child resources reference the parent's chain; merge the
			// ancestors to validate.
			spec = mergedFamilySpec(fullCorpus, h)
		}
		errs := syzlang.Validate(spec, env)
		errs = filterChildResErrors(errs)
		if len(errs) > 0 {
			t.Fatalf("oracle spec for %s invalid:\n%s\n---\n%s",
				h.Name, syzlang.FormatErrors(syzlang.ValidationErrorsToErrors(errs)),
				syzlang.Format(spec))
		}
	}
}

// mergedFamilySpec merges a child handler's spec with its ancestors'.
func mergedFamilySpec(c *Corpus, h *Handler) *syzlang.File {
	out := &syzlang.File{}
	for cur := h; cur != nil; cur = c.Handler(cur.Parent) {
		out.Merge(OracleSpec(cur))
		if cur.Parent == "" {
			break
		}
	}
	return out
}

// filterChildResErrors drops unknown-resource errors for fd_kvm_vm
// style cross-handler references when validating one handler alone.
func filterChildResErrors(errs []*syzlang.ValidationError) []*syzlang.ValidationError {
	var out []*syzlang.ValidationError
	for _, e := range errs {
		if e.Kind == syzlang.ErrUnknownResource && strings.HasPrefix(e.Ref, "fd_kvm") {
			continue
		}
		out = append(out, e)
	}
	return out
}

func TestSyzkallerSuiteValidates(t *testing.T) {
	suite := fullCorpus.ExistingSuite()
	if len(suite.Syscalls) == 0 {
		t.Fatal("existing suite is empty")
	}
	errs := syzlang.Validate(suite, fullCorpus.Env())
	if len(errs) > 0 {
		t.Fatalf("existing suite invalid: %v", errs[:minInt(5, len(errs))])
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSyzkallerSpecSubsetOfOracle(t *testing.T) {
	for _, h := range fullCorpus.Loaded(KindDriver) {
		syz := SyzkallerSpec(h)
		if syz == nil {
			continue
		}
		oracle := OracleSpec(h)
		oracleCalls := map[string]bool{}
		for _, s := range oracle.Syscalls {
			oracleCalls[s.Name()] = true
		}
		for _, s := range syz.Syscalls {
			if !oracleCalls[s.Name()] {
				t.Fatalf("%s: human suite call %s not in oracle", h.Name, s.Name())
			}
		}
	}
}

func TestMissingFraction(t *testing.T) {
	dm := fullCorpus.Handler("dm")
	if MissingFraction(dm) != 1.0 {
		t.Fatalf("dm missing fraction = %v, want 1.0", MissingFraction(dm))
	}
	for _, h := range fullCorpus.Handlers {
		f := MissingFraction(h)
		if f < 0 || f > 1 {
			t.Fatalf("%s: missing fraction %v out of range", h.Name, f)
		}
		if h.SyzkallerComplete && f != 0 {
			t.Fatalf("%s: complete handler has missing fraction %v", h.Name, f)
		}
	}
}

func TestKVMFamilyLinks(t *testing.T) {
	c := fullCorpus
	vm, vcpu := c.Handler("kvm_vm"), c.Handler("kvm_vcpu")
	if vm == nil || vcpu == nil {
		t.Fatal("kvm secondary handlers missing")
	}
	if vm.Parent != "kvm" || vcpu.Parent != "kvm_vm" {
		t.Fatalf("bad parents: %q %q", vm.Parent, vcpu.Parent)
	}
	kvm := c.Handler("kvm")
	if kvm.CmdByName(vm.CreatedBy) == nil {
		t.Fatalf("kvm lacks creating command %s", vm.CreatedBy)
	}
	if kvm.CmdByName(vm.CreatedBy).MakesRes != "kvm_vm" {
		t.Fatal("KVM_CREATE_VM does not make the kvm_vm resource")
	}
}

func TestIndirectCmdsInvisibleInSwitch(t *testing.T) {
	h := fullCorpus.Handler("ptmx")
	src := fullCorpus.Index.Files()[h.SourcePath()]
	for i := range h.Cmds {
		c := &h.Cmds[i]
		if !c.Indirect {
			continue
		}
		if strings.Contains(src, "case "+c.Name) || strings.Contains(src, "case "+cmdNrMacro(c.Name)) {
			t.Fatalf("indirect cmd %s appears as a switch case", c.Name)
		}
		if !strings.Contains(src, "register_op(&ptmx_op_table, "+c.Name) {
			t.Fatalf("indirect cmd %s not dynamically registered", c.Name)
		}
	}
}

func TestGateEval(t *testing.T) {
	cases := []struct {
		g    FieldGate
		v    uint64
		want bool
	}{
		{FieldGate{Op: GateEq, Value: 5}, 5, true},
		{FieldGate{Op: GateEq, Value: 5}, 6, false},
		{FieldGate{Op: GateNe, Value: 5}, 6, true},
		{FieldGate{Op: GateLt, Value: 5}, 4, true},
		{FieldGate{Op: GateGt, Value: 5}, 6, true},
		{FieldGate{Op: GateInRange, Value: 2, Max: 4}, 3, true},
		{FieldGate{Op: GateInRange, Value: 2, Max: 4}, 5, false},
		{FieldGate{Op: GateNonZero}, 1, true},
		{FieldGate{Op: GateNonZero}, 0, false},
	}
	for i, tc := range cases {
		if got := tc.g.Eval(tc.v); got != tc.want {
			t.Errorf("case %d: Eval(%d) = %v, want %v", i, tc.v, got, tc.want)
		}
	}
}

func TestCmdValueEncoding(t *testing.T) {
	h := fullCorpus.Handler("cec")
	c := h.CmdByName("CEC_TRANSMIT")
	v := h.CmdValue(c, fullCorpus.Index.Sizeof)
	if ccode.IOCNr(v) != uint64(c.NR) || ccode.IOCDir(v) != 3 {
		t.Fatalf("bad CEC_TRANSMIT encoding %#x", v)
	}
	plain := Cmd{Name: "X", NR: 42, Plain: true}
	if h.CmdValue(&plain, nil) != 42 {
		t.Fatal("plain cmd value must be the raw NR")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := Build(TestConfig()), Build(TestConfig())
	if len(a.Handlers) != len(b.Handlers) {
		t.Fatal("nondeterministic handler count")
	}
	for i := range a.Handlers {
		if a.Handlers[i].Name != b.Handlers[i].Name {
			t.Fatalf("nondeterministic order at %d: %s vs %s",
				i, a.Handlers[i].Name, b.Handlers[i].Name)
		}
		sa := RenderC(a.Handlers[i])
		sb := RenderC(b.Handlers[i])
		if sa != sb {
			t.Fatalf("nondeterministic render for %s", a.Handlers[i].Name)
		}
	}
}

func TestQuickGenDriverValid(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		name := "q" + randName(seed)
		h := genDriver(name, 1+int(n%20), Quirk(seed%512))
		if len(h.Cmds) == 0 {
			return false
		}
		// Unique command names and NRs.
		seen := map[string]bool{}
		for _, c := range h.Cmds {
			if seen[c.Name] {
				return false
			}
			seen[c.Name] = true
		}
		// Renders and the oracle spec parses.
		src := RenderC(h)
		if len(src) == 0 {
			return false
		}
		spec := OracleSpec(h)
		text := syzlang.Format(spec)
		_, errs := syzlang.Parse(text)
		return len(errs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randName(seed uint64) string {
	const chars = "abcdefghijklmnopqrstuvwxyz"
	var b strings.Builder
	for i := 0; i < 6; i++ {
		seed = seed*6364136223846793005 + 1
		b.WriteByte(chars[seed%26])
	}
	return b.String()
}
