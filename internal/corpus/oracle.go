package corpus

import (
	"fmt"
	"strings"

	"kernelgpt/internal/syzlang"
)

// Oracle derives specifications from the ground-truth model. It has
// two uses: producing the reference ("perfect") specification each
// generator is audited against (§5.1.3), and producing the existing
// human-written Syzkaller suite (the paper's first baseline), which
// covers only the commands listed in Handler.SyzkallerCmds.

// SizeofFunc reports the byte size of a payload struct by name.
type SizeofFunc func(structName string) int

// OracleSpec returns the complete, correct specification for a
// handler: every command, exact identifier values (via macro names),
// exact payload layouts including len-relations, ranges, out fields,
// and resource dependencies.
func OracleSpec(h *Handler) *syzlang.File {
	g := specGen{h: h}
	return g.generate(allCmdNames(h), true)
}

// SyzkallerSpec returns the existing human-written suite for the
// handler: only the commands in SyzkallerCmds, but those are fully
// correct (they were written by experts). Returns nil when the
// handler has no existing descriptions. For sockets, integer-payload
// options are folded into a single syscall using a flags value list —
// the counting style §5.2.2 attributes to the human suite.
func SyzkallerSpec(h *Handler) *syzlang.File {
	if h.SyzkallerCmds == nil && !h.SyzkallerComplete {
		return nil
	}
	names := h.SyzkallerCmds
	if h.SyzkallerComplete {
		names = allCmdNames(h)
	}
	g := specGen{h: h, foldIntOpts: h.Kind == KindSocket}
	return g.generate(names, false)
}

func allCmdNames(h *Handler) []string {
	names := make([]string, len(h.Cmds))
	for i := range h.Cmds {
		names[i] = h.Cmds[i].Name
	}
	return names
}

type specGen struct {
	h           *Handler
	foldIntOpts bool
	file        *syzlang.File
	needStructs map[string]bool
}

func (g *specGen) generate(cmdNames []string, full bool) *syzlang.File {
	g.file = &syzlang.File{}
	g.needStructs = map[string]bool{}
	h := g.h
	if h.Kind == KindSocket {
		g.genSocket(cmdNames, full)
	} else {
		g.genDriver(cmdNames)
	}
	g.emitStructs()
	return g.file
}

func (g *specGen) genDriver(cmdNames []string) {
	h := g.h
	res := h.FDResource()
	g.file.Resources = append(g.file.Resources, &syzlang.ResourceDef{Name: res, Base: "fd"})
	if h.Parent == "" {
		g.file.Syscalls = append(g.file.Syscalls, &syzlang.SyscallDef{
			CallName: "openat",
			Variant:  h.Ident(),
			Args: []*syzlang.Field{
				field("fd", "const[AT_FDCWD]"),
				field("file", fmt.Sprintf("ptr[in, string[%q]]", h.DevPath)),
				field("flags", "const[O_RDWR]"),
				field("mode", "const[0]"),
			},
			Ret: res,
		})
	}
	want := toSet(cmdNames)
	for i := range h.Cmds {
		c := &h.Cmds[i]
		if !want[c.Name] {
			continue
		}
		call := &syzlang.SyscallDef{
			CallName: "ioctl",
			Variant:  c.Name,
			Args: []*syzlang.Field{
				field("fd", res),
				field("cmd", fmt.Sprintf("const[%s]", c.Name)),
			},
		}
		switch {
		case c.Arg != "":
			call.Args = append(call.Args, field("arg", fmt.Sprintf("ptr[%s, %s]", dirOf(c.Dir), c.Arg)))
			g.needStructs[c.Arg] = true
		case c.ArgInt:
			call.Args = append(call.Args, field("arg", "ptr[in, int32]"))
		}
		if c.MakesRes != "" {
			call.Ret = "fd_" + c.MakesRes
		}
		g.file.Syscalls = append(g.file.Syscalls, call)
	}
}

func dirOf(d ArgDir) string {
	if s := d.String(); s != "none" {
		return s
	}
	return "in"
}

func (g *specGen) genSocket(cmdNames []string, full bool) {
	h := g.h
	si := &h.Socket
	res := "sock_" + h.Ident()
	g.file.Resources = append(g.file.Resources, &syzlang.ResourceDef{Name: res, Base: "fd"})
	g.file.Syscalls = append(g.file.Syscalls, &syzlang.SyscallDef{
		CallName: "socket",
		Variant:  h.Ident(),
		Args: []*syzlang.Field{
			field("domain", fmt.Sprintf("const[%s]", si.Domain)),
			field("type", fmt.Sprintf("const[%d]", si.TypeVal)),
			field("proto", fmt.Sprintf("const[%d]", si.Protocol)),
		},
		Ret: res,
	})
	want := toSet(cmdNames)
	var foldable []string
	for i := range h.Cmds {
		c := &h.Cmds[i]
		if !want[c.Name] {
			continue
		}
		if g.foldIntOpts && (c.ArgInt || (c.Arg == "" && !c.ArgInt)) {
			foldable = append(foldable, c.Name)
			continue
		}
		g.file.Syscalls = append(g.file.Syscalls, g.sockoptCall(res, c))
	}
	if len(foldable) > 0 {
		// Single folded syscall with a flags list, Syzkaller style.
		flagsName := h.Ident() + "_opt_flags"
		vals := make([]syzlang.FlagValue, len(foldable))
		for i, n := range foldable {
			vals[i] = syzlang.FlagValue{Name: n}
		}
		g.file.Flags = append(g.file.Flags, &syzlang.FlagsDef{Name: flagsName, Values: vals})
		g.file.Syscalls = append(g.file.Syscalls, &syzlang.SyscallDef{
			CallName: "setsockopt",
			Variant:  h.Ident() + "_int",
			Args: []*syzlang.Field{
				field("fd", res),
				field("level", fmt.Sprintf("const[%s]", si.Level)),
				field("optname", fmt.Sprintf("flags[%s]", flagsName)),
				field("optval", "ptr[in, int32]"),
				field("optlen", "len[optval, int32]"),
			},
		})
	}
	// Non-sockopt calls: the oracle describes all of them; the human
	// suite only the ones listed in SyzkallerCalls (or all, when the
	// handler is marked complete).
	humanCalls := map[SockCallKind]bool{}
	for _, k := range h.SyzkallerCalls {
		humanCalls[k] = true
	}
	for i := range si.Calls {
		sc := &si.Calls[i]
		if full || g.h.SyzkallerComplete || humanCalls[sc.Kind] {
			g.file.Syscalls = append(g.file.Syscalls, g.sockCall(res, sc))
		}
	}
}

func (g *specGen) sockoptCall(res string, c *Cmd) *syzlang.SyscallDef {
	call := &syzlang.SyscallDef{
		CallName: "setsockopt",
		Variant:  c.Name,
		Args: []*syzlang.Field{
			field("fd", res),
			field("level", fmt.Sprintf("const[%s]", g.h.Socket.Level)),
			field("optname", fmt.Sprintf("const[%s]", c.Name)),
		},
	}
	switch {
	case c.Arg != "":
		call.Args = append(call.Args,
			field("optval", fmt.Sprintf("ptr[%s, %s]", dirOf(c.Dir), c.Arg)),
			field("optlen", "len[optval, int32]"))
		g.needStructs[c.Arg] = true
	case c.ArgInt:
		call.Args = append(call.Args,
			field("optval", "ptr[in, int32]"),
			field("optlen", "len[optval, int32]"))
	default:
		call.Args = append(call.Args,
			field("optval", "ptr[in, array[int8]]"),
			field("optlen", "len[optval, int32]"))
	}
	return call
}

func (g *specGen) sockCall(res string, sc *SockCall) *syzlang.SyscallDef {
	h := g.h
	call := &syzlang.SyscallDef{
		CallName: sc.Kind.String(),
		Variant:  h.Ident(),
		Args:     []*syzlang.Field{field("fd", res)},
	}
	if sc.Addr != "" {
		g.needStructs[sc.Addr] = true
	}
	switch sc.Kind {
	case SockBind, SockConnect:
		call.Args = append(call.Args,
			field("addr", fmt.Sprintf("ptr[in, %s]", sc.Addr)),
			field("addrlen", "len[addr, int32]"))
	case SockSendto:
		call.Args = append(call.Args,
			field("buf", "ptr[in, array[int8]]"),
			field("len", "len[buf, intptr]"),
			field("f", "const[0]"),
			field("addr", fmt.Sprintf("ptr[in, %s]", sc.Addr)),
			field("addrlen", "len[addr, int32]"))
	case SockRecvfrom:
		call.Args = append(call.Args,
			field("buf", "ptr[out, array[int8]]"),
			field("len", "len[buf, intptr]"),
			field("f", "const[0]"),
			field("addr", fmt.Sprintf("ptr[in, %s]", sc.Addr)),
			field("addrlen", "len[addr, int32]"))
	case SockListen:
		call.Args = append(call.Args, field("backlog", "int32[0:128]"))
	case SockAccept:
		call.Args = append(call.Args,
			field("peer", "ptr[out, array[int8]]"),
			field("peerlen", "len[peer, int32]"))
		call.Ret = res
	case SockSendmsg, SockRecvmsg:
		dir := "in"
		if sc.Kind == SockRecvmsg {
			dir = "out"
		}
		call.Args = append(call.Args,
			field("msg", fmt.Sprintf("ptr[%s, array[int8]]", dir)),
			field("f", "const[0]"))
	}
	return call
}

// emitStructs converts every referenced StructModel (transitively) to
// syzlang struct definitions.
func (g *specGen) emitStructs() {
	done := map[string]bool{}
	for {
		progressed := false
		for name := range g.needStructs {
			if done[name] {
				continue
			}
			done[name] = true
			progressed = true
			sm := g.h.StructByName(name)
			if sm == nil {
				continue
			}
			g.file.Structs = append(g.file.Structs, g.structDef(sm))
		}
		if !progressed {
			break
		}
	}
	// Deterministic order by name.
	sortStructs(g.file.Structs)
}

func sortStructs(s []*syzlang.StructDef) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].Name > s[j].Name; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func (g *specGen) structDef(sm *StructModel) *syzlang.StructDef {
	def := &syzlang.StructDef{Name: sm.Name}
	for _, f := range sm.Fields {
		def.Fields = append(def.Fields, g.fieldDef(sm, f))
	}
	return def
}

func (g *specGen) fieldDef(sm *StructModel, f FieldModel) *syzlang.Field {
	var typ string
	base := syzIntType(f.CType)
	if g.h.Kind == KindSocket && f.Name == "family" && f.Array == 0 {
		// Address-family fields must carry the domain constant for the
		// kernel's sockaddr validation to pass; expert specs (and the
		// analysis LLM, which sees the bind handler's check) know this.
		return field(f.Name, fmt.Sprintf("const[%s, %s]", g.h.Socket.Domain, base))
	}
	switch {
	case strings.HasPrefix(f.CType, "struct "):
		inner := strings.TrimPrefix(f.CType, "struct ")
		g.needStructs[inner] = true
		if f.Array > 0 {
			typ = fmt.Sprintf("array[%s, %d]", inner, f.Array)
		} else if f.Array < 0 {
			typ = fmt.Sprintf("array[%s]", inner)
		} else {
			typ = inner
		}
	case f.LenOf != "":
		typ = fmt.Sprintf("len[%s, %s]", f.LenOf, base)
	case f.Array > 0:
		typ = fmt.Sprintf("array[%s, %d]", base, f.Array)
	case f.Array < 0:
		typ = fmt.Sprintf("array[%s]", base)
	case f.Ranged:
		typ = fmt.Sprintf("%s[%d:%d]", base, f.Min, f.Max)
	default:
		typ = base
	}
	fld := field(f.Name, typ)
	if f.Out {
		fld.Attrs = []string{"out"}
	}
	return fld
}

// syzIntType maps a C scalar type to the syzlang int type.
func syzIntType(ctype string) string {
	switch strings.TrimSpace(ctype) {
	case "char", "__u8", "__s8", "u8", "s8":
		return "int8"
	case "__u16", "__s16", "u16", "s16", "short":
		return "int16"
	case "__u64", "__s64", "u64", "s64", "long", "unsigned long":
		return "int64"
	default:
		return "int32"
	}
}

func field(name, typ string) *syzlang.Field {
	te, err := syzlang.ParseTypeExpr(typ)
	if err != nil {
		panic(fmt.Sprintf("oracle: bad type %q: %v", typ, err))
	}
	return &syzlang.Field{Name: name, Type: te}
}

func toSet(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}
