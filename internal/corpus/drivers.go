package corpus

// Hand-modeled drivers: the 28 valid drivers of Table 5 (the
// SyzDescribe evaluation set), plus the "new spec" drivers carrying
// the Table 4 bugs (device mapper, CEC, UBI, DVB, the posix clock and
// the USB gadget endpoint driver). Command counts approximate the
// paper's #Sys columns; quirks encode each driver's real-world
// implementation pattern.

// table5Config drives construction of one Table 5 driver.
type table5Config struct {
	name string
	// ncmds approximates KernelGPT's described syscall count minus
	// the openat.
	ncmds int
	// syzN is the number of commands the existing Syzkaller suite
	// describes: -1 = all (complete), 0 = openat only, n>0 = first n.
	syzN int
	// indirect marks how many trailing commands dispatch through the
	// dynamic registry (invisible to both generators; the human suite
	// can still describe them).
	indirect int
	quirks   Quirk
}

var table5Configs = []table5Config{
	// btrfs-control switches on _IOC_NR: the static baseline extracts
	// the raw nr labels as command values, so its spec never reaches
	// the two planted btrfs bugs (Table 4's exclusivity).
	{name: "btrfs-control", ncmds: 4, syzN: 0, quirks: QuirkIOCNR},
	{name: "capi20", ncmds: 13, syzN: 12, quirks: QuirkDispatch},
	{name: "controlC0", ncmds: 14, syzN: -1, quirks: QuirkIOCNR},
	{name: "fuse", ncmds: 2, syzN: 1, quirks: 0},
	{name: "hpet", ncmds: 6, syzN: 0, quirks: QuirkLenRelation},
	{name: "i2c-0", ncmds: 9, syzN: 8, quirks: QuirkDispatch},
	// kvm gets its secondary handlers attached in buildKVM.
	{name: "kvm", ncmds: 24, syzN: -1, quirks: QuirkDispatch},
	{name: "loop-control", ncmds: 3, syzN: -1, quirks: 0},
	{name: "loop0", ncmds: 11, syzN: -1, quirks: 0},
	{name: "mISDNtimer", ncmds: 2, syzN: -1, indirect: 1, quirks: 0},
	{name: "nbd0", ncmds: 11, syzN: 10, quirks: QuirkDispatch},
	{name: "nvram", ncmds: 5, syzN: 0, quirks: 0},
	{name: "ppp", ncmds: 33, syzN: 23, quirks: QuirkDispatch | QuirkLenRelation},
	{name: "ptmx", ncmds: 29, syzN: -1, indirect: 8, quirks: 0},
	{name: "qat_adf_ctl", ncmds: 5, syzN: 5, quirks: QuirkCharDev},
	{name: "rfkill", ncmds: 2, syzN: 2, quirks: 0},
	{name: "rtc0", ncmds: 16, syzN: 14, quirks: 0},
	{name: "sg0", ncmds: 42, syzN: -1, indirect: 6, quirks: QuirkDispatch},
	{name: "snapshot", ncmds: 14, syzN: 12, quirks: QuirkLenRelation},
	{name: "sr0", ncmds: 57, syzN: 0, quirks: QuirkDispatch},
	{name: "timer", ncmds: 16, syzN: 15, quirks: QuirkIOCNR},
	{name: "udmabuf", ncmds: 3, syzN: 3, quirks: 0},
	{name: "uinput", ncmds: 20, syzN: 19, quirks: QuirkLenRelation},
	{name: "usbmon0", ncmds: 8, syzN: 8, quirks: 0},
	{name: "vhost-net", ncmds: 21, syzN: -1, indirect: 6, quirks: QuirkDispatch},
	{name: "vhost-vsock", ncmds: 21, syzN: 2, quirks: QuirkDispatch},
	{name: "vmci", ncmds: 17, syzN: 16, quirks: QuirkLenRelation},
	{name: "vsock", ncmds: 1, syzN: 0, quirks: 0},
}

// Table5Names lists the Table 5 driver names in paper order
// (excluding the two invalid ones, ashmem and fd#, which Linux 6 no
// longer supports).
func Table5Names() []string {
	names := make([]string, len(table5Configs))
	for i, c := range table5Configs {
		names[i] = c.name
	}
	return names
}

// mmapDrivers are the hand-modeled drivers with a real mmap surface
// (packet-capture rings, scatter-gather windows, snapshot images) and
// the block counts of their fault/validate paths.
var mmapDrivers = map[string]int{
	"usbmon0":  6,
	"sg0":      5,
	"snapshot": 4,
	"kvm_vm":   6,
}

func buildTable5Drivers() []*Handler {
	var out []*Handler
	for _, cfg := range table5Configs {
		h := genDriver(cfg.name, cfg.ncmds, cfg.quirks)
		if n := mmapDrivers[cfg.name]; n > 0 {
			h.MmapBlocks = n
		}
		if cfg.quirks.Has(QuirkDispatch) {
			// One delegation hop: within reach of the static
			// baseline's depth limit (its Table 5 numbers show it
			// analyzes these drivers).
			h.DispatchDepth = 1
		}
		for i := 0; i < cfg.indirect && i < len(h.Cmds); i++ {
			h.Cmds[len(h.Cmds)-1-i].Indirect = true
		}
		switch {
		case cfg.syzN < 0:
			withSyzkallerCoverage(h, -1)
		case cfg.syzN == 0:
			h.SyzkallerCmds = []string{} // openat-only description
		default:
			withSyzkallerCoverage(h, cfg.syzN)
		}
		if cfg.name == "kvm" {
			out = append(out, buildKVM(h)...)
			continue
		}
		if cfg.name == "btrfs-control" {
			attachBtrfsBugs(h)
		}
		if cfg.name == "nbd0" {
			// The block-layer bug hides behind a second delegation hop
			// the static baseline cannot follow.
			h.DispatchDepth = 2
			attachNbdBug(h)
		}
		out = append(out, h)
	}
	return out
}

// buildKVM attaches the kvm_vm and kvm_vcpu secondary operation
// handlers, whose discovery as dependencies gives KernelGPT the large
// coverage win the paper reports (§5.2.1).
func buildKVM(kvm *Handler) []*Handler {
	vm := genDriver("kvm_vm", 23, QuirkDispatch)
	vm.MmapBlocks = mmapDrivers["kvm_vm"] // guest memory regions
	vcpu := genDriver("kvm_vcpu", 20, 0)
	vm.Parent, vm.CreatedBy = "kvm", "KVM_CREATE_VM"
	vm.DevPath, vm.MiscName = "", ""
	vcpu.Parent, vcpu.CreatedBy = "kvm_vm", "KVM_CREATE_VCPU"
	vcpu.DevPath, vcpu.MiscName = "", ""

	kvm.Cmds = append(kvm.Cmds, Cmd{
		Name: "KVM_CREATE_VM", NR: 100, Dir: DirNone,
		Blocks: 12, MakesRes: "kvm_vm",
		Comment: "creates a VM file descriptor; subsequent VM ioctls use it",
	})
	vm.Cmds = append(vm.Cmds, Cmd{
		Name: "KVM_CREATE_VCPU", NR: 101, Dir: DirNone,
		Blocks: 10, MakesRes: "kvm_vcpu",
		Comment: "creates a VCPU file descriptor for this VM",
	})
	// The human suite knows about the secondary handlers too (kvm is
	// the best-described driver in Syzkaller), but covers only some
	// of the vcpu commands.
	withSyzkallerCoverage(vm, -1)
	withSyzkallerCoverage(vcpu, 8)
	return []*Handler{kvm, vm, vcpu}
}

func attachBtrfsBugs(h *Handler) {
	// Both bugs live behind commands the existing (openat-only) suite
	// never issues — the "incomplete specification" category of
	// Table 4.
	if len(h.Cmds) < 2 {
		return
	}
	h.Cmds[0].Bug = &Bug{
		Title: "kernel BUG in btrfs_get_root_ref", Class: BugKernelBUG,
		Cmd: h.Cmds[0].Name, CVE: "CVE-2024-23850", Confirmed: true, Fixed: true,
	}
	if h.Cmds[0].Arg != "" {
		if sm := h.StructByName(h.Cmds[0].Arg); sm != nil {
			f := firstScalarField(sm)
			if f != "" {
				h.Cmds[0].Bug.TriggerField = f
				h.Cmds[0].Bug.Trigger = FieldGate{Field: f, Op: GateGt, Value: 1 << 20}
			}
		}
	}
	h.Cmds[1].Bug = &Bug{
		Title: "general protection fault in btrfs_update_reloc_root", Class: BugGPF,
		Cmd: h.Cmds[1].Name, Confirmed: true,
		PriorCmds: []string{h.Cmds[0].Name},
	}
}

func attachNbdBug(h *Handler) {
	// The block-layer throttling hang surfaces through the one nbd
	// command the human suite does not describe.
	last := &h.Cmds[len(h.Cmds)-1]
	last.Bug = &Bug{
		Title: "INFO: task hung in __rq_qos_throttle", Class: BugTaskHung,
		Cmd: last.Name,
	}
}

func firstScalarField(sm *StructModel) string {
	for _, f := range sm.Fields {
		if f.Array == 0 && f.LenOf == "" && !f.Out && !f.Ranged {
			return f.Name
		}
	}
	return ""
}
