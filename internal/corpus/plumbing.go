package corpus

import (
	"fmt"

	"kernelgpt/internal/syzlang"
)

// fd-plumbing and memory-mapping specifications. The virtual kernel
// models dup/pipe/epoll fd plumbing and an mmap/munmap region model
// (internal/vkernel); these specs are the userspace surface that
// reaches it. They are deliberately separate from OracleSpec — the
// paper's suites stay bit-for-bit identical — and are merged in by
// callers that want the expanded scenario space (syzfuzz -plumbing,
// the fdplumbing example, the adaptive-scheduler benchmarks).

// BuiltinPlumbingSpec returns the handler-independent plumbing
// surface: pipe creation and I/O, epoll instance creation and wait,
// and the shared flags/resource declarations the per-handler specs
// reference (epoll_ctl_ops, mmap_prot, the mapping base resource).
func BuiltinPlumbingSpec() *syzlang.File {
	f := &syzlang.File{}
	f.Resources = append(f.Resources,
		&syzlang.ResourceDef{Name: "fd_pipe", Base: "fd"},
		&syzlang.ResourceDef{Name: "fd_epoll", Base: "fd"},
	)
	f.Flags = append(f.Flags,
		&syzlang.FlagsDef{Name: "epoll_ctl_ops", Values: []syzlang.FlagValue{
			{Name: "EPOLL_CTL_ADD"}, {Name: "EPOLL_CTL_DEL"}, {Name: "EPOLL_CTL_MOD"},
		}},
		&syzlang.FlagsDef{Name: "mmap_prot", Values: []syzlang.FlagValue{
			{Name: "PROT_READ"}, {Name: "PROT_WRITE"}, {Name: "PROT_EXEC"},
		}},
	)
	f.Syscalls = append(f.Syscalls,
		&syzlang.SyscallDef{
			CallName: "pipe", Variant: "fuzz",
			Args: []*syzlang.Field{field("flags", "const[0]")},
			Ret:  "fd_pipe",
		},
		&syzlang.SyscallDef{
			CallName: "read", Variant: "pipe",
			Args: []*syzlang.Field{
				field("fd", "fd_pipe"),
				field("buf", "ptr[out, array[int8]]"),
				field("count", "len[buf, intptr]"),
			},
		},
		&syzlang.SyscallDef{
			CallName: "write", Variant: "pipe",
			Args: []*syzlang.Field{
				field("fd", "fd_pipe"),
				field("buf", "ptr[in, array[int8]]"),
				field("count", "len[buf, intptr]"),
			},
		},
		&syzlang.SyscallDef{
			CallName: "epoll_create", Variant: "fuzz",
			Args: []*syzlang.Field{field("size", "const[1]")},
			Ret:  "fd_epoll",
		},
		&syzlang.SyscallDef{
			CallName: "epoll_wait", Variant: "fuzz",
			Args: []*syzlang.Field{
				field("epfd", "fd_epoll"),
				field("events", "ptr[out, array[int8]]"),
				field("maxevents", "len[events, int32]"),
				field("timeout", "const[0]"),
			},
		},
		// The builtin fds are themselves dup-able and watchable.
		&syzlang.SyscallDef{
			CallName: "epoll_ctl", Variant: "pipe",
			Args: []*syzlang.Field{
				field("epfd", "fd_epoll"),
				field("op", "flags[epoll_ctl_ops]"),
				field("fd", "fd_pipe"),
				field("ev", "ptr[in, array[int8]]"),
			},
		},
		&syzlang.SyscallDef{
			CallName: "dup", Variant: "pipe",
			Args: []*syzlang.Field{field("oldfd", "fd_pipe")},
			Ret:  "fd_pipe",
		},
	)
	return f
}

// PlumbingSpec returns the fd-plumbing surface for one handler:
// dup$<h> and epoll_ctl$<h> over the handler's fd resource, plus
// mmap$<h>/munmap$<h> with a per-handler mapping resource when the
// handler models an mmap region. The returned file references the
// declarations of BuiltinPlumbingSpec; merge both (PlumbingSuite does).
// Handlers without their own fd resource (secondary handlers reached
// only through a parent) still get the surface — their fds come from
// the parent's creating command.
func PlumbingSpec(h *Handler) *syzlang.File {
	f := &syzlang.File{}
	res := h.FDResource()
	if h.Kind == KindSocket {
		res = "sock_" + h.Ident()
	}
	// Declare the fd resource under the same name the handler's
	// primary spec uses; MergeDedup keeps one definition when both are
	// present, and a standalone plumbing file stays self-consistent.
	f.Resources = append(f.Resources, &syzlang.ResourceDef{Name: res, Base: "fd"})
	f.Syscalls = append(f.Syscalls,
		&syzlang.SyscallDef{
			CallName: "dup", Variant: h.Ident(),
			Args: []*syzlang.Field{field("oldfd", res)},
			Ret:  res,
		},
		&syzlang.SyscallDef{
			CallName: "epoll_ctl", Variant: h.Ident(),
			Args: []*syzlang.Field{
				field("epfd", "fd_epoll"),
				field("op", "flags[epoll_ctl_ops]"),
				field("fd", res),
				field("ev", "ptr[in, array[int8]]"),
			},
		},
	)
	if h.MmapBlocks > 0 {
		mres := "mapping_" + h.Ident()
		f.Resources = append(f.Resources, &syzlang.ResourceDef{Name: mres, Base: "intptr"})
		f.Syscalls = append(f.Syscalls,
			&syzlang.SyscallDef{
				CallName: "mmap", Variant: h.Ident(),
				Args: []*syzlang.Field{
					field("addr", "const[0]"),
					field("len", "intptr[0:2097152]"),
					field("prot", "flags[mmap_prot]"),
					field("flags", "const[MAP_SHARED]"),
					field("fd", res),
					field("offset", "const[0]"),
				},
				Ret: mres,
			},
			&syzlang.SyscallDef{
				CallName: "munmap", Variant: h.Ident(),
				Args: []*syzlang.Field{
					field("addr", mres),
					field("len", "intptr"),
				},
			},
		)
	}
	return f
}

// PlumbingSuite merges the builtin plumbing spec with the per-handler
// plumbing surface of every loaded handler — the expanded scenario
// space a campaign opts into alongside its primary suite.
func (c *Corpus) PlumbingSuite() *syzlang.File {
	files := []*syzlang.File{BuiltinPlumbingSpec()}
	for _, h := range c.Handlers {
		if h.Loaded {
			files = append(files, PlumbingSpec(h))
		}
	}
	return syzlang.MergeDedup(files...)
}

// PlumbingSpecFor returns the merged builtin + per-handler plumbing
// surface for an explicit handler set (the bundled-driver benchmarks
// fuzz two handlers, not the whole corpus).
func (c *Corpus) PlumbingSpecFor(names ...string) (*syzlang.File, error) {
	files := []*syzlang.File{BuiltinPlumbingSpec()}
	for _, n := range names {
		h := c.Handler(n)
		if h == nil {
			return nil, fmt.Errorf("no handler %q", n)
		}
		files = append(files, PlumbingSpec(h))
	}
	return syzlang.MergeDedup(files...), nil
}
