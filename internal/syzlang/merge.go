package syzlang

// MergeDedup combines description files into one, keeping the first
// occurrence of every named declaration. Suites assembled from
// multiple generators overlap on handlers the human suite partially
// covers; Syzkaller resolves such collisions by name identity, which
// this mirrors.
func MergeDedup(files ...*File) *File {
	out := &File{}
	seenRes := map[string]bool{}
	seenCall := map[string]bool{}
	seenType := map[string]bool{}
	seenFlags := map[string]bool{}
	for _, f := range files {
		if f == nil {
			continue
		}
		for _, r := range f.Resources {
			if !seenRes[r.Name] {
				seenRes[r.Name] = true
				out.Resources = append(out.Resources, r)
			}
		}
		for _, s := range f.Syscalls {
			if !seenCall[s.Name()] {
				seenCall[s.Name()] = true
				out.Syscalls = append(out.Syscalls, s)
			}
		}
		for _, s := range f.Structs {
			if !seenType[s.Name] {
				seenType[s.Name] = true
				out.Structs = append(out.Structs, s)
			}
		}
		for _, u := range f.Unions {
			if !seenType[u.Name] {
				seenType[u.Name] = true
				out.Unions = append(out.Unions, u)
			}
		}
		for _, fl := range f.Flags {
			if !seenFlags[fl.Name] {
				seenFlags[fl.Name] = true
				out.Flags = append(out.Flags, fl)
			}
		}
	}
	return out
}
