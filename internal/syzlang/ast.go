package syzlang

import "strings"

// File is a parsed syzlang description file.
type File struct {
	Resources []*ResourceDef
	Syscalls  []*SyscallDef
	Structs   []*StructDef
	Unions    []*UnionDef
	Flags     []*FlagsDef
}

// ResourceDef declares a resource kind, e.g. "resource fd_dm[fd]".
type ResourceDef struct {
	Name string
	Base string // underlying type or parent resource name
	Pos  Pos
}

// SyscallDef describes one syscall variant, e.g.
// "ioctl$DM_DEV_CREATE(fd fd_dm, cmd const[DM_DEV_CREATE], arg ptr[in, dm_ioctl]) fd_dm".
type SyscallDef struct {
	CallName string // base syscall, e.g. "ioctl"
	Variant  string // after '$', may be empty
	Args     []*Field
	Ret      string // resource name or empty
	Pos      Pos
}

// Name returns the full syscall name including the variant suffix.
func (s *SyscallDef) Name() string {
	if s.Variant == "" {
		return s.CallName
	}
	return s.CallName + "$" + s.Variant
}

// Field is a named, typed slot: a syscall argument or a struct/union
// member.
type Field struct {
	Name string
	Type *TypeExpr
	// Attrs holds trailing parenthesized attributes such as (out) on
	// struct fields.
	Attrs []string
	Pos   Pos
}

// StructDef describes a struct type: "name { fields... }".
type StructDef struct {
	Name   string
	Fields []*Field
	// Attrs holds trailing attributes such as [packed].
	Attrs []string
	Pos   Pos
}

// UnionDef describes a union type: "name [ options... ]".
type UnionDef struct {
	Name   string
	Fields []*Field
	Pos    Pos
}

// FlagsDef describes a flag-set definition: "name = A, B, C".
type FlagsDef struct {
	Name   string
	Values []FlagValue
	Pos    Pos
}

// FlagValue is one member of a flags definition: either a named
// constant or an integer literal.
type FlagValue struct {
	Name  string // empty for integer literals
	Value uint64 // used when Name is empty
}

// TypeExpr is a (possibly parameterized) type expression such as
// int32, const[DM_VERSION], ptr[in, dm_ioctl], array[int8, 16],
// string["/dev/msm"], int32[0:3], len[devices, int32], flags[f, int32].
type TypeExpr struct {
	Ident string
	// Args holds bracketed arguments; each is a type expression,
	// an integer, a string, or a range.
	Args []*TypeArg
	Pos  Pos
}

// TypeArg is one bracketed argument of a type expression.
type TypeArg struct {
	// Exactly one of the following is meaningful.
	Type     *TypeExpr // nested type or bare identifier
	HasInt   bool
	Int      uint64
	HasStr   bool
	Str      string
	HasRange bool
	Min, Max int64
	Pos      Pos
}

// String renders the type expression in canonical syzlang syntax.
func (t *TypeExpr) String() string {
	if t == nil {
		return "<nil>"
	}
	if len(t.Args) == 0 {
		return t.Ident
	}
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return t.Ident + "[" + strings.Join(parts, ", ") + "]"
}

// String renders the type argument in canonical syntax.
func (a *TypeArg) String() string {
	switch {
	case a.HasRange:
		return itoa(a.Min) + ":" + itoa(a.Max)
	case a.HasInt:
		return utoa(a.Int)
	case a.HasStr:
		return "\"" + a.Str + "\""
	case a.Type != nil:
		return a.Type.String()
	}
	return "?"
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + utoa(uint64(-v))
	}
	return utoa(uint64(v))
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Merge appends the contents of other into f.
func (f *File) Merge(other *File) {
	if other == nil {
		return
	}
	f.Resources = append(f.Resources, other.Resources...)
	f.Syscalls = append(f.Syscalls, other.Syscalls...)
	f.Structs = append(f.Structs, other.Structs...)
	f.Unions = append(f.Unions, other.Unions...)
	f.Flags = append(f.Flags, other.Flags...)
}

// Clone returns a deep copy of the file.
func (f *File) Clone() *File {
	c := &File{}
	for _, r := range f.Resources {
		rc := *r
		c.Resources = append(c.Resources, &rc)
	}
	for _, s := range f.Syscalls {
		sc := *s
		sc.Args = cloneFields(s.Args)
		c.Syscalls = append(c.Syscalls, &sc)
	}
	for _, s := range f.Structs {
		sc := *s
		sc.Fields = cloneFields(s.Fields)
		c.Structs = append(c.Structs, &sc)
	}
	for _, u := range f.Unions {
		uc := *u
		uc.Fields = cloneFields(u.Fields)
		c.Unions = append(c.Unions, &uc)
	}
	for _, fl := range f.Flags {
		flc := *fl
		flc.Values = append([]FlagValue(nil), fl.Values...)
		c.Flags = append(c.Flags, &flc)
	}
	return c
}

func cloneFields(fields []*Field) []*Field {
	out := make([]*Field, len(fields))
	for i, f := range fields {
		fc := *f
		fc.Type = f.Type.Clone()
		fc.Attrs = append([]string(nil), f.Attrs...)
		out[i] = &fc
	}
	return out
}

// Clone returns a deep copy of the type expression.
func (t *TypeExpr) Clone() *TypeExpr {
	if t == nil {
		return nil
	}
	c := *t
	c.Args = make([]*TypeArg, len(t.Args))
	for i, a := range t.Args {
		ac := *a
		ac.Type = a.Type.Clone()
		c.Args[i] = &ac
	}
	return &c
}
