package syzlang

import (
	"errors"
	"fmt"
	"strings"
)

// ParseError is a structured syntax error with source position.
type ParseError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []Token
	i    int
	errs []error
	file *File
}

// Parse parses syzlang source into a File. On syntax errors it
// recovers to the next line and keeps parsing so that as many errors
// as possible are reported in one pass (this mirrors syz-extract,
// whose batch error output drives the paper's repair loop).
func Parse(src string) (*File, []error) {
	toks, lexErrs := Tokenize(src)
	p := &parser{toks: toks, file: &File{}, errs: lexErrs}
	p.parseFile()
	return p.file, p.errs
}

// MustParse parses src and panics on any error; intended for trusted
// built-in descriptions and tests.
func MustParse(src string) *File {
	f, errs := Parse(src)
	if len(errs) > 0 {
		panic(errors.Join(errs...))
	}
	return f
}

func (p *parser) peek() Token {
	if p.i >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.i]
}

func (p *parser) next() Token {
	t := p.peek()
	if p.i < len(p.toks) {
		p.i++
	}
	return t
}

func (p *parser) at(k TokenKind) bool { return p.peek().Kind == k }

func (p *parser) accept(k TokenKind) (Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return Token{}, false
}

func (p *parser) expect(k TokenKind) Token {
	t := p.peek()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, got %s %q", k, t.Kind, t.Text)
		return Token{Kind: k, Pos: t.Pos}
	}
	return p.next()
}

func (p *parser) errorf(pos Pos, format string, args ...any) {
	p.errs = append(p.errs, &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// syncLine skips tokens until after the next newline, for error
// recovery.
func (p *parser) syncLine() {
	for {
		t := p.next()
		if t.Kind == TokNewline || t.Kind == TokEOF {
			return
		}
	}
}

func (p *parser) parseFile() {
	for {
		switch t := p.peek(); t.Kind {
		case TokEOF:
			return
		case TokNewline:
			p.next()
		case TokIdent:
			p.parseTopLevel()
		default:
			p.errorf(t.Pos, "unexpected %s %q at top level", t.Kind, t.Text)
			p.syncLine()
		}
	}
}

func (p *parser) parseTopLevel() {
	ident := p.next() // TokIdent
	switch {
	case ident.Text == "resource":
		p.parseResource(ident.Pos)
	case p.at(TokLBrace):
		p.parseStruct(ident)
	case p.at(TokEquals):
		p.parseFlags(ident)
	case p.at(TokLParen) || p.at(TokDollar):
		p.parseSyscall(ident)
	case p.at(TokLBrack):
		// Could be a union "name [" — but "name [" is also how a
		// struct-with-attrs line ends; unions are "name [\n fields ]".
		p.parseUnion(ident)
	default:
		p.errorf(ident.Pos, "cannot parse declaration starting with %q", ident.Text)
		p.syncLine()
	}
}

// parseResource handles: resource name[base]
func (p *parser) parseResource(pos Pos) {
	name := p.expect(TokIdent)
	p.expect(TokLBrack)
	base := p.expect(TokIdent)
	p.expect(TokRBrack)
	p.endLine()
	p.file.Resources = append(p.file.Resources, &ResourceDef{
		Name: name.Text, Base: base.Text, Pos: pos,
	})
}

// parseSyscall handles: call[$variant](arg type, ...) [ret]
func (p *parser) parseSyscall(callTok Token) {
	def := &SyscallDef{CallName: callTok.Text, Pos: callTok.Pos}
	if _, ok := p.accept(TokDollar); ok {
		v := p.expect(TokIdent)
		def.Variant = v.Text
	}
	p.expect(TokLParen)
	for !p.at(TokRParen) && !p.at(TokEOF) && !p.at(TokNewline) {
		f := p.parseField()
		if f == nil {
			break
		}
		def.Args = append(def.Args, f)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	p.expect(TokRParen)
	if t, ok := p.accept(TokIdent); ok {
		def.Ret = t.Text
	}
	p.endLine()
	p.file.Syscalls = append(p.file.Syscalls, def)
}

// parseField parses "name type" with optional trailing attributes.
func (p *parser) parseField() *Field {
	name := p.peek()
	if name.Kind != TokIdent {
		p.errorf(name.Pos, "expected field name, got %s %q", name.Kind, name.Text)
		p.syncLine()
		return nil
	}
	p.next()
	typ := p.parseTypeExpr()
	if typ == nil {
		return nil
	}
	f := &Field{Name: name.Text, Type: typ, Pos: name.Pos}
	// Optional attribute list: (out), (in, out), ...
	if p.at(TokLParen) {
		p.next()
		for !p.at(TokRParen) && !p.at(TokEOF) && !p.at(TokNewline) {
			a := p.expect(TokIdent)
			f.Attrs = append(f.Attrs, a.Text)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
		p.expect(TokRParen)
	}
	return f
}

// parseTypeExpr parses ident[args...] where args recurse.
func (p *parser) parseTypeExpr() *TypeExpr {
	t := p.peek()
	if t.Kind != TokIdent {
		p.errorf(t.Pos, "expected type, got %s %q", t.Kind, t.Text)
		p.syncLine()
		return nil
	}
	p.next()
	te := &TypeExpr{Ident: t.Text, Pos: t.Pos}
	if !p.at(TokLBrack) {
		return te
	}
	p.next() // '['
	for !p.at(TokRBrack) && !p.at(TokEOF) && !p.at(TokNewline) {
		arg := p.parseTypeArg()
		if arg == nil {
			return te
		}
		te.Args = append(te.Args, arg)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	p.expect(TokRBrack)
	return te
}

func (p *parser) parseTypeArg() *TypeArg {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.next()
		arg := &TypeArg{HasInt: true, Int: t.Value, Pos: t.Pos}
		// Range: INT ':' INT
		if p.at(TokColon) {
			p.next()
			hi := p.expect(TokInt)
			return &TypeArg{HasRange: true, Min: int64(t.Value), Max: int64(hi.Value), Pos: t.Pos}
		}
		return arg
	case TokString:
		p.next()
		return &TypeArg{HasStr: true, Str: t.Text, Pos: t.Pos}
	case TokIdent:
		te := p.parseTypeExpr()
		if te == nil {
			return nil
		}
		return &TypeArg{Type: te, Pos: t.Pos}
	}
	p.errorf(t.Pos, "expected type argument, got %s %q", t.Kind, t.Text)
	p.syncLine()
	return nil
}

// parseStruct handles:
//
//	name {
//		field type
//		...
//	} [attrs]
func (p *parser) parseStruct(nameTok Token) {
	p.expect(TokLBrace)
	p.endLine()
	def := &StructDef{Name: nameTok.Text, Pos: nameTok.Pos}
	for !p.at(TokRBrace) && !p.at(TokEOF) {
		if _, ok := p.accept(TokNewline); ok {
			continue
		}
		f := p.parseField()
		if f != nil {
			def.Fields = append(def.Fields, f)
		}
		p.endLine()
	}
	p.expect(TokRBrace)
	// Optional trailing attributes: [packed], [align[8]], ...
	if p.at(TokLBrack) {
		p.next()
		for !p.at(TokRBrack) && !p.at(TokEOF) && !p.at(TokNewline) {
			a := p.parseTypeExpr()
			if a == nil {
				break
			}
			def.Attrs = append(def.Attrs, a.String())
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
		p.expect(TokRBrack)
	}
	p.endLine()
	p.file.Structs = append(p.file.Structs, def)
}

// parseUnion handles:
//
//	name [
//		field type
//		...
//	]
func (p *parser) parseUnion(nameTok Token) {
	p.expect(TokLBrack)
	p.endLine()
	def := &UnionDef{Name: nameTok.Text, Pos: nameTok.Pos}
	for !p.at(TokRBrack) && !p.at(TokEOF) {
		if _, ok := p.accept(TokNewline); ok {
			continue
		}
		f := p.parseField()
		if f != nil {
			def.Fields = append(def.Fields, f)
		}
		p.endLine()
	}
	p.expect(TokRBrack)
	p.endLine()
	p.file.Unions = append(p.file.Unions, def)
}

// parseFlags handles: name = A, B, 4, C
func (p *parser) parseFlags(nameTok Token) {
	p.expect(TokEquals)
	def := &FlagsDef{Name: nameTok.Text, Pos: nameTok.Pos}
	for {
		t := p.peek()
		switch t.Kind {
		case TokIdent:
			p.next()
			def.Values = append(def.Values, FlagValue{Name: t.Text})
		case TokInt:
			p.next()
			def.Values = append(def.Values, FlagValue{Value: t.Value})
		default:
			p.errorf(t.Pos, "expected flag value, got %s %q", t.Kind, t.Text)
			p.syncLine()
			p.file.Flags = append(p.file.Flags, def)
			return
		}
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	p.endLine()
	p.file.Flags = append(p.file.Flags, def)
}

// endLine consumes an expected end-of-line (newline or EOF).
func (p *parser) endLine() {
	t := p.peek()
	switch t.Kind {
	case TokNewline:
		p.next()
	case TokEOF:
	case TokRBrace, TokRBrack:
		// Allow a definition's closing token to follow immediately.
	default:
		p.errorf(t.Pos, "expected end of line, got %s %q", t.Kind, t.Text)
		p.syncLine()
	}
}

// ParseTypeExpr parses a standalone type expression like
// "ptr[in, array[int8]]". Used by tests and the repair engine.
func ParseTypeExpr(src string) (*TypeExpr, error) {
	toks, lexErrs := Tokenize(src)
	if len(lexErrs) > 0 {
		return nil, lexErrs[0]
	}
	p := &parser{toks: toks, file: &File{}}
	te := p.parseTypeExpr()
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	if te == nil {
		return nil, fmt.Errorf("empty type expression %q", src)
	}
	return te, nil
}

// FormatErrors renders a list of errors as one newline-separated
// string, convenient for feeding back to the repair LLM.
func FormatErrors(errs []error) string {
	var b strings.Builder
	for i, e := range errs {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}
