package syzlang

import (
	"strings"
	"testing"
)

// validateSrc parses src (must be syntactically clean) and validates
// it against testEnv.
func validateSrc(t *testing.T, src string) []*ValidationError {
	t.Helper()
	f, errs := Parse(src)
	if len(errs) > 0 {
		t.Fatalf("unexpected parse errors: %v", errs)
	}
	return Validate(f, testEnv())
}

func wantErrKind(t *testing.T, errs []*ValidationError, kind ErrKind, ref string) {
	t.Helper()
	for _, e := range errs {
		if e.Kind == kind && (ref == "" || e.Ref == ref) {
			return
		}
	}
	t.Fatalf("missing %s error for %q, got: %v", kind, ref, errs)
}

func TestValidateUndefinedType(t *testing.T) {
	errs := validateSrc(t, "ioctl$X(fd fd, cmd const[1], arg ptr[in, no_such_struct])\n")
	wantErrKind(t, errs, ErrUndefinedType, "no_such_struct")
}

func TestValidateUnknownConst(t *testing.T) {
	errs := validateSrc(t, "ioctl$X(fd fd, cmd const[NO_SUCH_MACRO])\n")
	wantErrKind(t, errs, ErrUnknownConst, "NO_SUCH_MACRO")
}

func TestValidateUnknownSyscall(t *testing.T) {
	errs := validateSrc(t, "frobnicate$X(a int32)\n")
	wantErrKind(t, errs, ErrUnknownSyscall, "frobnicate")
}

func TestValidateUnknownResourceReturn(t *testing.T) {
	errs := validateSrc(t, "openat$x(fd const[AT_FDCWD]) fd_missing\n")
	wantErrKind(t, errs, ErrUnknownResource, "fd_missing")
}

func TestValidateUnusedResource(t *testing.T) {
	errs := validateSrc(t, "resource fd_lonely[fd]\n")
	wantErrKind(t, errs, ErrUnusedResource, "fd_lonely")
}

func TestValidateBadResourceBase(t *testing.T) {
	errs := validateSrc(t, "resource fd_x[nonbase]\nioctl$A(fd fd_x, cmd const[1])\n")
	wantErrKind(t, errs, ErrBadResourceBase, "nonbase")
}

func TestValidateResourceChainBase(t *testing.T) {
	src := `
resource fd_a[fd]
resource fd_b[fd_a]
ioctl$A(fd fd_a, cmd const[1]) fd_b
ioctl$B(fd fd_b, cmd const[2])
`
	if errs := validateSrc(t, src); len(errs) > 0 {
		t.Fatalf("resource chains should validate: %v", errs)
	}
}

func TestValidateBadLenTarget(t *testing.T) {
	src := `
vec {
	count	len[elems, int32]
	other	int32
}
ioctl$V(fd fd, cmd const[1], arg ptr[in, vec])
`
	errs := validateSrc(t, src)
	wantErrKind(t, errs, ErrBadLenTarget, "elems")
}

func TestValidateGoodLenTarget(t *testing.T) {
	src := `
vec {
	count	len[elems, int32]
	elems	array[int64]
}
ioctl$V(fd fd, cmd const[1], arg ptr[in, vec])
`
	if errs := validateSrc(t, src); len(errs) > 0 {
		t.Fatalf("valid len target rejected: %v", errs)
	}
}

func TestValidateDuplicateSyscall(t *testing.T) {
	src := "ioctl$A(fd fd, cmd const[1])\nioctl$A(fd fd, cmd const[2])\n"
	errs := validateSrc(t, src)
	wantErrKind(t, errs, ErrDuplicateDecl, "ioctl$A")
}

func TestValidateDuplicateStructField(t *testing.T) {
	src := `
s {
	x	int32
	x	int64
}
ioctl$A(fd fd, cmd const[1], arg ptr[in, s])
`
	errs := validateSrc(t, src)
	wantErrKind(t, errs, ErrDuplicateDecl, "x")
}

func TestValidateEmptyStruct(t *testing.T) {
	src := "s {\n}\nioctl$A(fd fd, cmd const[1], arg ptr[in, s])\n"
	errs := validateSrc(t, src)
	wantErrKind(t, errs, ErrEmptyDecl, "s")
}

func TestValidateBadDirection(t *testing.T) {
	errs := validateSrc(t, "ioctl$A(fd fd, cmd const[1], arg ptr[sideways, array[int8]])\n")
	wantErrKind(t, errs, ErrBadDirection, "")
}

func TestValidateRecursiveStruct(t *testing.T) {
	src := `
node {
	next	node
	val	int32
}
ioctl$A(fd fd, cmd const[1], arg ptr[in, node])
`
	errs := validateSrc(t, src)
	wantErrKind(t, errs, ErrRecursiveType, "node")
}

func TestValidateRecursionThroughPointerOK(t *testing.T) {
	src := `
node {
	next	ptr[in, node]
	val	int32
}
ioctl$A(fd fd, cmd const[1], arg ptr[in, node])
`
	if errs := validateSrc(t, src); len(errs) > 0 {
		t.Fatalf("pointer recursion should be allowed: %v", errs)
	}
}

func TestValidateMutualRecursion(t *testing.T) {
	src := `
a_t {
	b	b_t
}
b_t {
	a	a_t
}
ioctl$A(fd fd, cmd const[1], arg ptr[in, a_t])
`
	errs := validateSrc(t, src)
	wantErrKind(t, errs, ErrRecursiveType, "")
}

func TestValidateBadRange(t *testing.T) {
	errs := validateSrc(t, "ioctl$A(fd fd, cmd const[1], arg int32[5:1])\n")
	wantErrKind(t, errs, ErrBadRange, "int32")
}

func TestValidateTooManyArgs(t *testing.T) {
	args := make([]string, 10)
	for i := range args {
		args[i] = "a" + string(rune('a'+i)) + " int32"
	}
	errs := validateSrc(t, "ioctl$A("+strings.Join(args, ", ")+")\n")
	wantErrKind(t, errs, ErrTooManyArgs, "")
}

func TestValidateUndefinedFlagsSet(t *testing.T) {
	errs := validateSrc(t, "ioctl$A(fd fd, cmd const[1], arg flags[nothere, int32])\n")
	wantErrKind(t, errs, ErrUndefinedType, "nothere")
}

func TestValidateFlagsUnknownConst(t *testing.T) {
	src := "myflags = BAD_CONST\nioctl$A(fd fd, cmd const[1], arg flags[myflags, int32])\n"
	errs := validateSrc(t, src)
	wantErrKind(t, errs, ErrUnknownConst, "BAD_CONST")
}

func TestValidateErrorAttribution(t *testing.T) {
	// Each error must carry the declaration it belongs to so the
	// repair loop can route it.
	src := `
ioctl$GOOD(fd fd, cmd const[1])
ioctl$BAD(fd fd, cmd const[NOT_A_MACRO], arg ptr[in, ghost_t])
`
	errs := validateSrc(t, src)
	if len(errs) != 2 {
		t.Fatalf("want 2 errors, got %v", errs)
	}
	for _, e := range errs {
		if e.Decl != "ioctl$BAD" {
			t.Fatalf("error attributed to %q, want ioctl$BAD", e.Decl)
		}
	}
}

func TestValidateConstWithSize(t *testing.T) {
	if errs := validateSrc(t, "ioctl$A(fd fd, cmd const[DM_VERSION, int64])\n"); len(errs) > 0 {
		t.Fatalf("const with size rejected: %v", errs)
	}
	errs := validateSrc(t, "ioctl$A(fd fd, cmd const[DM_VERSION, ptr[in, fd]])\n")
	wantErrKind(t, errs, ErrBadTypeArgs, "const")
}

func TestValidateStringArg(t *testing.T) {
	errs := validateSrc(t, "openat$x(fd const[AT_FDCWD], file ptr[in, string[notaliteral]])\n")
	wantErrKind(t, errs, ErrBadStringLiteral, "")
}

func TestValidateNamedIntConst(t *testing.T) {
	if errs := validateSrc(t, "ioctl$A(fd fd, cmd const[1], arg int32[DM_VERSION])\n"); len(errs) > 0 {
		t.Fatalf("int with named const value rejected: %v", errs)
	}
}
