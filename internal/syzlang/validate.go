package syzlang

import (
	"fmt"
	"sort"
)

// ValidationError is a structured semantic error attributed to one
// top-level description, which is what lets the repair loop in the
// core package match each error message to the description it must
// fix (§3.2 of the paper).
type ValidationError struct {
	// Decl identifies the offending top-level declaration: a syscall
	// name (with variant), struct, union, flags, or resource name.
	Decl string
	// Kind is a stable error category (see ErrKind constants).
	Kind ErrKind
	// Ref is the identifier the error is about (type name, macro
	// name, field name, ...), when applicable.
	Ref string
	Pos Pos
	Msg string
}

// ErrKind enumerates the validator's error classes. They mirror the
// classes the paper lists for syz-extract/syz-generate: undefined
// types, wrong macro names, unmatched dependencies, and more.
type ErrKind string

// Validation error kinds.
const (
	ErrUndefinedType    ErrKind = "undefined-type"
	ErrUnknownConst     ErrKind = "unknown-const"
	ErrUnknownResource  ErrKind = "unknown-resource"
	ErrUnknownSyscall   ErrKind = "unknown-syscall"
	ErrBadLenTarget     ErrKind = "bad-len-target"
	ErrBadTypeArgs      ErrKind = "bad-type-args"
	ErrDuplicateDecl    ErrKind = "duplicate-decl"
	ErrEmptyDecl        ErrKind = "empty-decl"
	ErrBadDirection     ErrKind = "bad-direction"
	ErrRecursiveType    ErrKind = "recursive-type"
	ErrUnusedResource   ErrKind = "unused-resource"
	ErrBadResourceBase  ErrKind = "bad-resource-base"
	ErrBadRange         ErrKind = "bad-range"
	ErrTooManyArgs      ErrKind = "too-many-args"
	ErrBadStringLiteral ErrKind = "bad-string"
)

// Error implements the error interface.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("%s: %s: %s (%s)", e.Pos, e.Decl, e.Msg, e.Kind)
}

// Env supplies the external knowledge the validator needs: kernel
// macro constants (the output of syz-extract in real Syzkaller) and
// the set of base syscalls the target OS provides.
type Env struct {
	// Consts maps macro names (e.g. "DM_DEV_CREATE") to values.
	Consts map[string]uint64
	// Syscalls is the set of known base syscall names.
	Syscalls map[string]bool
}

// DefaultSyscalls returns the base syscall set used throughout the
// reproduction: the generic syscalls the paper targets for drivers
// and sockets (§4).
func DefaultSyscalls() map[string]bool {
	calls := []string{
		"openat", "open", "close", "read", "write", "mmap", "poll",
		"ioctl", "socket", "bind", "connect", "accept", "listen",
		"sendto", "recvfrom", "sendmsg", "recvmsg",
		"setsockopt", "getsockopt", "syz_open_dev",
		// fd plumbing and memory-mapping surface (vkernel models
		// these; see internal/corpus plumbing specs).
		"dup", "pipe", "epoll_create", "epoll_ctl", "epoll_wait",
		"munmap",
	}
	m := make(map[string]bool, len(calls))
	for _, c := range calls {
		m[c] = true
	}
	return m
}

// NewEnv builds a validation environment from a constant table,
// using the default base syscall set.
func NewEnv(consts map[string]uint64) *Env {
	return &Env{Consts: consts, Syscalls: DefaultSyscalls()}
}

// builtinTypes are the scalar/parameterized type constructors this
// syzlang subset supports.
var builtinScalar = map[string]bool{
	"int8": true, "int16": true, "int32": true, "int64": true,
	"intptr": true, "bool8": true, "fd": true, "pid": true,
	"filename": true, "void": true,
}

var builtinParam = map[string]bool{
	"const": true, "flags": true, "ptr": true, "array": true,
	"string": true, "len": true, "bytesize": true, "vma": true,
	"buffer": true,
}

// IsBuiltinType reports whether name is a builtin scalar or
// parameterized type constructor.
func IsBuiltinType(name string) bool {
	return builtinScalar[name] || builtinParam[name]
}

type validator struct {
	env     *Env
	file    *File
	structs map[string]*StructDef
	unions  map[string]*UnionDef
	flags   map[string]*FlagsDef
	res     map[string]*ResourceDef
	errs    []*ValidationError
	// visiting tracks struct/union expansion for recursion detection.
	visiting map[string]bool
	resolved map[string]bool
}

// Validate performs semantic validation of a description file against
// the environment and returns all errors found. A nil/empty result
// means the file would compile under syz-generate.
func Validate(f *File, env *Env) []*ValidationError {
	v := &validator{
		env:      env,
		file:     f,
		structs:  map[string]*StructDef{},
		unions:   map[string]*UnionDef{},
		flags:    map[string]*FlagsDef{},
		res:      map[string]*ResourceDef{},
		visiting: map[string]bool{},
		resolved: map[string]bool{},
	}
	v.collect()
	v.checkResources()
	v.checkSyscalls()
	v.checkTypes()
	sort.SliceStable(v.errs, func(i, j int) bool {
		a, b := v.errs[i], v.errs[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Col < b.Pos.Col
	})
	return v.errs
}

func (v *validator) errorf(decl string, kind ErrKind, ref string, pos Pos, format string, args ...any) {
	v.errs = append(v.errs, &ValidationError{
		Decl: decl, Kind: kind, Ref: ref, Pos: pos,
		Msg: fmt.Sprintf(format, args...),
	})
}

func (v *validator) collect() {
	for _, r := range v.file.Resources {
		if _, dup := v.res[r.Name]; dup {
			v.errorf(r.Name, ErrDuplicateDecl, r.Name, r.Pos, "resource %q redefined", r.Name)
			continue
		}
		v.res[r.Name] = r
	}
	seenCalls := map[string]bool{}
	for _, s := range v.file.Syscalls {
		name := s.Name()
		if seenCalls[name] {
			v.errorf(name, ErrDuplicateDecl, name, s.Pos, "syscall %q redefined", name)
		}
		seenCalls[name] = true
	}
	for _, s := range v.file.Structs {
		if v.declaredType(s.Name) {
			v.errorf(s.Name, ErrDuplicateDecl, s.Name, s.Pos, "type %q redefined", s.Name)
			continue
		}
		v.structs[s.Name] = s
	}
	for _, u := range v.file.Unions {
		if v.declaredType(u.Name) {
			v.errorf(u.Name, ErrDuplicateDecl, u.Name, u.Pos, "type %q redefined", u.Name)
			continue
		}
		v.unions[u.Name] = u
	}
	for _, fl := range v.file.Flags {
		if _, dup := v.flags[fl.Name]; dup {
			v.errorf(fl.Name, ErrDuplicateDecl, fl.Name, fl.Pos, "flags %q redefined", fl.Name)
			continue
		}
		v.flags[fl.Name] = fl
	}
}

func (v *validator) declaredType(name string) bool {
	_, s := v.structs[name]
	_, u := v.unions[name]
	return s || u
}

func (v *validator) checkResources() {
	used := map[string]bool{}
	for _, s := range v.file.Syscalls {
		if s.Ret != "" {
			used[s.Ret] = true
		}
		for _, a := range s.Args {
			v.markResourceUse(a.Type, used)
		}
	}
	for _, st := range v.file.Structs {
		for _, f := range st.Fields {
			v.markResourceUse(f.Type, used)
		}
	}
	for _, r := range v.file.Resources {
		base := r.Base
		if !builtinScalar[base] {
			if _, ok := v.res[base]; !ok {
				v.errorf(r.Name, ErrBadResourceBase, base, r.Pos,
					"resource %q has unknown base type %q", r.Name, base)
			}
		}
		if !used[r.Name] {
			v.errorf(r.Name, ErrUnusedResource, r.Name, r.Pos,
				"resource %q is never used by any syscall", r.Name)
		}
	}
}

func (v *validator) markResourceUse(t *TypeExpr, used map[string]bool) {
	if t == nil {
		return
	}
	if _, ok := v.res[t.Ident]; ok {
		used[t.Ident] = true
	}
	for _, a := range t.Args {
		if a.Type != nil {
			v.markResourceUse(a.Type, used)
		}
	}
}

const maxSyscallArgs = 9

func (v *validator) checkSyscalls() {
	for _, s := range v.file.Syscalls {
		name := s.Name()
		if !v.env.Syscalls[s.CallName] {
			v.errorf(name, ErrUnknownSyscall, s.CallName, s.Pos,
				"unknown base syscall %q", s.CallName)
		}
		if len(s.Args) > maxSyscallArgs {
			v.errorf(name, ErrTooManyArgs, "", s.Pos,
				"syscall has %d arguments, max is %d", len(s.Args), maxSyscallArgs)
		}
		if s.Ret != "" {
			if _, ok := v.res[s.Ret]; !ok {
				v.errorf(name, ErrUnknownResource, s.Ret, s.Pos,
					"return type %q is not a declared resource", s.Ret)
			}
		}
		siblings := fieldNames(s.Args)
		for _, a := range s.Args {
			v.checkType(name, a.Type, siblings, false)
		}
	}
}

func fieldNames(fields []*Field) map[string]bool {
	m := make(map[string]bool, len(fields))
	for _, f := range fields {
		m[f.Name] = true
	}
	return m
}

func (v *validator) checkTypes() {
	for _, st := range v.file.Structs {
		if len(st.Fields) == 0 {
			v.errorf(st.Name, ErrEmptyDecl, st.Name, st.Pos, "struct %q has no fields", st.Name)
		}
		siblings := fieldNames(st.Fields)
		seen := map[string]bool{}
		for _, f := range st.Fields {
			if seen[f.Name] {
				v.errorf(st.Name, ErrDuplicateDecl, f.Name, f.Pos,
					"field %q duplicated in struct %q", f.Name, st.Name)
			}
			seen[f.Name] = true
			v.checkType(st.Name, f.Type, siblings, true)
		}
		v.checkRecursion(st.Name, st.Name)
	}
	for _, u := range v.file.Unions {
		if len(u.Fields) == 0 {
			v.errorf(u.Name, ErrEmptyDecl, u.Name, u.Pos, "union %q has no options", u.Name)
		}
		for _, f := range u.Fields {
			v.checkType(u.Name, f.Type, nil, true)
		}
		v.checkRecursion(u.Name, u.Name)
	}
	for _, fl := range v.file.Flags {
		if len(fl.Values) == 0 {
			v.errorf(fl.Name, ErrEmptyDecl, fl.Name, fl.Pos, "flags %q has no values", fl.Name)
		}
		for _, fv := range fl.Values {
			if fv.Name != "" {
				if _, ok := v.env.Consts[fv.Name]; !ok {
					v.errorf(fl.Name, ErrUnknownConst, fv.Name, fl.Pos,
						"unknown constant %q in flags %q", fv.Name, fl.Name)
				}
			}
		}
	}
}

// checkRecursion detects struct/union cycles that do not pass through
// a pointer (pointer indirection makes recursion representable).
func (v *validator) checkRecursion(root, cur string) {
	if v.resolved[root+"\x00"+cur] {
		return
	}
	v.resolved[root+"\x00"+cur] = true
	var fields []*Field
	var pos Pos
	if st, ok := v.structs[cur]; ok {
		fields, pos = st.Fields, st.Pos
	} else if u, ok := v.unions[cur]; ok {
		fields, pos = u.Fields, u.Pos
	} else {
		return
	}
	for _, f := range fields {
		for _, dep := range directTypeDeps(f.Type) {
			if dep == root {
				v.errorf(root, ErrRecursiveType, cur, pos,
					"type %q recursively contains itself via %q without pointer indirection", root, cur)
				return
			}
			v.checkRecursion(root, dep)
		}
	}
}

// directTypeDeps returns struct/union names embedded in t without
// pointer indirection.
func directTypeDeps(t *TypeExpr) []string {
	if t == nil {
		return nil
	}
	switch t.Ident {
	case "ptr":
		return nil // indirection breaks the cycle
	case "array":
		if len(t.Args) > 0 && t.Args[0].Type != nil {
			return directTypeDeps(t.Args[0].Type)
		}
		return nil
	case "const", "flags", "string", "len", "bytesize", "int8", "int16",
		"int32", "int64", "intptr", "buffer", "vma":
		return nil
	}
	return []string{t.Ident}
}

// checkType validates one type expression. siblings is the set of
// sibling field names (for len[] targets); inStruct reports whether
// the expression appears inside a struct/union (where ptr direction
// rules differ).
func (v *validator) checkType(decl string, t *TypeExpr, siblings map[string]bool, inStruct bool) {
	if t == nil {
		return
	}
	switch t.Ident {
	case "int8", "int16", "int32", "int64", "intptr":
		v.checkIntArgs(decl, t)
	case "bool8", "fd", "pid", "filename", "void":
		if len(t.Args) != 0 {
			v.errorf(decl, ErrBadTypeArgs, t.Ident, t.Pos, "type %q takes no arguments", t.Ident)
		}
	case "const":
		v.checkConst(decl, t)
	case "flags":
		v.checkFlags(decl, t)
	case "ptr":
		v.checkPtr(decl, t, siblings)
	case "array":
		v.checkArray(decl, t, siblings)
	case "string":
		v.checkString(decl, t)
	case "len", "bytesize":
		v.checkLen(decl, t, siblings)
	case "buffer":
		v.checkBuffer(decl, t)
	case "vma":
		// vma takes no args in our subset.
		if len(t.Args) != 0 {
			v.errorf(decl, ErrBadTypeArgs, "vma", t.Pos, "vma takes no arguments")
		}
	default:
		// Must be a declared resource, struct, union, or flags name.
		if _, ok := v.res[t.Ident]; ok {
			if len(t.Args) != 0 {
				v.errorf(decl, ErrBadTypeArgs, t.Ident, t.Pos,
					"resource %q takes no type arguments", t.Ident)
			}
			return
		}
		if v.declaredType(t.Ident) {
			if len(t.Args) != 0 {
				v.errorf(decl, ErrBadTypeArgs, t.Ident, t.Pos,
					"struct/union %q takes no type arguments", t.Ident)
			}
			return
		}
		v.errorf(decl, ErrUndefinedType, t.Ident, t.Pos, "type %q is not defined", t.Ident)
	}
}

func (v *validator) checkIntArgs(decl string, t *TypeExpr) {
	// intN, intN[min:max], intN[const-value]
	if len(t.Args) > 1 {
		v.errorf(decl, ErrBadTypeArgs, t.Ident, t.Pos,
			"%s takes at most one argument (value or range)", t.Ident)
		return
	}
	if len(t.Args) == 1 {
		a := t.Args[0]
		switch {
		case a.HasRange:
			if a.Min > a.Max {
				v.errorf(decl, ErrBadRange, t.Ident, t.Pos,
					"empty range [%d:%d]", a.Min, a.Max)
			}
		case a.HasInt:
		case a.Type != nil && len(a.Type.Args) == 0:
			// Named constant as value, e.g. int32[PAGE_SIZE].
			if _, ok := v.env.Consts[a.Type.Ident]; !ok {
				v.errorf(decl, ErrUnknownConst, a.Type.Ident, t.Pos,
					"unknown constant %q", a.Type.Ident)
			}
		default:
			v.errorf(decl, ErrBadTypeArgs, t.Ident, t.Pos,
				"bad argument %s for %s", a, t.Ident)
		}
	}
}

func (v *validator) checkConst(decl string, t *TypeExpr) {
	if len(t.Args) < 1 || len(t.Args) > 2 {
		v.errorf(decl, ErrBadTypeArgs, "const", t.Pos,
			"const requires a value and optional int size: const[VALUE, intN]")
		return
	}
	a := t.Args[0]
	switch {
	case a.HasInt:
	case a.Type != nil && len(a.Type.Args) == 0:
		if _, ok := v.env.Consts[a.Type.Ident]; !ok {
			v.errorf(decl, ErrUnknownConst, a.Type.Ident, t.Pos,
				"unknown constant %q in const[]", a.Type.Ident)
		}
	default:
		v.errorf(decl, ErrBadTypeArgs, "const", t.Pos, "bad const value %s", a)
	}
	if len(t.Args) == 2 {
		v.checkSizeArg(decl, t, t.Args[1])
	}
}

func (v *validator) checkSizeArg(decl string, t *TypeExpr, a *TypeArg) {
	if a.Type == nil || !builtinScalar[a.Type.Ident] || len(a.Type.Args) != 0 {
		v.errorf(decl, ErrBadTypeArgs, t.Ident, t.Pos,
			"size argument of %s must be a plain int type, got %s", t.Ident, a)
	}
}

func (v *validator) checkFlags(decl string, t *TypeExpr) {
	if len(t.Args) < 1 || len(t.Args) > 2 {
		v.errorf(decl, ErrBadTypeArgs, "flags", t.Pos,
			"flags requires a flag-set name and optional int size")
		return
	}
	a := t.Args[0]
	if a.Type == nil || len(a.Type.Args) != 0 {
		v.errorf(decl, ErrBadTypeArgs, "flags", t.Pos, "bad flags reference %s", a)
		return
	}
	if _, ok := v.flags[a.Type.Ident]; !ok {
		v.errorf(decl, ErrUndefinedType, a.Type.Ident, t.Pos,
			"flags set %q is not defined", a.Type.Ident)
	}
	if len(t.Args) == 2 {
		v.checkSizeArg(decl, t, t.Args[1])
	}
}

var validDirs = map[string]bool{"in": true, "out": true, "inout": true}

func (v *validator) checkPtr(decl string, t *TypeExpr, siblings map[string]bool) {
	if len(t.Args) != 2 {
		v.errorf(decl, ErrBadTypeArgs, "ptr", t.Pos,
			"ptr requires direction and element type: ptr[dir, type]")
		return
	}
	d := t.Args[0]
	if d.Type == nil || !validDirs[d.Type.Ident] {
		v.errorf(decl, ErrBadDirection, "", t.Pos,
			"ptr direction must be in/out/inout, got %s", d)
	}
	if t.Args[1].Type == nil {
		v.errorf(decl, ErrBadTypeArgs, "ptr", t.Pos, "bad ptr element %s", t.Args[1])
		return
	}
	v.checkType(decl, t.Args[1].Type, siblings, true)
}

func (v *validator) checkArray(decl string, t *TypeExpr, siblings map[string]bool) {
	if len(t.Args) < 1 || len(t.Args) > 2 {
		v.errorf(decl, ErrBadTypeArgs, "array", t.Pos,
			"array requires element type and optional size: array[type, n]")
		return
	}
	if t.Args[0].Type == nil {
		v.errorf(decl, ErrBadTypeArgs, "array", t.Pos, "bad array element %s", t.Args[0])
		return
	}
	v.checkType(decl, t.Args[0].Type, siblings, true)
	if len(t.Args) == 2 {
		a := t.Args[1]
		if !a.HasInt && !a.HasRange {
			v.errorf(decl, ErrBadTypeArgs, "array", t.Pos,
				"array size must be an integer or range, got %s", a)
		}
	}
}

func (v *validator) checkString(decl string, t *TypeExpr) {
	if len(t.Args) > 1 {
		v.errorf(decl, ErrBadTypeArgs, "string", t.Pos, "string takes at most one argument")
		return
	}
	if len(t.Args) == 1 {
		a := t.Args[0]
		if !a.HasStr {
			v.errorf(decl, ErrBadStringLiteral, "", t.Pos,
				"string argument must be a quoted literal, got %s", a)
		}
	}
}

func (v *validator) checkLen(decl string, t *TypeExpr, siblings map[string]bool) {
	if len(t.Args) != 2 {
		v.errorf(decl, ErrBadTypeArgs, t.Ident, t.Pos,
			"%s requires target field and int size: %s[field, intN]", t.Ident, t.Ident)
		return
	}
	target := t.Args[0]
	if target.Type == nil || len(target.Type.Args) != 0 {
		v.errorf(decl, ErrBadTypeArgs, t.Ident, t.Pos, "bad %s target %s", t.Ident, target)
		return
	}
	name := target.Type.Ident
	if siblings != nil && !siblings[name] {
		v.errorf(decl, ErrBadLenTarget, name, t.Pos,
			"%s target %q is not a sibling field", t.Ident, name)
	}
	v.checkSizeArg(decl, t, t.Args[1])
}

func (v *validator) checkBuffer(decl string, t *TypeExpr) {
	if len(t.Args) != 1 || t.Args[0].Type == nil || !validDirs[t.Args[0].Type.Ident] {
		v.errorf(decl, ErrBadTypeArgs, "buffer", t.Pos,
			"buffer requires a direction: buffer[dir]")
	}
}

// ValidationErrorsToErrors converts the structured slice to []error.
func ValidationErrorsToErrors(verrs []*ValidationError) []error {
	out := make([]error, len(verrs))
	for i, e := range verrs {
		out[i] = e
	}
	return out
}
