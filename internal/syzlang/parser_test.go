package syzlang

import (
	"strings"
	"testing"
	"testing/quick"
)

const dmSpec = `
resource fd_dm[fd]

openat$dm(fd const[AT_FDCWD], file ptr[in, string["/dev/mapper/control"]], flags flags[open_flags], mode const[0]) fd_dm
ioctl$DM_VERSION(fd fd_dm, cmd const[DM_VERSION], arg ptr[inout, dm_ioctl])
ioctl$DM_LIST_DEVICES(fd fd_dm, cmd const[DM_LIST_DEVICES], arg ptr[inout, dm_ioctl])

open_flags = O_RDWR, O_RDONLY

dm_ioctl {
	version		array[int32, 3]
	data_size	int32
	data_start	int32
	target_count	int32
	flags		int32
	name		array[int8, 128]
	data		array[int8]
}
`

func testEnv() *Env {
	return NewEnv(map[string]uint64{
		"AT_FDCWD":        0xffffff9c,
		"DM_VERSION":      0xc138fd00,
		"DM_LIST_DEVICES": 0xc138fd11,
		"O_RDWR":          2,
		"O_RDONLY":        0,
	})
}

func TestParseDMSpec(t *testing.T) {
	f, errs := Parse(dmSpec)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	if len(f.Resources) != 1 || f.Resources[0].Name != "fd_dm" || f.Resources[0].Base != "fd" {
		t.Fatalf("bad resources: %+v", f.Resources)
	}
	if len(f.Syscalls) != 3 {
		t.Fatalf("want 3 syscalls, got %d", len(f.Syscalls))
	}
	open := f.Syscalls[0]
	if open.Name() != "openat$dm" || open.Ret != "fd_dm" || len(open.Args) != 4 {
		t.Fatalf("bad openat: %+v", open)
	}
	if got := open.Args[1].Type.String(); got != `ptr[in, string["/dev/mapper/control"]]` {
		t.Fatalf("bad file arg type: %s", got)
	}
	if len(f.Structs) != 1 || f.Structs[0].Name != "dm_ioctl" || len(f.Structs[0].Fields) != 7 {
		t.Fatalf("bad struct: %+v", f.Structs)
	}
	if len(f.Flags) != 1 || f.Flags[0].Name != "open_flags" || len(f.Flags[0].Values) != 2 {
		t.Fatalf("bad flags: %+v", f.Flags)
	}
}

func TestValidateDMSpecClean(t *testing.T) {
	f := MustParse(dmSpec)
	if errs := Validate(f, testEnv()); len(errs) > 0 {
		t.Fatalf("unexpected validation errors: %v", errs)
	}
}

func TestParseUnion(t *testing.T) {
	src := `
msg_body [
	text	array[int8, 64]
	num	int64
]
dummy$call(a ptr[in, msg_body])
`
	f, errs := Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	if len(f.Unions) != 1 || f.Unions[0].Name != "msg_body" || len(f.Unions[0].Fields) != 2 {
		t.Fatalf("bad union: %+v", f.Unions)
	}
}

func TestParseFieldAttrs(t *testing.T) {
	src := `
drm_msm_submitqueue {
	flags	flags[msm_submitqueue_flags, int32]
	prio	int32[0:3]
	id	msm_submitqueue_id	(out)
}
msm_submitqueue_flags = F_A, F_B
resource msm_submitqueue_id[int32]
ioctl$NEW(fd fd, cmd const[1], arg ptr[inout, drm_msm_submitqueue]) msm_submitqueue_id
`
	f, errs := Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	st := f.Structs[0]
	if len(st.Fields) != 3 {
		t.Fatalf("want 3 fields, got %d", len(st.Fields))
	}
	if st.Fields[1].Type.String() != "int32[0:3]" {
		t.Fatalf("bad range type: %s", st.Fields[1].Type)
	}
	if len(st.Fields[2].Attrs) != 1 || st.Fields[2].Attrs[0] != "out" {
		t.Fatalf("bad attrs: %+v", st.Fields[2].Attrs)
	}
}

func TestParseSyntaxErrorRecovers(t *testing.T) {
	src := `
resource fd_x[fd
ioctl$OK(fd fd_x, cmd const[1])
`
	f, errs := Parse(src)
	if len(errs) == 0 {
		t.Fatal("expected a syntax error")
	}
	// The good line after the bad one must still parse.
	if len(f.Syscalls) != 1 || f.Syscalls[0].Name() != "ioctl$OK" {
		t.Fatalf("parser did not recover: %+v", f.Syscalls)
	}
}

func TestParseHexAndNegative(t *testing.T) {
	src := `dummy$x(a const[0xdeadbeef], b int64[-1:5])` + "\n"
	f, errs := Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	a := f.Syscalls[0].Args[0].Type
	if !a.Args[0].HasInt || a.Args[0].Int != 0xdeadbeef {
		t.Fatalf("bad hex const: %+v", a.Args[0])
	}
	b := f.Syscalls[0].Args[1].Type
	if !b.Args[0].HasRange || b.Args[0].Min != -1 || b.Args[0].Max != 5 {
		t.Fatalf("bad negative range: %+v", b.Args[0])
	}
}

func TestParseComments(t *testing.T) {
	src := `
# leading comment
resource r1[fd]	# trailing comment
use$r(a r1)
`
	f, errs := Parse(src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	if len(f.Resources) != 1 || len(f.Syscalls) != 1 {
		t.Fatalf("comments broke parsing: %+v", f)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	f := MustParse(dmSpec)
	text := Format(f)
	f2, errs := Parse(text)
	if len(errs) > 0 {
		t.Fatalf("formatted output does not reparse: %v\n%s", errs, text)
	}
	if Format(f2) != text {
		t.Fatalf("format not idempotent:\n--- first\n%s\n--- second\n%s", text, Format(f2))
	}
}

func TestFormatRoundTripPreservesCounts(t *testing.T) {
	f := MustParse(dmSpec)
	f2 := MustParse(Format(f))
	if len(f2.Syscalls) != len(f.Syscalls) ||
		len(f2.Structs) != len(f.Structs) ||
		len(f2.Resources) != len(f.Resources) ||
		len(f2.Flags) != len(f.Flags) {
		t.Fatalf("round trip lost declarations: %+v vs %+v", f, f2)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := MustParse(dmSpec)
	c := f.Clone()
	c.Syscalls[0].Args[1].Type.Ident = "mutated"
	if f.Syscalls[0].Args[1].Type.Ident == "mutated" {
		t.Fatal("Clone shares TypeExpr memory with original")
	}
}

func TestParseTypeExpr(t *testing.T) {
	te, err := ParseTypeExpr("ptr[inout, array[int8, 0:16]]")
	if err != nil {
		t.Fatal(err)
	}
	if te.String() != "ptr[inout, array[int8, 0:16]]" {
		t.Fatalf("bad round trip: %s", te)
	}
	if _, err := ParseTypeExpr("ptr[in,"); err == nil {
		t.Fatal("expected error for truncated type")
	}
}

// identChars is the alphabet used to generate random identifiers.
const identChars = "abcdefghijklmnopqrstuvwxyz_"

func randIdent(seed uint64) string {
	n := 1 + int(seed%12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		b.WriteByte(identChars[seed%uint64(len(identChars))])
	}
	return b.String()
}

// TestQuickLexerNeverPanics feeds arbitrary byte strings to the lexer
// and checks it terminates without panicking and consumes all input.
func TestQuickLexerNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		toks, _ := Tokenize(string(data))
		for _, tok := range toks {
			if tok.Kind == TokEOF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParserNeverPanics feeds arbitrary strings to the parser.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		Parse(string(data)) //nolint:errcheck // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFormatParseRoundTrip builds random (valid-by-construction)
// specs and checks Format/Parse is a fixed point.
func TestQuickFormatParseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		name := randIdent(seed)
		src := "resource r_" + name + "[fd]\n" +
			"ioctl$" + strings.ToUpper(randIdent(seed+1)) + "(fd r_" + name + ", cmd const[1], arg ptr[in, array[int8]])\n"
		file, errs := Parse(src)
		if len(errs) > 0 {
			return false
		}
		text := Format(file)
		file2, errs2 := Parse(text)
		return len(errs2) == 0 && Format(file2) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
