package syzlang

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer tokenizes syzlang source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors reports lexical errors accumulated so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(p Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, skipping spaces and comments but
// preserving newlines (syzlang is line-oriented). Consecutive blank
// lines collapse to a single TokNewline.
func (l *Lexer) Next() Token {
	for {
		c := l.peek()
		switch {
		case c == 0:
			return Token{Kind: TokEOF, Pos: l.pos()}
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
		case c == '#':
			// Comment runs to end of line; the newline itself is
			// reported separately.
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case c == '\n':
			p := l.pos()
			for l.peek() == '\n' {
				l.advance()
				l.skipBlank()
			}
			return Token{Kind: TokNewline, Text: "\n", Pos: p}
		default:
			return l.lexNonSpace()
		}
	}
}

// skipBlank consumes whitespace and full-line comments so that blank
// lines collapse into one newline token.
func (l *Lexer) skipBlank() {
	for {
		c := l.peek()
		if c == ' ' || c == '\t' || c == '\r' {
			l.advance()
			continue
		}
		if c == '#' {
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
			continue
		}
		return
	}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) lexNonSpace() Token {
	p := l.pos()
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for isIdentPart(l.peek()) {
			l.advance()
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.off], Pos: p}
	case isDigit(c) || c == '-':
		return l.lexNumber(p)
	case c == '"':
		return l.lexString(p)
	}
	l.advance()
	kind, ok := map[byte]TokenKind{
		'(': TokLParen, ')': TokRParen,
		'[': TokLBrack, ']': TokRBrack,
		'{': TokLBrace, '}': TokRBrace,
		',': TokComma, ':': TokColon, '=': TokEquals, '$': TokDollar,
	}[c]
	if !ok {
		l.errorf(p, "unexpected character %q", string(c))
		return l.Next()
	}
	return Token{Kind: kind, Text: string(c), Pos: p}
}

func (l *Lexer) lexNumber(p Pos) Token {
	start := l.off
	neg := false
	if l.peek() == '-' {
		neg = true
		l.advance()
	}
	if strings.HasPrefix(l.src[l.off:], "0x") || strings.HasPrefix(l.src[l.off:], "0X") {
		l.advance()
		l.advance()
		for isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	text := l.src[start:l.off]
	numText := text
	if neg {
		numText = text[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.TrimPrefix(numText, "0x"), "0X"), base(numText), 64)
	if err != nil {
		l.errorf(p, "bad integer literal %q", text)
	}
	if neg {
		v = uint64(-int64(v))
	}
	return Token{Kind: TokInt, Text: text, Value: v, Pos: p}
}

func base(s string) int {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return 16
	}
	return 10
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) lexString(p Pos) Token {
	l.advance() // opening quote
	var b strings.Builder
	for {
		c := l.peek()
		if c == 0 || c == '\n' {
			l.errorf(p, "unterminated string literal")
			break
		}
		l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			esc := l.peek()
			if esc != 0 {
				l.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '0':
					b.WriteByte(0)
				default:
					b.WriteByte(esc)
				}
				continue
			}
		}
		b.WriteByte(c)
	}
	return Token{Kind: TokString, Text: b.String(), Pos: p}
}

// Tokenize lexes the whole buffer, returning every token up to and
// excluding EOF.
func Tokenize(src string) ([]Token, []error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t := l.Next()
		if t.Kind == TokEOF {
			break
		}
		toks = append(toks, t)
	}
	return toks, l.Errors()
}
