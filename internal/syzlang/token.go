// Package syzlang implements the subset of Syzkaller's description
// language (syzlang) that KernelGPT generates: resource declarations,
// syscall descriptions, struct/union/flags definitions, and the type
// expressions they use. It provides a lexer, parser, semantic
// validator with structured errors (the equivalent of Syzkaller's
// syz-extract/syz-generate validation the paper relies on for the
// repair loop), a formatter, and a compiler into the executable
// representation used by the prog package.
package syzlang

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokNewline
	TokIdent
	TokInt
	TokString
	TokLParen
	TokRParen
	TokLBrack
	TokRBrack
	TokLBrace
	TokRBrace
	TokComma
	TokColon
	TokEquals
	TokDollar
	TokComment
)

var tokenNames = map[TokenKind]string{
	TokEOF:     "EOF",
	TokNewline: "newline",
	TokIdent:   "identifier",
	TokInt:     "integer",
	TokString:  "string",
	TokLParen:  "'('",
	TokRParen:  "')'",
	TokLBrack:  "'['",
	TokRBrack:  "']'",
	TokLBrace:  "'{'",
	TokRBrace:  "'}'",
	TokComma:   "','",
	TokColon:   "':'",
	TokEquals:  "'='",
	TokDollar:  "'$'",
	TokComment: "comment",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Pos identifies a location in a syzlang source buffer.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind  TokenKind
	Text  string
	Value uint64 // for TokInt
	Pos   Pos
}
