package syzlang

import (
	"fmt"
	"strings"
)

// Format renders a description file back to canonical syzlang text.
// The output is stable: resources, then syscalls, then flags, then
// structs/unions, each in declaration order. Readability of the
// generated text is a first-class goal of the paper (§5.1.1), so the
// formatter takes care to produce output matching the hand-written
// Syzkaller style.
func Format(f *File) string {
	var b strings.Builder
	for _, r := range f.Resources {
		fmt.Fprintf(&b, "resource %s[%s]\n", r.Name, r.Base)
	}
	if len(f.Resources) > 0 && len(f.Syscalls) > 0 {
		b.WriteByte('\n')
	}
	for _, s := range f.Syscalls {
		b.WriteString(FormatSyscall(s))
		b.WriteByte('\n')
	}
	if len(f.Flags) > 0 {
		b.WriteByte('\n')
		for _, fl := range f.Flags {
			b.WriteString(FormatFlags(fl))
			b.WriteByte('\n')
		}
	}
	for _, st := range f.Structs {
		b.WriteByte('\n')
		b.WriteString(FormatStruct(st))
	}
	for _, u := range f.Unions {
		b.WriteByte('\n')
		b.WriteString(FormatUnion(u))
	}
	return b.String()
}

// FormatSyscall renders one syscall description line.
func FormatSyscall(s *SyscallDef) string {
	var b strings.Builder
	b.WriteString(s.Name())
	b.WriteByte('(')
	for i, a := range s.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte(' ')
		b.WriteString(a.Type.String())
		writeAttrs(&b, a.Attrs)
	}
	b.WriteByte(')')
	if s.Ret != "" {
		b.WriteByte(' ')
		b.WriteString(s.Ret)
	}
	return b.String()
}

// FormatStruct renders a struct definition block.
func FormatStruct(st *StructDef) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s {\n", st.Name)
	for _, f := range st.Fields {
		fmt.Fprintf(&b, "\t%s\t%s", f.Name, f.Type)
		writeAttrs(&b, f.Attrs)
		b.WriteByte('\n')
	}
	b.WriteString("}")
	if len(st.Attrs) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(st.Attrs, ", "))
	}
	b.WriteByte('\n')
	return b.String()
}

// FormatUnion renders a union definition block.
func FormatUnion(u *UnionDef) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [\n", u.Name)
	for _, f := range u.Fields {
		fmt.Fprintf(&b, "\t%s\t%s", f.Name, f.Type)
		writeAttrs(&b, f.Attrs)
		b.WriteByte('\n')
	}
	b.WriteString("]\n")
	return b.String()
}

// FormatFlags renders a flag-set definition line.
func FormatFlags(fl *FlagsDef) string {
	parts := make([]string, len(fl.Values))
	for i, v := range fl.Values {
		if v.Name != "" {
			parts[i] = v.Name
		} else {
			parts[i] = utoa(v.Value)
		}
	}
	return fl.Name + " = " + strings.Join(parts, ", ")
}

func writeAttrs(b *strings.Builder, attrs []string) {
	if len(attrs) == 0 {
		return
	}
	fmt.Fprintf(b, " (%s)", strings.Join(attrs, ", "))
}
