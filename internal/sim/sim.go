package sim

import (
	"errors"
	"fmt"
	"math"
)

// Unit decomposition constants, mirroring fuzz.planShards: the grain
// defaults to DefaultShardExecs but scales up so a campaign splits
// into at most maxDefaultUnits units. The simulator replays the same
// rule so a simulated fleet schedules the same work units as the real
// one; `syzplan validate` in CI catches drift if the fuzzer's rule
// changes.
const (
	defaultShardExecs = 4096
	maxDefaultUnits   = 16
)

// maxSimUnits bounds a single simulation's unit count — a safety rail
// keeping planner sweeps in the milliseconds even for absurd configs.
const maxSimUnits = 1 << 20

// jitterAmp is the ±fraction of deterministic per-unit duration
// jitter, decorrelating unit completions the way real scheduling
// noise does (without it, equal-budget units finish in lockstep and
// hub queueing collapses to a degenerate pattern no real run shows).
const jitterAmp = 0.02

// FleetConfig describes one fleet configuration to simulate.
type FleetConfig struct {
	// Workers is the worker pool size (fuzz.RunParallel shards).
	Workers int `json:"workers"`
	// Execs is the campaign execution budget.
	Execs int `json:"execs"`
	// ShardExecs is the unit grain; 0 applies the fuzzer's default
	// rule (max(defaultShardExecs, ⌈Execs/maxDefaultUnits⌉)).
	ShardExecs int `json:"shard_execs,omitempty"`
	// DeadlineNs truncates the campaign at a wall-clock horizon
	// (0 = run the budget out).
	DeadlineNs int64 `json:"deadline_ns,omitempty"`
	// Checkpoint adds a corpus flush at every unit boundary.
	Checkpoint bool `json:"checkpoint,omitempty"`
	// Hub attaches the fleet to a hub: one sync per completed unit
	// plus a final push, serialized through the hub's FIFO service.
	Hub bool `json:"hub,omitempty"`
	// LLMSeeds spec programs are generated up front (engine/LLM
	// latency) before any worker starts fuzzing.
	LLMSeeds int `json:"llm_seeds,omitempty"`
	// Seed drives the deterministic per-unit jitter.
	Seed int64 `json:"seed,omitempty"`
}

// grain resolves the effective unit grain.
func (c FleetConfig) grain() int {
	if c.ShardExecs > 0 {
		return c.ShardExecs
	}
	g := defaultShardExecs
	if scaled := (c.Execs + maxDefaultUnits - 1) / maxDefaultUnits; scaled > g {
		g = scaled
	}
	return g
}

// Result is one simulated campaign outcome.
type Result struct {
	Config FleetConfig `json:"config"`
	// Execs actually performed (== Config.Execs unless the deadline
	// truncated the campaign).
	Execs int `json:"execs"`
	// Cover is the predicted union coverage (yield curve at Execs).
	Cover int `json:"cover"`
	// Crashes is the expected unique-crash count (rate × execs).
	Crashes float64 `json:"crashes"`
	// WallNs is the campaign makespan; WorkNs the summed worker busy
	// time (their ratio is pool utilization).
	WallNs int64 `json:"wall_ns"`
	WorkNs int64 `json:"work_ns"`
	// SyncNs is the summed worker-side sync round-trip time (queueing
	// included), Syncs the exchange count, HubBusyNs the hub's total
	// service time (HubBusyNs/WallNs is hub utilization — the
	// saturation signal for sync fan-in).
	SyncNs    int64 `json:"sync_ns"`
	Syncs     int   `json:"syncs"`
	HubBusyNs int64 `json:"hub_busy_ns"`
	// Units is the number of work units scheduled; Truncated reports
	// whether the deadline cut the budget short.
	Units     int  `json:"units"`
	Truncated bool `json:"truncated,omitempty"`
}

// Utilization is WorkNs spread over Workers×WallNs.
func (r Result) Utilization() float64 {
	if r.WallNs <= 0 || r.Config.Workers <= 0 {
		return 0
	}
	return float64(r.WorkNs) / (float64(r.WallNs) * float64(r.Config.Workers))
}

// splitmix64 is the per-unit jitter hash (same construction the
// fuzzer uses for unit seed derivation).
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitJitter returns the deterministic duration factor for unit i:
// 1 ± jitterAmp, fixed by (seed, unit).
func unitJitter(seed int64, unit int) float64 {
	h := splitmix64(uint64(seed) ^ uint64(unit+1)*0x9e3779b97f4a7c15)
	u := float64(h>>11) / float64(1<<53) // [0, 1)
	return 1 + jitterAmp*(2*u-1)
}

// Simulate runs one fleet configuration through the discrete-event
// model and returns its predicted outcome. The schedule mirrors
// fuzz.RunParallel: the budget splits into fixed-grain units, workers
// pull units from a shared queue (earliest-free worker takes the next
// unit), each completed unit optionally flushes a checkpoint and runs
// one hub exchange, and hub-attached campaigns end with a final push.
// The hub is a FIFO single server — a sync arriving while another is
// being served queues, which is exactly how the real hub's mutex
// behaves — so sync fan-in contention emerges from the model instead
// of being a hand-tuned penalty. Deterministic for fixed inputs.
func Simulate(m *Model, cfg FleetConfig) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Execs <= 0 {
		return Result{}, errors.New("sim: config needs a positive exec budget")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	grain := cfg.grain()
	units := (cfg.Execs + grain - 1) / grain
	if units > maxSimUnits {
		return Result{}, fmt.Errorf("sim: %d units exceeds the %d-unit cap (raise ShardExecs)", units, maxSimUnits)
	}
	workers := cfg.Workers
	if workers > units {
		workers = units
	}

	res := Result{Config: cfg, Units: units}
	perExec := m.Cost.perExecNs()
	syncTail := m.Cost.SyncBaseNs + m.SeedsPerSync*m.Cost.SyncPerSeedNs
	// Hub service splits into a payload-independent base plus a
	// per-byte term, so protocols with smaller sync payloads (the
	// binary wire format) shrink the serialized-bottleneck portion.
	hubSvc := m.Cost.HubServiceNs + m.Cost.HubPerByteNs*m.BytesPerSync
	deadline := float64(cfg.DeadlineNs)

	// All workers wait out the up-front LLM generation phase.
	llmLatency := float64(cfg.LLMSeeds) * m.Cost.LLMGenNs
	workerFree := make([]float64, workers)
	for i := range workerFree {
		workerFree[i] = llmLatency
	}
	hubFree := 0.0
	work, syncTime, hubBusy := 0.0, 0.0, 0.0

	// One hub exchange: FIFO service then the client-side tail.
	exchange := func(arrive float64) (done float64) {
		svcStart := math.Max(arrive, hubFree)
		hubFree = svcStart + hubSvc
		done = hubFree + syncTail
		syncTime += done - arrive
		hubBusy += hubSvc
		res.Syncs++
		return done
	}

	for i := 0; i < units; i++ {
		// Earliest-free worker pulls the next unit (ties: lowest
		// index) — the queue discipline of pool.Run.
		w := 0
		for j := 1; j < workers; j++ {
			if workerFree[j] < workerFree[w] {
				w = j
			}
		}
		start := workerFree[w]
		if deadline > 0 && start >= deadline {
			// This worker — and so every later unit — is out of time.
			res.Truncated = true
			break
		}
		budget := grain
		if rem := cfg.Execs - i*grain; rem < budget {
			budget = rem
		}
		busy := float64(budget) * perExec * unitJitter(cfg.Seed, i)
		if deadline > 0 && start+busy > deadline {
			// Partial unit: prorate the execs done inside the window.
			frac := (deadline - start) / busy
			res.Execs += int(math.Round(float64(budget) * frac))
			work += deadline - start
			workerFree[w] = deadline
			res.Truncated = true
			continue
		}
		res.Execs += budget
		work += busy
		t := start + busy
		if cfg.Checkpoint {
			t += m.Cost.CheckpointNs
		}
		if cfg.Hub {
			t = exchange(t)
		}
		workerFree[w] = t
	}

	wall := llmLatency
	for _, t := range workerFree {
		wall = math.Max(wall, t)
	}
	if cfg.Hub && !res.Truncated {
		// Campaign-end final push, after the last unit completes.
		wall = exchange(wall)
	}
	if deadline > 0 && wall > deadline {
		wall = deadline
	}

	res.WallNs = int64(math.Round(wall))
	res.WorkNs = int64(math.Round(work))
	res.SyncNs = int64(math.Round(syncTime))
	res.HubBusyNs = int64(math.Round(hubBusy))
	res.Cover = int(math.Round(m.Yield.Cover(float64(res.Execs))))
	res.Crashes = m.CrashesPerExec * float64(res.Execs)
	return res, nil
}
