package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
)

// CostModel is the per-event nanosecond coefficients of the fleet.
// All costs are per occurrence; the simulator multiplies them by
// event counts derived from the fleet config.
type CostModel struct {
	// ExecNs is one program execution on the virtual kernel.
	ExecNs float64 `json:"exec_ns"`
	// MutateNs is the per-exec overhead around the execution itself:
	// mutation, operator scheduling, coverage bookkeeping, corpus
	// admission.
	MutateNs float64 `json:"mutate_ns"`
	// TriageNs is the amortized per-exec cost of crash triage
	// (minimization of discovered repros, spread over the budget).
	TriageNs float64 `json:"triage_ns"`
	// CheckpointNs is one corpus-store flush at a unit boundary.
	CheckpointNs float64 `json:"checkpoint_ns"`
	// SyncBaseNs is the client-side fixed cost of one hub exchange
	// (serialization, HTTP round-trip) excluding the hub's service
	// time, which is modeled separately because it serializes across
	// workers.
	SyncBaseNs float64 `json:"sync_base_ns"`
	// SyncPerSeedNs is the marginal client-side cost per seed shipped
	// in a sync payload.
	SyncPerSeedNs float64 `json:"sync_per_seed_ns"`
	// HubServiceNs is the hub-side per-sync base service time — the
	// payload-independent part of the merge/save/diff work done under
	// the hub lock. Syncs queue behind it FIFO, so this coefficient is
	// what makes sync fan-in a bottleneck at scale.
	HubServiceNs float64 `json:"hub_service_ns"`
	// HubPerByteNs is the marginal hub service time per request
	// payload byte, splitting service cost into base + per-byte so the
	// planner sees what a compact wire format buys: halving bytes per
	// sync halves this term, not the base.
	HubPerByteNs float64 `json:"hub_per_byte_ns,omitempty"`
	// LLMGenNs is the latency of generating one spec/seed program via
	// the LLM engine, paid up front before fuzzing starts.
	LLMGenNs float64 `json:"llm_gen_ns"`
}

// perExecNs is the busy time one execution costs a worker.
func (c CostModel) perExecNs() float64 {
	return c.ExecNs + c.MutateNs + c.TriageNs
}

// YieldModel maps cumulative execs to expected union coverage with a
// saturating diminishing-returns curve:
//
//	Cover(e) = Cmax · (1 − (1 + e/K)^−B)
//
// Cmax is the asymptotic reachable block count, K the exec scale at
// which returns start diminishing, and B the decay sharpness. The
// form starts at 0, grows monotonically, saturates at Cmax, and has
// the analytic inverse Execs(c) used by planner queries.
type YieldModel struct {
	Cmax float64 `json:"cmax"`
	K    float64 `json:"k"`
	B    float64 `json:"b"`
}

// Cover predicts union coverage after execs executions.
func (y YieldModel) Cover(execs float64) float64 {
	if execs <= 0 || y.Cmax <= 0 || y.K <= 0 || y.B <= 0 {
		return 0
	}
	return y.Cmax * (1 - math.Pow(1+execs/y.K, -y.B))
}

// Execs inverts Cover: the exec budget at which the model first
// reaches cover blocks. Returns +Inf when cover ≥ Cmax (unreachable
// under the fitted curve).
func (y YieldModel) Execs(cover float64) float64 {
	if cover <= 0 {
		return 0
	}
	if y.Cmax <= 0 || cover >= y.Cmax {
		return math.Inf(1)
	}
	return y.K * (math.Pow(1-cover/y.Cmax, -1/y.B) - 1)
}

// Valid reports whether the yield parameters describe a usable curve.
func (y YieldModel) Valid() bool {
	return y.Cmax > 0 && y.K > 0 && y.B > 0 &&
		!math.IsInf(y.Cmax, 0) && !math.IsInf(y.K, 0) && !math.IsInf(y.B, 0)
}

// Model is the full fitted campaign model — the on-disk document
// `syzplan fit` writes and run/sweep/validate consume.
type Model struct {
	Cost  CostModel  `json:"cost"`
	Yield YieldModel `json:"yield"`
	// SeedsPerSync is the mean seed payload of one hub exchange,
	// scaling the per-seed sync cost.
	SeedsPerSync float64 `json:"seeds_per_sync,omitempty"`
	// BytesPerSync is the mean request payload of one hub exchange in
	// bytes, scaling the per-byte hub service cost (protocol-
	// dependent: the binary wire format records a smaller figure than
	// JSON for the same campaign).
	BytesPerSync float64 `json:"bytes_per_sync,omitempty"`
	// CrashesPerExec is the observed unique-crash discovery rate, used
	// only to project expected crash counts (it does not affect time).
	CrashesPerExec float64 `json:"crashes_per_exec,omitempty"`
	// FittedFrom records the provenance of the coefficients (free
	// text: bench file, trace file, calibration run).
	FittedFrom string `json:"fitted_from,omitempty"`
}

// Validate checks the model is usable for simulation.
func (m *Model) Validate() error {
	if m.Cost.perExecNs() <= 0 {
		return errors.New("sim: cost model has no positive per-exec time (fit costs first)")
	}
	if !m.Yield.Valid() {
		return errors.New("sim: yield model not fitted (Cmax/K/B must be positive and finite)")
	}
	return nil
}

// Save writes the model as indented JSON.
func (m *Model) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadModel reads a model file written by Save.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}
