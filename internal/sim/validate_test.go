package sim

import (
	"strings"
	"testing"
)

// recordFromSim builds a "real" RunRecord by simulating with a truth
// model — a closed loop where the recorded run is exactly what the
// model describes, so validation against the same model must pass and
// validation against a skewed model must fail.
func recordFromSim(t *testing.T, m *Model, cfg FleetConfig) RunRecord {
	t.Helper()
	r, err := Simulate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return RunRecord{
		Workers: cfg.Workers, ShardExecs: cfg.ShardExecs, Seed: cfg.Seed,
		Hub: cfg.Hub, Checkpoint: cfg.Checkpoint,
		Execs: r.Execs, Cover: r.Cover, Crashes: int(r.Crashes),
		ElapsedNs: r.WallNs, WorkNs: r.WorkNs,
		SyncNs: r.SyncNs, Syncs: r.Syncs,
	}
}

func TestValidateAcceptsConsistentModel(t *testing.T) {
	m := testModel()
	rec := recordFromSim(t, m, FleetConfig{Workers: 3, Execs: 24_576, ShardExecs: 2048, Hub: true, Seed: 11})
	v, err := Validate(m, rec, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("self-consistent record failed validation: %+v", v)
	}
	if v.ExecErr > 0.02 || v.WallErr > 0.02 {
		t.Fatalf("closed-loop errors should be tiny: %+v", v)
	}
	// Deterministic per record: the same validation twice.
	v2, err := Validate(m, rec, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.PredExecs != v2.PredExecs || v.PredCover != v2.PredCover || v.PredWallNs != v2.PredWallNs {
		t.Fatalf("validation not deterministic: %+v vs %+v", v, v2)
	}
}

func TestValidateRejectsSkewedModel(t *testing.T) {
	truth := testModel()
	rec := recordFromSim(t, truth, FleetConfig{Workers: 3, Execs: 24_576, ShardExecs: 2048, Seed: 12})
	skewed := testModel()
	skewed.Cost.ExecNs *= 2 // 2× slower per exec than reality
	v, err := Validate(skewed, rec, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatalf("2× cost skew passed validation: %+v", v)
	}
	if len(v.Failures) == 0 || !strings.Contains(strings.Join(v.Failures, ";"), "exceeds") {
		t.Fatalf("failures not reported: %+v", v.Failures)
	}
}

func TestValidateRejectsIncompleteRecord(t *testing.T) {
	if _, err := Validate(testModel(), RunRecord{Workers: 2}, 0, 0, 0); err == nil {
		t.Fatal("empty record validated")
	}
}
