package sim

import (
	"bytes"
	"testing"
	"time"

	"kernelgpt/internal/telemetry"
)

// TestSpanLinesShareTraceShape: a telemetry.Tracer span stream parses
// with ReadTrace, and span lines are inert for yield fitting — a
// trace file with interleaved spans fits identically to one without.
func TestSpanLinesShareTraceShape(t *testing.T) {
	var buf bytes.Buffer
	base := time.Unix(1_700_000_000, 0).UTC()
	step := 0
	clock := telemetry.Clock(func() time.Time {
		step++
		return base.Add(time.Duration(step) * time.Millisecond)
	})
	tr := telemetry.NewTracer(&buf, clock, nil)
	sp := tr.Begin("exec-window", 100)
	sp.End("unit 1")
	tr.Event("sync", 100, "checkpoint")
	pts, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("span stream does not parse as a trace: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d trace points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Span == "" {
			t.Fatalf("span line lost its span name: %+v", p)
		}
	}

	truth := YieldModel{Cmax: 1200, K: 3000, B: 0.8}
	clean := syntheticTrace(truth, 500, 40)
	mixed := make([]TracePoint, 0, len(clean)+len(pts))
	for i, p := range clean {
		mixed = append(mixed, p)
		if i%10 == 0 {
			mixed = append(mixed, TracePoint{Span: "sync", ElapsedNs: p.ElapsedNs, Execs: p.Execs})
		}
	}
	a, err := FitYield(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitYield(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("span lines perturbed the fit: %+v vs %+v", a, b)
	}
}
