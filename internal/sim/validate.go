package sim

import (
	"fmt"
	"math"
)

// Default validation tolerances (the ISSUE-6 acceptance bars): sim
// exec totals within ±10% of a real run, final union coverage within
// ±5%. Wall-clock is gated looser — it absorbs CPU oversubscription
// and scheduler noise the per-exec calibration cannot see.
const (
	DefaultExecTol  = 0.10
	DefaultCoverTol = 0.05
	DefaultWallTol  = 0.30
)

// RunRecord is the ground truth of one real campaign, assembled from
// syzfuzz -stats-json (the hub.CampaignStats timing fields) plus,
// for hub-attached runs, the hub's /v1/stats sync aggregates. It
// carries both the configuration (to re-simulate the same fleet) and
// the outcome (to score the prediction).
type RunRecord struct {
	// Fleet configuration of the recorded run.
	Workers    int   `json:"workers"`
	ShardExecs int   `json:"shard_execs,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
	Hub        bool  `json:"hub,omitempty"`
	Checkpoint bool  `json:"checkpoint,omitempty"`

	// Outcome.
	Execs     int   `json:"execs"`
	Cover     int   `json:"cover"`
	Crashes   int   `json:"crashes"`
	ElapsedNs int64 `json:"elapsed_ns"`
	WorkNs    int64 `json:"work_ns"`
	TriageNs  int64 `json:"triage_ns,omitempty"`
	SyncNs    int64 `json:"sync_ns,omitempty"`
	Syncs     int   `json:"syncs,omitempty"`

	// Hub-side calibration inputs (from /v1/stats sync aggregates).
	HubServiceNsMean float64 `json:"hub_service_ns_mean,omitempty"`
	SeedsPerSync     float64 `json:"seeds_per_sync,omitempty"`
	BytesPerSync     float64 `json:"bytes_per_sync,omitempty"`
	// WorkerSyncs are the per-worker sync aggregates — sample points
	// for decomposing hub service time into base + per-byte (workers
	// with different payload profiles give the regression leverage).
	WorkerSyncs []SyncSample `json:"worker_syncs,omitempty"`
}

// SyncSample is one worker's sync aggregate: Count exchanges with the
// given mean payload size and mean hub-side service time.
type SyncSample struct {
	Count         int     `json:"count"`
	MeanBytes     float64 `json:"mean_bytes"`
	MeanServiceNs float64 `json:"mean_service_ns"`
}

// fleetConfig reconstructs the recorded run's simulator config. The
// grain is pinned to the effective value the run used, so changing
// the exec budget (validation headroom) cannot shift the unit
// decomposition away from reality.
func (rec RunRecord) fleetConfig() FleetConfig {
	cfg := FleetConfig{
		Workers:    rec.Workers,
		Execs:      rec.Execs,
		ShardExecs: rec.ShardExecs,
		Hub:        rec.Hub,
		Checkpoint: rec.Checkpoint,
		Seed:       rec.Seed,
	}
	if cfg.ShardExecs <= 0 {
		cfg.ShardExecs = cfg.grain()
	}
	return cfg
}

// Validation scores the model's predictions against one RunRecord.
type Validation struct {
	Rec RunRecord `json:"record"`
	// PredWallNs is the predicted makespan of the recorded budget;
	// PredExecs/PredCover are the predicted completable budget and its
	// coverage inside the recorded wall-clock window.
	PredWallNs int64 `json:"pred_wall_ns"`
	PredExecs  int   `json:"pred_execs"`
	PredCover  int   `json:"pred_cover"`
	// Relative errors and their gates.
	ExecErr  float64  `json:"exec_err"`
	CoverErr float64  `json:"cover_err"`
	WallErr  float64  `json:"wall_err"`
	ExecTol  float64  `json:"exec_tol"`
	CoverTol float64  `json:"cover_tol"`
	WallTol  float64  `json:"wall_tol"`
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// Validate replays the recorded fleet through the model and gates the
// prediction error. The recorded budget is simulated to a predicted
// makespan (the wall gate scores it against real elapsed); the exec
// prediction is the model's sustained campaign throughput — recorded
// budget over predicted makespan, which folds in unit scheduling,
// sync contention, and campaign-end overhead — applied to the real
// window. Throughput scaling is used instead of truncating a larger
// budget at a deadline because the makespan is a staircase in the
// budget (every extra unit carries a fixed sync quantum), so a
// deadline cut can flip by a whole unit on a percent of wall noise;
// the real figure is a completed-campaign number and is compared to
// one. Cover is the yield curve at the predicted execs. Pass
// tolerance 0 to take a gate's default.
func Validate(m *Model, rec RunRecord, execTol, coverTol, wallTol float64) (Validation, error) {
	if execTol <= 0 {
		execTol = DefaultExecTol
	}
	if coverTol <= 0 {
		coverTol = DefaultCoverTol
	}
	if wallTol <= 0 {
		wallTol = DefaultWallTol
	}
	v := Validation{Rec: rec, ExecTol: execTol, CoverTol: coverTol, WallTol: wallTol}
	if rec.Execs <= 0 || rec.ElapsedNs <= 0 || rec.Cover <= 0 {
		return v, fmt.Errorf("sim: run record incomplete (execs=%d elapsed=%d cover=%d)",
			rec.Execs, rec.ElapsedNs, rec.Cover)
	}

	budget := rec.fleetConfig()
	wallRun, err := Simulate(m, budget)
	if err != nil {
		return v, err
	}
	v.PredWallNs = wallRun.WallNs

	v.PredExecs = int(math.Round(float64(rec.Execs) * float64(rec.ElapsedNs) / float64(wallRun.WallNs)))
	v.PredCover = int(math.Round(m.Yield.Cover(float64(v.PredExecs))))

	relErr := func(pred, real float64) float64 {
		return math.Abs(pred-real) / real
	}
	v.ExecErr = relErr(float64(v.PredExecs), float64(rec.Execs))
	v.CoverErr = relErr(float64(v.PredCover), float64(rec.Cover))
	v.WallErr = relErr(float64(v.PredWallNs), float64(rec.ElapsedNs))

	v.Pass = true
	gate := func(name string, err, tol float64) {
		if err > tol {
			v.Pass = false
			v.Failures = append(v.Failures, fmt.Sprintf("%s error %.1f%% exceeds ±%.0f%%", name, 100*err, 100*tol))
		}
	}
	gate("exec", v.ExecErr, execTol)
	gate("cover", v.CoverErr, coverTol)
	gate("wall", v.WallErr, wallTol)
	return v, nil
}
