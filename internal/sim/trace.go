// Package sim is a deterministic discrete-event model of a fuzzing
// fleet, built for capacity planning: how many workers, what shard
// grain, what hub attachment does it take to reach a coverage target
// by a deadline — answered in microseconds of CPU instead of
// CPU-hours of real campaigns.
//
// The model has two halves, both fitted from the system's own
// telemetry rather than guessed:
//
//   - a CostModel of per-event nanosecond coefficients (program
//     execution, mutation/scheduling overhead, triage, checkpoint
//     flush, hub sync round-trip and hub-side service time, LLM spec
//     generation), seeded from BENCH_fuzz.json medians and calibrated
//     against a real campaign's recorded fuzz.Stats wall-clock fields;
//   - a YieldModel mapping cumulative execs to expected union
//     coverage, fitted from real Progress traces with a saturating
//     diminishing-returns curve.
//
// Simulate replays the fleet's structure — the same unit
// decomposition as fuzz.RunParallel, a worker pool pulling units from
// a shared queue, the hub as a FIFO server serializing sync merges —
// against those coefficients. Everything is deterministic for a fixed
// (model, config, seed), so planner sweeps are reproducible and CI
// can gate on prediction error (cmd/syzplan validate).
package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// TracePoint is one observation of a running campaign: cumulative
// execs and merged union coverage at a monotone wall-clock offset.
// syzfuzz -trace appends one JSON line per Progress update; the yield
// fitter consumes the (Execs, Cover) pairs and the validator the time
// axis.
type TracePoint struct {
	// Rep is the 1-based repetition index for multi-rep runs (0 when
	// the producer ran a single campaign).
	Rep       int   `json:"rep,omitempty"`
	ElapsedNs int64 `json:"elapsed_ns"`
	Execs     int   `json:"execs"`
	Cover     int   `json:"cover"`
	Crashes   int   `json:"crashes,omitempty"`
	// Span names the emitting span for lines produced by
	// telemetry.Tracer — span streams and campaign traces share one
	// JSONL shape, so a flight dump or tracer output parses as a trace.
	// Span lines carry no cover observation; the yield fitter skips
	// them.
	Span string `json:"span,omitempty"`
}

// ReadTrace parses a JSON-lines trace stream. Blank lines are
// skipped; a malformed line is an error (truncated traces should be
// caught, not silently fitted).
func ReadTrace(r io.Reader) ([]TracePoint, error) {
	var pts []TracePoint
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var p TracePoint
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}

// ReadTraceFile reads a JSON-lines trace from disk.
func ReadTraceFile(path string) ([]TracePoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pts, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pts, nil
}

// WriteTrace writes points as JSON lines.
func WriteTrace(w io.Writer, pts []TracePoint) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, p := range pts {
		if err := enc.Encode(p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// yieldObservations reduces a trace to fit-ready (execs, cover)
// pairs: per repetition, sorted by execs, one point per distinct exec
// count (the last observation wins — Progress cover only grows). The
// origin (0, 0) is implicit in the curve form and not added here.
func yieldObservations(pts []TracePoint) []TracePoint {
	byRep := map[int][]TracePoint{}
	for _, p := range pts {
		if p.Execs <= 0 || p.Span != "" {
			continue
		}
		byRep[p.Rep] = append(byRep[p.Rep], p)
	}
	var out []TracePoint
	reps := make([]int, 0, len(byRep))
	for r := range byRep {
		reps = append(reps, r)
	}
	sort.Ints(reps)
	for _, r := range reps {
		rp := byRep[r]
		sort.SliceStable(rp, func(i, j int) bool { return rp[i].Execs < rp[j].Execs })
		for i, p := range rp {
			if i+1 < len(rp) && rp[i+1].Execs == p.Execs {
				continue
			}
			out = append(out, p)
		}
	}
	return out
}
